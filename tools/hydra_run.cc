// hydra_run — scriptable experiment driver.
//
// Runs one DTM experiment (benchmark x policy) and emits the result as
// human-readable text or JSON, making the simulator usable from shell
// pipelines and dashboards without writing C++.
//
// Usage:
//   hydra_run benchmark=<name|all> policy=<name> [key=value ...]
//
// Keys:
//   benchmark     mesa|perlbmk|gzip|bzip2|eon|crafty|vortex|gcc|art|all
//   policy        none|dvs|fg|fg-fixed|clockgate|pi-hyb|hyb|pro-hyb|
//                 local-toggle|fallback
//   format        text|json                      (default text)
//   dvs_stall     true|false                     (default true)
//   dvs_steps     >= 2                           (default 2)
//   v_low_fraction(0,1)                          (default 0.85)
//   run_instructions / warmup_instructions       (defaults as library)
//   time_scale    > 0                            (default 40)
//   crossover     hybrid crossover gate fraction (default 1/3)
//   seed          sensor-noise seed
//   fault_campaign  path to a sensor-fault schedule (see src/fault);
//                   times are relative to the measured window
//   guard         true|false — wrap the policy in the fail-safe
//                 sensor-fault supervisor (default false)
//
// Many-core die (DESIGN.md section 15):
//   cores         core tiles on the die (default 1 = single-core paper
//                 setup; >1 runs the MulticoreSystem with one policy
//                 instance per tile)
//   threads       worker threads stepping tiles within one run; 0 uses
//                 the global pool width. Defaults to $HYDRA_THREADS when
//                 set. Results are bit-identical at any value.
//   workload_threads  software threads on the die (0 = one per core;
//                 fewer leaves idle tiles for the migration policy)
//   per_core_dvs  true|false — per-tile voltage domains vs one global
//                 domain at the max requested level (default true)
//   migration     true|false — thermal-aware thread migration
//   migration_cost_cycles  context-switch stall per migration
//   power_budget  die-level power cap in watts routed through the
//                 budget arbiter (0 disables)
//   trigger       DTM trigger temperature in deg C (also the migration
//                 policy's threshold). Tiled dies run cooler than the
//                 single-core die at equal power density, so multicore
//                 experiments typically lower this below the paper's
//                 81.8 C default.
//   emergency     thermal-violation threshold in deg C
//
// Robustness (see DESIGN.md "Failure model"):
//   cache_dir     crash-safe persistent run-cache directory; defaults to
//                 $HYDRA_CACHE_DIR, empty disables persistence
//   timeout_seconds  per-run wall-clock deadline (0 = none); an expired
//                 run exits nonzero with a typed timeout diagnostic
//   max_attempts  retry budget for runs that fail transiently (default 1)
//
// Unknown keys are rejected with a one-line file:line diagnostic and a
// closest-spelling suggestion; the process exits nonzero.
//
// Observability outputs (any of these enables tracing + metrics for the
// whole run; keys may be spelled with dashes or underscores, and a
// leading `--` is accepted, so `--trace=out.json` works):
//   trace         Chrome trace-event JSON (chrome://tracing, Perfetto)
//   trace_csv     the same events as flat CSV
//   metrics       metrics registry scrape as CSV (kind,name,field,value)
//   summary_json  machine-readable run summary: results + engine cache
//                 stats + merged metrics (consumed by CI's bench gate)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fault/fault_campaign.h"

#include "obs/obs.h"
#include "sim/experiment.h"
#include "sim/persistent_cache.h"
#include "util/config.h"
#include "util/json.h"
#include "util/table.h"

using namespace hydra;

namespace {

sim::PolicyKind parse_policy(const std::string& name) {
  if (name == "none") return sim::PolicyKind::kNone;
  if (name == "dvs") return sim::PolicyKind::kDvs;
  if (name == "fg") return sim::PolicyKind::kFetchGating;
  if (name == "fg-fixed") return sim::PolicyKind::kFixedFetchGating;
  if (name == "clockgate") return sim::PolicyKind::kClockGating;
  if (name == "pi-hyb") return sim::PolicyKind::kPiHybrid;
  if (name == "hyb") return sim::PolicyKind::kHybrid;
  if (name == "pro-hyb") return sim::PolicyKind::kProactiveHybrid;
  if (name == "local-toggle") return sim::PolicyKind::kLocalToggle;
  if (name == "fallback") return sim::PolicyKind::kFallback;
  throw std::invalid_argument("unknown policy '" + name + "'");
}

void emit_json(util::JsonWriter& w, const sim::ExperimentResult& r) {
  w.begin_object();
  w.key("benchmark").value(r.dtm.benchmark);
  w.key("policy").value(r.dtm.policy);
  w.key("slowdown").value(r.slowdown);
  w.key("wall_seconds").value(r.dtm.wall_seconds);
  w.key("ipc").value(r.dtm.ipc);
  w.key("baseline_ipc").value(r.baseline.ipc);
  w.key("max_true_celsius").value(r.dtm.max_true_celsius);
  w.key("violation_fraction").value(r.dtm.violation_fraction);
  w.key("above_trigger_fraction").value(r.dtm.above_trigger_fraction);
  w.key("mean_gate_fraction").value(r.dtm.mean_gate_fraction);
  w.key("mean_issue_gate_fraction").value(r.dtm.mean_issue_gate_fraction);
  w.key("dvs_low_fraction").value(r.dtm.dvs_low_fraction);
  w.key("clock_gated_fraction").value(r.dtm.clock_gated_fraction);
  w.key("dvs_transitions").value(r.dtm.dvs_transitions);
  w.key("mean_power_watts").value(r.dtm.mean_power_watts);
  w.key("hottest_block").value(r.dtm.hottest_block);
  w.key("solver_guard_trips").value(r.dtm.solver_guard_trips);
  w.key("faulted_samples").value(r.dtm.faulted_samples);
  w.key("sensor_rejections").value(r.dtm.sensor_rejections);
  w.key("quarantine_entries").value(r.dtm.quarantine_entries);
  w.key("failsafe_fraction").value(r.dtm.failsafe_fraction);
  w.key("fault_window_fraction").value(r.dtm.fault_window_fraction);
  w.key("fault_violation_fraction").value(r.dtm.fault_violation_fraction);
  w.key("cores").value(r.dtm.cores);
  w.key("thread_migrations").value(r.dtm.thread_migrations);
  w.key("core_temp_spread_celsius").value(r.dtm.core_temp_spread_celsius);
  w.key("budget_throttled_fraction").value(r.dtm.budget_throttled_fraction);
  w.end_object();
}

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for write");
  return out;
}

/// Machine-readable run summary: per-point results plus engine-level
/// cache statistics, trace volume and the merged metrics scrape.
void emit_summary(std::ostream& os,
                  const std::vector<sim::ExperimentResult>& results,
                  const sim::RunCache::Stats& cache) {
  util::JsonWriter w(os);
  w.begin_object();
  w.key("results").begin_array();
  for (const auto& r : results) emit_json(w, r);
  w.end_array();
  w.key("run_cache").begin_object();
  w.key("hits").value(cache.hits);
  w.key("misses").value(cache.misses);
  w.key("failures").value(cache.failures);
  w.key("retries").value(cache.retries);
  w.key("timeouts").value(cache.timeouts);
  w.key("computes").value(cache.computes);
  w.key("disk_hits").value(cache.disk_hits);
  w.key("disk_stores").value(cache.disk_stores);
  w.end_object();
  w.key("trace_events").value(obs::tracer().size());
  const obs::MetricsSnapshot snap = obs::metrics().scrape();
  w.key("counters").begin_object();
  for (const auto& [name, count] : snap.counters) {
    w.key(name).value(count);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : snap.gauges) {
    w.key(name).value(value);
  }
  w.end_object();
  w.end_object();
  os << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Config cfg_args =
        util::Config::from_args(std::vector<std::string>(argv + 1,
                                                         argv + argc));
    cfg_args.reject_unknown({
        "benchmark", "policy", "format", "dvs_stall", "dvs_steps",
        "v_low_fraction", "time_scale", "run_instructions",
        "warmup_instructions", "seed", "fault_campaign", "crossover",
        "guard", "trace", "trace_csv", "trace-csv", "metrics",
        "summary_json", "summary-json", "cache_dir", "cache-dir",
        "timeout_seconds", "max_attempts", "cores", "threads",
        "workload_threads", "per_core_dvs", "migration",
        "migration_cost_cycles", "power_budget", "trigger", "emergency",
    });
    const std::string bench = cfg_args.get_string("benchmark", "crafty");
    const std::string policy_name = cfg_args.get_string("policy", "hyb");
    const std::string format = cfg_args.get_string("format", "text");

    sim::SimConfig cfg = sim::default_sim_config();
    cfg.dvs_stall = cfg_args.get_bool("dvs_stall", cfg.dvs_stall);
    cfg.dvs_steps = static_cast<std::size_t>(
        cfg_args.get_int("dvs_steps", static_cast<long long>(cfg.dvs_steps)));
    cfg.v_low_fraction =
        cfg_args.get_double("v_low_fraction", cfg.v_low_fraction);
    cfg.time_scale = cfg_args.get_double("time_scale", cfg.time_scale);
    cfg.run_instructions = static_cast<std::uint64_t>(cfg_args.get_int(
        "run_instructions", static_cast<long long>(cfg.run_instructions)));
    cfg.warmup_instructions = static_cast<std::uint64_t>(
        cfg_args.get_int("warmup_instructions",
                         static_cast<long long>(cfg.warmup_instructions)));
    cfg.sensor.seed = static_cast<std::uint64_t>(
        cfg_args.get_int("seed", static_cast<long long>(cfg.sensor.seed)));
    const std::string campaign_path =
        cfg_args.get_string("fault_campaign", "");
    if (!campaign_path.empty()) {
      cfg.fault_campaign =
          fault::FaultCampaign::from_file(campaign_path,
                                          sim::sensor_names());
    }

    cfg.multicore.cores = static_cast<std::size_t>(
        cfg_args.get_int("cores", static_cast<long long>(cfg.multicore.cores)));
    // Intra-run width: CLI key wins, else $HYDRA_THREADS, else the
    // library default (global pool). Never part of the result.
    long long threads_default =
        static_cast<long long>(cfg.multicore.threads);
    if (const char* env_threads = std::getenv("HYDRA_THREADS")) {
      if (*env_threads != '\0') {
        threads_default = std::strtoll(env_threads, nullptr, 10);
      }
    }
    cfg.multicore.threads = static_cast<std::size_t>(
        cfg_args.get_int("threads", threads_default));
    cfg.multicore.workload_threads = static_cast<std::size_t>(
        cfg_args.get_int("workload_threads",
                         static_cast<long long>(
                             cfg.multicore.workload_threads)));
    cfg.multicore.per_core_dvs =
        cfg_args.get_bool("per_core_dvs", cfg.multicore.per_core_dvs);
    cfg.multicore.migration =
        cfg_args.get_bool("migration", cfg.multicore.migration);
    cfg.multicore.migration_policy.cost_cycles = static_cast<std::uint64_t>(
        cfg_args.get_int("migration_cost_cycles",
                         static_cast<long long>(
                             cfg.multicore.migration_policy.cost_cycles)));
    cfg.multicore.arbiter.die_budget = util::Watts(
        cfg_args.get_double("power_budget",
                            cfg.multicore.arbiter.die_budget.value()));
    cfg.thresholds.trigger = util::Celsius(cfg_args.get_double(
        "trigger", cfg.thresholds.trigger.value()));
    cfg.thresholds.emergency = util::Celsius(cfg_args.get_double(
        "emergency", cfg.thresholds.emergency.value()));
    if (cfg.thresholds.emergency.value() <= cfg.thresholds.trigger.value()) {
      throw std::runtime_error("emergency must be above trigger");
    }

    sim::PolicyParams params;
    params.hybrid.crossover_gate_fraction =
        cfg_args.get_double("crossover",
                            params.hybrid.crossover_gate_fraction);
    params.guarded = cfg_args.get_bool("guard", false);

    const std::string trace_path = cfg_args.get_string("trace", "");
    const std::string trace_csv_path = cfg_args.get_string(
        "trace_csv", cfg_args.get_string("trace-csv", ""));
    const std::string metrics_path = cfg_args.get_string("metrics", "");
    const std::string summary_path = cfg_args.get_string(
        "summary_json", cfg_args.get_string("summary-json", ""));
    const bool observe = !trace_path.empty() || !trace_csv_path.empty() ||
                         !metrics_path.empty() || !summary_path.empty();
    // Enable before the runner spawns its pool so workers register their
    // named trace lanes on startup.
    if (observe) obs::Observability::instance().enable_all();

    const sim::PolicyKind kind = parse_policy(policy_name);
    sim::ExperimentRunner runner(cfg);

    // Job supervision: deadline + transient-retry budget for every run.
    sim::RunCache::JobOptions job_opts;
    job_opts.timeout = util::Seconds(
        cfg_args.get_double("timeout_seconds", 0.0));
    job_opts.max_attempts = static_cast<int>(
        cfg_args.get_int("max_attempts", 1));
    if (job_opts.max_attempts < 1) {
      throw std::invalid_argument("max_attempts must be >= 1");
    }
    runner.set_job_options(job_opts);

    // Crash-safe persistence is opt-in: an explicit cache_dir key, or
    // the HYDRA_CACHE_DIR environment as the ambient default.
    const char* env_cache = std::getenv("HYDRA_CACHE_DIR");
    const std::string cache_dir = cfg_args.get_string(
        "cache_dir",
        cfg_args.get_string("cache-dir",
                            env_cache != nullptr ? env_cache : ""));
    if (!cache_dir.empty()) {
      sim::PersistentRunCache::Options store_opts;
      store_opts.dir = cache_dir;
      runner.set_store(
          std::make_shared<sim::PersistentRunCache>(std::move(store_opts)));
    }

    std::vector<sim::PointSpec> points;
    if (bench == "all") {
      for (const auto& profile : workload::spec2000_hot_profiles()) {
        points.push_back({profile, kind, params, cfg});
      }
    } else {
      points.push_back({workload::spec2000_profile(bench), kind, params, cfg});
    }
    const std::vector<sim::ExperimentResult> results =
        runner.run_points(points);

    if (format == "json") {
      util::JsonWriter w(std::cout);
      w.begin_array();
      for (const auto& r : results) emit_json(w, r);
      w.end_array();
    } else if (format == "text") {
      util::AsciiTable table;
      const bool with_faults = !campaign_path.empty();
      const bool with_multicore = cfg.multicore.cores > 1;
      std::vector<std::string> header = {"benchmark", "policy", "slowdown",
                                         "Tmax[C]",   "safe",   "gate",
                                         "Vlow time", "switches"};
      if (with_multicore) {
        header.insert(header.end(),
                      {"cores", "migr", "spread[C]", "budget"});
      }
      if (with_faults) {
        header.insert(header.end(),
                      {"faulted", "rejected", "failsafe", "fault viol"});
      }
      table.header(header);
      for (const auto& r : results) {
        std::vector<std::string> row = {
            r.dtm.benchmark, r.dtm.policy,
            util::AsciiTable::num(r.slowdown, 4),
            util::AsciiTable::num(r.dtm.max_true_celsius, 2),
            r.dtm.thermally_safe() ? "yes" : "NO",
            util::AsciiTable::percent(r.dtm.mean_gate_fraction, 1),
            util::AsciiTable::percent(r.dtm.dvs_low_fraction, 1),
            std::to_string(r.dtm.dvs_transitions)};
        if (with_multicore) {
          row.insert(row.end(),
                     {std::to_string(r.dtm.cores),
                      std::to_string(r.dtm.thread_migrations),
                      util::AsciiTable::num(r.dtm.core_temp_spread_celsius, 2),
                      util::AsciiTable::percent(
                          r.dtm.budget_throttled_fraction, 1)});
        }
        if (with_faults) {
          row.insert(row.end(),
                     {std::to_string(r.dtm.faulted_samples),
                      std::to_string(r.dtm.sensor_rejections),
                      util::AsciiTable::percent(r.dtm.failsafe_fraction, 1),
                      util::AsciiTable::percent(
                          r.dtm.fault_violation_fraction, 2)});
        }
        table.row(row);
      }
      table.print(std::cout);
    } else {
      throw std::invalid_argument("unknown format '" + format + "'");
    }

    if (!trace_path.empty()) {
      auto out = open_or_throw(trace_path);
      obs::tracer().write_chrome_json(out);
    }
    if (!trace_csv_path.empty()) {
      auto out = open_or_throw(trace_csv_path);
      obs::tracer().write_csv(out);
    }
    if (!metrics_path.empty()) {
      auto out = open_or_throw(metrics_path);
      obs::metrics().write_csv(out);
    }
    if (!summary_path.empty()) {
      auto out = open_or_throw(summary_path);
      emit_summary(out, results, runner.cache_stats());
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "hydra_run: " << e.what() << '\n';
    return 1;
  }
}
