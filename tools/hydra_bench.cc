// hydra_bench — parallel-engine benchmark driver.
//
// Measures the two performance properties the experiment engine is built
// around and emits them as JSON (default: BENCH_engine.json):
//
//   * thermal solver throughput — backward-Euler steps/second on the
//     EV7-like network, the per-step hot path every simulation spends
//     most of its time in (allocation-free, cached LU);
//   * suite scaling — wall time of a nine-benchmark hybrid-DTM suite on
//     a 1-thread pool vs an N-thread pool, and the resulting speedup.
//     Both runs produce bit-identical results; only wall time differs.
//
// It also asserts the engine's allocation contracts by counting heap
// allocations through a global operator-new override: the warmed
// per-step solver path and a repeated System::run() must both be
// allocation-free (solver_allocs_per_step / system_allocs_per_run in the
// JSON, gated at exactly zero by scripts/bench_gate.py).
//
// Usage:
//   hydra_bench [out=BENCH_engine.json] [threads=N] [solver_steps=K]
//               [run_instructions=I] [warmup_instructions=W]
//
// `threads` defaults to the HYDRA_THREADS width (hardware concurrency).
// The suite runs are shortened by default so the tool doubles as a CI
// smoke benchmark; pass larger run_instructions for real measurements.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.h"
#include "sim/model_cache.h"
#include "sim/multicore.h"
#include "sim/system.h"
#include "thermal/batch.h"
#include "thermal/simd.h"
#include "thermal/solver.h"
#include "thermal/sparse.h"
#include "util/units.h"
#include "util/config.h"
#include "util/json.h"
#include "util/thread_pool.h"
#include "workload/spec_profiles.h"

// Global allocation counter backing the allocation-contract measurements.
static std::atomic<std::uint64_t> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace hydra;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct SolverBench {
  double steps_per_second = 0.0;
  std::uint64_t allocs = 0;  ///< during the measured loop (contract: 0)
};

/// Backward-Euler steps/second on the shared thermal model, plus heap
/// allocations over the measured loop (the warmed path must make none).
SolverBench solver_throughput(const sim::SimConfig& cfg, long long steps,
                              thermal::Scheme scheme) {
  const auto shared = sim::ModelCache::global().get(cfg);
  thermal::TransientSolver solver(shared->model.network,
                                  cfg.package.ambient, scheme,
                                  shared->lu_cache);
  std::vector<double> watts(floorplan::kNumBlocks, 2.0);
  const thermal::Vector power = shared->model.expand_power(watts);
  solver.initialize_steady_state(power);
  const util::Seconds dt(1e-4);
  // Warm the dt memo (first step factorises the LU for this dt).
  solver.step(power, dt);
  const std::uint64_t allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  for (long long i = 0; i < steps; ++i) solver.step(power, dt);
  const double elapsed = seconds_since(start);
  SolverBench result;
  result.steps_per_second =
      elapsed > 0.0 ? static_cast<double>(steps) / elapsed : 0.0;
  result.allocs = g_heap_allocs.load(std::memory_order_relaxed) -
                  allocs_before;
  return result;
}

/// Heap allocations of a repeated System::run() after one warm run. The
/// engine's contract is zero: scratch buffers, accumulators and the
/// thermal fixed-point all reuse member storage.
std::uint64_t system_allocs_per_run(sim::SimConfig cfg) {
  cfg.run_instructions =
      std::min<std::uint64_t>(cfg.run_instructions, 120'000);
  cfg.warmup_instructions =
      std::min<std::uint64_t>(cfg.warmup_instructions, 40'000);
  sim::System system(workload::spec2000_profile("gzip"), cfg, nullptr);
  system.run();  // warm: one-time allocations
  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  system.run();
  return g_heap_allocs.load(std::memory_order_relaxed) - before;
}

/// Lockstep panel throughput: a width-4 BatchedThermalState stepped
/// through the shared fused operator, reported as lane-steps/second
/// (panel steps x width) — the batched twin of the fused-BE number.
double batched_lane_throughput(const sim::SimConfig& cfg, long long steps) {
  const auto shared = sim::ModelCache::global().get(cfg);
  const std::size_t n = shared->model.network.size();
  const double dt = thermal::round_step_dt(1e-4);
  const thermal::FusedStepOperator& op = shared->lu_cache->fused(dt);
  const std::size_t width = thermal::simd::kLaneWidth;
  thermal::BatchedThermalState state(n, width);
  const std::vector<double> rise(n, 1.0);
  const std::vector<double> power(n, 2.0);
  for (std::size_t k = 0; k < width; ++k) {
    state.load_lane(k, rise.data(), power.data());
  }
  state.step(op);  // warm
  const auto start = std::chrono::steady_clock::now();
  for (long long i = 0; i < steps; ++i) state.step(op);
  const double elapsed = seconds_since(start);
  return elapsed > 0.0
             ? static_cast<double>(steps) * static_cast<double>(width) /
                   elapsed
             : 0.0;
}

struct MulticoreBench {
  double core_steps_per_second = 0.0;
  std::size_t nodes = 0;     ///< die RC node count (drives sparse dispatch)
  bool sparse_path = false;  ///< thermal steps route through sparse LDL^T
};

/// Many-core die throughput: one 16-core MulticoreSystem run with the
/// full DTM family active (per-core DVS + thread migration + budget
/// arbiter), reported as aggregate core-cycles stepped per wall-second.
/// 16 cores puts the 298-node die past the dense/sparse crossover, so
/// this number exercises the sparse substitution path end to end (the
/// warm run also caches the activity probe — the measured run is the
/// steady-state interval loop, which is what regressions would hit).
/// A 1-thread tile pool keeps the number host-size independent — the
/// same convention as the 1-thread suite pass; bench_gate.py floors it
/// against the baseline to catch regressions in the tiled interval loop.
MulticoreBench multicore_core_steps_per_second(sim::SimConfig cfg) {
  cfg.multicore.cores = 16;
  cfg.multicore.threads = 1;
  cfg.multicore.workload_threads = 12;
  cfg.multicore.migration = true;
  cfg.multicore.arbiter.die_budget = util::Watts(80.0);
  sim::MulticoreSystem system(
      workload::spec2000_profile("crafty"), cfg,
      [cfg] { return sim::make_policy(sim::PolicyKind::kHybrid, {}, cfg); },
      "hyb");
  system.run();  // warm: model build, factorisations, probe frames
  const auto start = std::chrono::steady_clock::now();
  const sim::MulticoreResult result = system.run();
  const double elapsed = seconds_since(start);
  MulticoreBench bench;
  bench.core_steps_per_second =
      elapsed > 0.0 ? static_cast<double>(result.aggregate.cycles) / elapsed
                    : 0.0;
  bench.nodes = sim::ModelCache::global().get(cfg)->model.network.size();
  bench.sparse_path = thermal::use_sparse_step(bench.nodes);
  return bench;
}

struct SuiteBench {
  double wall_seconds = 0.0;
  sim::RunCache::Stats cache;
  sim::SuiteResult results;
  std::size_t batched_groups = 0;  ///< lockstep groups the sweep formed
  std::size_t batch_width = 0;
};

/// Wall time of a hybrid-DTM suite on a pool of the given width. A fresh
/// runner (fresh caches) per call keeps the comparison fair.
SuiteBench suite_wall_seconds(const sim::SimConfig& cfg, std::size_t width) {
  util::ThreadPool pool(width);
  sim::ExperimentRunner runner(cfg, &pool);
  const auto start = std::chrono::steady_clock::now();
  sim::SuiteResult suite = runner.run_suite(sim::PolicyKind::kHybrid, {}, cfg);
  const double elapsed = seconds_since(start);
  if (suite.per_benchmark.empty()) {
    throw std::runtime_error("suite produced no results");
  }
  return {elapsed, runner.cache_stats(), std::move(suite),
          runner.last_batched_groups(), runner.batch_width()};
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Config args = util::Config::from_args(
        std::vector<std::string>(argv + 1, argv + argc));
    args.reject_unknown({"out", "threads", "solver_steps",
                         "run_instructions", "warmup_instructions"});
    const std::string out_path = args.get_string("out", "BENCH_engine.json");
    const std::size_t threads = static_cast<std::size_t>(args.get_int(
        "threads",
        static_cast<long long>(util::ThreadPool::configured_width())));
    const long long solver_steps = args.get_int("solver_steps", 20000);

    sim::SimConfig cfg = sim::default_sim_config();
    // Short suite by default: this is a smoke/scaling benchmark, not a
    // paper reproduction. HYDRA_RUN_INSTRUCTIONS and the explicit keys
    // below both override.
    cfg.run_instructions = static_cast<std::uint64_t>(args.get_int(
        "run_instructions",
        static_cast<long long>(
            std::min<std::uint64_t>(cfg.run_instructions, 400'000))));
    cfg.warmup_instructions = static_cast<std::uint64_t>(args.get_int(
        "warmup_instructions",
        static_cast<long long>(
            std::min<std::uint64_t>(cfg.warmup_instructions, 100'000))));

    std::printf("hydra_bench: solver throughput (%lld steps)...\n",
                solver_steps);
    const SolverBench solver = solver_throughput(
        cfg, solver_steps, thermal::Scheme::kBackwardEuler);
    std::printf("  %.0f backward-Euler steps/sec, %llu allocs\n",
                solver.steps_per_second,
                static_cast<unsigned long long>(solver.allocs));
    const SolverBench fused = solver_throughput(
        cfg, solver_steps, thermal::Scheme::kFusedBE);
    std::printf("  %.0f fused-BE steps/sec, %llu allocs\n",
                fused.steps_per_second,
                static_cast<unsigned long long>(fused.allocs));
    const double batched_lane_steps =
        batched_lane_throughput(cfg, solver_steps);
    std::printf("  %.0f batched lane-steps/sec (%s backend)\n",
                batched_lane_steps,
                thermal::simd::backend_name(
                    thermal::simd::active_backend()));

    std::printf("hydra_bench: 16-core die throughput...\n");
    const MulticoreBench multicore = multicore_core_steps_per_second(cfg);
    std::printf("  %.0f core-steps/sec (16 tiles, serial, %s path)\n",
                multicore.core_steps_per_second,
                multicore.sparse_path ? "sparse" : "dense");

    std::printf("hydra_bench: repeated System::run() allocations...\n");
    const std::uint64_t system_allocs = system_allocs_per_run(cfg);
    std::printf("  %llu allocs\n",
                static_cast<unsigned long long>(system_allocs));

    std::printf("hydra_bench: suite wall time, 1 thread...\n");
    const SuiteBench suite_1 = suite_wall_seconds(cfg, 1);
    const double wall_1 = suite_1.wall_seconds;
    std::printf("  %.3f s\n", wall_1);

    SuiteBench suite_n = suite_1;
    if (threads > 1) {
      std::printf("hydra_bench: suite wall time, %zu threads...\n", threads);
      suite_n = suite_wall_seconds(cfg, threads);
      std::printf("  %.3f s\n", suite_n.wall_seconds);
    }
    const double wall_n = suite_n.wall_seconds;
    const double speedup = wall_n > 0.0 ? wall_1 / wall_n : 1.0;
    std::printf("  speedup at %zu threads: %.2fx\n", threads, speedup);

    // Suite throughput (measured instructions per wall-second) and the
    // mean idle-skip fraction, both taken from the 1-thread pass so the
    // numbers are comparable across hosts regardless of pool width.
    std::uint64_t suite_instructions = 0;
    double idle_skip_sum = 0.0;
    std::size_t idle_skip_runs = 0;
    for (const sim::ExperimentResult& r : suite_1.results.per_benchmark) {
      suite_instructions += r.dtm.instructions + r.baseline.instructions;
      idle_skip_sum += r.dtm.idle_skip_fraction;
      idle_skip_sum += r.baseline.idle_skip_fraction;
      idle_skip_runs += 2;
    }
    const double suite_instr_per_second =
        wall_1 > 0.0 ? static_cast<double>(suite_instructions) / wall_1 : 0.0;
    const double idle_skip_fraction =
        idle_skip_runs > 0
            ? idle_skip_sum / static_cast<double>(idle_skip_runs)
            : 0.0;
    std::printf("  suite throughput: %.0f instr/s, idle-skip %.3f\n",
                suite_instr_per_second, idle_skip_fraction);

    std::ofstream out(out_path);
    if (!out) {
      throw std::runtime_error("cannot open '" + out_path + "' for write");
    }
    util::JsonWriter w(out);
    w.begin_object();
    w.key("solver_steps_per_second").value(solver.steps_per_second);
    w.key("solver_fused_steps_per_second").value(fused.steps_per_second);
    w.key("batched_lane_steps_per_second").value(batched_lane_steps);
    w.key("multicore_core_steps_per_second")
        .value(multicore.core_steps_per_second);
    w.key("multicore_nodes")
        .value(static_cast<unsigned long long>(multicore.nodes));
    w.key("sparse_path").value(multicore.sparse_path);
    w.key("sparse_crossover_nodes")
        .value(static_cast<unsigned long long>(
            thermal::sparse_crossover_nodes()));
    w.key("solver_steps_measured").value(solver_steps);
    w.key("solver_allocs_per_step")
        .value(static_cast<double>(solver.allocs) /
               static_cast<double>(std::max<long long>(solver_steps, 1)));
    w.key("solver_fused_allocs_per_step")
        .value(static_cast<double>(fused.allocs) /
               static_cast<double>(std::max<long long>(solver_steps, 1)));
    w.key("system_allocs_per_run").value(system_allocs);
    w.key("suite_cache_hits").value(suite_n.cache.hits);
    w.key("suite_cache_misses").value(suite_n.cache.misses);
    w.key("suite_policy").value("hyb");
    w.key("suite_run_instructions")
        .value(static_cast<unsigned long long>(cfg.run_instructions));
    w.key("suite_wall_seconds_1_thread").value(wall_1);
    w.key("suite_wall_seconds_n_threads").value(wall_n);
    w.key("suite_instr_per_second").value(suite_instr_per_second);
    w.key("idle_skip_fraction").value(idle_skip_fraction);
    w.key("fused_be").value(cfg.fused_thermal);
    w.key("bulk_idle_skip").value(cfg.bulk_idle_skip);
    w.key("simd_backend")
        .value(thermal::simd::backend_name(thermal::simd::active_backend()));
    w.key("batched_sweep").value(suite_1.batched_groups > 0);
    w.key("batch_width")
        .value(static_cast<unsigned long long>(suite_1.batch_width));
    w.key("threads").value(threads);
    w.key("hardware_concurrency")
        .value(static_cast<unsigned long long>(
            std::thread::hardware_concurrency()));
    w.key("speedup").value(speedup);
    w.end_object();
    out << '\n';
    std::printf("hydra_bench: wrote %s\n", out_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "hydra_bench: " << e.what() << '\n';
    return 1;
  }
}
