// hydra_bench — parallel-engine benchmark driver.
//
// Measures the two performance properties the experiment engine is built
// around and emits them as JSON (default: BENCH_engine.json):
//
//   * thermal solver throughput — backward-Euler steps/second on the
//     EV7-like network, the per-step hot path every simulation spends
//     most of its time in (allocation-free, cached LU);
//   * suite scaling — wall time of a nine-benchmark hybrid-DTM suite on
//     a 1-thread pool vs an N-thread pool, and the resulting speedup.
//     Both runs produce bit-identical results; only wall time differs.
//
// Usage:
//   hydra_bench [out=BENCH_engine.json] [threads=N] [solver_steps=K]
//               [run_instructions=I] [warmup_instructions=W]
//
// `threads` defaults to the HYDRA_THREADS width (hardware concurrency).
// The suite runs are shortened by default so the tool doubles as a CI
// smoke benchmark; pass larger run_instructions for real measurements.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/model_cache.h"
#include "thermal/solver.h"
#include "util/config.h"
#include "util/json.h"
#include "util/thread_pool.h"

using namespace hydra;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Backward-Euler steps/second on the shared thermal model.
double solver_steps_per_second(const sim::SimConfig& cfg, long long steps) {
  const auto shared = sim::ModelCache::global().get(cfg);
  thermal::TransientSolver solver(shared->model.network,
                                  cfg.package.ambient_celsius,
                                  thermal::Scheme::kBackwardEuler,
                                  shared->lu_cache);
  std::vector<double> watts(floorplan::kNumBlocks, 2.0);
  const thermal::Vector power = shared->model.expand_power(watts);
  solver.initialize_steady_state(power);
  const double dt = 1e-4;
  // Warm the dt memo (first step factorises the LU for this dt).
  solver.step(power, dt);
  const auto start = std::chrono::steady_clock::now();
  for (long long i = 0; i < steps; ++i) solver.step(power, dt);
  const double elapsed = seconds_since(start);
  return elapsed > 0.0 ? static_cast<double>(steps) / elapsed : 0.0;
}

/// Wall time of a hybrid-DTM suite on a pool of the given width. A fresh
/// runner (fresh caches) per call keeps the comparison fair.
double suite_wall_seconds(const sim::SimConfig& cfg, std::size_t width) {
  util::ThreadPool pool(width);
  sim::ExperimentRunner runner(cfg, &pool);
  const auto start = std::chrono::steady_clock::now();
  const sim::SuiteResult suite =
      runner.run_suite(sim::PolicyKind::kHybrid, {}, cfg);
  const double elapsed = seconds_since(start);
  if (suite.per_benchmark.empty()) {
    throw std::runtime_error("suite produced no results");
  }
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Config args = util::Config::from_args(
        std::vector<std::string>(argv + 1, argv + argc));
    const std::string out_path = args.get_string("out", "BENCH_engine.json");
    const std::size_t threads = static_cast<std::size_t>(args.get_int(
        "threads",
        static_cast<long long>(util::ThreadPool::configured_width())));
    const long long solver_steps = args.get_int("solver_steps", 20000);

    sim::SimConfig cfg = sim::default_sim_config();
    // Short suite by default: this is a smoke/scaling benchmark, not a
    // paper reproduction. HYDRA_RUN_INSTRUCTIONS and the explicit keys
    // below both override.
    cfg.run_instructions = static_cast<std::uint64_t>(args.get_int(
        "run_instructions",
        static_cast<long long>(
            std::min<std::uint64_t>(cfg.run_instructions, 400'000))));
    cfg.warmup_instructions = static_cast<std::uint64_t>(args.get_int(
        "warmup_instructions",
        static_cast<long long>(
            std::min<std::uint64_t>(cfg.warmup_instructions, 100'000))));

    std::printf("hydra_bench: solver throughput (%lld steps)...\n",
                solver_steps);
    const double steps_per_sec = solver_steps_per_second(cfg, solver_steps);
    std::printf("  %.0f backward-Euler steps/sec\n", steps_per_sec);

    std::printf("hydra_bench: suite wall time, 1 thread...\n");
    const double wall_1 = suite_wall_seconds(cfg, 1);
    std::printf("  %.3f s\n", wall_1);

    double wall_n = wall_1;
    if (threads > 1) {
      std::printf("hydra_bench: suite wall time, %zu threads...\n", threads);
      wall_n = suite_wall_seconds(cfg, threads);
      std::printf("  %.3f s\n", wall_n);
    }
    const double speedup = wall_n > 0.0 ? wall_1 / wall_n : 1.0;
    std::printf("  speedup at %zu threads: %.2fx\n", threads, speedup);

    std::ofstream out(out_path);
    if (!out) {
      throw std::runtime_error("cannot open '" + out_path + "' for write");
    }
    util::JsonWriter w(out);
    w.begin_object();
    w.key("solver_steps_per_second").value(steps_per_sec);
    w.key("solver_steps_measured").value(solver_steps);
    w.key("suite_policy").value("hyb");
    w.key("suite_run_instructions")
        .value(static_cast<unsigned long long>(cfg.run_instructions));
    w.key("suite_wall_seconds_1_thread").value(wall_1);
    w.key("suite_wall_seconds_n_threads").value(wall_n);
    w.key("threads").value(threads);
    w.key("speedup").value(speedup);
    w.end_object();
    out << '\n';
    std::printf("hydra_bench: wrote %s\n", out_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "hydra_bench: " << e.what() << '\n';
    return 1;
  }
}
