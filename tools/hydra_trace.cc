// hydra_trace — record, inspect and verify binary instruction traces.
//
// Usage:
//   hydra_trace record benchmark=<name> count=<n> out=<file>
//   hydra_trace info   in=<file>
//
// `record` materialises a synthetic benchmark's stream into the portable
// binary trace format (workload/trace_io.h); `info` prints a summary
// (instruction mix, branch statistics) of an existing trace.
#include <array>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "util/config.h"
#include "util/table.h"
#include "workload/spec_profiles.h"
#include "workload/trace_io.h"

using namespace hydra;

namespace {

int cmd_record(const util::Config& args) {
  const std::string bench = args.get_string("benchmark", "crafty");
  const auto count =
      static_cast<std::uint64_t>(args.get_int("count", 1'000'000));
  const std::string out_path = args.get_string("out", bench + ".hydt");

  workload::SyntheticTrace source(workload::spec2000_profile(bench));
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::cerr << "cannot open '" << out_path << "' for writing\n";
    return 1;
  }
  workload::write_trace(out, source, count);
  std::cout << "wrote " << count << " ops of " << bench << " to "
            << out_path << '\n';
  return 0;
}

int cmd_info(const util::Config& args) {
  const std::string in_path = args.get_string("in", "");
  std::ifstream in(in_path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open '" << in_path << "'\n";
    return 1;
  }
  workload::RecordedTrace trace(in);

  std::array<std::uint64_t, arch::kNumOpClasses> counts{};
  std::uint64_t taken = 0;
  const std::uint64_t n = trace.size();
  for (std::uint64_t i = 0; i < n; ++i) {
    const arch::MicroOp op = trace.next();
    ++counts[static_cast<int>(op.cls)];
    if (op.cls == arch::OpClass::kBranch && op.branch_taken) ++taken;
  }

  static const char* kNames[] = {"int_alu", "int_mul", "fp_add", "fp_mul",
                                 "load",    "store",   "branch"};
  util::AsciiTable table;
  table.header({"class", "count", "fraction"});
  for (int i = 0; i < arch::kNumOpClasses; ++i) {
    table.row({kNames[i], std::to_string(counts[i]),
               util::AsciiTable::percent(
                   static_cast<double>(counts[i]) / static_cast<double>(n),
                   1)});
  }
  std::cout << "trace: " << in_path << " (" << n << " ops)\n";
  table.print(std::cout);
  const auto branches = counts[static_cast<int>(arch::OpClass::kBranch)];
  if (branches > 0) {
    std::cout << "taken-branch fraction: "
              << util::AsciiTable::percent(
                     static_cast<double>(taken) /
                         static_cast<double>(branches),
                     1)
              << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: hydra_trace record|info key=value...\n";
    return 1;
  }
  try {
    const std::string cmd = argv[1];
    const util::Config args =
        util::Config::from_args(std::vector<std::string>(argv + 2,
                                                         argv + argc));
    if (cmd == "record") return cmd_record(args);
    if (cmd == "info") return cmd_info(args);
    std::cerr << "unknown command '" << cmd << "'\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "hydra_trace: " << e.what() << '\n';
    return 1;
  }
}
