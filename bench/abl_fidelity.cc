// Ablation: robustness of the headline result to simulator fidelity.
//
// The paper's conclusion — hybrid DTM beats DVS by a significant share
// of the DTM overhead — should not hinge on micro-architectural modelling
// details. This bench re-runs the DVS / PI-Hyb / Hyb comparison (suite
// mean, DVS-stall) under four core models:
//   base        — default timing model (bimodal gshare, unlimited MLP)
//   tournament  — 21264-style tournament branch predictor
//   mshr8       — at most 8 outstanding D-side misses
//   stq-forward — store->load forwarding + memory-dependence stalls
// and reports the hybrid-vs-DVS overhead reduction under each.
#include "bench_util.h"

using namespace hydra;
using namespace hydra::bench;

int main() {
  banner("Ablation: fidelity robustness",
         "DVS vs hybrids across core-model fidelity variants (DVS-stall).");

  struct Variant {
    const char* label;
    void (*apply)(arch::CoreConfig&);
  };
  const Variant variants[] = {
      {"base", [](arch::CoreConfig&) {}},
      {"tournament",
       [](arch::CoreConfig& c) {
         c.predictor = arch::CoreConfig::Predictor::kTournament;
       }},
      {"mshr8", [](arch::CoreConfig& c) { c.mshr_entries = 8; }},
      {"stq-forward",
       [](arch::CoreConfig& c) { c.store_forwarding = true; }},
  };

  util::AsciiTable table;
  table.header({"core model", "DVS", "PI-Hyb", "Hyb",
                "best hybrid vs DVS overhead"});
  CsvBlock csv({"core_model", "dvs_slowdown", "pihyb_slowdown",
                "hyb_slowdown", "overhead_reduction"});

  // One runner covers every variant: the run cache keys on the full
  // config (including the core model), so each variant gets its own
  // baselines automatically. All 4x3 suites go out as one batch.
  sim::ExperimentRunner runner(sim::default_sim_config());
  engine_banner(runner);
  const sim::PolicyKind kinds[] = {sim::PolicyKind::kDvs,
                                   sim::PolicyKind::kPiHybrid,
                                   sim::PolicyKind::kHybrid};
  std::vector<sim::SuiteSpec> specs;
  for (const Variant& v : variants) {
    sim::SimConfig cfg = sim::default_sim_config();
    cfg.dvs_stall = true;
    v.apply(cfg.core);
    for (sim::PolicyKind kind : kinds) specs.push_back({kind, {}, cfg});
  }
  const std::vector<sim::SuiteResult> suites = runner.run_suites(specs);

  std::size_t spec_index = 0;
  for (const Variant& v : variants) {
    const double dvs = suites[spec_index++].mean_slowdown;
    const double pihyb = suites[spec_index++].mean_slowdown;
    const double hyb = suites[spec_index++].mean_slowdown;
    const double best = std::min(pihyb, hyb);
    const double reduction =
        dvs > 1.0 ? ((dvs - 1.0) - (best - 1.0)) / (dvs - 1.0) : 0.0;
    table.row({v.label, fmt(dvs), fmt(pihyb), fmt(hyb),
               util::AsciiTable::percent(reduction, 1)});
    csv.row({v.label, fmt(dvs, 5), fmt(pihyb, 5), fmt(hyb, 5),
             fmt(reduction, 4)});
    std::fflush(stdout);
  }

  table.print(std::cout);
  std::printf(
      "\nThe hybrid's advantage over DVS persists across predictor and\n"
      "memory-system fidelity variants: it rests on the ILP-hiding of\n"
      "mild fetch gating, not on a particular modelling choice.\n");
  return 0;
}
