// Extension (robustness): warm restart from the crash-safe run cache.
//
// The hydra_serve north-star treats a completed RunResult as a durable
// artifact: a killed sweep must restart warm from the persistent store,
// and a corrupted store must degrade to recompute — never to wrong
// answers. This bench measures exactly that contract on a small hybrid
// sweep:
//
//   cold     — empty store: every point computes and is spilled to disk;
//   warm     — a fresh runner over the same store: every point must be
//              served from disk (hit rate 1.0, zero computes) and the
//              results must be bit-identical to the cold pass;
//   corrupt  — two shard entries are damaged (byte flip, truncation) as
//              a SIGKILL mid-write would leave them: the restarted
//              runner must quarantine both, recompute only those two,
//              and still reproduce the cold results bit-for-bit.
//
// Writes BENCH_restart.json; scripts/bench_gate.py gates the warm hit
// rate (absolute floor) and bit-identity. Deterministic; honours
// HYDRA_RUN_INSTRUCTIONS.
#include "bench_util.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <vector>

#include "sim/persistent_cache.h"
#include "util/config.h"
#include "util/json.h"

using namespace hydra;
using namespace hydra::bench;

namespace {

namespace fs = std::filesystem;

constexpr const char* kBenchmarks[] = {"crafty", "gzip", "art"};

std::vector<sim::PointSpec> sweep_points(const sim::SimConfig& cfg) {
  std::vector<sim::PointSpec> points;
  for (const char* name : kBenchmarks) {
    points.push_back({workload::spec2000_profile(name),
                      sim::PolicyKind::kHybrid, {}, cfg});
  }
  return points;
}

/// One sweep pass against the store at `dir`; the returned fingerprint
/// is the concatenated bit-exact serialization of every result.
struct Pass {
  std::string fingerprint;
  sim::RunCache::Stats stats;
};

Pass run_pass(const sim::SimConfig& cfg, const std::string& dir) {
  sim::ExperimentRunner runner(cfg);
  sim::PersistentRunCache::Options opts;
  opts.dir = dir;
  runner.set_store(std::make_shared<sim::PersistentRunCache>(opts));
  Pass pass;
  for (const sim::ExperimentResult& r : runner.run_points(sweep_points(cfg))) {
    pass.fingerprint += sim::serialize_run_result(r.dtm);
    pass.fingerprint += sim::serialize_run_result(r.baseline);
  }
  pass.stats = runner.cache_stats();
  return pass;
}

/// Damage two store entries the way a crash or medium error would:
/// flip one payload byte in the first, truncate the second mid-payload.
/// Returns how many files were damaged.
int corrupt_two_entries(const std::string& dir) {
  std::vector<fs::path> entries;
  for (const auto& de : fs::recursive_directory_iterator(dir)) {
    if (de.path().extension() == ".run") entries.push_back(de.path());
  }
  std::sort(entries.begin(), entries.end());
  int damaged = 0;
  if (!entries.empty()) {
    std::fstream f(entries.front(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);  // inside the payload: checksum must now mismatch
    f.put('\x5a');
    ++damaged;
  }
  if (entries.size() > 1) {
    std::error_code ec;
    fs::resize_file(entries[1], fs::file_size(entries[1]) / 2, ec);
    if (!ec) ++damaged;
  }
  return damaged;
}

double hit_rate(const sim::RunCache::Stats& s) {
  return s.misses > 0
             ? static_cast<double>(s.disk_hits) / static_cast<double>(s.misses)
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Config args = util::Config::from_args(
        std::vector<std::string>(argv + 1, argv + argc));
    args.reject_unknown({"out", "dir"});
    const std::string out_path = args.get_string("out", "BENCH_restart.json");
    const std::string dir =
        args.get_string("dir", "ext_cache_restart.cache");

    banner("Extension: crash-safe run cache, warm restart + corruption",
           "Cold sweep -> warm restart -> corrupted restart over one "
           "persistent store; results must stay bit-identical.");

    sim::SimConfig cfg = sim::default_sim_config();
    // Smoke-sized by default (this doubles as a CI gate input); env and
    // HYDRA_RUN_INSTRUCTIONS override as everywhere else.
    cfg.run_instructions =
        std::min<std::uint64_t>(cfg.run_instructions, 300'000);
    cfg.warmup_instructions =
        std::min<std::uint64_t>(cfg.warmup_instructions, 100'000);

    std::error_code ec;
    fs::remove_all(dir, ec);  // always a cold start

    const Pass cold = run_pass(cfg, dir);
    const Pass warm = run_pass(cfg, dir);
    const int damaged = corrupt_two_entries(dir);
    const Pass corrupt = run_pass(cfg, dir);

    const bool warm_identical = warm.fingerprint == cold.fingerprint;
    const bool corrupt_identical = corrupt.fingerprint == cold.fingerprint;

    util::AsciiTable table;
    table.header({"phase", "jobs", "computes", "disk hits", "hit rate",
                  "bit-identical"});
    const auto row = [&table](const char* phase, const Pass& p,
                              bool identical) {
      table.row({phase, std::to_string(p.stats.misses),
                 std::to_string(p.stats.computes),
                 std::to_string(p.stats.disk_hits),
                 fmt(hit_rate(p.stats), 3), identical ? "yes" : "NO"});
    };
    row("cold", cold, true);
    row("warm", warm, warm_identical);
    row("corrupt", corrupt, corrupt_identical);
    table.print(std::cout);

    {
      CsvBlock csv({"phase", "jobs", "computes", "disk_hits", "hit_rate",
                    "bit_identical"});
      const auto csv_row = [&csv](const char* phase, const Pass& p,
                                  bool identical) {
        csv.row({phase, std::to_string(p.stats.misses),
                 std::to_string(p.stats.computes),
                 std::to_string(p.stats.disk_hits), fmt(hit_rate(p.stats), 6),
                 identical ? "1" : "0"});
      };
      csv_row("cold", cold, true);
      csv_row("warm", warm, warm_identical);
      csv_row("corrupt", corrupt, corrupt_identical);
    }

    std::ofstream out(out_path);
    if (!out) {
      throw std::runtime_error("cannot open '" + out_path + "' for write");
    }
    util::JsonWriter w(out);
    w.begin_object();
    w.key("restart_cache_hit_rate").value(hit_rate(warm.stats));
    w.key("restart_bit_identical").value(warm_identical ? 1 : 0);
    w.key("restart_computes").value(warm.stats.computes);
    w.key("corrupt_entries_damaged").value(damaged);
    w.key("corrupt_recovery_bit_identical").value(corrupt_identical ? 1 : 0);
    w.key("corrupt_recovery_computes").value(corrupt.stats.computes);
    w.end_object();
    out << '\n';
    std::printf("wrote %s\n", out_path.c_str());

    fs::remove_all(dir, ec);
    if (!warm_identical || !corrupt_identical || warm.stats.computes != 0) {
      std::cerr << "ext_cache_restart: restart contract violated "
                << "(see table above)\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ext_cache_restart: " << e.what() << '\n';
    return 1;
  }
}
