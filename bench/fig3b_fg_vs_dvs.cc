// Figure 3b: stand-alone fixed-duty fetch gating — slowdown as a
// function of the gating duty cycle, with the stand-alone (binary,
// stall) DVS slowdown superimposed as a reference line.
//
// Paper findings reproduced here:
//  * Slowdown is nearly flat while ILP hides the fetch bubbles, then
//    rises roughly linearly with the gating fraction once ILP is
//    exhausted (the paper's "linear relationship ... sets in at a duty
//    cycle of about 3").
//  * Most duty cycles do NOT eliminate all thermal violations; only the
//    harshest setting does (the paper's duty cycle 0.33 — gate two of
//    every three cycles; gating fraction 0.75 in this calibration).
#include "bench_util.h"

using namespace hydra;
using namespace hydra::bench;

int main() {
  banner("Figure 3b",
         "Stand-alone fetch gating: mean slowdown and residual thermal\n"
         "violations per duty cycle, with stand-alone DVS superimposed.");

  // Gating fractions from mildest to the violation-eliminating maximum.
  const double fractions[] = {0.05, 0.1, 0.2, 1.0 / 3.0, 0.4,
                              0.5,  0.6, 2.0 / 3.0, 0.75};

  sim::SimConfig cfg = sim::default_sim_config();
  cfg.dvs_stall = true;
  sim::ExperimentRunner runner(cfg);
  engine_banner(runner);

  // DVS reference line plus the whole gating sweep in one batch.
  std::vector<sim::SuiteSpec> specs;
  specs.push_back({sim::PolicyKind::kDvs, {}, cfg});
  for (double g : fractions) {
    sim::PolicyParams params;
    params.fetch_gating.fixed_gate_fraction = g;
    specs.push_back({sim::PolicyKind::kFixedFetchGating, params, cfg});
  }
  const std::vector<sim::SuiteResult> suites = runner.run_suites(specs);
  const sim::SuiteResult& dvs = suites.front();

  util::AsciiTable table;
  table.header({"duty cycle", "gate fraction", "FG slowdown",
                "violating benchmarks", "DVS slowdown (ref)"});
  CsvBlock csv({"duty_cycle", "gate_fraction", "fg_slowdown",
                "violating_benchmarks", "dvs_slowdown"});

  std::size_t spec_index = 1;
  for (double g : fractions) {
    const sim::SuiteResult& fg = suites[spec_index++];
    int violating = 0;
    for (const auto& r : fg.per_benchmark) {
      if (r.dtm.violation_fraction > 0.0) ++violating;
    }
    table.row({fmt(1.0 / g, 2), fmt(g, 3), fmt(fg.mean_slowdown),
               std::to_string(violating) + "/9", fmt(dvs.mean_slowdown)});
    csv.row({fmt(1.0 / g, 3), fmt(g, 4), fmt(fg.mean_slowdown, 5),
             std::to_string(violating), fmt(dvs.mean_slowdown, 5)});
    std::fflush(stdout);
  }

  table.print(std::cout);
  std::printf(
      "\npaper: FG slowdown flat while ILP hides bubbles, then rises\n"
      "linearly past duty ~3; only the harshest duty eliminates all\n"
      "violations, which is why stand-alone FG needs PI control.\n");
  return 0;
}
