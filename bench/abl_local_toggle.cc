// Ablation (paper Section 2): local toggling vs fetch gating.
//
// "We have found that local toggling confers little advantage over fetch
// gating and do not consider it further." This bench regenerates that
// comparison: integral-controlled fetch gating, integral-controlled
// issue-domain toggling ("local toggling"), and Pentium-4-style global
// clock gating, on the full suite under DVS-stall conditions (no DVS in
// any of them — these are the pure ILP/throttling mechanisms).
#include "bench_util.h"

using namespace hydra;
using namespace hydra::bench;

int main() {
  banner("Ablation: local toggling vs fetch gating vs clock gating",
         "Stand-alone throttling mechanisms on the nine-benchmark suite.");

  sim::SimConfig cfg = sim::default_sim_config();
  sim::ExperimentRunner runner(cfg);
  engine_banner(runner);

  util::AsciiTable table;
  table.header({"mechanism", "mean slowdown", "violating benchmarks",
                "mean actuation"});
  CsvBlock csv({"mechanism", "mean_slowdown", "violating_benchmarks",
                "mean_actuation"});

  struct Row {
    sim::PolicyKind kind;
    const char* label;
  };
  const Row rows[] = {Row{sim::PolicyKind::kFetchGating, "fetch gating"},
                      Row{sim::PolicyKind::kLocalToggle, "local toggling"},
                      Row{sim::PolicyKind::kClockGating, "clock gating"}};

  // All three mechanism suites in one batch.
  std::vector<sim::SuiteSpec> specs;
  for (const Row& row : rows) specs.push_back({row.kind, {}, cfg});
  const std::vector<sim::SuiteResult> suites = runner.run_suites(specs);

  std::size_t spec_index = 0;
  for (const Row& row : rows) {
    const sim::SuiteResult& suite = suites[spec_index++];
    int violating = 0;
    double actuation = 0.0;
    for (const auto& r : suite.per_benchmark) {
      if (r.dtm.violation_fraction > 0.0) ++violating;
      actuation += r.dtm.mean_gate_fraction +
                   r.dtm.mean_issue_gate_fraction +
                   r.dtm.clock_gated_fraction;
    }
    actuation /= static_cast<double>(suite.per_benchmark.size());
    table.row({row.label, fmt(suite.mean_slowdown),
               std::to_string(violating) + "/9",
               util::AsciiTable::percent(actuation, 1)});
    csv.row({row.label, fmt(suite.mean_slowdown, 5),
             std::to_string(violating), fmt(actuation, 4)});
    std::fflush(stdout);
  }

  table.print(std::cout);
  std::printf(
      "\npaper: local toggling confers little advantage over fetch gating\n"
      "(both exploit ILP; gating issue instead of fetch reaches a similar\n"
      "activity reduction). Global clock gating needs the least duty\n"
      "because stopping the clock also eliminates clock-tree (base)\n"
      "power — but the paper argues stopping the whole clock at a rapid\n"
      "rate is electrically questionable, and treats its fetch-gating\n"
      "results as a lower bound on hybrid DTM's benefit.\n");
  return 0;
}
