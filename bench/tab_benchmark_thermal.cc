// Section 3 (text table): baseline thermal characterisation of the nine
// hottest SPECcpu2000 benchmarks on the low-cost (1.0 K/W) package.
//
// Paper: "All operate above [the trigger] most of the time", "the
// hottest unit is the integer register file" for every benchmark, and
// the package was chosen so some benchmarks run into true thermal
// violations without DTM — which is what makes DTM necessary.
#include "bench_util.h"

using namespace hydra;
using namespace hydra::bench;

int main() {
  banner("Section 3 table: baseline thermal characterisation",
         "No-DTM runs: IPC, power, temperatures, residency per benchmark.");

  sim::SimConfig cfg = sim::default_sim_config();
  sim::ExperimentRunner runner(cfg);
  engine_banner(runner);

  // Submit all nine baselines as one batch so they run concurrently;
  // the per-profile baseline() calls below then hit the cache.
  std::vector<sim::PointSpec> points;
  for (const auto& profile : workload::spec2000_hot_profiles()) {
    points.push_back({profile, sim::PolicyKind::kNone, {}, cfg});
  }
  runner.run_points(points);

  util::AsciiTable table;
  table.header({"benchmark", "IPC", "power[W]", "Tmax[C]", "hottest block",
                ">trigger", ">emergency"});
  CsvBlock csv({"benchmark", "ipc", "power_w", "tmax_c", "hottest_block",
                "above_trigger_fraction", "violation_fraction"});

  int hot_int_reg = 0;
  int above_trigger_mostly = 0;
  int violators = 0;
  for (const auto& profile : workload::spec2000_hot_profiles()) {
    const sim::RunResult& r = runner.baseline(profile);
    if (r.hottest_block == "IntReg") ++hot_int_reg;
    if (r.above_trigger_fraction > 0.9) ++above_trigger_mostly;
    if (r.violation_fraction > 0.0) ++violators;
    table.row({profile.name, fmt(r.ipc, 2), fmt(r.mean_power_watts, 1),
               fmt(r.max_true_celsius, 2), r.hottest_block,
               util::AsciiTable::percent(r.above_trigger_fraction, 1),
               util::AsciiTable::percent(r.violation_fraction, 1)});
    csv.row({profile.name, fmt(r.ipc, 3), fmt(r.mean_power_watts, 2),
             fmt(r.max_true_celsius, 3), r.hottest_block,
             fmt(r.above_trigger_fraction, 4),
             fmt(r.violation_fraction, 4)});
    std::fflush(stdout);
  }

  table.print(std::cout);
  std::printf(
      "\nIntReg hottest: %d/9 (paper: 9/9)   above trigger >90%% of time: "
      "%d/9\nbenchmarks violating 85 C without DTM: %d/9\n",
      hot_int_reg, above_trigger_mostly, violators);
  return 0;
}
