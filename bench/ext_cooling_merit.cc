// Extension (paper Sections 5.1/6, future work): a figure of merit for
// DTM techniques.
//
// "We would eventually like a figure of merit that is an a-priori
// measure of cooling, independent of the specific experimental thermal
// setup; developing such a metric is an interesting and important area
// for future work."
//
// This bench measures exactly that trade-off curve: for each technique
// at each fixed intensity (held constant for a whole run, no feedback),
// it reports the hotspot cooling achieved (mean IntReg temperature drop
// vs the unmanaged baseline) and the slowdown paid, plus the resulting
// merit = cooling per percent of slowdown. The crossover structure of
// hybrid DTM is visible directly: mild fetch gating has the best merit,
// but its cooling saturates; DVS reaches deeper at a worse initial
// merit.
#include "bench_util.h"

#include "util/thread_pool.h"

using namespace hydra;
using namespace hydra::bench;

namespace {

/// Policy that applies one constant actuation unconditionally.
class ConstantPolicy final : public core::DtmPolicy {
 public:
  explicit ConstantPolicy(core::DtmCommand cmd) : cmd_(cmd) {}
  core::DtmCommand update(const core::ThermalSample&) override {
    return cmd_;
  }
  std::string_view name() const override { return "const"; }
  void reset() override {}

 private:
  core::DtmCommand cmd_;
};

}  // namespace

int main() {
  banner("Extension: DTM cooling figure of merit",
         "Hotspot cooling vs slowdown for constant actuation levels\n"
         "(benchmark: crafty, the hottest profile).");

  sim::SimConfig cfg = sim::default_sim_config();
  cfg.dvs_stall = true;
  const workload::WorkloadProfile profile =
      workload::spec2000_profile("crafty");

  // The constant-actuation sweep bypasses ExperimentRunner (custom
  // policy objects), so it fans out on the shared pool directly. Each
  // System is independent; results are joined in submission order.
  util::ThreadPool& pool = util::ThreadPool::global();
  std::printf("engine: %zu worker thread(s) [HYDRA_THREADS]\n", pool.size());

  struct Case {
    std::string technique;
    std::string setting;
    core::DtmCommand cmd;
  };
  std::vector<Case> cases;
  for (double g : {0.1, 0.2, 1.0 / 3.0, 0.5, 2.0 / 3.0, 0.75}) {
    core::DtmCommand cmd;
    cmd.fetch_gate_fraction = g;
    cases.push_back({"fetch gating", "g=" + fmt(g, 2), cmd});
  }
  {
    core::DtmCommand cmd;
    cmd.dvs_level = 1;  // binary low point (0.85 Vnom)
    cases.push_back({"DVS", "Vlow=0.85Vn", cmd});
  }
  {
    core::DtmCommand cmd;
    cmd.clock_gate = true;
    cases.push_back({"clock gating", "50% duty", cmd});
  }

  // Unmanaged reference plus every case, all in flight at once.
  std::future<sim::RunResult> base_future = pool.async([&] {
    return sim::System(profile, cfg, nullptr).run();
  });
  std::vector<std::future<sim::RunResult>> futures;
  for (const Case& c : cases) {
    futures.push_back(pool.async([&, cmd = c.cmd] {
      return sim::System(profile, cfg,
                         std::make_unique<ConstantPolicy>(cmd))
          .run();
    }));
  }
  const sim::RunResult base = base_future.get();

  util::AsciiTable table;
  table.header({"technique", "setting", "slowdown", "hotspot mean [C]",
                "cooling [C]", "merit [C per % slowdown]"});
  CsvBlock csv({"technique", "setting", "slowdown", "hotspot_mean_c",
                "cooling_c", "merit"});

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const sim::RunResult r = futures[i].get();
    const double slowdown = r.wall_seconds / base.wall_seconds;
    const double cooling =
        base.hottest_mean_celsius - r.hottest_mean_celsius;
    const double pct = (slowdown - 1.0) * 100.0;
    const double merit = pct > 0.01 ? cooling / pct : 0.0;
    table.row({cases[i].technique, cases[i].setting, fmt(slowdown),
               fmt(r.hottest_mean_celsius, 2), fmt(cooling, 2),
               pct > 0.01 ? fmt(merit, 2) : std::string("inf")});
    csv.row({cases[i].technique, cases[i].setting, fmt(slowdown, 5),
             fmt(r.hottest_mean_celsius, 3), fmt(cooling, 3),
             fmt(merit, 3)});
    std::fflush(stdout);
  }

  table.print(std::cout);
  std::printf(
      "\nbaseline hotspot mean: %.2f C. Mild fetch gating has the best\n"
      "merit (ILP hides it) but saturating cooling; DVS reaches deeper\n"
      "per unit slowdown at aggressive settings — the crossover that\n"
      "motivates hybrid DTM.\n",
      base.hottest_mean_celsius);
  return 0;
}
