// Extension (robustness): sensor-fault campaigns vs the fail-safe
// supervisor.
//
// The paper's safety argument (Section 3) budgets for sensors that are
// noisy and offset, not for sensors that fail. This bench injects the
// classic failure modes — stuck-at-low, dead, slow drift, stale readings
// — into the hottest block's sensor mid-run and compares each DTM policy
// bare vs wrapped in core::GuardedPolicy: does the true temperature stay
// inside the emergency envelope, and what does the supervision cost in
// slowdown when nothing is wrong?
//
// Deterministic for a fixed campaign seed; honours HYDRA_RUN_INSTRUCTIONS.
#include "bench_util.h"

#include "fault/fault_campaign.h"

using namespace hydra;
using namespace hydra::bench;

namespace {

struct FaultCase {
  const char* name;
  const char* campaign;  ///< empty = fault-free (supervision-cost row)
};

// All campaigns target IntReg, the hottest block under crafty. Times are
// paper-seconds relative to the measured window.
constexpr FaultCase kCases[] = {
    {"none", ""},
    {"stuck-low", "seed 42\nIntReg stuck_at 0.002 inf 40\n"},
    {"dead", "seed 42\nIntReg dead 0.002 inf\n"},
    {"drift", "seed 42\nIntReg drift 0.001 inf -500\n"},
    {"stale", "seed 42\nIntReg stale 0.002 inf\n"},
};

constexpr sim::PolicyKind kPolicies[] = {
    sim::PolicyKind::kPiHybrid,
    sim::PolicyKind::kHybrid,
    sim::PolicyKind::kDvs,
    sim::PolicyKind::kFetchGating,
};

}  // namespace

int main() {
  banner("Extension: sensor-fault campaigns and fail-safe supervision",
         "Single-sensor failures on the hottest block (crafty), each "
         "policy bare vs guarded.");

  const sim::SimConfig base = sim::default_sim_config();
  sim::ExperimentRunner runner(base);
  engine_banner(runner);
  const workload::WorkloadProfile profile =
      workload::spec2000_profile("crafty");

  util::AsciiTable table;
  table.header({"fault", "policy", "guard", "slowdown", "Tmax[C]",
                "viol", "rejected", "failsafe"});
  CsvBlock csv({"fault", "policy", "guard", "slowdown", "max_true_celsius",
                "violation_fraction", "faulted_samples", "sensor_rejections",
                "failsafe_fraction"});

  // The whole 5x4x2 campaign grid as one batch; the fault-free baseline
  // is shared by every point.
  std::vector<sim::PointSpec> points;
  for (const FaultCase& fc : kCases) {
    sim::SimConfig cfg = base;
    if (fc.campaign[0] != '\0') {
      cfg.fault_campaign = fault::FaultCampaign::from_string(
          fc.campaign, sim::sensor_names());
    }
    for (const sim::PolicyKind kind : kPolicies) {
      for (const bool guarded : {false, true}) {
        sim::PolicyParams params;
        params.guarded = guarded;
        points.push_back({profile, kind, params, cfg});
      }
    }
  }
  const std::vector<sim::ExperimentResult> results = runner.run_points(points);

  std::size_t point_index = 0;
  for (const FaultCase& fc : kCases) {
    for (const sim::PolicyKind kind : kPolicies) {
      for (const bool guarded : {false, true}) {
        const sim::ExperimentResult& r = results[point_index++];
        table.row({fc.name, sim::policy_kind_name(kind),
                   guarded ? "yes" : "no", fmt(r.slowdown),
                   fmt(r.dtm.max_true_celsius, 2),
                   util::AsciiTable::percent(r.dtm.violation_fraction, 2),
                   std::to_string(r.dtm.sensor_rejections),
                   util::AsciiTable::percent(r.dtm.failsafe_fraction, 1)});
        csv.row({fc.name, sim::policy_kind_name(kind),
                 guarded ? "1" : "0", fmt(r.slowdown, 5),
                 fmt(r.dtm.max_true_celsius, 3),
                 fmt(r.dtm.violation_fraction, 5),
                 std::to_string(r.dtm.faulted_samples),
                 std::to_string(r.dtm.sensor_rejections),
                 fmt(r.dtm.failsafe_fraction, 4)});
        std::fflush(stdout);
      }
    }
  }

  table.print(std::cout);
  std::printf(
      "\nWith the hottest sensor failed low, dead, or drifting, the bare\n"
      "policies throttle for the wrong block: at full run length Hyb —\n"
      "which runs closest to the emergency threshold — crosses it for a\n"
      "large fraction of the fault window, and the others give up most\n"
      "of their margin to neighbouring sensors. The guarded variants\n"
      "quarantine the sensor and regulate the hidden block from its\n"
      "floorplan neighbours, keeping violations at exactly zero for a\n"
      "modest extra slowdown — the 'none' rows price that supervision\n"
      "overhead (pessimism bias) in fault-free operation.\n");
  return 0;
}
