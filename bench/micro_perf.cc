// Infrastructure micro-benchmarks (google-benchmark): throughput of the
// building blocks — core cycles/s, thermal solver steps, steady-state
// solves, power evaluation, trace generation, sensor sampling. These
// bound how long the figure-reproduction sweeps take.
#include <benchmark/benchmark.h>

#include "arch/core.h"
#include "floorplan/ev7.h"
#include "power/power_model.h"
#include "sensor/sensor.h"
#include "thermal/model_builder.h"
#include "thermal/solver.h"
#include "workload/spec_profiles.h"

namespace {

using namespace hydra;

void BM_TraceGeneration(benchmark::State& state) {
  workload::SyntheticTrace trace(workload::spec2000_profile("gzip"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void BM_CoreCycle(benchmark::State& state) {
  workload::SyntheticTrace trace(workload::spec2000_profile("gzip"));
  arch::CoreConfig cfg;
  arch::Core core(cfg, trace);
  for (int i = 0; i < 100'000; ++i) core.cycle();  // warm
  for (auto _ : state) {
    core.cycle();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["ipc"] = core.stats().ipc();
}
BENCHMARK(BM_CoreCycle);

void BM_ThermalBackwardEulerStep(benchmark::State& state) {
  const auto fp = floorplan::ev7_floorplan();
  const auto model = thermal::build_thermal_model(fp, thermal::Package{});
  thermal::TransientSolver solver(model.network, 45.0);
  thermal::Vector power(model.network.size(), 0.0);
  for (std::size_t i = 0; i < model.num_blocks; ++i) power[i] = 1.5;
  for (auto _ : state) {
    solver.step(power, 3.3e-6);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThermalBackwardEulerStep);

void BM_ThermalRk4Step(benchmark::State& state) {
  const auto fp = floorplan::ev7_floorplan();
  const auto model = thermal::build_thermal_model(fp, thermal::Package{});
  thermal::TransientSolver solver(model.network, 45.0, thermal::Scheme::kRk4);
  thermal::Vector power(model.network.size(), 0.0);
  for (std::size_t i = 0; i < model.num_blocks; ++i) power[i] = 1.5;
  for (auto _ : state) {
    solver.step(power, 3.3e-6);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThermalRk4Step);

void BM_SteadyStateSolve(benchmark::State& state) {
  const auto fp = floorplan::ev7_floorplan();
  const auto model = thermal::build_thermal_model(fp, thermal::Package{});
  thermal::Vector power(model.network.size(), 0.0);
  for (std::size_t i = 0; i < model.num_blocks; ++i) power[i] = 1.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        thermal::steady_state(model.network, power, 45.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SteadyStateSolve);

void BM_PowerEvaluation(benchmark::State& state) {
  const auto fp = floorplan::ev7_floorplan();
  const power::PowerModel pm(fp, power::EnergyModel{});
  arch::ActivityFrame frame;
  frame.cycles = 10'000;
  frame.clocked_cycles = 10'000;
  for (std::size_t i = 0; i < floorplan::kNumBlocks; ++i) {
    frame.events[i] = 4'000.0;
  }
  const std::vector<double> temps(floorplan::kNumBlocks, 83.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pm.block_power(frame, 1.3, 3.0e9, temps));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PowerEvaluation);

void BM_SensorSample(benchmark::State& state) {
  sensor::SensorBank bank(floorplan::kNumBlocks, sensor::SensorConfig{});
  const std::vector<double> truth(floorplan::kNumBlocks, 83.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bank.sample(truth));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SensorSample);

}  // namespace

BENCHMARK_MAIN();
