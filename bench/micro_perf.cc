// Infrastructure micro-benchmarks (google-benchmark): throughput of the
// building blocks — core cycles/s, thermal solver steps, steady-state
// solves, power evaluation, trace generation, sensor sampling — plus
// end-to-end System throughput and suite-level thread scaling. These
// bound how long the figure-reproduction sweeps take.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "arch/core.h"
#include "floorplan/ev7.h"
#include "floorplan/multicore.h"
#include "power/power_model.h"
#include "sensor/sensor.h"
#include "sim/experiment.h"
#include "thermal/model_builder.h"
#include "thermal/simd.h"
#include "thermal/sparse.h"
#include "util/units.h"
#include "thermal/solver.h"
#include "util/thread_pool.h"
#include "workload/spec_profiles.h"

// Global allocation counter so the hot-path benchmarks can assert they
// are allocation-free (see BM_ThermalBackwardEulerStep's allocs_per_step
// counter — the engine's contract is that it stays at zero).
static std::atomic<std::uint64_t> g_heap_allocs{0};

// noinline: when GCC inlines these replacement operators it sees the
// underlying malloc/free pair through new/delete expressions and emits
// spurious -Wmismatched-new-delete at every call site.
__attribute__((noinline)) void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
__attribute__((noinline)) void* operator new[](std::size_t size) {
  return ::operator new(size);
}
__attribute__((noinline)) void operator delete(void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p,
                                               std::size_t) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p,
                                                 std::size_t) noexcept {
  std::free(p);
}

namespace {

using namespace hydra;

void BM_TraceGeneration(benchmark::State& state) {
  workload::SyntheticTrace trace(workload::spec2000_profile("gzip"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void BM_CoreCycle(benchmark::State& state) {
  workload::SyntheticTrace trace(workload::spec2000_profile("gzip"));
  arch::CoreConfig cfg;
  arch::Core core(cfg, trace);
  for (int i = 0; i < 100'000; ++i) core.cycle();  // warm
  for (auto _ : state) {
    core.cycle();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["ipc"] = core.stats().ipc();
}
BENCHMARK(BM_CoreCycle);

// Gated-fetch variant of BM_CoreCycle: exercises the duty-cycle
// accumulators and the issue-scan sleep/consumer-list machinery under a
// starved pipeline — the regime harsh DTM actuation puts the core in.
void BM_CoreCycleGated(benchmark::State& state) {
  workload::SyntheticTrace trace(workload::spec2000_profile("gzip"));
  arch::CoreConfig cfg;
  arch::Core core(cfg, trace);
  core.set_fetch_gate_fraction(0.7);
  for (int i = 0; i < 100'000; ++i) core.cycle();  // warm
  for (auto _ : state) {
    core.cycle();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["ipc"] = core.stats().ipc();
}
BENCHMARK(BM_CoreCycleGated);

// The O(1) bulk idle advance vs the per-cycle loop it replaces. Bulk
// processes `span` idle cycles per iteration at constant cost; the loop
// variant pays per cycle. items/s is idle cycles retired per second.
void BM_CoreIdleBulk(benchmark::State& state) {
  workload::SyntheticTrace trace(workload::spec2000_profile("gzip"));
  arch::Core core(arch::CoreConfig{}, trace);
  const auto span = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    core.idle_cycles(span, false);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(span));
}
BENCHMARK(BM_CoreIdleBulk)->ArgName("span")->Arg(64)->Arg(4096);

void BM_CoreIdleLoop(benchmark::State& state) {
  workload::SyntheticTrace trace(workload::spec2000_profile("gzip"));
  arch::Core core(arch::CoreConfig{}, trace);
  const auto span = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < span; ++i) core.idle_cycle(false);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(span));
}
BENCHMARK(BM_CoreIdleLoop)->ArgName("span")->Arg(64)->Arg(4096);

void BM_ThermalBackwardEulerStep(benchmark::State& state) {
  const auto fp = floorplan::ev7_floorplan();
  const auto model = thermal::build_thermal_model(fp, thermal::Package{});
  thermal::TransientSolver solver(model.network, util::Celsius(45.0));
  thermal::Vector power(model.network.size(), 0.0);
  for (std::size_t i = 0; i < model.num_blocks; ++i) power[i] = 1.5;
  solver.step(power, util::Seconds(3.3e-6));  // warm: factorise the LU for this dt
  const std::uint64_t allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    solver.step(power, util::Seconds(3.3e-6));
  }
  const std::uint64_t allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.SetItemsProcessed(state.iterations());
  // Contract: the warmed per-step path is allocation-free (must be 0).
  state.counters["allocs_per_step"] =
      static_cast<double>(allocs) /
      static_cast<double>(std::max<std::int64_t>(state.iterations(), 1));
}
BENCHMARK(BM_ThermalBackwardEulerStep);

// Same step as above through the fused operator: per step two contiguous
// matvecs instead of an LU solve. Shares the backward-Euler contract that
// the warmed path never allocates.
void BM_ThermalFusedStep(benchmark::State& state) {
  const auto fp = floorplan::ev7_floorplan();
  const auto model = thermal::build_thermal_model(fp, thermal::Package{});
  thermal::TransientSolver solver(model.network, util::Celsius(45.0),
                                  thermal::Scheme::kFusedBE);
  thermal::Vector power(model.network.size(), 0.0);
  for (std::size_t i = 0; i < model.num_blocks; ++i) power[i] = 1.5;
  solver.step(power, util::Seconds(3.3e-6));  // warm: build the operator
  const std::uint64_t allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    solver.step(power, util::Seconds(3.3e-6));
  }
  const std::uint64_t allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.SetItemsProcessed(state.iterations());
  state.counters["allocs_per_step"] =
      static_cast<double>(allocs) /
      static_cast<double>(std::max<std::int64_t>(state.iterations(), 1));
}
BENCHMARK(BM_ThermalFusedStep);

// The fused step under an explicitly selected SIMD backend: arg 0 pins
// the scalar reference kernels, arg 1 the backend the dispatcher picked
// at startup (label shows which — on a machine without vector support
// both legs run scalar). The ratio of the two legs is the measured
// vectorisation speedup of the thermal hot loop.
void BM_ThermalFusedStepSimd(benchmark::State& state) {
  namespace simd = thermal::simd;
  const simd::Backend prev = simd::active_backend();
  const simd::Backend backend =
      state.range(0) == 0 ? simd::Backend::kScalar : prev;
  simd::set_backend_for_test(backend);
  const auto fp = floorplan::ev7_floorplan();
  const auto model = thermal::build_thermal_model(fp, thermal::Package{});
  thermal::TransientSolver solver(model.network, util::Celsius(45.0),
                                  thermal::Scheme::kFusedBE);
  thermal::Vector power(model.network.size(), 0.0);
  for (std::size_t i = 0; i < model.num_blocks; ++i) power[i] = 1.5;
  solver.step(power, util::Seconds(3.3e-6));  // warm: build the operator
  const std::uint64_t allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    solver.step(power, util::Seconds(3.3e-6));
  }
  const std::uint64_t allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.SetItemsProcessed(state.iterations());
  state.counters["allocs_per_step"] =
      static_cast<double>(allocs) /
      static_cast<double>(std::max<std::int64_t>(state.iterations(), 1));
  state.SetLabel(simd::backend_name(backend));
  simd::set_backend_for_test(prev);
}
BENCHMARK(BM_ThermalFusedStepSimd)->ArgName("vector")->Arg(0)->Arg(1);

// Sparse LDL^T factorisation of the 16-core die step matrix (CSR
// assembly + minimum-degree ordering + numeric factor): the
// factorise-once cost the sparse path pays per distinct rounded dt,
// amortised over every step of every run sharing the LuCache entry.
void BM_SparseCholeskyFactor(benchmark::State& state) {
  const auto fp = floorplan::multicore_floorplan(16);
  const auto model = thermal::build_thermal_model(fp, thermal::Package{});
  const thermal::CsrMatrix g = model.network.conductance_csr();
  std::size_t nnz_l = 0;
  for (auto _ : state) {
    thermal::SparseCholesky chol(g);
    nnz_l = chol.factor_nnz();
    benchmark::DoNotOptimize(chol);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["nodes"] = static_cast<double>(g.rows);
  state.counters["nnz_g"] = static_cast<double>(g.nnz());
  state.counters["nnz_l"] = static_cast<double>(nnz_l);
}
BENCHMARK(BM_SparseCholeskyFactor)->Unit(benchmark::kMillisecond);

// One sparse backward-Euler step on the 16-core die (rhs build + LDL^T
// substitution through the gather-dot kernels). Shares the fused-path
// contract that the warmed per-step path never allocates. Compare
// against BM_DieStep/cores:16's dense leg for the crossover evidence.
void BM_SparseStep(benchmark::State& state) {
  const thermal::SparseMode prev = thermal::sparse_mode();
  thermal::set_sparse_mode_for_test(thermal::SparseMode::kOn);
  const auto fp = floorplan::multicore_floorplan(16);
  const auto model = thermal::build_thermal_model(fp, thermal::Package{});
  thermal::TransientSolver solver(model.network, util::Celsius(45.0),
                                  thermal::Scheme::kFusedBE);
  thermal::Vector power(model.network.size(), 0.0);
  for (std::size_t i = 0; i < model.num_blocks; ++i) power[i] = 0.1;
  solver.step(power, util::Seconds(3.3e-6));  // warm: build the factor
  const std::uint64_t allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    solver.step(power, util::Seconds(3.3e-6));
  }
  const std::uint64_t allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.SetItemsProcessed(state.iterations());
  state.counters["allocs_per_step"] =
      static_cast<double>(allocs) /
      static_cast<double>(std::max<std::int64_t>(state.iterations(), 1));
  state.counters["sparse_path"] = solver.sparse_path() ? 1.0 : 0.0;
  thermal::set_sparse_mode_for_test(prev);
}
BENCHMARK(BM_SparseStep);

// The die-level thermal step across die sizes, dense fused (vector 0)
// vs sparse (vector 1) — the measured dense/sparse crossover lives in
// the ratio of these legs: dense wins at the single-core size, sparse
// wins from 4 cores up and the gap widens superlinearly (the fused step
// is O(n^2), the substitution O(nnz(L)) ~ O(n)).
void BM_DieStep(benchmark::State& state) {
  const thermal::SparseMode prev = thermal::sparse_mode();
  thermal::set_sparse_mode_for_test(state.range(1) == 0
                                        ? thermal::SparseMode::kOff
                                        : thermal::SparseMode::kOn);
  const auto cores = static_cast<std::size_t>(state.range(0));
  const auto fp = floorplan::multicore_floorplan(cores);
  const auto model = thermal::build_thermal_model(fp, thermal::Package{});
  thermal::TransientSolver solver(model.network, util::Celsius(45.0),
                                  thermal::Scheme::kFusedBE);
  thermal::Vector power(model.network.size(), 0.0);
  for (std::size_t i = 0; i < model.num_blocks; ++i) power[i] = 0.1;
  solver.step(power, util::Seconds(3.3e-6));  // warm: build the operator
  const std::uint64_t allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    solver.step(power, util::Seconds(3.3e-6));
  }
  const std::uint64_t allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.SetItemsProcessed(state.iterations());
  state.counters["allocs_per_step"] =
      static_cast<double>(allocs) /
      static_cast<double>(std::max<std::int64_t>(state.iterations(), 1));
  state.counters["nodes"] = static_cast<double>(model.network.size());
  state.SetLabel(solver.sparse_path() ? "sparse" : "dense");
  thermal::set_sparse_mode_for_test(prev);
}
BENCHMARK(BM_DieStep)
    ->ArgNames({"cores", "sparse"})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1});

void BM_ThermalRk4Step(benchmark::State& state) {
  const auto fp = floorplan::ev7_floorplan();
  const auto model = thermal::build_thermal_model(fp, thermal::Package{});
  thermal::TransientSolver solver(model.network, util::Celsius(45.0),
                                  thermal::Scheme::kRk4);
  thermal::Vector power(model.network.size(), 0.0);
  for (std::size_t i = 0; i < model.num_blocks; ++i) power[i] = 1.5;
  for (auto _ : state) {
    solver.step(power, util::Seconds(3.3e-6));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThermalRk4Step);

void BM_SteadyStateSolve(benchmark::State& state) {
  const auto fp = floorplan::ev7_floorplan();
  const auto model = thermal::build_thermal_model(fp, thermal::Package{});
  thermal::Vector power(model.network.size(), 0.0);
  for (std::size_t i = 0; i < model.num_blocks; ++i) power[i] = 1.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        thermal::steady_state(model.network, power, util::Celsius(45.0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SteadyStateSolve);

void BM_PowerEvaluation(benchmark::State& state) {
  const auto fp = floorplan::ev7_floorplan();
  const power::PowerModel pm(fp, power::EnergyModel{});
  arch::ActivityFrame frame;
  frame.cycles = 10'000;
  frame.clocked_cycles = 10'000;
  for (std::size_t i = 0; i < floorplan::kNumBlocks; ++i) {
    frame.events[i] = 4'000.0;
  }
  const std::vector<double> temps(floorplan::kNumBlocks, 83.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pm.block_power(frame, util::Volts(1.3), util::Hertz(3.0e9), temps));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PowerEvaluation);

// Batch leakage evaluation — the per-block exp chain with the
// voltage-scale division and constants hoisted, as run once per thermal
// step on the power hot path.
void BM_LeakageBatch(benchmark::State& state) {
  const auto fp = floorplan::ev7_floorplan();
  const power::LeakageModel leak(fp);
  const std::vector<double> temps(floorplan::kNumBlocks, 83.0);
  std::vector<double> out(floorplan::kNumBlocks, 0.0);
  for (auto _ : state) {
    leak.power_into(temps, util::Volts(1.3), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(floorplan::kNumBlocks));
}
BENCHMARK(BM_LeakageBatch);

void BM_SensorSample(benchmark::State& state) {
  sensor::SensorBank bank(floorplan::kNumBlocks, sensor::SensorConfig{});
  const std::vector<double> truth(floorplan::kNumBlocks, 83.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bank.sample(truth));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SensorSample);

/// Short simulation config for the end-to-end benchmarks below.
sim::SimConfig short_sim_config() {
  sim::SimConfig cfg = sim::default_sim_config();
  cfg.run_instructions = std::min<std::uint64_t>(cfg.run_instructions,
                                                 120'000);
  cfg.warmup_instructions =
      std::min<std::uint64_t>(cfg.warmup_instructions, 40'000);
  return cfg;
}

// End-to-end System throughput: one short no-DTM run per iteration,
// reported as committed instructions/second. The System is constructed
// once and re-run: after the first (warm) run every run() is
// allocation-free — scratch buffers, accumulators and the thermal
// fixed-point all reuse member storage — which allocs_per_step asserts
// (contract: 0, with observability disabled).
void BM_SystemRunShort(benchmark::State& state) {
  const sim::SimConfig cfg = short_sim_config();
  const workload::WorkloadProfile profile =
      workload::spec2000_profile("gzip");
  sim::System system(profile, cfg, nullptr);
  benchmark::DoNotOptimize(system.run());  // warm: one-time allocations
  const std::uint64_t allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run());
  }
  const std::uint64_t allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfg.run_instructions));
  state.counters["allocs_per_step"] =
      static_cast<double>(allocs) /
      static_cast<double>(std::max<std::int64_t>(state.iterations(), 1));
}
BENCHMARK(BM_SystemRunShort)->Unit(benchmark::kMillisecond);

// Suite-level thread scaling: a full hybrid suite through the engine on
// a fixed-width pool. A fresh runner per iteration keeps memoization
// from short-circuiting repeats; the argument is the pool width.
void BM_SuiteParallel(benchmark::State& state) {
  const sim::SimConfig cfg = short_sim_config();
  const auto width = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    util::ThreadPool pool(width);
    sim::ExperimentRunner runner(cfg, &pool);
    benchmark::DoNotOptimize(
        runner.run_suite(sim::PolicyKind::kHybrid, {}, cfg));
  }
  state.SetItemsProcessed(state.iterations() * 9);
}
BENCHMARK(BM_SuiteParallel)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Lockstep-batched sweep vs the serial per-run path: eight fresh sweep
// points (four benchmarks x two policies, one shared thermal model)
// through run_points with the argument as batch width (0 disables
// batching). A fresh runner per iteration keeps memoization from
// short-circuiting repeats; the single-threaded pool isolates the
// batching gain from pool parallelism. items/s is sweep points per
// second.
void BM_BatchedSweep(benchmark::State& state) {
  const sim::SimConfig cfg = short_sim_config();
  const auto width = static_cast<std::size_t>(state.range(0));
  std::vector<sim::PointSpec> points;
  for (const char* bench : {"gzip", "crafty", "vortex", "gcc"}) {
    const workload::WorkloadProfile profile =
        workload::spec2000_profile(bench);
    points.push_back({profile, sim::PolicyKind::kHybrid, {}, cfg});
    points.push_back({profile, sim::PolicyKind::kDvs, {}, cfg});
  }
  std::size_t groups = 0;
  for (auto _ : state) {
    util::ThreadPool pool(1);
    sim::ExperimentRunner runner(cfg, &pool);
    runner.set_batch_width(width);
    benchmark::DoNotOptimize(runner.run_points(points));
    groups = runner.last_batched_groups();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(points.size()));
  state.counters["batched_groups"] = static_cast<double>(groups);
}
BENCHMARK(BM_BatchedSweep)
    ->ArgName("batch")
    ->Arg(0)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
