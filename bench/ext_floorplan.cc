// Extension: thermal-aware floorplanning (follow-on work from the same
// group — reducing the hotspot by placement instead of, or alongside,
// runtime DTM).
//
// Derives the hottest benchmark's per-block power from the simulator,
// evaluates the EV7-like reference layout, then anneals a slicing-tree
// core layout to minimise the steady-state hotspot. The reduction
// translates directly into DTM headroom: every degree shaved off the
// hotspot is a degree of thermal stress the runtime policies no longer
// have to buy with slowdown.
#include "bench_util.h"

#include "arch/core.h"
#include "floorplan/annealer.h"
#include "floorplan/ev7.h"
#include "power/power_model.h"
#include "thermal/model_builder.h"
#include "util/units.h"
#include "thermal/solver.h"

using namespace hydra;
using namespace hydra::bench;

int main() {
  banner("Extension: thermal-aware floorplanning",
         "Annealed slicing-tree core layout vs the EV7-like reference\n"
         "for the hottest benchmark's power map (crafty).");

  // Representative per-block power for crafty.
  const workload::WorkloadProfile profile =
      workload::spec2000_profile("crafty");
  workload::SyntheticTrace trace(profile);
  arch::CoreConfig core_cfg;
  arch::Core core(core_cfg, trace);
  while (core.committed() < 400'000) core.cycle();
  core.take_interval_activity();
  while (core.committed() < 1'400'000) core.cycle();
  const arch::ActivityFrame frame = core.take_interval_activity();

  const floorplan::Floorplan reference = floorplan::ev7_floorplan();
  const power::PowerModel pm(reference, power::EnergyModel{});
  const thermal::Package pkg;

  // Fixed-point power at the reference layout.
  thermal::Vector temps(0);
  {
    const auto model = thermal::build_thermal_model(reference, pkg);
    temps.assign(model.network.size(), 80.0);
    for (int i = 0; i < 10; ++i) {
      const auto watts = pm.block_power(frame, util::Volts(1.3), util::Hertz(3.0e9), temps);
      temps = thermal::steady_state(model.network,
                                    model.expand_power(watts),
                                    util::Celsius(45.0));
    }
  }
  const std::vector<double> watts = pm.block_power(frame, util::Volts(1.3), util::Hertz(3.0e9), temps);
  double l2_watts = 0.0;
  for (std::size_t i = 0; i < 3; ++i) l2_watts += watts[i];

  double reference_peak = temps[0];
  for (std::size_t i = 1; i < floorplan::kNumBlocks; ++i) {
    reference_peak = std::max(reference_peak, temps[i]);
  }

  floorplan::AnnealerConfig cfg;
  cfg.iterations = 4000;
  cfg.l2_total_watts = l2_watts;
  const floorplan::AnnealResult result = floorplan::anneal_core_floorplan(
      floorplan::ev7_core_block_specs(watts), pkg, cfg);

  util::AsciiTable table;
  table.header({"layout", "hotspot [C]", "vs reference"});
  CsvBlock csv({"layout", "hotspot_c", "delta_c"});
  table.row({"EV7-like reference", fmt(reference_peak, 2), "-"});
  csv.row({"reference", fmt(reference_peak, 3), "0"});
  table.row({"annealer start (balanced tree)",
             fmt(result.initial_peak_celsius, 2),
             fmt(result.initial_peak_celsius - reference_peak, 2)});
  csv.row({"balanced_start", fmt(result.initial_peak_celsius, 3),
           fmt(result.initial_peak_celsius - reference_peak, 3)});
  table.row({"annealed", fmt(result.peak_celsius, 2),
             fmt(result.peak_celsius - reference_peak, 2)});
  csv.row({"annealed", fmt(result.peak_celsius, 3),
           fmt(result.peak_celsius - reference_peak, 3)});
  table.print(std::cout);

  std::printf(
      "\nannealer: %d/%d moves accepted, worst block aspect %.2f\n"
      "Every degree shaved off the hotspot is thermal stress the DTM\n"
      "policies no longer pay for at runtime.\n",
      result.accepted_moves, result.evaluated_moves, result.max_aspect);
  return 0;
}
