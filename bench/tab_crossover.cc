// Section 5.1 (text claim): crossover-point invariance.
//
// The paper performed the crossover search "for binary DVS with
// different low-voltage settings, and with and without the PI
// controller, and always found the same crossover points", attributing
// this to the fetch-duty/ILP interaction being a purely architectural
// phenomenon. This binary repeats the search over a grid of low-voltage
// settings for both hybrid implementations and reports the best
// crossover in each configuration.
#include "bench_util.h"

using namespace hydra;
using namespace hydra::bench;

int main() {
  banner("Section 5.1 claim: crossover invariance",
         "Best hybrid crossover duty cycle vs DVS low voltage and\n"
         "controller choice (PI-Hyb vs Hyb), DVS-stall.");

  const double duties[] = {5.0, 4.0, 3.0, 2.5, 2.0};
  const double v_lows[] = {0.80, 0.85, 0.90};
  // A representative benchmark subset keeps the 2x3x5 grid affordable;
  // the crossover is a per-configuration optimum, not a suite statistic.
  const char* benches[] = {"crafty", "gzip", "mesa", "art"};

  sim::SimConfig cfg = sim::default_sim_config();
  cfg.dvs_stall = true;
  sim::ExperimentRunner runner(cfg);
  engine_banner(runner);

  // The whole 2x3x5x4 grid as one batch of points; the per-benchmark
  // baselines are shared across every grid cell.
  std::vector<sim::PointSpec> points;
  for (sim::PolicyKind kind :
       {sim::PolicyKind::kPiHybrid, sim::PolicyKind::kHybrid}) {
    for (double v_low : v_lows) {
      cfg.v_low_fraction = v_low;
      for (double duty : duties) {
        sim::PolicyParams params;
        params.hybrid.crossover_gate_fraction = 1.0 / duty;
        for (const char* bench : benches) {
          points.push_back(
              {workload::spec2000_profile(bench), kind, params, cfg});
        }
      }
    }
  }
  const std::vector<sim::ExperimentResult> results = runner.run_points(points);

  // The optimum sits in a flat basin, so alongside the argmin we report
  // the *plateau*: every duty cycle within 0.3 % of the best. The
  // paper's invariance claim corresponds to these plateaus overlapping
  // across configurations.
  constexpr double kPlateauTol = 0.003;

  util::AsciiTable table;
  table.header({"policy", "Vlow/Vnom", "best duty", "slowdown at best",
                "plateau (within 0.3%)"});
  CsvBlock csv({"policy", "v_low_fraction", "best_duty", "best_slowdown",
                "plateau_duties"});

  std::size_t point_index = 0;
  for (sim::PolicyKind kind :
       {sim::PolicyKind::kPiHybrid, sim::PolicyKind::kHybrid}) {
    for (double v_low : v_lows) {
      std::vector<std::pair<double, double>> curve;  // duty, slowdown
      for (double duty : duties) {
        double mean = 0.0;
        for (std::size_t b = 0; b < std::size(benches); ++b) {
          mean += results[point_index++].slowdown;
        }
        curve.emplace_back(duty, mean / std::size(benches));
      }
      double best_slowdown = 1e9;
      double best_duty = 0.0;
      for (const auto& [duty, s] : curve) {
        if (s < best_slowdown) {
          best_slowdown = s;
          best_duty = duty;
        }
      }
      std::string plateau;
      for (const auto& [duty, s] : curve) {
        if (s <= best_slowdown + kPlateauTol) {
          if (!plateau.empty()) plateau += ", ";
          plateau += fmt(duty, 1);
        }
      }
      table.row({policy_kind_name(kind), fmt(v_low, 2), fmt(best_duty, 1),
                 fmt(best_slowdown), plateau});
      csv.row({policy_kind_name(kind), fmt(v_low, 3), fmt(best_duty, 2),
               fmt(best_slowdown, 5), plateau});
      std::fflush(stdout);
    }
  }

  table.print(std::cout);
  std::printf(
      "\npaper: the crossover point is the same for every low-voltage\n"
      "setting and with or without PI control — the fetch-duty/ILP\n"
      "interaction is purely architectural.\n");
  return 0;
}
