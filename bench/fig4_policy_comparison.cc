// Figure 4: DTM slowdown averaged across the nine hot SPECcpu2000
// profiles, comparing fetch gating (FG), DVS, PI-Hyb and Hyb, for
// (a) DVS-stall and (b) DVS-ideal.
//
// Paper findings reproduced here:
//  * FG is the worst policy, DVS better, the hybrids best.
//  * Under DVS-stall the hybrid reduces DTM overhead by ~25 % relative
//    to DVS; under DVS-ideal the benefit shrinks (paper: ~11 %).
//  * Eliminating PI control (Hyb vs PI-Hyb) sacrifices almost nothing,
//    and Hyb is slightly better under DVS-stall.
//  * Differences vs DVS are tested with a paired t-test at 99 %
//    confidence, as in the paper.
#include "bench_util.h"
#include "util/stats.h"

using namespace hydra;
using namespace hydra::bench;

int main() {
  banner("Figure 4 (a: DVS-stall, b: DVS-ideal)",
         "Mean DTM slowdown over nine SPEC2000 profiles per policy.");

  sim::SimConfig cfg = sim::default_sim_config();
  sim::ExperimentRunner runner(cfg);
  engine_banner(runner);

  const sim::PolicyKind kinds[] = {
      sim::PolicyKind::kFetchGating, sim::PolicyKind::kDvs,
      sim::PolicyKind::kPiHybrid, sim::PolicyKind::kHybrid};

  // All eight (variant, policy) suites in one batch; the stall and ideal
  // variants share the nine memoized baselines.
  std::vector<sim::SuiteSpec> specs;
  for (bool stall : {true, false}) {
    cfg.dvs_stall = stall;
    for (sim::PolicyKind kind : kinds) {
      specs.push_back({kind, {}, cfg});
    }
  }
  const std::vector<sim::SuiteResult> all_suites = runner.run_suites(specs);

  CsvBlock csv({"variant", "policy", "mean_slowdown", "ci99_half_width",
                "t_vs_dvs", "t_crit_99", "overhead_reduction_vs_dvs"});

  std::size_t spec_index = 0;
  for (bool stall : {true, false}) {
    const char* variant = stall ? "DVS-stall" : "DVS-ideal";
    std::printf("\n--- Figure 4%s: %s ---\n", stall ? "a" : "b", variant);

    std::vector<sim::SuiteResult> suites(
        all_suites.begin() + spec_index,
        all_suites.begin() + spec_index + std::size(kinds));
    spec_index += std::size(kinds);
    const std::vector<double> dvs_slowdowns = suites[1].slowdowns();
    const double dvs_overhead = suites[1].mean_slowdown - 1.0;

    util::AsciiTable table;
    table.header({"policy", "mean slowdown", "99% CI", "overhead",
                  "vs DVS overhead", "|t| vs DVS (crit 3.355)"});
    for (std::size_t i = 0; i < suites.size(); ++i) {
      const sim::SuiteResult& s = suites[i];
      const std::vector<double> xs = s.slowdowns();
      const double t =
          i == 1 ? 0.0 : util::paired_t_statistic(xs, dvs_slowdowns);
      const double reduction =
          dvs_overhead > 0.0
              ? (dvs_overhead - (s.mean_slowdown - 1.0)) / dvs_overhead
              : 0.0;
      table.row({policy_kind_name(kinds[i]), fmt(s.mean_slowdown),
                 "+/-" + fmt(s.ci99_half_width), overhead(s.mean_slowdown),
                 i == 1 ? "-" : util::AsciiTable::percent(reduction, 1),
                 i == 1 ? "-" : fmt(std::abs(t), 2)});
      csv.row({variant, policy_kind_name(kinds[i]), fmt(s.mean_slowdown, 5),
               fmt(s.ci99_half_width, 5), fmt(std::abs(t), 3),
               fmt(util::t_critical_99(xs.size() - 1), 3),
               fmt(reduction, 4)});
      std::fflush(stdout);
    }
    table.print(std::cout);

    std::printf("\nper-benchmark slowdowns:\n");
    util::AsciiTable detail;
    std::vector<std::string> header = {"benchmark"};
    for (sim::PolicyKind kind : kinds) {
      header.push_back(policy_kind_name(kind));
    }
    detail.header(header);
    for (std::size_t b = 0; b < suites[0].per_benchmark.size(); ++b) {
      std::vector<std::string> row = {
          suites[0].per_benchmark[b].dtm.benchmark};
      for (const sim::SuiteResult& s : suites) {
        row.push_back(fmt(s.per_benchmark[b].slowdown, 3));
      }
      detail.row(row);
    }
    detail.print(std::cout);
  }

  std::printf(
      "\npaper: hybrid beats DVS by ~25%% of DTM overhead under DVS-stall\n"
      "and ~11%% under DVS-ideal; Hyb ~= PI-Hyb (slightly better with\n"
      "stall); differences significant at 99%% confidence.\n");
  return 0;
}
