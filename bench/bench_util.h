// Shared helpers for the figure/table reproduction binaries.
//
// Every binary prints (a) a banner naming the paper artefact it
// regenerates, (b) a human-readable table, and (c) machine-readable CSV
// between BEGIN-CSV / END-CSV markers. Run length honours the
// HYDRA_RUN_INSTRUCTIONS / HYDRA_WARMUP_INSTRUCTIONS environment
// variables (see sim::default_sim_config).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "util/csv.h"
#include "util/table.h"

namespace hydra::bench {

inline void banner(const std::string& artefact, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("hydra-dtm | %s\n", artefact.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("==============================================================\n");
}

class CsvBlock {
 public:
  explicit CsvBlock(std::vector<std::string> header) : writer_(std::cout) {
    std::printf("BEGIN-CSV\n");
    writer_.row(header);
  }
  ~CsvBlock() { std::printf("END-CSV\n"); }
  void row(const std::vector<std::string>& cells) { writer_.row(cells); }

 private:
  util::CsvWriter writer_;
};

inline std::string fmt(double v, int precision = 4) {
  return util::AsciiTable::num(v, precision);
}

/// DTM overhead (slowdown - 1) as a percentage string.
inline std::string overhead(double slowdown) {
  return util::AsciiTable::percent(slowdown - 1.0, 2);
}

/// Announce the parallel experiment engine under the banner. Every
/// bench binary drives its sweep through one ExperimentRunner so points
/// overlap on the HYDRA_THREADS-wide pool and repeated points (shared
/// baselines, reference lines) are memoized; results are deterministic
/// at any width.
inline void engine_banner(const sim::ExperimentRunner& runner) {
  std::printf("engine: %zu worker thread(s) [HYDRA_THREADS]\n",
              runner.threads());
}

}  // namespace hydra::bench
