// Figure 3a: PI-Hyb slowdown as a function of the maximum fetch-gating
// duty cycle (the ILP/DVS crossover point), averaged across the nine hot
// SPEC2000 profiles, for both DVS-stall and DVS-ideal.
//
// Paper findings reproduced here:
//  * With DVS-stall, the best crossover is a duty cycle around 3 (gate
//    fetch one cycle in three); harsher settings starve ILP, gentler
//    settings push work onto DVS and its switching stalls.
//  * With DVS-ideal, the gentlest gating is preferred: without switch
//    stalls, only gating that ILP hides almost completely beats DVS.
#include "bench_util.h"

using namespace hydra;
using namespace hydra::bench;

int main() {
  banner("Figure 3a",
         "PI-Hyb mean slowdown vs maximum fetch-gating duty cycle.\n"
         "Duty cycle d means fetch is gated once every d cycles\n"
         "(gating fraction 1/d); larger gating fractions mean DVS engages "
         "later.");

  const double duty_cycles[] = {20.0, 10.0, 5.0, 4.0, 3.0, 2.5, 2.0, 1.5};

  sim::SimConfig cfg = sim::default_sim_config();
  sim::ExperimentRunner runner(cfg);
  engine_banner(runner);

  // Whole sweep in one batch: every (duty, stall/ideal) suite point runs
  // concurrently and the nine baselines are shared across all of them.
  std::vector<sim::SuiteSpec> specs;
  for (double duty : duty_cycles) {
    sim::PolicyParams params;
    params.hybrid.crossover_gate_fraction = 1.0 / duty;
    cfg.dvs_stall = true;
    specs.push_back({sim::PolicyKind::kPiHybrid, params, cfg});
    cfg.dvs_stall = false;
    specs.push_back({sim::PolicyKind::kPiHybrid, params, cfg});
  }
  const std::vector<sim::SuiteResult> suites = runner.run_suites(specs);

  util::AsciiTable table;
  table.header({"duty cycle", "gate fraction", "slowdown (DVS-stall)",
                "slowdown (DVS-ideal)"});
  CsvBlock csv({"duty_cycle", "gate_fraction", "slowdown_stall",
                "slowdown_ideal"});

  double best_stall = 1e9;
  double best_stall_duty = 0.0;
  double best_ideal = 1e9;
  double best_ideal_duty = 0.0;
  std::vector<std::pair<double, double>> stall_curve;

  std::size_t spec_index = 0;
  for (double duty : duty_cycles) {
    const double stall = suites[spec_index++].mean_slowdown;
    const double ideal = suites[spec_index++].mean_slowdown;

    stall_curve.emplace_back(duty, stall);
    if (stall < best_stall) {
      best_stall = stall;
      best_stall_duty = duty;
    }
    if (ideal < best_ideal) {
      best_ideal = ideal;
      best_ideal_duty = duty;
    }

    table.row({fmt(duty, 1), fmt(1.0 / duty, 3), fmt(stall), fmt(ideal)});
    csv.row({fmt(duty, 2), fmt(1.0 / duty, 4), fmt(stall, 5),
             fmt(ideal, 5)});
    std::fflush(stdout);
  }

  table.print(std::cout);
  std::string plateau;
  for (const auto& [duty, s] : stall_curve) {
    if (s <= best_stall + 0.003) {
      if (!plateau.empty()) plateau += ", ";
      plateau += fmt(duty, 1);
    }
  }
  std::printf(
      "\nbest crossover: duty %.1f (DVS-stall)   duty %.1f (DVS-ideal)\n"
      "stall plateau (within 0.3%%): %s\n"
      "paper:          duty 3   (DVS-stall)   duty 20  (DVS-ideal)\n",
      best_stall_duty, best_ideal_duty, plateau.c_str());
  return 0;
}
