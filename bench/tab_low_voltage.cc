// Section 4.1 (text claim): the largest low-voltage setting that
// eliminates all thermal violations.
//
// The paper: "With our heat sink and benchmarks, 85% of the nominal
// voltage is the largest value for the low-voltage setting that
// eliminates thermal violations." This binary sweeps the binary-DVS low
// voltage and reports, per setting, the worst residual violation and the
// mean slowdown — identifying the highest safe setting.
#include "bench_util.h"

using namespace hydra;
using namespace hydra::bench;

int main() {
  banner("Section 4.1 claim: largest safe DVS low voltage",
         "Binary DVS (stall) with the low point at a fraction of Vnom.");

  const double fractions[] = {0.95, 0.90, 0.875, 0.85, 0.80, 0.75};

  sim::SimConfig cfg = sim::default_sim_config();
  cfg.dvs_stall = true;
  sim::ExperimentRunner runner(cfg);
  engine_banner(runner);

  // One suite per low-voltage setting, all in flight at once.
  std::vector<sim::SuiteSpec> specs;
  for (double frac : fractions) {
    cfg.v_low_fraction = frac;
    specs.push_back({sim::PolicyKind::kDvs, {}, cfg});
  }
  const std::vector<sim::SuiteResult> suites = runner.run_suites(specs);

  util::AsciiTable table;
  table.header({"Vlow/Vnom", "Vlow [V]", "f(Vlow) [GHz]", "slowdown",
                "violating benchmarks", "worst violation"});
  CsvBlock csv({"v_low_fraction", "v_low", "f_low_ghz", "slowdown",
                "violating_benchmarks", "worst_violation_fraction"});

  double best_safe = 0.0;
  std::size_t spec_index = 0;
  for (double frac : fractions) {
    cfg.v_low_fraction = frac;
    const power::DvsLadder ladder = sim::make_ladder(cfg);
    const sim::SuiteResult& suite = suites[spec_index++];
    int violating = 0;
    double worst = 0.0;
    for (const auto& r : suite.per_benchmark) {
      if (r.dtm.violation_fraction > 0.0) ++violating;
      worst = std::max(worst, r.dtm.violation_fraction);
    }
    if (violating == 0) best_safe = std::max(best_safe, frac);
    const auto& low = ladder.point(ladder.lowest_level());
    table.row({fmt(frac, 3), fmt(low.voltage.value(), 3),
               fmt(low.frequency.value() / 1e9, 2), fmt(suite.mean_slowdown),
               std::to_string(violating) + "/9",
               util::AsciiTable::percent(worst, 2)});
    csv.row({fmt(frac, 3), fmt(low.voltage.value(), 4), fmt(low.frequency.value() / 1e9, 4),
             fmt(suite.mean_slowdown, 5), std::to_string(violating),
             fmt(worst, 5)});
    std::fflush(stdout);
  }

  table.print(std::cout);
  std::printf(
      "\nlargest low-voltage setting that eliminates all violations: "
      "%.3f x Vnom\npaper: 0.85 x Vnom with their heat sink and "
      "benchmarks.\n",
      best_safe);
  return 0;
}
