// Extension (paper Section 6, future work): predictive/proactive DTM.
//
// "Techniques for predicting thermal stress and responding proactively,
// rather than waiting for actual thermal stress and responding
// reactively, may further reduce the overhead of DTM [19]."
//
// Pro-Hyb extends the controller-free Hyb with a low-passed temperature
// slope and acts on the reading extrapolated `horizon` ahead. This bench
// sweeps the horizon and compares against reactive Hyb on the full suite
// (DVS-stall).
#include "bench_util.h"

using namespace hydra;
using namespace hydra::bench;

int main() {
  banner("Extension: proactive (predictive) hybrid DTM",
         "Hyb vs slope-predictive Pro-Hyb across prediction horizons.");

  sim::SimConfig cfg = sim::default_sim_config();
  cfg.dvs_stall = true;
  sim::ExperimentRunner runner(cfg);
  engine_banner(runner);

  // Reactive reference plus every horizon in one batch.
  const double horizons_us[] = {100.0, 300.0, 600.0, 1200.0};
  std::vector<sim::SuiteSpec> specs;
  specs.push_back({sim::PolicyKind::kHybrid, {}, cfg});
  for (double horizon_us : horizons_us) {
    sim::PolicyParams params;
    params.proactive.horizon = util::Seconds(horizon_us * 1e-6);
    specs.push_back({sim::PolicyKind::kProactiveHybrid, params, cfg});
  }
  const std::vector<sim::SuiteResult> suites = runner.run_suites(specs);

  util::AsciiTable table;
  table.header({"policy", "horizon [us]", "mean slowdown",
                "violating benchmarks", "DVS switches (suite)"});
  CsvBlock csv({"policy", "horizon_us", "mean_slowdown",
                "violating_benchmarks", "suite_dvs_transitions"});

  auto report = [&](const std::string& name, double horizon_us,
                    const sim::SuiteResult& suite) {
    int violating = 0;
    std::size_t transitions = 0;
    for (const auto& r : suite.per_benchmark) {
      if (r.dtm.violation_fraction > 0.0) ++violating;
      transitions += r.dtm.dvs_transitions;
    }
    table.row({name, horizon_us < 0 ? "-" : fmt(horizon_us, 0),
               fmt(suite.mean_slowdown), std::to_string(violating) + "/9",
               std::to_string(transitions)});
    csv.row({name, fmt(horizon_us, 1), fmt(suite.mean_slowdown, 5),
             std::to_string(violating), std::to_string(transitions)});
    std::fflush(stdout);
  };

  report("Hyb (reactive)", -1.0, suites.front());
  for (std::size_t i = 0; i < std::size(horizons_us); ++i) {
    report("Pro-Hyb", horizons_us[i], suites[i + 1]);
  }

  table.print(std::cout);
  std::printf(
      "\nPrediction engages throttling before the trigger is crossed and\n"
      "releases earlier on cooling slopes; its value depends on how\n"
      "abrupt the workload's thermal transients are relative to the\n"
      "sensor noise. In this calibration the reactive Hyb is already\n"
      "near-optimal, and long horizons mostly amplify slope noise into\n"
      "extra DVS switches — quantifying the trade-off the paper's\n"
      "future-work section asks about.\n");
  return 0;
}
