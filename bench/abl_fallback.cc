// Ablation (paper Section 2): hybrid vs DEETM-style fallback.
//
// "A distinction should be made between fallback techniques like the
// DEETM hierarchy of Huang et al., and the hybrid techniques we propose
// here. ... the hybrid technique we propose uses an ILP technique only
// while doing so is optimal and then switches to DVS. As we show, this
// crossover point is well before the ILP technique's cooling capability
// has been exhausted."
//
// This bench makes the distinction measurable: Hyb (switches at the
// optimality crossover, gating fraction 1/3) vs Fallback (rides fetch
// gating to its 0.75 saturation and adds DVS only near the emergency
// threshold) vs plain DVS, on the full suite under DVS-stall.
#include "bench_util.h"

using namespace hydra;
using namespace hydra::bench;

int main() {
  banner("Ablation: hybrid (crossover) vs fallback (exhaustion)",
         "Hyb vs DEETM-style fallback hierarchy vs stand-alone DVS.");

  sim::SimConfig cfg = sim::default_sim_config();
  cfg.dvs_stall = true;
  sim::ExperimentRunner runner(cfg);
  engine_banner(runner);

  util::AsciiTable table;
  table.header({"policy", "mean slowdown", "violating benchmarks",
                "mean fetch gating", "time at Vlow"});
  CsvBlock csv({"policy", "mean_slowdown", "violating_benchmarks",
                "mean_gate_fraction", "dvs_low_fraction"});

  const sim::PolicyKind kinds[] = {sim::PolicyKind::kHybrid,
                                   sim::PolicyKind::kFallback,
                                   sim::PolicyKind::kDvs};

  // All three policy suites in one batch.
  std::vector<sim::SuiteSpec> specs;
  for (sim::PolicyKind kind : kinds) specs.push_back({kind, {}, cfg});
  const std::vector<sim::SuiteResult> suites = runner.run_suites(specs);

  std::size_t spec_index = 0;
  for (sim::PolicyKind kind : kinds) {
    const sim::SuiteResult& suite = suites[spec_index++];
    int violating = 0;
    double gate = 0.0;
    double low = 0.0;
    for (const auto& r : suite.per_benchmark) {
      if (r.dtm.violation_fraction > 0.0) ++violating;
      gate += r.dtm.mean_gate_fraction;
      low += r.dtm.dvs_low_fraction;
    }
    const double n = static_cast<double>(suite.per_benchmark.size());
    table.row({policy_kind_name(kind), fmt(suite.mean_slowdown),
               std::to_string(violating) + "/9",
               util::AsciiTable::percent(gate / n, 1),
               util::AsciiTable::percent(low / n, 1)});
    csv.row({policy_kind_name(kind), fmt(suite.mean_slowdown, 5),
             std::to_string(violating), fmt(gate / n, 4), fmt(low / n, 4)});
    std::fflush(stdout);
  }

  table.print(std::cout);
  std::printf(
      "\nThe fallback hierarchy pays for deep fetch gating (past the\n"
      "ILP crossover) before it ever reaches for DVS; the hybrid switches\n"
      "at the crossover and is cheaper — the paper's core distinction.\n");
  return 0;
}
