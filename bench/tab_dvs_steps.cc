// Section 4.1 (text table): DVS step-count study.
//
// The paper tried continuous, ten-, five-, three- and two-step DVS
// ladders and found that for thermal management they all perform almost
// identically (within 0.4 % for DVS-stall, within 0.01 % for DVS-ideal),
// so binary DVS suffices. This binary regenerates that comparison.
#include "bench_util.h"

using namespace hydra;
using namespace hydra::bench;

int main() {
  banner("Section 4.1 table: DVS step-count study",
         "Mean slowdown per DVS ladder size; binary (2) vs multi-step vs\n"
         "continuous (dense 64-point ladder).");

  struct StepCfg {
    const char* label;
    std::size_t steps;
    sim::PolicyParams params;
  };
  std::vector<StepCfg> configs;
  for (std::size_t steps : {2, 3, 5, 10}) {
    StepCfg c;
    c.label = nullptr;
    c.steps = steps;
    c.params.dvs.mode = steps == 2 ? core::DvsPolicyConfig::Mode::kBinary
                                   : core::DvsPolicyConfig::Mode::kStepped;
    configs.push_back(c);
  }
  StepCfg cont;
  cont.steps = 64;
  cont.params.dvs.mode = core::DvsPolicyConfig::Mode::kContinuous;
  configs.push_back(cont);

  sim::SimConfig cfg = sim::default_sim_config();
  sim::ExperimentRunner runner(cfg);
  engine_banner(runner);

  // Both variants of every ladder size in one batch.
  std::vector<sim::SuiteSpec> specs;
  for (const StepCfg& c : configs) {
    cfg.dvs_steps = c.steps;
    cfg.dvs_stall = true;
    specs.push_back({sim::PolicyKind::kDvs, c.params, cfg});
    cfg.dvs_stall = false;
    specs.push_back({sim::PolicyKind::kDvs, c.params, cfg});
  }
  const std::vector<sim::SuiteResult> suites = runner.run_suites(specs);

  util::AsciiTable table;
  table.header({"steps", "mode", "slowdown (stall)", "slowdown (ideal)",
                "max violation"});
  CsvBlock csv({"steps", "mode", "slowdown_stall", "slowdown_ideal",
                "max_violation_fraction"});

  double min_stall = 1e9;
  double max_stall = 0.0;
  double min_ideal = 1e9;
  double max_ideal = 0.0;

  std::size_t spec_index = 0;
  for (const StepCfg& c : configs) {
    const sim::SuiteResult& stall = suites[spec_index++];
    const sim::SuiteResult& ideal = suites[spec_index++];

    double max_viol = 0.0;
    for (const auto& r : stall.per_benchmark) {
      max_viol = std::max(max_viol, r.dtm.violation_fraction);
    }
    for (const auto& r : ideal.per_benchmark) {
      max_viol = std::max(max_viol, r.dtm.violation_fraction);
    }

    min_stall = std::min(min_stall, stall.mean_slowdown);
    max_stall = std::max(max_stall, stall.mean_slowdown);
    min_ideal = std::min(min_ideal, ideal.mean_slowdown);
    max_ideal = std::max(max_ideal, ideal.mean_slowdown);

    const char* mode = c.steps == 2 ? "binary comparator"
                       : c.steps >= 64 ? "continuous (PI)"
                                       : "stepped (PI)";
    table.row({std::to_string(c.steps), mode, fmt(stall.mean_slowdown),
               fmt(ideal.mean_slowdown),
               util::AsciiTable::percent(max_viol, 2)});
    csv.row({std::to_string(c.steps), mode, fmt(stall.mean_slowdown, 5),
             fmt(ideal.mean_slowdown, 5), fmt(max_viol, 5)});
    std::fflush(stdout);
  }

  table.print(std::cout);
  std::printf(
      "\nspread across step counts: %.2f%% (stall), %.2f%% (ideal)\n"
      "paper: < 0.4%% (stall), < 0.01%% (ideal) -> binary DVS is enough;\n"
      "what matters is the value of the lowest voltage, not the ladder.\n",
      100.0 * (max_stall - min_stall), 100.0 * (max_ideal - min_ideal));
  return 0;
}
