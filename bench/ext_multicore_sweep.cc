// Extension: many-core DTM sweep — the policy × core-count grid.
//
// The 2004 paper evaluates DTM on one core; this sweep replays its
// hybrid policy on tiled dies (1/2/4/8 cores sharing one RC network,
// DESIGN.md section 15) and adds the two knobs a many-core die unlocks:
// thermal-aware thread migration (hot thread → coolest idle tile) and a
// global power-budget arbiter composed with each tile's local policy.
//
// Every point runs through one ExperimentRunner, so baselines are
// shared per (benchmark, core-count) and the grid is deterministic at
// any HYDRA_THREADS width.
#include "bench_util.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/units.h"
#include "workload/spec_profiles.h"

using namespace hydra;
using namespace hydra::bench;

namespace {

struct Variant {
  const char* name;
  bool migration;
  double budget_watts;  // <= 0 disables the arbiter
};

}  // namespace

int main() {
  banner("Extension: many-core DTM (policy x core-count grid)",
         "Hyb on a tiled die: plain, + thread migration, + die power\n"
         "budget. One ExperimentRunner; baselines shared per core count.");

  sim::SimConfig base = sim::default_sim_config();
  // Tiled dies run cooler than the single-core die at equal power
  // density (smaller heat sources spread laterally into more silicon),
  // so the paper's 81.8 C trigger would leave the larger grids
  // DTM-idle. One lowered trigger keeps every cell in the active
  // regime; the grid compares policies, not absolute thresholds.
  base.thresholds.trigger = util::Celsius(70.0);
  base.thresholds.emergency = util::Celsius(74.0);
  base.multicore.migration_policy.trigger = base.thresholds.trigger;

  const workload::WorkloadProfile profile =
      workload::spec2000_profile("crafty");
  const std::vector<std::size_t> core_counts = {1, 2, 4, 8};
  const std::vector<Variant> variants = {
      {"hyb", false, 0.0},
      {"hyb+mig", true, 0.0},
      // Budget below the die's natural draw (~15-19 W at these run
      // lengths) so the arbiter visibly binds in the grid.
      {"hyb+mig+budget", true, 12.0},
  };

  sim::ExperimentRunner runner(base);
  engine_banner(runner);

  // Whole grid as one batch: points overlap on the pool and the per-
  // core-count baselines are computed once each.
  std::vector<sim::PointSpec> points;
  for (std::size_t cores : core_counts) {
    for (const Variant& v : variants) {
      sim::PointSpec spec;
      spec.profile = profile;
      spec.kind = sim::PolicyKind::kHybrid;
      spec.cfg = base;
      spec.cfg.multicore.cores = cores;
      // Leave at least one tile idle so migration has somewhere to move
      // the hot thread (single core: the one thread stays put).
      spec.cfg.multicore.workload_threads =
          cores > 1 ? cores - std::max<std::size_t>(1, cores / 4) : 1;
      spec.cfg.multicore.migration = v.migration && cores > 1;
      if (v.budget_watts > 0.0) {
        spec.cfg.multicore.arbiter.die_budget = util::Watts(v.budget_watts);
      }
      points.push_back(std::move(spec));
    }
  }
  const std::vector<sim::ExperimentResult> results = runner.run_points(points);

  util::AsciiTable table;
  table.header({"cores", "policy", "Tmax [C]", "slowdown", "spread [C]",
                "migr", "budget", "power [W]"});
  CsvBlock csv({"cores", "policy", "tmax_c", "slowdown", "spread_c",
                "migrations", "budget_throttled_fraction", "power_w"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const sim::RunResult& r = results[i].dtm;
    const std::string cores = std::to_string(r.cores);
    const std::string policy = variants[i % variants.size()].name;
    table.row({cores, policy, fmt(r.max_true_celsius, 2),
               fmt(results[i].slowdown, 3),
               fmt(r.core_temp_spread_celsius, 2),
               std::to_string(r.thread_migrations),
               util::AsciiTable::percent(r.budget_throttled_fraction, 1),
               fmt(r.mean_power_watts, 2)});
    csv.row({cores, policy, fmt(r.max_true_celsius, 3),
             fmt(results[i].slowdown, 4), fmt(r.core_temp_spread_celsius, 3),
             std::to_string(r.thread_migrations),
             fmt(r.budget_throttled_fraction, 4), fmt(r.mean_power_watts, 3)});
  }
  table.print(std::cout);

  const sim::RunCache::Stats stats = runner.cache_stats();
  std::printf(
      "\ncache: %zu misses / %zu hits (baselines shared per core count)\n"
      "Migration trades a bounded stall for a cooler die; the budget\n"
      "arbiter converts the same headroom into a hard power envelope.\n",
      stats.misses, stats.hits);
  return 0;
}
