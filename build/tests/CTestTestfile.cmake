# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/floorplan_test[1]_include.cmake")
include("/root/repo/build/tests/thermal_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/sensor_test[1]_include.cmake")
include("/root/repo/build/tests/control_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/grid_model_test[1]_include.cmake")
include("/root/repo/build/tests/fidelity_test[1]_include.cmake")
include("/root/repo/build/tests/array_energy_test[1]_include.cmake")
include("/root/repo/build/tests/annealer_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/system_mechanics_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
include("/root/repo/build/tests/package_builder_test[1]_include.cmake")
