# Empty compiler generated dependencies file for system_mechanics_test.
# This may be replaced when dependencies are built.
