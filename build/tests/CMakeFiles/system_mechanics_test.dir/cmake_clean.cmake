file(REMOVE_RECURSE
  "CMakeFiles/system_mechanics_test.dir/system_mechanics_test.cc.o"
  "CMakeFiles/system_mechanics_test.dir/system_mechanics_test.cc.o.d"
  "system_mechanics_test"
  "system_mechanics_test.pdb"
  "system_mechanics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_mechanics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
