file(REMOVE_RECURSE
  "CMakeFiles/package_builder_test.dir/package_builder_test.cc.o"
  "CMakeFiles/package_builder_test.dir/package_builder_test.cc.o.d"
  "package_builder_test"
  "package_builder_test.pdb"
  "package_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/package_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
