# Empty compiler generated dependencies file for package_builder_test.
# This may be replaced when dependencies are built.
