
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/grid_model_test.cc" "tests/CMakeFiles/grid_model_test.dir/grid_model_test.cc.o" "gcc" "tests/CMakeFiles/grid_model_test.dir/grid_model_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hydra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_floorplan_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
