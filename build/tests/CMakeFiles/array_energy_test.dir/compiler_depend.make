# Empty compiler generated dependencies file for array_energy_test.
# This may be replaced when dependencies are built.
