file(REMOVE_RECURSE
  "CMakeFiles/array_energy_test.dir/array_energy_test.cc.o"
  "CMakeFiles/array_energy_test.dir/array_energy_test.cc.o.d"
  "array_energy_test"
  "array_energy_test.pdb"
  "array_energy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/array_energy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
