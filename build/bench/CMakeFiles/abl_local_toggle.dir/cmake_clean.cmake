file(REMOVE_RECURSE
  "CMakeFiles/abl_local_toggle.dir/abl_local_toggle.cc.o"
  "CMakeFiles/abl_local_toggle.dir/abl_local_toggle.cc.o.d"
  "abl_local_toggle"
  "abl_local_toggle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_local_toggle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
