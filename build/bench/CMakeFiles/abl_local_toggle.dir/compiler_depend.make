# Empty compiler generated dependencies file for abl_local_toggle.
# This may be replaced when dependencies are built.
