# Empty compiler generated dependencies file for tab_benchmark_thermal.
# This may be replaced when dependencies are built.
