file(REMOVE_RECURSE
  "CMakeFiles/tab_benchmark_thermal.dir/tab_benchmark_thermal.cc.o"
  "CMakeFiles/tab_benchmark_thermal.dir/tab_benchmark_thermal.cc.o.d"
  "tab_benchmark_thermal"
  "tab_benchmark_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_benchmark_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
