# Empty compiler generated dependencies file for ext_cooling_merit.
# This may be replaced when dependencies are built.
