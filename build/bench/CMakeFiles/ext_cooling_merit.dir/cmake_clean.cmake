file(REMOVE_RECURSE
  "CMakeFiles/ext_cooling_merit.dir/ext_cooling_merit.cc.o"
  "CMakeFiles/ext_cooling_merit.dir/ext_cooling_merit.cc.o.d"
  "ext_cooling_merit"
  "ext_cooling_merit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cooling_merit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
