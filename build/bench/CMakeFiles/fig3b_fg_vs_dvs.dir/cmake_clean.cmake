file(REMOVE_RECURSE
  "CMakeFiles/fig3b_fg_vs_dvs.dir/fig3b_fg_vs_dvs.cc.o"
  "CMakeFiles/fig3b_fg_vs_dvs.dir/fig3b_fg_vs_dvs.cc.o.d"
  "fig3b_fg_vs_dvs"
  "fig3b_fg_vs_dvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_fg_vs_dvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
