# Empty compiler generated dependencies file for fig3b_fg_vs_dvs.
# This may be replaced when dependencies are built.
