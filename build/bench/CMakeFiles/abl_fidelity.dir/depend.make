# Empty dependencies file for abl_fidelity.
# This may be replaced when dependencies are built.
