file(REMOVE_RECURSE
  "CMakeFiles/abl_fidelity.dir/abl_fidelity.cc.o"
  "CMakeFiles/abl_fidelity.dir/abl_fidelity.cc.o.d"
  "abl_fidelity"
  "abl_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
