file(REMOVE_RECURSE
  "CMakeFiles/tab_crossover.dir/tab_crossover.cc.o"
  "CMakeFiles/tab_crossover.dir/tab_crossover.cc.o.d"
  "tab_crossover"
  "tab_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
