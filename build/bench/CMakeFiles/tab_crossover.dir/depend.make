# Empty dependencies file for tab_crossover.
# This may be replaced when dependencies are built.
