file(REMOVE_RECURSE
  "CMakeFiles/tab_low_voltage.dir/tab_low_voltage.cc.o"
  "CMakeFiles/tab_low_voltage.dir/tab_low_voltage.cc.o.d"
  "tab_low_voltage"
  "tab_low_voltage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_low_voltage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
