# Empty dependencies file for tab_low_voltage.
# This may be replaced when dependencies are built.
