file(REMOVE_RECURSE
  "CMakeFiles/ext_floorplan.dir/ext_floorplan.cc.o"
  "CMakeFiles/ext_floorplan.dir/ext_floorplan.cc.o.d"
  "ext_floorplan"
  "ext_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
