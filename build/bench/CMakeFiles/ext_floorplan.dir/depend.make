# Empty dependencies file for ext_floorplan.
# This may be replaced when dependencies are built.
