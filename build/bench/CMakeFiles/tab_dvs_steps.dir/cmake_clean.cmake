file(REMOVE_RECURSE
  "CMakeFiles/tab_dvs_steps.dir/tab_dvs_steps.cc.o"
  "CMakeFiles/tab_dvs_steps.dir/tab_dvs_steps.cc.o.d"
  "tab_dvs_steps"
  "tab_dvs_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_dvs_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
