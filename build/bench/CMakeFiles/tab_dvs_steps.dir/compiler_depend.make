# Empty compiler generated dependencies file for tab_dvs_steps.
# This may be replaced when dependencies are built.
