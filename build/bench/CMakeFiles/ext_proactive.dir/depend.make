# Empty dependencies file for ext_proactive.
# This may be replaced when dependencies are built.
