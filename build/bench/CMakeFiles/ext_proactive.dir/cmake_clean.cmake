file(REMOVE_RECURSE
  "CMakeFiles/ext_proactive.dir/ext_proactive.cc.o"
  "CMakeFiles/ext_proactive.dir/ext_proactive.cc.o.d"
  "ext_proactive"
  "ext_proactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_proactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
