# Empty dependencies file for fig3a_hybrid_duty_sweep.
# This may be replaced when dependencies are built.
