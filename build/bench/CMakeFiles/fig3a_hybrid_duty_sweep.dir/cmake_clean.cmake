file(REMOVE_RECURSE
  "CMakeFiles/fig3a_hybrid_duty_sweep.dir/fig3a_hybrid_duty_sweep.cc.o"
  "CMakeFiles/fig3a_hybrid_duty_sweep.dir/fig3a_hybrid_duty_sweep.cc.o.d"
  "fig3a_hybrid_duty_sweep"
  "fig3a_hybrid_duty_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_hybrid_duty_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
