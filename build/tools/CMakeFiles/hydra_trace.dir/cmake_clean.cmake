file(REMOVE_RECURSE
  "CMakeFiles/hydra_trace.dir/hydra_trace.cc.o"
  "CMakeFiles/hydra_trace.dir/hydra_trace.cc.o.d"
  "hydra_trace"
  "hydra_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
