file(REMOVE_RECURSE
  "CMakeFiles/hydra_run.dir/hydra_run.cc.o"
  "CMakeFiles/hydra_run.dir/hydra_run.cc.o.d"
  "hydra_run"
  "hydra_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
