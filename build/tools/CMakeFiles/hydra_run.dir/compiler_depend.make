# Empty compiler generated dependencies file for hydra_run.
# This may be replaced when dependencies are built.
