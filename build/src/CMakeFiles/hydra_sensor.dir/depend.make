# Empty dependencies file for hydra_sensor.
# This may be replaced when dependencies are built.
