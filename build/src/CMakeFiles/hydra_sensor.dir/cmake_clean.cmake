file(REMOVE_RECURSE
  "CMakeFiles/hydra_sensor.dir/sensor/placement.cc.o"
  "CMakeFiles/hydra_sensor.dir/sensor/placement.cc.o.d"
  "CMakeFiles/hydra_sensor.dir/sensor/sensor.cc.o"
  "CMakeFiles/hydra_sensor.dir/sensor/sensor.cc.o.d"
  "libhydra_sensor.a"
  "libhydra_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
