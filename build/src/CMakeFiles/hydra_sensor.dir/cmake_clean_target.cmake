file(REMOVE_RECURSE
  "libhydra_sensor.a"
)
