file(REMOVE_RECURSE
  "CMakeFiles/hydra_control.dir/control/low_pass.cc.o"
  "CMakeFiles/hydra_control.dir/control/low_pass.cc.o.d"
  "CMakeFiles/hydra_control.dir/control/pi_controller.cc.o"
  "CMakeFiles/hydra_control.dir/control/pi_controller.cc.o.d"
  "libhydra_control.a"
  "libhydra_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
