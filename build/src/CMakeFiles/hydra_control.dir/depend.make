# Empty dependencies file for hydra_control.
# This may be replaced when dependencies are built.
