
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/low_pass.cc" "src/CMakeFiles/hydra_control.dir/control/low_pass.cc.o" "gcc" "src/CMakeFiles/hydra_control.dir/control/low_pass.cc.o.d"
  "/root/repo/src/control/pi_controller.cc" "src/CMakeFiles/hydra_control.dir/control/pi_controller.cc.o" "gcc" "src/CMakeFiles/hydra_control.dir/control/pi_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hydra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
