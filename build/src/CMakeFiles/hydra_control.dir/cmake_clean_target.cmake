file(REMOVE_RECURSE
  "libhydra_control.a"
)
