# Empty compiler generated dependencies file for hydra_floorplan.
# This may be replaced when dependencies are built.
