file(REMOVE_RECURSE
  "libhydra_floorplan.a"
)
