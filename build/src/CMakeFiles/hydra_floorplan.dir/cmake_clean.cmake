file(REMOVE_RECURSE
  "CMakeFiles/hydra_floorplan.dir/floorplan/ev7.cc.o"
  "CMakeFiles/hydra_floorplan.dir/floorplan/ev7.cc.o.d"
  "CMakeFiles/hydra_floorplan.dir/floorplan/floorplan.cc.o"
  "CMakeFiles/hydra_floorplan.dir/floorplan/floorplan.cc.o.d"
  "CMakeFiles/hydra_floorplan.dir/floorplan/floorplan_io.cc.o"
  "CMakeFiles/hydra_floorplan.dir/floorplan/floorplan_io.cc.o.d"
  "libhydra_floorplan.a"
  "libhydra_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
