# Empty compiler generated dependencies file for hydra_power.
# This may be replaced when dependencies are built.
