file(REMOVE_RECURSE
  "libhydra_power.a"
)
