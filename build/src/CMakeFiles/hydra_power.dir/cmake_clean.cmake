file(REMOVE_RECURSE
  "CMakeFiles/hydra_power.dir/power/array_energy.cc.o"
  "CMakeFiles/hydra_power.dir/power/array_energy.cc.o.d"
  "CMakeFiles/hydra_power.dir/power/energy_model.cc.o"
  "CMakeFiles/hydra_power.dir/power/energy_model.cc.o.d"
  "CMakeFiles/hydra_power.dir/power/leakage.cc.o"
  "CMakeFiles/hydra_power.dir/power/leakage.cc.o.d"
  "CMakeFiles/hydra_power.dir/power/power_model.cc.o"
  "CMakeFiles/hydra_power.dir/power/power_model.cc.o.d"
  "CMakeFiles/hydra_power.dir/power/voltage_freq.cc.o"
  "CMakeFiles/hydra_power.dir/power/voltage_freq.cc.o.d"
  "libhydra_power.a"
  "libhydra_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
