
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/array_energy.cc" "src/CMakeFiles/hydra_power.dir/power/array_energy.cc.o" "gcc" "src/CMakeFiles/hydra_power.dir/power/array_energy.cc.o.d"
  "/root/repo/src/power/energy_model.cc" "src/CMakeFiles/hydra_power.dir/power/energy_model.cc.o" "gcc" "src/CMakeFiles/hydra_power.dir/power/energy_model.cc.o.d"
  "/root/repo/src/power/leakage.cc" "src/CMakeFiles/hydra_power.dir/power/leakage.cc.o" "gcc" "src/CMakeFiles/hydra_power.dir/power/leakage.cc.o.d"
  "/root/repo/src/power/power_model.cc" "src/CMakeFiles/hydra_power.dir/power/power_model.cc.o" "gcc" "src/CMakeFiles/hydra_power.dir/power/power_model.cc.o.d"
  "/root/repo/src/power/voltage_freq.cc" "src/CMakeFiles/hydra_power.dir/power/voltage_freq.cc.o" "gcc" "src/CMakeFiles/hydra_power.dir/power/voltage_freq.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hydra_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
