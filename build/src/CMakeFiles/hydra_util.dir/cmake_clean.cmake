file(REMOVE_RECURSE
  "CMakeFiles/hydra_util.dir/util/config.cc.o"
  "CMakeFiles/hydra_util.dir/util/config.cc.o.d"
  "CMakeFiles/hydra_util.dir/util/csv.cc.o"
  "CMakeFiles/hydra_util.dir/util/csv.cc.o.d"
  "CMakeFiles/hydra_util.dir/util/json.cc.o"
  "CMakeFiles/hydra_util.dir/util/json.cc.o.d"
  "CMakeFiles/hydra_util.dir/util/stats.cc.o"
  "CMakeFiles/hydra_util.dir/util/stats.cc.o.d"
  "CMakeFiles/hydra_util.dir/util/table.cc.o"
  "CMakeFiles/hydra_util.dir/util/table.cc.o.d"
  "libhydra_util.a"
  "libhydra_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
