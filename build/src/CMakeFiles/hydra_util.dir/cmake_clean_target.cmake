file(REMOVE_RECURSE
  "libhydra_util.a"
)
