file(REMOVE_RECURSE
  "CMakeFiles/hydra_arch.dir/arch/branch_predictor.cc.o"
  "CMakeFiles/hydra_arch.dir/arch/branch_predictor.cc.o.d"
  "CMakeFiles/hydra_arch.dir/arch/cache.cc.o"
  "CMakeFiles/hydra_arch.dir/arch/cache.cc.o.d"
  "CMakeFiles/hydra_arch.dir/arch/core.cc.o"
  "CMakeFiles/hydra_arch.dir/arch/core.cc.o.d"
  "CMakeFiles/hydra_arch.dir/arch/tlb.cc.o"
  "CMakeFiles/hydra_arch.dir/arch/tlb.cc.o.d"
  "CMakeFiles/hydra_arch.dir/arch/tournament_predictor.cc.o"
  "CMakeFiles/hydra_arch.dir/arch/tournament_predictor.cc.o.d"
  "libhydra_arch.a"
  "libhydra_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
