
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/branch_predictor.cc" "src/CMakeFiles/hydra_arch.dir/arch/branch_predictor.cc.o" "gcc" "src/CMakeFiles/hydra_arch.dir/arch/branch_predictor.cc.o.d"
  "/root/repo/src/arch/cache.cc" "src/CMakeFiles/hydra_arch.dir/arch/cache.cc.o" "gcc" "src/CMakeFiles/hydra_arch.dir/arch/cache.cc.o.d"
  "/root/repo/src/arch/core.cc" "src/CMakeFiles/hydra_arch.dir/arch/core.cc.o" "gcc" "src/CMakeFiles/hydra_arch.dir/arch/core.cc.o.d"
  "/root/repo/src/arch/tlb.cc" "src/CMakeFiles/hydra_arch.dir/arch/tlb.cc.o" "gcc" "src/CMakeFiles/hydra_arch.dir/arch/tlb.cc.o.d"
  "/root/repo/src/arch/tournament_predictor.cc" "src/CMakeFiles/hydra_arch.dir/arch/tournament_predictor.cc.o" "gcc" "src/CMakeFiles/hydra_arch.dir/arch/tournament_predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hydra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
