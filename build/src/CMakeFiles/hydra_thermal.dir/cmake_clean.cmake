file(REMOVE_RECURSE
  "CMakeFiles/hydra_thermal.dir/thermal/grid_model.cc.o"
  "CMakeFiles/hydra_thermal.dir/thermal/grid_model.cc.o.d"
  "CMakeFiles/hydra_thermal.dir/thermal/linalg.cc.o"
  "CMakeFiles/hydra_thermal.dir/thermal/linalg.cc.o.d"
  "CMakeFiles/hydra_thermal.dir/thermal/model_builder.cc.o"
  "CMakeFiles/hydra_thermal.dir/thermal/model_builder.cc.o.d"
  "CMakeFiles/hydra_thermal.dir/thermal/package_builder.cc.o"
  "CMakeFiles/hydra_thermal.dir/thermal/package_builder.cc.o.d"
  "CMakeFiles/hydra_thermal.dir/thermal/rc_network.cc.o"
  "CMakeFiles/hydra_thermal.dir/thermal/rc_network.cc.o.d"
  "CMakeFiles/hydra_thermal.dir/thermal/solver.cc.o"
  "CMakeFiles/hydra_thermal.dir/thermal/solver.cc.o.d"
  "libhydra_thermal.a"
  "libhydra_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
