# Empty dependencies file for hydra_thermal.
# This may be replaced when dependencies are built.
