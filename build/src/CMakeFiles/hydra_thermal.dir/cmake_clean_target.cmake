file(REMOVE_RECURSE
  "libhydra_thermal.a"
)
