
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/grid_model.cc" "src/CMakeFiles/hydra_thermal.dir/thermal/grid_model.cc.o" "gcc" "src/CMakeFiles/hydra_thermal.dir/thermal/grid_model.cc.o.d"
  "/root/repo/src/thermal/linalg.cc" "src/CMakeFiles/hydra_thermal.dir/thermal/linalg.cc.o" "gcc" "src/CMakeFiles/hydra_thermal.dir/thermal/linalg.cc.o.d"
  "/root/repo/src/thermal/model_builder.cc" "src/CMakeFiles/hydra_thermal.dir/thermal/model_builder.cc.o" "gcc" "src/CMakeFiles/hydra_thermal.dir/thermal/model_builder.cc.o.d"
  "/root/repo/src/thermal/package_builder.cc" "src/CMakeFiles/hydra_thermal.dir/thermal/package_builder.cc.o" "gcc" "src/CMakeFiles/hydra_thermal.dir/thermal/package_builder.cc.o.d"
  "/root/repo/src/thermal/rc_network.cc" "src/CMakeFiles/hydra_thermal.dir/thermal/rc_network.cc.o" "gcc" "src/CMakeFiles/hydra_thermal.dir/thermal/rc_network.cc.o.d"
  "/root/repo/src/thermal/solver.cc" "src/CMakeFiles/hydra_thermal.dir/thermal/solver.cc.o" "gcc" "src/CMakeFiles/hydra_thermal.dir/thermal/solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hydra_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
