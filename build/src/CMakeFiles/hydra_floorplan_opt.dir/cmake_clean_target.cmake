file(REMOVE_RECURSE
  "libhydra_floorplan_opt.a"
)
