# Empty dependencies file for hydra_floorplan_opt.
# This may be replaced when dependencies are built.
