file(REMOVE_RECURSE
  "CMakeFiles/hydra_floorplan_opt.dir/floorplan/annealer.cc.o"
  "CMakeFiles/hydra_floorplan_opt.dir/floorplan/annealer.cc.o.d"
  "libhydra_floorplan_opt.a"
  "libhydra_floorplan_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_floorplan_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
