
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/spec_profiles.cc" "src/CMakeFiles/hydra_workload.dir/workload/spec_profiles.cc.o" "gcc" "src/CMakeFiles/hydra_workload.dir/workload/spec_profiles.cc.o.d"
  "/root/repo/src/workload/synthetic_trace.cc" "src/CMakeFiles/hydra_workload.dir/workload/synthetic_trace.cc.o" "gcc" "src/CMakeFiles/hydra_workload.dir/workload/synthetic_trace.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/CMakeFiles/hydra_workload.dir/workload/trace_io.cc.o" "gcc" "src/CMakeFiles/hydra_workload.dir/workload/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hydra_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
