file(REMOVE_RECURSE
  "libhydra_workload.a"
)
