file(REMOVE_RECURSE
  "CMakeFiles/hydra_workload.dir/workload/spec_profiles.cc.o"
  "CMakeFiles/hydra_workload.dir/workload/spec_profiles.cc.o.d"
  "CMakeFiles/hydra_workload.dir/workload/synthetic_trace.cc.o"
  "CMakeFiles/hydra_workload.dir/workload/synthetic_trace.cc.o.d"
  "CMakeFiles/hydra_workload.dir/workload/trace_io.cc.o"
  "CMakeFiles/hydra_workload.dir/workload/trace_io.cc.o.d"
  "libhydra_workload.a"
  "libhydra_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
