# Empty dependencies file for hydra_workload.
# This may be replaced when dependencies are built.
