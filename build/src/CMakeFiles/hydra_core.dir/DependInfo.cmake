
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/clock_gating_policy.cc" "src/CMakeFiles/hydra_core.dir/core/clock_gating_policy.cc.o" "gcc" "src/CMakeFiles/hydra_core.dir/core/clock_gating_policy.cc.o.d"
  "/root/repo/src/core/dvs_policy.cc" "src/CMakeFiles/hydra_core.dir/core/dvs_policy.cc.o" "gcc" "src/CMakeFiles/hydra_core.dir/core/dvs_policy.cc.o.d"
  "/root/repo/src/core/fallback_policy.cc" "src/CMakeFiles/hydra_core.dir/core/fallback_policy.cc.o" "gcc" "src/CMakeFiles/hydra_core.dir/core/fallback_policy.cc.o.d"
  "/root/repo/src/core/fetch_gating_policy.cc" "src/CMakeFiles/hydra_core.dir/core/fetch_gating_policy.cc.o" "gcc" "src/CMakeFiles/hydra_core.dir/core/fetch_gating_policy.cc.o.d"
  "/root/repo/src/core/hybrid_policy.cc" "src/CMakeFiles/hydra_core.dir/core/hybrid_policy.cc.o" "gcc" "src/CMakeFiles/hydra_core.dir/core/hybrid_policy.cc.o.d"
  "/root/repo/src/core/local_toggle_policy.cc" "src/CMakeFiles/hydra_core.dir/core/local_toggle_policy.cc.o" "gcc" "src/CMakeFiles/hydra_core.dir/core/local_toggle_policy.cc.o.d"
  "/root/repo/src/core/proactive_policy.cc" "src/CMakeFiles/hydra_core.dir/core/proactive_policy.cc.o" "gcc" "src/CMakeFiles/hydra_core.dir/core/proactive_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hydra_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
