# Empty compiler generated dependencies file for hydra_core.
# This may be replaced when dependencies are built.
