file(REMOVE_RECURSE
  "CMakeFiles/hydra_core.dir/core/clock_gating_policy.cc.o"
  "CMakeFiles/hydra_core.dir/core/clock_gating_policy.cc.o.d"
  "CMakeFiles/hydra_core.dir/core/dvs_policy.cc.o"
  "CMakeFiles/hydra_core.dir/core/dvs_policy.cc.o.d"
  "CMakeFiles/hydra_core.dir/core/fallback_policy.cc.o"
  "CMakeFiles/hydra_core.dir/core/fallback_policy.cc.o.d"
  "CMakeFiles/hydra_core.dir/core/fetch_gating_policy.cc.o"
  "CMakeFiles/hydra_core.dir/core/fetch_gating_policy.cc.o.d"
  "CMakeFiles/hydra_core.dir/core/hybrid_policy.cc.o"
  "CMakeFiles/hydra_core.dir/core/hybrid_policy.cc.o.d"
  "CMakeFiles/hydra_core.dir/core/local_toggle_policy.cc.o"
  "CMakeFiles/hydra_core.dir/core/local_toggle_policy.cc.o.d"
  "CMakeFiles/hydra_core.dir/core/proactive_policy.cc.o"
  "CMakeFiles/hydra_core.dir/core/proactive_policy.cc.o.d"
  "libhydra_core.a"
  "libhydra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
