file(REMOVE_RECURSE
  "CMakeFiles/dtm_trace_export.dir/dtm_trace_export.cpp.o"
  "CMakeFiles/dtm_trace_export.dir/dtm_trace_export.cpp.o.d"
  "dtm_trace_export"
  "dtm_trace_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtm_trace_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
