# Empty dependencies file for dtm_trace_export.
# This may be replaced when dependencies are built.
