file(REMOVE_RECURSE
  "CMakeFiles/sensor_placement.dir/sensor_placement.cpp.o"
  "CMakeFiles/sensor_placement.dir/sensor_placement.cpp.o.d"
  "sensor_placement"
  "sensor_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
