# Empty dependencies file for grid_heatmap.
# This may be replaced when dependencies are built.
