# Empty compiler generated dependencies file for grid_heatmap.
# This may be replaced when dependencies are built.
