file(REMOVE_RECURSE
  "CMakeFiles/grid_heatmap.dir/grid_heatmap.cpp.o"
  "CMakeFiles/grid_heatmap.dir/grid_heatmap.cpp.o.d"
  "grid_heatmap"
  "grid_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
