// Property-based and parameterised sweeps over the substrates:
// invariants that must hold for *any* valid input, exercised across
// randomly generated RC networks, floorplans, ladders and profiles.
#include <gtest/gtest.h>

#include <cmath>

#include "floorplan/ev7.h"
#include "power/voltage_freq.h"
#include "thermal/linalg.h"
#include "thermal/model_builder.h"
#include "thermal/rc_network.h"
#include "thermal/solver.h"
#include "util/rng.h"
#include "util/units.h"
#include "workload/spec_profiles.h"
#include "arch/core.h"

namespace hydra {
namespace {

// ---------------------------------------------------------------------
// Random RC networks: solver invariants for any connected network.
// ---------------------------------------------------------------------
thermal::RcNetwork random_network(util::Rng& rng, std::size_t nodes) {
  thermal::RcNetwork net;
  for (std::size_t i = 0; i < nodes; ++i) {
    // Appends rather than operator+: see the PR105651 note below.
    std::string name = "n";
    name += std::to_string(i);
    net.add_node(name, util::JoulesPerKelvin(rng.uniform(0.1, 5.0)));
  }
  // Spanning chain guarantees connectivity; extra random edges.
  for (std::size_t i = 1; i < nodes; ++i) {
    net.connect(i - 1, i, util::KelvinPerWatt(rng.uniform(0.2, 4.0)));
  }
  for (std::size_t e = 0; e < nodes; ++e) {
    const std::size_t a = rng.below(nodes);
    const std::size_t b = rng.below(nodes);
    if (a != b) net.connect(a, b, util::KelvinPerWatt(rng.uniform(0.2, 4.0)));
  }
  net.connect_to_ambient(rng.below(nodes),
                         util::KelvinPerWatt(rng.uniform(0.5, 3.0)));
  net.connect_to_ambient(rng.below(nodes),
                         util::KelvinPerWatt(rng.uniform(0.5, 3.0)));
  return net;
}

class RandomNetworkSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomNetworkSweep, SteadyStateBalancesHeat) {
  util::Rng rng(1000 + GetParam());
  const std::size_t nodes = 3 + rng.below(12);
  const thermal::RcNetwork net = random_network(rng, nodes);
  thermal::Vector p(nodes, 0.0);
  double total = 0.0;
  for (double& w : p) {
    w = rng.uniform(0.0, 4.0);
    total += w;
  }
  const thermal::Vector t = thermal::steady_state(net, p, util::Celsius(45.0));
  // Heat into the network equals heat out: G * rise sums to total power.
  thermal::Vector rise(nodes);
  for (std::size_t i = 0; i < nodes; ++i) rise[i] = t[i] - 45.0;
  const thermal::Vector flow = net.conductance_matrix().multiply(rise);
  double out = 0.0;
  for (double f : flow) out += f;
  EXPECT_NEAR(out, total, 1e-8 * std::max(1.0, total));
  // Every temperature is at or above ambient for non-negative power.
  for (double v : t) EXPECT_GE(v, 45.0 - 1e-9);
}

TEST_P(RandomNetworkSweep, SteadyStateIsLinearInPower) {
  util::Rng rng(2000 + GetParam());
  const std::size_t nodes = 3 + rng.below(10);
  const thermal::RcNetwork net = random_network(rng, nodes);
  thermal::Vector p1(nodes, 0.0);
  thermal::Vector p2(nodes, 0.0);
  thermal::Vector sum(nodes, 0.0);
  for (std::size_t i = 0; i < nodes; ++i) {
    p1[i] = rng.uniform(0.0, 3.0);
    p2[i] = rng.uniform(0.0, 3.0);
    sum[i] = p1[i] + p2[i];
  }
  const thermal::Vector t1 = thermal::steady_state(net, p1, util::Celsius(0.0));
  const thermal::Vector t2 = thermal::steady_state(net, p2, util::Celsius(0.0));
  const thermal::Vector ts = thermal::steady_state(net, sum, util::Celsius(0.0));
  for (std::size_t i = 0; i < nodes; ++i) {
    EXPECT_NEAR(ts[i], t1[i] + t2[i], 1e-8);
  }
}

TEST_P(RandomNetworkSweep, BackwardEulerAgreesWithRk4) {
  util::Rng rng(3000 + GetParam());
  const std::size_t nodes = 3 + rng.below(8);
  const thermal::RcNetwork net = random_network(rng, nodes);
  thermal::Vector p(nodes, 0.0);
  for (double& w : p) w = rng.uniform(0.0, 3.0);

  thermal::TransientSolver be(net, util::Celsius(45.0),
                              thermal::Scheme::kBackwardEuler);
  thermal::TransientSolver rk(net, util::Celsius(45.0), thermal::Scheme::kRk4);
  for (int i = 0; i < 3000; ++i) {
    be.step(p, util::Seconds(0.002));
    rk.step(p, util::Seconds(0.002));
  }
  for (std::size_t i = 0; i < nodes; ++i) {
    EXPECT_NEAR(be.temperature(i).value(), rk.temperature(i).value(), 0.05);
  }
}

TEST_P(RandomNetworkSweep, TransientConvergesToSteadyState) {
  util::Rng rng(4000 + GetParam());
  const std::size_t nodes = 3 + rng.below(8);
  const thermal::RcNetwork net = random_network(rng, nodes);
  thermal::Vector p(nodes, 0.0);
  for (double& w : p) w = rng.uniform(0.0, 3.0);
  const thermal::Vector ss = thermal::steady_state(net, p, util::Celsius(45.0));
  thermal::TransientSolver solver(net, util::Celsius(45.0));
  for (int i = 0; i < 40'000; ++i) solver.step(p, util::Seconds(0.01));
  for (std::size_t i = 0; i < nodes; ++i) {
    EXPECT_NEAR(solver.temperature(i).value(), ss[i], 1e-4);
  }
}

TEST_P(RandomNetworkSweep, ConductanceMatrixIsSymmetric) {
  util::Rng rng(5000 + GetParam());
  const std::size_t nodes = 3 + rng.below(12);
  const thermal::RcNetwork net = random_network(rng, nodes);
  const thermal::Matrix g = net.conductance_matrix();
  for (std::size_t r = 0; r < nodes; ++r) {
    for (std::size_t c = r + 1; c < nodes; ++c) {
      EXPECT_DOUBLE_EQ(g(r, c), g(c, r));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetworkSweep, ::testing::Range(0, 8));

// ---------------------------------------------------------------------
// Random grid floorplans through the model builder.
// ---------------------------------------------------------------------
class RandomFloorplanSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomFloorplanSweep, PoweredBlockIsAlwaysHottest) {
  util::Rng rng(7000 + GetParam());
  // Random grid partition of a 12x12 mm die.
  const int cols = 2 + static_cast<int>(rng.below(4));
  const int rows = 2 + static_cast<int>(rng.below(4));
  floorplan::Floorplan fp;
  std::vector<double> xs = {0.0};
  std::vector<double> ys = {0.0};
  for (int c = 1; c < cols; ++c) {
    xs.push_back(xs.back() + rng.uniform(1e-3, 4e-3));
  }
  xs.push_back(xs.back() + rng.uniform(1e-3, 4e-3));
  for (int r = 1; r < rows; ++r) {
    ys.push_back(ys.back() + rng.uniform(1e-3, 4e-3));
  }
  ys.push_back(ys.back() + rng.uniform(1e-3, 4e-3));
  static std::vector<std::string>* names = new std::vector<std::string>();
  for (int c = 0; c < cols; ++c) {
    for (int r = 0; r < rows; ++r) {
      // Built by appends: chained operator+ trips GCC 12's -Wrestrict
      // false positive inside libstdc++ (PR105651) under -Werror.
      std::string name = "b";
      name += std::to_string(GetParam());
      name += '_';
      name += std::to_string(c);
      name += '_';
      name += std::to_string(r);
      names->push_back(std::move(name));
      fp.add({names->back(), xs[c], ys[r], xs[c + 1] - xs[c],
              ys[r + 1] - ys[r]});
    }
  }
  ASSERT_TRUE(fp.covers_die(1e-9));

  const auto model = thermal::build_thermal_model(fp, thermal::Package{});
  const std::size_t hot = rng.below(fp.size());
  thermal::Vector p(fp.size(), 0.0);
  p[hot] = 6.0;
  const thermal::Vector t =
      thermal::steady_state(model.network, model.expand_power(p), util::Celsius(45.0));
  for (std::size_t i = 0; i < fp.size(); ++i) {
    if (i != hot) {
      EXPECT_GE(t[hot], t[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFloorplanSweep, ::testing::Range(0, 6));

// ---------------------------------------------------------------------
// DVS ladders across step counts and low-voltage fractions.
// ---------------------------------------------------------------------
class LadderSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(LadderSweep, MonotoneAndBounded) {
  const auto [steps, frac] = GetParam();
  const power::VoltageFrequencyCurve curve;
  const power::DvsLadder ladder(curve, steps, frac);
  ASSERT_EQ(ladder.size(), static_cast<std::size_t>(steps));
  EXPECT_DOUBLE_EQ(ladder.point(0).voltage.value(), curve.v_nominal().value());
  EXPECT_NEAR(ladder.point(ladder.lowest_level()).voltage.value(),
              frac * curve.v_nominal().value(), 1e-12);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_LT(ladder.point(i).voltage.value(),
              ladder.point(i - 1).voltage.value());
    EXPECT_LT(ladder.point(i).frequency.value(),
              ladder.point(i - 1).frequency.value());
    // Power scales faster than frequency: V^2 f falls faster than f.
    const double pf = ladder.point(i).voltage.value() *
                      ladder.point(i).voltage.value() *
                      ladder.point(i).frequency.value();
    const double pf_prev = ladder.point(i - 1).voltage.value() *
                           ladder.point(i - 1).voltage.value() *
                           ladder.point(i - 1).frequency.value();
    const double f_ratio =
        ladder.point(i).frequency / ladder.point(i - 1).frequency;
    EXPECT_LT(pf / pf_prev, f_ratio);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LadderSweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 10, 40),
                       ::testing::Values(0.7, 0.85, 0.95)));

// ---------------------------------------------------------------------
// Every SPEC profile drives the core to a sane operating point.
// ---------------------------------------------------------------------
class ProfileSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ProfileSweep, CoreReachesRealisticIpc) {
  const auto profile = workload::spec2000_profile(GetParam());
  workload::SyntheticTrace trace(profile);
  arch::CoreConfig cfg;
  arch::Core core(cfg, trace);
  for (int i = 0; i < 150'000; ++i) core.cycle();  // warm
  const auto c0 = core.cycles();
  const auto i0 = core.committed();
  for (int i = 0; i < 400'000; ++i) core.cycle();
  const double ipc = static_cast<double>(core.committed() - i0) /
                     static_cast<double>(core.cycles() - c0);
  EXPECT_GT(ipc, 0.5) << GetParam();
  EXPECT_LT(ipc, 3.5) << GetParam();
  // Branch prediction must be doing useful work on every profile.
  EXPECT_LT(core.stats().mispredict_rate(), 0.25) << GetParam();
  EXPECT_GT(core.stats().branches, 0u);
}

TEST_P(ProfileSweep, FetchGatingMonotonicallyReducesThroughput) {
  const auto profile = workload::spec2000_profile(GetParam());
  double prev_ipc = 1e9;
  for (double g : {0.0, 1.0 / 3.0, 2.0 / 3.0}) {
    workload::SyntheticTrace trace(profile);
    arch::CoreConfig cfg;
    arch::Core core(cfg, trace);
    for (int i = 0; i < 120'000; ++i) core.cycle();
    core.set_fetch_gate_fraction(g);
    const auto c0 = core.cycles();
    const auto i0 = core.committed();
    for (int i = 0; i < 250'000; ++i) core.cycle();
    const double ipc = static_cast<double>(core.committed() - i0) /
                       static_cast<double>(core.cycles() - c0);
    EXPECT_LE(ipc, prev_ipc * 1.02) << GetParam() << " g=" << g;
    prev_ipc = ipc;
  }
}

INSTANTIATE_TEST_SUITE_P(Spec2000, ProfileSweep,
                         ::testing::Values("mesa", "perlbmk", "gzip",
                                           "bzip2", "eon", "crafty",
                                           "vortex", "gcc", "art"));

}  // namespace
}  // namespace hydra
