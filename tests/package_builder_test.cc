// Tests for the shared package builder (spreader/sink/convection stack).
#include <gtest/gtest.h>

#include "thermal/package_builder.h"
#include "thermal/solver.h"
#include "util/units.h"

namespace hydra::thermal {
namespace {

TEST(PackageBuilder, AddsTenNodes) {
  RcNetwork net;
  const std::size_t die = net.add_node("die", util::JoulesPerKelvin(1.0));
  const PackageNodes nodes = attach_package_nodes(net, 16e-3, 16e-3, {});
  EXPECT_EQ(net.size(), 11u);  // 1 die + 5 spreader + 5 sink
  EXPECT_NE(nodes.spreader_center, die);
  EXPECT_EQ(net.node_name(nodes.sink_center), "sink_center");
}

TEST(PackageBuilder, TotalAmbientConductanceMatchesConvection) {
  RcNetwork net;
  net.add_node("die", util::JoulesPerKelvin(1.0));
  Package pkg;
  pkg.r_convec = util::KelvinPerWatt(0.8);
  attach_package_nodes(net, 16e-3, 16e-3, pkg);
  EXPECT_NEAR(net.total_ambient_conductance().value(), 1.0 / 0.8, 1e-9);
}

TEST(PackageBuilder, RejectsNonNestingLayers) {
  RcNetwork net;
  net.add_node("die", util::JoulesPerKelvin(1.0));
  Package pkg;
  pkg.spreader_side_m = 10e-3;  // smaller than the 16 mm die
  EXPECT_THROW(attach_package_nodes(net, 16e-3, 16e-3, pkg),
               std::invalid_argument);
  Package pkg2;
  pkg2.sink_side_m = pkg2.spreader_side_m;  // sink must exceed spreader
  RcNetwork net2;
  net2.add_node("die", util::JoulesPerKelvin(1.0));
  EXPECT_THROW(attach_package_nodes(net2, 16e-3, 16e-3, pkg2),
               std::invalid_argument);
}

TEST(PackageBuilder, CheaperSinkRunsHotter) {
  auto hotspot_for = [](double r_convec) {
    RcNetwork net;
    const std::size_t die = net.add_node("die", util::JoulesPerKelvin(1.0));
    Package pkg;
    pkg.r_convec = util::KelvinPerWatt(r_convec);
    const PackageNodes nodes = attach_package_nodes(net, 16e-3, 16e-3, pkg);
    net.connect(die, nodes.spreader_center,
                die_to_spreader_resistance(16e-3 * 16e-3, pkg));
    Vector p(net.size(), 0.0);
    p[die] = 30.0;
    return steady_state(net, p, util::Celsius(45.0))[die];
  };
  // The paper's low-cost package (1.0 K/W) vs HotSpot's desktop default
  // (0.8): ~30 W should run about 6 K hotter on the cheap sink.
  const double cheap = hotspot_for(1.0);
  const double good = hotspot_for(0.8);
  EXPECT_GT(cheap, good + 4.0);
  EXPECT_LT(cheap, good + 8.0);
}

TEST(PackageBuilder, LateralResistanceFormulaSane) {
  // Doubling thickness halves the lateral resistance; a wider inner
  // region shortens the path and widens the cross-section.
  const util::KelvinPerWatt r1 =
      plate_lateral_resistance(6e-3, 30e-3, 1e-3, 400.0);
  const util::KelvinPerWatt r2 =
      plate_lateral_resistance(6e-3, 30e-3, 2e-3, 400.0);
  EXPECT_NEAR(r1 / r2, 2.0, 1e-9);
  const util::KelvinPerWatt r3 =
      plate_lateral_resistance(20e-3, 30e-3, 1e-3, 400.0);
  EXPECT_LT(r3, r1);
}

TEST(PackageBuilder, DieToSpreaderScalesInverselyWithArea) {
  Package pkg;
  const util::KelvinPerWatt r_small = die_to_spreader_resistance(1e-6, pkg);
  const util::KelvinPerWatt r_big = die_to_spreader_resistance(4e-6, pkg);
  EXPECT_NEAR(r_small / r_big, 4.0, 1e-9);
}

}  // namespace
}  // namespace hydra::thermal
