// Parallel experiment engine: determinism across pool widths, cache-key
// separation, config-keyed baselines, and memoization accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/obs.h"
#include "sim/experiment.h"
#include "sim/model_cache.h"
#include "util/thread_pool.h"

namespace hydra::sim {
namespace {

/// Abbreviated run so the engine tests stay fast; long enough that the
/// policies actually throttle.
SimConfig short_config() {
  SimConfig cfg = default_sim_config();
  cfg.run_instructions = 60'000;
  cfg.warmup_instructions = 20'000;
  return cfg;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.max_true_celsius, b.max_true_celsius);
  EXPECT_EQ(a.violation_fraction, b.violation_fraction);
  EXPECT_EQ(a.above_trigger_fraction, b.above_trigger_fraction);
  EXPECT_EQ(a.dvs_transitions, b.dvs_transitions);
  EXPECT_EQ(a.mean_gate_fraction, b.mean_gate_fraction);
  EXPECT_EQ(a.dvs_low_fraction, b.dvs_low_fraction);
  EXPECT_EQ(a.mean_power_watts, b.mean_power_watts);
  EXPECT_EQ(a.hottest_block, b.hottest_block);
  EXPECT_EQ(a.hottest_mean_celsius, b.hottest_mean_celsius);
}

// The engine's core guarantee: results are bit-identical at any pool
// width, because each System run is internally deterministic and futures
// are joined by submission index, never completion order.
TEST(EngineDeterminism, SuiteIdenticalAcrossPoolWidths) {
  const SimConfig cfg = short_config();

  util::ThreadPool serial(1);
  util::ThreadPool wide(8);
  ExperimentRunner serial_runner(cfg, &serial);
  ExperimentRunner wide_runner(cfg, &wide);
  ASSERT_EQ(serial_runner.threads(), 1u);
  ASSERT_EQ(wide_runner.threads(), 8u);

  std::vector<SuiteSpec> specs;
  specs.push_back({PolicyKind::kHybrid, {}, cfg});
  specs.push_back({PolicyKind::kDvs, {}, cfg});

  const std::vector<SuiteResult> a = serial_runner.run_suites(specs);
  const std::vector<SuiteResult> b = wide_runner.run_suites(specs);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].mean_slowdown, b[s].mean_slowdown);
    EXPECT_EQ(a[s].ci99_half_width, b[s].ci99_half_width);
    ASSERT_EQ(a[s].per_benchmark.size(), b[s].per_benchmark.size());
    for (std::size_t i = 0; i < a[s].per_benchmark.size(); ++i) {
      EXPECT_EQ(a[s].per_benchmark[i].slowdown, b[s].per_benchmark[i].slowdown);
      expect_identical(a[s].per_benchmark[i].dtm, b[s].per_benchmark[i].dtm);
      expect_identical(a[s].per_benchmark[i].baseline,
                       b[s].per_benchmark[i].baseline);
    }
  }
}

// Two configs that differ in any field must not collide in the run
// cache — this is the regression test for the key covering the full
// SimConfig, not just the profile name.
TEST(EngineCacheKey, DistinguishesConfigs) {
  const workload::WorkloadProfile profile = workload::spec2000_profile("gzip");
  const SimConfig base = short_config();

  SimConfig hotter = base;
  hotter.package.ambient += util::CelsiusDelta(1.0);
  SimConfig longer = base;
  longer.run_instructions += 1;
  SimConfig other_ladder = base;
  other_ladder.dvs_steps = 5;

  const std::uint64_t k0 =
      run_point_key(profile, PolicyKind::kDvs, {}, base);
  EXPECT_EQ(k0, run_point_key(profile, PolicyKind::kDvs, {}, base));
  EXPECT_NE(k0, run_point_key(profile, PolicyKind::kDvs, {}, hotter));
  EXPECT_NE(k0, run_point_key(profile, PolicyKind::kDvs, {}, longer));
  EXPECT_NE(k0, run_point_key(profile, PolicyKind::kDvs, {}, other_ladder));
  EXPECT_NE(k0, run_point_key(profile, PolicyKind::kHybrid, {}, base));

  PolicyParams guarded;
  guarded.guarded = true;
  EXPECT_NE(k0, run_point_key(profile, PolicyKind::kDvs, guarded, base));

  const workload::WorkloadProfile other =
      workload::spec2000_profile("crafty");
  EXPECT_NE(k0, run_point_key(other, PolicyKind::kDvs, {}, base));
}

// Baselines are keyed by the *normalised* config: thermally relevant
// changes (package) get their own baseline, while DTM-only knobs (DVS
// ladder shape) share one — they cannot affect a no-policy run.
TEST(EngineBaseline, KeyedByConfigHash) {
  const workload::WorkloadProfile profile = workload::spec2000_profile("gzip");
  const SimConfig base = short_config();

  ExperimentRunner runner(base);
  const RunResult& b0 = runner.baseline(profile, base);

  SimConfig other_ladder = base;
  other_ladder.dvs_steps = 10;
  other_ladder.dvs_stall = !base.dvs_stall;
  const RunResult& b_ladder = runner.baseline(profile, other_ladder);
  EXPECT_EQ(&b0, &b_ladder) << "DTM-only knobs must share the baseline";

  SimConfig hot = base;
  hot.package.ambient += util::CelsiusDelta(5.0);
  const RunResult& b_hot = runner.baseline(profile, hot);
  EXPECT_NE(&b0, &b_hot);
  EXPECT_GT(b_hot.max_true_celsius, b0.max_true_celsius);

  // Stale-baseline regression: the old cache keyed on profile name only
  // and would have returned b0 here.
  EXPECT_NE(config_hash(baseline_config(base)),
            config_hash(baseline_config(hot)));
  EXPECT_EQ(config_hash(baseline_config(base)),
            config_hash(baseline_config(other_ladder)));
}

// Repeating a point must hit the memo, and the shared baseline is
// computed once per profile no matter how many policies reference it.
TEST(EngineMemoization, RepeatedPointsHitCache) {
  const SimConfig cfg = short_config();
  const workload::WorkloadProfile profile = workload::spec2000_profile("art");

  util::ThreadPool pool(2);
  ExperimentRunner runner(cfg, &pool);

  const ExperimentResult first = runner.run(profile, PolicyKind::kDvs, {}, cfg);
  const RunCache::Stats after_first = runner.cache_stats();
  EXPECT_EQ(after_first.misses, 2u);  // DTM run + its baseline

  const ExperimentResult second =
      runner.run(profile, PolicyKind::kDvs, {}, cfg);
  const RunCache::Stats after_second = runner.cache_stats();
  EXPECT_EQ(after_second.misses, 2u) << "repeat must not recompute";
  EXPECT_GE(after_second.hits, 2u);

  EXPECT_EQ(first.slowdown, second.slowdown);
  expect_identical(first.dtm, second.dtm);

  // A different policy over the same profile reuses the baseline.
  runner.run(profile, PolicyKind::kFetchGating, {}, cfg);
  EXPECT_EQ(runner.cache_stats().misses, 3u);
}

// The process-wide model cache deduplicates the thermal model: one entry
// per (package, time_scale), shared by every config that differs only in
// non-thermal fields.
TEST(EngineModelCache, OneModelPerPackage) {
  ModelCache cache;
  SimConfig a = short_config();
  auto m0 = cache.get(a);
  SimConfig b = a;
  b.dvs_steps = 7;
  b.run_instructions *= 2;
  auto m1 = cache.get(b);
  EXPECT_EQ(m0.get(), m1.get());
  EXPECT_EQ(cache.size(), 1u);

  SimConfig c = a;
  c.package.r_convec *= 2.0;
  auto m2 = cache.get(c);
  EXPECT_NE(m0.get(), m2.get());
  EXPECT_EQ(cache.size(), 2u);

  SimConfig bad = a;
  bad.time_scale = 0.0;
  EXPECT_THROW(cache.get(bad), std::invalid_argument);
}

// Observability is strictly read-only: enabling tracing + metrics must
// not perturb a single bit of the sweep results (fresh runners on both
// sides so memoization cannot mask a divergence).
TEST(EngineObservability, TracingDoesNotChangeResults) {
  const SimConfig cfg = short_config();
  std::vector<PointSpec> points;
  for (const char* bench : {"gzip", "crafty"}) {
    points.push_back(
        {workload::spec2000_profile(bench), PolicyKind::kHybrid, {}, cfg});
    points.push_back(
        {workload::spec2000_profile(bench), PolicyKind::kDvs, {}, cfg});
  }

  obs::Observability::instance().disable_all();
  ExperimentRunner plain_runner(cfg);
  const std::vector<ExperimentResult> plain = plain_runner.run_points(points);

  obs::Observability::instance().enable_all();
  ExperimentRunner traced_runner(cfg);
  const std::vector<ExperimentResult> traced =
      traced_runner.run_points(points);
  obs::Observability::instance().disable_all();

  // The traced sweep actually recorded something (per-run spans at
  // minimum, DTM events for the throttling policies).
  EXPECT_GT(obs::tracer().size(), 0u);
  obs::tracer().clear();

  ASSERT_EQ(plain.size(), traced.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].slowdown, traced[i].slowdown);
    expect_identical(plain[i].dtm, traced[i].dtm);
    expect_identical(plain[i].baseline, traced[i].baseline);
  }
}

}  // namespace
}  // namespace hydra::sim
