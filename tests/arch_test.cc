// Unit tests for src/arch: caches, TLB, branch predictor, and the
// out-of-order core's timing behaviour (IPC, dependencies, fetch gating).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "arch/branch_predictor.h"
#include "arch/cache.h"
#include "arch/core.h"
#include "arch/tlb.h"

namespace hydra::arch {
namespace {

// ------------------------------------------------------------------ cache
TEST(Cache, HitAfterMiss) {
  Cache c({1024, 64, 2});
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1030));  // same 64 B line
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, LruEvictsOldest) {
  // 2-way, 8 sets of 64 B lines: three lines mapping to the same set.
  Cache c({1024, 64, 2});
  const std::uint64_t set_stride = 64 * c.num_sets();
  const std::uint64_t a = 0x0;
  const std::uint64_t b = a + set_stride;
  const std::uint64_t d = a + 2 * set_stride;
  c.access(a);
  c.access(b);
  c.access(a);      // a is now MRU
  c.access(d);      // evicts b
  EXPECT_TRUE(c.probe(a));
  EXPECT_FALSE(c.probe(b));
  EXPECT_TRUE(c.probe(d));
}

TEST(Cache, CapacityWorks) {
  Cache c({64 * 1024, 64, 2});
  // Touch exactly the capacity: all resident afterwards.
  for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) c.access(addr);
  c.reset_stats();
  for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) c.access(addr);
  EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, ThrashingBeyondCapacityMisses) {
  Cache c({1024, 64, 2});
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t addr = 0; addr < 4096; addr += 64) c.access(addr);
  }
  // Working set 4x capacity with LRU: every access misses.
  EXPECT_EQ(c.hits(), 0u);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache({1024, 60, 2}), std::invalid_argument);
  EXPECT_THROW(Cache({1024, 64, 0}), std::invalid_argument);
  EXPECT_THROW(Cache({1000, 64, 3}), std::invalid_argument);
}

// ------------------------------------------------------------------- tlb
TEST(Tlb, HitsWithinPage) {
  Tlb tlb(4, 8192);
  EXPECT_FALSE(tlb.access(0x10000));
  EXPECT_TRUE(tlb.access(0x10100));  // same page
  EXPECT_FALSE(tlb.access(0x20000));
}

TEST(Tlb, LruReplacement) {
  Tlb tlb(2, 8192);
  tlb.access(0x0 << 13);
  tlb.access(0x1ULL << 13);
  tlb.access(0x0 << 13);        // page 0 MRU
  tlb.access(0x2ULL << 13);     // evicts page 1
  EXPECT_TRUE(tlb.access(0x0 << 13));
  EXPECT_FALSE(tlb.access(0x1ULL << 13));
}

TEST(Tlb, RejectsBadConfig) {
  EXPECT_THROW(Tlb(0, 8192), std::invalid_argument);
  EXPECT_THROW(Tlb(4, 1000), std::invalid_argument);
}

// -------------------------------------------------------------- predictor
TEST(Gshare, LearnsAlwaysTaken) {
  GsharePredictor bp(10);
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    if (bp.predict(0x4000) == true) ++correct;
    bp.update(0x4000, true);
  }
  EXPECT_GT(correct, 190);
}

TEST(Gshare, LearnsAlternatingPatternViaHistory) {
  GsharePredictor bp(10);
  bool taken = false;
  int correct = 0;
  for (int i = 0; i < 400; ++i) {
    taken = !taken;
    if (bp.predict(0x4000) == taken) ++correct;
    bp.update(0x4000, taken);
  }
  // After warm-up the global history disambiguates the alternation.
  EXPECT_GT(correct, 300);
}

TEST(Gshare, RandomBranchNearChance) {
  GsharePredictor bp(12);
  std::uint64_t lcg = 12345;
  int correct = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const bool taken = (lcg >> 62) & 1;
    if (bp.predict(0x8000) == taken) ++correct;
    bp.update(0x8000, taken);
  }
  EXPECT_GT(correct, n * 0.40);
  EXPECT_LT(correct, n * 0.60);
}

TEST(Gshare, RejectsBadIndexBits) {
  EXPECT_THROW(GsharePredictor(0), std::invalid_argument);
  EXPECT_THROW(GsharePredictor(30), std::invalid_argument);
}

// ----------------------------------------------------------------- core
/// Trace of independent single-source ALU ops: the core should sustain
/// close to its fetch width.
class IndependentAluTrace final : public TraceSource {
 public:
  MicroOp next() override {
    MicroOp op;
    op.cls = OpClass::kIntAlu;
    op.num_srcs = 1;
    op.src_dist[0] = 1000;  // far beyond the window: always ready
    op.pc = pc_;
    pc_ += 4;
    if (pc_ >= 0x1000 + 16 * 1024) pc_ = 0x1000;
    return op;
  }

 private:
  std::uint64_t pc_ = 0x1000;
};

/// Fully serial dependency chain: IPC limited to 1 / latency.
class SerialChainTrace final : public TraceSource {
 public:
  explicit SerialChainTrace(OpClass cls) : cls_(cls) {}
  MicroOp next() override {
    MicroOp op;
    op.cls = cls_;
    op.num_srcs = 1;
    op.src_dist[0] = 1;  // depends on the immediately preceding op
    op.pc = pc_;
    pc_ += 4;
    if (pc_ >= 0x1000 + 16 * 1024) pc_ = 0x1000;
    return op;
  }

 private:
  OpClass cls_;
  std::uint64_t pc_ = 0x1000;
};

CoreConfig test_config() {
  CoreConfig cfg;
  return cfg;
}

/// Warm caches/predictors first, then measure IPC over a window — cold
/// compulsory misses otherwise dominate these short runs.
double run_ipc(Core& core, int cycles, int warmup = 40'000) {
  for (int i = 0; i < warmup; ++i) core.cycle();
  const std::uint64_t c0 = core.cycles();
  const std::uint64_t i0 = core.committed();
  for (int i = 0; i < cycles; ++i) core.cycle();
  return static_cast<double>(core.committed() - i0) /
         static_cast<double>(core.cycles() - c0);
}

TEST(Core, IndependentOpsReachNearFetchWidth) {
  IndependentAluTrace trace;
  const CoreConfig cfg = test_config();
  Core core(cfg, trace);
  const double ipc = run_ipc(core, 20'000);
  EXPECT_GT(ipc, 0.9 * cfg.fetch_width);
  EXPECT_LE(ipc, cfg.fetch_width + 0.01);
}

TEST(Core, SerialChainBoundByLatency) {
  SerialChainTrace trace(OpClass::kIntAlu);
  Core core(test_config(), trace);
  const double ipc = run_ipc(core, 20'000);
  // 1-cycle ALU chain: at most ~1 IPC.
  EXPECT_LT(ipc, 1.1);
  EXPECT_GT(ipc, 0.7);
}

TEST(Core, SerialMulChainMuchSlower) {
  SerialChainTrace trace(OpClass::kIntMul);
  Core core(test_config(), trace);
  const double ipc = run_ipc(core, 30'000);
  // 7-cycle multiply chain: ~1/7 IPC.
  EXPECT_LT(ipc, 0.2);
}

TEST(Core, MildFetchGatingHiddenByIlp) {
  // A workload with IPC well below fetch width should barely notice
  // gating 1 in 4 fetch cycles — the ILP-hiding effect the hybrid DTM
  // policy exploits.
  SerialChainTrace trace(OpClass::kIntAlu);  // ~1 IPC workload
  Core gated_core(test_config(), trace);
  gated_core.set_fetch_gate_fraction(0.25);
  const double ipc_gated = run_ipc(gated_core, 20'000);
  EXPECT_GT(ipc_gated, 0.7);  // essentially unchanged
}

TEST(Core, HarshFetchGatingStarvesPipeline) {
  IndependentAluTrace trace;
  const CoreConfig cfg = test_config();

  IndependentAluTrace t2;
  Core harsh(cfg, t2);
  harsh.set_fetch_gate_fraction(0.75);
  const double ipc_harsh = run_ipc(harsh, 20'000);
  // Effective fetch bandwidth = 4 * 0.25 = 1.
  EXPECT_LT(ipc_harsh, 1.2);
  EXPECT_GT(ipc_harsh, 0.8);
}

TEST(Core, FetchGatingFractionScalesThroughputProportionally) {
  // For a fetch-bound workload IPC should track (1 - g) * width.
  for (double g : {0.0, 0.25, 0.5}) {
    IndependentAluTrace trace;
    Core core(test_config(), trace);
    core.set_fetch_gate_fraction(g);
    const double ipc = run_ipc(core, 20'000);
    EXPECT_NEAR(ipc, 4.0 * (1.0 - g), 0.4) << "g=" << g;
  }
}

TEST(Core, GateFractionValidation) {
  IndependentAluTrace trace;
  Core core(test_config(), trace);
  EXPECT_THROW(core.set_fetch_gate_fraction(-0.1), std::invalid_argument);
  EXPECT_THROW(core.set_fetch_gate_fraction(1.5), std::invalid_argument);
  core.set_fetch_gate_fraction(1.0);  // allowed: fetch fully gated
  for (int i = 0; i < 1000; ++i) core.cycle();
  // With fetch fully gated nothing new commits once the window drains.
  const std::uint64_t committed = core.committed();
  for (int i = 0; i < 1000; ++i) core.cycle();
  EXPECT_EQ(core.committed(), committed);
}

TEST(Core, IdleCyclesAdvanceTimeWithoutWork) {
  IndependentAluTrace trace;
  Core core(test_config(), trace);
  for (int i = 0; i < 100; ++i) core.idle_cycle(true);
  EXPECT_EQ(core.cycles(), 100u);
  EXPECT_EQ(core.committed(), 0u);
  const ActivityFrame f = core.take_interval_activity();
  EXPECT_DOUBLE_EQ(f.cycles, 100.0);
  EXPECT_DOUBLE_EQ(f.clocked_cycles, 100.0);
}

TEST(Core, ClockGatedIdleCyclesAreUnclocked) {
  IndependentAluTrace trace;
  Core core(test_config(), trace);
  for (int i = 0; i < 60; ++i) core.idle_cycle(false);
  for (int i = 0; i < 40; ++i) core.idle_cycle(true);
  const ActivityFrame f = core.take_interval_activity();
  EXPECT_DOUBLE_EQ(f.cycles, 100.0);
  EXPECT_DOUBLE_EQ(f.clocked_cycles, 40.0);
}

TEST(Core, ActivityCountersTrackExecution) {
  IndependentAluTrace trace;
  Core core(test_config(), trace);
  for (int i = 0; i < 5000; ++i) core.cycle();
  const ActivityFrame f = core.take_interval_activity();
  using floorplan::BlockId;
  EXPECT_GT(f.count(BlockId::kICache), 0.0);
  EXPECT_GT(f.count(BlockId::kIntMap), 0.0);
  EXPECT_GT(f.count(BlockId::kIntQ), 0.0);
  EXPECT_GT(f.count(BlockId::kIntReg), 0.0);
  EXPECT_GT(f.count(BlockId::kIntExec), 0.0);
  // Integer-only trace: no FP activity.
  EXPECT_DOUBLE_EQ(f.count(BlockId::kFPAdd), 0.0);
  EXPECT_DOUBLE_EQ(f.count(BlockId::kFPMul), 0.0);
}

TEST(Core, TakeIntervalActivityClears) {
  IndependentAluTrace trace;
  Core core(test_config(), trace);
  for (int i = 0; i < 100; ++i) core.cycle();
  core.take_interval_activity();
  const ActivityFrame f = core.interval_activity();
  EXPECT_DOUBLE_EQ(f.cycles, 0.0);
  EXPECT_DOUBLE_EQ(f.count(floorplan::BlockId::kIntExec), 0.0);
}

TEST(Core, SlowerFrequencyLengthensMemoryLatencyInCycles) {
  // A pointer-chase style load chain that misses everywhere is memory
  // bound; lowering the clock reduces the miss penalty in cycles and so
  // *raises* IPC — the effect that makes DVS cheaper than its frequency
  // ratio suggests for memory-bound codes.
  class StreamLoadTrace final : public TraceSource {
   public:
    MicroOp next() override {
      MicroOp op;
      op.cls = OpClass::kLoad;
      op.num_srcs = 1;
      op.src_dist[0] = 1;  // serial chain through memory
      op.pc = 0x1000;
      addr_ += 4096;  // new page+line every time: always misses
      op.mem_addr = addr_;
      return op;
    }

   private:
    std::uint64_t addr_ = 0x4000'0000;
  };

  StreamLoadTrace t1;
  Core fast(test_config(), t1);
  fast.set_frequency(3.0e9);
  const double ipc_fast = run_ipc(fast, 40'000);

  StreamLoadTrace t2;
  Core slow(test_config(), t2);
  slow.set_frequency(1.0e9);
  const double ipc_slow = run_ipc(slow, 40'000);

  EXPECT_GT(ipc_slow, ipc_fast * 1.5);
}

TEST(Core, MispredictsDetectedAndPenalised) {
  // Random branches mixed into independent ALU work lower IPC via
  // redirect stalls.
  class RandomBranchTrace final : public TraceSource {
   public:
    MicroOp next() override {
      MicroOp op;
      lcg_ = lcg_ * 6364136223846793005ULL + 1442695040888963407ULL;
      if ((count_++ % 5) == 0) {
        op.cls = OpClass::kBranch;
        op.num_srcs = 1;
        op.src_dist[0] = 100;
        op.branch_taken = (lcg_ >> 62) & 1;
      } else {
        op.cls = OpClass::kIntAlu;
        op.num_srcs = 1;
        op.src_dist[0] = 100;
      }
      op.pc = 0x1000 + (count_ % 1024) * 4;
      return op;
    }

   private:
    std::uint64_t lcg_ = 99;
    std::uint64_t count_ = 0;
  };

  RandomBranchTrace trace;
  Core core(test_config(), trace);
  const double ipc = run_ipc(core, 30'000);
  EXPECT_GT(core.stats().branches, 0u);
  EXPECT_GT(core.stats().mispredict_rate(), 0.2);
  EXPECT_LT(ipc, 3.0);  // redirects hurt a fetch-bound stream

  IndependentAluTrace clean;
  Core ref(test_config(), clean);
  EXPECT_GT(run_ipc(ref, 30'000), ipc);
}

TEST(Core, DeterministicAcrossRuns) {
  auto run_once = [] {
    IndependentAluTrace trace;
    Core core(test_config(), trace);
    core.set_fetch_gate_fraction(0.3);
    for (int i = 0; i < 10'000; ++i) core.cycle();
    return core.committed();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Core, RejectsBadConfig) {
  IndependentAluTrace trace;
  CoreConfig cfg;
  cfg.rob_entries = 0;
  EXPECT_THROW(Core(cfg, trace), std::invalid_argument);
  CoreConfig cfg2;
  cfg2.fetch_width = 0;
  EXPECT_THROW(Core(cfg2, trace), std::invalid_argument);
}

TEST(Core, FrequencyValidation) {
  IndependentAluTrace trace;
  Core core(test_config(), trace);
  EXPECT_THROW(core.set_frequency(0.0), std::invalid_argument);
  EXPECT_THROW(core.set_frequency(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace hydra::arch
