// MUST NOT COMPILE under -Werror=thread-safety-analysis: calling a
// HYDRA_REQUIRES(mu) function without holding mu breaks the `_locked`
// helper contract (PersistentRunCache, BatchCoordinator) that this PR
// turned from a naming convention into a compiler-checked one.
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace {

struct Cache {
  hydra::util::Mutex mu;
  int entries HYDRA_GUARDED_BY(mu) = 0;

  void evict_locked() HYDRA_REQUIRES(mu) { --entries; }

  void evict_without_lock() {
    evict_locked();  // error: calling evict_locked() requires `mu`
  }
};

}  // namespace

int main() {
  Cache c;
  c.evict_without_lock();
  return 0;
}
