// Positive control for the negative-compile tests: the canonical lock
// patterns used across the tree, written correctly, must compile clean
// under -Werror=thread-safety-analysis. If this file stops compiling,
// the sibling negatives prove nothing (any failure could be a broken
// include path rather than the analysis doing its job).
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace {

using hydra::util::CondVar;
using hydra::util::LockGuard;
using hydra::util::Mutex;
using hydra::util::ReaderLock;
using hydra::util::SharedMutex;
using hydra::util::WriterLock;

struct Guarded {
  Mutex mu;
  int value HYDRA_GUARDED_BY(mu) = 0;
  CondVar cv;
  bool ready HYDRA_GUARDED_BY(mu) = false;

  void locked_write() {
    const LockGuard lock(mu);
    ++value;
  }

  int locked_read() {
    const LockGuard lock(mu);
    return value;
  }

  void locked_helper() HYDRA_REQUIRES(mu) { ++value; }

  void call_through() {
    const LockGuard lock(mu);
    locked_helper();
  }

  void wait_ready() {
    LockGuard lock(mu);
    // The guarded predicate read is legal: wait() holds mu whenever the
    // predicate runs, and the analysis sees the capability held across
    // the call.
    while (!ready) cv.wait(lock);
    ++value;
  }
};

struct SharedGuarded {
  SharedMutex mu;
  int value HYDRA_GUARDED_BY(mu) = 0;

  void writer_bump() {
    const WriterLock lock(mu);
    ++value;
  }

  int reader_get() {
    const ReaderLock lock(mu);
    return value;
  }
};

}  // namespace

int main() {
  Guarded g;
  g.locked_write();
  g.call_through();
  SharedGuarded s;
  s.writer_bump();
  return g.locked_read() + s.reader_get();
}
