// MUST NOT COMPILE under -Werror=thread-safety-analysis: writing a
// guarded field while holding only the SHARED side of a SharedMutex.
// This is the Registry's scrape/registration split — a reader that
// mutates would race every other reader, and the analysis must reject
// it even though a lock (the wrong kind) is genuinely held.
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace {

struct SharedGuarded {
  hydra::util::SharedMutex mu;
  int value HYDRA_GUARDED_BY(mu) = 0;

  void write_under_reader() {
    const hydra::util::ReaderLock lock(mu);
    ++value;  // error: writing `value` requires `mu` exclusively
  }
};

}  // namespace

int main() {
  SharedGuarded s;
  s.write_under_reader();
  return 0;
}
