// MUST NOT COMPILE under -Werror=thread-safety-analysis: touching a
// HYDRA_GUARDED_BY field without holding its mutex is exactly the bug
// class the annotations exist to make unwritable. Registered WILL_FAIL;
// if this ever compiles under clang, the analysis has gone dark.
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace {

struct Guarded {
  hydra::util::Mutex mu;
  int value HYDRA_GUARDED_BY(mu) = 0;

  int unlocked_read() {
    return value;  // error: reading `value` requires holding `mu`
  }
};

}  // namespace

int main() {
  Guarded g;
  return g.unlocked_read();
}
