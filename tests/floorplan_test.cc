// Unit tests for src/floorplan: geometry, adjacency, EV7 factory, I/O.
#include <gtest/gtest.h>

#include "floorplan/ev7.h"
#include "floorplan/floorplan.h"
#include "floorplan/floorplan_io.h"

namespace hydra::floorplan {
namespace {

Floorplan two_by_one() {
  Floorplan fp;
  fp.add({"left", 0.0, 0.0, 1.0, 2.0});
  fp.add({"right", 1.0, 0.0, 1.0, 2.0});
  return fp;
}

TEST(Block, Geometry) {
  const Block b{"x", 1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(b.area(), 12.0);
  EXPECT_DOUBLE_EQ(b.right(), 4.0);
  EXPECT_DOUBLE_EQ(b.top(), 6.0);
  EXPECT_DOUBLE_EQ(b.center_x(), 2.5);
  EXPECT_DOUBLE_EQ(b.center_y(), 4.0);
}

TEST(Floorplan, RejectsBadBlocks) {
  Floorplan fp;
  EXPECT_THROW(fp.add({"zero", 0, 0, 0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(fp.add({"neg", 0, 0, 1.0, -1.0}), std::invalid_argument);
  fp.add({"ok", 0, 0, 1.0, 1.0});
  EXPECT_THROW(fp.add({"ok", 1, 0, 1.0, 1.0}), std::invalid_argument);
}

TEST(Floorplan, IndexOf) {
  const Floorplan fp = two_by_one();
  ASSERT_TRUE(fp.index_of("left").has_value());
  EXPECT_EQ(*fp.index_of("left"), 0u);
  EXPECT_FALSE(fp.index_of("nope").has_value());
}

TEST(Floorplan, DieDimensions) {
  const Floorplan fp = two_by_one();
  EXPECT_DOUBLE_EQ(fp.die_width(), 2.0);
  EXPECT_DOUBLE_EQ(fp.die_height(), 2.0);
  EXPECT_DOUBLE_EQ(fp.die_area(), 4.0);
  EXPECT_DOUBLE_EQ(fp.total_block_area(), 4.0);
  EXPECT_TRUE(fp.covers_die());
}

TEST(Floorplan, DetectsOverlap) {
  Floorplan fp;
  fp.add({"a", 0, 0, 2.0, 2.0});
  fp.add({"b", 1.0, 1.0, 2.0, 2.0});
  EXPECT_FALSE(fp.overlap_free());
  EXPECT_FALSE(fp.covers_die());
}

TEST(Floorplan, TouchingEdgesAreNotOverlap) {
  EXPECT_TRUE(two_by_one().overlap_free());
}

TEST(Floorplan, DetectsCoverageGap) {
  Floorplan fp;
  fp.add({"a", 0, 0, 1.0, 1.0});
  fp.add({"b", 1.5, 0, 1.0, 1.0});  // gap between them
  EXPECT_TRUE(fp.overlap_free());
  EXPECT_FALSE(fp.covers_die());
}

TEST(Floorplan, AdjacencySharedEdge) {
  const Floorplan fp = two_by_one();
  const auto adj = fp.adjacencies();
  ASSERT_EQ(adj.size(), 1u);
  EXPECT_EQ(adj[0].a, 0u);
  EXPECT_EQ(adj[0].b, 1u);
  EXPECT_DOUBLE_EQ(adj[0].shared_length, 2.0);
  EXPECT_TRUE(adj[0].vertical_edge);
}

TEST(Floorplan, AdjacencyHorizontalEdge) {
  Floorplan fp;
  fp.add({"bottom", 0, 0, 2.0, 1.0});
  fp.add({"top", 0.5, 1.0, 1.0, 1.0});
  const auto adj = fp.adjacencies();
  ASSERT_EQ(adj.size(), 1u);
  EXPECT_DOUBLE_EQ(adj[0].shared_length, 1.0);  // partial overlap
  EXPECT_FALSE(adj[0].vertical_edge);
}

TEST(Floorplan, CornerTouchIsNotAdjacency) {
  Floorplan fp;
  fp.add({"a", 0, 0, 1.0, 1.0});
  fp.add({"b", 1.0, 1.0, 1.0, 1.0});  // touches only at the corner
  EXPECT_TRUE(fp.adjacencies().empty());
}

// ------------------------------------------------------------- EV7 plan
TEST(Ev7, HasAllBlocksInBlockIdOrder) {
  const Floorplan fp = ev7_floorplan();
  ASSERT_EQ(fp.size(), kNumBlocks);
  for (std::size_t i = 0; i < kNumBlocks; ++i) {
    EXPECT_EQ(fp.block(i).name, block_name(static_cast<BlockId>(i)));
  }
}

TEST(Ev7, TilesTheDieExactly) {
  const Floorplan fp = ev7_floorplan();
  EXPECT_TRUE(fp.overlap_free());
  EXPECT_TRUE(fp.covers_die(1e-9));
  EXPECT_NEAR(fp.die_width(), 16e-3, 1e-12);
  EXPECT_NEAR(fp.die_height(), 16e-3, 1e-12);
}

TEST(Ev7, L2DominatesArea) {
  const Floorplan fp = ev7_floorplan();
  const double l2 =
      fp.block(static_cast<std::size_t>(BlockId::kL2)).area() +
      fp.block(static_cast<std::size_t>(BlockId::kL2Left)).area() +
      fp.block(static_cast<std::size_t>(BlockId::kL2Right)).area();
  EXPECT_GT(l2 / fp.die_area(), 0.7);
}

TEST(Ev7, IntRegIsSmallCentralBlock) {
  const Floorplan fp = ev7_floorplan();
  const Block& reg = fp.block(static_cast<std::size_t>(BlockId::kIntReg));
  EXPECT_LT(reg.area(), 4e-6);  // a few mm^2
  EXPECT_GT(reg.area(), 1e-6);
}

TEST(Ev7, CoreBlocksAreConnected) {
  // Every core block must share an edge with at least one other block —
  // otherwise the lateral thermal network would be disconnected.
  const Floorplan fp = ev7_floorplan();
  const auto adj = fp.adjacencies(1e-9);
  std::vector<int> degree(fp.size(), 0);
  for (const auto& a : adj) {
    ++degree[a.a];
    ++degree[a.b];
  }
  for (std::size_t i = 0; i < fp.size(); ++i) {
    EXPECT_GT(degree[i], 0) << fp.block(i).name;
  }
}

// ------------------------------------------------------------------- io
TEST(FlpIo, RoundTrip) {
  const Floorplan fp = ev7_floorplan();
  const std::string text = to_flp(fp);
  const Floorplan back = from_flp(text);
  ASSERT_EQ(back.size(), fp.size());
  for (std::size_t i = 0; i < fp.size(); ++i) {
    EXPECT_EQ(back.block(i).name, fp.block(i).name);
    EXPECT_DOUBLE_EQ(back.block(i).x, fp.block(i).x);
    EXPECT_DOUBLE_EQ(back.block(i).y, fp.block(i).y);
    EXPECT_DOUBLE_EQ(back.block(i).width, fp.block(i).width);
    EXPECT_DOUBLE_EQ(back.block(i).height, fp.block(i).height);
  }
}

TEST(FlpIo, ParsesCommentsAndBlanks) {
  const Floorplan fp = from_flp("# comment\n\nblk 0.001 0.002 0 0\n");
  ASSERT_EQ(fp.size(), 1u);
  EXPECT_EQ(fp.block(0).name, "blk");
  EXPECT_DOUBLE_EQ(fp.block(0).height, 0.002);
}

TEST(FlpIo, RejectsMalformed) {
  EXPECT_THROW(from_flp("blk 0.001 0.002 0\n"), std::invalid_argument);
  EXPECT_THROW(from_flp("blk 0.001 0.002 0 0 extra\n"),
               std::invalid_argument);
}

TEST(FlpIo, RejectsNonFiniteGeometryWithLineContext) {
  // Whether operator>> rejects "nan" itself (libstdc++) or parses it
  // (other stdlibs, caught by the isfinite guard), the loader must throw
  // and name the offending line.
  const char* text = "a 0.001 0.002 0 0\nb nan 0.002 0.001 0\n";
  try {
    from_flp(text);
    FAIL() << "expected non-finite geometry error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("flp line 2"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(from_flp("a inf 0.002 0 0\n"), std::invalid_argument);
}

TEST(FlpIo, BadGeometryErrorsCarryLineContext) {
  try {
    from_flp("a 0.001 0.002 0 0\nb -0.001 0.002 0.001 0\n");
    FAIL() << "expected bad-geometry error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("flp line 2"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace hydra::floorplan
