// Unit tests for src/workload: profile validation, generator statistics,
// determinism, phases, and the nine SPEC2000 profiles.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <set>

#include "workload/spec_profiles.h"
#include "workload/synthetic_trace.h"

namespace hydra::workload {
namespace {

using arch::MicroOp;
using arch::OpClass;

WorkloadProfile simple_profile() {
  WorkloadProfile p;
  p.name = "test";
  p.seed = 7;
  return p;
}

// ------------------------------------------------------------ validation
TEST(Profile, DefaultIsValid) {
  EXPECT_NO_THROW(simple_profile().validate());
}

TEST(Profile, RejectsBadMix) {
  WorkloadProfile p = simple_profile();
  p.frac_int_alu += 0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Profile, RejectsBadDependenceAndFootprints) {
  WorkloadProfile p = simple_profile();
  p.mean_dep_distance = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = simple_profile();
  p.inst_footprint = 100;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = simple_profile();
  p.warm_access_fraction = 0.9;
  p.stream_access_fraction = 0.2;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Profile, RejectsBadPhase) {
  WorkloadProfile p = simple_profile();
  p.phases = {{0, 1.0, 1.0}};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.phases = {{1000, -1.0, 1.0}};
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

// ------------------------------------------------------------- generator
TEST(SyntheticTrace, Deterministic) {
  SyntheticTrace a(simple_profile());
  SyntheticTrace b(simple_profile());
  for (int i = 0; i < 10'000; ++i) {
    const MicroOp x = a.next();
    const MicroOp y = b.next();
    EXPECT_EQ(static_cast<int>(x.cls), static_cast<int>(y.cls));
    EXPECT_EQ(x.pc, y.pc);
    EXPECT_EQ(x.mem_addr, y.mem_addr);
    EXPECT_EQ(x.branch_taken, y.branch_taken);
  }
}

TEST(SyntheticTrace, SeedChangesStream) {
  WorkloadProfile p2 = simple_profile();
  p2.seed = 8;
  SyntheticTrace a(simple_profile());
  SyntheticTrace b(p2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (static_cast<int>(a.next().cls) == static_cast<int>(b.next().cls)) {
      ++same;
    }
  }
  EXPECT_LT(same, 900);  // different programs
}

TEST(SyntheticTrace, MixMatchesProfile) {
  const WorkloadProfile p = simple_profile();
  SyntheticTrace t(p);
  std::array<long, arch::kNumOpClasses> counts{};
  const long n = 400'000;
  for (long i = 0; i < n; ++i) ++counts[static_cast<int>(t.next().cls)];
  const double tol = 0.05;
  EXPECT_NEAR(double(counts[0]) / double(n), p.frac_int_alu, tol);
  EXPECT_NEAR(double(counts[4]) / double(n), p.frac_load, tol);
  EXPECT_NEAR(double(counts[5]) / double(n), p.frac_store, tol);
  EXPECT_NEAR(double(counts[6]) / double(n), p.frac_branch, tol);
}

TEST(SyntheticTrace, ClassIsStaticPerPc) {
  // The synthetic program has static structure: revisiting a pc always
  // yields the same instruction class.
  SyntheticTrace t(simple_profile());
  std::map<std::uint64_t, OpClass> seen;
  for (int i = 0; i < 200'000; ++i) {
    const MicroOp op = t.next();
    const auto it = seen.find(op.pc);
    if (it != seen.end()) {
      ASSERT_EQ(static_cast<int>(it->second), static_cast<int>(op.cls));
    } else {
      seen.emplace(op.pc, op.cls);
    }
  }
  EXPECT_GT(seen.size(), 1000u);  // and many slots were revisited
}

TEST(SyntheticTrace, DependencyDistancesInRange) {
  const WorkloadProfile p = simple_profile();
  SyntheticTrace t(p);
  double sum = 0.0;
  long n = 0;
  for (int i = 0; i < 100'000; ++i) {
    const MicroOp op = t.next();
    for (int s = 0; s < op.num_srcs; ++s) {
      EXPECT_GE(op.src_dist[s], 1);
      EXPECT_LE(op.src_dist[s], p.max_dep_distance);
      sum += op.src_dist[s];
      ++n;
    }
  }
  EXPECT_NEAR(sum / double(n), p.mean_dep_distance, 1.0);
}

TEST(SyntheticTrace, PcStaysInFootprint) {
  const WorkloadProfile p = simple_profile();
  SyntheticTrace t(p);
  for (int i = 0; i < 100'000; ++i) {
    const MicroOp op = t.next();
    EXPECT_GE(op.pc, 0x12000000u);
    EXPECT_LT(op.pc, 0x12000000u + p.inst_footprint);
  }
}

TEST(SyntheticTrace, MemoryRegionsRespectFractions) {
  WorkloadProfile p = simple_profile();
  p.warm_access_fraction = 0.10;
  p.stream_access_fraction = 0.01;
  SyntheticTrace t(p);
  long hot = 0;
  long warm = 0;
  long stream = 0;
  long mem = 0;
  for (int i = 0; i < 500'000; ++i) {
    const MicroOp op = t.next();
    if (!is_mem(op.cls)) continue;
    ++mem;
    if (op.mem_addr >= 0x60000000u) {
      ++stream;
    } else if (op.mem_addr >= 0x50000000u) {
      ++warm;
    } else {
      ++hot;
    }
  }
  ASSERT_GT(mem, 0);
  EXPECT_NEAR(double(warm) / double(mem), 0.10, 0.02);
  EXPECT_NEAR(double(stream) / double(mem), 0.01, 0.005);
  EXPECT_GT(hot, mem / 2);
}

TEST(SyntheticTrace, HotAddressesWithinFootprint) {
  const WorkloadProfile p = simple_profile();
  SyntheticTrace t(p);
  for (int i = 0; i < 200'000; ++i) {
    const MicroOp op = t.next();
    if (!is_mem(op.cls)) continue;
    if (op.mem_addr < 0x50000000u) {
      EXPECT_LT(op.mem_addr - 0x40000000u, p.data_hot_footprint);
    }
  }
}

TEST(SyntheticTrace, StreamAddressesAdvance) {
  WorkloadProfile p = simple_profile();
  p.stream_access_fraction = 0.5;
  SyntheticTrace t(p);
  std::uint64_t last = 0;
  for (int i = 0; i < 50'000; ++i) {
    const MicroOp op = t.next();
    if (is_mem(op.cls) && op.mem_addr >= 0x60000000u) {
      EXPECT_GT(op.mem_addr, last);
      last = op.mem_addr;
    }
  }
  EXPECT_GT(last, 0x60000000u);
}

TEST(SyntheticTrace, BranchBiasIsPerStaticBranch) {
  // For each static branch, outcomes should be strongly one-sided or
  // near-random — never, say, 70/30 (the generator draws 0.97/0.03/0.5).
  SyntheticTrace t(simple_profile());
  std::map<std::uint64_t, std::pair<long, long>> outcomes;  // taken, total
  for (int i = 0; i < 2'000'000; ++i) {
    const MicroOp op = t.next();
    if (op.cls != OpClass::kBranch) continue;
    auto& [taken, total] = outcomes[op.pc];
    taken += op.branch_taken ? 1 : 0;
    ++total;
  }
  long biased = 0;
  long sampled = 0;
  for (const auto& [pc, tt] : outcomes) {
    if (tt.second < 100) continue;
    ++sampled;
    const double rate = double(tt.first) / double(tt.second);
    if (rate < 0.12 || rate > 0.88) ++biased;
  }
  ASSERT_GT(sampled, 50);
  // Most static branches are strongly biased (easy to predict).
  EXPECT_GT(double(biased) / double(sampled), 0.8);
}

TEST(SyntheticTrace, PhasesRotate) {
  WorkloadProfile p = simple_profile();
  p.phases = {{1000, 1.0, 1.0}, {500, 2.0, 1.0}};
  SyntheticTrace t(p);
  std::set<std::size_t> seen;
  for (int i = 0; i < 4000; ++i) {
    seen.insert(t.current_phase());
    t.next();
  }
  EXPECT_EQ(seen.size(), 2u);
}

TEST(SyntheticTrace, PhaseIlpScaleChangesDistances) {
  WorkloadProfile lo = simple_profile();
  lo.phases = {{1'000'000, 0.5, 1.0}};
  WorkloadProfile hi = simple_profile();
  hi.phases = {{1'000'000, 2.0, 1.0}};
  auto mean_dist = [](const WorkloadProfile& p) {
    SyntheticTrace t(p);
    double sum = 0.0;
    long n = 0;
    for (int i = 0; i < 100'000; ++i) {
      const MicroOp op = t.next();
      for (int s = 0; s < op.num_srcs; ++s) {
        sum += op.src_dist[s];
        ++n;
      }
    }
    return sum / double(n);
  };
  EXPECT_GT(mean_dist(hi), mean_dist(lo) * 1.5);
}

// --------------------------------------------------------- SPEC profiles
TEST(SpecProfiles, NineBenchmarksInPaperOrder) {
  const auto all = spec2000_hot_profiles();
  ASSERT_EQ(all.size(), 9u);
  const char* expected[] = {"mesa", "perlbmk", "gzip",   "bzip2", "eon",
                            "crafty", "vortex",  "gcc", "art"};
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(all[i].name, expected[i]);
}

TEST(SpecProfiles, AllValid) {
  for (const auto& p : spec2000_hot_profiles()) {
    EXPECT_NO_THROW(p.validate()) << p.name;
  }
}

TEST(SpecProfiles, UniqueSeeds) {
  std::set<std::uint64_t> seeds;
  for (const auto& p : spec2000_hot_profiles()) seeds.insert(p.seed);
  EXPECT_EQ(seeds.size(), 9u);
}

TEST(SpecProfiles, FpBenchmarksHaveFpMix) {
  for (const char* name : {"mesa", "eon", "art"}) {
    const auto p = spec2000_profile(name);
    EXPECT_GT(p.frac_fp_add + p.frac_fp_mul, 0.15) << name;
  }
  for (const char* name : {"gzip", "crafty", "gcc"}) {
    const auto p = spec2000_profile(name);
    EXPECT_LT(p.frac_fp_add + p.frac_fp_mul, 0.05) << name;
  }
}

TEST(SpecProfiles, LookupByNameAndUnknownThrows) {
  EXPECT_EQ(spec2000_profile("art").name, "art");
  EXPECT_THROW(spec2000_profile("swim"), std::invalid_argument);
}

}  // namespace
}  // namespace hydra::workload
