// Tests for sensor placement optimisation.
#include <gtest/gtest.h>

#include "sensor/placement.h"
#include "util/rng.h"

namespace hydra::sensor {
namespace {

TEST(Placement, WorstErrorZeroWhenHotspotInstrumented) {
  // Block 2 is always hottest.
  const TemperatureTrace trace = {{80, 81, 85}, {79, 82, 86}, {81, 80, 84}};
  EXPECT_DOUBLE_EQ(placement_worst_error(trace, {2}), 0.0);
  EXPECT_DOUBLE_EQ(placement_worst_error(trace, {0, 2}), 0.0);
}

TEST(Placement, WorstErrorMeasuresUnderRead) {
  const TemperatureTrace trace = {{80, 85}, {84, 82}};
  // Instrumenting only block 0: misses 5 at t0, exact at t1.
  EXPECT_DOUBLE_EQ(placement_worst_error(trace, {0}), 5.0);
  EXPECT_DOUBLE_EQ(placement_worst_error(trace, {1}), 2.0);
}

TEST(Placement, GreedyPicksAlwaysHotBlockFirst) {
  const TemperatureTrace trace = {{80, 81, 85}, {79, 82, 86}, {81, 80, 84}};
  const PlacementResult r = greedy_placement(trace, 1);
  ASSERT_EQ(r.blocks.size(), 1u);
  EXPECT_EQ(r.blocks[0], 2u);
  EXPECT_DOUBLE_EQ(r.worst_error, 0.0);
}

TEST(Placement, GreedyCoverAlternatingHotspots) {
  // Hotspot alternates between blocks 0 and 3: two sensors needed.
  const TemperatureTrace trace = {
      {90, 70, 70, 80}, {80, 70, 70, 90}, {91, 72, 71, 82}, {81, 70, 71, 89}};
  const PlacementResult one = greedy_placement(trace, 1);
  EXPECT_GT(one.worst_error, 5.0);
  const PlacementResult two = greedy_placement(trace, 2);
  EXPECT_DOUBLE_EQ(two.worst_error, 0.0);
  EXPECT_EQ(two.blocks, (std::vector<std::size_t>{0, 3}));
}

TEST(Placement, GreedyStopsEarlyWhenExact) {
  const TemperatureTrace trace = {{90, 70}, {91, 71}};
  const PlacementResult r = greedy_placement(trace, 2);
  EXPECT_EQ(r.blocks.size(), 1u);  // one sensor already exact
}

TEST(Placement, ExhaustiveMatchesOrBeatsGreedy) {
  util::Rng rng(99);
  TemperatureTrace trace;
  for (int t = 0; t < 40; ++t) {
    std::vector<double> row;
    for (int b = 0; b < 8; ++b) row.push_back(rng.uniform(70.0, 90.0));
    trace.push_back(row);
  }
  for (std::size_t k : {1u, 2u, 3u}) {
    const PlacementResult g = greedy_placement(trace, k);
    const PlacementResult e = exhaustive_placement(trace, k);
    EXPECT_LE(e.worst_error, g.worst_error + 1e-12) << "k=" << k;
    EXPECT_EQ(e.blocks.size(), k);
  }
}

TEST(Placement, ExhaustiveSingleSensorIsArgminOfWorstError) {
  const TemperatureTrace trace = {{80, 85, 83}, {84, 82, 83}, {81, 83, 85}};
  const PlacementResult e = exhaustive_placement(trace, 1);
  double best = 1e9;
  std::size_t best_b = 0;
  for (std::size_t b = 0; b < 3; ++b) {
    const double err = placement_worst_error(trace, {b});
    if (err < best) {
      best = err;
      best_b = b;
    }
  }
  EXPECT_EQ(e.blocks[0], best_b);
  EXPECT_DOUBLE_EQ(e.worst_error, best);
}

TEST(Placement, Validation) {
  const TemperatureTrace good = {{1.0, 2.0}};
  EXPECT_THROW(placement_worst_error({}, {0}), std::invalid_argument);
  EXPECT_THROW(placement_worst_error(good, {}), std::invalid_argument);
  EXPECT_THROW(placement_worst_error(good, {5}), std::invalid_argument);
  EXPECT_THROW(placement_worst_error({{1.0, 2.0}, {1.0}}, {0}),
               std::invalid_argument);
  EXPECT_THROW(greedy_placement(good, 0), std::invalid_argument);
  EXPECT_THROW(greedy_placement(good, 5), std::invalid_argument);
  EXPECT_THROW(exhaustive_placement(good, 3), std::invalid_argument);
}

}  // namespace
}  // namespace hydra::sensor
