// Unit tests for src/sensor.
#include <gtest/gtest.h>

#include <limits>

#include "sensor/sensor.h"
#include "util/units.h"
#include "util/stats.h"

namespace hydra::sensor {
namespace {

using util::CelsiusDelta;
using util::Hertz;

SensorConfig quiet() {
  SensorConfig cfg;
  cfg.enable_noise = false;
  cfg.enable_offset = false;
  cfg.quantization = CelsiusDelta(0.0);
  return cfg;
}

TEST(SensorBank, ExactWithoutNoiseOrOffset) {
  SensorBank bank(3, quiet());
  const auto s = bank.sample({80.0, 85.5, 90.25});
  EXPECT_DOUBLE_EQ(s[0], 80.0);
  EXPECT_DOUBLE_EQ(s[1], 85.5);
  EXPECT_DOUBLE_EQ(s[2], 90.25);
}

TEST(SensorBank, AcceptsLongerTruthVector) {
  // A full thermal-node vector (blocks + package nodes) is accepted; only
  // the per-block prefix is read.
  SensorBank bank(2, quiet());
  const auto s = bank.sample({80.0, 81.0, 999.0, 999.0});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[1], 81.0);
}

TEST(SensorBank, RejectsShortTruthVector) {
  SensorBank bank(3, quiet());
  EXPECT_THROW(bank.sample({80.0, 81.0}), std::invalid_argument);
}

TEST(SensorBank, OffsetsAreFixedNegativeAndBounded) {
  SensorConfig cfg;
  cfg.enable_noise = false;
  cfg.quantization = CelsiusDelta(0.0);
  cfg.max_offset = CelsiusDelta(2.0);
  SensorBank bank(50, cfg);
  for (std::size_t i = 0; i < bank.count(); ++i) {
    EXPECT_LE(bank.offset(i).value(), 0.0);
    EXPECT_GE(bank.offset(i).value(), -2.0);
  }
  // Offsets are applied verbatim and stay fixed across samples.
  const auto s1 = bank.sample(std::vector<double>(50, 85.0));
  const auto s2 = bank.sample(std::vector<double>(50, 85.0));
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(s1[i], 85.0 + bank.offset(i).value());
    EXPECT_DOUBLE_EQ(s1[i], s2[i]);
  }
}

TEST(SensorBank, NoiseHasConfiguredSpread) {
  SensorConfig cfg;
  cfg.enable_offset = false;
  cfg.quantization = CelsiusDelta(0.0);
  cfg.noise_sigma = CelsiusDelta(0.4);
  SensorBank bank(1, cfg);
  util::RunningStats stats;
  for (int i = 0; i < 20'000; ++i) {
    stats.add(bank.sample({85.0})[0] - 85.0);
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 0.4, 0.02);
}

TEST(SensorBank, EffectivePrecisionIsOneDegree) {
  // Paper: "effective precision after averaging is 1 degree" — 99 % of
  // readings within +/-1 C of truth for the default configuration.
  SensorConfig cfg;
  cfg.enable_offset = false;
  SensorBank bank(1, cfg);
  int within = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (std::abs(bank.sample({85.0})[0] - 85.0) <= 1.0) ++within;
  }
  EXPECT_GT(within / double(n), 0.97);
}

TEST(SensorBank, QuantizationSnapsToGrid) {
  SensorConfig cfg;
  cfg.enable_noise = false;
  cfg.enable_offset = false;
  cfg.quantization = CelsiusDelta(0.25);
  SensorBank bank(1, cfg);
  const double v = bank.sample({85.13})[0];
  EXPECT_DOUBLE_EQ(v, 85.25);
}

TEST(SensorBank, DeterministicForSeed) {
  SensorConfig cfg;
  cfg.seed = 99;
  SensorBank a(4, cfg);
  SensorBank b(4, cfg);
  for (int i = 0; i < 100; ++i) {
    const auto sa = a.sample({80, 81, 82, 83});
    const auto sb = b.sample({80, 81, 82, 83});
    for (int k = 0; k < 4; ++k) EXPECT_DOUBLE_EQ(sa[k], sb[k]);
  }
}

TEST(SensorBank, SampleMaxMatchesMaxOfSample) {
  SensorBank bank(3, quiet());
  EXPECT_DOUBLE_EQ(bank.sample_max({80.0, 85.0, 82.0}), 85.0);
}

TEST(SensorBank, RejectsBadConfig) {
  SensorConfig cfg;
  cfg.sample_rate = Hertz(0.0);
  EXPECT_THROW(SensorBank(1, cfg), std::invalid_argument);
  cfg = SensorConfig{};
  cfg.sample_rate = Hertz(std::numeric_limits<double>::infinity());
  EXPECT_THROW(SensorBank(1, cfg), std::invalid_argument);
  cfg = SensorConfig{};
  cfg.noise_sigma = CelsiusDelta(-1.0);
  EXPECT_THROW(SensorBank(1, cfg), std::invalid_argument);
  EXPECT_THROW(SensorBank(0, SensorConfig{}), std::invalid_argument);
}

TEST(SensorBank, SampleOnePreservesSharedStreamOrder) {
  // sample() is defined as sample_one() over every index in order, on
  // one shared RNG stream: interleaving the calls by hand must replay
  // bit-identically (the fault injector depends on this).
  SensorConfig cfg;  // noise + offset + quantisation all on
  SensorBank a(3, cfg);
  SensorBank b(3, cfg);
  const std::vector<double> truth = {80.0, 81.5, 83.25};
  for (int k = 0; k < 50; ++k) {
    const auto sa = a.sample(truth);
    for (std::size_t i = 0; i < truth.size(); ++i) {
      EXPECT_DOUBLE_EQ(b.sample_one(i, truth[i]), sa[i]);
    }
  }
}

TEST(SensorBank, SampleOneThrowsOnBadIndex) {
  SensorBank bank(2, quiet());
  EXPECT_THROW(bank.sample_one(2, 80.0), std::out_of_range);
}

}  // namespace
}  // namespace hydra::sensor
