// Tests for the CACTI-lite array energy derivation.
#include <gtest/gtest.h>

#include "power/array_energy.h"
#include "util/units.h"
#include "power/energy_model.h"
#include "floorplan/ev7.h"

namespace hydra::power {
namespace {

TEST(ArrayEnergy, ScalesWithRows) {
  ArrayGeometry small{64, 64, 1, 1};
  ArrayGeometry big{256, 64, 1, 1};
  EXPECT_GT(array_read_energy(big), array_read_energy(small));
  EXPECT_GT(array_write_energy(big), array_write_energy(small));
}

TEST(ArrayEnergy, ScalesWithCols) {
  ArrayGeometry narrow{128, 32, 1, 1};
  ArrayGeometry wide{128, 256, 1, 1};
  // Wider rows sense and drive more bits: energy grows about linearly.
  const double ratio =
      array_read_energy(wide) / array_read_energy(narrow);
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 10.0);
}

TEST(ArrayEnergy, ScalesWithPorts) {
  ArrayGeometry one{80, 64, 1, 1};
  ArrayGeometry many{80, 64, 8, 4};
  // More ports stretch every wire; per-access energy grows superlinearly
  // in nothing, but per-port wires make each access costlier.
  EXPECT_GT(array_read_energy(many), 1.5 * array_read_energy(one));
}

TEST(ArrayEnergy, WritesCostMoreThanReadsPerBitline) {
  // Full-swing write bitlines vs 15 % read swing: for tall arrays the
  // write energy exceeds the read energy despite having no sense amps.
  ArrayGeometry tall{1024, 64, 1, 1};
  EXPECT_GT(array_write_energy(tall), array_read_energy(tall));
}

TEST(ArrayEnergy, VoltageSquaredScaling) {
  ArrayGeometry g{128, 64, 2, 1};
  ArrayTechnology hi;
  ArrayTechnology lo = hi;
  lo.vdd = hi.vdd / 2.0;
  // Wire/cell terms scale with V^2; fixed per-bit constants do not, so
  // the ratio lies between 1 and 4.
  const double ratio = array_read_energy(g, hi) / array_read_energy(g, lo);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 4.0);
}

TEST(ArrayEnergy, PeakPowerMatchesEnergyTimesFrequency) {
  ArrayGeometry g{80, 64, 2, 1};
  const util::Joules e =
      2.0 * array_read_energy(g) + 1.0 * array_write_energy(g);
  EXPECT_NEAR(array_peak_power(g, util::Hertz(3.0e9)).value(),
              (e * util::Hertz(3.0e9)).value(), 1e-12);
}

TEST(ArrayEnergy, RejectsDegenerateInputs) {
  EXPECT_THROW(array_read_energy({0, 64, 1, 1}), std::invalid_argument);
  EXPECT_THROW(array_read_energy({64, 0, 1, 1}), std::invalid_argument);
  EXPECT_THROW(array_peak_power({64, 64, 1, 1}, util::Hertz(0.0)),
               std::invalid_argument);
}

TEST(ArrayEnergy, RegisterFilePeakPowerIsWattsScale) {
  // The derived peak power of the heavily-ported integer register file
  // at 3 GHz lands in the single-digit-watts range — the same scale as
  // the calibrated EnergyModel entry (which folds in utilisation
  // assumptions and the paper's total-power calibration).
  const double watts =
      array_peak_power(int_register_file_geometry(), util::Hertz(3.0e9))
          .value();
  EXPECT_GT(watts, 0.2);
  EXPECT_LT(watts, 40.0);
}

TEST(ArrayEnergy, DerivedPeaksAreOrderOfMagnitudeComparable) {
  // The derived array peaks should land within an order of magnitude of
  // the calibrated EnergyModel peaks. A systematic gap is expected for
  // the register file: the pure array model omits the bypass network
  // and clock load that dominate heavily-ported structures (Wattch
  // charges those separately), which the calibrated table folds in.
  const EnergyModel em;
  struct Pair {
    floorplan::BlockId id;
    ArrayGeometry geometry;
  };
  const Pair pairs[] = {
      {floorplan::BlockId::kIntReg, int_register_file_geometry()},
      {floorplan::BlockId::kFPReg, fp_register_file_geometry()},
      {floorplan::BlockId::kICache, icache_geometry()},
      {floorplan::BlockId::kDCache, dcache_geometry()},
      {floorplan::BlockId::kBPred, bpred_geometry()},
  };
  for (const Pair& p : pairs) {
    const double derived =
        array_peak_power(p.geometry, util::Hertz(3.0e9)).value();
    const double calibrated = em.spec(p.id).peak_watts;
    EXPECT_GT(derived, calibrated / 20.0)
        << floorplan::block_name(p.id);
    EXPECT_LT(derived, calibrated * 20.0)
        << floorplan::block_name(p.id);
  }
}

}  // namespace
}  // namespace hydra::power
