// Tests for core::GuardedPolicy: unit tests of the supervision machinery
// against a recording stub, then sim-level property tests asserting the
// paper's safety envelope survives single-sensor faults on the hottest
// block for every headline policy.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <tuple>

#include "core/guarded_policy.h"
#include "fault/fault_campaign.h"
#include "sim/experiment.h"
#include "sim/system.h"

namespace hydra {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Inner policy that records what the guard feeds it and returns a canned
/// command.
class RecordingPolicy final : public core::DtmPolicy {
 public:
  core::DtmCommand update(const core::ThermalSample& sample) override {
    last = sample;
    ++updates;
    return canned;
  }
  std::string_view name() const override { return "stub"; }
  void reset() override { ++resets; }

  core::ThermalSample last;
  core::DtmCommand canned;
  int updates = 0;
  int resets = 0;
};

/// Five sensors on a ring; every sensor has two neighbours.
std::vector<std::vector<std::size_t>> ring5() {
  std::vector<std::vector<std::size_t>> adj(5);
  for (std::size_t i = 0; i < 5; ++i) adj[i] = {(i + 4) % 5, (i + 1) % 5};
  return adj;
}

/// Small debounce windows so unit tests stay short. Frozen detection is
/// off because the tests feed noiseless readings.
core::GuardedPolicyConfig tight() {
  core::GuardedPolicyConfig cfg;
  cfg.learn_samples = 4;
  cfg.suspect_samples = 2;
  cfg.recovery_samples = 2;
  cfg.failsafe_release_samples = 2;
  cfg.frozen_samples = 0;
  return cfg;
}

struct Harness {
  explicit Harness(core::GuardedPolicyConfig cfg = tight()) {
    auto stub_owned = std::make_unique<RecordingPolicy>();
    stub = stub_owned.get();
    guard = std::make_unique<core::GuardedPolicy>(
        std::move(stub_owned), core::DtmThresholds{}, ring5(), cfg);
  }

  /// Feed one sample (5 readings) at the next 0.1 ms tick.
  core::DtmCommand feed(std::vector<double> readings) {
    core::ThermalSample s;
    s.sensed_celsius = std::move(readings);
    s.max_sensed = util::Celsius(0.0);  // the guard recomputes this for the inner policy
    s.time = util::Seconds(1e-4 * static_cast<double>(tick++));
    return guard->update(s);
  }

  RecordingPolicy* stub = nullptr;
  std::unique_ptr<core::GuardedPolicy> guard;
  int tick = 0;
};

// --------------------------------------------------------------- unit

TEST(GuardedPolicy, RejectsBadConstruction) {
  EXPECT_THROW(core::GuardedPolicy(nullptr, {}, {}), std::invalid_argument);
  EXPECT_THROW(core::GuardedPolicy(nullptr, {}, {{1}, {7}}),
               std::invalid_argument);
  core::GuardedPolicyConfig bad;
  bad.suspect_samples = 0;
  EXPECT_THROW(core::GuardedPolicy(nullptr, {}, ring5(), bad),
               std::invalid_argument);
}

TEST(GuardedPolicy, NameWrapsInner) {
  Harness h;
  EXPECT_EQ(h.guard->name(), "Guarded(stub)");
  const core::GuardedPolicy bare(nullptr, {}, ring5());
  EXPECT_EQ(bare.name(), "Guarded(none)");
}

TEST(GuardedPolicy, CleanReadingsPassThroughWithPessimismBias) {
  Harness h;
  h.stub->canned.fetch_gate_fraction = 0.5;
  core::DtmCommand cmd;
  for (int k = 0; k < 10; ++k) cmd = h.feed({80, 80, 80, 80, 80});
  EXPECT_EQ(h.stub->updates, 10);
  const double bias = tight().pessimism_bias.value();
  for (double v : h.stub->last.sensed_celsius) EXPECT_DOUBLE_EQ(v, 80 + bias);
  EXPECT_DOUBLE_EQ(h.stub->last.max_sensed.value(), 80 + bias);
  EXPECT_DOUBLE_EQ(cmd.fetch_gate_fraction, 0.5);
  EXPECT_FALSE(cmd.clock_gate);
  EXPECT_FALSE(h.guard->failsafe_engaged());
  EXPECT_EQ(h.guard->quarantined_count(), 0u);
  EXPECT_EQ(h.guard->stats().rejected_readings, 0u);
}

TEST(GuardedPolicy, DeadSensorIsSubstitutedImmediately) {
  Harness h;
  h.feed({kNan, 80, 80, 80, 80});
  EXPECT_TRUE(h.guard->quarantined(0));
  // Estimate: neighbour median (80) + learned deviation (0) +
  // substitution margin, then the global pessimism bias.
  const core::GuardedPolicyConfig cfg = tight();
  EXPECT_DOUBLE_EQ(h.stub->last.sensed_celsius[0],
                   80 + cfg.substitution_margin.value() +
                       cfg.pessimism_bias.value());
  EXPECT_DOUBLE_EQ(h.stub->last.sensed_celsius[1],
                   80 + cfg.pessimism_bias.value());
  h.feed({kNan, 80, 80, 80, 80});
  EXPECT_EQ(h.guard->stats().quarantine_entries, 1u);
  EXPECT_EQ(h.guard->stats().rejected_readings, 2u);
  EXPECT_FALSE(h.guard->failsafe_engaged());  // 1 of 5 lost: below watchdog
}

TEST(GuardedPolicy, StuckLowQuarantinedWithinDebounceWindow) {
  Harness h;
  for (int k = 0; k < 6; ++k) h.feed({80, 80, 80, 80, 80});
  // Stuck-at 40: the step detector flags the jump, the deviation vote
  // flags the level; quarantine after suspect_samples = 2.
  h.feed({40, 80, 80, 80, 80});
  EXPECT_FALSE(h.guard->quarantined(0));
  h.feed({40, 80, 80, 80, 80});
  EXPECT_TRUE(h.guard->quarantined(0));
  // The inner policy never loses sight of the hidden block: it sees the
  // neighbour-derived estimate, not 40.
  EXPECT_GT(h.stub->last.sensed_celsius[0], 80.0);
  EXPECT_EQ(h.guard->stats().quarantine_entries, 1u);
}

TEST(GuardedPolicy, WatchdogEngagesAndReleasesWithDebounce) {
  Harness h;
  for (int k = 0; k < 6; ++k) h.feed({80, 80, 80, 80, 80});
  // Two of five sensors dead: 2 > 5/3, the watchdog must engage and
  // override the inner policy with clock gating.
  core::DtmCommand cmd = h.feed({kNan, 80, kNan, 80, 80});
  EXPECT_TRUE(h.guard->failsafe_engaged());
  EXPECT_TRUE(cmd.clock_gate);
  cmd = h.feed({kNan, 80, kNan, 80, 80});
  EXPECT_TRUE(cmd.clock_gate);
  // Readings return: recovery needs recovery_samples = 2 agreeing
  // samples, then fail-safe release needs 2 more healthy samples.
  cmd = h.feed({80, 80, 80, 80, 80});  // recovery 1/2, still quarantined
  EXPECT_TRUE(cmd.clock_gate);
  cmd = h.feed({80, 80, 80, 80, 80});  // recovered; failsafe debounce 1/2
  EXPECT_EQ(h.guard->quarantined_count(), 0u);
  EXPECT_TRUE(cmd.clock_gate);
  cmd = h.feed({80, 80, 80, 80, 80});  // failsafe debounce 2/2 -> release
  EXPECT_FALSE(h.guard->failsafe_engaged());
  EXPECT_FALSE(cmd.clock_gate);
  EXPECT_EQ(h.guard->stats().failsafe_entries, 1u);
  EXPECT_GE(h.guard->stats().failsafe_samples, 4u);
}

TEST(GuardedPolicy, NoUsableSensorsForcesMaximalResponse) {
  Harness h;
  h.feed({80, 80, 80, 80, 80});
  const core::DtmCommand cmd = h.feed({kNan, kNan, kNan, kNan, kNan});
  EXPECT_TRUE(h.guard->failsafe_engaged());
  EXPECT_TRUE(cmd.clock_gate);
  // With nothing to vote with the inner policy is fed above-emergency
  // readings so every policy takes its strongest action.
  EXPECT_GT(h.stub->last.max_sensed.value(),
            core::DtmThresholds{}.emergency.value());
}

TEST(GuardedPolicy, RecoveryBackoffDoublesAfterRelapse) {
  Harness h;
  for (int k = 0; k < 6; ++k) h.feed({80, 80, 80, 80, 80});
  h.feed({kNan, 80, 80, 80, 80});
  ASSERT_TRUE(h.guard->quarantined(0));
  // First recovery: recovery_samples = 2 agreeing samples.
  h.feed({80, 80, 80, 80, 80});
  h.feed({80, 80, 80, 80, 80});
  ASSERT_FALSE(h.guard->quarantined(0));
  // Relapse: the requirement doubles to 4.
  h.feed({kNan, 80, 80, 80, 80});
  ASSERT_TRUE(h.guard->quarantined(0));
  for (int k = 0; k < 3; ++k) h.feed({80, 80, 80, 80, 80});
  EXPECT_TRUE(h.guard->quarantined(0));
  h.feed({80, 80, 80, 80, 80});
  EXPECT_FALSE(h.guard->quarantined(0));
  EXPECT_EQ(h.guard->stats().quarantine_entries, 2u);
}

TEST(GuardedPolicy, ResetRestoresPowerOnState) {
  Harness h;
  h.feed({kNan, kNan, 80, 80, 80});
  ASSERT_TRUE(h.guard->failsafe_engaged());
  h.guard->reset();
  EXPECT_FALSE(h.guard->failsafe_engaged());
  EXPECT_EQ(h.guard->quarantined_count(), 0u);
  EXPECT_EQ(h.guard->stats().samples, 0u);
  EXPECT_EQ(h.stub->resets, 1);
}

TEST(GuardedPolicy, ThrowsOnShortSample) {
  Harness h;
  core::ThermalSample s;
  s.sensed_celsius = {80, 80};
  EXPECT_THROW(h.guard->update(s), std::invalid_argument);
}

// ------------------------------------------------- sim-level properties

using sim::PolicyKind;
using sim::PolicyParams;
using sim::RunResult;
using sim::SimConfig;
using sim::System;

SimConfig fault_config(const std::string& campaign_text) {
  SimConfig cfg;
  cfg.time_scale = 150.0;
  cfg.thermal_interval_cycles = 2'000;
  cfg.warmup_instructions = 500'000;
  cfg.run_instructions = 600'000;
  if (!campaign_text.empty()) {
    cfg.fault_campaign =
        fault::FaultCampaign::from_string(campaign_text, sim::sensor_names());
  }
  return cfg;
}

RunResult run_crafty(PolicyKind kind, const SimConfig& cfg, bool guarded) {
  PolicyParams params;
  params.guarded = guarded;
  System system(workload::spec2000_profile("crafty"), cfg,
                sim::make_policy(kind, params, cfg));
  return system.run();
}

struct FaultCase {
  const char* name;
  const char* campaign;  ///< targets IntReg, crafty's hottest block
};

constexpr FaultCase kFaultCases[] = {
    {"StuckLow", "IntReg stuck_at 0.005 inf 40\n"},
    {"Dead", "IntReg dead 0.005 inf\n"},
    {"Drift", "IntReg drift 0.002 inf -500\n"},
    {"Stale", "IntReg stale 0.005 inf\n"},
};

class GuardedSafety
    : public ::testing::TestWithParam<std::tuple<PolicyKind, FaultCase>> {};

/// The acceptance property: with the hottest block's sensor failed
/// mid-run, every guarded policy keeps the true temperature inside the
/// paper's emergency envelope for the whole measured window.
TEST_P(GuardedSafety, NoEmergencyViolationUnderSingleSensorFault) {
  const auto [kind, fc] = GetParam();
  const SimConfig cfg = fault_config(fc.campaign);
  const RunResult r = run_crafty(kind, cfg, /*guarded=*/true);
  EXPECT_DOUBLE_EQ(r.violation_fraction, 0.0)
      << "max_true=" << r.max_true_celsius
      << " rejections=" << r.sensor_rejections;
  EXPECT_GT(r.faulted_samples, 0u);
  EXPECT_GT(r.fault_window_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.fault_violation_fraction, 0.0);
}

std::string safety_case_name(
    const ::testing::TestParamInfo<GuardedSafety::ParamType>& info) {
  std::string name = sim::policy_kind_name(std::get<0>(info.param));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_" + std::get<1>(info.param).name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAllFaults, GuardedSafety,
    ::testing::Combine(::testing::Values(PolicyKind::kPiHybrid,
                                         PolicyKind::kHybrid,
                                         PolicyKind::kDvs,
                                         PolicyKind::kFetchGating),
                       ::testing::ValuesIn(kFaultCases)),
    safety_case_name);

TEST(GuardedSim, UnguardedPolicyViolatesUnderStuckLowSensor) {
  // The same campaign against the bare policy: with the hottest block's
  // sensor reading 40 C the controller throttles for the wrong block and
  // the true temperature crosses the emergency threshold.
  const SimConfig cfg = fault_config(kFaultCases[0].campaign);
  const RunResult r = run_crafty(PolicyKind::kHybrid, cfg, /*guarded=*/false);
  EXPECT_GT(r.violation_fraction, 0.0);
  EXPECT_GT(r.max_true_celsius, cfg.thresholds.emergency.value());
}

TEST(GuardedSim, AllSensorsDeadEngagesFailsafeAndStaysSafe) {
  const SimConfig cfg = fault_config("all dead 0.005 inf\n");
  const RunResult r = run_crafty(PolicyKind::kHybrid, cfg, /*guarded=*/true);
  EXPECT_DOUBLE_EQ(r.violation_fraction, 0.0);
  EXPECT_GT(r.failsafe_fraction, 0.2);
  EXPECT_GT(r.quarantine_entries, 0u);
}

TEST(GuardedSim, GuardIsQuietWithoutFaults) {
  const SimConfig cfg = fault_config("");
  const RunResult r = run_crafty(PolicyKind::kHybrid, cfg, /*guarded=*/true);
  EXPECT_EQ(r.faulted_samples, 0u);
  EXPECT_DOUBLE_EQ(r.failsafe_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.violation_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.fault_window_fraction, 0.0);
}

TEST(GuardedSim, FaultRunsReplayDeterministically) {
  const SimConfig cfg = fault_config(
      "seed 42\n"
      "IntReg burst_noise 0.002 inf 4\n"
      "FPMul spike 0.003 inf 25 0.2\n");
  const RunResult a = run_crafty(PolicyKind::kHybrid, cfg, true);
  const RunResult b = run_crafty(PolicyKind::kHybrid, cfg, true);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.faulted_samples, b.faulted_samples);
  EXPECT_EQ(a.sensor_rejections, b.sensor_rejections);
  EXPECT_DOUBLE_EQ(a.violation_fraction, b.violation_fraction);
  EXPECT_DOUBLE_EQ(a.max_true_celsius, b.max_true_celsius);
  EXPECT_DOUBLE_EQ(a.failsafe_fraction, b.failsafe_fraction);
}

}  // namespace
}  // namespace hydra
