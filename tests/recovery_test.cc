// Fault-tolerant engine + crash-safe persistent cache: job supervision
// (containment, typed failures, deadline, retry), the fused-BE numerical
// guard, and chaos recovery of the on-disk store (corruption quarantine,
// warm restart, bit-identical reproduction).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "sim/experiment.h"
#include "sim/persistent_cache.h"
#include "sim/run_cache.h"
#include "sim/system.h"
#include "util/cancel.h"
#include "util/config.h"
#include "util/thread_pool.h"

namespace hydra::sim {
namespace {

namespace fs = std::filesystem;

SimConfig short_config() {
  SimConfig cfg = default_sim_config();
  cfg.run_instructions = 60'000;
  cfg.warmup_instructions = 20'000;
  return cfg;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.max_true_celsius, b.max_true_celsius);
  EXPECT_EQ(a.violation_fraction, b.violation_fraction);
  EXPECT_EQ(a.dvs_transitions, b.dvs_transitions);
  EXPECT_EQ(a.mean_gate_fraction, b.mean_gate_fraction);
  EXPECT_EQ(a.dvs_low_fraction, b.dvs_low_fraction);
  EXPECT_EQ(a.mean_power_watts, b.mean_power_watts);
  EXPECT_EQ(a.hottest_block, b.hottest_block);
  EXPECT_EQ(a.hottest_mean_celsius, b.hottest_mean_celsius);
}

/// Fresh per-test directory under the gtest temp root.
std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir.string();
}

RunResult tiny_result(const std::string& tag) {
  RunResult r;
  r.benchmark = tag;
  r.policy = "test";
  r.wall_seconds = 0.125;
  r.instructions = 1000;
  r.ipc = 2.5;
  return r;
}

// ---------------------------------------------------------------------------
// Job supervision.

// Regression for the latent future-poisoning bug: a throwing job used to
// leave its broken future cached forever, so every later submission of
// the same key rethrew without ever recomputing.
TEST(JobSupervision, ThrowingJobFailsFastAndResubmitRecomputes) {
  util::ThreadPool pool(2);
  RunCache cache;
  auto failed = cache.submit(42, pool, []() -> RunResult {
    throw std::runtime_error("injected job failure");
  });
  EXPECT_THROW(failed.get(), std::runtime_error);

  // The key must not be poisoned: resubmission recomputes and succeeds.
  auto ok = cache.submit(
      42, pool, []() -> RunResult { return tiny_result("recomputed"); });
  EXPECT_EQ(ok.get()->benchmark, "recomputed");

  const RunCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.failures, 1u);
}

TEST(JobSupervision, ThrowingJobDoesNotBlockSiblings) {
  util::ThreadPool pool(2);
  RunCache cache;
  std::vector<RunCache::Future> futures;
  for (std::uint64_t key = 0; key < 8; ++key) {
    futures.push_back(cache.submit(key, pool, [key]() -> RunResult {
      if (key == 3) throw std::runtime_error("one bad job");
      return tiny_result("job-" + std::to_string(key));
    }));
  }
  for (std::uint64_t key = 0; key < 8; ++key) {
    if (key == 3) {
      EXPECT_THROW(futures[key].get(), std::runtime_error);
    } else {
      EXPECT_EQ(futures[key].get()->benchmark,
                "job-" + std::to_string(key));
    }
  }
  // Workers must all still be alive after the contained unwind.
  auto after = cache.submit(
      99, pool, []() -> RunResult { return tiny_result("after"); });
  EXPECT_EQ(after.get()->benchmark, "after");
}

TEST(JobSupervision, DeadlineExpiryIsATypedTimeout) {
  util::ThreadPool pool(1);
  RunCache cache;
  RunCache::JobOptions opts;
  opts.timeout = util::Seconds(0.02);
  auto future = cache.submit(
      7, pool,
      [](const util::CancelToken& token) -> RunResult {
        for (;;) {
          token.throw_if_stopped("spin-forever");
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      },
      opts);
  EXPECT_THROW(future.get(), util::TimeoutError);
  const RunCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.failures, 1u);
}

TEST(JobSupervision, TransientFailuresRetryThenSucceed) {
  util::ThreadPool pool(1);
  RunCache cache;
  RunCache::JobOptions opts;
  opts.max_attempts = 3;
  opts.backoff = util::Seconds(0.001);
  auto attempts = std::make_shared<std::atomic<int>>(0);
  auto future = cache.submit(
      11, pool,
      [attempts](const util::CancelToken&) -> RunResult {
        if (attempts->fetch_add(1) < 2) {
          throw util::TransientError("flaky dependency");
        }
        return tiny_result("third-time-lucky");
      },
      opts);
  EXPECT_EQ(future.get()->benchmark, "third-time-lucky");
  EXPECT_EQ(attempts->load(), 3);
  const RunCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.computes, 3u);
  EXPECT_EQ(stats.failures, 0u);
}

TEST(JobSupervision, TransientFailureExhaustsAttemptBudget) {
  util::ThreadPool pool(1);
  RunCache cache;
  RunCache::JobOptions opts;
  opts.max_attempts = 2;
  opts.backoff = util::Seconds(0.001);
  auto future = cache.submit(
      12, pool,
      [](const util::CancelToken&) -> RunResult {
        throw util::TransientError("always flaky");
      },
      opts);
  EXPECT_THROW(future.get(), util::TransientError);
  const RunCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.failures, 1u);
}

// The retry sleep runs on a pool worker, so the backoff cap must bind
// the caller-supplied initial value too, not just the doublings.
TEST(JobSupervision, InitialBackoffIsClampedToTheCap) {
  util::ThreadPool pool(1);
  RunCache cache;
  RunCache::JobOptions opts;
  opts.max_attempts = 2;
  opts.backoff = util::Seconds(30.0);  // absurd; must be clamped to 0.25s
  const auto start = std::chrono::steady_clock::now();
  auto future = cache.submit(
      13, pool,
      [attempts = std::make_shared<std::atomic<int>>(0)](
          const util::CancelToken&) -> RunResult {
        if (attempts->fetch_add(1) == 0) {
          throw util::TransientError("flaky once");
        }
        return tiny_result("clamped");
      },
      opts);
  EXPECT_EQ(future.get()->benchmark, "clamped");
  const double waited = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  EXPECT_LT(waited, 5.0);  // generous CI margin, far below the 30s ask
}

TEST(JobSupervision, CancelledTokenUnwindsSystemRun) {
  SimConfig cfg = short_config();
  System system(workload::spec2000_profile("gzip"), cfg, nullptr);
  util::CancelToken token;
  token.cancel();
  EXPECT_THROW(system.run(&token), util::CancelledError);
}

TEST(JobSupervision, DeadlineUnwindsSystemRunMidFlight) {
  SimConfig cfg = default_sim_config();
  cfg.run_instructions = 50'000'000;  // far longer than the deadline
  cfg.warmup_instructions = 20'000;
  System system(workload::spec2000_profile("gzip"), cfg, nullptr);
  util::CancelToken token;
  token.set_deadline_after(util::Seconds(0.02));
  EXPECT_THROW(system.run(&token), util::TimeoutError);
}

// ---------------------------------------------------------------------------
// Fused-BE numerical guard.

// A poisoned fused step must be rejected before it touches the state,
// recomputed via the reference LU scheme, and the whole run must come
// out bit-identical to a run that never used the fused operator (the
// trip happens on the very first step, so the faulted run is LU
// end-to-end).
TEST(SolverGuard, FusedFaultFallsBackToLuBitIdentically) {
  SimConfig fused_cfg = short_config();
  fused_cfg.fused_thermal = true;
  SimConfig lu_cfg = fused_cfg;
  lu_cfg.fused_thermal = false;

  const workload::WorkloadProfile profile =
      workload::spec2000_profile("crafty");
  System faulted(profile, fused_cfg, nullptr);
  faulted.inject_solver_fault_for_test();
  const RunResult faulted_result = faulted.run();

  System reference(profile, lu_cfg, nullptr);
  const RunResult reference_result = reference.run();

  EXPECT_EQ(faulted_result.solver_guard_trips, 1u);
  EXPECT_EQ(reference_result.solver_guard_trips, 0u);
  expect_identical(faulted_result, reference_result);
}

TEST(SolverGuard, HealthyFusedRunNeverTrips) {
  SimConfig cfg = short_config();
  cfg.fused_thermal = true;
  System system(workload::spec2000_profile("gzip"), cfg, nullptr);
  EXPECT_EQ(system.run().solver_guard_trips, 0u);
}

TEST(SolverGuard, TripIsCountedInMetricsRegistry) {
  obs::Observability::instance().enable_all();
  SimConfig cfg = short_config();
  cfg.fused_thermal = true;
  System system(workload::spec2000_profile("art"), cfg, nullptr);
  system.inject_solver_fault_for_test();
  const RunResult r = system.run();
  obs::Observability::instance().disable_all();
  ASSERT_EQ(r.solver_guard_trips, 1u);

  const obs::MetricsSnapshot snap = obs::metrics().scrape();
  std::uint64_t counted = 0;
  for (const auto& [name, count] : snap.counters) {
    if (name == "thermal.fused_guard_trips") counted = count;
  }
  EXPECT_GE(counted, 1u);
}

// ---------------------------------------------------------------------------
// Persistent store: serialization, warm restart, chaos recovery.

TEST(PersistentCache, SerializationRoundTripsBitExactly) {
  RunResult r = tiny_result("roundtrip");
  r.wall_seconds = 0.1234567890123456789;
  r.max_true_celsius = 84.099999999999994;
  r.hottest_block = "IntReg";
  r.solver_guard_trips = 3;
  const std::string payload = serialize_run_result(r);
  RunResult back;
  ASSERT_TRUE(deserialize_run_result(payload, back));
  expect_identical(r, back);
  EXPECT_EQ(back.solver_guard_trips, 3u);

  // Structural damage must be detected, not misread.
  RunResult scratch;
  EXPECT_FALSE(deserialize_run_result(
      std::string_view(payload).substr(0, payload.size() / 2), scratch));
  EXPECT_FALSE(deserialize_run_result(payload + "x", scratch));
  EXPECT_FALSE(deserialize_run_result("garbage", scratch));
}

TEST(PersistentCache, SaveLoadAndMissAccounting) {
  PersistentRunCache::Options opts;
  opts.dir = fresh_dir("pc_save_load");
  PersistentRunCache store(opts);
  EXPECT_EQ(store.load(1), nullptr);
  store.save(1, tiny_result("stored"));
  const auto loaded = store.load(1);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->benchmark, "stored");
  const PersistentRunCache::Stats stats = store.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.stores, 1u);
}

TEST(PersistentCache, ReopenRecoversCommittedEntries) {
  const std::string dir = fresh_dir("pc_reopen");
  {
    PersistentRunCache::Options opts;
    opts.dir = dir;
    PersistentRunCache store(opts);
    store.save(5, tiny_result("five"));
    store.save(6, tiny_result("six"));
  }
  PersistentRunCache::Options opts;
  opts.dir = dir;
  PersistentRunCache store(opts);
  EXPECT_EQ(store.stats().recovered, 2u);
  ASSERT_NE(store.load(5), nullptr);
  EXPECT_EQ(store.load(6)->benchmark, "six");
}

TEST(PersistentCache, LruEvictionBoundsDiskUsage) {
  PersistentRunCache::Options opts;
  opts.dir = fresh_dir("pc_lru");
  opts.max_bytes = 512;  // roughly two entries
  PersistentRunCache store(opts);
  for (std::uint64_t key = 1; key <= 6; ++key) {
    store.save(key, tiny_result("entry-" + std::to_string(key)));
  }
  EXPECT_LE(store.total_bytes(), opts.max_bytes);
  EXPECT_GT(store.stats().evictions, 0u);
  EXPECT_LT(store.entries(), 6u);
  // The most recent save must have survived.
  EXPECT_NE(store.load(6), nullptr);
}

// The journal's one recovery job: a publish intent whose entry never
// survived (crash between journal append and rename, or a vanished
// file) is counted as a lost publish on the next open.
TEST(PersistentCache, LostPublishIsDetectedOnRecovery) {
  const std::string dir = fresh_dir("pc_lost_publish");
  {
    PersistentRunCache::Options opts;
    opts.dir = dir;
    PersistentRunCache store(opts);
    store.save(1, tiny_result("kept"));
    store.save(2, tiny_result("doomed"));
  }
  // Crash simulation: key 2's publish is on the journal but its entry
  // never made it (here: vanishes after the fact).
  std::size_t removed = 0;
  for (const auto& de : fs::recursive_directory_iterator(dir)) {
    if (de.path().filename() == "0000000000000002.run") {
      fs::remove(de.path());
      ++removed;
    }
  }
  ASSERT_EQ(removed, 1u);

  PersistentRunCache::Options opts;
  opts.dir = dir;
  PersistentRunCache store(opts);
  EXPECT_EQ(store.stats().lost_publishes, 1u);
  EXPECT_EQ(store.stats().recovered, 1u);
  EXPECT_NE(store.load(1), nullptr);
}

// Deliberate removals (LRU eviction) are journaled as such and must not
// masquerade as crash-lost publishes at the next open.
TEST(PersistentCache, EvictionIsNotALostPublish) {
  const std::string dir = fresh_dir("pc_evict_journal");
  {
    PersistentRunCache::Options opts;
    opts.dir = dir;
    opts.max_bytes = 512;  // roughly two entries
    PersistentRunCache store(opts);
    for (std::uint64_t key = 1; key <= 6; ++key) {
      store.save(key, tiny_result("entry-" + std::to_string(key)));
    }
    ASSERT_GT(store.stats().evictions, 0u);
  }
  PersistentRunCache::Options opts;
  opts.dir = dir;
  PersistentRunCache store(opts);
  EXPECT_EQ(store.stats().lost_publishes, 0u);
  EXPECT_GT(store.stats().recovered, 0u);
}

TEST(PersistentCache, WarmRestartServesEverythingFromDisk) {
  const std::string dir = fresh_dir("pc_warm_restart");
  const SimConfig cfg = short_config();
  std::vector<PointSpec> points;
  points.push_back({workload::spec2000_profile("crafty"),
                    PolicyKind::kHybrid, {}, cfg});
  points.push_back({workload::spec2000_profile("gzip"),
                    PolicyKind::kHybrid, {}, cfg});

  std::vector<ExperimentResult> cold;
  {
    ExperimentRunner runner(cfg);
    PersistentRunCache::Options opts;
    opts.dir = dir;
    runner.set_store(std::make_shared<PersistentRunCache>(opts));
    cold = runner.run_points(points);
    EXPECT_GT(runner.cache_stats().disk_stores, 0u);
  }

  // "Process restart": a fresh runner + fresh store handle on the same
  // directory must serve every point from disk and change nothing.
  ExperimentRunner runner(cfg);
  PersistentRunCache::Options opts;
  opts.dir = dir;
  runner.set_store(std::make_shared<PersistentRunCache>(opts));
  const std::vector<ExperimentResult> warm = runner.run_points(points);

  const RunCache::Stats stats = runner.cache_stats();
  EXPECT_EQ(stats.computes, 0u);
  EXPECT_EQ(stats.disk_hits, stats.misses);
  EXPECT_GT(stats.disk_hits, 0u);
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < warm.size(); ++i) {
    expect_identical(warm[i].dtm, cold[i].dtm);
    expect_identical(warm[i].baseline, cold[i].baseline);
    EXPECT_EQ(warm[i].slowdown, cold[i].slowdown);
  }
}

// The chaos test of the acceptance criteria: SIGKILL-equivalent damage
// to the store — corrupted checksums, truncated entries, stray temp
// files, a torn manifest tail — must be quarantined or cleaned on the
// next open, recomputed where needed, and must never change results.
TEST(PersistentCache, ChaosCorruptionIsQuarantinedAndRecomputed) {
  const std::string dir = fresh_dir("pc_chaos");
  const SimConfig cfg = short_config();
  std::vector<PointSpec> points;
  for (const char* name : {"crafty", "gzip", "art"}) {
    points.push_back({workload::spec2000_profile(name),
                      PolicyKind::kHybrid, {}, cfg});
  }

  std::vector<ExperimentResult> cold;
  {
    ExperimentRunner runner(cfg);
    PersistentRunCache::Options opts;
    opts.dir = dir;
    runner.set_store(std::make_shared<PersistentRunCache>(opts));
    cold = runner.run_points(points);
  }

  // Wreck the store the way a crash mid-write (or a failing disk)
  // would. Deterministic damage, no RNG: sort and pick.
  std::vector<fs::path> entries;
  for (const auto& de : fs::recursive_directory_iterator(dir)) {
    if (de.path().extension() == ".run") entries.push_back(de.path());
  }
  std::sort(entries.begin(), entries.end());
  ASSERT_GE(entries.size(), 3u);
  {
    // Checksum corruption: flip a payload byte.
    std::fstream f(entries[0],
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);
    f.put('\x5a');
  }
  {
    // SIGKILL mid-write: truncated entry.
    std::error_code ec;
    fs::resize_file(entries[1], fs::file_size(entries[1]) / 2, ec);
    ASSERT_FALSE(ec);
  }
  {
    // Abandoned temp file and garbage that was never a cache entry.
    std::ofstream(entries[0].parent_path() / "0123.tmp99") << "partial";
    std::ofstream(entries[0].parent_path() / "not-a-key.run")
        << "not a cache entry";
    // Torn manifest tail (killed mid-append).
    std::ofstream(fs::path(dir) / "manifest.log",
                  std::ios::app | std::ios::binary)
        << "P 0123";
  }

  std::size_t recovered = 0;
  std::size_t quarantined = 0;
  std::vector<ExperimentResult> restarted;
  RunCache::Stats stats;
  {
    ExperimentRunner runner(cfg);
    PersistentRunCache::Options opts;
    opts.dir = dir;
    auto store = std::make_shared<PersistentRunCache>(opts);
    const PersistentRunCache::Stats disk = store->stats();
    recovered = disk.recovered;
    quarantined = disk.corrupt;
    EXPECT_GE(disk.tmp_removed, 1u);
    runner.set_store(store);
    restarted = runner.run_points(points);
    stats = runner.cache_stats();
  }

  // Warm where possible, recompute only the damage, never abort.
  EXPECT_GT(recovered, 0u);
  EXPECT_GE(quarantined, 3u);  // flipped + truncated + garbage name
  EXPECT_GT(stats.disk_hits, 0u);
  EXPECT_EQ(stats.computes, 2u);  // exactly the two damaged run entries
  ASSERT_EQ(restarted.size(), cold.size());
  for (std::size_t i = 0; i < restarted.size(); ++i) {
    expect_identical(restarted[i].dtm, cold[i].dtm);
    expect_identical(restarted[i].baseline, cold[i].baseline);
  }

  // Quarantined evidence is preserved, not deleted.
  std::size_t evidence = 0;
  for (const auto& de :
       fs::directory_iterator(fs::path(dir) / "quarantine")) {
    (void)de;
    ++evidence;
  }
  EXPECT_GE(evidence, 3u);
}

// ---------------------------------------------------------------------------
// Tool-facing config hardening (satellite of the same failure model).

TEST(ConfigRejectUnknown, UnknownKeyDiagnosticCarriesFileLineAndSuggestion) {
  util::Config cfg = util::Config::from_args({"benchmrk=crafty"});
  try {
    cfg.reject_unknown({"benchmark", "policy"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("recovery_test.cc"), std::string::npos) << what;
    EXPECT_NE(what.find("benchmrk"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean 'benchmark'"), std::string::npos)
        << what;
  }
}

TEST(ConfigRejectUnknown, KnownKeysPass) {
  util::Config cfg = util::Config::from_args({"benchmark=crafty"});
  EXPECT_NO_THROW(cfg.reject_unknown({"benchmark", "policy"}));
}

}  // namespace
}  // namespace hydra::sim
