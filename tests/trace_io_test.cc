// Tests for binary trace recording/replay and the JSON writer.
#include <gtest/gtest.h>

#include <sstream>

#include "util/json.h"
#include "workload/spec_profiles.h"
#include "workload/trace_io.h"

namespace hydra {
namespace {

// ---------------------------------------------------------------- traces
TEST(TraceIo, RoundTripPreservesEveryField) {
  auto profile = workload::spec2000_profile("gzip");
  workload::SyntheticTrace original(profile);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  workload::write_trace(buf, original, 20'000);

  workload::SyntheticTrace reference(profile);  // same seed: same stream
  workload::RecordedTrace replay(buf);
  ASSERT_EQ(replay.size(), 20'000u);
  for (int i = 0; i < 20'000; ++i) {
    const arch::MicroOp a = reference.next();
    const arch::MicroOp b = replay.next();
    ASSERT_EQ(static_cast<int>(a.cls), static_cast<int>(b.cls)) << i;
    ASSERT_EQ(a.num_srcs, b.num_srcs);
    ASSERT_EQ(a.src_dist[0], b.src_dist[0]);
    ASSERT_EQ(a.src_dist[1], b.src_dist[1]);
    ASSERT_EQ(a.pc, b.pc);
    ASSERT_EQ(a.mem_addr, b.mem_addr);
    ASSERT_EQ(a.branch_taken, b.branch_taken);
  }
}

TEST(TraceIo, ReplayLoops) {
  auto profile = workload::spec2000_profile("mesa");
  workload::SyntheticTrace original(profile);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  workload::write_trace(buf, original, 100);
  workload::RecordedTrace replay(buf);
  std::vector<std::uint64_t> first_pass;
  for (int i = 0; i < 100; ++i) first_pass.push_back(replay.next().pc);
  EXPECT_EQ(replay.loops(), 1u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(replay.next().pc, first_pass[i]);
  }
  EXPECT_EQ(replay.loops(), 2u);
}

TEST(TraceIo, RejectsBadMagicAndTruncation) {
  std::stringstream bad(std::ios::in | std::ios::out | std::ios::binary);
  bad << "NOPE";
  EXPECT_THROW(workload::RecordedTrace{bad}, std::invalid_argument);

  auto profile = workload::spec2000_profile("mesa");
  workload::SyntheticTrace original(profile);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  workload::write_trace(buf, original, 100);
  const std::string full = buf.str();
  std::stringstream truncated(
      full.substr(0, full.size() - 10),
      std::ios::in | std::ios::out | std::ios::binary);
  EXPECT_THROW(workload::RecordedTrace{truncated}, std::invalid_argument);
}

TEST(TraceIo, TruncationErrorNamesRecordAndOffset) {
  auto profile = workload::spec2000_profile("mesa");
  workload::SyntheticTrace original(profile);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  workload::write_trace(buf, original, 100);
  const std::string full = buf.str();
  std::stringstream truncated(
      full.substr(0, full.size() - 10),
      std::ios::in | std::ios::out | std::ios::binary);
  try {
    workload::RecordedTrace trace{truncated};
    FAIL() << "expected truncation error";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    // The last record is the short one; the message locates it.
    EXPECT_NE(msg.find("record 99 of 100"), std::string::npos) << msg;
    EXPECT_NE(msg.find("byte offset"), std::string::npos) << msg;
  }
}

TEST(TraceIo, CorruptRecordErrorNamesRecordAndFields) {
  auto profile = workload::spec2000_profile("mesa");
  workload::SyntheticTrace original(profile);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  workload::write_trace(buf, original, 10);
  std::string full = buf.str();
  // Stamp an impossible op class into record 3 (records are 24 bytes
  // after the 16-byte header; cls is the record's first byte).
  full[16 + 3 * 24] = static_cast<char>(0xFF);
  std::stringstream corrupt(full,
                            std::ios::in | std::ios::out | std::ios::binary);
  try {
    workload::RecordedTrace trace{corrupt};
    FAIL() << "expected corrupt-record error";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("corrupt trace record 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cls=255"), std::string::npos) << msg;
  }
}

TEST(TraceIo, RecordedTraceDrivesSyntheticStatistics) {
  // The mix of a replayed trace matches the profile's (the trace is the
  // stream, just frozen).
  auto profile = workload::spec2000_profile("art");
  workload::SyntheticTrace original(profile);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  workload::write_trace(buf, original, 100'000);
  workload::RecordedTrace replay(buf);
  long fp_ops = 0;
  for (int i = 0; i < 100'000; ++i) {
    const arch::MicroOp op = replay.next();
    if (arch::is_fp(op.cls)) ++fp_ops;
  }
  EXPECT_NEAR(double(fp_ops) / 100'000.0, profile.frac_fp_add + profile.frac_fp_mul,
              0.05);
}

// ------------------------------------------------------------------ json
TEST(Json, ScalarsAndNesting) {
  std::ostringstream out;
  util::JsonWriter w(out, 0);
  w.begin_object();
  w.key("name").value("crafty");
  w.key("slowdown").value(1.5);
  w.key("count").value(42);
  w.key("safe").value(true);
  w.key("tags").begin_array();
  w.value("a");
  w.value("b");
  w.end_array();
  w.end_object();
  const std::string s = out.str();
  EXPECT_NE(s.find("\"name\": \"crafty\""), std::string::npos);
  EXPECT_NE(s.find("\"slowdown\": 1.5"), std::string::npos);
  EXPECT_NE(s.find("\"count\": 42"), std::string::npos);
  EXPECT_NE(s.find("\"safe\": true"), std::string::npos);
  EXPECT_NE(s.find("\"a\""), std::string::npos);
}

TEST(Json, EscapesSpecials) {
  EXPECT_EQ(util::JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(util::JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(util::JsonWriter::escape("a\nb"), "a\\nb");
  EXPECT_EQ(util::JsonWriter::escape(std::string("a\x01") + "b"),
            "a\\u0001b");
}

TEST(Json, CommasBetweenSiblingsOnly) {
  std::ostringstream out;
  util::JsonWriter w(out, 0);
  w.begin_array();
  w.value(1.0);
  w.value(2.0);
  w.value(3.0);
  w.end_array();
  std::string s = out.str();
  // Exactly two commas for three siblings.
  EXPECT_EQ(std::count(s.begin(), s.end(), ','), 2);
}

TEST(Json, NonFiniteBecomesNull) {
  std::ostringstream out;
  util::JsonWriter w(out, 0);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_NE(out.str().find("null"), std::string::npos);
}

}  // namespace
}  // namespace hydra
