// Tests for the core's fidelity extensions: tournament predictor, MSHR
// limits, store-to-load forwarding, issue gating — and the policies that
// ride on them (local toggling, DEETM-style fallback).
#include <gtest/gtest.h>

#include "arch/core.h"
#include "arch/tournament_predictor.h"
#include "core/fallback_policy.h"
#include "core/local_toggle_policy.h"
#include "power/voltage_freq.h"
#include "util/units.h"
#include "workload/spec_profiles.h"

namespace hydra {
namespace {

using arch::Core;
using arch::CoreConfig;
using arch::MicroOp;
using arch::OpClass;
using arch::TournamentPredictor;

// ------------------------------------------------------- tournament bpred
TEST(Tournament, LearnsStronglyBiasedBranch) {
  TournamentPredictor bp;
  int correct = 0;
  for (int i = 0; i < 500; ++i) {
    if (bp.predict(0x4000)) ++correct;
    bp.update(0x4000, true);
  }
  EXPECT_GT(correct, 480);
}

TEST(Tournament, LocalComponentLearnsShortPeriodicPattern) {
  // Period-4 pattern T T T N: local history resolves it exactly; a
  // bimodal counter would sit at ~75 %.
  TournamentPredictor bp;
  int correct = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const bool taken = (i % 4) != 3;
    if (bp.predict(0x8000) == taken) ++correct;
    bp.update(0x8000, taken);
  }
  EXPECT_GT(correct, n * 0.9);
}

TEST(Tournament, ChooserPrefersGlobalForCorrelatedBranches) {
  // Branch B's outcome equals branch A's previous outcome: only global
  // history can see that. A short global history keeps the number of
  // chooser contexts small enough to train within the test.
  arch::TournamentConfig cfg;
  cfg.global_bits = 4;
  TournamentPredictor bp(cfg);
  std::uint64_t lcg = 7;
  bool last_a = false;
  int correct_b = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const bool a_taken = (lcg >> 62) & 1;
    bp.predict(0x1000);
    bp.update(0x1000, a_taken);
    const bool b_taken = last_a;  // perfectly correlated with previous A
    if (bp.predict(0x2000) == b_taken) ++correct_b;
    bp.update(0x2000, b_taken);
    last_a = a_taken;
  }
  EXPECT_GT(correct_b, n * 0.8);
}

TEST(Tournament, RejectsBadGeometry) {
  arch::TournamentConfig cfg;
  cfg.local_history_bits = 0;
  EXPECT_THROW(TournamentPredictor{cfg}, std::invalid_argument);
  cfg = {};
  cfg.global_bits = 30;
  EXPECT_THROW(TournamentPredictor{cfg}, std::invalid_argument);
}

TEST(Tournament, CoreRunsWithTournamentPredictor) {
  auto profile = workload::spec2000_profile("gzip");
  workload::SyntheticTrace trace(profile);
  CoreConfig cfg;
  cfg.predictor = CoreConfig::Predictor::kTournament;
  Core core(cfg, trace);
  for (int i = 0; i < 200'000; ++i) core.cycle();  // warm caches/tables
  const auto c0 = core.cycles();
  const auto i0 = core.committed();
  for (int i = 0; i < 200'000; ++i) core.cycle();
  const double ipc = static_cast<double>(core.committed() - i0) /
                     static_cast<double>(core.cycles() - c0);
  EXPECT_GT(ipc, 0.5);
  EXPECT_LT(core.stats().mispredict_rate(), 0.25);
}

// ------------------------------------------------------------------ MSHR
/// Serial-independent loads that always miss: MSHRs bound the number of
/// misses in flight and hence throughput.
class MissStormTrace final : public arch::TraceSource {
 public:
  MicroOp next() override {
    MicroOp op;
    op.cls = OpClass::kLoad;
    op.num_srcs = 1;
    op.src_dist[0] = 2000;  // independent
    op.pc = 0x1000 + (count_++ % 512) * 4;
    addr_ += 8192;  // fresh page & line every access
    op.mem_addr = addr_;
    return op;
  }

 private:
  std::uint64_t addr_ = 0x40000000;
  std::uint64_t count_ = 0;
};

TEST(Mshr, LimitingOutstandingMissesReducesThroughput) {
  auto run = [](int mshrs) {
    MissStormTrace trace;
    CoreConfig cfg;
    cfg.mshr_entries = mshrs;
    Core core(cfg, trace);
    for (int i = 0; i < 60'000; ++i) core.cycle();
    return core.stats().ipc();
  };
  const double unlimited = run(0);
  const double four = run(4);
  const double one = run(1);
  EXPECT_GT(unlimited, four * 1.3);
  EXPECT_GT(four, one * 1.5);
}

TEST(Mshr, NoEffectOnCacheResidentWorkload) {
  auto run = [](int mshrs) {
    auto profile = workload::spec2000_profile("eon");  // small footprints
    profile.warm_access_fraction = 0.0;
    profile.stream_access_fraction = 0.0;
    workload::SyntheticTrace trace(profile);
    CoreConfig cfg;
    cfg.mshr_entries = mshrs;
    Core core(cfg, trace);
    for (int i = 0; i < 100'000; ++i) core.cycle();
    const auto c0 = core.cycles();
    const auto i0 = core.committed();
    for (int i = 0; i < 100'000; ++i) core.cycle();
    return static_cast<double>(core.committed() - i0) /
           static_cast<double>(core.cycles() - c0);
  };
  EXPECT_NEAR(run(0), run(4), 0.06);
}

// ------------------------------------------------------- store forwarding
/// Store then immediately load the same address, repeatedly.
class StoreLoadPairTrace final : public arch::TraceSource {
 public:
  MicroOp next() override {
    MicroOp op;
    const bool is_store = (count_ % 2) == 0;
    op.cls = is_store ? OpClass::kStore : OpClass::kLoad;
    op.num_srcs = is_store ? 2 : 1;
    op.src_dist[0] = 2000;
    op.src_dist[1] = 2000;
    op.pc = 0x1000 + (count_ % 512) * 4;
    // The load reads what the previous store wrote.
    op.mem_addr = 0x40000000 + ((count_ / 2) % 64) * 8;
    ++count_;
    return op;
  }

 private:
  std::uint64_t count_ = 0;
};

TEST(StoreForwarding, LoadsForwardFromInFlightStores) {
  auto run = [](bool forwarding) {
    StoreLoadPairTrace trace;
    CoreConfig cfg;
    cfg.store_forwarding = forwarding;
    Core core(cfg, trace);
    for (int i = 0; i < 50'000; ++i) core.cycle();
    return core.stats().ipc();
  };
  // Forwarded loads bypass the 3-cycle D-cache: throughput improves (or
  // at minimum does not collapse from dependence stalls).
  const double with = run(true);
  const double without = run(false);
  EXPECT_GT(with, 0.5);
  EXPECT_GT(with, without * 0.9);
}

TEST(StoreForwarding, DeterministicAndSafeOnRealProfiles) {
  auto profile = workload::spec2000_profile("vortex");
  auto run = [&profile] {
    workload::SyntheticTrace trace(profile);
    CoreConfig cfg;
    cfg.store_forwarding = true;
    Core core(cfg, trace);
    for (int i = 0; i < 250'000; ++i) core.cycle();  // warm past cold misses
    const auto i0 = core.committed();
    for (int i = 0; i < 150'000; ++i) core.cycle();
    return core.committed() - i0;
  };
  const auto a = run();
  EXPECT_GT(a, 100'000u);  // warmed IPC well above cold-start levels
  EXPECT_EQ(a, run());
}

// ----------------------------------------------------------- issue gating
TEST(IssueGating, ThrottlesThroughput) {
  auto run = [](double g) {
    auto profile = workload::spec2000_profile("crafty");
    workload::SyntheticTrace trace(profile);
    Core core(CoreConfig{}, trace);
    for (int i = 0; i < 100'000; ++i) core.cycle();
    core.set_issue_gate_fraction(g);
    const auto c0 = core.cycles();
    const auto i0 = core.committed();
    for (int i = 0; i < 150'000; ++i) core.cycle();
    return static_cast<double>(core.committed() - i0) /
           static_cast<double>(core.cycles() - c0);
  };
  const double free = run(0.0);
  const double half = run(0.5);
  EXPECT_LT(half, free);
  EXPECT_GT(half, free * 0.45);  // ILP partially hides issue bubbles too
  EXPECT_THROW(
      [] {
        auto profile = workload::spec2000_profile("crafty");
        workload::SyntheticTrace trace(profile);
        Core core(CoreConfig{}, trace);
        core.set_issue_gate_fraction(1.5);
      }(),
      std::invalid_argument);
}

// ------------------------------------------------------------- policies
power::DvsLadder ladder() {
  return power::DvsLadder(power::VoltageFrequencyCurve{}, 2, 0.85);
}

core::ThermalSample sample_at(double max_temp, double t) {
  core::ThermalSample s;
  s.sensed_celsius.assign(18, max_temp - 2.0);
  s.sensed_celsius[0] = max_temp;
  s.max_sensed = util::Celsius(max_temp);
  s.time = util::Seconds(t);
  return s;
}

TEST(LocalTogglePolicy, RampsIssueGatingUnderStress) {
  core::LocalTogglePolicy policy(core::DtmThresholds{}, {});
  double t = 0.0;
  core::DtmCommand cmd;
  for (int i = 0; i < 10; ++i) cmd = policy.update(sample_at(84.0, t += 1e-4));
  EXPECT_GT(cmd.issue_gate_fraction, 0.0);
  EXPECT_DOUBLE_EQ(cmd.fetch_gate_fraction, 0.0);
  EXPECT_EQ(cmd.dvs_level, 0u);
}

TEST(LocalTogglePolicy, DecaysWhenCool) {
  core::LocalToggleConfig cfg;
  cfg.ki = util::PerCelsiusSecond(60000.0);
  core::LocalTogglePolicy policy(core::DtmThresholds{}, cfg);
  double t = 0.0;
  for (int i = 0; i < 20; ++i) policy.update(sample_at(84.0, t += 1e-4));
  const double high = policy.current_gate_fraction();
  for (int i = 0; i < 20; ++i) policy.update(sample_at(78.0, t += 1e-4));
  EXPECT_LT(policy.current_gate_fraction(), high);
}

TEST(FallbackPolicy, RidesFetchGatingToExhaustionFirst) {
  core::FallbackConfig cfg;
  cfg.ki = util::PerCelsiusSecond(60000.0);
  core::FallbackPolicy policy(ladder(), core::DtmThresholds{}, cfg);
  double t = 0.0;
  core::DtmCommand cmd;
  // Hot but clear of the emergency margin: gating saturates, no DVS.
  for (int i = 0; i < 40; ++i) cmd = policy.update(sample_at(83.5, t += 1e-4));
  EXPECT_NEAR(cmd.fetch_gate_fraction, cfg.max_gate_fraction, 1e-9);
  EXPECT_EQ(cmd.dvs_level, 0u);
  EXPECT_FALSE(policy.dvs_engaged());
}

TEST(FallbackPolicy, AddsDvsOnlyInExtremis) {
  core::FallbackConfig cfg;
  cfg.ki = util::PerCelsiusSecond(60000.0);
  core::FallbackPolicy policy(ladder(), core::DtmThresholds{}, cfg);
  double t = 0.0;
  core::DtmCommand cmd;
  for (int i = 0; i < 40; ++i) cmd = policy.update(sample_at(84.5, t += 1e-4));
  EXPECT_TRUE(policy.dvs_engaged());
  EXPECT_EQ(cmd.dvs_level, 1u);
  // Gating stays saturated alongside DVS (the hierarchy is additive).
  EXPECT_NEAR(cmd.fetch_gate_fraction, cfg.max_gate_fraction, 1e-9);
}

TEST(FallbackPolicy, ReleasesDvsAfterCoolingFiltered) {
  core::FallbackConfig cfg;
  cfg.ki = util::PerCelsiusSecond(60000.0);
  cfg.release_filter_samples = 2;
  core::FallbackPolicy policy(ladder(), core::DtmThresholds{}, cfg);
  double t = 0.0;
  for (int i = 0; i < 40; ++i) policy.update(sample_at(84.5, t += 1e-4));
  ASSERT_TRUE(policy.dvs_engaged());
  policy.update(sample_at(78.0, t += 1e-4));
  EXPECT_TRUE(policy.dvs_engaged());
  policy.update(sample_at(78.0, t += 1e-4));
  EXPECT_FALSE(policy.dvs_engaged());
}

}  // namespace
}  // namespace hydra
