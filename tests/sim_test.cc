// Integration tests for src/sim: the co-simulation System and the
// experiment harness. Short runs (a few hundred k instructions) keep the
// suite fast while still exercising every coupling.
#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/system.h"

namespace hydra::sim {
namespace {

/// Shrunken configuration for fast tests: higher time acceleration so a
/// short run still spans several silicon time constants, with the sensor
/// period and thermal interval rescaled consistently.
SimConfig fast_config() {
  SimConfig cfg;
  cfg.time_scale = 150.0;
  cfg.thermal_interval_cycles = 2'000;
  cfg.warmup_instructions = 500'000;
  cfg.run_instructions = 600'000;
  return cfg;
}

workload::WorkloadProfile hot_profile() {
  return workload::spec2000_profile("crafty");
}

// ------------------------------------------------------------- baseline
TEST(System, BaselineRunsAtNominalFrequency) {
  System system(hot_profile(), fast_config(), nullptr);
  const RunResult r = system.run();
  EXPECT_EQ(r.policy, "baseline");
  EXPECT_GE(r.instructions, fast_config().run_instructions);
  EXPECT_GT(r.ipc, 0.5);
  // Without DTM the clock never changes: wall time == cycles / f_nom.
  EXPECT_NEAR(r.wall_seconds,
              static_cast<double>(r.cycles) / fast_config().f_nominal.value(),
              r.wall_seconds * 1e-9);
  EXPECT_DOUBLE_EQ(r.mean_gate_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.dvs_low_fraction, 0.0);
}

TEST(System, BaselineHotBenchmarkExceedsTrigger) {
  System system(hot_profile(), fast_config(), nullptr);
  const RunResult r = system.run();
  EXPECT_EQ(r.hottest_block, "IntReg");
  EXPECT_GT(r.above_trigger_fraction, 0.5);
  EXPECT_GT(r.max_true_celsius, 84.0);
  EXPECT_GT(r.mean_power_watts, 20.0);
  EXPECT_LT(r.mean_power_watts, 60.0);
}

TEST(System, BaselineDeterministic) {
  auto run_once = [] {
    System system(hot_profile(), fast_config(), nullptr);
    return system.run();
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.max_true_celsius, b.max_true_celsius);
  EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
}

TEST(System, FractionsAreWellFormed) {
  System system(hot_profile(), fast_config(),
                make_policy(PolicyKind::kDvs, {}, fast_config()));
  const RunResult r = system.run();
  for (double f : {r.violation_fraction, r.above_trigger_fraction,
                   r.mean_gate_fraction, r.dvs_low_fraction,
                   r.clock_gated_fraction}) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0 + 1e-9);
  }
}

// ----------------------------------------------------------- DTM effects
TEST(System, DvsEliminatesViolationsAndSlowsDown) {
  const SimConfig cfg = fast_config();
  System baseline(hot_profile(), cfg, nullptr);
  const RunResult base = baseline.run();
  ASSERT_GT(base.violation_fraction, 0.0);  // crafty violates unmanaged

  System managed(hot_profile(), cfg, make_policy(PolicyKind::kDvs, {}, cfg));
  const RunResult r = managed.run();
  EXPECT_DOUBLE_EQ(r.violation_fraction, 0.0);
  EXPECT_GT(r.dvs_low_fraction, 0.0);
  EXPECT_GT(r.wall_seconds, base.wall_seconds);
}

TEST(System, FetchGatingPolicyGates) {
  const SimConfig cfg = fast_config();
  System system(hot_profile(), cfg,
                make_policy(PolicyKind::kFetchGating, {}, cfg));
  const RunResult r = system.run();
  EXPECT_GT(r.mean_gate_fraction, 0.05);
  EXPECT_DOUBLE_EQ(r.dvs_low_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.violation_fraction, 0.0);
}

TEST(System, ClockGatingPolicyStopsClock) {
  const SimConfig cfg = fast_config();
  System system(hot_profile(), cfg,
                make_policy(PolicyKind::kClockGating, {}, cfg));
  const RunResult r = system.run();
  EXPECT_GT(r.clock_gated_fraction, 0.02);
  EXPECT_DOUBLE_EQ(r.violation_fraction, 0.0);
}

TEST(System, HybridUsesBothMechanisms) {
  const SimConfig cfg = fast_config();
  System system(hot_profile(), cfg,
                make_policy(PolicyKind::kHybrid, {}, cfg));
  const RunResult r = system.run();
  EXPECT_GT(r.mean_gate_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.violation_fraction, 0.0);
}

TEST(System, DvsStallCountsTransitions) {
  const SimConfig cfg = fast_config();
  System system(hot_profile(), cfg, make_policy(PolicyKind::kDvs, {}, cfg));
  const RunResult r = system.run();
  EXPECT_GT(r.dvs_transitions, 0u);
}

TEST(System, TraceCallbackFires) {
  const SimConfig cfg = fast_config();
  System system(hot_profile(), cfg, make_policy(PolicyKind::kDvs, {}, cfg));
  int calls = 0;
  double last_t = -1.0;
  system.set_trace_callback([&](const StepTrace& st) {
    ++calls;
    EXPECT_GT(st.time_seconds, last_t);
    last_t = st.time_seconds;
    EXPECT_GT(st.power_watts, 0.0);
    EXPECT_GT(st.frequency.value(), 0.0);
  });
  system.run();
  EXPECT_GT(calls, 10);
}

TEST(System, RejectsBadTimeScale) {
  SimConfig cfg = fast_config();
  cfg.time_scale = 0.0;
  EXPECT_THROW(System(hot_profile(), cfg, nullptr), std::invalid_argument);
}

// ------------------------------------------------------------ experiment
TEST(Experiment, MakeLadderFollowsConfig) {
  SimConfig cfg;
  cfg.dvs_steps = 5;
  cfg.v_low_fraction = 0.8;
  const power::DvsLadder ladder = make_ladder(cfg);
  EXPECT_EQ(ladder.size(), 5u);
  EXPECT_NEAR(ladder.point(4).voltage.value(), 0.8 * 1.3, 1e-12);
}

TEST(Experiment, PolicyKindNames) {
  EXPECT_EQ(policy_kind_name(PolicyKind::kNone), "baseline");
  EXPECT_EQ(policy_kind_name(PolicyKind::kDvs), "DVS");
  EXPECT_EQ(policy_kind_name(PolicyKind::kPiHybrid), "PI-Hyb");
  EXPECT_EQ(policy_kind_name(PolicyKind::kHybrid), "Hyb");
}

TEST(Experiment, MakePolicyMatchesKinds) {
  const SimConfig cfg = fast_config();
  EXPECT_EQ(make_policy(PolicyKind::kNone, {}, cfg), nullptr);
  EXPECT_EQ(make_policy(PolicyKind::kDvs, {}, cfg)->name(), "DVS");
  EXPECT_EQ(make_policy(PolicyKind::kFetchGating, {}, cfg)->name(), "FG");
  EXPECT_EQ(make_policy(PolicyKind::kFixedFetchGating, {}, cfg)->name(),
            "FG-fixed");
  EXPECT_EQ(make_policy(PolicyKind::kClockGating, {}, cfg)->name(),
            "ClockGate");
  EXPECT_EQ(make_policy(PolicyKind::kPiHybrid, {}, cfg)->name(), "PI-Hyb");
  EXPECT_EQ(make_policy(PolicyKind::kHybrid, {}, cfg)->name(), "Hyb");
  EXPECT_EQ(make_policy(PolicyKind::kProactiveHybrid, {}, cfg)->name(),
            "Pro-Hyb");
}

TEST(System, ProactiveHybridIsSafe) {
  const SimConfig cfg = fast_config();
  System system(hot_profile(), cfg,
                make_policy(PolicyKind::kProactiveHybrid, {}, cfg));
  const RunResult r = system.run();
  EXPECT_DOUBLE_EQ(r.violation_fraction, 0.0);
}

TEST(Experiment, BaselineIsCached) {
  ExperimentRunner runner(fast_config());
  const RunResult& a = runner.baseline(hot_profile());
  const RunResult& b = runner.baseline(hot_profile());
  EXPECT_EQ(&a, &b);  // same cached object
}

TEST(Experiment, SlowdownIsAtLeastOneForThrottlingPolicies) {
  ExperimentRunner runner(fast_config());
  const ExperimentResult r = runner.run(hot_profile(), PolicyKind::kDvs, {});
  EXPECT_GE(r.slowdown, 1.0);
  EXPECT_EQ(r.dtm.policy, "DVS");
  EXPECT_EQ(r.baseline.policy, "baseline");
}

TEST(Experiment, SuiteAggregatesNineBenchmarks) {
  SimConfig cfg = fast_config();
  cfg.run_instructions = 150'000;  // keep this one quick
  cfg.warmup_instructions = 60'000;
  ExperimentRunner runner(cfg);
  const SuiteResult suite = runner.run_suite(PolicyKind::kHybrid, {});
  EXPECT_EQ(suite.per_benchmark.size(), 9u);
  EXPECT_GE(suite.mean_slowdown, 1.0);
  EXPECT_GE(suite.ci99_half_width, 0.0);
  EXPECT_EQ(suite.slowdowns().size(), 9u);
}

TEST(Experiment, DefaultSimConfigHonoursEnvironment) {
  setenv("HYDRA_RUN_INSTRUCTIONS", "123456", 1);
  const SimConfig cfg = default_sim_config();
  EXPECT_EQ(cfg.run_instructions, 123456u);
  unsetenv("HYDRA_RUN_INSTRUCTIONS");
  const SimConfig cfg2 = default_sim_config();
  EXPECT_EQ(cfg2.run_instructions, SimConfig{}.run_instructions);
}

// --------------------------------------------------- property: safety
/// Every policy must eliminate thermal violations on every benchmark —
/// the paper simulates all techniques "at levels that eliminate thermal
/// violations". Parameterised over (policy, benchmark).
class SafetySweep
    : public ::testing::TestWithParam<std::tuple<PolicyKind, const char*>> {};

TEST_P(SafetySweep, NoViolations) {
  const auto [kind, bench] = GetParam();
  SimConfig cfg = fast_config();
  ExperimentRunner runner(cfg);
  const ExperimentResult r =
      runner.run(workload::spec2000_profile(bench), kind, {});
  EXPECT_DOUBLE_EQ(r.dtm.violation_fraction, 0.0) << bench;
  EXPECT_LE(r.dtm.max_true_celsius,
            cfg.thresholds.emergency.value() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyByBenchmark, SafetySweep,
    ::testing::Combine(::testing::Values(PolicyKind::kDvs,
                                         PolicyKind::kFetchGating,
                                         PolicyKind::kPiHybrid,
                                         PolicyKind::kHybrid,
                                         PolicyKind::kClockGating),
                       ::testing::Values("mesa", "crafty", "gzip", "art")),
    [](const auto& suite_info) {
      std::string name =
          policy_kind_name(std::get<0>(suite_info.param)) +
          std::string("_") + std::get<1>(suite_info.param);
      std::erase_if(name, [](char c) { return !std::isalnum(c) && c != '_'; });
      return name;
    });

}  // namespace
}  // namespace hydra::sim
