// Many-core die: tiled floorplan validity, intra-run parallelism
// determinism (bit-identical at any worker width), the thermal-aware
// migration property, the power-budget arbiter, and per-core vs global
// DVS domains. Short, hot configurations: thresholds are lowered so the
// policies actually engage within a few hundred thousand instructions.
#include <gtest/gtest.h>

#include <cstdlib>

#include "floorplan/ev7.h"
#include "floorplan/multicore.h"
#include "sim/experiment.h"
#include "sim/multicore.h"
#include "sim/persistent_cache.h"
#include "sim/system.h"

namespace hydra::sim {
namespace {

/// Fast many-core configuration. The tiled die runs cooler than the
/// single-core one at equal power density (smaller heat sources spread
/// laterally better), so the DTM thresholds come down with it.
SimConfig mc_config(std::size_t cores) {
  SimConfig cfg;
  cfg.time_scale = 150.0;
  cfg.thermal_interval_cycles = 2'000;
  cfg.warmup_instructions = 300'000;
  cfg.run_instructions = 400'000;
  cfg.thresholds.trigger = util::Celsius(70.0);
  cfg.thresholds.emergency = util::Celsius(74.0);
  cfg.multicore.cores = cores;
  cfg.multicore.threads = 1;
  return cfg;
}

workload::WorkloadProfile hot_profile() {
  return workload::spec2000_profile("crafty");
}

PolicyFactory hyb_factory(const SimConfig& cfg) {
  return [cfg] {
    return make_policy(PolicyKind::kHybrid, PolicyParams{}, cfg);
  };
}

// ---------------------------------------------------------- floorplan
TEST(MulticoreFloorplan, TilesDieExactlyAtEveryCount) {
  const floorplan::Floorplan unit = floorplan::ev7_floorplan();
  for (const std::size_t cores : {1u, 2u, 4u, 6u, 8u}) {
    const floorplan::Floorplan fp = floorplan::multicore_floorplan(cores);
    EXPECT_EQ(fp.size(), cores * floorplan::kNumBlocks) << cores;
    EXPECT_DOUBLE_EQ(fp.die_width(), unit.die_width()) << cores;
    EXPECT_DOUBLE_EQ(fp.die_height(), unit.die_height()) << cores;
    EXPECT_TRUE(fp.overlap_free()) << cores;
    EXPECT_TRUE(fp.covers_die(1e-6)) << cores;
  }
}

TEST(MulticoreFloorplan, GridIsSquarestFactorPair) {
  EXPECT_EQ(floorplan::tile_grid(1).rows, 1u);
  EXPECT_EQ(floorplan::tile_grid(1).cols, 1u);
  EXPECT_EQ(floorplan::tile_grid(4).rows, 2u);
  EXPECT_EQ(floorplan::tile_grid(4).cols, 2u);
  EXPECT_EQ(floorplan::tile_grid(8).rows, 2u);
  EXPECT_EQ(floorplan::tile_grid(8).cols, 4u);
  EXPECT_EQ(floorplan::tile_grid(7).rows, 1u);  // prime -> strip
  EXPECT_EQ(floorplan::tile_grid(7).cols, 7u);
}

TEST(MulticoreFloorplan, BlockNamesCarryTilePrefix) {
  const floorplan::Floorplan fp = floorplan::multicore_floorplan(4);
  EXPECT_EQ(fp.block(floorplan::tile_block_index(0, 0)).name.substr(0, 3),
            "c0.");
  EXPECT_EQ(fp.block(floorplan::tile_block_index(3, 0)).name.substr(0, 3),
            "c3.");
}

// ------------------------------------------------------- determinism
TEST(Multicore, BitIdenticalAcrossWorkerWidths) {
  // Constructs MulticoreSystem directly — going through the memoizing
  // runner would make this pass vacuously via cache hits (threads is
  // deliberately not part of the run key).
  const auto run_at_width = [](std::size_t threads) {
    SimConfig cfg = mc_config(4);
    cfg.multicore.threads = threads;
    cfg.multicore.workload_threads = 3;
    cfg.multicore.migration = true;
    cfg.multicore.arbiter.die_budget = util::Watts(30.0);
    MulticoreSystem system(hot_profile(), cfg, hyb_factory(cfg), "Hyb");
    return system.run();
  };
  const MulticoreResult a = run_at_width(1);
  const MulticoreResult b = run_at_width(4);
  const MulticoreResult c = run_at_width(8);
  EXPECT_EQ(serialize_run_result(a.aggregate),
            serialize_run_result(b.aggregate));
  EXPECT_EQ(serialize_run_result(a.aggregate),
            serialize_run_result(c.aggregate));
  ASSERT_EQ(a.per_core.size(), b.per_core.size());
  for (std::size_t t = 0; t < a.per_core.size(); ++t) {
    EXPECT_EQ(a.per_core[t].cycles, b.per_core[t].cycles) << t;
    EXPECT_EQ(a.per_core[t].instructions, c.per_core[t].instructions) << t;
    EXPECT_DOUBLE_EQ(a.per_core[t].max_true_celsius,
                     b.per_core[t].max_true_celsius)
        << t;
  }
  ASSERT_EQ(a.migrations.size(), b.migrations.size());
  for (std::size_t i = 0; i < a.migrations.size(); ++i) {
    EXPECT_EQ(a.migrations[i].from, b.migrations[i].from);
    EXPECT_EQ(a.migrations[i].to, b.migrations[i].to);
    EXPECT_DOUBLE_EQ(a.migrations[i].time_seconds,
                     c.migrations[i].time_seconds);
  }
}

TEST(Multicore, AggregateMatchesSingleCoreShape) {
  SimConfig cfg = mc_config(2);
  MulticoreSystem system(hot_profile(), cfg, nullptr);
  const MulticoreResult r = system.run();
  EXPECT_EQ(r.aggregate.policy, "baseline");
  EXPECT_EQ(r.aggregate.cores, 2u);
  EXPECT_GE(r.aggregate.instructions, cfg.run_instructions);
  EXPECT_GT(r.aggregate.ipc, 0.5);
  EXPECT_GT(r.aggregate.mean_power_watts, 5.0);
  EXPECT_GT(r.aggregate.max_true_celsius, 40.0);
  EXPECT_GT(r.aggregate.core_temp_spread_celsius, 0.0);
  ASSERT_EQ(r.per_core.size(), 2u);
  EXPECT_GT(r.per_core[0].instructions, 0u);
  EXPECT_GT(r.per_core[1].instructions, 0u);
  // Tile-local clocks overshoot each barrier by less than one cycle, so
  // the per-tile wall integral differs from the master wall by O(1e-5).
  EXPECT_NEAR(r.per_core[0].occupied_fraction, 1.0, 1e-4);
}

TEST(Multicore, IdleTilesCommitNothing) {
  SimConfig cfg = mc_config(4);
  cfg.multicore.workload_threads = 2;
  MulticoreSystem system(hot_profile(), cfg, nullptr);
  const MulticoreResult r = system.run();
  ASSERT_EQ(r.per_core.size(), 4u);
  EXPECT_GT(r.per_core[0].instructions, 0u);
  EXPECT_GT(r.per_core[1].instructions, 0u);
  EXPECT_EQ(r.per_core[2].instructions, 0u);
  EXPECT_EQ(r.per_core[3].instructions, 0u);
  EXPECT_DOUBLE_EQ(r.per_core[2].occupied_fraction, 0.0);
  // Idle silicon is cooler than working silicon.
  EXPECT_LT(r.per_core[2].max_true_celsius, r.per_core[0].max_true_celsius);
}

TEST(Multicore, InvalidConfigsThrow) {
  SimConfig cfg = mc_config(2);
  cfg.multicore.cores = 0;
  EXPECT_THROW(MulticoreSystem(hot_profile(), cfg, nullptr),
               std::invalid_argument);
  cfg = mc_config(2);
  cfg.multicore.workload_threads = 3;
  EXPECT_THROW(MulticoreSystem(hot_profile(), cfg, nullptr),
               std::invalid_argument);
}

// --------------------------------------------------------- migration

/// A 4-core die with 2 threads peaks near 68 C, so the migration tests
/// lower the trigger below that to make the policy actually fire.
SimConfig migration_config() {
  SimConfig cfg = mc_config(4);
  cfg.multicore.workload_threads = 2;
  cfg.thresholds.trigger = util::Celsius(66.0);
  return cfg;
}

TEST(Multicore, MigrationMovesHotThreadToIdleTile) {
  SimConfig cfg = migration_config();
  cfg.multicore.migration = true;
  MulticoreSystem system(hot_profile(), cfg, nullptr);
  const MulticoreResult r = system.run();
  EXPECT_GT(r.aggregate.thread_migrations, 0u);
  EXPECT_EQ(r.aggregate.thread_migrations, r.migrations.size());
  std::uint64_t in = 0, out = 0;
  for (const CoreRunStats& s : r.per_core) {
    in += s.migrations_in;
    out += s.migrations_out;
  }
  EXPECT_EQ(in, r.migrations.size());
  EXPECT_EQ(out, r.migrations.size());
}

/// The migration property from ISSUE: an applied migration must never
/// make the die hotter than it was — post-migration Tmax is bounded by
/// pre-migration Tmax plus a small margin (one interval of flush energy
/// plus normal workload drift), with or without the budget arbiter.
TEST(Multicore, MigrationPropertyTmaxBounded) {
  constexpr double kBoundCelsius = 1.0;
  for (const double budget : {0.0, 30.0}) {
    SimConfig cfg = migration_config();
    cfg.multicore.migration = true;
    cfg.multicore.arbiter.die_budget = util::Watts(budget);
    MulticoreSystem system(hot_profile(), cfg, nullptr);
    const MulticoreResult r = system.run();
    EXPECT_GT(r.migrations.size(), 0u) << "budget=" << budget;
    for (const MigrationEvent& ev : r.migrations) {
      EXPECT_LE(ev.tmax_after_celsius,
                ev.tmax_before_celsius + kBoundCelsius)
          << "budget=" << budget << " t=" << ev.time_seconds;
      EXPECT_NE(ev.from, ev.to);
    }
  }
}

TEST(Multicore, MigrationCostSlowsButCoolsTheDie) {
  const SimConfig cfg = migration_config();
  const auto run_with_migration = [&cfg](bool on) {
    SimConfig c = cfg;
    c.multicore.migration = on;
    MulticoreSystem system(hot_profile(), c, nullptr);
    return system.run();
  };
  const MulticoreResult without = run_with_migration(false);
  const MulticoreResult with = run_with_migration(true);
  // Migration spreads the heat: the hottest block over the run drops.
  EXPECT_LT(with.aggregate.max_true_celsius,
            without.aggregate.max_true_celsius);
  // And it is not free: stall cycles stretch the measured window.
  EXPECT_GE(with.aggregate.wall_seconds, without.aggregate.wall_seconds);
}

// ----------------------------------------------------- budget arbiter
TEST(Multicore, BudgetArbiterCapsMeanPower) {
  SimConfig cfg = mc_config(4);
  const auto run_with_budget = [&cfg](double watts) {
    SimConfig c = cfg;
    c.multicore.arbiter.die_budget = util::Watts(watts);
    MulticoreSystem system(hot_profile(), c, nullptr);
    return system.run().aggregate;
  };
  const RunResult uncapped = run_with_budget(0.0);
  ASSERT_GT(uncapped.mean_power_watts, 10.0);
  // A cap well below the natural draw must engage and bring mean power
  // down toward it (the integral throttle converges, it does not clamp
  // instantaneously, so allow slack above the budget).
  const double cap = uncapped.mean_power_watts * 0.7;
  const RunResult capped = run_with_budget(cap);
  EXPECT_GT(capped.budget_throttled_fraction, 0.5);
  EXPECT_LT(capped.mean_power_watts, uncapped.mean_power_watts);
  EXPECT_LT(capped.mean_power_watts, cap * 1.15);
  EXPECT_GE(capped.wall_seconds, uncapped.wall_seconds);
  EXPECT_DOUBLE_EQ(uncapped.budget_throttled_fraction, 0.0);
}

TEST(Multicore, ArbiterComposesWithLocalPolicy) {
  // With both a local Hyb policy and a die budget, the effective gate is
  // the max of the two — the run must stay at least as throttled as the
  // policy-only run.
  SimConfig cfg = mc_config(4);
  const auto run = [&cfg](double watts) {
    SimConfig c = cfg;
    c.multicore.arbiter.die_budget = util::Watts(watts);
    MulticoreSystem system(hot_profile(), c, hyb_factory(c), "Hyb");
    return system.run().aggregate;
  };
  const RunResult policy_only = run(0.0);
  const RunResult both = run(14.0);
  EXPECT_GE(both.mean_gate_fraction, policy_only.mean_gate_fraction);
  EXPECT_LE(both.mean_power_watts, policy_only.mean_power_watts);
}

// ------------------------------------------------- per-core vs global
TEST(Multicore, GlobalDvsThrottlesWholeDie) {
  // Two threads on four tiles: with per-core DVS only the hot occupied
  // tiles slow down; one global domain drags every tile (including the
  // idle, cool ones) to the max requested level, so die-wide time at a
  // low level can only grow.
  SimConfig cfg = mc_config(4);
  cfg.multicore.workload_threads = 2;
  cfg.thresholds.trigger = util::Celsius(64.0);
  // A pure DVS policy isolates the domain question (Hyb would spend the
  // whole run inside its fetch-gating band at these temperatures).
  const auto run_with_domains = [&cfg](bool per_core) {
    SimConfig c = cfg;
    c.multicore.per_core_dvs = per_core;
    MulticoreSystem system(
        hot_profile(), c,
        [c] { return make_policy(PolicyKind::kDvs, PolicyParams{}, c); },
        "DVS");
    return system.run().aggregate;
  };
  const RunResult per_core = run_with_domains(true);
  const RunResult global = run_with_domains(false);
  EXPECT_GT(per_core.dvs_transitions, 0u);
  EXPECT_GE(global.dvs_low_fraction, per_core.dvs_low_fraction);
  // Keyed as distinct experiment points.
  SimConfig a = cfg, b = cfg;
  a.multicore.per_core_dvs = true;
  b.multicore.per_core_dvs = false;
  EXPECT_NE(config_hash(a), config_hash(b));
}

// ------------------------------------------------------ engine keying
TEST(Multicore, RunKeySeparatesCoreCountButNotWorkerWidth) {
  const SimConfig base = mc_config(2);
  SimConfig four = base;
  four.multicore.cores = 4;
  SimConfig wide = base;
  wide.multicore.threads = 8;
  const workload::WorkloadProfile p = hot_profile();
  const std::uint64_t k_base =
      run_point_key(p, PolicyKind::kHybrid, PolicyParams{}, base);
  EXPECT_NE(k_base,
            run_point_key(p, PolicyKind::kHybrid, PolicyParams{}, four));
  EXPECT_EQ(k_base,
            run_point_key(p, PolicyKind::kHybrid, PolicyParams{}, wide));
  EXPECT_NE(model_key(base), model_key(four));
  EXPECT_EQ(model_key(base), model_key(wide));
}

TEST(Multicore, RunResultRoundTripsThroughPersistentFormat) {
  SimConfig cfg = mc_config(2);
  cfg.multicore.migration = true;
  cfg.multicore.workload_threads = 1;
  MulticoreSystem system(hot_profile(), cfg, nullptr);
  const RunResult r = system.run().aggregate;
  RunResult decoded;
  ASSERT_TRUE(deserialize_run_result(serialize_run_result(r), decoded));
  EXPECT_EQ(decoded.cores, r.cores);
  EXPECT_EQ(decoded.thread_migrations, r.thread_migrations);
  EXPECT_DOUBLE_EQ(decoded.core_temp_spread_celsius,
                   r.core_temp_spread_celsius);
  EXPECT_DOUBLE_EQ(decoded.budget_throttled_fraction,
                   r.budget_throttled_fraction);
}

TEST(Multicore, ExperimentRunnerRoutesMulticorePoints) {
  // End-to-end through the memoizing engine: an 8-core Hyb point with
  // migration and a die budget against its same-die baseline.
  SimConfig cfg = mc_config(8);
  cfg.warmup_instructions = 200'000;
  cfg.run_instructions = 300'000;
  cfg.multicore.workload_threads = 6;
  cfg.multicore.migration = true;
  cfg.multicore.arbiter.die_budget = util::Watts(40.0);
  ExperimentRunner runner(cfg);
  const ExperimentResult r =
      runner.run(hot_profile(), PolicyKind::kHybrid, PolicyParams{}, cfg);
  EXPECT_EQ(r.dtm.cores, 8u);
  EXPECT_EQ(r.baseline.cores, 8u);
  EXPECT_EQ(r.dtm.policy, "Hyb");
  EXPECT_EQ(r.baseline.policy, "baseline");
  // The baseline shares the die shape but runs unmanaged.
  EXPECT_EQ(r.baseline.thread_migrations, 0u);
  EXPECT_DOUBLE_EQ(r.baseline.budget_throttled_fraction, 0.0);
  EXPECT_GE(r.slowdown, 1.0 - 1e-9);
  // Resubmission is a cache hit, not a recompute.
  const ExperimentResult again =
      runner.run(hot_profile(), PolicyKind::kHybrid, PolicyParams{}, cfg);
  EXPECT_EQ(serialize_run_result(again.dtm), serialize_run_result(r.dtm));
  EXPECT_GT(runner.cache_stats().hits, 0u);
}

}  // namespace
}  // namespace hydra::sim
