// Unit tests for src/core DTM policies, driven with synthetic sensor
// samples (no simulator in the loop).
#include <gtest/gtest.h>

#include "core/clock_gating_policy.h"
#include "core/dvs_policy.h"
#include "core/fetch_gating_policy.h"
#include "core/hybrid_policy.h"
#include "core/proactive_policy.h"
#include "power/voltage_freq.h"
#include "util/units.h"

namespace hydra::core {
namespace {

constexpr double kTrigger = 81.8;
constexpr std::size_t kBlocks = 18;

power::DvsLadder binary_ladder() {
  return power::DvsLadder(power::VoltageFrequencyCurve{}, 2, 0.85);
}

ThermalSample at(double max_temp, double t_seconds) {
  ThermalSample s;
  s.sensed_celsius.assign(kBlocks, max_temp - 2.0);
  s.sensed_celsius[13] = max_temp;  // IntReg-ish slot
  s.max_sensed = util::Celsius(max_temp);
  s.time = util::Seconds(t_seconds);
  return s;
}

// --------------------------------------------------------------- binary DVS
TEST(DvsPolicy, BinaryDropsAtTrigger) {
  DvsPolicy policy(binary_ladder(), DtmThresholds{}, DvsPolicyConfig{});
  EXPECT_EQ(policy.update(at(kTrigger - 1.0, 0.0)).dvs_level, 0u);
  EXPECT_EQ(policy.update(at(kTrigger, 1e-4)).dvs_level, 1u);
  EXPECT_EQ(policy.update(at(kTrigger + 3.0, 2e-4)).dvs_level, 1u);
}

TEST(DvsPolicy, LoweringIsImmediateRaisingIsFiltered) {
  DvsPolicyConfig cfg;
  cfg.raise_filter_samples = 3;
  DvsPolicy policy(binary_ladder(), DtmThresholds{}, cfg);
  double t = 0.0;
  EXPECT_EQ(policy.update(at(kTrigger + 1.0, t += 1e-4)).dvs_level, 1u);
  // Now cool: needs 3 consecutive cool samples before raising.
  EXPECT_EQ(policy.update(at(kTrigger - 2.0, t += 1e-4)).dvs_level, 1u);
  EXPECT_EQ(policy.update(at(kTrigger - 2.0, t += 1e-4)).dvs_level, 1u);
  EXPECT_EQ(policy.update(at(kTrigger - 2.0, t += 1e-4)).dvs_level, 0u);
}

TEST(DvsPolicy, NoiseSpikeDoesNotRaiseVoltage) {
  DvsPolicyConfig cfg;
  cfg.raise_filter_samples = 3;
  DvsPolicy policy(binary_ladder(), DtmThresholds{}, cfg);
  double t = 0.0;
  policy.update(at(kTrigger + 1.0, t += 1e-4));
  policy.update(at(kTrigger - 2.0, t += 1e-4));
  policy.update(at(kTrigger - 2.0, t += 1e-4));
  // One hot sample resets the filter.
  EXPECT_EQ(policy.update(at(kTrigger + 0.5, t += 1e-4)).dvs_level, 1u);
  EXPECT_EQ(policy.update(at(kTrigger - 2.0, t += 1e-4)).dvs_level, 1u);
}

TEST(DvsPolicy, HysteresisBlocksRaiseNearTrigger) {
  DvsPolicyConfig cfg;
  cfg.raise_filter_samples = 1;
  cfg.hysteresis = util::CelsiusDelta(0.3);
  DvsPolicy policy(binary_ladder(), DtmThresholds{}, cfg);
  double t = 0.0;
  policy.update(at(kTrigger + 1.0, t += 1e-4));
  // Just below trigger but inside the hysteresis band: stay low.
  EXPECT_EQ(policy.update(at(kTrigger - 0.1, t += 1e-4)).dvs_level, 1u);
  EXPECT_EQ(policy.update(at(kTrigger - 0.5, t += 1e-4)).dvs_level, 0u);
}

TEST(DvsPolicy, NeverCommandsFetchGatingOrClockGating) {
  DvsPolicy policy(binary_ladder(), DtmThresholds{}, DvsPolicyConfig{});
  const DtmCommand cmd = policy.update(at(kTrigger + 2.0, 0.0));
  EXPECT_DOUBLE_EQ(cmd.fetch_gate_fraction, 0.0);
  EXPECT_FALSE(cmd.clock_gate);
}

TEST(DvsPolicy, ResetReturnsToNominal) {
  DvsPolicy policy(binary_ladder(), DtmThresholds{}, DvsPolicyConfig{});
  policy.update(at(kTrigger + 2.0, 0.0));
  EXPECT_EQ(policy.current_level(), 1u);
  policy.reset();
  EXPECT_EQ(policy.current_level(), 0u);
}

// ------------------------------------------------------------ stepped DVS
TEST(DvsPolicy, SteppedUsesIntermediateLevels) {
  const power::DvsLadder ladder(power::VoltageFrequencyCurve{}, 5, 0.85);
  DvsPolicyConfig cfg;
  cfg.mode = DvsPolicyConfig::Mode::kStepped;
  DvsPolicy policy(ladder, DtmThresholds{}, cfg);
  // Small sustained error: controller should choose a level between
  // nominal and the floor.
  double t = 0.0;
  std::size_t level = 0;
  for (int i = 0; i < 4; ++i) {
    level = policy.update(at(kTrigger + 0.3, t += 1e-4)).dvs_level;
  }
  EXPECT_GT(level, 0u);
  EXPECT_LE(level, ladder.lowest_level());
}

TEST(DvsPolicy, SteppedSaturatesUnderSevereStress) {
  const power::DvsLadder ladder(power::VoltageFrequencyCurve{}, 5, 0.85);
  DvsPolicyConfig cfg;
  cfg.mode = DvsPolicyConfig::Mode::kStepped;
  DvsPolicy policy(ladder, DtmThresholds{}, cfg);
  double t = 0.0;
  std::size_t level = 0;
  for (int i = 0; i < 50; ++i) {
    level = policy.update(at(kTrigger + 5.0, t += 1e-4)).dvs_level;
  }
  EXPECT_EQ(level, ladder.lowest_level());
}

// ------------------------------------------------------------ fetch gating
TEST(FetchGatingPolicy, IntegralRampsUpUnderStress) {
  FetchGatingPolicy policy(DtmThresholds{}, FetchGatingConfig{});
  double t = 0.0;
  double prev = 0.0;
  for (int i = 0; i < 5; ++i) {
    const double g =
        policy.update(at(kTrigger + 2.0, t += 1e-4)).fetch_gate_fraction;
    EXPECT_GE(g, prev);
    prev = g;
  }
  EXPECT_GT(prev, 0.0);
}

TEST(FetchGatingPolicy, IntegralDecaysWhenCool) {
  FetchGatingConfig cfg;
  cfg.ki = util::PerCelsiusSecond(60000.0);
  FetchGatingPolicy policy(DtmThresholds{}, cfg);
  double t = 0.0;
  for (int i = 0; i < 20; ++i) policy.update(at(kTrigger + 2.0, t += 1e-4));
  const double high = policy.current_gate_fraction();
  for (int i = 0; i < 20; ++i) policy.update(at(kTrigger - 2.0, t += 1e-4));
  EXPECT_LT(policy.current_gate_fraction(), high);
}

TEST(FetchGatingPolicy, SaturatesAtCap) {
  FetchGatingConfig cfg;
  cfg.ki = util::PerCelsiusSecond(1e6);
  cfg.max_gate_fraction = 0.75;
  FetchGatingPolicy policy(DtmThresholds{}, cfg);
  double t = 0.0;
  for (int i = 0; i < 50; ++i) policy.update(at(kTrigger + 5.0, t += 1e-4));
  EXPECT_DOUBLE_EQ(policy.current_gate_fraction(), 0.75);
}

TEST(FetchGatingPolicy, FixedModeIsComparator) {
  FetchGatingConfig cfg;
  cfg.mode = FetchGatingConfig::Mode::kFixed;
  cfg.fixed_gate_fraction = 0.4;
  FetchGatingPolicy policy(DtmThresholds{}, cfg);
  EXPECT_DOUBLE_EQ(
      policy.update(at(kTrigger - 0.5, 0.0)).fetch_gate_fraction, 0.0);
  EXPECT_DOUBLE_EQ(
      policy.update(at(kTrigger + 0.5, 1e-4)).fetch_gate_fraction, 0.4);
  EXPECT_DOUBLE_EQ(
      policy.update(at(kTrigger - 0.5, 2e-4)).fetch_gate_fraction, 0.0);
}

TEST(FetchGatingPolicy, NeverCommandsDvs) {
  FetchGatingPolicy policy(DtmThresholds{}, FetchGatingConfig{});
  const DtmCommand cmd = policy.update(at(kTrigger + 5.0, 0.0));
  EXPECT_EQ(cmd.dvs_level, 0u);
  EXPECT_FALSE(cmd.clock_gate);
}

// ------------------------------------------------------------ clock gating
TEST(ClockGatingPolicy, EngagesAtTriggerWithHysteresis) {
  ClockGatingPolicy policy(DtmThresholds{}, ClockGatingConfig{});
  EXPECT_FALSE(policy.update(at(kTrigger - 1.0, 0.0)).clock_gate);
  EXPECT_TRUE(policy.update(at(kTrigger + 0.1, 1e-4)).clock_gate);
  // Inside the hysteresis band: stays engaged.
  EXPECT_TRUE(policy.update(at(kTrigger - 0.1, 2e-4)).clock_gate);
  EXPECT_FALSE(policy.update(at(kTrigger - 1.0, 3e-4)).clock_gate);
}

// ----------------------------------------------------------------- PI-Hyb
TEST(PiHybridPolicy, UsesFetchGatingForMildStress) {
  PiHybridPolicy policy(binary_ladder(), DtmThresholds{}, HybridConfig{});
  double t = 0.0;
  DtmCommand cmd;
  for (int i = 0; i < 3; ++i) {
    cmd = policy.update(at(kTrigger + 0.3, t += 1e-4));
  }
  EXPECT_GT(cmd.fetch_gate_fraction, 0.0);
  EXPECT_LE(cmd.fetch_gate_fraction, 1.0 / 3.0 + 1e-12);
  EXPECT_EQ(cmd.dvs_level, 0u);
  EXPECT_FALSE(policy.dvs_engaged());
}

TEST(PiHybridPolicy, CrossesOverToDvsUnderSevereStress) {
  HybridConfig cfg;
  cfg.ki = util::PerCelsiusSecond(60000.0);
  PiHybridPolicy policy(binary_ladder(), DtmThresholds{}, cfg);
  double t = 0.0;
  DtmCommand cmd;
  for (int i = 0; i < 40 && !policy.dvs_engaged(); ++i) {
    cmd = policy.update(at(kTrigger + 4.0, t += 1e-4));
  }
  EXPECT_TRUE(policy.dvs_engaged());
  EXPECT_EQ(cmd.dvs_level, 1u);
  EXPECT_DOUBLE_EQ(cmd.fetch_gate_fraction, 0.0);
}

TEST(PiHybridPolicy, ReturnsToFetchGatingAfterCooling) {
  HybridConfig cfg;
  cfg.ki = util::PerCelsiusSecond(60000.0);
  cfg.release_filter_samples = 2;
  PiHybridPolicy policy(binary_ladder(), DtmThresholds{}, cfg);
  double t = 0.0;
  for (int i = 0; i < 40; ++i) policy.update(at(kTrigger + 4.0, t += 1e-4));
  ASSERT_TRUE(policy.dvs_engaged());
  policy.update(at(kTrigger - 2.0, t += 1e-4));
  const DtmCommand cmd = policy.update(at(kTrigger - 2.0, t += 1e-4));
  EXPECT_FALSE(policy.dvs_engaged());
  EXPECT_EQ(cmd.dvs_level, 0u);
}

TEST(PiHybridPolicy, GateNeverExceedsCrossover) {
  HybridConfig cfg;
  cfg.ki = util::PerCelsiusSecond(60000.0);
  cfg.crossover_gate_fraction = 0.25;
  cfg.crossover_margin = 1e9;  // never cross over: pure capped FG
  PiHybridPolicy policy(binary_ladder(), DtmThresholds{}, cfg);
  double t = 0.0;
  for (int i = 0; i < 50; ++i) {
    const DtmCommand cmd = policy.update(at(kTrigger + 5.0, t += 1e-4));
    EXPECT_LE(cmd.fetch_gate_fraction, 0.25 + 1e-12);
  }
}

// -------------------------------------------------------------------- Hyb
TEST(HybridPolicy, ThreeLevelEscalation) {
  HybridConfig cfg;
  cfg.dvs_threshold_offset = util::CelsiusDelta(1.1);
  cfg.escalate_filter_samples = 1;
  HybridPolicy policy(binary_ladder(), DtmThresholds{}, cfg);
  double t = 0.0;
  // Below trigger: off.
  DtmCommand cmd = policy.update(at(kTrigger - 0.5, t += 1e-4));
  EXPECT_EQ(policy.escalation_level(), 0);
  EXPECT_DOUBLE_EQ(cmd.fetch_gate_fraction, 0.0);
  // In the FG band.
  cmd = policy.update(at(kTrigger + 0.5, t += 1e-4));
  EXPECT_EQ(policy.escalation_level(), 1);
  EXPECT_NEAR(cmd.fetch_gate_fraction, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(cmd.dvs_level, 0u);
  // Above the second threshold: DVS.
  cmd = policy.update(at(kTrigger + 2.0, t += 1e-4));
  EXPECT_EQ(policy.escalation_level(), 2);
  EXPECT_EQ(cmd.dvs_level, 1u);
  EXPECT_DOUBLE_EQ(cmd.fetch_gate_fraction, 0.0);
}

TEST(HybridPolicy, EscalationToDvsIsDebounced) {
  HybridConfig cfg;
  cfg.dvs_threshold_offset = util::CelsiusDelta(1.1);
  cfg.escalate_filter_samples = 2;
  HybridPolicy policy(binary_ladder(), DtmThresholds{}, cfg);
  double t = 0.0;
  policy.update(at(kTrigger + 2.0, t += 1e-4));
  EXPECT_EQ(policy.escalation_level(), 1);  // held at FG while pending
  policy.update(at(kTrigger + 2.0, t += 1e-4));
  EXPECT_EQ(policy.escalation_level(), 2);
}

TEST(HybridPolicy, NoiseSpikeDoesNotEngageDvs) {
  HybridConfig cfg;
  cfg.escalate_filter_samples = 2;
  HybridPolicy policy(binary_ladder(), DtmThresholds{}, cfg);
  double t = 0.0;
  policy.update(at(kTrigger + 2.0, t += 1e-4));  // spike
  policy.update(at(kTrigger + 0.2, t += 1e-4));  // back in band
  EXPECT_EQ(policy.escalation_level(), 1);
  policy.update(at(kTrigger + 2.0, t += 1e-4));  // another isolated spike
  EXPECT_EQ(policy.escalation_level(), 1);
}

TEST(HybridPolicy, FetchGatingReleasesFreely) {
  HybridConfig cfg;
  cfg.escalate_filter_samples = 1;
  HybridPolicy policy(binary_ladder(), DtmThresholds{}, cfg);
  double t = 0.0;
  policy.update(at(kTrigger + 0.3, t += 1e-4));
  EXPECT_EQ(policy.escalation_level(), 1);
  // Fetch gating has no switching cost: one cool sample releases it.
  policy.update(at(kTrigger - 0.5, t += 1e-4));
  EXPECT_EQ(policy.escalation_level(), 0);
}

TEST(HybridPolicy, DvsReleaseIsFilteredAndStepsToFg) {
  HybridConfig cfg;
  cfg.dvs_threshold_offset = util::CelsiusDelta(1.1);
  cfg.escalate_filter_samples = 1;
  cfg.release_filter_samples = 2;
  cfg.hysteresis = util::CelsiusDelta(0.3);
  HybridPolicy policy(binary_ladder(), DtmThresholds{}, cfg);
  double t = 0.0;
  policy.update(at(kTrigger + 2.0, t += 1e-4));
  ASSERT_EQ(policy.escalation_level(), 2);
  // Cool below t2 - hysteresis (but above trigger): two samples to step
  // down to the FG band — never straight to unthrottled.
  policy.update(at(kTrigger + 0.4, t += 1e-4));
  EXPECT_EQ(policy.escalation_level(), 2);
  policy.update(at(kTrigger + 0.4, t += 1e-4));
  EXPECT_EQ(policy.escalation_level(), 1);
}

TEST(HybridPolicy, ResetClearsEverything) {
  HybridConfig cfg;
  cfg.escalate_filter_samples = 1;
  HybridPolicy policy(binary_ladder(), DtmThresholds{}, cfg);
  policy.update(at(kTrigger + 5.0, 1e-4));
  EXPECT_EQ(policy.escalation_level(), 2);
  policy.reset();
  EXPECT_EQ(policy.escalation_level(), 0);
}

// ---------------------------------------------------------------- Pro-Hyb
TEST(ProactiveHybridPolicy, ActsOnPredictedTemperature) {
  ProactiveConfig cfg;
  cfg.hybrid.escalate_filter_samples = 1;
  cfg.horizon = util::Seconds(10e-4);  // 10 sample periods ahead
  cfg.slope_filter_alpha = 1.0;  // no smoothing: deterministic test
  ProactiveHybridPolicy policy(binary_ladder(), DtmThresholds{}, cfg);
  double t = 0.0;
  // Rising 0.2 C/sample from 1.5 C below trigger: the extrapolation
  // (+2 C at this horizon) crosses the trigger while the raw reading is
  // still below it.
  policy.update(at(kTrigger - 1.5, t += 1e-4));
  const DtmCommand cmd = policy.update(at(kTrigger - 1.3, t += 1e-4));
  EXPECT_GT(cmd.fetch_gate_fraction, 0.0);  // engaged early
}

TEST(ProactiveHybridPolicy, SteadyTemperatureBehavesLikeHyb) {
  ProactiveConfig cfg;
  cfg.hybrid.escalate_filter_samples = 1;
  ProactiveHybridPolicy pro(binary_ladder(), DtmThresholds{}, cfg);
  HybridPolicy hyb(binary_ladder(), DtmThresholds{}, cfg.hybrid);
  double t = 0.0;
  for (int i = 0; i < 10; ++i) {
    t += 1e-4;
    const DtmCommand a = pro.update(at(kTrigger + 0.5, t));
    const DtmCommand b = hyb.update(at(kTrigger + 0.5, t));
    EXPECT_DOUBLE_EQ(a.fetch_gate_fraction, b.fetch_gate_fraction);
    EXPECT_EQ(a.dvs_level, b.dvs_level);
  }
}

TEST(ProactiveHybridPolicy, FallingTemperatureReleasesEarlier) {
  ProactiveConfig cfg;
  cfg.hybrid.escalate_filter_samples = 1;
  cfg.horizon = util::Seconds(10e-4);
  cfg.slope_filter_alpha = 1.0;
  ProactiveHybridPolicy policy(binary_ladder(), DtmThresholds{}, cfg);
  double t = 0.0;
  policy.update(at(kTrigger + 0.8, t += 1e-4));
  policy.update(at(kTrigger + 0.8, t += 1e-4));
  // Now falling 0.15 C/sample: reading still above trigger but the
  // prediction is 1.5 C lower -> released.
  const DtmCommand cmd = policy.update(at(kTrigger + 0.65, t += 1e-4));
  EXPECT_DOUBLE_EQ(cmd.fetch_gate_fraction, 0.0);
}

TEST(ProactiveHybridPolicy, ResetClearsSlopeState) {
  ProactiveConfig cfg;
  cfg.slope_filter_alpha = 1.0;
  ProactiveHybridPolicy policy(binary_ladder(), DtmThresholds{}, cfg);
  policy.update(at(kTrigger - 3.0, 1e-4));
  policy.update(at(kTrigger - 1.0, 2e-4));
  EXPECT_GT(policy.slope().value(), 0.0);
  policy.reset();
  EXPECT_DOUBLE_EQ(policy.slope().value(), 0.0);
}

}  // namespace
}  // namespace hydra::core
