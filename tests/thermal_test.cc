// Unit tests for src/thermal: linear algebra, RC networks, solvers, and
// the HotSpot-style model builder.
#include <gtest/gtest.h>

#include <cmath>

#include "floorplan/ev7.h"
#include "thermal/linalg.h"
#include "thermal/model_builder.h"
#include "thermal/package.h"
#include "thermal/rc_network.h"
#include "thermal/solver.h"
#include "util/units.h"

namespace hydra::thermal {
namespace {

using floorplan::BlockId;
using util::Celsius;
using util::JoulesPerKelvin;
using util::KelvinPerWatt;
using util::Seconds;

// ----------------------------------------------------------------- linalg
TEST(Linalg, IdentitySolve) {
  const Matrix i3 = Matrix::identity(3);
  const Vector b = {1.0, 2.0, 3.0};
  const Vector x = solve_linear(i3, b);
  for (int k = 0; k < 3; ++k) EXPECT_DOUBLE_EQ(x[k], b[k]);
}

TEST(Linalg, KnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const Vector x = solve_linear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linalg, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const Vector x = solve_linear(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Linalg, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(LuFactorization{a}, std::runtime_error);
}

TEST(Linalg, NonSquareThrows) {
  EXPECT_THROW(LuFactorization{Matrix(2, 3)}, std::invalid_argument);
}

TEST(Linalg, MultiplyMatchesSolveInverse) {
  Matrix a(3, 3);
  a(0, 0) = 4;  a(0, 1) = 1;  a(0, 2) = 0;
  a(1, 0) = 1;  a(1, 1) = 5;  a(1, 2) = 2;
  a(2, 0) = 0;  a(2, 1) = 2;  a(2, 2) = 6;
  const Vector x0 = {1.0, -2.0, 0.5};
  const Vector b = a.multiply(x0);
  const Vector x = solve_linear(a, b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x0[i], 1e-12);
}

TEST(Linalg, ReusableFactorization) {
  Matrix a(2, 2);
  a(0, 0) = 3.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 2.0;
  const LuFactorization lu(a);
  const Vector x1 = lu.solve({4.0, 3.0});
  const Vector x2 = lu.solve({8.0, 6.0});
  EXPECT_NEAR(x2[0], 2.0 * x1[0], 1e-12);
  EXPECT_NEAR(x2[1], 2.0 * x1[1], 1e-12);
}

TEST(Linalg, MultiplyIntoSizeMismatchThrows) {
  const Matrix a(2, 3);
  Vector y;
  Vector x_short = {1.0, 2.0};       // cols is 3
  Vector x_long = {1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW(a.multiply_into(x_short, y), std::invalid_argument);
  EXPECT_THROW(a.multiply_into(x_long, y), std::invalid_argument);
}

TEST(Linalg, MultiplyIntoAliasingThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  Vector x = {1.0, 2.0};
  EXPECT_THROW(a.multiply_into(x, x), std::invalid_argument);
}

TEST(Linalg, MultiplyIntoDegenerateShapes) {
  // 0x0: a valid no-op that must leave y empty.
  const Matrix empty(0, 0);
  Vector y = {9.0};
  Vector x0;
  empty.multiply_into(x0, y);
  EXPECT_TRUE(y.empty());

  // 1x1: plain scalar product.
  Matrix one(1, 1);
  one(0, 0) = 2.5;
  Vector x1 = {4.0};
  one.multiply_into(x1, y);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_DOUBLE_EQ(y[0], 10.0);

  // Non-square (2x3 and 3x2): y resized to rows, values exact.
  Matrix wide(2, 3);
  wide(0, 0) = 1.0;  wide(0, 1) = 2.0;  wide(0, 2) = 3.0;
  wide(1, 0) = -1.0; wide(1, 1) = 0.5;  wide(1, 2) = 4.0;
  Vector x3 = {1.0, 2.0, 3.0};
  wide.multiply_into(x3, y);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 14.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);

  Matrix tall(3, 2);
  tall(0, 0) = 1.0; tall(0, 1) = 0.0;
  tall(1, 0) = 0.0; tall(1, 1) = 1.0;
  tall(2, 0) = 2.0; tall(2, 1) = -1.0;
  Vector x2 = {3.0, 5.0};
  tall.multiply_into(x2, y);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
  EXPECT_DOUBLE_EQ(y[2], 1.0);
}

// -------------------------------------------------------------- network
TEST(RcNetwork, RejectsBadInputs) {
  RcNetwork net;
  EXPECT_THROW(net.add_node("bad", JoulesPerKelvin(0.0)), std::invalid_argument);
  const std::size_t a = net.add_node("a", JoulesPerKelvin(1.0));
  const std::size_t b = net.add_node("b", JoulesPerKelvin(1.0));
  EXPECT_THROW(net.connect(a, a, KelvinPerWatt(1.0)), std::invalid_argument);
  EXPECT_THROW(net.connect(a, b, KelvinPerWatt(0.0)), std::invalid_argument);
  EXPECT_THROW(net.connect(a, 5, KelvinPerWatt(1.0)), std::invalid_argument);
  EXPECT_THROW(net.connect_to_ambient(a, KelvinPerWatt(-1.0)), std::invalid_argument);
}

TEST(RcNetwork, ConductanceMatrixStructure) {
  RcNetwork net;
  const std::size_t a = net.add_node("a", JoulesPerKelvin(1.0));
  const std::size_t b = net.add_node("b", JoulesPerKelvin(1.0));
  net.connect(a, b, KelvinPerWatt(2.0));              // g = 0.5
  net.connect_to_ambient(a, KelvinPerWatt(4.0));      // g = 0.25
  const Matrix g = net.conductance_matrix();
  EXPECT_DOUBLE_EQ(g(0, 0), 0.75);
  EXPECT_DOUBLE_EQ(g(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(g(0, 1), -0.5);
  EXPECT_DOUBLE_EQ(g(1, 0), -0.5);
  EXPECT_DOUBLE_EQ(net.total_ambient_conductance().value(), 0.25);
}

TEST(RcNetwork, ParallelResistancesAccumulate) {
  RcNetwork net;
  const std::size_t a = net.add_node("a", JoulesPerKelvin(1.0));
  const std::size_t b = net.add_node("b", JoulesPerKelvin(1.0));
  net.connect(a, b, KelvinPerWatt(2.0));
  net.connect(a, b, KelvinPerWatt(2.0));
  const Matrix g = net.conductance_matrix();
  EXPECT_DOUBLE_EQ(g(0, 1), -1.0);
}

// ------------------------------------------------------- analytic solves
/// One node, R to ambient: steady T = ambient + P*R; transient is a pure
/// exponential with tau = R*C.
TEST(Solver, SingleNodeSteadyState) {
  RcNetwork net;
  const std::size_t n = net.add_node("n", JoulesPerKelvin(2.0));
  net.connect_to_ambient(n, KelvinPerWatt(3.0));
  const Vector t = steady_state(net, {5.0}, Celsius(45.0));
  EXPECT_NEAR(t[0], 45.0 + 15.0, 1e-12);
}

TEST(Solver, SingleNodeTransientExponential) {
  RcNetwork net;
  net.add_node("n", JoulesPerKelvin(2.0));           // C = 2
  net.connect_to_ambient(0, KelvinPerWatt(3.0));   // R = 3, tau = 6 s
  TransientSolver solver(net, Celsius(45.0), Scheme::kRk4);
  const double power = 5.0;
  // Step for one tau in small increments; expect 1 - e^-1 of the rise.
  const double tau = 6.0;
  const int steps = 600;
  for (int i = 0; i < steps; ++i) {
    solver.step({power}, Seconds(tau / steps));
  }
  const double expected = 45.0 + 15.0 * (1.0 - std::exp(-1.0));
  EXPECT_NEAR(solver.temperature(0).value(), expected, 0.01);
}

TEST(Solver, BackwardEulerMatchesRk4) {
  RcNetwork net;
  const std::size_t a = net.add_node("a", JoulesPerKelvin(1.0));
  const std::size_t b = net.add_node("b", JoulesPerKelvin(4.0));
  net.connect(a, b, KelvinPerWatt(2.0));
  net.connect_to_ambient(b, KelvinPerWatt(1.0));
  TransientSolver be(net, Celsius(40.0), Scheme::kBackwardEuler);
  TransientSolver rk(net, Celsius(40.0), Scheme::kRk4);
  const Vector p = {3.0, 0.5};
  for (int i = 0; i < 2000; ++i) {
    be.step(p, Seconds(0.01));
    rk.step(p, Seconds(0.01));
  }
  EXPECT_NEAR(be.temperature(a).value(), rk.temperature(a).value(), 0.05);
  EXPECT_NEAR(be.temperature(b).value(), rk.temperature(b).value(), 0.05);
}

TEST(Solver, TransientConvergesToSteadyState) {
  RcNetwork net;
  const std::size_t a = net.add_node("a", JoulesPerKelvin(1.0));
  const std::size_t b = net.add_node("b", JoulesPerKelvin(2.0));
  net.connect(a, b, KelvinPerWatt(1.5));
  net.connect_to_ambient(a, KelvinPerWatt(2.0));
  net.connect_to_ambient(b, KelvinPerWatt(5.0));
  const Vector p = {2.0, 1.0};
  const Vector ss = steady_state(net, p, Celsius(45.0));
  TransientSolver solver(net, Celsius(45.0));
  for (int i = 0; i < 20000; ++i) solver.step(p, Seconds(0.01));
  EXPECT_NEAR(solver.temperature(a).value(), ss[0], 1e-6);
  EXPECT_NEAR(solver.temperature(b).value(), ss[1], 1e-6);
}

TEST(Solver, InitializeSteadyStateIsFixedPoint) {
  RcNetwork net;
  net.add_node("a", JoulesPerKelvin(1.0));
  net.add_node("b", JoulesPerKelvin(2.0));
  net.connect(0, 1, KelvinPerWatt(1.0));
  net.connect_to_ambient(1, KelvinPerWatt(1.0));
  const Vector p = {4.0, 0.0};
  TransientSolver solver(net, Celsius(45.0));
  solver.initialize_steady_state(p);
  const double before = solver.temperature(0).value();
  for (int i = 0; i < 100; ++i) solver.step(p, Seconds(0.05));
  EXPECT_NEAR(solver.temperature(0).value(), before, 1e-9);
}

TEST(Solver, ZeroPowerDecaysToAmbient) {
  RcNetwork net;
  net.add_node("a", JoulesPerKelvin(1.0));
  net.connect_to_ambient(0, KelvinPerWatt(1.0));
  TransientSolver solver(net, Celsius(45.0));
  solver.set_temperatures({90.0});
  for (int i = 0; i < 5000; ++i) solver.step({0.0}, Seconds(0.01));
  EXPECT_NEAR(solver.temperature(0).value(), 45.0, 1e-6);
}

TEST(Solver, RejectsBadArguments) {
  RcNetwork net;
  net.add_node("a", JoulesPerKelvin(1.0));
  net.connect_to_ambient(0, KelvinPerWatt(1.0));
  TransientSolver solver(net, Celsius(45.0));
  EXPECT_THROW(solver.step({1.0, 2.0}, Seconds(0.1)), std::invalid_argument);
  EXPECT_THROW(solver.step({1.0}, Seconds(0.0)), std::invalid_argument);
  EXPECT_THROW(solver.set_temperatures({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(steady_state(net, {1.0, 2.0}, Celsius(45.0)), std::invalid_argument);
}

TEST(RcNetwork, CapacitanceScalingSpeedsDynamics) {
  RcNetwork slow;
  slow.add_node("a", JoulesPerKelvin(10.0));
  slow.connect_to_ambient(0, KelvinPerWatt(1.0));
  RcNetwork fast;
  fast.add_node("a", JoulesPerKelvin(10.0));
  fast.connect_to_ambient(0, KelvinPerWatt(1.0));
  fast.scale_capacitances(10.0);
  EXPECT_DOUBLE_EQ(fast.capacitance(0).value(), 1.0);

  TransientSolver s_slow(slow, Celsius(45.0));
  TransientSolver s_fast(fast, Celsius(45.0));
  // After the same wall time the scaled network is much closer to its
  // (identical) steady state.
  for (int i = 0; i < 100; ++i) {
    s_slow.step({5.0}, Seconds(0.01));
    s_fast.step({5.0}, Seconds(0.01));
  }
  EXPECT_GT(s_fast.temperature(0).value(), s_slow.temperature(0).value());
}

// ------------------------------------------------------- model builder
class ModelBuilderTest : public ::testing::Test {
 protected:
  floorplan::Floorplan fp_ = floorplan::ev7_floorplan();
  Package pkg_{};
  ThermalModel model_ = build_thermal_model(fp_, pkg_);
};

TEST_F(ModelBuilderTest, NodeCount) {
  // blocks + spreader (1+4) + sink (1+4)
  EXPECT_EQ(model_.network.size(), fp_.size() + 10);
  EXPECT_EQ(model_.num_blocks, fp_.size());
}

TEST_F(ModelBuilderTest, SteadyStateConservesHeat) {
  // Total heat must leave through the convection resistance: the mean
  // sink-to-ambient rise weighted by conductance equals P_total * R_eq.
  Vector p(fp_.size(), 0.0);
  p[static_cast<std::size_t>(BlockId::kIntReg)] = 10.0;
  const Vector t = steady_state(model_.network, model_.expand_power(p), Celsius(45.0));
  // Heat out = sum over ambient-connected nodes of g_i * rise_i.
  // total_ambient_conductance * mean weighted rise == 10 W.
  // Verify via an energy-balance reconstruction:
  const Matrix g = model_.network.conductance_matrix();
  Vector rise(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) rise[i] = t[i] - 45.0;
  const Vector flow = g.multiply(rise);
  double total_in = 0.0;
  for (double f : flow) total_in += f;
  EXPECT_NEAR(total_in, 10.0, 1e-9);
}

TEST_F(ModelBuilderTest, PoweredBlockIsHottest) {
  Vector p(fp_.size(), 0.0);
  p[static_cast<std::size_t>(BlockId::kIntReg)] = 8.0;
  const Vector t = steady_state(model_.network, model_.expand_power(p), Celsius(45.0));
  const std::size_t reg = static_cast<std::size_t>(BlockId::kIntReg);
  for (std::size_t i = 0; i < fp_.size(); ++i) {
    if (i != reg) {
      EXPECT_GT(t[reg], t[i]) << fp_.block(i).name;
    }
  }
  // And its neighbours are warmer than far-away blocks.
  const std::size_t exec = static_cast<std::size_t>(BlockId::kIntExec);
  const std::size_t fpmap = static_cast<std::size_t>(BlockId::kFPMap);
  EXPECT_GT(t[exec], t[fpmap]);
}

TEST_F(ModelBuilderTest, UniformPowerGivesSinkDrivenRise) {
  // ~40 W spread over the die with r_convec = 1.0 K/W must put the sink
  // about 40 K over ambient and the die a few K above the sink.
  Vector p(fp_.size(), 0.0);
  const double total = 40.0;
  for (std::size_t i = 0; i < fp_.size(); ++i) {
    p[i] = total * fp_.block(i).area() / fp_.die_area();
  }
  const Vector t = steady_state(model_.network, model_.expand_power(p), Celsius(45.0));
  const double sink = t[model_.sink_center];
  EXPECT_NEAR(sink - 45.0, total * pkg_.r_convec.value(), total * 0.35);
  // Die is hotter than the sink.
  EXPECT_GT(t[static_cast<std::size_t>(BlockId::kIntReg)], sink);
}

TEST_F(ModelBuilderTest, ExpandPowerValidatesSize) {
  EXPECT_THROW(model_.expand_power(Vector(3, 1.0)), std::invalid_argument);
}

TEST_F(ModelBuilderTest, RejectsNonTilingFloorplan) {
  floorplan::Floorplan bad;
  bad.add({"a", 0, 0, 1e-3, 1e-3});
  bad.add({"b", 2e-3, 0, 1e-3, 1e-3});
  EXPECT_THROW(build_thermal_model(bad, pkg_), std::invalid_argument);
}

TEST_F(ModelBuilderTest, SinkTimeConstantDwarfsSilicon) {
  // Paper: "over these time scales, the heat sink temperature changes
  // little" — the sink's C/G must exceed a silicon block's by orders of
  // magnitude.
  const JoulesPerKelvin c_block =
      model_.network.capacitance(static_cast<std::size_t>(BlockId::kIntReg));
  const JoulesPerKelvin c_sink = model_.network.capacitance(model_.sink_center);
  EXPECT_GT(c_sink / c_block, 100.0);
}

}  // namespace
}  // namespace hydra::thermal
