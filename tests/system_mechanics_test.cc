// Focused tests of the co-simulation's event mechanics: DVS switching
// overhead, clock-gate quanta, sensor cadence, and config interactions.
#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/system.h"

namespace hydra::sim {
namespace {

SimConfig mech_config() {
  SimConfig cfg;
  cfg.time_scale = 150.0;
  cfg.thermal_interval_cycles = 2'000;
  cfg.warmup_instructions = 400'000;
  cfg.run_instructions = 500'000;
  return cfg;
}

workload::WorkloadProfile hot() { return workload::spec2000_profile("art"); }

TEST(SystemMechanics, DvsStallIsNotFasterThanIdeal) {
  SimConfig cfg = mech_config();
  cfg.dvs_stall = true;
  System stall_sys(hot(), cfg, make_policy(PolicyKind::kDvs, {}, cfg));
  const RunResult stall = stall_sys.run();

  cfg.dvs_stall = false;
  System ideal_sys(hot(), cfg, make_policy(PolicyKind::kDvs, {}, cfg));
  const RunResult ideal = ideal_sys.run();

  // Stall pays 10 us of pipeline stall per switch that ideal does not;
  // small trajectory divergence aside, it cannot be meaningfully faster.
  EXPECT_GE(stall.wall_seconds, ideal.wall_seconds * 0.995);
}

TEST(SystemMechanics, TransitionsBoundedBySensorSamples) {
  const SimConfig cfg = mech_config();
  System system(hot(), cfg, make_policy(PolicyKind::kDvs, {}, cfg));
  const RunResult r = system.run();
  const double sensor_period =
      1.0 / (cfg.sensor.sample_rate.value() * cfg.time_scale);
  const double samples = r.wall_seconds / sensor_period;
  EXPECT_LE(static_cast<double>(r.dvs_transitions), samples + 1.0);
}

TEST(SystemMechanics, ClockGateDutyNeverExceedsHalfPlusQuantum) {
  // The stop-go quantum mechanism alternates gated/running quanta while
  // requested, so the gated fraction cannot exceed ~50 %.
  const SimConfig cfg = mech_config();
  System system(hot(), cfg, make_policy(PolicyKind::kClockGating, {}, cfg));
  const RunResult r = system.run();
  EXPECT_GT(r.clock_gated_fraction, 0.0);
  EXPECT_LE(r.clock_gated_fraction, 0.55);
}

TEST(SystemMechanics, SteppedDvsIsSafeThroughTheSystem) {
  SimConfig cfg = mech_config();
  cfg.dvs_steps = 5;
  PolicyParams params;
  params.dvs.mode = core::DvsPolicyConfig::Mode::kStepped;
  System system(hot(), cfg, make_policy(PolicyKind::kDvs, params, cfg));
  const RunResult r = system.run();
  EXPECT_DOUBLE_EQ(r.violation_fraction, 0.0);
  EXPECT_GT(r.dvs_low_fraction, 0.0);
}

TEST(SystemMechanics, LowVoltageFractionScalesSlowdownFloor) {
  // A deeper low voltage runs slower while engaged: with near-permanent
  // engagement (art), slowdown ordering follows the voltage ordering.
  SimConfig cfg = mech_config();
  ExperimentRunner runner(cfg);
  cfg.v_low_fraction = 0.85;
  const double s085 = runner.run(hot(), PolicyKind::kDvs, {}, cfg).slowdown;
  cfg.v_low_fraction = 0.75;
  const double s075 = runner.run(hot(), PolicyKind::kDvs, {}, cfg).slowdown;
  EXPECT_GT(s075, s085);
}

TEST(SystemMechanics, LocalTogglePolicyThroughTheSystem) {
  const SimConfig cfg = mech_config();
  System system(hot(), cfg, make_policy(PolicyKind::kLocalToggle, {}, cfg));
  const RunResult r = system.run();
  EXPECT_GT(r.mean_issue_gate_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_gate_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.violation_fraction, 0.0);
}

TEST(SystemMechanics, FallbackPolicyThroughTheSystem) {
  const SimConfig cfg = mech_config();
  System system(hot(), cfg, make_policy(PolicyKind::kFallback, {}, cfg));
  const RunResult r = system.run();
  EXPECT_DOUBLE_EQ(r.violation_fraction, 0.0);
  EXPECT_GT(r.mean_gate_fraction, 0.0);  // rides fetch gating first
}

TEST(SystemMechanics, HigherTimeScaleStillRegulates) {
  // The dimensionless design should keep policies safe across time
  // compressions (gains rescale with time_scale in make_policy).
  for (double ts : {100.0, 200.0}) {
    SimConfig cfg = mech_config();
    cfg.time_scale = ts;
    cfg.thermal_interval_cycles = 1'500;
    System system(hot(), cfg, make_policy(PolicyKind::kHybrid, {}, cfg));
    const RunResult r = system.run();
    EXPECT_DOUBLE_EQ(r.violation_fraction, 0.0) << "time_scale " << ts;
  }
}

TEST(SystemMechanics, BaselineCacheSharedAcrossPolicyVariants) {
  // fig4-style usage: one runner, stall and ideal variants — baselines
  // must be computed once (same object) because the baseline never
  // engages DVS.
  ExperimentRunner runner(mech_config());
  SimConfig ideal = mech_config();
  ideal.dvs_stall = false;
  const RunResult& b1 = runner.baseline(hot());
  runner.run(hot(), PolicyKind::kDvs, {}, ideal);
  const RunResult& b2 = runner.baseline(hot());
  EXPECT_EQ(&b1, &b2);
}

}  // namespace
}  // namespace hydra::sim
