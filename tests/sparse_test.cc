// Sparse thermal solve path (DESIGN.md section 17): CSR assembly must
// match the dense conductance matrix entry for entry; the sparse LDL^T
// must agree with the dense LU to solver round-off; full fused-BE runs
// with the sparse path on must track the dense runs to <= 1e-9 degC
// over randomized floorplans and the rounded-dt set; batched (panel)
// sparse solves must be bit-identical to serial ones; the divergence
// guard must fall back to the LU reference path; and a many-core run
// with the sparse path pinned on must stay bit-identical across worker
// widths.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "floorplan/multicore.h"
#include "sim/experiment.h"
#include "sim/multicore.h"
#include "sim/persistent_cache.h"
#include "sim/system.h"
#include "thermal/batch.h"
#include "thermal/model_builder.h"
#include "thermal/rc_network.h"
#include "thermal/simd.h"
#include "thermal/solver.h"
#include "thermal/sparse.h"
#include "util/rng.h"

namespace hydra {
namespace {

/// Pins the HYDRA_SPARSE dispatch for one test and restores it on exit.
struct SparseModeGuard {
  explicit SparseModeGuard(thermal::SparseMode m)
      : prev(thermal::sparse_mode()) {
    thermal::set_sparse_mode_for_test(m);
  }
  ~SparseModeGuard() { thermal::set_sparse_mode_for_test(prev); }
  thermal::SparseMode prev;
};

/// Random connected RC network (the property_test generator): spanning
/// chain + random extra edges + two ambient ties, so G is strictly SPD.
thermal::RcNetwork random_network(util::Rng& rng, std::size_t nodes) {
  thermal::RcNetwork net;
  for (std::size_t i = 0; i < nodes; ++i) {
    std::string name = "n";
    name += std::to_string(i);
    net.add_node(name, util::JoulesPerKelvin(rng.uniform(0.1, 5.0)));
  }
  for (std::size_t i = 1; i < nodes; ++i) {
    net.connect(i - 1, i, util::KelvinPerWatt(rng.uniform(0.2, 4.0)));
  }
  for (std::size_t e = 0; e < nodes; ++e) {
    const std::size_t a = rng.below(nodes);
    const std::size_t b = rng.below(nodes);
    if (a != b) net.connect(a, b, util::KelvinPerWatt(rng.uniform(0.2, 4.0)));
  }
  net.connect_to_ambient(rng.below(nodes),
                         util::KelvinPerWatt(rng.uniform(0.5, 3.0)));
  net.connect_to_ambient(rng.below(nodes),
                         util::KelvinPerWatt(rng.uniform(0.5, 3.0)));
  return net;
}

thermal::Vector random_power(util::Rng& rng, std::size_t nodes) {
  thermal::Vector p(nodes, 0.0);
  for (double& w : p) w = rng.uniform(0.0, 3.0);
  return p;
}

// ------------------------------------------------------- CSR assembly

// conductance_csr() must reproduce conductance_matrix() exactly: same
// values (both accumulate the Laplacian in index order), zero where no
// edge exists, strictly ascending column indices within each row.
TEST(SparseCsr, AssemblyMatchesDenseMatrix) {
  util::Rng rng(0x5ca15eULL);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t nodes = 3 + rng.below(40);
    const thermal::RcNetwork net = random_network(rng, nodes);
    const thermal::Matrix dense = net.conductance_matrix();
    const thermal::CsrMatrix csr = net.conductance_csr();
    ASSERT_EQ(csr.rows, nodes);
    ASSERT_EQ(csr.cols, nodes);
    const thermal::Matrix expanded = csr.to_dense();
    for (std::size_t r = 0; r < nodes; ++r) {
      for (std::size_t c = 0; c < nodes; ++c) {
        EXPECT_DOUBLE_EQ(expanded(r, c), dense(r, c)) << r << "," << c;
      }
      for (std::size_t k = csr.row_ptr[r] + 1; k < csr.row_ptr[r + 1]; ++k) {
        EXPECT_LT(csr.col_idx[k - 1], csr.col_idx[k]) << "row " << r;
      }
    }
  }
}

// The die model the simulator actually steps: same equality on the
// 16-core multicore network, and the sparsity must be O(n), not O(n^2)
// (the whole point of the path).
TEST(SparseCsr, MulticoreModelAssemblyAndSparsity) {
  const auto fp = floorplan::multicore_floorplan(16);
  const auto model = thermal::build_thermal_model(fp, thermal::Package{});
  const std::size_t n = model.network.size();
  const thermal::Matrix dense = model.network.conductance_matrix();
  const thermal::CsrMatrix csr = model.network.conductance_csr();
  const thermal::Matrix expanded = csr.to_dense();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      EXPECT_DOUBLE_EQ(expanded(r, c), dense(r, c)) << r << "," << c;
    }
  }
  EXPECT_LT(csr.nnz(), 16 * n) << "RC die networks have O(n) nonzeros";
}

TEST(SparseCsr, MultiplyMatchesDenseMatvec) {
  util::Rng rng(0xc5a0ULL);
  const std::size_t nodes = 3 + rng.below(30);
  const thermal::RcNetwork net = random_network(rng, nodes);
  const thermal::CsrMatrix csr = net.conductance_csr();
  thermal::Vector x = random_power(rng, nodes);
  const thermal::Vector want = net.conductance_matrix().multiply(x);
  thermal::Vector got(nodes, 0.0);
  csr.multiply_into(x.data(), got.data());
  for (std::size_t i = 0; i < nodes; ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-12 * std::max(1.0, std::abs(want[i])));
  }
}

// --------------------------------------------------- LDL^T correctness

// Solving G x = P through the sparse Cholesky must agree with the dense
// LU steady-state solve to round-off, on random networks spanning both
// sides of the crossover.
TEST(SparseCholesky, SteadySolveMatchesDenseLu) {
  util::Rng rng(0x1d17ULL);
  for (const std::size_t nodes : {5u, 28u, 82u, 200u}) {
    const thermal::RcNetwork net = random_network(rng, nodes);
    const thermal::Vector p = random_power(rng, nodes);
    const util::Celsius ambient(45.0);
    const thermal::Vector dense = thermal::steady_state(net, p, ambient);
    const thermal::SparseCholesky chol(net.conductance_csr());
    EXPECT_EQ(chol.size(), nodes);
    thermal::Vector sparse;
    thermal::Vector work;
    thermal::steady_state_into(chol, p, ambient, sparse, work);
    for (std::size_t i = 0; i < nodes; ++i) {
      EXPECT_NEAR(sparse[i], dense[i], 1e-9) << "node " << i;
    }
  }
}

// Residual check independent of any dense reference: A x must equal b
// to round-off on the step matrix C/dt + G the solver actually inverts.
TEST(SparseCholesky, StepMatrixResidualIsRoundoff) {
  util::Rng rng(0xbeefULL);
  const std::size_t nodes = 60;
  const thermal::RcNetwork net = random_network(rng, nodes);
  const thermal::LuCache cache(net);
  const thermal::SparseStepOperator& op =
      cache.sparse(thermal::round_step_dt(1e-4));
  const thermal::Vector b = random_power(rng, nodes);
  thermal::Vector x(nodes, 0.0);
  thermal::Vector work(nodes, 0.0);
  op.chol.solve_into(b.data(), x.data(), work.data());
  // A = G + diag(C/dt): rebuild the residual from the CSR of G.
  thermal::Vector ax(nodes, 0.0);
  cache.conductance_csr().multiply_into(x.data(), ax.data());
  for (std::size_t i = 0; i < nodes; ++i) {
    ax[i] += op.c_over_dt[i] * x[i];
    EXPECT_NEAR(ax[i], b[i], 1e-9 * std::max(1.0, std::abs(b[i])))
        << "node " << i;
  }
}

TEST(SparseCholesky, RejectsInvalidMatrices) {
  thermal::CsrMatrix rect;
  rect.rows = 2;
  rect.cols = 3;
  rect.row_ptr = {0, 0, 0};
  EXPECT_THROW(thermal::SparseCholesky{rect}, std::invalid_argument);

  // Negative diagonal: symmetric but not positive definite.
  thermal::CsrMatrix indefinite;
  indefinite.rows = 1;
  indefinite.cols = 1;
  indefinite.row_ptr = {0, 1};
  indefinite.col_idx = {0};
  indefinite.values = {-1.0};
  EXPECT_THROW(thermal::SparseCholesky{indefinite}, std::runtime_error);
}

// ------------------------------------------------------------ dispatch

TEST(SparseDispatch, ModeAndCrossoverControlThepredicate) {
  {
    SparseModeGuard on(thermal::SparseMode::kOn);
    EXPECT_TRUE(thermal::use_sparse_step(1));
  }
  {
    SparseModeGuard off(thermal::SparseMode::kOff);
    EXPECT_FALSE(thermal::use_sparse_step(1'000'000));
  }
  {
    SparseModeGuard autod(thermal::SparseMode::kAuto);
    thermal::set_sparse_crossover_for_test(100);
    EXPECT_FALSE(thermal::use_sparse_step(99));
    EXPECT_TRUE(thermal::use_sparse_step(100));
    thermal::set_sparse_crossover_for_test(0);  // restore env/default
  }
  EXPECT_STREQ(thermal::sparse_mode_name(thermal::SparseMode::kAuto), "auto");
  EXPECT_STREQ(thermal::sparse_mode_name(thermal::SparseMode::kOn), "on");
  EXPECT_STREQ(thermal::sparse_mode_name(thermal::SparseMode::kOff), "off");
}

// --------------------------------- full-run sparse-vs-dense tolerance

/// Runs one fused-BE solver to `steps` under the given dispatch mode and
/// returns its final temperatures; `init` reports the post-steady-state
/// initial temperatures so the test can bound the init deviation too.
thermal::Vector run_fused(const thermal::RcNetwork& net,
                          const thermal::Vector& power, double dt_s,
                          int steps, thermal::SparseMode mode,
                          thermal::Vector* init) {
  SparseModeGuard guard(mode);
  thermal::TransientSolver solver(net, util::Celsius(45.0),
                                  thermal::Scheme::kFusedBE);
  solver.initialize_steady_state(power);
  if (init != nullptr) *init = solver.temperatures();
  // Halved power from the steady state gives a real transient to track.
  thermal::Vector half = power;
  for (double& w : half) w *= 0.5;
  for (int i = 0; i < steps; ++i) solver.step(half, util::Seconds(dt_s));
  EXPECT_EQ(solver.fused_guard_trips(), 0u);
  EXPECT_EQ(solver.sparse_path(), mode == thermal::SparseMode::kOn);
  return solver.temperatures();
}

// The acceptance bound: over randomized floorplans crossed with the
// rounded-dt set, a full sparse run ends within 1e-9 degC of its dense
// twin, and the steady-state inits agree to round-off.
class SparseVsDenseSweep : public ::testing::TestWithParam<int> {};

TEST_P(SparseVsDenseSweep, FullRunWithin1e9OfDense) {
  util::Rng rng(9000 + GetParam());
  const std::size_t nodes = 20 + rng.below(180);
  const thermal::RcNetwork net = random_network(rng, nodes);
  const thermal::Vector power = random_power(rng, nodes);
  for (const double dt : {3.3e-6, 1e-5, 1e-4}) {
    const double rounded = thermal::round_step_dt(dt);
    thermal::Vector dense_init;
    thermal::Vector sparse_init;
    const thermal::Vector dense = run_fused(
        net, power, rounded, 500, thermal::SparseMode::kOff, &dense_init);
    const thermal::Vector sparse = run_fused(
        net, power, rounded, 500, thermal::SparseMode::kOn, &sparse_init);
    for (std::size_t i = 0; i < nodes; ++i) {
      EXPECT_NEAR(sparse_init[i], dense_init[i], 1e-9)
          << "steady init, node " << i << ", dt " << rounded;
      EXPECT_NEAR(sparse[i], dense[i], 1e-9)
          << "node " << i << ", dt " << rounded;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseVsDenseSweep, ::testing::Range(0, 6));

// Same bound on the model the paper's many-core figures step: the
// 16-core die (the size the hydra_bench multicore metric measures).
TEST(SparseVsDense, SixteenCoreDieFullRunWithin1e9) {
  const auto fp = floorplan::multicore_floorplan(16);
  const auto model = thermal::build_thermal_model(fp, thermal::Package{});
  const std::size_t n = model.network.size();
  thermal::Vector power(n, 0.0);
  for (std::size_t i = 0; i < model.num_blocks; ++i) power[i] = 0.08;
  const double dt = thermal::round_step_dt(3.3e-6);
  const thermal::Vector dense = run_fused(
      model.network, power, dt, 2000, thermal::SparseMode::kOff, nullptr);
  const thermal::Vector sparse = run_fused(
      model.network, power, dt, 2000, thermal::SparseMode::kOn, nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(sparse[i], dense[i], 1e-9) << "node " << i;
  }
}

// ----------------------------------------- batched-panel bit identity

// BatchedThermalState::step(SparseStepOperator) must produce, for every
// lane, exactly the serial sequence: rhs = fma(C/dt, rise, P), then one
// solve_into. Bit identity (EXPECT_EQ on doubles), not tolerance.
TEST(SparseBatch, PanelStepBitIdenticalToSerialSolve) {
  const auto fp = floorplan::multicore_floorplan(4);
  const auto model = thermal::build_thermal_model(fp, thermal::Package{});
  const std::size_t n = model.network.size();
  const thermal::LuCache cache(model.network);
  const thermal::SparseStepOperator& op =
      cache.sparse(thermal::round_step_dt(1e-4));

  const std::size_t width = thermal::simd::kLaneWidth;
  thermal::BatchedThermalState state(n, width);
  util::Rng rng(0xba7cULL);
  std::vector<thermal::Vector> rises(width);
  std::vector<thermal::Vector> powers(width);
  for (std::size_t k = 0; k < width; ++k) {
    rises[k] = random_power(rng, n);
    powers[k] = random_power(rng, n);
    state.load_lane(k, rises[k].data(), powers[k].data());
  }
  state.step(op);

  thermal::Vector rhs(n, 0.0);
  thermal::Vector want(n, 0.0);
  thermal::Vector work(n, 0.0);
  thermal::Vector got(n, 0.0);
  for (std::size_t k = 0; k < width; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      rhs[i] = std::fma(op.c_over_dt[i], rises[k][i], powers[k][i]);
    }
    op.chol.solve_into(rhs.data(), want.data(), work.data());
    state.store_lane(k, got.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], want[i]) << "lane " << k << ", node " << i;
    }
  }
}

// ------------------------------------------------- guard-trip fallback

// A poisoned sparse step must trip the divergence guard, fall back to
// the LU reference within the same step, and keep the whole trajectory
// bit-identical to a pure-LU twin (the fallback *is* the LU path).
TEST(SparseGuard, TripFallsBackToLuBitIdentical) {
  SparseModeGuard guard(thermal::SparseMode::kOn);
  const auto fp = floorplan::multicore_floorplan(4);
  const auto model = thermal::build_thermal_model(fp, thermal::Package{});
  const std::size_t n = model.network.size();
  thermal::Vector power(n, 0.0);
  for (std::size_t i = 0; i < model.num_blocks; ++i) power[i] = 0.1;
  thermal::Vector start(n, 45.0);
  for (std::size_t i = 0; i < n; ++i) start[i] += 0.01 * double(i % 7);

  thermal::TransientSolver poisoned(model.network, util::Celsius(45.0),
                                    thermal::Scheme::kFusedBE);
  thermal::TransientSolver lu_twin(model.network, util::Celsius(45.0),
                                   thermal::Scheme::kBackwardEuler);
  ASSERT_TRUE(poisoned.sparse_path());
  poisoned.set_temperatures(start);
  lu_twin.set_temperatures(start);
  poisoned.inject_fused_fault_for_test();
  for (int i = 0; i < 200; ++i) {
    poisoned.step(power, util::Seconds(1e-4));
    lu_twin.step(power, util::Seconds(1e-4));
  }
  EXPECT_EQ(poisoned.fused_guard_trips(), 1u);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(poisoned.temperatures()[i], lu_twin.temperatures()[i])
        << "node " << i;
  }
}

// ----------------------------------- multicore width x sparse identity

// The intra-run parallelism contract must survive the sparse path: a
// 4-core hybrid-DTM run pinned to sparse stepping is bit-identical at
// 1, 4 and 8 pool workers (mirrors Multicore.BitIdenticalAcrossWorkerWidths,
// which runs whatever dispatch HYDRA_SPARSE picks).
TEST(SparseMulticore, BitIdenticalAcrossWorkerWidths) {
  SparseModeGuard guard(thermal::SparseMode::kOn);
  const auto run_at_width = [](std::size_t threads) {
    sim::SimConfig cfg;
    cfg.time_scale = 150.0;
    cfg.thermal_interval_cycles = 2'000;
    cfg.warmup_instructions = 200'000;
    cfg.run_instructions = 300'000;
    cfg.thresholds.trigger = util::Celsius(70.0);
    cfg.thresholds.emergency = util::Celsius(74.0);
    cfg.multicore.cores = 4;
    cfg.multicore.threads = threads;
    cfg.multicore.workload_threads = 3;
    cfg.multicore.migration = true;
    sim::MulticoreSystem system(
        workload::spec2000_profile("crafty"), cfg,
        [cfg] {
          return sim::make_policy(sim::PolicyKind::kHybrid,
                                  sim::PolicyParams{}, cfg);
        },
        "Hyb");
    return system.run();
  };
  const sim::MulticoreResult a = run_at_width(1);
  const sim::MulticoreResult b = run_at_width(4);
  const sim::MulticoreResult c = run_at_width(8);
  EXPECT_EQ(sim::serialize_run_result(a.aggregate),
            sim::serialize_run_result(b.aggregate));
  EXPECT_EQ(sim::serialize_run_result(a.aggregate),
            sim::serialize_run_result(c.aggregate));
  ASSERT_EQ(a.per_core.size(), b.per_core.size());
  for (std::size_t t = 0; t < a.per_core.size(); ++t) {
    EXPECT_EQ(a.per_core[t].cycles, b.per_core[t].cycles) << t;
    EXPECT_EQ(a.per_core[t].instructions, c.per_core[t].instructions) << t;
    EXPECT_DOUBLE_EQ(a.per_core[t].max_true_celsius,
                     b.per_core[t].max_true_celsius)
        << t;
  }
}

}  // namespace
}  // namespace hydra
