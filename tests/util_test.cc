// Unit tests for src/util: units, rng, stats, config, csv, table.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/config.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace hydra::util {
namespace {

// ---------------------------------------------------------------- units
TEST(Units, CelsiusKelvinRoundTrip) {
  EXPECT_DOUBLE_EQ(celsius_to_kelvin(0.0), 273.15);
  EXPECT_DOUBLE_EQ(kelvin_to_celsius(celsius_to_kelvin(85.0)), 85.0);
}

TEST(Units, CyclesSecondsConversion) {
  EXPECT_DOUBLE_EQ(cycles_to_seconds(3.0e9, 3.0e9), 1.0);
  EXPECT_EQ(seconds_to_cycles(1.0, 3.0e9), 3'000'000'000LL);
  // Rounds up partial cycles.
  EXPECT_EQ(seconds_to_cycles(1.1e-9, 1.0e9), 2);
  EXPECT_EQ(seconds_to_cycles(1.0e-9, 1.0e9), 1);
}

// ------------------------------------------------------------------ rng
TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, BelowIsBounded) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(9);
  std::array<int, 7> seen{};
  for (int i = 0; i < 10'000; ++i) ++seen[rng.below(7)];
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 200'000; ++i) s.add(rng.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianScaled) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(19);
  const double p = 0.25;
  RunningStats s;
  for (int i = 0; i < 200'000; ++i) s.add(rng.geometric(p, 1000));
  // Mean failures before success = (1-p)/p = 3.
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
}

TEST(Rng, GeometricEdgeCases) {
  Rng rng(23);
  EXPECT_EQ(rng.geometric(1.0, 10), 0);
  EXPECT_EQ(rng.geometric(0.0, 10), 10);
  for (int i = 0; i < 1000; ++i) EXPECT_LE(rng.geometric(0.01, 5), 5);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// ---------------------------------------------------------------- stats
TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(3.0, 2.0);
    ((i % 2 == 0) ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Stats, PairedTStatisticKnown) {
  // Differences all equal: sd = 0 -> conventionally returns 0? No:
  // constant non-zero differences are infinitely significant, but our
  // helper returns 0 only when the mean is also 0.
  const double a[] = {1.0, 2.0, 3.0, 4.0};
  const double b[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(paired_t_statistic(a, b), 0.0);
}

TEST(Stats, PairedTStatisticSignificant) {
  const double a[] = {1.10, 1.22, 1.15, 1.30, 1.18};
  const double b[] = {1.00, 1.08, 1.02, 1.12, 1.05};
  const double t = paired_t_statistic(a, b);
  EXPECT_GT(t, t_critical_99(4));  // clearly significant
}

TEST(Stats, TCriticalTableValues) {
  EXPECT_NEAR(t_critical_99(1), 63.657, 1e-3);
  EXPECT_NEAR(t_critical_99(8), 3.355, 1e-3);
  EXPECT_NEAR(t_critical_99(30), 2.750, 1e-3);
  EXPECT_NEAR(t_critical_99(1000), 2.576, 1e-3);
}

TEST(Stats, ConfidenceHalfWidthShrinksWithN) {
  Rng rng(31);
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 10; ++i) small.push_back(rng.gaussian(0, 1));
  for (int i = 0; i < 1000; ++i) large.push_back(rng.gaussian(0, 1));
  EXPECT_GT(confidence_half_width_99(small),
            confidence_half_width_99(large));
}

TEST(Histogram, BinningAndFractions) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(h.bin_count(i), 1u);
  EXPECT_DOUBLE_EQ(h.fraction_at_or_above(5.0), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_at_or_above(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_at_or_above(100.0), 0.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

// --------------------------------------------------------------- config
TEST(Config, ParsesKeyValues) {
  const auto cfg = Config::from_string("a = 1\nb= hello # comment\n\n#x\n");
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_EQ(cfg.get_string("b", ""), "hello");
  EXPECT_FALSE(cfg.contains("x"));
}

TEST(Config, TypedGettersAndFallbacks) {
  auto cfg = Config::from_string("d=2.5\nflag=true\nn=-7");
  EXPECT_DOUBLE_EQ(cfg.get_double("d", 0.0), 2.5);
  EXPECT_TRUE(cfg.get_bool("flag", false));
  EXPECT_EQ(cfg.get_int("n", 0), -7);
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 9.0), 9.0);
  EXPECT_FALSE(cfg.get_bool("missing", false));
}

TEST(Config, MalformedValuesThrow) {
  auto cfg = Config::from_string("d=abc\nb=maybe\nn=1.5");
  EXPECT_THROW(cfg.get_double("d", 0.0), std::invalid_argument);
  EXPECT_THROW(cfg.get_bool("b", false), std::invalid_argument);
  EXPECT_THROW(cfg.get_int("n", 0), std::invalid_argument);
}

TEST(Config, MalformedLinesThrow) {
  EXPECT_THROW(Config::from_string("novalue\n"), std::invalid_argument);
  EXPECT_THROW(Config::from_string("=x\n"), std::invalid_argument);
}

TEST(Config, FromArgsAndMerge) {
  auto cfg = Config::from_args({"a=1", "b=2"});
  auto other = Config::from_args({"b=3", "c=4"});
  cfg.merge(other);
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_EQ(cfg.get_int("b", 0), 3);
  EXPECT_EQ(cfg.get_int("c", 0), 4);
  EXPECT_EQ(cfg.keys().size(), 3u);
  EXPECT_THROW(Config::from_args({"bad"}), std::invalid_argument);
}

// ------------------------------------------------------------------ csv
TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"x", "y"});
  w.row_numeric({1.5, 2.0});
  EXPECT_EQ(out.str(), "x,y\n1.5,2\n");
}

TEST(Csv, DoubleRoundTrips) {
  const double v = 0.1234567890123456789;
  EXPECT_DOUBLE_EQ(std::stod(CsvWriter::format_double(v)), v);
}

// ---------------------------------------------------------------- table
TEST(Table, AlignsColumns) {
  AsciiTable t;
  t.header({"name", "value"});
  t.row({"a", "1"});
  t.row({"longer", "22"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(AsciiTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(AsciiTable::percent(0.256, 1), "25.6%");
}

}  // namespace
}  // namespace hydra::util
