// Bit-identity and boundary tests for the hot-loop fast paths:
//
//  * Core::idle_cycles(n) must equal n calls to idle_cycle() bit for bit,
//    including across gated/ungated phases and resumed execution;
//  * the fused backward-Euler step operator must track the LU-solve
//    backward-Euler path to <= 1e-9 degC over a full hybrid-DTM run;
//  * System's bulk idle-skip must leave every RunResult field unchanged;
//  * chunk_cycles must never step past a thermal-interval or scheduled
//    event (gate-quantum / sensor / DVS) boundary.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "arch/core.h"
#include "arch/core_config.h"
#include "sim/experiment.h"
#include "sim/system.h"
#include "util/rng.h"
#include "workload/spec_profiles.h"
#include "workload/synthetic_trace.h"

namespace hydra {
namespace {

// ------------------------------------------------------------ idle cycles

void expect_cores_identical(const arch::Core& a, const arch::Core& b) {
  const arch::CoreStats& sa = a.stats();
  const arch::CoreStats& sb = b.stats();
  EXPECT_EQ(sa.committed, sb.committed);
  EXPECT_EQ(sa.cycles, sb.cycles);
  EXPECT_EQ(sa.fetch_gated_cycles, sb.fetch_gated_cycles);
  EXPECT_EQ(sa.fetched, sb.fetched);
  EXPECT_EQ(sa.branches, sb.branches);
  EXPECT_EQ(sa.mispredicts, sb.mispredicts);
  EXPECT_EQ(sa.icache_misses, sb.icache_misses);
  EXPECT_EQ(sa.dcache_misses, sb.dcache_misses);
  EXPECT_EQ(sa.l2_misses, sb.l2_misses);
  const arch::ActivityFrame& fa = a.interval_activity();
  const arch::ActivityFrame& fb = b.interval_activity();
  // EXPECT_EQ on doubles is exact comparison — bit identity, not tolerance.
  EXPECT_EQ(fa.cycles, fb.cycles);
  EXPECT_EQ(fa.clocked_cycles, fb.clocked_cycles);
  for (std::size_t i = 0; i < fa.events.size(); ++i) {
    EXPECT_EQ(fa.events[i], fb.events[i]) << "activity block " << i;
  }
}

// Drives two cores over identical synthetic traces: `fast` takes each
// idle span as one idle_cycles(n) call, `ref` as n idle_cycle() calls.
// Executed cycles between spans prove the pipeline resumes identically.
TEST(FastPath, IdleCyclesBitIdenticalToLoop) {
  const workload::WorkloadProfile profile =
      workload::spec2000_profile("gzip");
  workload::SyntheticTrace trace_fast(profile);
  workload::SyntheticTrace trace_ref(profile);
  const arch::CoreConfig cfg;
  arch::Core fast(cfg, trace_fast);
  arch::Core ref(cfg, trace_ref);

  const struct {
    int executed;        // cycle() calls before the idle span
    std::uint64_t idle;  // idle span length
    bool clocked;        // stalled-but-clocked vs clock-gated
    double gate;         // fetch-gate fraction for the executed phase
  } phases[] = {
      {3000, 1, true, 0.0},     {2000, 4096, false, 0.0},
      {1500, 257, true, 0.3},   {999, 4096, false, 0.3},
      {1, 63, true, 0.85},      {0, 1000000, false, 0.85},
      {2500, 12345, true, 0.0},
  };
  for (const auto& phase : phases) {
    fast.set_fetch_gate_fraction(phase.gate);
    ref.set_fetch_gate_fraction(phase.gate);
    for (int i = 0; i < phase.executed; ++i) {
      fast.cycle();
      ref.cycle();
    }
    fast.idle_cycles(phase.idle, phase.clocked);
    for (std::uint64_t i = 0; i < phase.idle; ++i) {
      ref.idle_cycle(phase.clocked);
    }
    expect_cores_identical(fast, ref);
  }
  // Resume execution after the final span: downstream state must agree.
  for (int i = 0; i < 5000; ++i) {
    fast.cycle();
    ref.cycle();
  }
  expect_cores_identical(fast, ref);
  EXPECT_GT(fast.committed(), 0u);
}

// ---------------------------------------------------------- fused BE step

// A full hybrid-DTM run with the fused step operator must reproduce the
// LU-solve backward-Euler trajectory: same cycle count (no policy
// decision flipped) and temperatures within 1e-9 degC.
TEST(FastPath, FusedBEMatchesBackwardEulerOverHybridRun) {
  sim::SimConfig cfg = sim::default_sim_config();
  cfg.run_instructions = 400'000;
  cfg.warmup_instructions = 100'000;

  cfg.fused_thermal = false;
  sim::System lu_sys(workload::spec2000_profile("gzip"), cfg,
                     sim::make_policy(sim::PolicyKind::kHybrid, {}, cfg));
  const sim::RunResult lu = lu_sys.run();

  cfg.fused_thermal = true;
  sim::System fused_sys(workload::spec2000_profile("gzip"), cfg,
                        sim::make_policy(sim::PolicyKind::kHybrid, {}, cfg));
  const sim::RunResult fused = fused_sys.run();

  EXPECT_EQ(lu.instructions, fused.instructions);
  EXPECT_EQ(lu.cycles, fused.cycles);
  EXPECT_EQ(lu.dvs_transitions, fused.dvs_transitions);
  EXPECT_EQ(lu.violation_fraction, fused.violation_fraction);
  EXPECT_NEAR(lu.max_true_celsius, fused.max_true_celsius, 1e-9);
  EXPECT_NEAR(lu.hottest_mean_celsius, fused.hottest_mean_celsius, 1e-9);
  EXPECT_NEAR(lu.mean_power_watts, fused.mean_power_watts, 1e-9);
}

// -------------------------------------------------------- bulk idle skip

// Clock-gating quanta and stalled DVS transitions are the idle spans the
// bulk skip advances in O(1); with a clock-gating policy on a hot
// workload both paths must produce the same RunResult, field for field.
TEST(FastPath, BulkIdleSkipResultIdentical) {
  sim::SimConfig cfg = sim::default_sim_config();
  cfg.run_instructions = 300'000;
  cfg.warmup_instructions = 80'000;
  cfg.dvs_stall = true;

  cfg.bulk_idle_skip = false;
  sim::System ref_sys(
      workload::spec2000_profile("art"), cfg,
      sim::make_policy(sim::PolicyKind::kClockGating, {}, cfg));
  const sim::RunResult ref = ref_sys.run();

  cfg.bulk_idle_skip = true;
  sim::System fast_sys(
      workload::spec2000_profile("art"), cfg,
      sim::make_policy(sim::PolicyKind::kClockGating, {}, cfg));
  const sim::RunResult fast = fast_sys.run();

  // The policy must actually have gated the clock, or the test proves
  // nothing about the skipped spans.
  EXPECT_GT(ref.clock_gated_fraction, 0.0);

  EXPECT_EQ(ref.instructions, fast.instructions);
  EXPECT_EQ(ref.cycles, fast.cycles);
  EXPECT_EQ(ref.wall_seconds, fast.wall_seconds);
  EXPECT_EQ(ref.ipc, fast.ipc);
  EXPECT_EQ(ref.max_true_celsius, fast.max_true_celsius);
  EXPECT_EQ(ref.violation_fraction, fast.violation_fraction);
  EXPECT_EQ(ref.above_trigger_fraction, fast.above_trigger_fraction);
  EXPECT_EQ(ref.dvs_transitions, fast.dvs_transitions);
  EXPECT_EQ(ref.mean_gate_fraction, fast.mean_gate_fraction);
  EXPECT_EQ(ref.clock_gated_fraction, fast.clock_gated_fraction);
  EXPECT_EQ(ref.mean_power_watts, fast.mean_power_watts);
  EXPECT_EQ(ref.hottest_block, fast.hottest_block);
  EXPECT_EQ(ref.hottest_mean_celsius, fast.hottest_mean_celsius);
  EXPECT_EQ(ref.idle_skip_fraction, fast.idle_skip_fraction);
}

// ------------------------------------------------------------ chunk_cycles

// Property: a chunk never crosses the thermal-interval boundary, never
// exceeds the responsiveness cap, always makes progress, and lands on
// the first cycle boundary at or after the next scheduled event unless
// one of the caps bit first.
TEST(FastPath, ChunkCyclesNeverSkipsBoundaries) {
  util::Rng rng(0xfa57f007ULL);
  for (int i = 0; i < 200'000; ++i) {
    const double t = rng.uniform(0.0, 1e-2);
    // Events behind, at, and ahead of `t`, down to sub-cycle distances.
    const double next_event_t = t + rng.uniform(-1e-6, 2e-3);
    const double freq_hz = rng.uniform(0.5e9, 4e9);
    const long long interval_remaining =
        1 + static_cast<long long>(rng.next_u64() % 20'000);

    const long long n =
        sim::chunk_cycles(next_event_t, t, freq_hz, interval_remaining);

    ASSERT_GE(n, 1) << "chunk must make progress";
    ASSERT_LE(n, 4096) << "responsiveness cap";
    ASSERT_LE(n, interval_remaining)
        << "chunk crossed the thermal-interval boundary";

    const double cycles_to_event = (next_event_t - t) * freq_hz;
    long long to_event = static_cast<long long>(std::ceil(cycles_to_event));
    if (to_event < 1) to_event = 1;
    if (n == to_event && cycles_to_event > 0.0) {
      // Uncapped: the cycle before last is strictly before the event
      // (we stop at the first boundary at/after it, never beyond).
      ASSERT_LT(t + static_cast<double>(n - 1) / freq_hz, next_event_t);
      ASSERT_GE(t + static_cast<double>(n) / freq_hz, next_event_t);
    } else {
      // Capped by the interval boundary or the 4096-cycle cap: the chunk
      // must then stop short of (or at) the event, not overshoot it.
      ASSERT_LE(n, to_event);
    }
  }

  // Deterministic edges: event in the past and a one-cycle interval.
  EXPECT_EQ(sim::chunk_cycles(0.0, 1.0, 1e9, 100), 1);
  EXPECT_EQ(sim::chunk_cycles(2.0, 1.0, 1e9, 1), 1);
}

}  // namespace
}  // namespace hydra
