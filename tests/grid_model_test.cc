// Tests for the grid-mode thermal model, including cross-validation
// against the block-level model.
#include <gtest/gtest.h>

#include "floorplan/ev7.h"
#include "thermal/grid_model.h"
#include "thermal/model_builder.h"
#include "thermal/solver.h"
#include "util/units.h"

namespace hydra::thermal {
namespace {

using floorplan::BlockId;

class GridModelTest : public ::testing::Test {
 protected:
  floorplan::Floorplan fp_ = floorplan::ev7_floorplan();
  Package pkg_{};
};

TEST_F(GridModelTest, NodeCount) {
  const GridThermalModel grid(fp_, pkg_, {8, 8});
  EXPECT_EQ(grid.num_cells(), 64u);
  EXPECT_EQ(grid.network().size(), 64u + 10u);  // + spreader/sink
}

TEST_F(GridModelTest, RejectsBadConfigs) {
  EXPECT_THROW(GridThermalModel(fp_, pkg_, {1, 8}), std::invalid_argument);
  floorplan::Floorplan gap;
  gap.add({"a", 0, 0, 1e-3, 1e-3});
  gap.add({"b", 2e-3, 0, 1e-3, 1e-3});
  EXPECT_THROW(GridThermalModel(gap, pkg_, {4, 4}), std::invalid_argument);
}

TEST_F(GridModelTest, OverlapFractionsPartitionEachCell) {
  const GridThermalModel grid(fp_, pkg_, {8, 8});
  for (std::size_t r = 0; r < grid.rows(); ++r) {
    for (std::size_t c = 0; c < grid.cols(); ++c) {
      double total = 0.0;
      for (std::size_t b = 0; b < fp_.size(); ++b) {
        total += grid.overlap_fraction(r, c, b);
      }
      EXPECT_NEAR(total, 1.0, 1e-9);  // floorplan tiles the die
    }
  }
}

TEST_F(GridModelTest, ExpandPowerConservesWatts) {
  const GridThermalModel grid(fp_, pkg_, {12, 12});
  Vector p(fp_.size(), 0.0);
  p[static_cast<std::size_t>(BlockId::kIntReg)] = 5.0;
  p[static_cast<std::size_t>(BlockId::kL2)] = 10.0;
  const Vector full = grid.expand_power(p);
  double total = 0.0;
  for (double w : full) total += w;
  EXPECT_NEAR(total, 15.0, 1e-9);
}

TEST_F(GridModelTest, SteadyStateConservesHeat) {
  const GridThermalModel grid(fp_, pkg_, {8, 8});
  Vector p(fp_.size(), 1.0);
  const Vector t =
      steady_state(grid.network(), grid.expand_power(p), util::Celsius(45.0));
  Vector rise(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) rise[i] = t[i] - 45.0;
  const Vector flow = grid.network().conductance_matrix().multiply(rise);
  double out = 0.0;
  for (double f : flow) out += f;
  EXPECT_NEAR(out, static_cast<double>(fp_.size()), 1e-7);
}

TEST_F(GridModelTest, HotBlockIsHottestRegion) {
  const GridThermalModel grid(fp_, pkg_, {16, 16});
  Vector p(fp_.size(), 0.0);
  const std::size_t reg = static_cast<std::size_t>(BlockId::kIntReg);
  p[reg] = 8.0;
  const Vector t =
      steady_state(grid.network(), grid.expand_power(p), util::Celsius(45.0));
  const Vector per_block = grid.block_temperatures(t);
  for (std::size_t b = 0; b < fp_.size(); ++b) {
    if (b != reg) {
      EXPECT_GE(per_block[reg], per_block[b]) << fp_.block(b).name;
    }
  }
  // The global peak is inside the powered block's cells.
  EXPECT_NEAR(grid.max_cell_temperature(t), per_block[reg],
              (grid.max_cell_temperature(t) - 45.0) * 0.5);
}

TEST_F(GridModelTest, AgreesWithBlockModelOnBlockAverages) {
  // Same power map through both models: per-block means should agree to
  // within a couple of degrees (the models differ in lateral detail).
  const GridThermalModel grid(fp_, pkg_, {16, 16});
  const ThermalModel block = build_thermal_model(fp_, pkg_);
  Vector p(fp_.size(), 0.0);
  for (std::size_t b = 0; b < fp_.size(); ++b) {
    p[b] = 25.0 * fp_.block(b).area() / fp_.die_area();
  }
  p[static_cast<std::size_t>(BlockId::kIntReg)] += 4.0;

  const Vector tg = steady_state(grid.network(), grid.expand_power(p), util::Celsius(45.0));
  const Vector tb =
      steady_state(block.network, block.expand_power(p), util::Celsius(45.0));
  const Vector per_block = grid.block_temperatures(tg);
  for (std::size_t b = 0; b < fp_.size(); ++b) {
    EXPECT_NEAR(per_block[b], tb[b], 3.0) << fp_.block(b).name;
  }
}

TEST_F(GridModelTest, FinerGridResolvesHotterPeak) {
  // Intra-block gradients: a finer grid never reports a cooler hotspot.
  Vector p(fp_.size(), 0.0);
  p[static_cast<std::size_t>(BlockId::kIntReg)] = 8.0;
  const GridThermalModel coarse(fp_, pkg_, {8, 8});
  const GridThermalModel fine(fp_, pkg_, {24, 24});
  const double peak_coarse = coarse.max_cell_temperature(
      steady_state(coarse.network(), coarse.expand_power(p), util::Celsius(45.0)));
  const double peak_fine = fine.max_cell_temperature(
      steady_state(fine.network(), fine.expand_power(p), util::Celsius(45.0)));
  EXPECT_GE(peak_fine, peak_coarse - 0.2);
}

TEST_F(GridModelTest, ResolutionConvergence) {
  // Successive refinement changes the peak less and less.
  Vector p(fp_.size(), 0.0);
  p[static_cast<std::size_t>(BlockId::kIntReg)] = 6.0;
  auto peak = [&](std::size_t n) {
    const GridThermalModel g(fp_, pkg_, {n, n});
    return g.max_cell_temperature(
        steady_state(g.network(), g.expand_power(p), util::Celsius(45.0)));
  };
  const double p8 = peak(8);
  const double p16 = peak(16);
  const double p24 = peak(24);
  EXPECT_GT(std::abs(p16 - p8) + 1e-9, std::abs(p24 - p16));
}

TEST_F(GridModelTest, TransientMatchesSteadyStateEventually) {
  const GridThermalModel grid(fp_, pkg_, {8, 8});
  Vector p(fp_.size(), 1.5);
  const Vector full = grid.expand_power(p);
  const Vector ss = steady_state(grid.network(), full, util::Celsius(45.0));
  TransientSolver solver(grid.network(), util::Celsius(45.0));
  // March far past every block time constant (sink excepted: start there).
  solver.set_temperatures(ss);
  for (int i = 0; i < 500; ++i) solver.step(full, util::Seconds(1e-3));
  for (std::size_t i = 0; i < ss.size(); ++i) {
    EXPECT_NEAR(solver.temperature(i).value(), ss[i], 1e-6);
  }
}

TEST_F(GridModelTest, BlockTemperatureValidation) {
  const GridThermalModel grid(fp_, pkg_, {8, 8});
  EXPECT_THROW(grid.block_temperatures(Vector(3, 50.0)),
               std::invalid_argument);
  EXPECT_THROW(grid.expand_power(Vector(3, 1.0)), std::invalid_argument);
}

}  // namespace
}  // namespace hydra::thermal
