// Unit tests for src/fault: campaign parsing and the injector's fault
// realisations, including deterministic replay.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "fault/fault_campaign.h"
#include "fault/fault_injector.h"
#include "sensor/sensor.h"

namespace hydra::fault {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<std::string_view> names() { return {"A", "B", "C"}; }

sensor::SensorConfig quiet() {
  sensor::SensorConfig cfg;
  cfg.enable_noise = false;
  cfg.enable_offset = false;
  cfg.quantization = util::CelsiusDelta(0.0);
  return cfg;
}

/// Expect `fn` to throw std::invalid_argument whose message contains
/// `needle` (used to pin the file:line context of parse errors).
template <typename Fn>
void expect_error_containing(Fn fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument containing '" << needle << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

// ------------------------------------------------------------- parsing

TEST(FaultCampaign, ParsesNamesIndicesAndAll) {
  const FaultCampaign c = FaultCampaign::from_string(
      "# comment\n"
      "seed 7\n"
      "B stuck_at 0.001 inf 40\n"
      "2 dead 0.002 0.003\n"
      "all burst_noise 0 0.001 5.0\n",
      names());
  EXPECT_EQ(c.seed(), 7u);
  ASSERT_EQ(c.events().size(), 5u);  // 1 + 1 + 3 ("all" fans out)
  // Events are sorted by start time.
  EXPECT_EQ(c.events()[0].kind, FaultKind::kBurstNoise);
  const FaultEvent& stuck = c.events()[3];
  EXPECT_EQ(stuck.sensor, 1u);
  EXPECT_EQ(stuck.kind, FaultKind::kStuckAt);
  EXPECT_DOUBLE_EQ(stuck.magnitude, 40.0);
  EXPECT_TRUE(std::isinf(stuck.duration_seconds));
  EXPECT_EQ(c.events()[4].sensor, 2u);
  EXPECT_EQ(c.events()[4].kind, FaultKind::kDead);
}

TEST(FaultCampaign, ActivityWindow) {
  const FaultCampaign c =
      FaultCampaign::from_string("A stale 0.001 0.002\n", names());
  EXPECT_FALSE(c.any_active(0.0005));
  EXPECT_TRUE(c.any_active(0.0015));
  EXPECT_TRUE(c.any_active(0.0029));
  EXPECT_FALSE(c.any_active(0.0031));
}

TEST(FaultCampaign, ErrorsCarryLineContext) {
  expect_error_containing(
      [] { FaultCampaign::from_string("A stuck_at 0.001\n", names()); },
      "line 1");
  expect_error_containing(
      [] {
        FaultCampaign::from_string("A dead 0 inf\nXYZ dead 0 inf\n", names());
      },
      "line 2: unknown sensor 'XYZ'");
  expect_error_containing(
      [] { FaultCampaign::from_string("A melt 0 inf\n", names()); },
      "unknown fault kind 'melt'");
  expect_error_containing(
      [] { FaultCampaign::from_string("A dead 0 -1\n", names()); },
      "duration must be positive");
  expect_error_containing(
      [] { FaultCampaign::from_string("A dead 0 inf extra junk2\n", names()); },
      "line 1");
}

TEST(FaultCampaign, RejectsNonFiniteNumbers) {
  expect_error_containing(
      [] { FaultCampaign::from_string("A stuck_at nan inf 40\n", names()); },
      "start must be finite");
  expect_error_containing(
      [] { FaultCampaign::from_string("A stuck_at inf inf 40\n", names()); },
      "start may not be infinite");
  expect_error_containing(
      [] { FaultCampaign::from_string("A stuck_at 0 inf nan\n", names()); },
      "magnitude must be finite");
  expect_error_containing(
      [] { FaultCampaign::from_string("A spike 0 inf 30 1.5\n", names()); },
      "probability");
}

TEST(FaultCampaign, RoundTripsThroughText) {
  const std::string text =
      "seed 99\n"
      "A drift 0.001 0.5 -150\n"
      "C spike 0.002 inf 30 0.25\n";
  const FaultCampaign a = FaultCampaign::from_string(text, names());
  const FaultCampaign b =
      FaultCampaign::from_string(a.to_string(names()), names());
  ASSERT_EQ(a.events().size(), b.events().size());
  EXPECT_EQ(a.seed(), b.seed());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].sensor, b.events()[i].sensor);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_DOUBLE_EQ(a.events()[i].start_seconds,
                     b.events()[i].start_seconds);
    EXPECT_DOUBLE_EQ(a.events()[i].magnitude, b.events()[i].magnitude);
  }
}

// ------------------------------------------------------------ injector

TEST(FaultInjector, InactiveUntilOriginIsSet) {
  sensor::SensorBank bank(3, quiet());
  const FaultCampaign c =
      FaultCampaign::from_string("A stuck_at 0 inf 40\n", names());
  FaultInjector inj(bank, c, 1.0);
  EXPECT_FALSE(inj.any_active(100.0));
  EXPECT_DOUBLE_EQ(inj.sample({80, 81, 82}, 100.0)[0], 80.0);
  inj.set_origin(100.0);
  EXPECT_TRUE(inj.any_active(100.0));
  EXPECT_DOUBLE_EQ(inj.sample({80, 81, 82}, 100.0)[0], 40.0);
  EXPECT_DOUBLE_EQ(inj.sample({80, 81, 82}, 100.0)[1], 81.0);
}

TEST(FaultInjector, StuckDeadAndWindowEnd) {
  sensor::SensorBank bank(3, quiet());
  const FaultCampaign c = FaultCampaign::from_string(
      "A stuck_at 0.0 1.0 40\n"
      "B dead 0.0 1.0\n",
      names());
  FaultInjector inj(bank, c, 1.0);
  inj.set_origin(0.0);
  const auto during = inj.sample({80, 81, 82}, 0.5);
  EXPECT_DOUBLE_EQ(during[0], 40.0);
  EXPECT_TRUE(std::isnan(during[1]));
  EXPECT_DOUBLE_EQ(during[2], 82.0);
  const auto after = inj.sample({80, 81, 82}, 1.5);
  EXPECT_DOUBLE_EQ(after[0], 80.0);
  EXPECT_DOUBLE_EQ(after[1], 81.0);
  EXPECT_EQ(inj.counters().faulted_samples, 2u);
  EXPECT_EQ(inj.counters().by_kind[static_cast<std::size_t>(
                FaultKind::kStuckAt)],
            1u);
}

TEST(FaultInjector, StaleHoldsLastReading) {
  sensor::SensorBank bank(2, quiet());
  const FaultCampaign c =
      FaultCampaign::from_string("A stale 1.0 inf\n", {"A", "B"});
  FaultInjector inj(bank, c, 1.0);
  inj.set_origin(0.0);
  EXPECT_DOUBLE_EQ(inj.sample({70, 71}, 0.5)[0], 70.0);
  // Truth moves on; the stale sensor keeps reporting the last output.
  EXPECT_DOUBLE_EQ(inj.sample({90, 91}, 1.5)[0], 70.0);
  EXPECT_DOUBLE_EQ(inj.sample({95, 96}, 2.0)[0], 70.0);
  EXPECT_DOUBLE_EQ(inj.sample({95, 96}, 2.0)[1], 96.0);
}

TEST(FaultInjector, DriftRampsInPaperTime) {
  sensor::SensorBank bank(1, quiet());
  const FaultCampaign c =
      FaultCampaign::from_string("A drift 1.0 inf -10\n", {"A"});
  // time_scale 40: scaled time t maps to paper time 40 t.
  FaultInjector inj(bank, c, 40.0);
  inj.set_origin(0.0);
  // Scaled t = 0.05 -> paper 2.0 s -> 1.0 s into the drift -> -10 C.
  EXPECT_NEAR(inj.sample({80}, 0.05)[0], 70.0, 1e-9);
  // Scaled t = 0.075 -> paper 3.0 s -> 2.0 s in -> -20 C.
  EXPECT_NEAR(inj.sample({80}, 0.075)[0], 60.0, 1e-9);
}

TEST(FaultInjector, DeterministicReplayForFixedSeed) {
  const FaultCampaign c = FaultCampaign::from_string(
      "seed 1234\n"
      "A burst_noise 0 inf 5\n"
      "B spike 0 inf 30 0.3\n",
      names());
  sensor::SensorConfig noisy;  // default: noise + offset + quantisation
  auto run = [&] {
    sensor::SensorBank bank(3, noisy);
    FaultInjector inj(bank, c, 1.0);
    inj.set_origin(0.0);
    std::vector<double> out;
    for (int k = 0; k < 200; ++k) {
      for (double v : inj.sample({80, 81, 82}, 0.0001 * k)) out.push_back(v);
    }
    return out;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  auto run = [&](std::uint64_t seed) {
    FaultCampaign c({{0, FaultKind::kBurstNoise, 0.0, kInf, 5.0, 1.0}}, seed);
    sensor::SensorBank bank(1, quiet());
    FaultInjector inj(bank, c, 1.0);
    inj.set_origin(0.0);
    double sum = 0.0;
    for (int k = 0; k < 50; ++k) sum += inj.sample({80}, 0.0001 * k)[0];
    return sum;
  };
  EXPECT_NE(run(1), run(2));
}

TEST(FaultInjector, RejectsBadConstruction) {
  sensor::SensorBank bank(2, quiet());
  const FaultCampaign c =
      FaultCampaign::from_string("C dead 0 inf\n", names());
  EXPECT_THROW(FaultInjector(bank, c, 1.0), std::invalid_argument);
  EXPECT_THROW(FaultInjector(bank, FaultCampaign{}, 0.0),
               std::invalid_argument);
}

TEST(FaultInjector, HealthySensorsMatchBankStream) {
  // With no active fault the injector's output is bit-identical to the
  // bank's own sample() stream (same shared RNG draw order).
  sensor::SensorConfig noisy;
  sensor::SensorBank a(3, noisy);
  sensor::SensorBank b(3, noisy);
  FaultInjector inj(a, FaultCampaign{}, 1.0);
  for (int k = 0; k < 20; ++k) {
    const auto sa = inj.sample({80, 81, 82}, 0.001 * k);
    const auto sb = b.sample({80, 81, 82});
    for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(sa[i], sb[i]);
  }
}

}  // namespace
}  // namespace hydra::fault
