// SIMD backend and batched-sweep bit-identity tests.
//
// The contract under test (thermal/simd.h): every backend — scalar,
// AVX2, NEON — performs the identical sequence of correctly rounded
// fused multiply-adds per output element ("virtual four lanes"), so
// kernels, full System runs, and lockstep-batched sweeps all produce
// bit-identical results regardless of which backend executes them or
// how runs are grouped into panels.
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <random>
#include <vector>

#include "sim/experiment.h"
#include "sim/system.h"
#include "thermal/batch.h"
#include "thermal/rc_network.h"
#include "thermal/simd.h"
#include "thermal/solver.h"
#include "util/thread_pool.h"
#include "util/units.h"
#include "workload/spec_profiles.h"

namespace hydra {
namespace {

namespace simd = thermal::simd;

// Restores the dispatch backend on scope exit so one test flipping it
// can never leak into the rest of the process.
struct BackendGuard {
  simd::Backend saved = simd::active_backend();
  ~BackendGuard() { simd::set_backend_for_test(saved); }
};

// The best non-scalar backend this build/CPU can run, if any.
std::optional<simd::Backend> native_backend() {
  if (simd::backend_available(simd::Backend::kAvx2)) {
    return simd::Backend::kAvx2;
  }
  if (simd::backend_available(simd::Backend::kNeon)) {
    return simd::Backend::kNeon;
  }
  return std::nullopt;
}

std::vector<double> random_values(std::size_t n, std::mt19937& rng) {
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  std::vector<double> v(n);
  for (double& x : v) x = dist(rng);
  return v;
}

// ------------------------------------------------------------- kernels

TEST(SimdKernel, PaddedSizeRoundsUpToLaneMultiple) {
  EXPECT_EQ(simd::padded_size(0), 0u);
  EXPECT_EQ(simd::padded_size(1), 4u);
  EXPECT_EQ(simd::padded_size(4), 4u);
  EXPECT_EQ(simd::padded_size(5), 8u);
  EXPECT_EQ(simd::padded_size(17), 20u);
}

TEST(SimdKernel, PackedMatrixPadsRowsWithExactZeros) {
  const std::size_t rows = 3, cols = 5;
  std::mt19937 rng(42);
  const std::vector<double> a = random_values(rows * cols, rng);
  const simd::PackedMatrix m(rows, cols, a.data());
  EXPECT_EQ(m.rows(), rows);
  EXPECT_EQ(m.cols(), cols);
  EXPECT_EQ(m.stride(), simd::padded_size(cols));
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = m.row(r);
    for (std::size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(row[c], a[r * cols + c]);
    }
    for (std::size_t c = cols; c < m.stride(); ++c) {
      EXPECT_EQ(row[c], 0.0) << "padding must be exact zero";
    }
  }
}

// Scalar vs the native vector backend over every awkward shape: sizes
// that are not lane multiples, single rows/columns, empty matrices.
// EXPECT_EQ on doubles is exact — this is bit identity, not tolerance.
TEST(SimdKernel, MatvecBitIdenticalAcrossBackends) {
  const std::optional<simd::Backend> native = native_backend();
  if (!native) {
    GTEST_SKIP() << "no vector backend available on this CPU";
  }
  BackendGuard guard;
  std::mt19937 rng(1234);
  const std::size_t shapes[][2] = {{0, 0}, {1, 1}, {1, 7},  {7, 1},
                                   {2, 3}, {3, 5}, {4, 4},  {5, 9},
                                   {8, 8}, {9, 13}, {16, 16}, {33, 40}};
  for (const auto& shape : shapes) {
    const std::size_t rows = shape[0], cols = shape[1];
    const std::vector<double> a = random_values(rows * cols, rng);
    const std::vector<double> x = random_values(cols, rng);
    std::vector<double> y_scalar(rows, -1.0), y_native(rows, -2.0);

    simd::set_backend_for_test(simd::Backend::kScalar);
    simd::matvec(a.data(), rows, cols, x.data(), y_scalar.data());
    simd::set_backend_for_test(*native);
    simd::matvec(a.data(), rows, cols, x.data(), y_native.data());

    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(y_scalar[r], y_native[r])
          << rows << "x" << cols << " row " << r;
    }
  }
}

// Packed (padded-row) kernel vs the general kernel on the same data:
// padding terms are exact fma no-ops, so results agree bitwise.
TEST(SimdKernel, PackedMatvecMatchesUnpacked) {
  BackendGuard guard;
  std::mt19937 rng(77);
  for (const std::size_t n : {1u, 3u, 5u, 12u, 18u}) {
    const std::vector<double> a = random_values(n * n, rng);
    const simd::PackedMatrix m(n, n, a.data());
    std::vector<double> x_pad(m.stride(), 0.0);
    const std::vector<double> x = random_values(n, rng);
    for (std::size_t i = 0; i < n; ++i) x_pad[i] = x[i];

    std::vector<double> y_ref(n), y_packed(n);
    for (const simd::Backend b :
         {simd::Backend::kScalar, simd::active_backend()}) {
      simd::set_backend_for_test(b);
      simd::matvec(a.data(), n, n, x.data(), y_ref.data());
      simd::packed_matvec(m, x_pad.data(), y_packed.data());
      for (std::size_t r = 0; r < n; ++r) {
        EXPECT_EQ(y_ref[r], y_packed[r]) << "n=" << n << " row " << r;
      }
    }
  }
}

// Each panel lane must reproduce the serial matvec on its own column —
// independent of the batch width and of what the other lanes hold.
TEST(SimdKernel, PanelLanesMatchSerialMatvecBitwise) {
  BackendGuard guard;
  std::mt19937 rng(2026);
  const std::size_t n = 11;
  const std::vector<double> a = random_values(n * n, rng);
  const simd::PackedMatrix m(n, n, a.data());

  for (const std::size_t width : {4u, 8u}) {
    std::vector<std::vector<double>> lanes;
    for (std::size_t k = 0; k < width; ++k) {
      lanes.push_back(random_values(n, rng));
    }
    std::vector<double> panel(m.stride() * width, 0.0);
    for (std::size_t c = 0; c < n; ++c) {
      for (std::size_t k = 0; k < width; ++k) {
        panel[c * width + k] = lanes[k][c];
      }
    }
    std::vector<double> out(m.stride() * width, 0.0);
    for (const simd::Backend b :
         {simd::Backend::kScalar, simd::active_backend()}) {
      simd::set_backend_for_test(b);
      simd::panel_matvec(m, panel.data(), width, out.data());
      std::vector<double> y(n);
      for (std::size_t k = 0; k < width; ++k) {
        simd::matvec(a.data(), n, n, lanes[k].data(), y.data());
        for (std::size_t r = 0; r < n; ++r) {
          EXPECT_EQ(y[r], out[r * width + k])
              << "width " << width << " lane " << k << " row " << r;
        }
      }
    }
  }
}

// ------------------------------------------------- batched state twin

// BatchedThermalState::step vs two serial packed matvecs per lane: the
// panel pass is the same arithmetic in panel form, so every lane's
// updated rise must match bit for bit.
TEST(BatchedState, StepMatchesSerialFusedKernels) {
  using util::Celsius;
  using util::JoulesPerKelvin;
  using util::KelvinPerWatt;

  thermal::RcNetwork net;
  const std::size_t a = net.add_node("a", JoulesPerKelvin(0.8));
  const std::size_t b = net.add_node("b", JoulesPerKelvin(1.1));
  const std::size_t c = net.add_node("c", JoulesPerKelvin(0.5));
  net.connect(a, b, KelvinPerWatt(2.0));
  net.connect(b, c, KelvinPerWatt(1.5));
  net.connect_to_ambient(a, KelvinPerWatt(4.0));
  net.connect_to_ambient(c, KelvinPerWatt(3.0));

  const thermal::LuCache lu(net);
  const double dt = thermal::round_step_dt(1.234e-4);
  const thermal::FusedStepOperator& op = lu.fused(dt);
  const std::size_t n = net.size();

  const std::size_t width = 4;
  thermal::BatchedThermalState state(n, width);
  EXPECT_EQ(state.nodes(), n);
  EXPECT_EQ(state.width(), width);

  std::mt19937 rng(9);
  std::vector<std::vector<double>> rises, powers;
  for (std::size_t k = 0; k < width; ++k) {
    rises.push_back(random_values(n, rng));
    powers.push_back(random_values(n, rng));
    state.load_lane(k, rises.back().data(), powers.back().data());
  }
  state.step(op);

  const std::size_t stride = op.pm.stride();
  std::vector<double> rise_pad(stride, 0.0), pow_pad(stride, 0.0);
  std::vector<double> ym(n), yn(n), got(n);
  for (std::size_t k = 0; k < width; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      rise_pad[i] = rises[k][i];
      pow_pad[i] = powers[k][i];
    }
    simd::packed_matvec(op.pm, rise_pad.data(), ym.data());
    simd::packed_matvec(op.pn, pow_pad.data(), yn.data());
    state.store_lane(k, got.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], ym[i] + yn[i]) << "lane " << k << " node " << i;
    }
  }
}

// ------------------------------------------------------ full-run twins

void expect_identical(const sim::RunResult& a, const sim::RunResult& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.max_true_celsius, b.max_true_celsius);
  EXPECT_EQ(a.violation_fraction, b.violation_fraction);
  EXPECT_EQ(a.above_trigger_fraction, b.above_trigger_fraction);
  EXPECT_EQ(a.dvs_transitions, b.dvs_transitions);
  EXPECT_EQ(a.mean_gate_fraction, b.mean_gate_fraction);
  EXPECT_EQ(a.dvs_low_fraction, b.dvs_low_fraction);
  EXPECT_EQ(a.mean_power_watts, b.mean_power_watts);
  EXPECT_EQ(a.hottest_block, b.hottest_block);
  EXPECT_EQ(a.hottest_mean_celsius, b.hottest_mean_celsius);
}

sim::SimConfig short_config() {
  sim::SimConfig cfg = sim::default_sim_config();
  cfg.run_instructions = 60'000;
  cfg.warmup_instructions = 20'000;
  return cfg;
}

// A full hybrid-DTM System run under the scalar backend vs the native
// vector backend: every RunResult field must be bit-identical.
TEST(SimdTwin, FullRunBitIdenticalScalarVsVector) {
  const std::optional<simd::Backend> native = native_backend();
  if (!native) {
    GTEST_SKIP() << "no vector backend available on this CPU";
  }
  BackendGuard guard;
  const sim::SimConfig cfg = short_config();
  const workload::WorkloadProfile profile =
      workload::spec2000_profile("gzip");

  simd::set_backend_for_test(simd::Backend::kScalar);
  sim::System scalar_sys(
      profile, cfg, sim::make_policy(sim::PolicyKind::kHybrid, {}, cfg));
  const sim::RunResult scalar = scalar_sys.run();

  simd::set_backend_for_test(*native);
  sim::System vector_sys(
      profile, cfg, sim::make_policy(sim::PolicyKind::kHybrid, {}, cfg));
  const sim::RunResult vec = vector_sys.run();

  expect_identical(scalar, vec);
}

// ---------------------------------------------------- batched sweeps

// run_points with lockstep batching on vs off: identical RunResults,
// identical memoization stats, and the batched runner must actually
// have formed groups (otherwise this test proves nothing).
TEST(BatchedSweep, RunPointsBitIdenticalToSerial) {
  const sim::SimConfig cfg = short_config();
  std::vector<sim::PointSpec> points;
  for (const char* bench : {"gzip", "crafty", "vortex"}) {
    const workload::WorkloadProfile profile =
        workload::spec2000_profile(bench);
    points.push_back({profile, sim::PolicyKind::kHybrid, {}, cfg});
    points.push_back({profile, sim::PolicyKind::kDvs, {}, cfg});
  }

  util::ThreadPool pool(2);
  sim::ExperimentRunner batched(cfg, &pool);
  batched.set_batch_width(4);
  sim::ExperimentRunner serial(cfg, &pool);
  serial.set_batch_width(0);

  const std::vector<sim::ExperimentResult> rb = batched.run_points(points);
  const std::vector<sim::ExperimentResult> rs = serial.run_points(points);

  EXPECT_GT(batched.last_batched_groups(), 0u)
      << "batched runner never engaged the lockstep path";
  EXPECT_EQ(serial.last_batched_groups(), 0u);

  ASSERT_EQ(rb.size(), rs.size());
  for (std::size_t i = 0; i < rb.size(); ++i) {
    EXPECT_EQ(rb[i].slowdown, rs[i].slowdown) << "point " << i;
    expect_identical(rb[i].dtm, rs[i].dtm);
    expect_identical(rb[i].baseline, rs[i].baseline);
  }

  // Batching must not change the memoization shape: same submissions,
  // same misses/hits/computes either way.
  const sim::RunCache::Stats sb = batched.cache_stats();
  const sim::RunCache::Stats ss = serial.cache_stats();
  EXPECT_EQ(sb.misses, ss.misses);
  EXPECT_EQ(sb.hits, ss.hits);
  EXPECT_EQ(sb.computes, ss.computes);
  EXPECT_EQ(sb.failures, 0u);
}

// Supervised jobs (deadline or retry budget) never batch: a lockstep
// lane cannot honour a per-job cancel token without stalling siblings.
TEST(BatchedSweep, SupervisedRunsStaySerial) {
  const sim::SimConfig cfg = short_config();
  util::ThreadPool pool(2);
  sim::ExperimentRunner runner(cfg, &pool);
  runner.set_batch_width(4);
  sim::RunCache::JobOptions opts;
  opts.timeout = util::Seconds(300.0);
  runner.set_job_options(opts);

  std::vector<sim::PointSpec> points;
  for (const char* bench : {"gzip", "crafty"}) {
    points.push_back({workload::spec2000_profile(bench),
                      sim::PolicyKind::kHybrid,
                      {},
                      cfg});
  }
  const std::vector<sim::ExperimentResult> results =
      runner.run_points(points);
  EXPECT_EQ(runner.last_batched_groups(), 0u);
  ASSERT_EQ(results.size(), points.size());
  for (const sim::ExperimentResult& r : results) {
    EXPECT_GT(r.dtm.instructions, 0u);
  }
}

}  // namespace
}  // namespace hydra
