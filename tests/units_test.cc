// Tests for the dimensional strong-type layer (src/util/units.h): unit
// round-trips, arithmetic laws, the zero-overhead layout contract, and a
// metamorphic property of the typed thermal plumbing (doubling input
// power doubles the steady-state rise above ambient — the RC network is
// linear, so if the typed API perturbed the solver the factor would
// drift off exactly 2).
#include <gtest/gtest.h>

#include <cmath>
#include <type_traits>

#include "floorplan/ev7.h"
#include "thermal/model_builder.h"
#include "thermal/package.h"
#include "thermal/solver.h"
#include "util/units.h"

namespace hydra::util {
namespace {

using namespace hydra::util::literals;

// ------------------------------------------------------------ round trips
TEST(Units, KelvinCelsiusRoundTrip) {
  EXPECT_DOUBLE_EQ(celsius_to_kelvin(0.0), 273.15);
  EXPECT_DOUBLE_EQ(kelvin_to_celsius(celsius_to_kelvin(85.0)), 85.0);
  EXPECT_DOUBLE_EQ(Celsius(45.0).kelvin(), 318.15);
  EXPECT_DOUBLE_EQ(Celsius::from_kelvin(Celsius(81.8).kelvin()).value(), 81.8);
}

TEST(Units, CycleConversionRoundTrip) {
  const Hertz f(3.0e9);
  const Seconds t = cycles_to_duration(15'000.0, f);
  EXPECT_DOUBLE_EQ(t.value(), 5e-6);
  EXPECT_EQ(duration_to_cycles(t, f), 15'000);
  // Rounding is up: a hair over one cycle costs two.
  EXPECT_EQ(duration_to_cycles(Seconds(1.1 / 3.0e9), f), 2);
}

// --------------------------------------------------------- arithmetic laws
TEST(Units, EnergyIsPowerTimesTime) {
  const Joules e = Watts(95.0) * Seconds(2.0);
  EXPECT_DOUBLE_EQ(e.value(), 190.0);
  const Watts back = e / Seconds(2.0);
  EXPECT_DOUBLE_EQ(back.value(), 95.0);
}

TEST(Units, ThermalOhmsLaw) {
  // dT = R * P and P = G * dT round-trip.
  const CelsiusDelta rise = KelvinPerWatt(1.0) * Watts(40.0);
  EXPECT_DOUBLE_EQ(rise.value(), 40.0);
  const Watts p = WattsPerKelvin(0.5) * rise;
  EXPECT_DOUBLE_EQ(p.value(), 20.0);
  const Joules heat = JoulesPerKelvin(2.0) * rise;
  EXPECT_DOUBLE_EQ(heat.value(), 80.0);
}

TEST(Units, RatesAndGains) {
  const CelsiusPerSecond slope = CelsiusDelta(5.0) / Seconds(2.0);
  EXPECT_DOUBLE_EQ(slope.value(), 2.5);
  const CelsiusDelta extrapolated = slope * Seconds(4.0);
  EXPECT_DOUBLE_EQ(extrapolated.value(), 10.0);
  // An integral controller: gain [1/(degC s)] * error [degC] * dt [s]
  // accumulates a dimensionless output.
  const double delta = PerCelsiusSecond(600.0) * CelsiusDelta(0.5) *
                       Seconds(1e-4);
  EXPECT_DOUBLE_EQ(delta, 0.03);
}

TEST(Units, DimensionlessRatiosDecayToDouble) {
  static_assert(std::is_same_v<decltype(Seconds(1.0) / Seconds(4.0)), double>);
  EXPECT_DOUBLE_EQ(Seconds(1.0) / Seconds(4.0), 0.25);
  EXPECT_DOUBLE_EQ(Hertz(10.0e3) * Seconds(0.5), 5'000.0);
  const Hertz inv = 1.0 / Seconds(2.0);
  EXPECT_DOUBLE_EQ(inv.value(), 0.5);
}

TEST(Units, AffineCelsius) {
  const Celsius trigger = 81.8_degC;
  const Celsius emergency = 85_degC;
  const CelsiusDelta margin = emergency - trigger;
  EXPECT_NEAR(margin.value(), 3.2, 1e-12);
  EXPECT_EQ(trigger + margin, emergency);
  EXPECT_TRUE(trigger < emergency);
  Celsius t = 45_degC;
  t += 2.5_dC;
  EXPECT_DOUBLE_EQ(t.value(), 47.5);
}

TEST(Units, QuantityAlgebra) {
  CelsiusDelta h(0.3);
  h *= 2.0;
  EXPECT_DOUBLE_EQ(h.value(), 0.6);
  EXPECT_DOUBLE_EQ((-h).value(), -0.6);
  EXPECT_DOUBLE_EQ(abs(-h).value(), 0.6);
  CelsiusDelta sum = h + CelsiusDelta(0.4);
  sum -= CelsiusDelta(0.5);
  EXPECT_DOUBLE_EQ(sum.value(), 0.5);
  EXPECT_DOUBLE_EQ((sum / 2.0).value(), 0.25);
  EXPECT_TRUE(sum > h - h);
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ((2e-6_s).value(), 2e-6);
  EXPECT_DOUBLE_EQ((3e9_Hz).value(), 3e9);
  EXPECT_DOUBLE_EQ((1.3_V).value(), 1.3);
  EXPECT_DOUBLE_EQ((95_W).value(), 95.0);
  EXPECT_DOUBLE_EQ((1.5_J).value(), 1.5);
  EXPECT_DOUBLE_EQ((81.8_degC).value(), 81.8);
  EXPECT_DOUBLE_EQ((0.3_dC).value(), 0.3);
}

// ----------------------------------------------------- layout (zero cost)
TEST(Units, ZeroOverheadLayout) {
  EXPECT_EQ(sizeof(Celsius), sizeof(double));
  EXPECT_EQ(sizeof(CelsiusDelta), sizeof(double));
  EXPECT_EQ(sizeof(Watts), sizeof(double));
  EXPECT_EQ(sizeof(Joules), sizeof(double));
  EXPECT_EQ(sizeof(Seconds), sizeof(double));
  EXPECT_EQ(sizeof(Hertz), sizeof(double));
  EXPECT_EQ(sizeof(Volts), sizeof(double));
  static_assert(std::is_trivially_copyable_v<Watts>);
  static_assert(std::is_trivially_destructible_v<Celsius>);
}

// ------------------------------------------- metamorphic thermal property
TEST(Units, SteadyStateRiseIsLinearInPower) {
  const auto fp = floorplan::ev7_floorplan();
  const thermal::Package pkg{};
  const thermal::ThermalModel model = thermal::build_thermal_model(fp, pkg);

  thermal::Vector block_power(model.num_blocks, 0.0);
  for (std::size_t i = 0; i < model.num_blocks; ++i) {
    block_power[i] = 1.0 + 0.37 * static_cast<double>(i % 5);
  }
  thermal::Vector doubled = block_power;
  for (double& w : doubled) w *= 2.0;

  const Celsius ambient = pkg.ambient;
  const thermal::Vector t1 = thermal::steady_state(
      model.network, model.expand_power(block_power), ambient);
  const thermal::Vector t2 = thermal::steady_state(
      model.network, model.expand_power(doubled), ambient);

  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    const double rise1 = t1[i] - ambient.value();
    const double rise2 = t2[i] - ambient.value();
    ASSERT_GT(rise1, 0.0);
    // Linearity must hold to solver precision: the typed plumbing may
    // not perturb the numbers at all.
    EXPECT_NEAR(rise2 / rise1, 2.0, 1e-9) << "node " << i;
  }
}

}  // namespace
}  // namespace hydra::util
