// Unit tests for src/control: PI controller and filters.
#include <gtest/gtest.h>

#include "control/low_pass.h"
#include "control/pi_controller.h"
#include "util/units.h"

namespace hydra::control {
namespace {

using util::CelsiusDelta;
using util::PerCelsius;
using util::PerCelsiusSecond;
using util::Seconds;

TEST(PiController, ProportionalOnly) {
  PiController pi(PerCelsius(2.0), PerCelsiusSecond(0.0), -10.0, 10.0);
  EXPECT_DOUBLE_EQ(pi.update(CelsiusDelta(3.0), Seconds(0.1)), 6.0);
  EXPECT_DOUBLE_EQ(pi.update(CelsiusDelta(-1.0), Seconds(0.1)), -2.0);
}

TEST(PiController, IntegralAccumulates) {
  PiController pi(PerCelsius(0.0), PerCelsiusSecond(1.0), -10.0, 10.0);
  EXPECT_DOUBLE_EQ(pi.update(CelsiusDelta(1.0), Seconds(1.0)), 1.0);
  EXPECT_DOUBLE_EQ(pi.update(CelsiusDelta(1.0), Seconds(1.0)), 2.0);
  EXPECT_DOUBLE_EQ(pi.update(CelsiusDelta(-2.0), Seconds(1.0)), 0.0);
}

TEST(PiController, OutputClamped) {
  PiController pi(PerCelsius(0.0), PerCelsiusSecond(1.0), 0.0, 1.0);
  for (int i = 0; i < 100; ++i) pi.update(CelsiusDelta(1.0), Seconds(1.0));
  EXPECT_DOUBLE_EQ(pi.last_output(), 1.0);
}

TEST(PiController, AntiWindupReleasesImmediately) {
  PiController pi(PerCelsius(0.0), PerCelsiusSecond(1.0), 0.0, 1.0);
  // Drive hard into saturation.
  for (int i = 0; i < 1000; ++i) pi.update(CelsiusDelta(5.0), Seconds(1.0));
  EXPECT_DOUBLE_EQ(pi.last_output(), 1.0);
  // A single step of negative error must start reducing the output —
  // a wound-up integrator would stay pinned for many steps.
  const double out = pi.update(CelsiusDelta(-0.5), Seconds(1.0));
  EXPECT_LT(out, 1.0);
}

TEST(PiController, LastUnclampedExceedsRangeInSaturation) {
  PiController pi(PerCelsius(1.0), PerCelsiusSecond(1.0), 0.0, 1.0);
  pi.update(CelsiusDelta(5.0), Seconds(1.0));
  EXPECT_GT(pi.last_unclamped(), 1.0);
  EXPECT_DOUBLE_EQ(pi.last_output(), 1.0);
}

TEST(PiController, SetIntegratorWarmStart) {
  PiController pi(PerCelsius(0.0), PerCelsiusSecond(1.0), 0.0, 1.0);
  pi.set_integrator(0.5);
  EXPECT_DOUBLE_EQ(pi.update(CelsiusDelta(0.0), Seconds(1.0)), 0.5);
}

TEST(PiController, ConvergesOnFirstOrderPlant) {
  // Plant: x' = -x + u ; target x = 1. PI should settle near u = 1.
  PiController pi(PerCelsius(0.5), PerCelsiusSecond(2.0), 0.0, 5.0);
  double x = 0.0;
  const double dt = 0.01;
  for (int i = 0; i < 20'000; ++i) {
    const double u = pi.update(CelsiusDelta(1.0 - x), Seconds(dt));
    x += dt * (-x + u);
  }
  EXPECT_NEAR(x, 1.0, 0.01);
}

TEST(PiController, RejectsBadArguments) {
  EXPECT_THROW(PiController(PerCelsius(1.0), PerCelsiusSecond(1.0), 1.0, 1.0), std::invalid_argument);
  PiController pi(PerCelsius(1.0), PerCelsiusSecond(1.0), 0.0, 1.0);
  EXPECT_THROW(pi.update(CelsiusDelta(1.0), Seconds(0.0)), std::invalid_argument);
  EXPECT_THROW(pi.update(CelsiusDelta(1.0), Seconds(-1.0)), std::invalid_argument);
}

TEST(PiController, ResetClearsState) {
  PiController pi(PerCelsius(0.0), PerCelsiusSecond(1.0), 0.0, 10.0);
  pi.update(CelsiusDelta(3.0), Seconds(1.0));
  pi.reset();
  EXPECT_DOUBLE_EQ(pi.integrator(), 0.0);
  EXPECT_DOUBLE_EQ(pi.update(CelsiusDelta(1.0), Seconds(1.0)), 1.0);
}

TEST(FirstOrderLowPass, PrimesOnFirstSample) {
  FirstOrderLowPass lp(0.1);
  EXPECT_DOUBLE_EQ(lp.update(5.0), 5.0);
}

TEST(FirstOrderLowPass, ConvergesToConstantInput) {
  FirstOrderLowPass lp(0.2);
  lp.update(0.0);
  for (int i = 0; i < 100; ++i) lp.update(1.0);
  EXPECT_NEAR(lp.value(), 1.0, 1e-6);
}

TEST(FirstOrderLowPass, AttenuatesAlternatingInput) {
  FirstOrderLowPass lp(0.1);
  lp.update(0.0);
  double max_dev = 0.0;
  for (int i = 0; i < 1000; ++i) {
    lp.update(i % 2 == 0 ? 1.0 : -1.0);
    if (i > 100) max_dev = std::max(max_dev, std::abs(lp.value()));
  }
  EXPECT_LT(max_dev, 0.2);
}

TEST(FirstOrderLowPass, RejectsBadAlpha) {
  EXPECT_THROW(FirstOrderLowPass(0.0), std::invalid_argument);
  EXPECT_THROW(FirstOrderLowPass(1.5), std::invalid_argument);
}

TEST(ConsecutiveDebounce, RequiresConsecutiveTrues) {
  ConsecutiveDebounce d(3);
  EXPECT_FALSE(d.update(true));
  EXPECT_FALSE(d.update(true));
  EXPECT_TRUE(d.update(true));
  EXPECT_TRUE(d.update(true));  // stays asserted
}

TEST(ConsecutiveDebounce, FalseResets) {
  ConsecutiveDebounce d(3);
  d.update(true);
  d.update(true);
  EXPECT_FALSE(d.update(false));
  EXPECT_FALSE(d.update(true));
  EXPECT_FALSE(d.update(true));
  EXPECT_TRUE(d.update(true));
}

TEST(ConsecutiveDebounce, ThresholdOneActsImmediately) {
  ConsecutiveDebounce d(1);
  EXPECT_TRUE(d.update(true));
  EXPECT_FALSE(d.update(false));
}

TEST(ConsecutiveDebounce, RejectsZeroThreshold) {
  EXPECT_THROW(ConsecutiveDebounce(0), std::invalid_argument);
}

}  // namespace
}  // namespace hydra::control
