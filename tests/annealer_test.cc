// Tests for the thermal-aware floorplan annealer.
#include <gtest/gtest.h>

#include "floorplan/annealer.h"
#include "floorplan/ev7.h"
#include "thermal/model_builder.h"
#include "thermal/solver.h"
#include "util/units.h"

namespace hydra::floorplan {
namespace {

std::vector<double> test_power() {
  // A plausible per-block power vector (BlockId order): hot integer
  // cluster, warm caches, cool FP.
  std::vector<double> w(kNumBlocks, 0.3);
  w[static_cast<std::size_t>(BlockId::kIntReg)] = 4.0;
  w[static_cast<std::size_t>(BlockId::kIntExec)] = 2.5;
  w[static_cast<std::size_t>(BlockId::kIntMap)] = 1.5;
  w[static_cast<std::size_t>(BlockId::kIntQ)] = 1.2;
  w[static_cast<std::size_t>(BlockId::kICache)] = 2.5;
  w[static_cast<std::size_t>(BlockId::kDCache)] = 2.5;
  w[static_cast<std::size_t>(BlockId::kBPred)] = 1.0;
  w[static_cast<std::size_t>(BlockId::kL2)] = 2.0;
  w[static_cast<std::size_t>(BlockId::kL2Left)] = 0.5;
  w[static_cast<std::size_t>(BlockId::kL2Right)] = 0.5;
  return w;
}

AnnealerConfig quick_config() {
  AnnealerConfig cfg;
  cfg.iterations = 400;
  cfg.seed = 11;
  return cfg;
}

TEST(Annealer, Ev7SpecsExcludeL2Ring) {
  const auto specs = ev7_core_block_specs(test_power());
  EXPECT_EQ(specs.size(), kNumBlocks - 3);
  for (const auto& s : specs) {
    EXPECT_NE(s.name, block_name(BlockId::kL2));
    EXPECT_GT(s.area_m2, 0.0);
  }
  EXPECT_THROW(ev7_core_block_specs(std::vector<double>(3, 1.0)),
               std::invalid_argument);
}

TEST(Annealer, AssembleDieTilesExactly) {
  Floorplan core;
  core.add({"a", 0, 0, 3e-3, 2e-3});
  core.add({"b", 3e-3, 0, 3e-3, 2e-3});
  const Floorplan die = assemble_die(core, 16e-3);
  EXPECT_TRUE(die.covers_die(1e-9));
  EXPECT_NEAR(die.die_width(), 16e-3, 1e-12);
  // Core sits flush with the top edge, centred.
  const Block& a = die.block(*die.index_of("a"));
  EXPECT_NEAR(a.y + a.height, 16e-3, 1e-12);
  EXPECT_THROW(assemble_die(core, 4e-3), std::invalid_argument);
}

TEST(Annealer, ResultTilesDieAndPreservesAreas) {
  const auto specs = ev7_core_block_specs(test_power());
  const AnnealResult r =
      anneal_core_floorplan(specs, thermal::Package{}, quick_config());
  EXPECT_TRUE(r.floorplan.covers_die(1e-6));
  for (const auto& spec : specs) {
    const auto idx = r.floorplan.index_of(spec.name);
    ASSERT_TRUE(idx.has_value()) << spec.name;
    EXPECT_NEAR(r.floorplan.block(*idx).area(), spec.area_m2,
                spec.area_m2 * 1e-6);
  }
}

TEST(Annealer, NeverWorseThanStart) {
  const auto specs = ev7_core_block_specs(test_power());
  const AnnealResult r =
      anneal_core_floorplan(specs, thermal::Package{}, quick_config());
  EXPECT_LE(r.peak_celsius, r.initial_peak_celsius + 1e-9);
  EXPECT_GT(r.accepted_moves, 0);
  EXPECT_GT(r.evaluated_moves, 0);
}

TEST(Annealer, ImprovesOverBalancedStart) {
  const auto specs = ev7_core_block_specs(test_power());
  AnnealerConfig cfg = quick_config();
  cfg.iterations = 1200;
  const AnnealResult r =
      anneal_core_floorplan(specs, thermal::Package{}, cfg);
  // With the hot integer cluster spreadable, annealing should shave a
  // measurable margin off the starting hotspot.
  EXPECT_LT(r.peak_celsius, r.initial_peak_celsius - 0.1);
}

TEST(Annealer, DeterministicForSeed) {
  const auto specs = ev7_core_block_specs(test_power());
  const AnnealResult a =
      anneal_core_floorplan(specs, thermal::Package{}, quick_config());
  const AnnealResult b =
      anneal_core_floorplan(specs, thermal::Package{}, quick_config());
  EXPECT_DOUBLE_EQ(a.peak_celsius, b.peak_celsius);
  EXPECT_EQ(a.accepted_moves, b.accepted_moves);
}

TEST(Annealer, AspectPenaltyKeepsBlocksUsable) {
  const auto specs = ev7_core_block_specs(test_power());
  AnnealerConfig cfg = quick_config();
  cfg.iterations = 1000;
  cfg.aspect_limit = 4.0;
  cfg.aspect_penalty_weight = 2.0;
  const AnnealResult r =
      anneal_core_floorplan(specs, thermal::Package{}, cfg);
  EXPECT_LT(r.max_aspect, 12.0);  // soft limit: bounded, not hard-capped
}

TEST(Annealer, RejectsBadInput) {
  EXPECT_THROW(anneal_core_floorplan({}, thermal::Package{}),
               std::invalid_argument);
  EXPECT_THROW(
      anneal_core_floorplan({{"x", -1.0, 1.0}}, thermal::Package{}),
      std::invalid_argument);
}

TEST(Annealer, AnnealedLayoutWorksInThermalModel) {
  const auto specs = ev7_core_block_specs(test_power());
  const AnnealResult r =
      anneal_core_floorplan(specs, thermal::Package{}, quick_config());
  // The produced die must be consumable by the standard model builder.
  const auto model =
      thermal::build_thermal_model(r.floorplan, thermal::Package{});
  thermal::Vector p(r.floorplan.size(), 1.0);
  const thermal::Vector t =
      thermal::steady_state(model.network, model.expand_power(p),
                            util::Celsius(45.0));
  EXPECT_EQ(t.size(), model.network.size());
}

}  // namespace
}  // namespace hydra::floorplan
