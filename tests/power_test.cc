// Unit tests for src/power: V-f curve, DVS ladder, dynamic energy model,
// leakage, combined power model.
#include <gtest/gtest.h>

#include <cmath>

#include "arch/activity.h"
#include "floorplan/ev7.h"
#include "power/energy_model.h"
#include "power/leakage.h"
#include "power/power_model.h"
#include "power/voltage_freq.h"
#include "util/units.h"

namespace hydra::power {
namespace {

using floorplan::BlockId;
using util::Hertz;
using util::Volts;

// -------------------------------------------------------- V-f curve
TEST(VoltageFrequency, NominalPointIsExact) {
  const VoltageFrequencyCurve curve;
  EXPECT_NEAR(curve.frequency(Volts(1.3)).value(), 3.0e9, 1.0);
}

TEST(VoltageFrequency, MonotoneIncreasing) {
  const VoltageFrequencyCurve curve;
  double prev = 0.0;
  for (double v = 0.6; v <= 1.3; v += 0.05) {
    const double f = curve.frequency(Volts(v)).value();
    EXPECT_GT(f, prev) << "at " << v;
    prev = f;
  }
}

TEST(VoltageFrequency, SubLinearNearNominal) {
  // Near nominal, a 15 % voltage drop costs less than 15 % frequency —
  // this is what makes DVS's power reduction roughly cubic rather than
  // merely quadratic in the achieved slowdown.
  const VoltageFrequencyCurve curve;
  const double f_ratio =
      curve.frequency(Volts(0.85 * 1.3)) / curve.frequency(Volts(1.3));
  EXPECT_GT(f_ratio, 0.85);
  EXPECT_LT(f_ratio, 0.95);
}

TEST(VoltageFrequency, ThrowsAtOrBelowThreshold) {
  const VoltageFrequencyCurve curve;
  EXPECT_THROW(curve.frequency(Volts(0.35)), std::invalid_argument);
  EXPECT_THROW(curve.frequency(Volts(0.1)), std::invalid_argument);
}

TEST(VoltageFrequency, RejectsBadConstruction) {
  EXPECT_THROW(VoltageFrequencyCurve(Volts(0.3), Hertz(3e9), Volts(0.35), 1.3),
               std::invalid_argument);
  EXPECT_THROW(VoltageFrequencyCurve(Volts(1.3), Hertz(-1.0), Volts(0.35), 1.3),
               std::invalid_argument);
}

// ----------------------------------------------------------- DVS ladder
TEST(DvsLadder, BinaryLadder) {
  const VoltageFrequencyCurve curve;
  const DvsLadder ladder(curve, 2, 0.85);
  ASSERT_EQ(ladder.size(), 2u);
  EXPECT_DOUBLE_EQ(ladder.point(0).voltage.value(), 1.3);
  EXPECT_NEAR(ladder.point(1).voltage.value(), 1.105, 1e-12);
  EXPECT_GT(ladder.point(0).frequency, ladder.point(1).frequency);
  EXPECT_EQ(ladder.lowest_level(), 1u);
}

TEST(DvsLadder, VoltagesDescendEvenly) {
  const VoltageFrequencyCurve curve;
  const DvsLadder ladder(curve, 5, 0.8);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_LT(ladder.point(i).voltage, ladder.point(i - 1).voltage);
    EXPECT_LT(ladder.point(i).frequency, ladder.point(i - 1).frequency);
  }
  const Volts step01 = ladder.point(0).voltage - ladder.point(1).voltage;
  const Volts step34 = ladder.point(3).voltage - ladder.point(4).voltage;
  EXPECT_NEAR(step01.value(), step34.value(), 1e-12);
}

TEST(DvsLadder, LevelAtOrBelowQuantisesConservatively) {
  const VoltageFrequencyCurve curve;
  const DvsLadder ladder(curve, 3, 0.8);  // 1.3, 1.17, 1.04
  EXPECT_EQ(ladder.level_at_or_below(Volts(1.3)), 0u);
  EXPECT_EQ(ladder.level_at_or_below(Volts(1.25)), 1u);  // rounds down in voltage
  EXPECT_EQ(ladder.level_at_or_below(Volts(1.17)), 1u);
  EXPECT_EQ(ladder.level_at_or_below(Volts(1.05)), 2u);
  EXPECT_EQ(ladder.level_at_or_below(Volts(0.5)), ladder.lowest_level());
}

TEST(DvsLadder, ContinuousIsDense) {
  const VoltageFrequencyCurve curve;
  const DvsLadder ladder = DvsLadder::continuous(curve, 0.85);
  EXPECT_GE(ladder.size(), 32u);
}

TEST(DvsLadder, RejectsBadArguments) {
  const VoltageFrequencyCurve curve;
  EXPECT_THROW(DvsLadder(curve, 1, 0.85), std::invalid_argument);
  EXPECT_THROW(DvsLadder(curve, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(DvsLadder(curve, 2, 1.0), std::invalid_argument);
}

// --------------------------------------------------------- energy model
arch::ActivityFrame frame_with(BlockId id, double events, double cycles) {
  arch::ActivityFrame f;
  f.cycles = cycles;
  f.clocked_cycles = cycles;
  f.add(id, events);
  return f;
}

TEST(EnergyModel, ZeroActivityGivesBasePower) {
  const EnergyModel em;
  arch::ActivityFrame f;
  f.cycles = 1000;
  f.clocked_cycles = 1000;
  const auto& spec = em.spec(BlockId::kIntReg);
  const double p = em.dynamic_power(f, BlockId::kIntReg, Volts(1.3), Hertz(3.0e9)).value();
  EXPECT_NEAR(p, spec.peak_watts * spec.base_fraction, 1e-9);
}

TEST(EnergyModel, FullActivityGivesPeakPower) {
  const EnergyModel em;
  const auto& spec = em.spec(BlockId::kIntReg);
  const auto f = frame_with(BlockId::kIntReg,
                            1000 * spec.max_events_per_cycle, 1000);
  EXPECT_NEAR(em.dynamic_power(f, BlockId::kIntReg, Volts(1.3), Hertz(3.0e9)).value(),
              spec.peak_watts, 1e-9);
}

TEST(EnergyModel, UtilizationClampsAtOne) {
  const EnergyModel em;
  const auto f = frame_with(BlockId::kICache, 1e9, 1000);
  EXPECT_DOUBLE_EQ(em.utilization(f, BlockId::kICache), 1.0);
}

TEST(EnergyModel, VoltageSquaredScaling) {
  const EnergyModel em;
  const auto f = frame_with(BlockId::kIntExec, 2000, 1000);
  const double p_full = em.dynamic_power(f, BlockId::kIntExec, Volts(1.3), Hertz(3.0e9)).value();
  const double p_low = em.dynamic_power(f, BlockId::kIntExec, Volts(0.65), Hertz(3.0e9)).value();
  EXPECT_NEAR(p_low / p_full, 0.25, 1e-9);
}

TEST(EnergyModel, FrequencyLinearScaling) {
  const EnergyModel em;
  const auto f = frame_with(BlockId::kIntExec, 2000, 1000);
  const double p_full = em.dynamic_power(f, BlockId::kIntExec, Volts(1.3), Hertz(3.0e9)).value();
  const double p_half = em.dynamic_power(f, BlockId::kIntExec, Volts(1.3), Hertz(1.5e9)).value();
  EXPECT_NEAR(p_half / p_full, 0.5, 1e-9);
}

TEST(EnergyModel, ClockGatedCyclesBurnNothing) {
  const EnergyModel em;
  arch::ActivityFrame f;
  f.cycles = 1000;
  f.clocked_cycles = 0;  // fully clock-gated interval
  EXPECT_DOUBLE_EQ(em.dynamic_power(f, BlockId::kIntReg, Volts(1.3), Hertz(3.0e9)).value(), 0.0);
}

TEST(EnergyModel, HalfClockedHalvesBasePower) {
  const EnergyModel em;
  arch::ActivityFrame f;
  f.cycles = 1000;
  f.clocked_cycles = 500;
  const auto& spec = em.spec(BlockId::kIntQ);
  EXPECT_NEAR(em.dynamic_power(f, BlockId::kIntQ, Volts(1.3), Hertz(3.0e9)).value(),
              0.5 * spec.peak_watts * spec.base_fraction, 1e-9);
}

TEST(EnergyModel, IntRegHasHighestPeakPowerDensity) {
  // Calibration target: the integer register file must be the densest
  // hot block (the paper's hottest unit for every benchmark).
  const EnergyModel em;
  const auto fp = floorplan::ev7_floorplan();
  const auto density = [&](BlockId id) {
    return em.spec(id).peak_watts /
           fp.block(static_cast<std::size_t>(id)).area();
  };
  const double reg = density(BlockId::kIntReg);
  for (std::size_t i = 0; i < floorplan::kNumBlocks; ++i) {
    const auto id = static_cast<BlockId>(i);
    if (id == BlockId::kIntReg) continue;
    EXPECT_GT(reg, density(id)) << floorplan::block_name(id);
  }
}

// -------------------------------------------------------------- leakage
TEST(Leakage, IncreasesWithTemperature) {
  const LeakageModel lm(floorplan::ev7_floorplan());
  const double p60 = lm.power(BlockId::kIntExec, 60.0, Volts(1.3)).value();
  const double p85 = lm.power(BlockId::kIntExec, 85.0, Volts(1.3)).value();
  const double p110 = lm.power(BlockId::kIntExec, 110.0, Volts(1.3)).value();
  EXPECT_GT(p85, p60);
  EXPECT_GT(p110, p85);
  // Exponential: equal temperature steps give equal ratios.
  EXPECT_NEAR(p85 / p60, p110 / p85, 1e-9);
}

TEST(Leakage, ScalesWithVoltage) {
  const LeakageModel lm(floorplan::ev7_floorplan());
  const double p_full = lm.power(BlockId::kIntExec, 85.0, Volts(1.3)).value();
  const double p_low = lm.power(BlockId::kIntExec, 85.0, Volts(1.105)).value();
  EXPECT_NEAR(p_low / p_full, 0.85, 1e-9);
}

TEST(Leakage, SramLeaksLessPerArea) {
  const auto fp = floorplan::ev7_floorplan();
  const LeakageModel lm(fp);
  const double logic_density =
      lm.power(BlockId::kIntExec, 60.0, Volts(1.3)).value() /
      fp.block(static_cast<std::size_t>(BlockId::kIntExec)).area();
  const double sram_density =
      lm.power(BlockId::kL2, 60.0, Volts(1.3)).value() /
      fp.block(static_cast<std::size_t>(BlockId::kL2)).area();
  EXPECT_GT(logic_density, sram_density);
}

TEST(Leakage, TotalChipLeakageIsRealistic) {
  // At the 0.13 um node leakage should be a noticeable but minority
  // share: a few watts at 85 C across the 256 mm^2 die.
  const auto fp = floorplan::ev7_floorplan();
  const LeakageModel lm(fp);
  double total = 0.0;
  for (std::size_t i = 0; i < floorplan::kNumBlocks; ++i) {
    total += lm.power(static_cast<BlockId>(i), 85.0, Volts(1.3)).value();
  }
  EXPECT_GT(total, 2.0);
  EXPECT_LT(total, 15.0);
}

// ---------------------------------------------------------- power model
TEST(PowerModel, CombinesDynamicAndLeakage) {
  const auto fp = floorplan::ev7_floorplan();
  const PowerModel pm(fp, EnergyModel{});
  arch::ActivityFrame f;
  f.cycles = 1000;
  f.clocked_cycles = 1000;
  const std::vector<double> temps(floorplan::kNumBlocks, 85.0);
  const auto watts = pm.block_power(f, Volts(1.3), Hertz(3.0e9), temps);
  ASSERT_EQ(watts.size(), floorplan::kNumBlocks);
  for (std::size_t i = 0; i < watts.size(); ++i) {
    const auto id = static_cast<BlockId>(i);
    const double expected = pm.energy().dynamic_power(f, id, Volts(1.3), Hertz(3.0e9)).value() +
                            pm.leakage().power(id, 85.0, Volts(1.3)).value();
    EXPECT_NEAR(watts[i], expected, 1e-12);
  }
}

TEST(PowerModel, TotalMatchesSum) {
  const auto fp = floorplan::ev7_floorplan();
  const PowerModel pm(fp, EnergyModel{});
  arch::ActivityFrame f;
  f.cycles = 100;
  f.clocked_cycles = 100;
  f.add(BlockId::kIntReg, 300);
  const std::vector<double> temps(floorplan::kNumBlocks, 80.0);
  const auto watts = pm.block_power(f, Volts(1.3), Hertz(3.0e9), temps);
  double sum = 0.0;
  for (double w : watts) sum += w;
  EXPECT_NEAR(pm.total_power(f, Volts(1.3), Hertz(3.0e9), temps).value(), sum, 1e-12);
}

TEST(PowerModel, RejectsShortTemperatureVector) {
  const auto fp = floorplan::ev7_floorplan();
  const PowerModel pm(fp, EnergyModel{});
  arch::ActivityFrame f;
  EXPECT_THROW(pm.block_power(f, Volts(1.3), Hertz(3.0e9), std::vector<double>(3, 80.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hydra::power
