// Observability layer: metrics correctness under concurrency, trace
// export well-formedness, and the hot-path contracts (disabled and
// warmed-enabled record calls are allocation-free).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

// Global allocation counter so the hot-path tests can assert record
// calls never allocate (the layer's core contract).
static std::atomic<std::uint64_t> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hydra::obs {
namespace {

std::uint64_t allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

TEST(Metrics, CounterConcurrentIncrements) {
  Registry reg;
  reg.set_enabled(true);
  const Counter c = reg.counter("test.hits");

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();

  const MetricsSnapshot snap = reg.scrape();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "test.hits");
  EXPECT_EQ(snap.counters[0].second, kThreads * kPerThread);
}

TEST(Metrics, CounterHandleIsSharedByName) {
  Registry reg;
  reg.set_enabled(true);
  const Counter a = reg.counter("same");
  const Counter b = reg.counter("same");
  a.add(2);
  b.add(3);
  const MetricsSnapshot snap = reg.scrape();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, 5u);
}

TEST(Metrics, HistogramBucketsAndConcurrentRecords) {
  Registry reg;
  reg.set_enabled(true);
  const Histogram h = reg.histogram("test.latency", {1.0, 2.0, 4.0});

  // Deterministic bucket placement: v lands in the first bucket with
  // v <= bound; past the last bound it lands in the overflow bucket.
  h.record(0.5);  // bucket 0
  h.record(1.0);  // bucket 0 (inclusive upper bound)
  h.record(1.5);  // bucket 1
  h.record(3.0);  // bucket 2
  h.record(9.0);  // overflow
  MetricsSnapshot snap = reg.scrape();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hs = snap.histograms[0];
  ASSERT_EQ(hs.buckets.size(), 4u);
  EXPECT_EQ(hs.buckets[0], 2u);
  EXPECT_EQ(hs.buckets[1], 1u);
  EXPECT_EQ(hs.buckets[2], 1u);
  EXPECT_EQ(hs.buckets[3], 1u);
  EXPECT_EQ(hs.count, 5u);
  EXPECT_DOUBLE_EQ(hs.sum, 0.5 + 1.0 + 1.5 + 3.0 + 9.0);

  // Concurrent records merge exactly once threads have quiesced.
  reg.reset();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(static_cast<double>(i % 8));
      }
    });
  }
  for (auto& w : workers) w.join();
  snap = reg.scrape();
  EXPECT_EQ(snap.histograms[0].count, kThreads * kPerThread);
}

TEST(Metrics, HistogramReboundThrows) {
  Registry reg;
  (void)reg.histogram("h", {1.0, 2.0});
  EXPECT_NO_THROW((void)reg.histogram("h", {1.0, 2.0}));
  EXPECT_THROW((void)reg.histogram("h", {1.0, 3.0}), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("empty", {}), std::invalid_argument);
}

TEST(Metrics, GaugeLastWriterWins) {
  Registry reg;
  reg.set_enabled(true);
  const Gauge g = reg.gauge("test.width");
  g.set(4.0);
  g.set(8.0);
  const MetricsSnapshot snap = reg.scrape();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 8.0);
}

// The reason the layer can be compiled into every hot loop: with the
// registry/tracer disabled, record calls are a relaxed load + branch and
// must never allocate.
TEST(Metrics, DisabledRecordPathIsAllocationFree) {
  Registry reg;
  const Counter c = reg.counter("off.counter");
  const Histogram h = reg.histogram("off.hist", {1.0, 10.0});
  const Gauge g = reg.gauge("off.gauge");
  ASSERT_FALSE(reg.enabled());

  const std::uint64_t before = allocs();
  for (int i = 0; i < 100'000; ++i) {
    c.add();
    h.record(static_cast<double>(i));
    g.set(static_cast<double>(i));
  }
  EXPECT_EQ(allocs() - before, 0u);
}

// Enabled counters stay allocation-free too once the calling thread has
// recorded once (first record registers the thread's shard).
TEST(Metrics, EnabledWarmedRecordPathIsAllocationFree) {
  Registry reg;
  reg.set_enabled(true);
  const Counter c = reg.counter("on.counter");
  const Histogram h = reg.histogram("on.hist", {1.0, 10.0});
  c.add();          // warm: registers this thread's shard
  h.record(1.0);

  const std::uint64_t before = allocs();
  for (int i = 0; i < 100'000; ++i) {
    c.add();
    h.record(static_cast<double>(i));
  }
  EXPECT_EQ(allocs() - before, 0u);

  const MetricsSnapshot snap = reg.scrape();
  EXPECT_EQ(snap.counters[0].second, 100'001u);
}

TEST(Trace, DisabledRecordPathIsAllocationFree) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  const std::uint64_t before = allocs();
  for (int i = 0; i < 100'000; ++i) {
    tracer.instant(0, TimeDomain::kSim, "cat", "ev", 1.0);
    tracer.counter(0, TimeDomain::kSim, "track", 1.0, 2.0);
    const ScopedSpan span(tracer, "cat", "span");
  }
  EXPECT_EQ(allocs() - before, 0u);
  EXPECT_EQ(tracer.size(), 0u);
}

/// Minimal structural JSON validation: balanced braces/brackets outside
/// string literals, with escape handling. Catches truncated or
/// mis-nested output without a JSON parser dependency.
bool json_balanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char ch : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (ch == '\\') {
        escaped = true;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    switch (ch) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != ch) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return stack.empty() && !in_string;
}

TEST(Trace, ChromeJsonWellFormed) {
  Tracer tracer;
  tracer.set_enabled(true);
  const std::uint32_t sim = tracer.new_lane("gzip/Hyb", TimeDomain::kSim);
  tracer.instant(sim, TimeDomain::kSim, "dtm", "policy_engage", 10.0,
                 "gate", 0.5);
  tracer.instant(sim, TimeDomain::kSim, "dtm", "dvs_transition_start", 20.0,
                 "from_level", 0.0, "to_level", 1.0);
  tracer.counter(sim, TimeDomain::kSim, "Tmax_celsius", 30.0, 82.5);
  { const ScopedSpan span(tracer, "system", "measure", "gzip \"quoted\""); }
  ASSERT_EQ(tracer.size(), 4u);

  std::ostringstream out;
  tracer.write_chrome_json(out);
  const std::string json = out.str();

  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("policy_engage"), std::string::npos);
  EXPECT_NE(json.find("dvs_transition_start"), std::string::npos);
  EXPECT_NE(json.find("Tmax_celsius"), std::string::npos);
  // The dynamic label (with its embedded quotes escaped) replaces the
  // span's static name.
  EXPECT_NE(json.find("gzip \\\"quoted\\\""), std::string::npos);
  // Lane metadata names the sim process.
  EXPECT_NE(json.find("gzip/Hyb"), std::string::npos);
}

TEST(Trace, CsvHasOneRowPerEvent) {
  Tracer tracer;
  tracer.set_enabled(true);
  const std::uint32_t sim = tracer.new_lane("lane", TimeDomain::kSim);
  tracer.instant(sim, TimeDomain::kSim, "dtm", "a", 1.0);
  tracer.instant(sim, TimeDomain::kSim, "dtm", "b", 2.0);
  std::ostringstream out;
  tracer.write_csv(out);
  const std::string csv = out.str();
  std::size_t rows = 0;
  for (const char ch : csv) rows += ch == '\n';
  EXPECT_EQ(rows, 3u);  // header + 2 events
}

TEST(Trace, ClearDropsEventsAndKeepsLanes) {
  Tracer tracer;
  tracer.set_enabled(true);
  const std::uint32_t sim = tracer.new_lane("lane", TimeDomain::kSim);
  tracer.instant(sim, TimeDomain::kSim, "dtm", "a", 1.0);
  EXPECT_EQ(tracer.size(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  tracer.instant(sim, TimeDomain::kSim, "dtm", "b", 2.0);
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(Trace, ConcurrentRecordingLosesNothingOnceJoined) {
  Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.instant(0, TimeDomain::kSim, "cat", "ev",
                       static_cast<double>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(tracer.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(SimLane, ScopeNestsAndRestores) {
  EXPECT_EQ(SimLaneScope::current(), SimLaneScope::kNoLane);
  {
    SimLaneScope outer(3);
    EXPECT_EQ(SimLaneScope::current(), 3u);
    {
      SimLaneScope inner(7);
      EXPECT_EQ(SimLaneScope::current(), 7u);
    }
    EXPECT_EQ(SimLaneScope::current(), 3u);
  }
  EXPECT_EQ(SimLaneScope::current(), SimLaneScope::kNoLane);
}

}  // namespace
}  // namespace hydra::obs
