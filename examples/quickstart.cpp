// Quickstart: run one hot SPEC2000-like benchmark under the hybrid DTM
// policy and watch temperature, voltage and fetch gating evolve.
//
// Usage: quickstart [benchmark] [key=value ...]
//   e.g. quickstart art run_instructions=2000000
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "util/config.h"

using namespace hydra;

int main(int argc, char** argv) {
  std::string bench = "art";
  std::vector<std::string> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.find('=') == std::string::npos) {
      bench = arg;
    } else {
      overrides.push_back(arg);
    }
  }

  sim::SimConfig cfg = sim::default_sim_config();
  try {
    const util::Config overrides_cfg = util::Config::from_args(overrides);
    cfg.run_instructions = static_cast<std::uint64_t>(overrides_cfg.get_int(
        "run_instructions", static_cast<long long>(cfg.run_instructions)));
    cfg.dvs_stall = overrides_cfg.get_bool("dvs_stall", cfg.dvs_stall);
    cfg.v_low_fraction =
        overrides_cfg.get_double("v_low_fraction", cfg.v_low_fraction);

    const workload::WorkloadProfile profile =
        workload::spec2000_profile(bench);

    std::printf("== hydra-dtm quickstart: %s under Hyb (binary DVS %s) ==\n",
                bench.c_str(), cfg.dvs_stall ? "stall" : "ideal");

    sim::System system(profile, cfg,
                       sim::make_policy(sim::PolicyKind::kHybrid, {}, cfg));

    // Print a temperature/actuation trace every ~50 thermal intervals.
    int counter = 0;
    system.set_trace_callback([&counter](const sim::StepTrace& st) {
      if (counter++ % 50 != 0) return;
      std::printf(
          "t=%8.1f us  Tmax=%6.2f C  V=%.3f V  f=%.2f GHz  gate=%4.0f%%  %s\n",
          st.time_seconds * 1e6, st.max_true_celsius, st.voltage.value(),
          st.frequency.value() / 1e9, st.gate_fraction * 100.0,
          st.clock_gated ? "[clock gated]" : "");
    });

    const sim::RunResult r = system.run();

    std::printf("\n-- run summary --\n");
    std::printf("instructions        : %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("IPC                 : %.2f\n", r.ipc);
    std::printf("max true temperature: %.2f C (emergency %.1f C)\n",
                r.max_true_celsius, cfg.thresholds.emergency.value());
    std::printf("thermal violations  : %s (%.2f%% of time)\n",
                r.thermally_safe() ? "none" : "VIOLATED",
                r.violation_fraction * 100.0);
    std::printf("time above trigger  : %.1f%%\n",
                r.above_trigger_fraction * 100.0);
    std::printf("mean fetch gating   : %.1f%%\n",
                r.mean_gate_fraction * 100.0);
    std::printf("time at low voltage : %.1f%%\n", r.dvs_low_fraction * 100.0);
    std::printf("DVS transitions     : %zu\n", r.dvs_transitions);
    std::printf("mean power          : %.1f W\n", r.mean_power_watts);
    std::printf("hottest block       : %s (mean %.2f C)\n",
                r.hottest_block.c_str(), r.hottest_mean_celsius);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
