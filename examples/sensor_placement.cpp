// Where should the thermal sensors go?
//
// Records per-block temperature traces from baseline runs of several
// benchmarks, then asks: if the chip could only afford K sensors, which
// blocks should carry them, and how much design margin does each K still
// require (paper Section 3's sensor-placement concern)? Uses the exact
// block temperatures (sensor noise/offset are a separate, additive error
// budget).
//
// Usage: sensor_placement [benchmarks... (default: crafty gzip art gcc)]
#include <iostream>
#include <string>
#include <vector>

#include "floorplan/ev7.h"
#include "sensor/placement.h"
#include "sim/experiment.h"
#include "util/table.h"

using namespace hydra;

int main(int argc, char** argv) {
  std::vector<std::string> benches(argv + 1, argv + argc);
  if (benches.empty()) benches = {"crafty", "gzip", "art", "gcc"};
  try {
    sensor::TemperatureTrace trace;
    const sim::SimConfig cfg = sim::default_sim_config();
    for (const std::string& bench : benches) {
      // Record exact per-block temperatures by installing a pass-through
      // "policy" behind ideal (noise/offset/quantisation-free) sensors:
      // it observes every 10 kHz sample and throttles nothing.
      class Recorder final : public core::DtmPolicy {
       public:
        explicit Recorder(sensor::TemperatureTrace* out) : out_(out) {}
        core::DtmCommand update(const core::ThermalSample& s) override {
          out_->push_back(s.sensed_celsius);
          return {};
        }
        std::string_view name() const override { return "recorder"; }
        void reset() override {}

       private:
        sensor::TemperatureTrace* out_;
      };
      sim::SimConfig quiet = cfg;
      quiet.sensor.enable_noise = false;
      quiet.sensor.enable_offset = false;
      quiet.sensor.quantization = util::CelsiusDelta(0.0);
      sim::System recording(workload::spec2000_profile(bench), quiet,
                            std::make_unique<Recorder>(&trace));
      recording.run();
      std::cout << "recorded " << bench << " (" << trace.size()
                << " samples so far)\n";
    }

    const floorplan::Floorplan fp = floorplan::ev7_floorplan();
    util::AsciiTable table;
    table.header({"sensors", "blocks", "required margin [C]"});
    for (std::size_t k = 1; k <= 4; ++k) {
      const sensor::PlacementResult r = sensor::greedy_placement(trace, k);
      std::string names;
      for (std::size_t b : r.blocks) {
        if (!names.empty()) names += ", ";
        names += std::string(fp.block(b).name);
      }
      table.row({std::to_string(k), names,
                 util::AsciiTable::num(r.worst_error, 3)});
      if (r.worst_error == 0.0) break;
    }
    table.print(std::cout);
    std::cout << "\n'Required margin' is how far the true hotspot can\n"
                 "exceed the hottest instrumented block — extra headroom\n"
                 "the trigger threshold must budget, on top of sensor\n"
                 "noise and offset.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
