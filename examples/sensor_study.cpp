// Study how sensor imperfections affect DTM safety and overhead.
//
// The paper budgets 3 degrees of margin for sensors (up to 2 of fixed
// offset + 1 of effective precision), which is why the trigger sits at
// 81.8 C against an 85 C emergency threshold. This example runs the Hyb
// policy on one benchmark under ideal sensors, noise-only, offset-only,
// and fully imperfect sensors — showing that the margin buys safety at
// a small overhead cost.
//
// Usage: sensor_study [benchmark]
#include <iostream>
#include <string>

#include "sim/experiment.h"
#include "util/table.h"

using namespace hydra;

int main(int argc, char** argv) {
  const std::string bench = argc > 1 ? argv[1] : "crafty";
  try {
    const workload::WorkloadProfile profile =
        workload::spec2000_profile(bench);

    struct Variant {
      const char* label;
      bool noise;
      bool offset;
    };
    const Variant variants[] = {
        {"ideal sensors", false, false},
        {"noise only (+/-1 C effective)", true, false},
        {"offset only (up to -2 C)", false, true},
        {"noise + offset (paper)", true, true},
    };

    std::cout << "== hydra-dtm sensor study: " << bench
              << " under Hyb ==\n\n";
    util::AsciiTable table;
    table.header({"sensor model", "slowdown", "Tmax[C]", "safe",
                  "DVS switches", "time at Vlow"});

    for (const Variant& v : variants) {
      sim::SimConfig cfg = sim::default_sim_config();
      cfg.sensor.enable_noise = v.noise;
      cfg.sensor.enable_offset = v.offset;
      sim::ExperimentRunner runner(cfg);
      const sim::ExperimentResult r =
          runner.run(profile, sim::PolicyKind::kHybrid, {});
      table.row({v.label, util::AsciiTable::num(r.slowdown, 4),
                 util::AsciiTable::num(r.dtm.max_true_celsius, 2),
                 r.dtm.thermally_safe() ? "yes" : "NO",
                 std::to_string(r.dtm.dvs_transitions),
                 util::AsciiTable::percent(r.dtm.dvs_low_fraction, 1)});
    }
    table.print(std::cout);
    std::cout << "\nWith offsets enabled sensors read low, so the policy\n"
                 "regulates against the 81.8 C trigger to guarantee the\n"
                 "true temperature never crosses 85 C.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
