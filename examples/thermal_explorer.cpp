// Explore the thermal substrate by itself: build the EV7-like floorplan
// and package, inject a per-block power vector, and print the
// steady-state temperature map plus a step-response transient — no
// processor or DTM in the loop. Useful for package what-if studies
// (e.g. how much a cheaper heat sink raises the hotspot).
//
// Usage: thermal_explorer [r_convec=1.0] [watts_total=28] [block=IntReg]
#include <iostream>
#include <string>
#include <vector>

#include "floorplan/ev7.h"
#include "floorplan/floorplan_io.h"
#include "thermal/model_builder.h"
#include "thermal/solver.h"
#include "util/config.h"
#include "util/table.h"

using namespace hydra;

int main(int argc, char** argv) {
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    const util::Config cfg = util::Config::from_args(args);

    thermal::Package pkg;
    pkg.r_convec =
        util::KelvinPerWatt(cfg.get_double("r_convec", pkg.r_convec.value()));
    const double total = cfg.get_double("watts_total", 28.0);
    const std::string hot_block = cfg.get_string("block", "IntReg");

    const floorplan::Floorplan fp = floorplan::ev7_floorplan();
    const thermal::ThermalModel model = thermal::build_thermal_model(fp, pkg);

    std::cout << "== hydra-dtm thermal explorer ==\n";
    std::cout << "floorplan (" << fp.size() << " blocks, "
              << fp.die_width() * 1e3 << " x " << fp.die_height() * 1e3
              << " mm):\n"
              << floorplan::to_flp(fp) << "\n";

    // Power: mostly uniform density with an extra 20% of the budget
    // concentrated on the chosen block (a synthetic hotspot).
    const auto hot = fp.index_of(hot_block);
    if (!hot) {
      std::cerr << "unknown block '" << hot_block << "'\n";
      return 1;
    }
    thermal::Vector watts(fp.size(), 0.0);
    for (std::size_t i = 0; i < fp.size(); ++i) {
      watts[i] = 0.8 * total * fp.block(i).area() / fp.die_area();
    }
    watts[*hot] += 0.2 * total;

    const thermal::Vector temps = thermal::steady_state(
        model.network, model.expand_power(watts), pkg.ambient);

    util::AsciiTable table;
    table.header({"block", "power [W]", "density [W/mm2]", "T [C]"});
    for (std::size_t i = 0; i < fp.size(); ++i) {
      table.row({std::string(fp.block(i).name),
                 util::AsciiTable::num(watts[i], 2),
                 util::AsciiTable::num(watts[i] / (fp.block(i).area() * 1e6),
                                       3),
                 util::AsciiTable::num(temps[i], 2)});
    }
    table.row({"(spreader)", "-", "-",
               util::AsciiTable::num(temps[model.spreader_center], 2)});
    table.row({"(sink)", "-", "-",
               util::AsciiTable::num(temps[model.sink_center], 2)});
    table.print(std::cout);

    // Step response: drop the hotspot's extra power and watch it cool.
    thermal::TransientSolver solver(model.network, pkg.ambient);
    solver.set_temperatures(temps);
    thermal::Vector cooled = watts;
    cooled[*hot] -= 0.2 * total;
    std::cout << "\nstep response after removing the hotspot power:\n";
    double t = 0.0;
    for (int i = 0; i < 8; ++i) {
      for (int k = 0; k < 300; ++k) solver.step(model.expand_power(cooled), util::Seconds(10e-6));
      t += 3e-3;
      std::cout << "  t=" << util::AsciiTable::num(t * 1e3, 0) << " ms  "
                << hot_block << " = "
                << util::AsciiTable::num(solver.temperature(*hot).value(), 2)
                << " C\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
