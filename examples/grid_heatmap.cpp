// Render an ASCII heat map of the die using the grid-mode thermal model:
// run a benchmark briefly to get its per-block power, solve the grid
// steady state, and print cell temperatures as shaded characters — the
// spatial-gradient picture the paper's Section 2 describes (hotspots
// from power-density variation across units).
//
// Usage: grid_heatmap [benchmark] [rows=24] [cols=48]
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "arch/core.h"
#include "floorplan/ev7.h"
#include "power/power_model.h"
#include "thermal/grid_model.h"
#include "util/units.h"
#include "thermal/solver.h"
#include "util/config.h"
#include "workload/spec_profiles.h"

using namespace hydra;

int main(int argc, char** argv) {
  std::string bench = "crafty";
  std::vector<std::string> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.find('=') == std::string::npos) {
      bench = arg;
    } else {
      overrides.push_back(arg);
    }
  }
  try {
    const util::Config cfg = util::Config::from_args(overrides);
    const auto rows = static_cast<std::size_t>(cfg.get_int("rows", 24));
    const auto cols = static_cast<std::size_t>(cfg.get_int("cols", 48));

    // Representative activity for the benchmark.
    const workload::WorkloadProfile profile =
        workload::spec2000_profile(bench);
    workload::SyntheticTrace trace(profile);
    arch::CoreConfig core_cfg;
    arch::Core core(core_cfg, trace);
    while (core.committed() < 300'000) core.cycle();
    core.take_interval_activity();
    while (core.committed() < 1'200'000) core.cycle();
    const arch::ActivityFrame frame = core.take_interval_activity();

    const floorplan::Floorplan fp = floorplan::ev7_floorplan();
    const power::PowerModel pm(fp, power::EnergyModel{});
    const thermal::Package pkg;
    const thermal::GridThermalModel grid(fp, pkg, {rows, cols});

    // Power <-> temperature fixed point on block temps.
    thermal::Vector node_t(grid.network().size(), 75.0);
    std::vector<double> watts;
    for (int it = 0; it < 10; ++it) {
      const thermal::Vector block_t = grid.block_temperatures(node_t);
      watts = pm.block_power(frame, util::Volts(1.3), util::Hertz(3.0e9),
                             block_t);
      node_t = thermal::steady_state(grid.network(),
                                     grid.expand_power(watts),
                                     util::Celsius(45.0));
    }

    double lo = 1e9;
    double hi = -1e9;
    for (std::size_t i = 0; i < grid.num_cells(); ++i) {
      lo = std::min(lo, node_t[i]);
      hi = std::max(hi, node_t[i]);
    }

    std::printf("== %s steady-state die heat map (%zux%zu cells) ==\n",
                bench.c_str(), rows, cols);
    std::printf("range: %.2f C (.) .. %.2f C (@)\n\n", lo, hi);
    static const char kShades[] = " .:-=+*#%@";
    for (std::size_t r = rows; r-- > 0;) {  // print top row first
      for (std::size_t c = 0; c < cols; ++c) {
        const double t = node_t[grid.cell_node(r, c)];
        const int idx = static_cast<int>((t - lo) / (hi - lo + 1e-9) * 9.0);
        std::putchar(kShades[idx]);
      }
      std::putchar('\n');
    }

    const thermal::Vector block_t = grid.block_temperatures(node_t);
    std::printf("\nhottest blocks:\n");
    std::vector<std::size_t> order(fp.size());
    for (std::size_t i = 0; i < fp.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return block_t[a] > block_t[b];
    });
    for (std::size_t i = 0; i < 5; ++i) {
      std::printf("  %-8s %6.2f C  (%.2f W)\n",
                  std::string(fp.block(order[i]).name).c_str(),
                  block_t[order[i]], watts[order[i]]);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
