// Export the time series of a DTM run (temperature, voltage, gating,
// power) as CSV for plotting — the raw material behind figures like the
// paper's temperature traces.
//
// Usage: dtm_trace_export [benchmark] [policy=hyb] [out=trace.csv]
//        [stride=10]
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "util/config.h"
#include "util/csv.h"

using namespace hydra;

namespace {

sim::PolicyKind parse_policy(const std::string& name) {
  if (name == "none") return sim::PolicyKind::kNone;
  if (name == "dvs") return sim::PolicyKind::kDvs;
  if (name == "fg") return sim::PolicyKind::kFetchGating;
  if (name == "clockgate") return sim::PolicyKind::kClockGating;
  if (name == "pi-hyb") return sim::PolicyKind::kPiHybrid;
  if (name == "hyb") return sim::PolicyKind::kHybrid;
  throw std::invalid_argument("unknown policy '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  std::string bench = "crafty";
  std::vector<std::string> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.find('=') == std::string::npos) {
      bench = arg;
    } else {
      overrides.push_back(arg);
    }
  }
  try {
    const util::Config args = util::Config::from_args(overrides);
    const std::string out_path = args.get_string("out", "trace.csv");
    const std::string policy = args.get_string("policy", "hyb");
    const auto stride = static_cast<int>(args.get_int("stride", 10));

    sim::SimConfig cfg = sim::default_sim_config();
    const workload::WorkloadProfile profile =
        workload::spec2000_profile(bench);
    sim::System system(profile, cfg,
                       sim::make_policy(parse_policy(policy), {}, cfg));

    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open '" << out_path << "'\n";
      return 1;
    }
    util::CsvWriter csv(out);
    csv.row({"time_us", "max_true_celsius", "voltage", "frequency_ghz",
             "gate_fraction", "clock_gated", "power_watts", "committed"});
    int counter = 0;
    long rows = 0;
    system.set_trace_callback([&](const sim::StepTrace& st) {
      if (counter++ % stride != 0) return;
      csv.row_numeric({st.time_seconds * 1e6, st.max_true_celsius,
                       st.voltage.value(), st.frequency.value() / 1e9, st.gate_fraction,
                       st.clock_gated ? 1.0 : 0.0, st.power_watts,
                       static_cast<double>(st.committed)});
      ++rows;
    });
    const sim::RunResult r = system.run();
    std::cout << "wrote " << rows << " samples of " << bench << " under "
              << r.policy << " to " << out_path << "\n"
              << "slowdown vs nominal clock: n/a (use hydra_run for paired "
                 "baselines)\n"
              << "max true temperature: " << r.max_true_celsius << " C, "
              << (r.thermally_safe() ? "no violations" : "VIOLATIONS")
              << '\n';
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
