// Compare every DTM policy on one benchmark: slowdown, thermal safety,
// and how each mechanism was exercised.
//
// Usage: policy_comparison [benchmark] [key=value ...]
//   e.g. policy_comparison gzip dvs_stall=false
#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "util/config.h"
#include "util/table.h"

using namespace hydra;

int main(int argc, char** argv) {
  std::string bench = "crafty";
  std::vector<std::string> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.find('=') == std::string::npos) {
      bench = arg;
    } else {
      overrides.push_back(arg);
    }
  }

  try {
    const util::Config o = util::Config::from_args(overrides);
    sim::SimConfig cfg = sim::default_sim_config();
    cfg.dvs_stall = o.get_bool("dvs_stall", cfg.dvs_stall);
    cfg.v_low_fraction = o.get_double("v_low_fraction", cfg.v_low_fraction);
    cfg.run_instructions = static_cast<std::uint64_t>(o.get_int(
        "run_instructions", static_cast<long long>(cfg.run_instructions)));

    const workload::WorkloadProfile profile =
        workload::spec2000_profile(bench);
    sim::ExperimentRunner runner(cfg);

    std::cout << "== hydra-dtm policy comparison: " << bench << " (DVS-"
              << (cfg.dvs_stall ? "stall" : "ideal") << ") ==\n";
    const sim::RunResult& base = runner.baseline(profile);
    std::cout << "baseline: IPC " << util::AsciiTable::num(base.ipc, 2)
              << ", Tmax "
              << util::AsciiTable::num(base.max_true_celsius, 2)
              << " C, above trigger "
              << util::AsciiTable::percent(base.above_trigger_fraction, 1)
              << ", violations "
              << util::AsciiTable::percent(base.violation_fraction, 1)
              << "\n\n";

    util::AsciiTable table;
    table.header({"policy", "slowdown", "Tmax[C]", "safe", "mean gate",
                  "time at Vlow", "DVS switches", "clock gated"});
    for (sim::PolicyKind kind :
         {sim::PolicyKind::kFetchGating, sim::PolicyKind::kClockGating,
          sim::PolicyKind::kDvs, sim::PolicyKind::kPiHybrid,
          sim::PolicyKind::kHybrid}) {
      const sim::ExperimentResult r = runner.run(profile, kind, {});
      table.row({sim::policy_kind_name(kind),
                 util::AsciiTable::num(r.slowdown, 4),
                 util::AsciiTable::num(r.dtm.max_true_celsius, 2),
                 r.dtm.thermally_safe() ? "yes" : "NO",
                 util::AsciiTable::percent(r.dtm.mean_gate_fraction, 1),
                 util::AsciiTable::percent(r.dtm.dvs_low_fraction, 1),
                 std::to_string(r.dtm.dvs_transitions),
                 util::AsciiTable::percent(r.dtm.clock_gated_fraction, 1)});
    }
    table.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
