// Calibration probe: per-benchmark baseline characterisation.
//
// Prints, for every SPEC2000-like profile, the no-DTM IPC, mean power,
// peak/steady temperatures and the hottest block — the quantities the
// paper's setup pins down (Section 3: all nine benchmarks above 81.8 C
// most of the time, integer register file hottest). Used to validate and
// tune the power-model calibration.
#include <iostream>

#include "sim/experiment.h"
#include "util/table.h"

using namespace hydra;

int main() {
  sim::SimConfig cfg = sim::default_sim_config();
  sim::ExperimentRunner runner(cfg);

  util::AsciiTable table;
  table.header({"benchmark", "IPC", "power[W]", "Tmax[C]", "hottest",
                "T_hot_mean[C]", ">81.8C", ">85C"});

  for (const auto& profile : workload::spec2000_hot_profiles()) {
    const sim::RunResult& r = runner.baseline(profile);
    table.row({profile.name, util::AsciiTable::num(r.ipc, 2),
               util::AsciiTable::num(r.mean_power_watts, 1),
               util::AsciiTable::num(r.max_true_celsius, 2), r.hottest_block,
               util::AsciiTable::num(r.hottest_mean_celsius, 2),
               util::AsciiTable::percent(r.above_trigger_fraction),
               util::AsciiTable::percent(r.violation_fraction)});
  }
  table.print(std::cout);
  return 0;
}
