#!/usr/bin/env sh
# Line-coverage gate: build with --coverage, run the full suite, and
# enforce a line floor over src/ (scripts/coverage_floor.py reads the
# gcov JSON directly, so the floor works with plain gcc+gcov). When
# lcov/genhtml are installed (CI does), also emit an HTML report to
# $BUILD/coverage-html for the artifact upload.
#
# Usage: scripts/coverage.sh [build-dir]
#   HYDRA_COVERAGE_FLOOR  minimum src/ line coverage percent (default 85;
#   the suite measured 94.8% when the floor was set, leaving headroom
#   for compiler-version line-count drift, not for untested subsystems)
set -eu

cd "$(dirname "$0")/.."

BUILD="${1:-build-coverage}"
FLOOR="${HYDRA_COVERAGE_FLOOR:-85}"

if command -v ninja >/dev/null 2>&1; then GEN="-G Ninja"; else GEN=""; fi

# shellcheck disable=SC2086  # $GEN is intentionally word-split
cmake -B "$BUILD" -S . $GEN \
  -DCMAKE_BUILD_TYPE=Debug -DHYDRA_COVERAGE=ON >/dev/null
cmake --build "$BUILD" -j "$(nproc)"

# Abbreviated workloads: coverage wants every line visited, not long
# steady-state loops, and -O0 instrumented binaries are slow.
HYDRA_RUN_INSTRUCTIONS="${HYDRA_RUN_INSTRUCTIONS:-60000}" \
HYDRA_WARMUP_INSTRUCTIONS="${HYDRA_WARMUP_INSTRUCTIONS:-20000}" \
  ctest --test-dir "$BUILD" -j "$(nproc)" --output-on-failure

python3 scripts/coverage_floor.py --build "$BUILD" --floor "$FLOOR"

if command -v lcov >/dev/null 2>&1 && command -v genhtml >/dev/null 2>&1; then
  lcov --capture --directory "$BUILD" --output-file "$BUILD/coverage.info" \
    --ignore-errors mismatch,negative,empty,unused --quiet
  lcov --extract "$BUILD/coverage.info" "*/src/*" \
    --output-file "$BUILD/coverage.src.info" \
    --ignore-errors empty,unused --quiet
  genhtml "$BUILD/coverage.src.info" --output-directory "$BUILD/coverage-html" \
    --title "hydra src/ line coverage" --quiet
  echo "HTML report: $BUILD/coverage-html/index.html"
else
  echo "lcov/genhtml not installed; skipping HTML report (floor already enforced)"
fi
