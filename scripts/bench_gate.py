#!/usr/bin/env python3
"""Performance gate: compare a fresh hydra_bench run against the
committed baseline and fail on regressions.

Two kinds of gate, matched to how noisy each metric is:

* Throughput metrics (solver steps/second) vary with the host, so they
  gate on a generous ratio band: the candidate must reach at least
  ``--throughput-floor`` (default 0.5) of the baseline.  CI machines are
  slower and noisier than the machine that recorded the baseline; the
  gate exists to catch algorithmic regressions (a dropped cache, an
  accidental O(n^2)), not scheduler jitter.
* Allocation-contract metrics (solver_allocs_per_step,
  system_allocs_per_run) are deterministic and gate exactly: any value
  above zero means a hot path started allocating and fails outright.
* suite_cache_misses is structural (one miss per distinct run key) and
  gates on exact equality with the baseline: a change means the engine's
  memoization keys changed shape.

* Warm-restart metrics (from the ext_cache_restart bench, passed via
  ``--restart``) gate on absolute contracts, no baseline needed: the
  warm hit rate must reach ``--restart-floor`` (default 0.999 — every
  point served from disk) and both restart passes must reproduce the
  cold results bit-identically.

Usage:
  bench_gate.py --baseline BENCH_baseline.json --candidate BENCH_engine.json
  bench_gate.py --baseline ... --candidate ... --restart BENCH_restart.json
  bench_gate.py --baseline ... --candidate ... --update   # refresh baseline
  bench_gate.py --self-test                               # gate the gate

``--self-test`` proves the gate can actually fail: it checks a synthetic
regressed candidate (halved throughput, nonzero allocs) is rejected and
an identical candidate is accepted, without touching any files.
"""

import argparse
import json
import shutil
import sys

THROUGHPUT_KEYS = [
    "solver_steps_per_second",
    "solver_fused_steps_per_second",
    # Lockstep panel throughput (lane-steps/second through the width-4
    # BatchedThermalState) — the batched twin of the fused solver number.
    "batched_lane_steps_per_second",
    # Many-core die throughput (aggregate core-cycles/second through an
    # 8-tile MulticoreSystem on a 1-thread tile pool, with migration and
    # the budget arbiter active) — guards the tiled interval loop.
    "multicore_core_steps_per_second",
    # End-to-end suite throughput (instructions retired per wall-second on
    # the 1-thread pass).  This is the metric the hot-loop overhaul is
    # gated on: it covers the bulk idle-skip, the issue-scan fast path and
    # the fused thermal step together, and is host-size independent.
    "suite_instr_per_second",
]
ZERO_KEYS = [
    "solver_allocs_per_step",
    "solver_fused_allocs_per_step",
    "system_allocs_per_run",
]
EXACT_KEYS = [
    "suite_cache_misses",
    # Sparse-dispatch configuration: the 16-core die bench must actually
    # run the sparse LDL^T path (sparse_path true), and the dense/sparse
    # crossover must stay at its committed value — a drift in either
    # means the multicore throughput number silently measures a
    # different engine than the baseline did.
    "sparse_path",
    "sparse_crossover_nodes",
]
# Informational only: wall times and speedup depend on the runner's core
# count and load, so they are printed but never gated.  idle_skip_fraction
# and the feature flags are printed so a gate log records which fast paths
# the candidate was measured with.
INFO_KEYS = [
    "suite_wall_seconds_1_thread",
    "suite_wall_seconds_n_threads",
    "threads",
    "hardware_concurrency",
    "idle_skip_fraction",
    "fused_be",
    "bulk_idle_skip",
    "simd_backend",
    "batched_sweep",
    "batch_width",
]

# The N-thread suite pass must actually go faster than the 1-thread
# pass — but only on hosts that have the cores to run it: a 2-thread
# pool on a 1-core runner time-slices and legitimately reports ~1.0x,
# so the check is skipped (not near-failed) when hardware_concurrency
# is below the pool width.
SPEEDUP_FLOOR = 1.1


def load(path):
    with open(path) as f:
        return json.load(f)


def check_restart(restart, restart_floor):
    """Gate the warm-restart contract (absolute, no baseline).

    Returns a list of failure strings (empty = gate passes).
    """
    failures = []
    rate = restart.get("restart_cache_hit_rate")
    if rate is None:
        failures.append("restart_cache_hit_rate: missing from restart bench")
    else:
        status = "ok" if rate >= restart_floor else "FAIL"
        print(f"  restart_cache_hit_rate: {rate:.3f} "
              f"(floor {restart_floor:.3f}) [{status}]")
        if rate < restart_floor:
            failures.append(
                f"restart_cache_hit_rate: {rate:.3f} below floor "
                f"{restart_floor:.3f} (warm restart recomputed work)")
    for key in ("restart_bit_identical", "corrupt_recovery_bit_identical"):
        val = restart.get(key)
        status = "ok" if val == 1 else "FAIL"
        print(f"  {key}: {val} (contract: 1) [{status}]")
        if val != 1:
            failures.append(f"{key}: {val} != 1 (restart changed results)")
    return failures


def compare(baseline, candidate, throughput_floor,
            require_live_speedup=False):
    """Return a list of failure strings (empty = gate passes)."""
    failures = []
    # suite_instr_per_second is only comparable when both runs simulated
    # the same per-run workload: a shortened smoke run spends most of its
    # wall time in warmup and would trip the floor spuriously.
    same_workload = (baseline.get("suite_run_instructions") ==
                     candidate.get("suite_run_instructions"))
    for key in THROUGHPUT_KEYS:
        if key == "suite_instr_per_second" and not same_workload:
            print(f"  {key}: skipped (suite_run_instructions "
                  f"{candidate.get('suite_run_instructions')} != baseline "
                  f"{baseline.get('suite_run_instructions')})")
            continue
        base = baseline.get(key)
        cand = candidate.get(key)
        if base is None or cand is None:
            failures.append(f"{key}: missing (baseline={base}, candidate={cand})")
            continue
        floor = throughput_floor * base
        status = "ok" if cand >= floor else "FAIL"
        print(f"  {key}: {cand:.0f} vs baseline {base:.0f} "
              f"(floor {floor:.0f}) [{status}]")
        if cand < floor:
            failures.append(
                f"{key}: {cand:.0f} below {throughput_floor:.2f}x baseline "
                f"({base:.0f})")
    for key in ZERO_KEYS:
        cand = candidate.get(key)
        if cand is None:
            failures.append(f"{key}: missing from candidate")
            continue
        status = "ok" if cand == 0 else "FAIL"
        print(f"  {key}: {cand} (contract: 0) [{status}]")
        if cand != 0:
            failures.append(f"{key}: {cand} != 0 (hot path allocates)")
    for key in EXACT_KEYS:
        base = baseline.get(key)
        cand = candidate.get(key)
        status = "ok" if cand == base else "FAIL"
        print(f"  {key}: {cand} vs baseline {base} [{status}]")
        if cand != base:
            failures.append(f"{key}: {cand} != baseline {base}")
    # Parallel speedup: gated only when the host has at least as many
    # hardware threads as the N-thread pool asked for.  A skipped check
    # is normally fine (a 1-core dev box), but with
    # require_live_speedup the skip itself fails: CI runners are
    # provisioned with enough cores, so a skip there means the speedup
    # gate has silently gone dead — exactly the state the committed
    # `speedup: 0.88` baseline once hid.
    speedup = candidate.get("speedup")
    threads = candidate.get("threads", 1)
    cores = candidate.get("hardware_concurrency", 0)
    if speedup is None or threads <= 1:
        if require_live_speedup:
            failures.append(
                f"speedup: check not live (speedup={speedup}, "
                f"threads={threads}) but --require-live-speedup set")
    else:
        if cores < threads:
            print(f"  speedup: {speedup:.2f}x skipped "
                  f"({cores} hardware threads < {threads} pool threads)")
            if require_live_speedup:
                failures.append(
                    f"speedup: check skipped on a starved host ({cores} "
                    f"hardware threads < {threads} pool threads) but "
                    f"--require-live-speedup set")
        else:
            status = "ok" if speedup >= SPEEDUP_FLOOR else "FAIL"
            print(f"  speedup: {speedup:.2f}x at {threads} threads "
                  f"(floor {SPEEDUP_FLOOR:.2f}x) [{status}]")
            if speedup < SPEEDUP_FLOOR:
                failures.append(
                    f"speedup: {speedup:.2f}x below {SPEEDUP_FLOOR:.2f}x "
                    f"with {cores} hardware threads available")
    for key in INFO_KEYS:
        if key in candidate:
            print(f"  {key}: {candidate[key]} (informational)")
    return failures


def self_test(throughput_floor):
    baseline = {
        "solver_steps_per_second": 900000.0,
        "solver_fused_steps_per_second": 1100000.0,
        "batched_lane_steps_per_second": 4000000.0,
        "multicore_core_steps_per_second": 600000.0,
        "suite_instr_per_second": 900000.0,
        "solver_allocs_per_step": 0,
        "solver_fused_allocs_per_step": 0,
        "system_allocs_per_run": 0,
        "suite_cache_misses": 18,
        "sparse_path": True,
        "sparse_crossover_nodes": 64,
    }
    print("self-test: identical candidate must pass")
    if compare(baseline, dict(baseline), throughput_floor):
        print("self-test FAILED: identical candidate was rejected")
        return 1
    regressed = dict(baseline)
    regressed["solver_steps_per_second"] = (
        baseline["solver_steps_per_second"] * throughput_floor * 0.5)
    regressed["suite_instr_per_second"] = (
        baseline["suite_instr_per_second"] * throughput_floor * 0.5)
    regressed["batched_lane_steps_per_second"] = (
        baseline["batched_lane_steps_per_second"] * throughput_floor * 0.5)
    regressed["multicore_core_steps_per_second"] = (
        baseline["multicore_core_steps_per_second"] * throughput_floor * 0.5)
    regressed["system_allocs_per_run"] = 3
    regressed["solver_fused_allocs_per_step"] = 1
    print("self-test: regressed candidate must fail")
    failures = compare(baseline, regressed, throughput_floor)
    expected = {
        "solver_steps_per_second",
        "batched_lane_steps_per_second",
        "multicore_core_steps_per_second",
        "suite_instr_per_second",
        "system_allocs_per_run",
        "solver_fused_allocs_per_step",
    }
    caught = {f.split(":")[0] for f in failures}
    if not expected <= caught:
        print(f"self-test FAILED: caught {caught}, expected {expected}")
        return 1
    print("self-test: shortened smoke run must not trip the suite floor")
    short = dict(baseline)
    short["suite_run_instructions"] = 40000
    short["suite_instr_per_second"] = 1.0  # warmup-dominated, incomparable
    base_full = dict(baseline)
    base_full["suite_run_instructions"] = 400000
    if compare(base_full, short, throughput_floor):
        print("self-test FAILED: mismatched-workload candidate rejected")
        return 1
    print("self-test: flat speedup on a starved host must be skipped")
    starved = dict(baseline)
    starved.update(threads=2, hardware_concurrency=1, speedup=1.0)
    if compare(baseline, starved, throughput_floor):
        print("self-test FAILED: core-starved speedup was gated")
        return 1
    print("self-test: flat speedup with cores available must fail")
    flat = dict(baseline)
    flat.update(threads=2, hardware_concurrency=8, speedup=0.9)
    if "speedup" not in {f.split(":")[0]
                         for f in compare(baseline, flat, throughput_floor)}:
        print("self-test FAILED: flat speedup with spare cores passed")
        return 1
    print("self-test: a dead speedup check must fail under "
          "--require-live-speedup")
    for dead in (dict(baseline),  # no speedup/threads keys at all
                 dict(starved)):  # skipped: starved host
        caught = {f.split(":")[0]
                  for f in compare(baseline, dead, throughput_floor,
                                   require_live_speedup=True)}
        if "speedup" not in caught:
            print("self-test FAILED: dead speedup check passed under "
                  "--require-live-speedup")
            return 1
    print("self-test: a live passing speedup must satisfy "
          "--require-live-speedup")
    live = dict(baseline)
    live.update(threads=2, hardware_concurrency=8, speedup=1.8)
    if compare(baseline, live, throughput_floor, require_live_speedup=True):
        print("self-test FAILED: live speedup rejected under "
              "--require-live-speedup")
        return 1
    print("self-test: a flipped sparse path must fail")
    densified = dict(baseline)
    densified["sparse_path"] = False
    if "sparse_path" not in {
            f.split(":")[0]
            for f in compare(baseline, densified, throughput_floor)}:
        print("self-test FAILED: flipped sparse_path passed")
        return 1
    print("self-test: a drifted sparse crossover must fail")
    drifted = dict(baseline)
    drifted["sparse_crossover_nodes"] = 512
    if "sparse_crossover_nodes" not in {
            f.split(":")[0]
            for f in compare(baseline, drifted, throughput_floor)}:
        print("self-test FAILED: drifted sparse_crossover_nodes passed")
        return 1
    restart_ok = {
        "restart_cache_hit_rate": 1.0,
        "restart_bit_identical": 1,
        "corrupt_recovery_bit_identical": 1,
    }
    print("self-test: healthy restart bench must pass")
    if check_restart(restart_ok, 0.999):
        print("self-test FAILED: healthy restart bench was rejected")
        return 1
    print("self-test: cold restart / changed results must fail")
    restart_bad = {
        "restart_cache_hit_rate": 0.5,
        "restart_bit_identical": 0,
        "corrupt_recovery_bit_identical": 1,
    }
    restart_failures = check_restart(restart_bad, 0.999)
    restart_caught = {f.split(":")[0] for f in restart_failures}
    restart_expected = {"restart_cache_hit_rate", "restart_bit_identical"}
    if not restart_expected <= restart_caught:
        print(f"self-test FAILED: caught {restart_caught}, "
              f"expected {restart_expected}")
        return 1
    print("self-test passed: gate rejects injected regressions")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", help="committed BENCH_baseline.json")
    ap.add_argument("--candidate", help="fresh BENCH_engine.json")
    ap.add_argument("--throughput-floor", type=float, default=0.5,
                    help="minimum candidate/baseline throughput ratio")
    ap.add_argument("--restart", help="BENCH_restart.json from the "
                    "ext_cache_restart bench (optional)")
    ap.add_argument("--restart-floor", type=float, default=0.999,
                    help="minimum warm-restart cache hit rate")
    ap.add_argument("--require-live-speedup", action="store_true",
                    help="fail if the parallel-speedup check is skipped "
                    "(starved or single-threaded run) instead of passing "
                    "silently — use in CI, where cores are guaranteed")
    ap.add_argument("--update", action="store_true",
                    help="copy candidate over baseline instead of gating")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate fails on a synthetic regression")
    args = ap.parse_args()

    if args.self_test:
        return self_test(args.throughput_floor)
    if not args.baseline or not args.candidate:
        ap.error("--baseline and --candidate are required (or --self-test)")
    if args.update:
        shutil.copyfile(args.candidate, args.baseline)
        print(f"baseline updated from {args.candidate}")
        return 0

    print(f"bench gate: {args.candidate} vs {args.baseline}")
    failures = compare(load(args.baseline), load(args.candidate),
                       args.throughput_floor,
                       require_live_speedup=args.require_live_speedup)
    if args.restart:
        print(f"restart gate: {args.restart}")
        failures += check_restart(load(args.restart), args.restart_floor)
    if failures:
        print("bench gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
