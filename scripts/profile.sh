#!/usr/bin/env sh
# Profile the simulator's hot loop and emit a per-function hot-spot table.
#
# Builds a Release binary with frame pointers kept (so call stacks unwind
# cheaply), runs a representative single-core DTM simulation, and writes
# a flat per-function profile to $HYDRA_PROFILE_DIR/hotspots.txt. This is
# the table the hot-loop work in DESIGN.md §12 was driven by: before
# touching a line, check that the line is actually hot.
#
# Profiler selection, best first, by what the host has installed:
#   * perf       — sampling profiler, lowest distortion; needs kernel
#                  perf_event access (perf_event_paranoid <= 2 or root).
#   * cachegrind — valgrind instrumentation; slow but needs no kernel
#                  support, also yields cache-miss counts.
#   * gprof      — -pg instrumented build; always available with gcc.
#
# Usage: scripts/profile.sh [benchmark] [policy]
#   (defaults: gzip hyb; HYDRA_RUN_INSTRUCTIONS / HYDRA_WARMUP_INSTRUCTIONS
#    shorten or lengthen the profiled run.)
#
# The script is best-effort by design — CI runs it in a never-failing
# optional job — but it still exits nonzero if no profiler produced a
# table, so local misconfiguration is visible.
set -eu

cd "$(dirname "$0")/.."
REPO_ROOT="$(pwd)"

BENCHMARK="${1:-gzip}"
POLICY="${2:-hyb}"
OUT_DIR="${HYDRA_PROFILE_DIR:-profile-out}"
RUN_INSTRUCTIONS="${HYDRA_RUN_INSTRUCTIONS:-2000000}"
WARMUP_INSTRUCTIONS="${HYDRA_WARMUP_INSTRUCTIONS:-200000}"

mkdir -p "$OUT_DIR"
HOTSPOTS="$OUT_DIR/hotspots.txt"

run_args="benchmark=$BENCHMARK policy=$POLICY \
run_instructions=$RUN_INSTRUCTIONS warmup_instructions=$WARMUP_INSTRUCTIONS"

build() {
  # $1 = build dir, $2 = extra CXX flags.
  cmake -B "$1" -S . -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS="$2" >/dev/null
  cmake --build "$1" -j "$(nproc)" --target hydra_run >/dev/null
}

header() {
  {
    echo "hydra hot-spot profile"
    echo "  profiler:  $1"
    echo "  workload:  $BENCHMARK / $POLICY ($RUN_INSTRUCTIONS instructions)"
    echo "  host:      $(uname -sr), $(nproc) cpus"
    echo
  } > "$HOTSPOTS"
}

# perf needs both the binary and permission to open perf events; probe
# with a trivial counting run before committing to the instrumented build.
if command -v perf >/dev/null 2>&1 && perf stat -e task-clock true \
    >/dev/null 2>&1; then
  echo "== profiling with perf =="
  build build-profile "-fno-omit-frame-pointer -g"
  perf record -g --call-graph fp -o "$OUT_DIR/perf.data" -- \
    ./build-profile/tools/hydra_run $run_args >/dev/null
  header perf
  perf report --stdio --no-children --percent-limit 0.5 \
    -i "$OUT_DIR/perf.data" >> "$HOTSPOTS"
elif command -v valgrind >/dev/null 2>&1; then
  echo "== profiling with cachegrind =="
  build build-profile "-fno-omit-frame-pointer -g"
  valgrind --tool=cachegrind \
    --cachegrind-out-file="$OUT_DIR/cachegrind.out" \
    ./build-profile/tools/hydra_run $run_args >/dev/null
  header cachegrind
  if command -v cg_annotate >/dev/null 2>&1; then
    cg_annotate "$OUT_DIR/cachegrind.out" >> "$HOTSPOTS"
  else
    echo "(cg_annotate unavailable; raw output in cachegrind.out)" \
      >> "$HOTSPOTS"
  fi
elif command -v gprof >/dev/null 2>&1; then
  echo "== profiling with gprof =="
  build build-profile-pg "-fno-omit-frame-pointer -g -pg"
  # gmon.out lands in the working directory of the profiled process.
  (cd "$OUT_DIR" &&
    "$REPO_ROOT/build-profile-pg/tools/hydra_run" $run_args >/dev/null)
  header gprof
  gprof -b -p ./build-profile-pg/tools/hydra_run "$OUT_DIR/gmon.out" \
    >> "$HOTSPOTS"
else
  echo "profile.sh: no profiler found (tried perf, valgrind, gprof)" >&2
  exit 1
fi

echo "== top of $HOTSPOTS =="
head -n 30 "$HOTSPOTS"
echo "(full table in $HOTSPOTS)"
