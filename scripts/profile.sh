#!/usr/bin/env sh
# Profile the simulator's hot loop and emit a per-function hot-spot table.
#
# Builds a Release binary with frame pointers kept (so call stacks unwind
# cheaply), runs a representative single-core DTM simulation, and writes
# a flat per-function profile to $HYDRA_PROFILE_DIR/hotspots.txt. This is
# the table the hot-loop work in DESIGN.md §12 was driven by: before
# touching a line, check that the line is actually hot.
#
# Profiler selection, best first, by what the host has installed:
#   * perf       — sampling profiler, lowest distortion; needs kernel
#                  perf_event access (perf_event_paranoid <= 2 or root).
#   * cachegrind — valgrind instrumentation; slow but needs no kernel
#                  support, also yields cache-miss counts.
#   * gprof      — -pg instrumented build; always available with gcc.
#
# Usage: scripts/profile.sh [benchmark] [policy]
#        scripts/profile.sh --bench <target> [benchmark-args...]
#   (defaults: gzip hyb; HYDRA_RUN_INSTRUCTIONS / HYDRA_WARMUP_INSTRUCTIONS
#    shorten or lengthen the profiled run.)
#
# --bench profiles a microbenchmark binary (e.g. micro_perf) instead of
# the end-to-end hydra_run simulation; remaining arguments go straight to
# the benchmark, so `scripts/profile.sh --bench micro_perf
# --benchmark_filter=BM_ThermalFusedStepSimd` isolates one kernel.
# The sparse-path kernels profile the same way:
#   scripts/profile.sh --bench micro_perf --benchmark_filter=BM_SparseStep
#   scripts/profile.sh --bench micro_perf \
#     '--benchmark_filter=BM_SparseCholeskyFactor|BM_DieStep'
# (BM_DieStep runs both the dense and sparse leg at each die size, so one
# profile shows the crossover's two sides back to back.)
#
# The script is best-effort by design — CI runs it in a never-failing
# optional job — but it still exits nonzero if no profiler produced a
# table, so local misconfiguration is visible.
set -eu

cd "$(dirname "$0")/.."
REPO_ROOT="$(pwd)"

TARGET=hydra_run
BENCH_MODE=0
if [ "${1:-}" = "--bench" ]; then
  if [ -z "${2:-}" ]; then
    echo "profile.sh: --bench needs a target (e.g. micro_perf)" >&2
    exit 1
  fi
  TARGET="$2"
  BENCH_MODE=1
  shift 2
fi

OUT_DIR="${HYDRA_PROFILE_DIR:-profile-out}"
RUN_INSTRUCTIONS="${HYDRA_RUN_INSTRUCTIONS:-2000000}"
WARMUP_INSTRUCTIONS="${HYDRA_WARMUP_INSTRUCTIONS:-200000}"

if [ "$BENCH_MODE" = 1 ]; then
  # Default to a long-enough measurement for a stable profile; any
  # explicit benchmark args replace it wholesale.
  if [ "$#" -gt 0 ]; then
    run_args="$*"
  else
    run_args="--benchmark_min_time=0.5"
  fi
  WORKLOAD="$TARGET $run_args"
else
  BENCHMARK="${1:-gzip}"
  POLICY="${2:-hyb}"
  run_args="benchmark=$BENCHMARK policy=$POLICY \
run_instructions=$RUN_INSTRUCTIONS warmup_instructions=$WARMUP_INSTRUCTIONS"
  WORKLOAD="$BENCHMARK / $POLICY ($RUN_INSTRUCTIONS instructions)"
fi

mkdir -p "$OUT_DIR"
HOTSPOTS="$OUT_DIR/hotspots.txt"

build() {
  # $1 = build dir, $2 = extra CXX flags.
  cmake -B "$1" -S . -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS="$2" >/dev/null
  cmake --build "$1" -j "$(nproc)" --target "$TARGET" >/dev/null
}

# The built binary's path inside a build tree (hydra_run/hydra_bench live
# under tools/, the microbenches under bench/).
bin_path() {
  find "$1" -type f -name "$TARGET" -perm -u+x | head -n 1
}

header() {
  {
    echo "hydra hot-spot profile"
    echo "  profiler:  $1"
    echo "  workload:  $WORKLOAD"
    echo "  host:      $(uname -sr), $(nproc) cpus"
    echo
  } > "$HOTSPOTS"
}

# perf needs both the binary and permission to open perf events; probe
# with a trivial counting run before committing to the instrumented
# build, and say exactly why the kernel refused when it does — a bare
# "Permission denied" from perf record wastes everyone's first hour.
PERF_OK=0
if command -v perf >/dev/null 2>&1; then
  if perf stat -e task-clock true >/dev/null 2>&1; then
    PERF_OK=1
  else
    PARANOID="$(cat /proc/sys/kernel/perf_event_paranoid 2>/dev/null ||
      echo unknown)"
    echo "profile.sh: perf is installed but cannot open perf events" >&2
    echo "  kernel.perf_event_paranoid is $PARANOID (need <= 2, or root)" >&2
    echo "  fix: sudo sysctl kernel.perf_event_paranoid=1" >&2
    echo "  falling back to valgrind/gprof" >&2
  fi
fi

if [ "$PERF_OK" = 1 ]; then
  echo "== profiling with perf =="
  build build-profile "-fno-omit-frame-pointer -g"
  BIN="$(bin_path build-profile)"
  perf record -g --call-graph fp -o "$OUT_DIR/perf.data" -- \
    "$BIN" $run_args >/dev/null
  header perf
  perf report --stdio --no-children --percent-limit 0.5 \
    -i "$OUT_DIR/perf.data" >> "$HOTSPOTS"
elif command -v valgrind >/dev/null 2>&1; then
  echo "== profiling with cachegrind =="
  build build-profile "-fno-omit-frame-pointer -g"
  BIN="$(bin_path build-profile)"
  valgrind --tool=cachegrind \
    --cachegrind-out-file="$OUT_DIR/cachegrind.out" \
    "$BIN" $run_args >/dev/null
  header cachegrind
  if command -v cg_annotate >/dev/null 2>&1; then
    cg_annotate "$OUT_DIR/cachegrind.out" >> "$HOTSPOTS"
  else
    echo "(cg_annotate unavailable; raw output in cachegrind.out)" \
      >> "$HOTSPOTS"
  fi
elif command -v gprof >/dev/null 2>&1; then
  echo "== profiling with gprof =="
  build build-profile-pg "-fno-omit-frame-pointer -g -pg"
  BIN="$(bin_path build-profile-pg)"
  # gmon.out lands in the working directory of the profiled process.
  (cd "$OUT_DIR" && "$REPO_ROOT/$BIN" $run_args >/dev/null)
  header gprof
  gprof -b -p "$BIN" "$OUT_DIR/gmon.out" >> "$HOTSPOTS"
else
  echo "profile.sh: no profiler found (tried perf, valgrind, gprof)" >&2
  exit 1
fi

echo "== top of $HOTSPOTS =="
head -n 30 "$HOTSPOTS"
echo "(full table in $HOTSPOTS)"
