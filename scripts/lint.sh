#!/usr/bin/env sh
# Static analysis: clang-tidy over the tidy-clean subset, plus the
# repo's own hydra_lint.py rules over everything.
#
# clang-tidy enforcement now covers all of src/ (the incremental
# TIDY_PATHS ramp is complete); hydra_lint.py likewise runs on the full
# tree with its allowlist.
#
# clang-tidy needs a compilation database; configure with
#   cmake -B build -S .
# (CMAKE_EXPORT_COMPILE_COMMANDS is ON in the top-level CMakeLists) and
# point your editor's clangd at build/compile_commands.json too.
#
# Usage: scripts/lint.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

TIDY_PATHS="src"

echo "== hydra_lint =="
python3 scripts/hydra_lint.py --self-test
python3 scripts/hydra_lint.py

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "lint: $CLANG_TIDY not found; skipping clang-tidy" >&2
  exit 0
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "lint: $BUILD_DIR/compile_commands.json missing; run cmake -B $BUILD_DIR -S . first" >&2
  exit 1
fi

files=""
for path in $TIDY_PATHS; do
  if [ -d "$path" ]; then
    files="$files $(find "$path" -name '*.cc')"
  elif [ -f "$path" ]; then
    files="$files $path"
  fi
done

echo "== clang-tidy =="
# shellcheck disable=SC2086
"$CLANG_TIDY" -p "$BUILD_DIR" --quiet $files
echo "lint: clean"
