#!/usr/bin/env python3
"""hydra-lint: repo-specific static rules that clang-tidy cannot express.

Rules (each has a stable id used in the allowlist):

* ``unit-suffix`` — a ``double`` member or default-valued parameter whose
  name suggests a physical quantity (temperature, power, time, voltage,
  frequency, energy, rate, ...) must either carry an explicit unit
  suffix (``_celsius``, ``_watts``, ``_seconds``, ``_m``, ``_hz``, ...)
  or use a dimensional strong type from util/units.h.  Bare physical
  doubles are how unit bugs are written.
* ``no-ambient-rng`` — ``rand()``, ``srand()``, ``time(`` and
  ``std::random_device`` are banned in src/: every run must be
  reproducible from explicit util::Rng seeds.
* ``util-no-obs`` — src/util is the dependency root and must not
  include the observability layer (src/obs), which sits above it.
* ``no-naked-kelvin`` — the 273.15 (or ``+ 273``/``- 273``) Kelvin
  offset may appear only in util/units.h; everyone else converts via
  ``celsius_to_kelvin``/``kelvin_to_celsius`` or Celsius::kelvin().
* ``no-per-cycle-loop`` — looping over ``idle_cycle()`` outside the
  core itself reintroduces the O(n) idle path that
  ``Core::idle_cycles(n)`` replaced; call the bulk advance instead.
  (System keeps one reference loop for the bit-identity check — it is
  allowlisted.)
* ``no-unaligned-simd-load`` — raw vector load/store intrinsics
  (``_mm256_loadu_pd``, ``vld1q_f64``, ...) may appear only inside the
  ``src/thermal/simd`` shim.  The shim centralises runtime dispatch, the
  scalar twin, and the unaligned-vs-aligned tradeoff (plain std::vector
  storage keeps the benches' allocation counters honest); an intrinsic
  anywhere else forks that contract.
* ``no-bare-catch`` — a ``catch (...)`` handler in src/ must either
  propagate the exception (``throw;``, ``std::current_exception`` into
  a promise/``rethrow_exception``) or visibly record it (an obs counter
  or failure hook).  Silently swallowing an unknown exception is how a
  fault-tolerant engine turns a bug into a wrong number.  The
  supervision layer's legitimate containment sites are allowlisted by
  file path.
* ``no-raw-mutex`` — the std lock vocabulary (``std::mutex``,
  ``std::shared_mutex``, ``std::condition_variable``,
  ``std::scoped_lock``, ``std::unique_lock``, ...) is banned in src/
  outside ``src/util/``: every mutex-owning type must use the annotated
  capability wrappers from util/sync.h (util::Mutex, util::LockGuard,
  util::CondVar, ...) so Clang Thread Safety Analysis sees the whole
  lock protocol (DESIGN.md §16).  ``std::once_flag``/``call_once`` are
  not lock types and stay legal.
* ``no-unordered-result-iteration`` — iterating a
  ``std::unordered_map``/``unordered_set`` (range-for or ``.begin()``)
  is hash-order, which varies across standard libraries and pointer
  layouts: feeding it into a RunResult, a hash key, or a serialized
  artifact is the classic silent determinism killer.  Iterate a sorted
  view, key by submission order, or allowlist the site with a written
  argument for order-invariance.

False positives are silenced in ``scripts/hydra_lint_allow.txt``, one
``<rule-id> <path>:<identifier-or-token>`` per line (``#`` comments).
Keep it short — an allowlist entry is a claim that the flagged code is
deliberate (usually a hot-path kernel documented in DESIGN.md §11).
Every entry must still match a finding: a stale entry — left behind
after the code it excused was fixed or deleted — is itself an error, so
the list can only shrink unless a new justified exception is written.

Usage:
  hydra_lint.py                 # lint src/ (and headers in tools/bench)
  hydra_lint.py --self-test     # prove each rule rejects a seeded violation
"""

import argparse
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
ALLOWLIST = REPO / "scripts" / "hydra_lint_allow.txt"

# Names that suggest a physical quantity.  Deliberately matched on word
# fragments: `horizon`, `sample_rate`, `switch_time` all trip.
PHYSICAL_WORDS = re.compile(
    r"(temp|celsius|kelvin|watt|power_|_power|energy|joule|volt|freq|"
    r"hertz|_time|time_|duration|period|horizon|latency|_rate|rate_|"
    r"slope|thickness|width_|height_|_width|_height|side_|area|"
    r"resistance|conductance|capacitance)",
    re.IGNORECASE)

# A unit-bearing name: trailing unit suffix, a per-unit name, or a
# dimensionless ratio/fraction/scale/alpha/count.
UNIT_SUFFIX = re.compile(
    r"(_celsius|_kelvin|_c|_k|_watts|_w|_joules|_j|_seconds|_s|_us|_ms|"
    r"_ns|_hz|_ghz|_volts|_v|_m|_mm|_um|_m2|_mm2|_per_\w+|_fraction|"
    r"_ratio|_scale|_alpha|_factor|_cycles|_samples|_count|_index)_?$"
    r"|^(watts|joules|volts|hertz|seconds|celsius|kelvin)_?$")

# Strong types whose presence satisfies the unit rule on a declaration.
TYPED = re.compile(
    r"\b(util::)?(Celsius|CelsiusDelta|CelsiusPerSecond|PerCelsius|"
    r"PerCelsiusSecond|Seconds|Hertz|Watts|Joules|Volts|KelvinPerWatt|"
    r"WattsPerKelvin|JoulesPerKelvin|Quantity<)")

# `double name{...};` / `double name = ...;` members and parameters.
DOUBLE_DECL = re.compile(r"\bdouble\s+(\w+)\s*(?:=|\{|;)")

AMBIENT_RNG = re.compile(r"\b(std::)?(rand|srand)\s*\(|"
                         r"\bstd::random_device\b|[^_\w\.]time\s*\(")

KELVIN_LITERAL = re.compile(r"273\.15|[-+]\s*273(?:\.0*)?\b")

# A call to the per-cycle idle advance (idle_cycles, the bulk form, has
# an `s` and deliberately does not match).
IDLE_CYCLE_CALL = re.compile(r"\bidle_cycle\s*\(")
LOOP_HEADER = re.compile(r"\b(for|while)\s*\(")

# Raw x86/NEON vector load/store intrinsics; legal only in the
# src/thermal/simd shim, which owns dispatch and the bit-identity twin.
SIMD_LOAD_STORE = re.compile(
    r"\b_mm\d*_(?:loadu|load|storeu|store|stream)_\w+\s*\(|"
    r"\bvld\dq?_\w+\s*\(|\bvst\dq?_\w+\s*\(")

BARE_CATCH = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)")
# Tokens that make a catch-all handler acceptable: it either rethrows,
# forwards the exception object, or records the event.
CATCH_PROPAGATES = re.compile(
    r"\bthrow\b|rethrow_exception|current_exception|\bobs::|\.add\s*\(")

# The raw std lock vocabulary. Legal only inside src/util (where
# util/sync.h wraps it with capability annotations); everyone else must
# hold locks the analysis can see. once_flag/call_once are not listed:
# they are not lock types and carry no capability.
RAW_MUTEX = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|scoped_lock|unique_lock|shared_lock)\b")

# Unordered-container declarations; the declared name is recovered by
# balancing the template angle brackets (see unordered_names).
UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")
# Hash-order iteration over a known unordered name.
RANGE_FOR = re.compile(r"\bfor\s*\([^();]*?:\s*(\w+)\s*\)")
BEGIN_CALL = re.compile(r"\b(\w+)\s*\.\s*c?begin\s*\(")


def unordered_names(text):
    """Names declared in `text` with an unordered container type."""
    names = set()
    for m in UNORDERED_DECL.finditer(text):
        i = m.end() - 1  # at the opening '<'
        depth = 0
        while i < len(text):
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        else:
            continue
        dm = re.match(r"\s*(\w+)", text[i + 1:])
        if dm:
            names.add(dm.group(1))
    return names


def bare_catch_findings(text, rel, allow):
    """Findings for catch (...) handlers that swallow silently."""
    findings = []
    for m in BARE_CATCH.finditer(text):
        brace = text.find("{", m.end())
        if brace < 0:
            continue
        depth = 0
        end = brace
        for i in range(brace, len(text)):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        body = text[brace:end + 1]
        if CATCH_PROPAGATES.search(body):
            continue
        if ("no-bare-catch", rel) in allow:
            continue
        lineno = text.count("\n", 0, m.start()) + 1
        findings.append((
            "no-bare-catch", f"{rel}:{lineno}",
            "catch (...) swallows without rethrowing or recording; "
            "propagate, count via obs, or allowlist this containment "
            "site"))
    return findings


class Allowlist:
    """Allowlist entries plus a record of which ones actually fired.

    Quacks like the plain set the rule checks test membership against,
    but remembers every hit so stale entries — lines whose finding no
    longer exists — can be reported as errors after the run.
    """

    def __init__(self, entries):
        self.entries = set(entries)
        self.used = set()

    def __contains__(self, key):
        if key in self.entries:
            self.used.add(key)
            return True
        return False

    def stale(self):
        return self.entries - self.used


def load_allowlist(path=ALLOWLIST):
    allow = set()
    if path.exists():
        for line in path.read_text().splitlines():
            line = line.split("#", 1)[0].strip()
            if line:
                rule, _, key = line.partition(" ")
                allow.add((rule, key.strip()))
    return allow


def strip_comments(text):
    """Remove // and /* */ comments and string literals, keeping line
    structure so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    state = None  # None | "line" | "block" | "str" | "chr"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                i += 2
                continue
            if c == "\n":
                out.append(c)
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                i += 2
                continue
            if c == quote:
                state = None
                out.append(c)
            elif c == "\n":  # unterminated; bail to default
                state = None
                out.append(c)
            i += 1
            continue
        i += 1
    return "".join(out)


def lint_file(path, rel, allow):
    """Return a list of (rule, location, message) findings for one file."""
    findings = []
    raw = path.read_text(errors="replace")
    text = strip_comments(raw)
    lines = text.splitlines()
    # Include paths are string literals, which strip_comments blanks;
    # check them on the raw lines (anchored, so comments can't trip it).
    raw_lines = raw.splitlines()

    in_units_h = rel.endswith("util/units.h")
    in_util = rel.startswith("src/util/")
    in_src = rel.startswith("src/")

    if in_src:
        findings.extend(bare_catch_findings(text, rel, allow))

    # Unordered names visible to this file: its own declarations plus the
    # sibling of the header/source pair (members declared in the .h are
    # iterated from the .cc).
    iter_names = unordered_names(text)
    sibling = path.with_suffix(".h" if path.suffix == ".cc" else ".cc")
    if sibling.is_file():
        iter_names |= unordered_names(strip_comments(
            sibling.read_text(errors="replace")))

    for lineno, line in enumerate(lines, 1):
        where = f"{rel}:{lineno}"

        if in_src and not in_units_h:
            m = KELVIN_LITERAL.search(line)
            if m and ("no-naked-kelvin", rel) not in allow:
                findings.append((
                    "no-naked-kelvin", where,
                    f"Kelvin offset literal '{m.group(0).strip()}' outside "
                    "util/units.h; use celsius_to_kelvin()/.kelvin()"))

        if in_src and not rel.startswith("src/arch/core"):
            # Loop header on the same line or within the two preceding
            # lines (covers the usual brace styles without a real parse).
            if IDLE_CYCLE_CALL.search(line):
                context = lines[max(0, lineno - 3):lineno]
                if (any(LOOP_HEADER.search(l) for l in context)
                        and ("no-per-cycle-loop", rel) not in allow):
                    findings.append((
                        "no-per-cycle-loop", where,
                        "loop over idle_cycle(); use the O(1) "
                        "Core::idle_cycles(n) bulk advance"))

        if in_src and not rel.startswith("src/thermal/simd"):
            m = SIMD_LOAD_STORE.search(line)
            if m and ("no-unaligned-simd-load", rel) not in allow:
                findings.append((
                    "no-unaligned-simd-load", where,
                    f"raw vector intrinsic '{m.group(0).strip('( ')}' "
                    "outside src/thermal/simd; route kernels through the "
                    "thermal::simd shim (dispatch + scalar twin live "
                    "there)"))

        if in_src:
            m = AMBIENT_RNG.search(line)
            if m and ("no-ambient-rng", rel) not in allow:
                findings.append((
                    "no-ambient-rng", where,
                    "ambient randomness/time source; runs must be "
                    "reproducible from util::Rng seeds"))

        if in_src and not in_util:
            m = RAW_MUTEX.search(line)
            if m and ("no-raw-mutex", rel) not in allow:
                findings.append((
                    "no-raw-mutex", where,
                    f"raw '{m.group(0)}' outside src/util; use the "
                    "annotated util::Mutex/LockGuard/CondVar wrappers "
                    "from util/sync.h so thread-safety analysis sees "
                    "the lock"))

        if in_src:
            hits = {m.group(1) for m in RANGE_FOR.finditer(line)}
            hits |= {m.group(1) for m in BEGIN_CALL.finditer(line)}
            for name in sorted(hits & iter_names):
                if ("no-unordered-result-iteration", rel) in allow:
                    continue
                findings.append((
                    "no-unordered-result-iteration", where,
                    f"iterating unordered container '{name}' is "
                    "hash-order — nondeterministic across stdlibs; sort "
                    "first, key by submission order, or allowlist with "
                    "an order-invariance argument"))

        if in_util and lineno <= len(raw_lines):
            if re.match(r'\s*#\s*include\s+"obs/', raw_lines[lineno - 1]):
                findings.append((
                    "util-no-obs", where,
                    "src/util must not depend on src/obs (dependency root)"))

        if in_src and rel.endswith(".h") and not in_units_h:
            # Unit rule on header declarations only: that is where the
            # contract lives; .cc internals may unwrap to raw double.
            for m in DOUBLE_DECL.finditer(line):
                name = m.group(1)
                if not PHYSICAL_WORDS.search(name):
                    continue
                if UNIT_SUFFIX.search(name):
                    continue
                if TYPED.search(line):
                    continue
                key = f"{rel}:{name}"
                if ("unit-suffix", key) in allow:
                    continue
                findings.append((
                    "unit-suffix", where,
                    f"physical-looking double '{name}' has neither a unit "
                    "suffix nor a util:: strong type"))
    return findings


def iter_files(root):
    for sub in ("src",):
        for path in sorted((root / sub).rglob("*")):
            if path.suffix in (".h", ".cc") and path.is_file():
                yield path


def run_lint(root=REPO, allow=None):
    allow = load_allowlist() if allow is None else allow
    findings = []
    for path in iter_files(root):
        rel = path.relative_to(root).as_posix()
        findings.extend(lint_file(path, rel, allow))
    return findings


SEEDED = {
    "unit-suffix": "struct Foo {\n  double sensor_temp = 0.0;\n};\n",
    "no-ambient-rng": "int f() {\n  return rand();\n}\n",
    "util-no-obs": '#include "obs/obs.h"\n',
    "no-naked-kelvin": "double f(double c) {\n  return c + 273.15;\n}\n",
    "no-per-cycle-loop":
        "void f(Core& c) {\n"
        "  for (int i = 0; i < 100; ++i) {\n"
        "    c.idle_cycle(true);\n"
        "  }\n"
        "}\n",
    "no-unaligned-simd-load":
        "void f(const double* p, double* y) {\n"
        "  __m256d v = _mm256_loadu_pd(p);\n"
        "  _mm256_storeu_pd(y, v);\n"
        "}\n",
    "no-bare-catch":
        "void f() {\n"
        "  try {\n"
        "    g();\n"
        "  } catch (...) {\n"
        "    int swallowed = 0;\n"
        "    (void)swallowed;\n"
        "  }\n"
        "}\n",
    "no-raw-mutex":
        "struct Cache {\n"
        "  std::mutex mu;\n"
        "};\n",
    "no-unordered-result-iteration":
        "void f() {\n"
        "  std::unordered_map<int, int> totals;\n"
        "  for (const auto& [k, v] : totals) {\n"
        "    use(k, v);\n"
        "  }\n"
        "}\n",
}

SEEDED_PATH = {
    "unit-suffix": "src/core/seeded.h",
    "no-ambient-rng": "src/sim/seeded.cc",
    "util-no-obs": "src/util/seeded.h",
    "no-naked-kelvin": "src/thermal/seeded.cc",
    "no-per-cycle-loop": "src/sim/seeded_loop.cc",
    "no-unaligned-simd-load": "src/power/seeded_simd.cc",
    "no-bare-catch": "src/sim/seeded_catch.cc",
    "no-raw-mutex": "src/sim/seeded_mutex.h",
    "no-unordered-result-iteration": "src/sim/seeded_unordered.cc",
}


def self_test():
    import tempfile

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        tmproot = pathlib.Path(tmp)
        for rule, code in SEEDED.items():
            path = tmproot / SEEDED_PATH[rule]
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(code)
        findings = run_lint(tmproot, allow=set())
        caught = {rule for rule, _, _ in findings}
        for rule in SEEDED:
            status = "ok" if rule in caught else "FAIL"
            print(f"  self-test {rule}: seeded violation "
                  f"{'caught' if rule in caught else 'MISSED'} [{status}]")
            if rule not in caught:
                failures.append(rule)
        # Comments and strings must not trip any rule.
        clean = tmproot / "src" / "util" / "clean.h"
        clean.write_text('// rand() and 273.15 in a comment\n'
                         'const char* k = "std::random_device";\n'
                         '// for (;;) core.idle_cycle(true);  in a comment\n'
                         'void g(Core& c) {\n'
                         '  for (int i = 0; i < 2; ++i) '
                         'c.idle_cycles(64, true);  // bulk form is fine\n'
                         '}\n'
                         'void h() {\n'
                         '  try {\n'
                         '    g();\n'
                         '  } catch (...) {\n'
                         '    throw;  // rethrowing catch-all is fine\n'
                         '  }\n'
                         '}\n')
        extra = [f for f in run_lint(tmproot, allow=set())
                 if "clean.h" in f[1]]
        status = "ok" if not extra else "FAIL"
        print(f"  self-test comments/strings ignored [{status}]")
        if extra:
            failures.append("comment-fp")

        # Allowlist hygiene: an entry that suppresses a live finding is
        # used (not stale); an entry pointing at nothing is stale.
        allow = Allowlist({
            ("no-raw-mutex", "src/sim/seeded_mutex.h"),
            ("no-raw-mutex", "src/sim/long_gone.cc"),
        })
        findings = run_lint(tmproot, allow=allow)
        suppressed = not any(f[1].startswith("src/sim/seeded_mutex.h")
                             for f in findings)
        stale = allow.stale()
        ok = (suppressed and
              stale == {("no-raw-mutex", "src/sim/long_gone.cc")})
        status = "ok" if ok else "FAIL"
        print(f"  self-test stale-allowlist detection [{status}]")
        if not ok:
            failures.append("stale-allowlist")
    if failures:
        print(f"hydra-lint self-test FAILED: {failures}")
        return 1
    print("hydra-lint self-test passed: every rule rejects its seed")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--self-test", action="store_true",
                    help="verify each rule rejects a seeded violation")
    args = ap.parse_args()
    if args.self_test:
        return self_test()

    allow = Allowlist(load_allowlist())
    findings = run_lint(allow=allow)
    if findings:
        print(f"hydra-lint: {len(findings)} finding(s)")
        for rule, where, msg in findings:
            print(f"  {where}: [{rule}] {msg}")
        print(f"(false positive? add '<rule> <path>:<name>' to "
              f"{ALLOWLIST.relative_to(REPO)})")
        return 1
    stale = sorted(allow.stale())
    if stale:
        print(f"hydra-lint: {len(stale)} stale allowlist entr"
              f"{'y' if len(stale) == 1 else 'ies'} (no matching finding)")
        for rule, key in stale:
            print(f"  {rule} {key}: remove from "
                  f"{ALLOWLIST.relative_to(REPO)} — the code it excused "
                  "is gone or fixed")
        return 1
    print("hydra-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
