#!/usr/bin/env python3
"""Enforce a line-coverage floor over src/ from gcov's JSON output.

Walks the build tree for .gcda note files, runs `gcov --json-format` on
each, aggregates executed/instrumented line counts per repo-relative
source file under src/, prints a per-file table, and exits nonzero when
total line coverage is below the floor. Works with stock gcc+gcov — no
lcov dependency — so the gate behaves identically on CI and dev boxes.

Usage: coverage_floor.py --build BUILD_DIR [--floor PCT]
"""

from __future__ import annotations

import argparse
import gzip
import json
import pathlib
import subprocess
import sys
import tempfile


def collect_gcda(build_dir: pathlib.Path) -> list[pathlib.Path]:
    return sorted(build_dir.rglob("*.gcda"))


def run_gcov(gcda_files: list[pathlib.Path], scratch: pathlib.Path) -> None:
    """Run gcov in batches; JSON blobs land in `scratch` as *.gcov.json.gz."""
    batch = 64
    for i in range(0, len(gcda_files), batch):
        chunk = [str(p) for p in gcda_files[i : i + batch]]
        proc = subprocess.run(
            ["gcov", "--json-format"] + chunk,
            cwd=scratch,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            raise SystemExit(f"gcov failed on batch starting at {chunk[0]}")


def aggregate(scratch: pathlib.Path, repo_root: pathlib.Path) -> dict[str, list[int]]:
    """Per-file [executed, instrumented] for sources under repo src/."""
    # Line -> hit union across translation units: a header inlined into
    # many TUs counts as covered if ANY TU executed the line.
    hits: dict[str, dict[int, bool]] = {}
    src_root = (repo_root / "src").resolve()
    for blob in scratch.glob("*.gcov.json.gz"):
        with gzip.open(blob, "rt") as fh:
            data = json.load(fh)
        for f in data.get("files", []):
            path = pathlib.Path(data.get("current_working_directory", "."), f["file"])
            try:
                resolved = path.resolve()
                rel = str(resolved.relative_to(src_root))
            except ValueError:
                continue  # outside src/ (tests, system headers, gtest)
            per_file = hits.setdefault(rel, {})
            for line in f.get("lines", []):
                num = line["line_number"]
                per_file[num] = per_file.get(num, False) or line["count"] > 0
    return {
        rel: [sum(1 for hit in lines.values() if hit), len(lines)]
        for rel, lines in hits.items()
    }


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build", required=True, help="build directory with .gcda files")
    ap.add_argument("--floor", type=float, default=85.0, help="minimum src/ line %%")
    args = ap.parse_args()

    build_dir = pathlib.Path(args.build).resolve()
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    gcda = collect_gcda(build_dir)
    if not gcda:
        print(f"coverage: no .gcda files under {build_dir} — "
              "build with -DHYDRA_COVERAGE=ON and run the tests first")
        return 2

    with tempfile.TemporaryDirectory(prefix="hydra-gcov-") as tmp:
        scratch = pathlib.Path(tmp)
        run_gcov(gcda, scratch)
        per_file = aggregate(scratch, repo_root)

    if not per_file:
        print("coverage: gcov produced no data for files under src/")
        return 2

    total_exec = sum(v[0] for v in per_file.values())
    total_lines = sum(v[1] for v in per_file.values())
    width = max(len(rel) for rel in per_file)
    for rel in sorted(per_file):
        executed, lines = per_file[rel]
        pct = 100.0 * executed / lines if lines else 100.0
        print(f"  {rel:<{width}}  {pct:6.1f}%  ({executed}/{lines})")
    total_pct = 100.0 * total_exec / total_lines if total_lines else 100.0
    print(f"src/ line coverage: {total_pct:.2f}% "
          f"({total_exec}/{total_lines} lines), floor {args.floor:.2f}%")

    if total_pct < args.floor:
        print(f"FAIL: coverage {total_pct:.2f}% is below the floor {args.floor:.2f}%")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
