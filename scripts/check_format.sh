#!/usr/bin/env sh
# clang-format check over the format-clean subset of the tree.
#
# The repo predates .clang-format, so enforcement is incremental: only
# the paths below are required to be formatting-clean (they were
# formatted when .clang-format landed). Add directories/files here as
# they are cleaned up; eventually this becomes src tests tools bench.
#
# Usage: scripts/check_format.sh [--fix]
set -eu

cd "$(dirname "$0")/.."

FORMAT_PATHS="src/obs tests/obs_test.cc"

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check_format: $CLANG_FORMAT not found; skipping" >&2
  exit 0
fi

files=""
for path in $FORMAT_PATHS; do
  if [ -d "$path" ]; then
    files="$files $(find "$path" -name '*.h' -o -name '*.cc')"
  elif [ -f "$path" ]; then
    case "$path" in
      *.h|*.cc) files="$files $path" ;;
    esac
  fi
done

if [ "${1:-}" = "--fix" ]; then
  # shellcheck disable=SC2086
  "$CLANG_FORMAT" -i $files
  echo "check_format: reformatted$files"
else
  # shellcheck disable=SC2086
  "$CLANG_FORMAT" --dry-run -Werror $files
  echo "check_format: clean"
fi
