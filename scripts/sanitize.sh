#!/usr/bin/env sh
# Run the concurrency-sensitive test labels (faults + perf + recovery)
# under the sanitizers. ASan+UBSan catches lifetime/UB bugs in the
# engine's caches and the SIMD/batched kernels (simd_test under the
# perf label covers the packed loads and the lockstep barrier);
# TSan catches data races in the thread pool, RunCache, LuCache, the
# BatchCoordinator rendezvous, and the persistent store's
# recovery/eviction paths (the chaos test in recovery_test corrupts
# and re-opens the store under load).
#
# Usage: scripts/sanitize.sh [ADDRESS|THREAD|all]
#
# Abbreviated runs keep sanitized executions fast; override by exporting
# HYDRA_RUN_INSTRUCTIONS / HYDRA_WARMUP_INSTRUCTIONS yourself.
set -eu

cd "$(dirname "$0")/.."

: "${HYDRA_RUN_INSTRUCTIONS:=60000}"
: "${HYDRA_WARMUP_INSTRUCTIONS:=20000}"
export HYDRA_RUN_INSTRUCTIONS HYDRA_WARMUP_INSTRUCTIONS

run_one() {
  mode="$1"
  builddir="build-sanitize-$(echo "$mode" | tr '[:upper:]' '[:lower:]')"
  echo "== HYDRA_SANITIZE=$mode -> $builddir =="
  cmake -B "$builddir" -S . -DHYDRA_SANITIZE="$mode" >/dev/null
  cmake --build "$builddir" -j "$(nproc)"
  # Exercise the pool with more workers than cores so TSan sees real
  # interleavings even on small CI machines.
  # Sanitized binaries run 5-20x slower; the nightly CI leg raises
  # HYDRA_CTEST_TIMEOUT because its production-size workloads would
  # blow through the default per-test budget.
  HYDRA_THREADS="${HYDRA_THREADS:-8}" \
    ctest --test-dir "$builddir" -L 'faults|perf|recovery' \
      --output-on-failure --timeout "${HYDRA_CTEST_TIMEOUT:-600}"
}

case "${1:-all}" in
  ADDRESS|THREAD) run_one "$1" ;;
  all)
    run_one ADDRESS
    run_one THREAD
    ;;
  *)
    echo "usage: $0 [ADDRESS|THREAD|all]" >&2
    exit 2
    ;;
esac
