// Filters used to debounce DTM actuation decisions.
#pragma once

#include <cstddef>

namespace hydra::control {

/// First-order IIR low-pass: y += alpha * (x - y), alpha in (0, 1].
class FirstOrderLowPass {
 public:
  explicit FirstOrderLowPass(double alpha);

  double update(double x);
  double value() const { return y_; }
  void reset(double y = 0.0) { y_ = y; }

 private:
  double alpha_;
  double y_ = 0.0;
  bool primed_ = false;
};

/// Debounce counter: asserts only after `threshold` consecutive true
/// samples; deasserts immediately on a false sample. This is the paper's
/// "simple low-pass filter to decide whether to increase the voltage"
/// (raising is filtered; lowering is compulsory and unfiltered).
class ConsecutiveDebounce {
 public:
  explicit ConsecutiveDebounce(std::size_t threshold);

  /// Feed one sample; returns true once `threshold` consecutive trues
  /// have been observed (and keeps returning true until a false arrives).
  bool update(bool sample);
  void reset() { count_ = 0; }

 private:
  std::size_t threshold_;
  std::size_t count_ = 0;
};

}  // namespace hydra::control
