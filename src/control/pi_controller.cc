#include "control/pi_controller.h"

#include <algorithm>
#include <stdexcept>

namespace hydra::control {

PiController::PiController(util::PerCelsius kp, util::PerCelsiusSecond ki,
                           double out_min, double out_max)
    : kp_(kp.value()), ki_(ki.value()), out_min_(out_min), out_max_(out_max) {
  if (out_min >= out_max) {
    throw std::invalid_argument("controller output range is empty");
  }
}

double PiController::update(util::CelsiusDelta error_q, util::Seconds dt_q) {
  const double error = error_q.value();
  const double dt = dt_q.value();
  if (dt <= 0.0) throw std::invalid_argument("dt must be positive");
  const double candidate_integrator = integrator_ + ki_ * error * dt;
  const double unclamped = kp_ * error + candidate_integrator;
  const double clamped = std::clamp(unclamped, out_min_, out_max_);
  // Conditional integration: only absorb the step when it does not push
  // the output further into saturation.
  const bool saturated_high = unclamped > out_max_ && error > 0.0;
  const bool saturated_low = unclamped < out_min_ && error < 0.0;
  if (!saturated_high && !saturated_low) {
    integrator_ = candidate_integrator;
  } else {
    // Park the integrator at the value that exactly saturates the output
    // so release is immediate once the error reverses.
    integrator_ = std::clamp(candidate_integrator, out_min_ - kp_ * error,
                             out_max_ - kp_ * error);
  }
  last_unclamped_ = unclamped;
  last_output_ = clamped;
  return clamped;
}

void PiController::reset() {
  integrator_ = 0.0;
  last_unclamped_ = 0.0;
  last_output_ = 0.0;
}

}  // namespace hydra::control
