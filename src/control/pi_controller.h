// Proportional-integral controller with anti-windup.
//
// Used three ways in the paper's apparatus: as the PI controller setting
// DVS voltage levels, as the integral controller (kp = 0) choosing the
// fetch-gating duty cycle, and inside PI-Hyb where the *unclamped* output
// signals that the ILP technique has crossed over and DVS should engage.
#pragma once

#include "util/units.h"

namespace hydra::control {

class PiController {
 public:
  /// Output is clamped to [out_min, out_max]; integration is conditional
  /// (no windup while saturated in the error's direction). The error is
  /// always a temperature excess in this codebase, so gains carry the
  /// dimensions [out / deg C] and [out / (deg C * s)] for a
  /// dimensionless output (duty fraction or DVS throttle).
  PiController(util::PerCelsius kp, util::PerCelsiusSecond ki, double out_min,
               double out_max);

  /// Advance with `error` over `dt`; returns the clamped output.
  double update(util::CelsiusDelta error, util::Seconds dt);

  /// Output of the last update() before clamping — the hybrid policy's
  /// crossover detector.
  double last_unclamped() const { return last_unclamped_; }
  double last_output() const { return last_output_; }
  double integrator() const { return integrator_; }

  /// Preset the integrator (used when a hybrid policy hands control back
  /// to the ILP technique at the crossover level).
  void set_integrator(double v) { integrator_ = v; }

  void reset();

 private:
  double kp_;
  double ki_;
  double out_min_;
  double out_max_;
  double integrator_ = 0.0;
  double last_unclamped_ = 0.0;
  double last_output_ = 0.0;
};

}  // namespace hydra::control
