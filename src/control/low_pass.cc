#include "control/low_pass.h"

#include <stdexcept>

namespace hydra::control {

FirstOrderLowPass::FirstOrderLowPass(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("low-pass alpha must be in (0, 1]");
  }
}

double FirstOrderLowPass::update(double x) {
  if (!primed_) {
    y_ = x;
    primed_ = true;
  } else {
    y_ += alpha_ * (x - y_);
  }
  return y_;
}

ConsecutiveDebounce::ConsecutiveDebounce(std::size_t threshold)
    : threshold_(threshold) {
  if (threshold == 0) {
    throw std::invalid_argument("debounce threshold must be positive");
  }
}

bool ConsecutiveDebounce::update(bool sample) {
  if (!sample) {
    count_ = 0;
    return false;
  }
  if (count_ < threshold_) ++count_;
  return count_ >= threshold_;
}

}  // namespace hydra::control
