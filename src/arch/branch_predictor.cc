#include "arch/branch_predictor.h"

#include <stdexcept>

namespace hydra::arch {

GsharePredictor::GsharePredictor(int index_bits, int history_bits)
    : index_bits_(index_bits), history_bits_(history_bits) {
  if (index_bits < 1 || index_bits > 24) {
    throw std::invalid_argument("gshare index bits out of range");
  }
  if (history_bits < 0 || history_bits > index_bits) {
    throw std::invalid_argument("gshare history bits out of range");
  }
  index_mask_ = (1ULL << index_bits) - 1;
  history_mask_ =
      history_bits == 0 ? 0 : (1ULL << history_bits) - 1;
  counters_.assign(1ULL << index_bits, 2);  // weakly taken
}

std::size_t GsharePredictor::index(std::uint64_t pc) const {
  // Fold the (short) history into the top bits of the index so it
  // perturbs rather than replaces the pc bits.
  const std::uint64_t folded = history_ << (index_bits_ - history_bits_);
  return ((pc >> 2) ^ folded) & index_mask_;
}

bool GsharePredictor::predict(std::uint64_t pc) const {
  return counters_[index(pc)] >= 2;
}

void GsharePredictor::update(std::uint64_t pc, bool taken) {
  std::uint8_t& c = counters_[index(pc)];
  if (taken && c < 3) ++c;
  if (!taken && c > 0) --c;
  history_ = ((history_ << 1) | (taken ? 1 : 0)) & history_mask_;
}

}  // namespace hydra::arch
