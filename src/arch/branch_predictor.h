// Gshare direction predictor.
#pragma once

#include <cstdint>
#include <vector>

namespace hydra::arch {

/// Classic gshare: global history XOR pc indexes a table of 2-bit
/// saturating counters. `history_bits` controls how much global history
/// is folded in (0 = pure bimodal). Real SPEC traces benefit from long
/// histories; the synthetic traces used here have i.i.d. branch
/// outcomes, for which short histories avoid spreading a single biased
/// branch across the whole table, so the core defaults to a few bits —
/// what matters for the DTM studies is a realistic per-workload
/// misprediction rate.
class GsharePredictor {
 public:
  explicit GsharePredictor(int index_bits = 12, int history_bits = 4);

  /// Predict the direction for `pc` with the current history.
  bool predict(std::uint64_t pc) const;

  /// Update tables and history with the true outcome.
  void update(std::uint64_t pc, bool taken);

  int index_bits() const { return index_bits_; }
  int history_bits() const { return history_bits_; }

 private:
  std::size_t index(std::uint64_t pc) const;

  int index_bits_;
  int history_bits_;
  std::uint64_t history_ = 0;
  std::uint64_t index_mask_;
  std::uint64_t history_mask_;
  std::vector<std::uint8_t> counters_;  ///< 2-bit saturating
};

}  // namespace hydra::arch
