// Alpha-21264-style tournament branch predictor.
//
// Three structures, as in the real 21264 front end:
//  * a local predictor: per-branch history table feeding a table of
//    3-bit saturating counters,
//  * a global predictor: 2-bit counters indexed by global history,
//  * a chooser: 2-bit counters (also indexed by global history) that
//    select which component to trust per prediction.
// The component sizes default to the 21264's (1K x 10-bit local
// histories, 1K 3-bit local counters, 4K global and 4K chooser
// entries).
//
// The cycle-level core accepts either this or the simpler gshare
// (CoreConfig::predictor); the DTM results are robust to the choice
// (see bench/abl_fidelity), which is itself a useful finding.
#pragma once

#include <cstdint>
#include <vector>

namespace hydra::arch {

struct TournamentConfig {
  int local_history_bits = 10;   ///< bits per local history register
  int local_table_bits = 10;     ///< log2 entries of both local tables
  int global_bits = 12;          ///< log2 entries of global/chooser tables
};

class TournamentPredictor {
 public:
  explicit TournamentPredictor(const TournamentConfig& cfg = {});

  bool predict(std::uint64_t pc) const;
  void update(std::uint64_t pc, bool taken);

  /// Fraction of recent predictions served by the global component
  /// (diagnostics for tests).
  double global_usage() const {
    return chooser_decisions_ == 0
               ? 0.0
               : static_cast<double>(global_chosen_) /
                     static_cast<double>(chooser_decisions_);
  }

 private:
  std::size_t local_index(std::uint64_t pc) const;
  std::size_t global_index() const;
  std::size_t chooser_index(std::uint64_t pc) const;

  TournamentConfig cfg_;
  std::uint64_t local_history_mask_;
  std::uint64_t global_mask_;
  std::uint64_t global_history_ = 0;
  std::vector<std::uint16_t> local_history_;  ///< per-branch histories
  std::vector<std::uint8_t> local_counters_;  ///< 3-bit
  std::vector<std::uint8_t> global_counters_; ///< 2-bit
  std::vector<std::uint8_t> chooser_;         ///< 2-bit, pc-indexed: >=2 -> global
  mutable std::uint64_t chooser_decisions_ = 0;
  mutable std::uint64_t global_chosen_ = 0;
};

}  // namespace hydra::arch
