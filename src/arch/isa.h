// Micro-op record and trace-source interface.
//
// The core is trace-driven: a TraceSource supplies an infinite stream of
// micro-ops whose dependencies are expressed as *distances* (in dynamic
// instruction count) to the producing instruction. This carries exactly
// the information the out-of-order timing model needs — true data
// dependencies, memory addresses and branch outcomes — without requiring
// functional execution of Alpha binaries (see DESIGN.md, Substitutions).
#pragma once

#include <cstdint>

namespace hydra::arch {

/// Functional classes of micro-ops; each maps to an execution resource.
enum class OpClass : std::uint8_t {
  kIntAlu = 0,
  kIntMul,
  kFpAdd,
  kFpMul,
  kLoad,
  kStore,
  kBranch,
};

inline constexpr int kNumOpClasses = 7;

constexpr bool is_fp(OpClass c) {
  return c == OpClass::kFpAdd || c == OpClass::kFpMul;
}
constexpr bool is_mem(OpClass c) {
  return c == OpClass::kLoad || c == OpClass::kStore;
}

/// One dynamic instruction.
struct MicroOp {
  OpClass cls = OpClass::kIntAlu;
  std::uint8_t num_srcs = 0;  ///< 0..2 register sources
  /// Distance (>= 1) in dynamic instructions to each producer.
  std::int32_t src_dist[2] = {0, 0};
  std::uint64_t pc = 0;        ///< instruction address (for I-cache/bpred)
  std::uint64_t mem_addr = 0;  ///< effective address for loads/stores
  bool branch_taken = false;   ///< ground-truth outcome for branches
};

/// Infinite instruction stream.
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  /// Produce the next dynamic instruction.
  virtual MicroOp next() = 0;
};

}  // namespace hydra::arch
