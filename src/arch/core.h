// Trace-driven cycle-level out-of-order superscalar core.
//
// Models the stages that matter for DTM studies: a gateable fetch stage
// with gshare branch prediction and I-cache/ITB timing, rename/dispatch
// into a reorder buffer with per-class issue-queue occupancy limits,
// dependency-driven out-of-order issue against per-class functional-unit
// limits, D-cache/DTB/L2/memory timing on loads, and in-order commit.
// Every stage increments per-block activity counters (arch/activity.h)
// that drive the Wattch-style power model.
//
// Fetch gating (the paper's ILP technique) is a duty-cycled inhibition of
// the fetch stage: `set_fetch_gate_fraction(g)` gates fetch on fraction g
// of cycles, evenly striped. Mild gating is hidden by the machine's ILP;
// harsh gating starves the pipeline — exactly the behaviour the hybrid
// DTM policy exploits.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "arch/activity.h"
#include "arch/branch_predictor.h"
#include "arch/cache.h"
#include "arch/core_config.h"
#include "arch/isa.h"
#include "arch/tlb.h"
#include "arch/tournament_predictor.h"

namespace hydra::arch {

/// Lifetime counters exposed for tests and reporting.
struct CoreStats {
  std::uint64_t committed = 0;
  std::uint64_t cycles = 0;          ///< total, incl. idle/gated
  std::uint64_t fetch_gated_cycles = 0;
  std::uint64_t fetched = 0;
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t icache_misses = 0;
  std::uint64_t dcache_misses = 0;
  std::uint64_t l2_misses = 0;

  double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(committed) /
                             static_cast<double>(cycles);
  }
  double mispredict_rate() const {
    return branches == 0 ? 0.0
                         : static_cast<double>(mispredicts) /
                               static_cast<double>(branches);
  }
};

class Core {
 public:
  /// `trace` must outlive the core.
  Core(const CoreConfig& cfg, TraceSource& trace);

  /// Gate fetch on this fraction of cycles (0 = never, 1 = always).
  void set_fetch_gate_fraction(double g);
  double fetch_gate_fraction() const { return gate_fraction_; }

  /// Gate the issue stage on this fraction of cycles — the "local
  /// toggling" mechanism (slow the domain in thermal stress while the
  /// front end keeps running).
  void set_issue_gate_fraction(double g);
  double issue_gate_fraction() const { return issue_gate_fraction_; }

  /// Update the clock; converts the ns memory latency into cycles.
  void set_frequency(double hz);

  /// Advance one executed clock cycle.
  void cycle();

  /// Advance one cycle without executing (DVS switch stall or global
  /// clock gating). `clocked` selects whether the clock tree runs (a
  /// stalled-but-clocked pipeline burns base power; a gated clock does
  /// not).
  void idle_cycle(bool clocked);

  /// Advance `n` idle cycles in O(1). Idle cycles touch no pipeline
  /// state — only the cycle counters and the activity frame — and both
  /// accumulate integer-valued doubles that stay exact below 2^53, so
  /// this is bit-identical to calling idle_cycle(clocked) n times
  /// (asserted by the fastpath bit-identity test).
  void idle_cycles(std::uint64_t n, bool clocked);

  /// Rebind the instruction source — the thread-migration seam. The new
  /// trace must outlive the core. Call flush_pipeline() first: in-flight
  /// ops belong to the old thread.
  void set_trace(TraceSource& trace) { trace_ = &trace; }

  /// Squash all in-flight state (front end, ROB, issue queues, MSHRs)
  /// without committing it, as a thread migration's context switch does.
  /// Architected history state (caches, TLBs, branch predictors) is
  /// deliberately kept — it belongs to the tile, and the migrated-in
  /// thread pays its cold misses naturally. Uncommitted instructions
  /// already drawn from the trace are lost (squashed work), which is the
  /// modelled pipeline-flush cost alongside the explicit stall cycles
  /// and flush energy the migration policy charges.
  void flush_pipeline();

  const CoreStats& stats() const { return stats_; }
  std::uint64_t committed() const { return stats_.committed; }
  std::uint64_t cycles() const { return stats_.cycles; }

  /// Activity accumulated since the last take; clears the frame.
  ActivityFrame take_interval_activity();
  const ActivityFrame& interval_activity() const { return interval_; }

 private:
  struct FrontendOp {
    MicroOp op;
    bool mispredicted = false;
  };

  struct RobEntry {
    OpClass cls = OpClass::kIntAlu;
    std::uint8_t num_srcs = 0;
    std::uint64_t src_seq[2] = {0, 0};
    std::uint64_t seq = 0;
    std::uint64_t mem_addr = 0;
    std::int64_t done_cycle = 0;  ///< valid once issued
    bool issued = false;
    bool mispredicted = false;
  };

  // Dense per-ROB-slot issue state read by do_issue, so the common
  // reject paths touch this 8-byte array instead of the 64-byte
  // RobEntry:
  //   kSlotIssued — entry issued;
  //   kSlotBlocked — some producer unissued (entry sits on that
  //                  producer's consumer list, off the scan set);
  //   >= 0 — memoized earliest cycle every source is ready (final once
  //          computed: done_cycle is fixed at issue and never changes,
  //          so the per-cycle readiness test is one compare).
  static constexpr std::int64_t kSlotIssued =
      std::numeric_limits<std::int64_t>::max();
  static constexpr std::int64_t kSlotBlocked = -1;

  void do_fetch();
  void do_rename();
  void do_issue();
  void do_commit();

  bool predict_branch(std::uint64_t pc);
  void update_predictor(std::uint64_t pc, bool taken);

  /// Store-forwarding scan: does an older in-flight store write the same
  /// word as this load? Returns 0 = no match, 1 = forwardable (store
  /// issued), -1 = must wait (store address not yet resolved).
  int forwarding_state(std::size_t rob_offset, std::uint64_t addr) const;

  /// MSHR availability / allocation for D-side misses.
  bool mshr_available() const;
  void mshr_allocate(std::int64_t release_cycle);
  /// Earliest outstanding MSHR release (INT64_MAX when none): the wake
  /// time for a scan stalled only on MSHR structural hazards.
  std::int64_t mshr_min_release() const;

  RobEntry& rob_at_seq(std::uint64_t seq);
  const RobEntry& rob_at_seq(std::uint64_t seq) const;
  int queue_class(OpClass cls) const;  ///< 0=int, 1=fp, 2=ls

  /// Memory hierarchy lookups; return total access latency in cycles and
  /// count the activity.
  int load_store_latency(std::uint64_t addr);
  int ifetch_latency(std::uint64_t pc);

  CoreConfig cfg_;
  TraceSource* trace_;
  GsharePredictor bpred_;
  TournamentPredictor tournament_;
  Cache icache_;
  Cache dcache_;
  Cache l2_;
  Tlb itb_;
  Tlb dtb_;

  // Fetch/issue gating duty-cycle accumulators.
  double gate_fraction_ = 0.0;
  double gate_accumulator_ = 0.0;
  double issue_gate_fraction_ = 0.0;
  double issue_gate_accumulator_ = 0.0;

  // Outstanding D-side miss release times (empty vector = unlimited).
  mutable std::vector<std::int64_t> mshrs_;

  int memory_latency_cycles_;

  // Front end, as a fixed-capacity ring bounded by frontend_entries —
  // the per-cycle fetch path must stay allocation-free (a deque here
  // allocated a node every few pushes).
  std::vector<FrontendOp> frontend_;
  std::size_t frontend_head_ = 0;
  std::size_t frontend_count_ = 0;
  bool fetch_halted_ = false;           ///< waiting on mispredict redirect
  std::int64_t redirect_cycle_ = -1;    ///< cycle fetch may resume (-1: unknown)
  std::int64_t icache_ready_cycle_ = 0; ///< fetch stalled until (miss)
  MicroOp pending_op_{};                ///< op whose I-fetch missed
  bool has_pending_op_ = false;

  // Reorder buffer as a ring.
  std::vector<RobEntry> rob_;
  std::vector<std::int64_t> slot_state_;  ///< see kSlot* above; tracks rob_
  std::size_t rob_head_ = 0;   ///< slot of oldest entry
  std::size_t rob_count_ = 0;
  std::uint64_t head_seq_ = 0; ///< seq of oldest in-ROB entry
  std::uint64_t next_seq_ = 0;

  // Issue-scan set, one bit per ROB slot: entries do_issue must look at
  // (fresh from rename, or source-ready cycle memoized in slot_state_).
  // Issued entries and entries blocked on an unissued producer are off
  // the set — a blocked entry is parked on that producer's consumer
  // list (head/next form intrusive singly-linked lists over slots, -1
  // terminated) and re-inserted the moment the producer issues, which is
  // exactly when the old full scan could first observe it unblocked. An
  // entry sits on at most one list: its bit and its list membership are
  // mutually exclusive, and issue empties a producer's list before the
  // slot can ever be recycled by rename.
  std::vector<std::uint64_t> scan_mask_;
  std::vector<std::int32_t> consumer_head_;
  std::vector<std::int32_t> consumer_next_;

  // Issue-queue occupancy per class (int, fp, ls).
  int queue_count_[3] = {0, 0, 0};

  // Issue-scan sleep: when a full scan issues nothing and proves nothing
  // can become issuable before this cycle (all wake sources — producer
  // done_cycles and MSHR releases — are accounted, and no entry was
  // rejected on functional-unit limits), scans are skipped until then.
  // Rename resets it to 0: a newly dispatched entry may be ready at
  // once. Skipped scans are no-ops by construction, so results are
  // identical to scanning every cycle.
  std::int64_t issue_wake_cycle_ = 0;

  std::int64_t now_ = 0;
  CoreStats stats_;
  ActivityFrame interval_;
};

}  // namespace hydra::arch
