// Microarchitectural parameters of the modelled core.
//
// Defaults approximate the Alpha 21264/21364 used by the paper: 4-wide
// fetch, 80-entry reorder buffer, clustered integer issue of 4, two FP
// pipes, 64 KB 2-way L1s and a large unified L2.
#pragma once

#include "arch/cache.h"
#include "arch/tournament_predictor.h"

namespace hydra::arch {

struct CoreConfig {
  // Pipeline widths.
  int fetch_width = 4;
  int rename_width = 4;
  int issue_width = 6;
  int commit_width = 4;

  // Buffer capacities.
  int rob_entries = 80;
  int frontend_entries = 16;
  int int_queue_entries = 20;
  int fp_queue_entries = 15;
  int ls_queue_entries = 32;

  // Functional units per cycle.
  int int_alu_units = 4;
  int int_mul_units = 1;
  int fp_add_units = 2;
  int fp_mul_units = 1;
  int mem_ports = 2;

  // Execution latencies [cycles].
  int int_alu_latency = 1;
  int int_mul_latency = 7;
  int fp_add_latency = 4;
  int fp_mul_latency = 4;
  int l1_hit_latency = 3;
  int l2_hit_latency = 12;
  int tlb_miss_penalty = 30;
  int mispredict_penalty = 10;

  /// Main-memory access time in nanoseconds (frequency-independent; the
  /// core converts to cycles at its current clock, so lowering the clock
  /// with DVS shrinks the miss penalty in cycles).
  double memory_latency_ns = 80.0;

  // Caches.
  CacheConfig icache{64 * 1024, 64, 2};
  CacheConfig dcache{64 * 1024, 64, 2};
  CacheConfig l2{4 * 1024 * 1024, 128, 8};

  // Predictor.
  enum class Predictor { kGshare, kTournament };
  Predictor predictor = Predictor::kGshare;
  int bpred_index_bits = 13;
  /// 0 = bimodal. The synthetic workloads have i.i.d. branch outcomes,
  /// for which folding in (random) history only spreads training thin;
  /// see GsharePredictor.
  int bpred_history_bits = 0;
  /// Tournament geometry used when predictor == kTournament. The
  /// synthetic traces have i.i.d. outcomes, so a shorter local history
  /// and a larger history table avoid diluting per-branch training (the
  /// authentic 21264 geometry is TournamentConfig's own default).
  TournamentConfig tournament{/*local_history_bits=*/6,
                              /*local_table_bits=*/13,
                              /*global_bits=*/12};

  // --- Fidelity options (bench/abl_fidelity studies their effect) -----
  /// Maximum outstanding D-side misses (MSHRs); 0 = unlimited memory-
  /// level parallelism (the default timing model).
  int mshr_entries = 0;
  /// Model store->load forwarding and memory-dependence stalls through
  /// the ROB (a load whose address matches an older un-issued store
  /// waits; a match against an issued store forwards in 1 cycle).
  bool store_forwarding = false;

  /// Nominal clock used to size memory latency before set_frequency().
  double nominal_frequency_hz = 3.0e9;
};

}  // namespace hydra::arch
