#include "arch/tournament_predictor.h"

#include <stdexcept>

namespace hydra::arch {

TournamentPredictor::TournamentPredictor(const TournamentConfig& cfg)
    : cfg_(cfg) {
  if (cfg.local_history_bits < 1 || cfg.local_history_bits > 16 ||
      cfg.local_table_bits < 1 || cfg.local_table_bits > 20 ||
      cfg.global_bits < 1 || cfg.global_bits > 24) {
    throw std::invalid_argument("tournament predictor geometry out of range");
  }
  local_history_mask_ = (1ULL << cfg.local_history_bits) - 1;
  global_mask_ = (1ULL << cfg.global_bits) - 1;
  local_history_.assign(1ULL << cfg.local_table_bits, 0);
  // Local counters are indexed by the *history pattern*, so the table
  // needs 2^history_bits entries (the 21264 used 1K x 3-bit).
  local_counters_.assign(1ULL << cfg.local_history_bits, 4);  // weakly taken
  global_counters_.assign(1ULL << cfg.global_bits, 2);
  // Weakly prefer the local component at reset: a per-branch bias is the
  // commonest pattern, and an untrained global component (whose contexts
  // are sparse early on) should have to earn the chooser's trust.
  chooser_.assign(1ULL << cfg.global_bits, 1);
}

std::size_t TournamentPredictor::local_index(std::uint64_t pc) const {
  return (pc >> 2) & (local_history_.size() - 1);
}

std::size_t TournamentPredictor::global_index() const {
  return global_history_ & global_mask_;
}

std::size_t TournamentPredictor::chooser_index(std::uint64_t pc) const {
  // McFarling-style combining: the chooser is indexed by pc so each
  // static branch learns which component models it better.
  return (pc >> 2) & global_mask_;
}

bool TournamentPredictor::predict(std::uint64_t pc) const {
  const std::uint16_t hist = local_history_[local_index(pc)];
  const bool local_pred = local_counters_[hist] >= 4;  // 3-bit counter
  const bool global_pred = global_counters_[global_index()] >= 2;
  const bool use_global = chooser_[chooser_index(pc)] >= 2;
  ++chooser_decisions_;
  if (use_global) ++global_chosen_;
  return use_global ? global_pred : local_pred;
}

void TournamentPredictor::update(std::uint64_t pc, bool taken) {
  const std::size_t li = local_index(pc);
  const std::uint16_t hist = local_history_[li];
  const bool local_pred = local_counters_[hist] >= 4;
  const bool global_pred = global_counters_[global_index()] >= 2;

  // Chooser trains toward whichever component was right (when they
  // disagree).
  std::uint8_t& choose = chooser_[chooser_index(pc)];
  if (global_pred != local_pred) {
    const bool global_right = global_pred == taken;
    if (global_right && choose < 3) ++choose;
    if (!global_right && choose > 0) --choose;
  }

  // Component counters.
  std::uint8_t& lc = local_counters_[hist];
  if (taken && lc < 7) ++lc;
  if (!taken && lc > 0) --lc;
  std::uint8_t& gc = global_counters_[global_index()];
  if (taken && gc < 3) ++gc;
  if (!taken && gc > 0) --gc;

  // Histories.
  local_history_[li] =
      static_cast<std::uint16_t>(((hist << 1) | (taken ? 1 : 0)) &
                                 local_history_mask_);
  global_history_ = ((global_history_ << 1) | (taken ? 1 : 0)) & global_mask_;
}

}  // namespace hydra::arch
