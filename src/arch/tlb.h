// Fully-associative TLB timing model (ITB / DTB).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hydra::arch {

/// Small fully-associative translation buffer with LRU replacement.
/// Timing-only: a miss costs the owner a fixed fill penalty.
class Tlb {
 public:
  Tlb(std::size_t entries = 128, std::size_t page_bytes = 8192);

  /// Translate; installs on miss. Returns true on hit.
  bool access(std::uint64_t addr);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    std::uint64_t vpn = 0;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  int page_shift_;
  std::vector<Entry> entries_;
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hydra::arch
