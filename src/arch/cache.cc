#include "arch/cache.h"

#include <bit>
#include <stdexcept>

namespace hydra::arch {

Cache::Cache(const CacheConfig& cfg) {
  if (cfg.line_bytes == 0 || !std::has_single_bit(cfg.line_bytes)) {
    throw std::invalid_argument("cache line size must be a power of two");
  }
  if (cfg.associativity == 0) {
    throw std::invalid_argument("associativity must be positive");
  }
  const std::size_t lines = cfg.size_bytes / cfg.line_bytes;
  if (lines == 0 || lines % cfg.associativity != 0) {
    throw std::invalid_argument("cache size/line/ways are inconsistent");
  }
  sets_ = lines / cfg.associativity;
  if (!std::has_single_bit(sets_)) {
    throw std::invalid_argument("number of sets must be a power of two");
  }
  ways_ = cfg.associativity;
  line_shift_ = std::countr_zero(cfg.line_bytes);
  store_.assign(sets_ * ways_, Way{});
}

std::size_t Cache::set_index(std::uint64_t addr) const {
  return static_cast<std::size_t>((addr >> line_shift_) & (sets_ - 1));
}

std::uint64_t Cache::tag_of(std::uint64_t addr) const {
  return (addr >> line_shift_) / sets_;
}

bool Cache::access(std::uint64_t addr) {
  const std::size_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Way* ways = &store_[set * ways_];
  ++stamp_;
  for (std::size_t w = 0; w < ways_; ++w) {
    if (ways[w].valid && ways[w].tag == tag) {
      ways[w].lru = stamp_;
      ++hits_;
      return true;
    }
  }
  // Miss: fill the LRU (or first invalid) way.
  std::size_t victim = 0;
  for (std::size_t w = 0; w < ways_; ++w) {
    if (!ways[w].valid) {
      victim = w;
      break;
    }
    if (ways[w].lru < ways[victim].lru) victim = w;
  }
  ways[victim] = {tag, stamp_, true};
  ++misses_;
  return false;
}

bool Cache::probe(std::uint64_t addr) const {
  const std::size_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  const Way* ways = &store_[set * ways_];
  for (std::size_t w = 0; w < ways_; ++w) {
    if (ways[w].valid && ways[w].tag == tag) return true;
  }
  return false;
}

}  // namespace hydra::arch
