// Set-associative cache timing model with true-LRU replacement.
//
// Timing-only: the model tracks tags, not data. Misses return the fill
// latency supplied by the owner (the core composes L1 -> L2 -> memory
// lookups itself so the L2 is shared between the I- and D-side).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hydra::arch {

struct CacheConfig {
  std::size_t size_bytes = 64 * 1024;
  std::size_t line_bytes = 64;
  std::size_t associativity = 2;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Look up `addr`; on a miss the line is installed (allocate-on-miss for
  /// both reads and writes, modelling a write-allocate cache). Returns
  /// true on hit.
  bool access(std::uint64_t addr);

  /// Look up without installing (for occupancy probes in tests).
  bool probe(std::uint64_t addr) const;

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t num_sets() const { return sets_; }
  std::size_t associativity() const { return ways_; }

  void reset_stats() { hits_ = misses_ = 0; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< last-access stamp
    bool valid = false;
  };

  std::size_t set_index(std::uint64_t addr) const;
  std::uint64_t tag_of(std::uint64_t addr) const;

  std::size_t sets_;
  std::size_t ways_;
  int line_shift_;
  std::vector<Way> store_;  ///< sets_ * ways_, row-major by set
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hydra::arch
