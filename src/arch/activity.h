// Per-block activity accounting produced by the core each interval.
#pragma once

#include <array>

#include "floorplan/block.h"

namespace hydra::arch {

/// Raw event counts per architectural block over an accounting interval,
/// plus the cycle bookkeeping needed to turn counts into utilisations.
/// The core increments these; the power model consumes and normalises
/// them (it owns the per-block maximum event rates).
struct ActivityFrame {
  std::array<double, floorplan::kNumBlocks> events{};
  double cycles = 0.0;          ///< elapsed core cycles (incl. gated/stalled)
  double clocked_cycles = 0.0;  ///< cycles with the clock tree running

  void clear() {
    events.fill(0.0);
    cycles = 0.0;
    clocked_cycles = 0.0;
  }

  void add(floorplan::BlockId id, double n = 1.0) {
    events[static_cast<std::size_t>(id)] += n;
  }

  double count(floorplan::BlockId id) const {
    return events[static_cast<std::size_t>(id)];
  }

  /// Accumulate another frame into this one.
  void accumulate(const ActivityFrame& other) {
    for (std::size_t i = 0; i < events.size(); ++i) {
      events[i] += other.events[i];
    }
    cycles += other.cycles;
    clocked_cycles += other.clocked_cycles;
  }
};

}  // namespace hydra::arch
