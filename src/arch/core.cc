#include "arch/core.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace hydra::arch {

using floorplan::BlockId;

Core::Core(const CoreConfig& cfg, TraceSource& trace)
    : cfg_(cfg),
      trace_(&trace),
      bpred_(cfg.bpred_index_bits, cfg.bpred_history_bits),
      tournament_(cfg.tournament),
      icache_(cfg.icache),
      dcache_(cfg.dcache),
      l2_(cfg.l2),
      itb_(),
      dtb_() {
  if (cfg_.rob_entries <= 0 || cfg_.fetch_width <= 0 ||
      cfg_.rename_width <= 0 || cfg_.issue_width <= 0 ||
      cfg_.commit_width <= 0 || cfg_.frontend_entries <= 0) {
    throw std::invalid_argument("core widths/capacities must be positive");
  }
  rob_.resize(static_cast<std::size_t>(cfg_.rob_entries));
  frontend_.resize(static_cast<std::size_t>(cfg_.frontend_entries));
  set_frequency(cfg_.nominal_frequency_hz);
}

void Core::set_fetch_gate_fraction(double g) {
  if (g < 0.0 || g > 1.0) {
    throw std::invalid_argument("fetch gate fraction must be in [0, 1]");
  }
  gate_fraction_ = g;
}

void Core::set_issue_gate_fraction(double g) {
  if (g < 0.0 || g > 1.0) {
    throw std::invalid_argument("issue gate fraction must be in [0, 1]");
  }
  issue_gate_fraction_ = g;
}

bool Core::predict_branch(std::uint64_t pc) {
  return cfg_.predictor == CoreConfig::Predictor::kTournament
             ? tournament_.predict(pc)
             : bpred_.predict(pc);
}

void Core::update_predictor(std::uint64_t pc, bool taken) {
  if (cfg_.predictor == CoreConfig::Predictor::kTournament) {
    tournament_.update(pc, taken);
  } else {
    bpred_.update(pc, taken);
  }
}

int Core::forwarding_state(std::size_t rob_offset, std::uint64_t addr) const {
  // Walk younger -> older from just before the load: the youngest older
  // store to the same word determines the outcome.
  for (std::size_t j = rob_offset; j-- > 0;) {
    const RobEntry& e = rob_[(rob_head_ + j) % rob_.size()];
    if (e.cls == OpClass::kStore && e.mem_addr == addr) {
      return e.issued ? 1 : -1;
    }
  }
  return 0;
}

bool Core::mshr_available() const {
  if (cfg_.mshr_entries <= 0) return true;
  std::erase_if(mshrs_, [this](std::int64_t r) { return r <= now_; });
  return static_cast<int>(mshrs_.size()) < cfg_.mshr_entries;
}

void Core::mshr_allocate(std::int64_t release_cycle) {
  if (cfg_.mshr_entries > 0) mshrs_.push_back(release_cycle);
}

void Core::set_frequency(double hz) {
  if (hz <= 0.0) throw std::invalid_argument("frequency must be positive");
  const double cycles = cfg_.memory_latency_ns * 1e-9 * hz;
  memory_latency_cycles_ = std::max(1, static_cast<int>(std::ceil(cycles)));
}

ActivityFrame Core::take_interval_activity() {
  ActivityFrame out = interval_;
  interval_.clear();
  return out;
}

int Core::queue_class(OpClass cls) const {
  switch (cls) {
    case OpClass::kIntAlu:
    case OpClass::kIntMul:
    case OpClass::kBranch:
      return 0;
    case OpClass::kFpAdd:
    case OpClass::kFpMul:
      return 1;
    case OpClass::kLoad:
    case OpClass::kStore:
      return 2;
  }
  return 0;
}

Core::RobEntry& Core::rob_at_seq(std::uint64_t seq) {
  assert(seq >= head_seq_ && seq - head_seq_ < rob_count_);
  return rob_[(rob_head_ + (seq - head_seq_)) % rob_.size()];
}

const Core::RobEntry& Core::rob_at_seq(std::uint64_t seq) const {
  assert(seq >= head_seq_ && seq - head_seq_ < rob_count_);
  return rob_[(rob_head_ + (seq - head_seq_)) % rob_.size()];
}

bool Core::source_ready(std::uint64_t src_seq) const {
  if (src_seq < head_seq_) return true;  // producer already committed
  const RobEntry& producer = rob_at_seq(src_seq);
  return producer.issued && producer.done_cycle <= now_;
}

int Core::ifetch_latency(std::uint64_t pc) {
  interval_.add(BlockId::kICache);
  interval_.add(BlockId::kITB);
  int latency = 0;
  if (!itb_.access(pc)) latency += cfg_.tlb_miss_penalty;
  if (!icache_.access(pc)) {
    ++stats_.icache_misses;
    interval_.add(BlockId::kL2);
    interval_.add(BlockId::kL2Left, 0.5);
    interval_.add(BlockId::kL2Right, 0.5);
    if (l2_.access(pc)) {
      latency += cfg_.l2_hit_latency;
    } else {
      ++stats_.l2_misses;
      latency += memory_latency_cycles_;
    }
  }
  return latency;
}

int Core::load_store_latency(std::uint64_t addr) {
  interval_.add(BlockId::kDCache);
  interval_.add(BlockId::kDTB);
  int latency = cfg_.l1_hit_latency;
  if (!dtb_.access(addr)) latency += cfg_.tlb_miss_penalty;
  if (!dcache_.access(addr)) {
    ++stats_.dcache_misses;
    interval_.add(BlockId::kL2);
    interval_.add(BlockId::kL2Left, 0.5);
    interval_.add(BlockId::kL2Right, 0.5);
    if (l2_.access(addr)) {
      latency += cfg_.l2_hit_latency;
    } else {
      ++stats_.l2_misses;
      latency += memory_latency_cycles_;
    }
  }
  return latency;
}

void Core::do_fetch() {
  // Mispredict redirect: resume once the branch has resolved and the
  // front end has refilled.
  if (fetch_halted_) {
    if (redirect_cycle_ >= 0 && now_ >= redirect_cycle_) {
      fetch_halted_ = false;
      redirect_cycle_ = -1;
    } else {
      return;
    }
  }
  if (now_ < icache_ready_cycle_) return;  // I-cache miss pending

  // Duty-cycled fetch gating (evenly striped).
  if (gate_fraction_ > 0.0) {
    gate_accumulator_ += gate_fraction_;
    if (gate_accumulator_ >= 1.0) {
      gate_accumulator_ -= 1.0;
      ++stats_.fetch_gated_cycles;
      return;
    }
  }

  if (static_cast<int>(frontend_count_) >= cfg_.frontend_entries) return;

  bool accessed_icache = false;
  for (int i = 0; i < cfg_.fetch_width &&
                  static_cast<int>(frontend_count_) < cfg_.frontend_entries;
       ++i) {
    MicroOp op;
    if (has_pending_op_) {
      // The op whose I-fetch missed; its line has arrived by now.
      op = pending_op_;
      has_pending_op_ = false;
      accessed_icache = true;
    } else {
      op = trace_->next();
    }
    if (!accessed_icache) {
      // One I-cache/ITB access per fetch group.
      const int miss_latency = ifetch_latency(op.pc);
      accessed_icache = true;
      if (miss_latency > 0) {
        // Miss: nothing fetched this cycle; retry once the line arrives.
        icache_ready_cycle_ = now_ + miss_latency;
        pending_op_ = op;
        has_pending_op_ = true;
        return;
      }
    }
    ++stats_.fetched;

    bool stop_after = false;
    bool mispredicted = false;
    if (op.cls == OpClass::kBranch) {
      ++stats_.branches;
      interval_.add(BlockId::kBPred);
      const bool predicted = predict_branch(op.pc);
      update_predictor(op.pc, op.branch_taken);
      if (predicted != op.branch_taken) {
        ++stats_.mispredicts;
        mispredicted = true;
        stop_after = true;  // fetch halts until the branch resolves
      } else if (op.branch_taken) {
        stop_after = true;  // taken-branch fetch break
      }
    }
    frontend_[(frontend_head_ + frontend_count_) % frontend_.size()] = {
        op, mispredicted};
    ++frontend_count_;
    if (mispredicted) {
      fetch_halted_ = true;
      redirect_cycle_ = -1;
    }
    if (stop_after) break;
  }
}

void Core::do_rename() {
  for (int i = 0; i < cfg_.rename_width && frontend_count_ > 0; ++i) {
    if (rob_count_ >= rob_.size()) break;
    const FrontendOp& fop = frontend_[frontend_head_];
    const int qc = queue_class(fop.op.cls);
    const int cap = qc == 0   ? cfg_.int_queue_entries
                    : qc == 1 ? cfg_.fp_queue_entries
                              : cfg_.ls_queue_entries;
    if (queue_count_[qc] >= cap) break;

    RobEntry& e = rob_[(rob_head_ + rob_count_) % rob_.size()];
    e.cls = fop.op.cls;
    e.num_srcs = fop.op.num_srcs;
    e.seq = next_seq_;
    e.mem_addr = fop.op.mem_addr;
    e.issued = false;
    e.done_cycle = 0;
    e.mispredicted = fop.mispredicted;
    // Producers that predate the trace (distance beyond the first
    // instruction) are treated as always ready: keep only in-range ones.
    int kept = 0;
    for (int s = 0; s < fop.op.num_srcs; ++s) {
      const auto dist = static_cast<std::uint64_t>(fop.op.src_dist[s]);
      if (dist <= next_seq_) e.src_seq[kept++] = next_seq_ - dist;
    }
    e.num_srcs = static_cast<std::uint8_t>(kept);
    ++next_seq_;
    ++rob_count_;
    ++queue_count_[qc];
    // `fop` aliases the ring's front slot: account for it before popping.
    interval_.add(is_fp(fop.op.cls) ? BlockId::kFPMap : BlockId::kIntMap);
    frontend_head_ = (frontend_head_ + 1) % frontend_.size();
    --frontend_count_;
  }
}

void Core::do_issue() {
  // Local-toggling support: gate the whole issue stage on a duty cycle.
  if (issue_gate_fraction_ > 0.0) {
    issue_gate_accumulator_ += issue_gate_fraction_;
    if (issue_gate_accumulator_ >= 1.0) {
      issue_gate_accumulator_ -= 1.0;
      return;
    }
  }
  int issued_total = 0;
  int alu_used = 0;
  int mul_used = 0;
  int fpadd_used = 0;
  int fpmul_used = 0;
  int mem_used = 0;

  for (std::size_t k = 0; k < rob_count_; ++k) {
    if (issued_total >= cfg_.issue_width) break;
    RobEntry& e = rob_[(rob_head_ + k) % rob_.size()];
    if (e.issued) continue;

    // Functional-unit availability.
    bool fu_ok = false;
    switch (e.cls) {
      case OpClass::kIntAlu:
      case OpClass::kBranch:
        fu_ok = alu_used < cfg_.int_alu_units;
        break;
      case OpClass::kIntMul:
        fu_ok = mul_used < cfg_.int_mul_units;
        break;
      case OpClass::kFpAdd:
        fu_ok = fpadd_used < cfg_.fp_add_units;
        break;
      case OpClass::kFpMul:
        fu_ok = fpmul_used < cfg_.fp_mul_units;
        break;
      case OpClass::kLoad:
      case OpClass::kStore:
        fu_ok = mem_used < cfg_.mem_ports;
        break;
    }
    if (!fu_ok) continue;

    bool ready = true;
    for (int s = 0; s < e.num_srcs; ++s) {
      if (!source_ready(e.src_seq[s])) {
        ready = false;
        break;
      }
    }
    if (!ready) continue;

    // Issue.
    int latency = 0;
    switch (e.cls) {
      case OpClass::kIntAlu:
        latency = cfg_.int_alu_latency;
        ++alu_used;
        interval_.add(BlockId::kIntExec);
        interval_.add(BlockId::kIntReg, e.num_srcs + 1.0);
        break;
      case OpClass::kBranch:
        latency = cfg_.int_alu_latency;
        ++alu_used;
        interval_.add(BlockId::kIntExec);
        interval_.add(BlockId::kIntReg, e.num_srcs);
        break;
      case OpClass::kIntMul:
        latency = cfg_.int_mul_latency;
        ++mul_used;
        interval_.add(BlockId::kIntExec);
        interval_.add(BlockId::kIntReg, e.num_srcs + 1.0);
        break;
      case OpClass::kFpAdd:
        latency = cfg_.fp_add_latency;
        ++fpadd_used;
        interval_.add(BlockId::kFPAdd);
        interval_.add(BlockId::kFPReg, e.num_srcs + 1.0);
        break;
      case OpClass::kFpMul:
        latency = cfg_.fp_mul_latency;
        ++fpmul_used;
        interval_.add(BlockId::kFPMul);
        interval_.add(BlockId::kFPReg, e.num_srcs + 1.0);
        break;
      case OpClass::kLoad: {
        bool forwarded = false;
        if (cfg_.store_forwarding) {
          const int fwd = forwarding_state(k, e.mem_addr);
          if (fwd < 0) continue;  // older store address unresolved: wait
          if (fwd > 0) {
            latency = 1;  // store-to-load forwarding from the store queue
            forwarded = true;
          }
        }
        if (!forwarded) {
          const bool l1_hit = dcache_.probe(e.mem_addr);
          if (!l1_hit && !mshr_available()) continue;  // structural stall
          latency = load_store_latency(e.mem_addr);
          if (!l1_hit) mshr_allocate(now_ + latency);
        }
        ++mem_used;
        interval_.add(BlockId::kLdStQ);
        interval_.add(BlockId::kIntReg, e.num_srcs + 1.0);
        break;
      }
      case OpClass::kStore: {
        // Address generation; data drains from the store queue post-commit.
        const bool l1_hit = dcache_.probe(e.mem_addr);
        if (!l1_hit && !mshr_available()) continue;  // structural stall
        const int fill = load_store_latency(e.mem_addr);
        if (!l1_hit) mshr_allocate(now_ + fill);
        latency = cfg_.int_alu_latency;
        ++mem_used;
        interval_.add(BlockId::kLdStQ);
        interval_.add(BlockId::kIntReg, e.num_srcs);
        break;
      }
    }
    const int qc = queue_class(e.cls);
    --queue_count_[qc];
    interval_.add(qc == 0   ? BlockId::kIntQ
                  : qc == 1 ? BlockId::kFPQ
                            : BlockId::kLdStQ);
    e.issued = true;
    e.done_cycle = now_ + latency;
    ++issued_total;

    if (e.cls == OpClass::kBranch && e.mispredicted) {
      redirect_cycle_ = e.done_cycle + cfg_.mispredict_penalty;
    }
  }
}

void Core::do_commit() {
  for (int i = 0; i < cfg_.commit_width && rob_count_ > 0; ++i) {
    RobEntry& head = rob_[rob_head_];
    if (!head.issued || head.done_cycle > now_) break;
    rob_head_ = (rob_head_ + 1) % rob_.size();
    --rob_count_;
    ++head_seq_;
    ++stats_.committed;
  }
}

void Core::cycle() {
  do_commit();
  do_issue();
  do_rename();
  do_fetch();
  ++now_;
  ++stats_.cycles;
  interval_.cycles += 1.0;
  interval_.clocked_cycles += 1.0;
}

void Core::idle_cycle(bool clocked) {
  ++now_;
  ++stats_.cycles;
  interval_.cycles += 1.0;
  if (clocked) interval_.clocked_cycles += 1.0;
}

}  // namespace hydra::arch
