#include "arch/core.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace hydra::arch {

using floorplan::BlockId;

Core::Core(const CoreConfig& cfg, TraceSource& trace)
    : cfg_(cfg),
      trace_(&trace),
      bpred_(cfg.bpred_index_bits, cfg.bpred_history_bits),
      tournament_(cfg.tournament),
      icache_(cfg.icache),
      dcache_(cfg.dcache),
      l2_(cfg.l2),
      itb_(),
      dtb_() {
  if (cfg_.rob_entries <= 0 || cfg_.fetch_width <= 0 ||
      cfg_.rename_width <= 0 || cfg_.issue_width <= 0 ||
      cfg_.commit_width <= 0 || cfg_.frontend_entries <= 0) {
    throw std::invalid_argument("core widths/capacities must be positive");
  }
  rob_.resize(static_cast<std::size_t>(cfg_.rob_entries));
  slot_state_.assign(rob_.size(), kSlotIssued);
  scan_mask_.assign((rob_.size() + 63) / 64, 0);
  consumer_head_.assign(rob_.size(), -1);
  consumer_next_.assign(rob_.size(), -1);
  frontend_.resize(static_cast<std::size_t>(cfg_.frontend_entries));
  set_frequency(cfg_.nominal_frequency_hz);
}

void Core::set_fetch_gate_fraction(double g) {
  if (g < 0.0 || g > 1.0) {
    throw std::invalid_argument("fetch gate fraction must be in [0, 1]");
  }
  gate_fraction_ = g;
}

void Core::set_issue_gate_fraction(double g) {
  if (g < 0.0 || g > 1.0) {
    throw std::invalid_argument("issue gate fraction must be in [0, 1]");
  }
  issue_gate_fraction_ = g;
}

bool Core::predict_branch(std::uint64_t pc) {
  return cfg_.predictor == CoreConfig::Predictor::kTournament
             ? tournament_.predict(pc)
             : bpred_.predict(pc);
}

void Core::update_predictor(std::uint64_t pc, bool taken) {
  if (cfg_.predictor == CoreConfig::Predictor::kTournament) {
    tournament_.update(pc, taken);
  } else {
    bpred_.update(pc, taken);
  }
}

int Core::forwarding_state(std::size_t rob_offset, std::uint64_t addr) const {
  // Walk younger -> older from just before the load: the youngest older
  // store to the same word determines the outcome. Ring indices wrap
  // with a compare instead of a per-step modulo (rob_offset <= size, so
  // head + offset < 2 * size).
  const std::size_t rob_size = rob_.size();
  std::size_t idx = rob_head_ + rob_offset;
  if (idx >= rob_size) idx -= rob_size;
  for (std::size_t j = rob_offset; j-- > 0;) {
    idx = idx == 0 ? rob_size - 1 : idx - 1;
    const RobEntry& e = rob_[idx];
    if (e.cls == OpClass::kStore && e.mem_addr == addr) {
      return e.issued ? 1 : -1;
    }
  }
  return 0;
}

bool Core::mshr_available() const {
  if (cfg_.mshr_entries <= 0) return true;
  std::erase_if(mshrs_, [this](std::int64_t r) { return r <= now_; });
  return static_cast<int>(mshrs_.size()) < cfg_.mshr_entries;
}

std::int64_t Core::mshr_min_release() const {
  // Only meaningful right after mshr_available() returned false, so all
  // outstanding release times are > now_.
  std::int64_t m = std::numeric_limits<std::int64_t>::max();
  for (std::int64_t r : mshrs_) m = std::min(m, r);
  return m;
}

void Core::mshr_allocate(std::int64_t release_cycle) {
  if (cfg_.mshr_entries > 0) mshrs_.push_back(release_cycle);
}

void Core::set_frequency(double hz) {
  if (hz <= 0.0) throw std::invalid_argument("frequency must be positive");
  const double cycles = cfg_.memory_latency_ns * 1e-9 * hz;
  memory_latency_cycles_ = std::max(1, static_cast<int>(std::ceil(cycles)));
}

ActivityFrame Core::take_interval_activity() {
  ActivityFrame out = interval_;
  interval_.clear();
  return out;
}

int Core::queue_class(OpClass cls) const {
  switch (cls) {
    case OpClass::kIntAlu:
    case OpClass::kIntMul:
    case OpClass::kBranch:
      return 0;
    case OpClass::kFpAdd:
    case OpClass::kFpMul:
      return 1;
    case OpClass::kLoad:
    case OpClass::kStore:
      return 2;
  }
  return 0;
}

Core::RobEntry& Core::rob_at_seq(std::uint64_t seq) {
  assert(seq >= head_seq_ && seq - head_seq_ < rob_count_);
  std::size_t idx = rob_head_ + static_cast<std::size_t>(seq - head_seq_);
  if (idx >= rob_.size()) idx -= rob_.size();
  return rob_[idx];
}

const Core::RobEntry& Core::rob_at_seq(std::uint64_t seq) const {
  assert(seq >= head_seq_ && seq - head_seq_ < rob_count_);
  std::size_t idx = rob_head_ + static_cast<std::size_t>(seq - head_seq_);
  if (idx >= rob_.size()) idx -= rob_.size();
  return rob_[idx];
}

int Core::ifetch_latency(std::uint64_t pc) {
  interval_.add(BlockId::kICache);
  interval_.add(BlockId::kITB);
  int latency = 0;
  if (!itb_.access(pc)) latency += cfg_.tlb_miss_penalty;
  if (!icache_.access(pc)) {
    ++stats_.icache_misses;
    interval_.add(BlockId::kL2);
    interval_.add(BlockId::kL2Left, 0.5);
    interval_.add(BlockId::kL2Right, 0.5);
    if (l2_.access(pc)) {
      latency += cfg_.l2_hit_latency;
    } else {
      ++stats_.l2_misses;
      latency += memory_latency_cycles_;
    }
  }
  return latency;
}

int Core::load_store_latency(std::uint64_t addr) {
  interval_.add(BlockId::kDCache);
  interval_.add(BlockId::kDTB);
  int latency = cfg_.l1_hit_latency;
  if (!dtb_.access(addr)) latency += cfg_.tlb_miss_penalty;
  if (!dcache_.access(addr)) {
    ++stats_.dcache_misses;
    interval_.add(BlockId::kL2);
    interval_.add(BlockId::kL2Left, 0.5);
    interval_.add(BlockId::kL2Right, 0.5);
    if (l2_.access(addr)) {
      latency += cfg_.l2_hit_latency;
    } else {
      ++stats_.l2_misses;
      latency += memory_latency_cycles_;
    }
  }
  return latency;
}

void Core::do_fetch() {
  // Mispredict redirect: resume once the branch has resolved and the
  // front end has refilled.
  if (fetch_halted_) {
    if (redirect_cycle_ >= 0 && now_ >= redirect_cycle_) {
      fetch_halted_ = false;
      redirect_cycle_ = -1;
    } else {
      return;
    }
  }
  if (now_ < icache_ready_cycle_) return;  // I-cache miss pending

  // Duty-cycled fetch gating (evenly striped).
  if (gate_fraction_ > 0.0) {
    gate_accumulator_ += gate_fraction_;
    if (gate_accumulator_ >= 1.0) {
      gate_accumulator_ -= 1.0;
      ++stats_.fetch_gated_cycles;
      return;
    }
  }

  if (static_cast<int>(frontend_count_) >= cfg_.frontend_entries) return;

  bool accessed_icache = false;
  for (int i = 0; i < cfg_.fetch_width &&
                  static_cast<int>(frontend_count_) < cfg_.frontend_entries;
       ++i) {
    MicroOp op;
    if (has_pending_op_) {
      // The op whose I-fetch missed; its line has arrived by now.
      op = pending_op_;
      has_pending_op_ = false;
      accessed_icache = true;
    } else {
      op = trace_->next();
    }
    if (!accessed_icache) {
      // One I-cache/ITB access per fetch group.
      const int miss_latency = ifetch_latency(op.pc);
      accessed_icache = true;
      if (miss_latency > 0) {
        // Miss: nothing fetched this cycle; retry once the line arrives.
        icache_ready_cycle_ = now_ + miss_latency;
        pending_op_ = op;
        has_pending_op_ = true;
        return;
      }
    }
    ++stats_.fetched;

    bool stop_after = false;
    bool mispredicted = false;
    if (op.cls == OpClass::kBranch) {
      ++stats_.branches;
      interval_.add(BlockId::kBPred);
      const bool predicted = predict_branch(op.pc);
      update_predictor(op.pc, op.branch_taken);
      if (predicted != op.branch_taken) {
        ++stats_.mispredicts;
        mispredicted = true;
        stop_after = true;  // fetch halts until the branch resolves
      } else if (op.branch_taken) {
        stop_after = true;  // taken-branch fetch break
      }
    }
    std::size_t tail = frontend_head_ + frontend_count_;
    if (tail >= frontend_.size()) tail -= frontend_.size();
    frontend_[tail] = {op, mispredicted};
    ++frontend_count_;
    if (mispredicted) {
      fetch_halted_ = true;
      redirect_cycle_ = -1;
    }
    if (stop_after) break;
  }
}

void Core::do_rename() {
  const std::size_t rob_size = rob_.size();
  const std::size_t fe_size = frontend_.size();
  for (int i = 0; i < cfg_.rename_width && frontend_count_ > 0; ++i) {
    if (rob_count_ >= rob_size) break;
    const FrontendOp& fop = frontend_[frontend_head_];
    const int qc = queue_class(fop.op.cls);
    const int cap = qc == 0   ? cfg_.int_queue_entries
                    : qc == 1 ? cfg_.fp_queue_entries
                              : cfg_.ls_queue_entries;
    if (queue_count_[qc] >= cap) break;

    std::size_t tail = rob_head_ + rob_count_;
    if (tail >= rob_size) tail -= rob_size;
    RobEntry& e = rob_[tail];
    e.cls = fop.op.cls;
    e.num_srcs = fop.op.num_srcs;
    e.seq = next_seq_;
    e.mem_addr = fop.op.mem_addr;
    e.issued = false;
    e.done_cycle = 0;
    e.mispredicted = fop.mispredicted;
    slot_state_[tail] = kSlotBlocked;
    assert(consumer_head_[tail] == -1);  // emptied when the slot issued
    scan_mask_[tail >> 6] |= std::uint64_t{1} << (tail & 63);
    // A fresh entry may be issuable immediately: cancel any issue-scan
    // sleep so the next do_issue looks at it.
    issue_wake_cycle_ = 0;
    // Producers that predate the trace (distance beyond the first
    // instruction) are treated as always ready: keep only in-range ones.
    int kept = 0;
    for (int s = 0; s < fop.op.num_srcs; ++s) {
      const auto dist = static_cast<std::uint64_t>(fop.op.src_dist[s]);
      if (dist <= next_seq_) e.src_seq[kept++] = next_seq_ - dist;
    }
    e.num_srcs = static_cast<std::uint8_t>(kept);
    ++next_seq_;
    ++rob_count_;
    ++queue_count_[qc];
    // `fop` aliases the ring's front slot: account for it before popping.
    interval_.add(is_fp(fop.op.cls) ? BlockId::kFPMap : BlockId::kIntMap);
    if (++frontend_head_ == fe_size) frontend_head_ = 0;
    --frontend_count_;
  }
}

void Core::do_issue() {
  // Local-toggling support: gate the whole issue stage on a duty cycle.
  if (issue_gate_fraction_ > 0.0) {
    issue_gate_accumulator_ += issue_gate_fraction_;
    if (issue_gate_accumulator_ >= 1.0) {
      issue_gate_accumulator_ -= 1.0;
      return;
    }
  }
  // Issue-scan sleep: a previous scan proved nothing can issue before
  // this cycle (rename cancels the sleep when it dispatches an entry).
  // The skipped scans are side-effect-free no-ops, so skipping them is
  // invisible in the simulated results.
  if (now_ < issue_wake_cycle_) return;

  // Unissued entries in flight == total issue-queue occupancy.
  if (queue_count_[0] + queue_count_[1] + queue_count_[2] == 0) return;

  const std::size_t rob_size = rob_.size();

  // Wake-time bookkeeping for the sleep above: the earliest future cycle
  // at which any scanned entry could become issuable, and whether any
  // rejection had a cause (functional-unit limits) the wake time cannot
  // bound. Entries parked on a consumer list need no wake entry: their
  // producer is older, so it is scanned earlier (or parked behind a
  // still-older producer) and either issued (no sleep) or contributed
  // its own wake time — inductively down to the oldest unissued entry,
  // which is always on the scan set because its sources are all issued
  // or committed.
  std::int64_t wake = std::numeric_limits<std::int64_t>::max();
  bool fu_limited = false;

  const int issue_width = cfg_.issue_width;
  int issued_total = 0;
  int alu_used = 0;
  int mul_used = 0;
  int fpadd_used = 0;
  int fpmul_used = 0;
  int mem_used = 0;

  // Examine one scan-set entry; returns true when it issued (and so may
  // have re-inserted parked consumers into the scan set).
  auto visit = [&](std::size_t cur) -> bool {
    std::int64_t st = slot_state_[cur];
    assert(st != kSlotIssued);  // issued slots are never on the scan set
    if (st == kSlotBlocked) {
      // Resolve readiness: once every producer has issued, the earliest-
      // ready cycle is fixed (committed producers were ready before now_
      // and contribute nothing). Identical truth value to the old
      // per-source source_ready() conjunction.
      const RobEntry& e = rob_[cur];
      std::int64_t rc = 0;
      std::size_t block_pidx = rob_size;
      for (int s = 0; s < e.num_srcs; ++s) {
        const std::uint64_t ss = e.src_seq[s];
        if (ss < head_seq_) continue;  // producer already committed
        std::size_t pidx =
            rob_head_ + static_cast<std::size_t>(ss - head_seq_);
        if (pidx >= rob_size) pidx -= rob_size;
        if (!rob_[pidx].issued) {
          block_pidx = pidx;
          break;
        }
        rc = std::max(rc, rob_[pidx].done_cycle);
      }
      if (block_pidx != rob_size) {
        // Park on the unissued producer's consumer list, off the scan
        // set; the producer's issue re-inserts it — exactly when a full
        // scan could first observe it unblocked.
        consumer_next_[cur] = consumer_head_[block_pidx];
        consumer_head_[block_pidx] = static_cast<std::int32_t>(cur);
        scan_mask_[cur >> 6] &= ~(std::uint64_t{1} << (cur & 63));
        return false;
      }
      slot_state_[cur] = st = rc;
    }
    if (st > now_) {
      wake = std::min(wake, st);
      return false;
    }

    RobEntry& e = rob_[cur];
    // Age offset of this entry (distance from the ROB head slot).
    const std::size_t k =
        cur >= rob_head_ ? cur - rob_head_ : cur + rob_size - rob_head_;

    // Functional-unit availability (checked after readiness: both must
    // hold for an issue, so the order is behaviour-neutral, and the
    // readiness reject is by far the more common one).
    bool fu_ok = false;
    switch (e.cls) {
      case OpClass::kIntAlu:
      case OpClass::kBranch:
        fu_ok = alu_used < cfg_.int_alu_units;
        break;
      case OpClass::kIntMul:
        fu_ok = mul_used < cfg_.int_mul_units;
        break;
      case OpClass::kFpAdd:
        fu_ok = fpadd_used < cfg_.fp_add_units;
        break;
      case OpClass::kFpMul:
        fu_ok = fpmul_used < cfg_.fp_mul_units;
        break;
      case OpClass::kLoad:
      case OpClass::kStore:
        fu_ok = mem_used < cfg_.mem_ports;
        break;
    }
    if (!fu_ok) {
      fu_limited = true;
      return false;
    }

    // Issue.
    int latency = 0;
    switch (e.cls) {
      case OpClass::kIntAlu:
        latency = cfg_.int_alu_latency;
        ++alu_used;
        interval_.add(BlockId::kIntExec);
        interval_.add(BlockId::kIntReg, e.num_srcs + 1.0);
        break;
      case OpClass::kBranch:
        latency = cfg_.int_alu_latency;
        ++alu_used;
        interval_.add(BlockId::kIntExec);
        interval_.add(BlockId::kIntReg, e.num_srcs);
        break;
      case OpClass::kIntMul:
        latency = cfg_.int_mul_latency;
        ++mul_used;
        interval_.add(BlockId::kIntExec);
        interval_.add(BlockId::kIntReg, e.num_srcs + 1.0);
        break;
      case OpClass::kFpAdd:
        latency = cfg_.fp_add_latency;
        ++fpadd_used;
        interval_.add(BlockId::kFPAdd);
        interval_.add(BlockId::kFPReg, e.num_srcs + 1.0);
        break;
      case OpClass::kFpMul:
        latency = cfg_.fp_mul_latency;
        ++fpmul_used;
        interval_.add(BlockId::kFPMul);
        interval_.add(BlockId::kFPReg, e.num_srcs + 1.0);
        break;
      case OpClass::kLoad: {
        bool forwarded = false;
        if (cfg_.store_forwarding) {
          const int fwd = forwarding_state(k, e.mem_addr);
          if (fwd < 0) return false;  // older store address unresolved: wait
          if (fwd > 0) {
            latency = 1;  // store-to-load forwarding from the store queue
            forwarded = true;
          }
        }
        if (!forwarded) {
          const bool l1_hit = dcache_.probe(e.mem_addr);
          if (!l1_hit && !mshr_available()) {  // structural stall
            wake = std::min(wake, mshr_min_release());
            return false;
          }
          latency = load_store_latency(e.mem_addr);
          if (!l1_hit) mshr_allocate(now_ + latency);
        }
        ++mem_used;
        interval_.add(BlockId::kLdStQ);
        interval_.add(BlockId::kIntReg, e.num_srcs + 1.0);
        break;
      }
      case OpClass::kStore: {
        // Address generation; data drains from the store queue post-commit.
        const bool l1_hit = dcache_.probe(e.mem_addr);
        if (!l1_hit && !mshr_available()) {  // structural stall
          wake = std::min(wake, mshr_min_release());
          return false;
        }
        const int fill = load_store_latency(e.mem_addr);
        if (!l1_hit) mshr_allocate(now_ + fill);
        latency = cfg_.int_alu_latency;
        ++mem_used;
        interval_.add(BlockId::kLdStQ);
        interval_.add(BlockId::kIntReg, e.num_srcs);
        break;
      }
    }
    const int qc = queue_class(e.cls);
    --queue_count_[qc];
    interval_.add(qc == 0   ? BlockId::kIntQ
                  : qc == 1 ? BlockId::kFPQ
                            : BlockId::kLdStQ);
    e.issued = true;
    slot_state_[cur] = kSlotIssued;
    scan_mask_[cur >> 6] &= ~(std::uint64_t{1} << (cur & 63));
    e.done_cycle = now_ + latency;
    ++issued_total;

    // Wake parked consumers: back onto the scan set (still kSlotBlocked,
    // so their next visit re-resolves against all sources). Consumers
    // are strictly younger, so they land at later traversal positions
    // and this scan still reaches them — matching the old full scan,
    // where an entry whose producer issued earlier in the same pass
    // resolved in that same pass.
    for (std::int32_t c = consumer_head_[cur]; c >= 0;) {
      const std::int32_t nc = consumer_next_[c];
      scan_mask_[static_cast<std::size_t>(c) >> 6] |=
          std::uint64_t{1} << (c & 63);
      c = nc;
    }
    consumer_head_[cur] = -1;

    if (e.cls == OpClass::kBranch && e.mispredicted) {
      redirect_cycle_ = e.done_cycle + cfg_.mispredict_penalty;
    }
    return true;
  };

  // Age-ordered traversal of the scan set: the live ROB region
  // [rob_head_, rob_head_ + rob_count_) as up to two linear slot spans
  // (slot order within a span IS age order, and every slot of the
  // wrapped span is younger than the whole first span). Only live
  // unissued unparked slots ever have their bit set, so whole words can
  // be consumed after masking the span edges.
  auto scan_span = [&](std::size_t lo, std::size_t hi) {
    std::size_t wi = lo >> 6;
    const std::size_t wlast = (hi - 1) >> 6;
    std::uint64_t lo_mask = ~std::uint64_t{0} << (lo & 63);
    for (; wi <= wlast; ++wi) {
      const std::uint64_t hi_mask =
          (wi == wlast && (hi & 63) != 0)
              ? ~std::uint64_t{0} >> (64 - (hi & 63))
              : ~std::uint64_t{0};
      const std::uint64_t span_mask = lo_mask & hi_mask;
      lo_mask = ~std::uint64_t{0};
      std::uint64_t w = scan_mask_[wi] & span_mask;
      while (w != 0) {
        const int b = std::countr_zero(w);
        w &= w - 1;
        if (visit((wi << 6) + static_cast<std::size_t>(b))) {
          if (issued_total >= issue_width) return true;
          // The issue may have re-inserted consumers anywhere ahead;
          // re-read this word's not-yet-visited remainder (later words
          // are re-read when reached).
          w = scan_mask_[wi] & span_mask & (~std::uint64_t{0} << b << 1);
        }
      }
    }
    return false;
  };

  const std::size_t tail = rob_head_ + rob_count_;
  const bool width_full = scan_span(rob_head_, std::min(tail, rob_size));
  if (!width_full && tail > rob_size) scan_span(0, tail - rob_size);

  // Nothing issued and every rejection has a bounded wake time: sleep
  // until the earliest of them. Issue events (which could unblock
  // dependents) cannot happen before then, and rename cancels the sleep
  // when it dispatches fresh entries.
  if (issued_total == 0 && !fu_limited && wake > now_ &&
      wake != std::numeric_limits<std::int64_t>::max()) {
    issue_wake_cycle_ = wake;
  }
}

void Core::do_commit() {
  const std::size_t rob_size = rob_.size();
  for (int i = 0; i < cfg_.commit_width && rob_count_ > 0; ++i) {
    const RobEntry& head = rob_[rob_head_];
    if (!head.issued || head.done_cycle > now_) break;
    if (++rob_head_ == rob_size) rob_head_ = 0;
    --rob_count_;
    ++head_seq_;
    ++stats_.committed;
  }
}

void Core::cycle() {
  do_commit();
  do_issue();
  do_rename();
  do_fetch();
  ++now_;
  ++stats_.cycles;
  interval_.cycles += 1.0;
  interval_.clocked_cycles += 1.0;
}

void Core::idle_cycle(bool clocked) {
  ++now_;
  ++stats_.cycles;
  interval_.cycles += 1.0;
  if (clocked) interval_.clocked_cycles += 1.0;
}

void Core::flush_pipeline() {
  // Front end: drop buffered ops, any pending missed I-fetch, and any
  // outstanding mispredict redirect — the squashed thread owns them all.
  frontend_head_ = 0;
  frontend_count_ = 0;
  fetch_halted_ = false;
  redirect_cycle_ = -1;
  icache_ready_cycle_ = 0;
  has_pending_op_ = false;
  // ROB and issue machinery: advancing head_seq_ to next_seq_ makes every
  // squashed seq read as already-committed, which is exactly how do_issue
  // treats producers outside the ROB (ss < head_seq_ -> ready).
  rob_head_ = 0;
  rob_count_ = 0;
  head_seq_ = next_seq_;
  std::fill(slot_state_.begin(), slot_state_.end(), kSlotIssued);
  std::fill(scan_mask_.begin(), scan_mask_.end(), std::uint64_t{0});
  std::fill(consumer_head_.begin(), consumer_head_.end(), -1);
  std::fill(consumer_next_.begin(), consumer_next_.end(), -1);
  queue_count_[0] = queue_count_[1] = queue_count_[2] = 0;
  mshrs_.clear();
  issue_wake_cycle_ = 0;  // the next dispatched entry may be ready at once
}

void Core::idle_cycles(std::uint64_t n, bool clocked) {
  // Bit-identical to n x idle_cycle(clocked): the counters are integers
  // or integer-valued doubles (exact below 2^53), so adding n once gives
  // the same bits as adding 1.0 n times.
  now_ += static_cast<std::int64_t>(n);
  stats_.cycles += n;
  interval_.cycles += static_cast<double>(n);
  if (clocked) interval_.clocked_cycles += static_cast<double>(n);
}

}  // namespace hydra::arch
