#include "arch/tlb.h"

#include <bit>
#include <stdexcept>

namespace hydra::arch {

Tlb::Tlb(std::size_t entries, std::size_t page_bytes) {
  if (entries == 0) throw std::invalid_argument("TLB needs entries");
  if (page_bytes == 0 || !std::has_single_bit(page_bytes)) {
    throw std::invalid_argument("page size must be a power of two");
  }
  page_shift_ = std::countr_zero(page_bytes);
  entries_.assign(entries, Entry{});
}

bool Tlb::access(std::uint64_t addr) {
  const std::uint64_t vpn = addr >> page_shift_;
  ++stamp_;
  for (Entry& e : entries_) {
    if (e.valid && e.vpn == vpn) {
      e.lru = stamp_;
      ++hits_;
      return true;
    }
  }
  // Miss: fill the first invalid entry, else the least recently used.
  Entry* victim = nullptr;
  for (Entry& e : entries_) {
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (victim == nullptr || e.lru < victim->lru) victim = &e;
  }
  *victim = {vpn, stamp_, true};
  ++misses_;
  return false;
}

}  // namespace hydra::arch
