// Synthetic instruction-stream generator.
//
// Stands in for the paper's 500M-instruction SimPoint samples of
// SPECcpu2000 Alpha binaries (see DESIGN.md, Substitutions). A profile
// describes the *statistical* structure of a program — instruction mix,
// dependency-distance distribution (which bounds exploitable ILP), branch
// predictability, instruction/data footprints, and a phase schedule — and
// the generator emits a deterministic, seeded stream with those
// statistics. The out-of-order core extracts ILP from this stream exactly
// as it would from a real trace, which is the property the DTM results
// rest on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/isa.h"
#include "util/rng.h"

namespace hydra::workload {

/// One program phase; the schedule cycles through phases in order.
struct PhaseSpec {
  std::uint64_t length_instructions = 1'000'000;
  /// Multiplier (> 0) on mean dependency distance; > 1 means more ILP
  /// (hotter, higher IPC), < 1 means serial code.
  double ilp_scale = 1.0;
  /// Multiplier on the probability that a memory access leaves the hot
  /// (L1-resident) region.
  double mem_scale = 1.0;
};

/// Statistical description of a benchmark.
struct WorkloadProfile {
  std::string name;
  std::uint64_t seed = 1;

  // Instruction mix; must sum to 1 (validated by the generator).
  double frac_int_alu = 0.40;
  double frac_int_mul = 0.02;
  double frac_fp_add = 0.05;
  double frac_fp_mul = 0.03;
  double frac_load = 0.26;
  double frac_store = 0.12;
  double frac_branch = 0.12;

  /// Mean register-dependency distance in dynamic instructions (>= 1).
  /// Distances are drawn geometrically around this mean; larger means
  /// more independent work in flight.
  double mean_dep_distance = 5.0;
  int max_dep_distance = 64;
  /// Fraction of ops with two register sources (rest have one).
  double frac_two_src = 0.35;

  /// Fraction of static branches whose outcome is data-dependent noise
  /// (a gshare predictor mispredicts these ~50 % of the time); remaining
  /// branches are strongly biased and learned quickly.
  double hard_branch_fraction = 0.08;

  /// Footprints [bytes].
  std::uint64_t inst_footprint = 48 * 1024;     ///< fits L1I when small
  std::uint64_t data_hot_footprint = 32 * 1024; ///< L1-resident set
  std::uint64_t data_warm_footprint = 128 * 1024;  ///< L2-resident set
  /// Probability a memory access targets the warm (L2) region.
  double warm_access_fraction = 0.03;
  /// Probability a memory access streams past the L2 (compulsory misses).
  double stream_access_fraction = 0.001;

  std::vector<PhaseSpec> phases;  ///< empty = single uniform phase

  /// Validate internal consistency; throws std::invalid_argument.
  void validate() const;
};

/// Deterministic trace source implementing the profile.
class SyntheticTrace final : public arch::TraceSource {
 public:
  explicit SyntheticTrace(const WorkloadProfile& profile);

  arch::MicroOp next() override;

  std::uint64_t generated() const { return count_; }
  /// Index of the phase the next instruction belongs to.
  std::size_t current_phase() const { return phase_index_; }

 private:
  const PhaseSpec& phase() const;
  void advance_phase();
  std::uint64_t pick_data_address(double mem_scale);

  WorkloadProfile profile_;
  util::Rng rng_;
  std::uint64_t count_ = 0;
  std::size_t phase_index_ = 0;
  std::uint64_t phase_remaining_ = 0;
  std::uint64_t pc_;
  std::uint64_t stream_cursor_ = 0;
  PhaseSpec default_phase_{};
};

}  // namespace hydra::workload
