#include "workload/trace_io.h"

#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace hydra::workload {
namespace {

constexpr char kMagic[4] = {'H', 'Y', 'D', 'T'};

struct Record {
  std::uint8_t cls;
  std::uint8_t num_srcs;
  std::uint8_t taken;
  std::uint8_t pad;
  std::int16_t src_dist[2];
  std::uint32_t pc_offset;
  std::uint64_t mem_addr;
};
static_assert(sizeof(Record) == 24, "trace record must be 24 bytes");

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool read_pod(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return in.gcount() == static_cast<std::streamsize>(sizeof(T));
}

}  // namespace

void write_trace(std::ostream& out, arch::TraceSource& source,
                 std::uint64_t count) {
  out.write(kMagic, 4);
  write_pod(out, kTraceFormatVersion);
  write_pod(out, count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const arch::MicroOp op = source.next();
    if (op.pc < kTraceTextBase ||
        op.pc - kTraceTextBase > std::numeric_limits<std::uint32_t>::max()) {
      throw std::invalid_argument("trace op " + std::to_string(i) +
                                  ": pc outside representable range");
    }
    Record rec{};
    rec.cls = static_cast<std::uint8_t>(op.cls);
    rec.num_srcs = op.num_srcs;
    rec.taken = op.branch_taken ? 1 : 0;
    for (int s = 0; s < 2; ++s) {
      if (op.src_dist[s] > std::numeric_limits<std::int16_t>::max()) {
        throw std::invalid_argument("trace op " + std::to_string(i) +
                                    ": dependency distance exceeds 16 bits");
      }
      rec.src_dist[s] = static_cast<std::int16_t>(op.src_dist[s]);
    }
    rec.pc_offset = static_cast<std::uint32_t>(op.pc - kTraceTextBase);
    rec.mem_addr = op.mem_addr;
    write_pod(out, rec);
  }
  if (!out) throw std::runtime_error("trace write failed");
}

RecordedTrace::RecordedTrace(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (in.gcount() != 4 || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::invalid_argument("not a hydra trace (bad magic)");
  }
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  if (!read_pod(in, &version) || version != kTraceFormatVersion) {
    throw std::invalid_argument("unsupported trace format version");
  }
  if (!read_pod(in, &count) || count == 0) {
    throw std::invalid_argument("empty or truncated trace header");
  }
  // Header is magic + version + count; records are fixed-size after it.
  constexpr std::uint64_t kHeaderBytes =
      4 + sizeof(kTraceFormatVersion) + sizeof(std::uint64_t);
  ops_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Record rec{};
    if (!read_pod(in, &rec)) {
      throw std::invalid_argument(
          "truncated trace payload at record " + std::to_string(i) + " of " +
          std::to_string(count) + " (byte offset " +
          std::to_string(kHeaderBytes + i * sizeof(Record)) + ")");
    }
    if (rec.cls >= arch::kNumOpClasses || rec.num_srcs > 2) {
      throw std::invalid_argument(
          "corrupt trace record " + std::to_string(i) + " (byte offset " +
          std::to_string(kHeaderBytes + i * sizeof(Record)) + "): cls=" +
          std::to_string(rec.cls) + " num_srcs=" +
          std::to_string(rec.num_srcs));
    }
    arch::MicroOp op;
    op.cls = static_cast<arch::OpClass>(rec.cls);
    op.num_srcs = rec.num_srcs;
    op.branch_taken = rec.taken != 0;
    op.src_dist[0] = rec.src_dist[0];
    op.src_dist[1] = rec.src_dist[1];
    op.pc = kTraceTextBase + rec.pc_offset;
    op.mem_addr = rec.mem_addr;
    ops_.push_back(op);
  }
}

arch::MicroOp RecordedTrace::next() {
  const arch::MicroOp op = ops_[cursor_];
  if (++cursor_ >= ops_.size()) {
    cursor_ = 0;
    ++loops_;
  }
  return op;
}

}  // namespace hydra::workload
