#include "workload/synthetic_trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hydra::workload {

using arch::MicroOp;
using arch::OpClass;

void WorkloadProfile::validate() const {
  const double mix = frac_int_alu + frac_int_mul + frac_fp_add + frac_fp_mul +
                     frac_load + frac_store + frac_branch;
  if (std::abs(mix - 1.0) > 1e-9) {
    throw std::invalid_argument("profile '" + name +
                                "': instruction mix must sum to 1");
  }
  if (mean_dep_distance < 1.0) {
    throw std::invalid_argument("profile '" + name +
                                "': mean dependency distance must be >= 1");
  }
  if (inst_footprint < 4096 || data_hot_footprint < 4096) {
    throw std::invalid_argument("profile '" + name +
                                "': footprints implausibly small");
  }
  if (warm_access_fraction < 0.0 || stream_access_fraction < 0.0 ||
      warm_access_fraction + stream_access_fraction > 1.0) {
    throw std::invalid_argument("profile '" + name +
                                "': bad memory-region fractions");
  }
  for (const PhaseSpec& p : phases) {
    if (p.length_instructions == 0 || p.ilp_scale <= 0.0 ||
        p.mem_scale < 0.0) {
      throw std::invalid_argument("profile '" + name + "': bad phase spec");
    }
  }
}

SyntheticTrace::SyntheticTrace(const WorkloadProfile& profile)
    : profile_(profile), rng_(profile.seed) {
  profile_.validate();
  pc_ = 0x12000000;  // arbitrary text base
  if (!profile_.phases.empty()) {
    phase_remaining_ = profile_.phases[0].length_instructions;
  }
}

const PhaseSpec& SyntheticTrace::phase() const {
  if (profile_.phases.empty()) return default_phase_;
  return profile_.phases[phase_index_];
}

void SyntheticTrace::advance_phase() {
  if (profile_.phases.empty()) return;
  if (phase_remaining_ > 0) {
    --phase_remaining_;
    return;
  }
  phase_index_ = (phase_index_ + 1) % profile_.phases.size();
  phase_remaining_ = profile_.phases[phase_index_].length_instructions;
}

std::uint64_t SyntheticTrace::pick_data_address(double mem_scale) {
  const double warm_p =
      std::min(1.0, profile_.warm_access_fraction * mem_scale);
  const double stream_p =
      std::min(1.0 - warm_p, profile_.stream_access_fraction * mem_scale);
  const double r = rng_.uniform();
  constexpr std::uint64_t kDataBase = 0x40000000;
  constexpr std::uint64_t kWarmBase = 0x50000000;
  constexpr std::uint64_t kStreamBase = 0x60000000;
  if (r < stream_p) {
    // Streaming: strided walk through fresh memory, always misses the L2
    // once past its capacity.
    stream_cursor_ += 64;
    return kStreamBase + stream_cursor_;
  }
  if (r < stream_p + warm_p) {
    // Warm region: random within an L2-resident set (8-byte aligned).
    return kWarmBase + (rng_.below(profile_.data_warm_footprint / 8) * 8);
  }
  return kDataBase + (rng_.below(profile_.data_hot_footprint / 8) * 8);
}

MicroOp SyntheticTrace::next() {
  const PhaseSpec& ph = phase();

  MicroOp op;
  // --- Opcode class ---------------------------------------------------
  // Deterministic per pc: the synthetic program has *static* structure
  // (a given instruction slot is always the same kind of instruction),
  // which is what lets branch predictors and caches train — dynamic
  // behaviour (dependencies, addresses, outcomes) still varies per visit.
  // splitmix64 finaliser: full avalanche so neighbouring slots get
  // independent classes (a weak mixer makes classes form runs in pc
  // space, which biases which slots control flow actually visits).
  std::uint64_t z = (pc_ >> 2) + profile_.seed * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const double r = static_cast<double>(z >> 11) * 0x1.0p-53;
  double acc = profile_.frac_int_alu;
  if (r < acc) {
    op.cls = OpClass::kIntAlu;
  } else if (r < (acc += profile_.frac_int_mul)) {
    op.cls = OpClass::kIntMul;
  } else if (r < (acc += profile_.frac_fp_add)) {
    op.cls = OpClass::kFpAdd;
  } else if (r < (acc += profile_.frac_fp_mul)) {
    op.cls = OpClass::kFpMul;
  } else if (r < (acc += profile_.frac_load)) {
    op.cls = OpClass::kLoad;
  } else if (r < (acc += profile_.frac_store)) {
    op.cls = OpClass::kStore;
  } else {
    op.cls = OpClass::kBranch;
  }

  // --- Register dependencies -------------------------------------------
  // Geometric distances around the phase-scaled mean; distance counts in
  // dynamic instructions back to the producer.
  const double mean = std::max(1.0, profile_.mean_dep_distance * ph.ilp_scale);
  const double p = 1.0 / mean;  // geometric success probability
  op.num_srcs = (op.cls == OpClass::kBranch || op.cls == OpClass::kStore ||
                 rng_.chance(profile_.frac_two_src))
                    ? 2
                    : 1;
  if (op.cls == OpClass::kLoad) op.num_srcs = 1;  // address register
  for (int s = 0; s < op.num_srcs; ++s) {
    const int dist = rng_.geometric(p, profile_.max_dep_distance - 1) + 1;
    op.src_dist[s] = dist;
  }

  // --- PC walk ----------------------------------------------------------
  op.pc = pc_;
  const std::uint64_t text_base = 0x12000000;
  if (op.cls == OpClass::kBranch) {
    // Per-static-branch behaviour derived from a hash of the pc: a
    // fraction of branches are data-dependent noise, the rest strongly
    // biased (predictable once learned). Branch slots are stable (the
    // class above is a function of pc), so the predictor sees each
    // static branch repeatedly.
    const std::uint64_t h = ((op.pc >> 2) * 0x9e3779b97f4a7c15ULL) >> 40;
    const bool hard =
        static_cast<double>(h & 0xff) / 256.0 < profile_.hard_branch_fraction;
    if (hard) {
      op.branch_taken = rng_.chance(0.5);
    } else {
      const bool bias_taken = (h & 0x100) != 0;
      op.branch_taken = rng_.chance(bias_taken ? 0.97 : 0.03);
    }
    if (op.branch_taken) {
      // Jump somewhere within the instruction footprint (64-bit aligned
      // bundles keep the I-cache line behaviour realistic).
      pc_ = text_base + (rng_.below(profile_.inst_footprint / 16) * 16);
    } else {
      pc_ += 4;
    }
  } else {
    pc_ += 4;
  }
  if (pc_ >= text_base + profile_.inst_footprint) pc_ = text_base;

  // --- Memory address ----------------------------------------------------
  if (op.cls == OpClass::kLoad || op.cls == OpClass::kStore) {
    op.mem_addr = pick_data_address(ph.mem_scale);
  }

  ++count_;
  advance_phase();
  return op;
}

}  // namespace hydra::workload
