#include "workload/spec_profiles.h"

#include <stdexcept>

namespace hydra::workload {
namespace {

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * 1024;

WorkloadProfile base_int(const char* name, std::uint64_t seed) {
  WorkloadProfile p;
  p.name = name;
  p.seed = seed;
  p.frac_int_alu = 0.46;
  p.frac_int_mul = 0.01;
  p.frac_fp_add = 0.01;
  p.frac_fp_mul = 0.01;
  p.frac_load = 0.26;
  p.frac_store = 0.11;
  p.frac_branch = 0.14;
  return p;
}

WorkloadProfile base_fp(const char* name, std::uint64_t seed) {
  WorkloadProfile p;
  p.name = name;
  p.seed = seed;
  p.frac_int_alu = 0.30;
  p.frac_int_mul = 0.01;
  p.frac_fp_add = 0.16;
  p.frac_fp_mul = 0.12;
  p.frac_load = 0.26;
  p.frac_store = 0.08;
  p.frac_branch = 0.07;
  return p;
}

}  // namespace

std::vector<WorkloadProfile> spec2000_hot_profiles() {
  std::vector<WorkloadProfile> out;

  {
    // mesa: software 3D rendering; FP with good ILP, small kernels.
    WorkloadProfile p = base_fp("mesa", 101);
    p.mean_dep_distance = 8.0;
    p.hard_branch_fraction = 0.03;
    p.inst_footprint = 32 * kKiB;
    p.data_hot_footprint = 32 * kKiB;
    p.warm_access_fraction = 0.04;
    p.phases = {{500'000, 1.15, 0.8}, {350'000, 0.85, 1.3}};
    out.push_back(p);
  }
  {
    // perlbmk: interpreter loop; branchy, hot, compact working set.
    WorkloadProfile p = base_int("perlbmk", 102);
    p.mean_dep_distance = 7.0;
    p.hard_branch_fraction = 0.06;
    p.inst_footprint = 56 * kKiB;
    p.data_hot_footprint = 24 * kKiB;
    p.warm_access_fraction = 0.03;
    p.phases = {{600'000, 1.1, 1.0}, {400'000, 0.9, 1.1}};
    out.push_back(p);
  }
  {
    // gzip: compression; load-heavy with tight dictionaries.
    WorkloadProfile p = base_int("gzip", 103);
    p.frac_load = 0.30;
    p.frac_int_alu = 0.44;
    p.frac_branch = 0.12;
    p.mean_dep_distance = 7.5;
    p.hard_branch_fraction = 0.05;
    p.data_hot_footprint = 48 * kKiB;
    p.warm_access_fraction = 0.05;
    p.phases = {{550'000, 1.05, 1.0}, {300'000, 0.95, 1.4}};
    out.push_back(p);
  }
  {
    // bzip2: block-sorting compression; larger data, phased behaviour.
    WorkloadProfile p = base_int("bzip2", 104);
    p.frac_load = 0.28;
    p.frac_int_alu = 0.45;
    p.frac_branch = 0.13;
    p.mean_dep_distance = 7.0;
    p.hard_branch_fraction = 0.06;
    p.data_hot_footprint = 40 * kKiB;
    p.data_warm_footprint = 160 * kKiB;
    p.warm_access_fraction = 0.06;
    p.phases = {{400'000, 1.1, 0.7}, {400'000, 0.9, 1.5}};
    out.push_back(p);
  }
  {
    // eon: C++ ray tracer; mixed int/FP, very regular and hot.
    WorkloadProfile p = base_fp("eon", 105);
    p.frac_int_alu = 0.40;
    p.frac_fp_add = 0.10;
    p.frac_fp_mul = 0.08;
    p.mean_dep_distance = 9.0;
    p.hard_branch_fraction = 0.02;
    p.inst_footprint = 64 * kKiB;
    p.data_hot_footprint = 28 * kKiB;
    p.warm_access_fraction = 0.03;
    out.push_back(p);
  }
  {
    // crafty: chess search; integer-dense with excellent ILP, hottest
    // integer register file pressure.
    WorkloadProfile p = base_int("crafty", 106);
    p.frac_int_alu = 0.47;
    p.frac_load = 0.24;
    p.frac_store = 0.13;
    p.frac_branch = 0.13;
    p.mean_dep_distance = 6.5;
    p.hard_branch_fraction = 0.04;
    p.inst_footprint = 48 * kKiB;
    p.data_hot_footprint = 32 * kKiB;
    p.warm_access_fraction = 0.04;
    p.phases = {{700'000, 1.1, 1.0}, {300'000, 0.95, 1.0}};
    out.push_back(p);
  }
  {
    // vortex: OO database; larger instruction footprint, store traffic.
    WorkloadProfile p = base_int("vortex", 107);
    p.frac_store = 0.15;
    p.frac_int_alu = 0.42;
    p.mean_dep_distance = 7.5;
    p.hard_branch_fraction = 0.04;
    p.inst_footprint = 64 * kKiB;
    p.data_hot_footprint = 40 * kKiB;
    p.warm_access_fraction = 0.04;
    out.push_back(p);
  }
  {
    // gcc: compiler; big footprints, branchy, phased, moderate IPC.
    WorkloadProfile p = base_int("gcc", 108);
    p.frac_branch = 0.16;
    p.frac_int_alu = 0.44;
    p.data_warm_footprint = 192 * kKiB;
    p.mean_dep_distance = 7.0;
    p.hard_branch_fraction = 0.05;
    p.inst_footprint = 64 * kKiB;
    p.data_hot_footprint = 48 * kKiB;
    p.warm_access_fraction = 0.05;
    p.phases = {{300'000, 1.15, 0.9}, {300'000, 0.85, 1.3},
                {350'000, 1.0, 1.0}};
    out.push_back(p);
  }
  {
    // art: neural-net image recognition; FP-heavy with an L1-busting
    // data set that still fits in L2 — extreme thermal demand in the
    // paper's characterisation.
    WorkloadProfile p = base_fp("art", 109);
    p.frac_fp_add = 0.17;
    p.frac_fp_mul = 0.11;
    p.frac_int_alu = 0.30;
    p.data_warm_footprint = 256 * kKiB;
    p.stream_access_fraction = 0.002;
    p.mean_dep_distance = 10.0;
    p.hard_branch_fraction = 0.015;
    p.inst_footprint = 24 * kKiB;
    p.data_hot_footprint = 48 * kKiB;
    p.warm_access_fraction = 0.08;
    p.phases = {{600'000, 1.1, 1.0}, {450'000, 1.0, 1.2}};
    out.push_back(p);
  }

  return out;
}

WorkloadProfile spec2000_profile(const std::string& name) {
  for (WorkloadProfile& p : spec2000_hot_profiles()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("unknown benchmark profile '" + name + "'");
}

}  // namespace hydra::workload
