// Binary trace recording and replay.
//
// The paper's methodology is trace-driven simulation; this module gives
// the synthetic traces a durable on-disk form so runs can be (a) bit-
// reproduced without the generator, (b) exchanged with other tools, and
// (c) inspected offline. The format is a fixed 24-byte little-endian
// record per micro-op behind a versioned header:
//
//   header: magic "HYDT", u32 version, u64 count
//   record: u8 cls | u8 num_srcs | u8 taken | u8 pad
//           | i16 src_dist[2] | u32 pc_offset | u64 mem_addr
//
// pc is stored as a 32-bit offset from the fixed text base to keep
// records compact.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "arch/isa.h"

namespace hydra::workload {

inline constexpr std::uint32_t kTraceFormatVersion = 1;
inline constexpr std::uint64_t kTraceTextBase = 0x12000000;

/// Serialise `count` micro-ops pulled from `source` to `out`.
/// Throws std::runtime_error on write failure and std::invalid_argument
/// if an op cannot be represented (pc below the text base, distance
/// out of the 16-bit range).
void write_trace(std::ostream& out, arch::TraceSource& source,
                 std::uint64_t count);

/// In-memory trace loaded from the binary format; replays the recorded
/// ops and then loops back to the beginning (traces are finite, the
/// simulator's appetite is not — looping matches SimPoint-style
/// representative-sample semantics).
class RecordedTrace final : public arch::TraceSource {
 public:
  /// Parse a binary trace. Throws std::invalid_argument on a bad header
  /// or truncated payload.
  explicit RecordedTrace(std::istream& in);

  arch::MicroOp next() override;

  std::uint64_t size() const { return ops_.size(); }
  std::uint64_t position() const { return cursor_; }
  /// Number of times the trace has wrapped around.
  std::uint64_t loops() const { return loops_; }

 private:
  std::vector<arch::MicroOp> ops_;
  std::uint64_t cursor_ = 0;
  std::uint64_t loops_ = 0;
};

}  // namespace hydra::workload
