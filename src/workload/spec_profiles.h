// Profiles for the paper's nine hottest SPECcpu2000 benchmarks.
//
// The paper evaluates mesa, perlbmk, gzip, bzip2, eon, crafty, vortex,
// gcc and art — "a mixture of integer and floating-point programs with
// intermediate and extreme thermal demands", all of which run above the
// 81.8 C trigger most of the time on the low-cost package. Each profile
// below is a synthetic stand-in tuned to the published character of the
// benchmark (mix, ILP, footprints, phase behaviour); see DESIGN.md.
#pragma once

#include <vector>

#include "workload/synthetic_trace.h"

namespace hydra::workload {

/// All nine benchmark profiles, in the paper's order.
std::vector<WorkloadProfile> spec2000_hot_profiles();

/// Look up one profile by name; throws std::invalid_argument if unknown.
WorkloadProfile spec2000_profile(const std::string& name);

}  // namespace hydra::workload
