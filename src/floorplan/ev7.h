// Factory for the modelled Alpha-21364-like floorplan (paper Figure 2).
#pragma once

#include "floorplan/floorplan.h"

namespace hydra::floorplan {

/// Build the floorplan of Figure 2: a 21264-style core (15 blocks) placed
/// at the top-centre of a 16 mm x 16 mm die, with L2 cache filling the
/// remainder (split into left / right / bottom blocks). Block order
/// matches BlockId, so `fp.block(static_cast<size_t>(BlockId::kIntReg))`
/// is the integer register file.
Floorplan ev7_floorplan();

}  // namespace hydra::floorplan
