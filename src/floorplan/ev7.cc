#include "floorplan/ev7.h"

namespace hydra::floorplan {
namespace {

constexpr double kMm = 1e-3;

// Die and core dimensions. The 21364 die is roughly 16 mm on a side in
// 0.13 um with the 21264 core occupying ~6.2 mm x 6.2 mm; the paper
// replaces the multiprocessor logic with additional L2.
constexpr double kDie = 16.0 * kMm;
constexpr double kCore = 6.2 * kMm;
constexpr double kCoreX0 = 4.9 * kMm;  // core left edge
constexpr double kCoreY0 = 9.8 * kMm;  // core bottom edge

}  // namespace

Floorplan ev7_floorplan() {
  Floorplan fp;
  auto add = [&fp](BlockId id, double x_mm, double y_mm, double w_mm,
                   double h_mm) {
    fp.add(Block{block_name(id), kCoreX0 + x_mm * kMm, kCoreY0 + y_mm * kMm,
                 w_mm * kMm, h_mm * kMm});
  };
  auto add_abs = [&fp](BlockId id, double x_mm, double y_mm, double w_mm,
                       double h_mm) {
    fp.add(Block{block_name(id), x_mm * kMm, y_mm * kMm, w_mm * kMm,
                 h_mm * kMm});
  };

  // L2 surrounds the core: left and right flanks plus the bottom slab.
  add_abs(BlockId::kL2Left, 0.0, 9.8, 4.9, 6.2);
  add_abs(BlockId::kL2, 0.0, 0.0, 16.0, 9.8);
  add_abs(BlockId::kL2Right, 11.1, 9.8, 4.9, 6.2);

  // Core-internal layout (coordinates relative to the core origin, mm).
  // Top band: branch predictor and I-cache.
  add(BlockId::kICache, 3.1, 4.65, 3.1, 1.55);
  // Bottom band: D-cache.
  add(BlockId::kDCache, 1.1, 0.0, 5.1, 1.55);
  add(BlockId::kBPred, 1.1, 4.65, 2.0, 1.55);
  // Execute band.
  add(BlockId::kDTB, 4.8, 1.55, 1.4, 1.55);
  // FP cluster column on the far left.
  add(BlockId::kFPAdd, 0.0, 0.0, 1.1, 1.55);
  add(BlockId::kFPReg, 0.0, 1.55, 1.1, 1.55);
  add(BlockId::kFPMul, 0.0, 3.1, 1.1, 1.55);
  add(BlockId::kFPMap, 0.0, 4.65, 1.1, 1.55);
  // Rename/issue band.
  add(BlockId::kIntMap, 1.1, 3.1, 1.3, 1.55);
  add(BlockId::kIntQ, 2.4, 3.1, 1.1, 1.55);
  add(BlockId::kIntReg, 1.1, 1.55, 1.7, 1.55);
  add(BlockId::kIntExec, 2.8, 1.55, 2.0, 1.55);
  add(BlockId::kFPQ, 3.5, 3.1, 0.9, 1.55);
  add(BlockId::kLdStQ, 4.4, 3.1, 0.9, 1.55);
  add(BlockId::kITB, 5.3, 3.1, 0.9, 1.55);

  return fp;
}

}  // namespace hydra::floorplan
