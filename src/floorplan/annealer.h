// Thermal-aware floorplanning by simulated annealing over slicing trees.
//
// Hotspots are a *placement* phenomenon as much as a power one: the same
// per-block powers produce different peak temperatures depending on
// which hot blocks abut which cool ones (paper Section 2's spatial
// gradients; thermal-aware floorplanning was pursued by the same group
// as follow-on work). This module searches the space of slicing-tree
// core layouts for one that minimises the steady-state hotspot.
//
// Representation: a slicing tree over the core blocks. Every leaf is a
// block with a fixed area; internal nodes cut their region horizontally
// or vertically, children receiving area-proportional shares — so every
// tree tiles the square core bounding box exactly (zero whitespace),
// with block aspect ratios soft-constrained through a cost penalty.
// Moves: swap two leaves, flip a cut direction, swap a node's children.
// Cost: peak steady-state temperature of the assembled die (core box at
// the top-centre of the 16 mm die, L2 filling the remainder, the same
// package as the DTM experiments) plus the aspect penalty.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "floorplan/floorplan.h"
#include "thermal/package.h"

namespace hydra::floorplan {

/// One core block to place: stable name, silicon area, dissipated power.
struct CoreBlockSpec {
  std::string_view name;
  double area_m2 = 0.0;
  double watts = 0.0;  ///< steady power used for the thermal objective
};

struct AnnealerConfig {
  int iterations = 2500;
  double t_start = 3.0;        ///< initial annealing temperature [cost units]
  double t_end = 0.02;
  double aspect_limit = 4.0;   ///< soft max block aspect ratio
  double aspect_penalty_weight = 0.5;  ///< [deg C per unit violation^2]
  std::uint64_t seed = 1;
  /// Side of the full die [m] and the L2 power split used when
  /// assembling the evaluated die (defaults match the EV7-like die).
  double die_side = 16e-3;
  double l2_total_watts = 3.0;
};

struct AnnealResult {
  Floorplan floorplan;            ///< full die (core + surrounding L2)
  double peak_celsius = 0.0;      ///< steady-state hotspot of the result
  double initial_peak_celsius = 0.0;  ///< hotspot of the starting layout
  double max_aspect = 0.0;        ///< worst block aspect in the result
  int accepted_moves = 0;
  int evaluated_moves = 0;
};

/// Assemble a full die from a core floorplan (already tiling its own
/// bounding box) by centring it at the top edge of the die and filling
/// the remainder with the three L2 blocks. Throws if the core does not
/// fit the die.
Floorplan assemble_die(const Floorplan& core, double die_side);

/// Run the annealer. `blocks` must be non-empty with positive areas.
AnnealResult anneal_core_floorplan(const std::vector<CoreBlockSpec>& blocks,
                                   const thermal::Package& pkg,
                                   const AnnealerConfig& cfg = {});

/// The EV7 core blocks (areas from ev7_floorplan()) paired with a given
/// per-block power vector indexed by BlockId — convenience for driving
/// the annealer with PowerModel output.
std::vector<CoreBlockSpec> ev7_core_block_specs(
    const std::vector<double>& block_watts);

}  // namespace hydra::floorplan
