#include "floorplan/multicore.h"

#include <cmath>
#include <deque>
#include <stdexcept>
#include <string>

#include "floorplan/ev7.h"
#include "util/sync.h"

namespace hydra::floorplan {
namespace {

/// Process-wide interner for generated tile-block names. Block::name is
/// a non-owning string_view (single-core names are string literals), so
/// generated names need storage that outlives every Floorplan copy. A
/// deque never relocates existing elements, so handed-out views stay
/// valid; floorplans are built once per (package, cores) model key and
/// cached, so the interner stays tiny.
std::string_view intern_name(std::string name) {
  static util::Mutex mu;
  static std::deque<std::string> names;
  const util::LockGuard lock(mu);
  for (const std::string& existing : names) {
    if (existing == name) return existing;
  }
  names.push_back(std::move(name));
  return names.back();
}

}  // namespace

TileGrid tile_grid(std::size_t cores) {
  if (cores == 0) {
    throw std::invalid_argument("multicore floorplan needs >= 1 core");
  }
  TileGrid grid{1, cores};
  for (std::size_t d = static_cast<std::size_t>(
           std::sqrt(static_cast<double>(cores)));
       d >= 1; --d) {
    if (cores % d == 0) {
      grid.rows = d;
      grid.cols = cores / d;
      break;
    }
  }
  return grid;
}

Floorplan multicore_floorplan(std::size_t cores) {
  const Floorplan unit = ev7_floorplan();
  if (cores == 1) return unit;
  const TileGrid grid = tile_grid(cores);
  const double die_w = unit.die_width();
  const double die_h = unit.die_height();
  const double sx = 1.0 / static_cast<double>(grid.cols);
  const double sy = 1.0 / static_cast<double>(grid.rows);
  Floorplan fp;
  for (std::size_t t = 0; t < cores; ++t) {
    const std::size_t row = t / grid.cols;
    const std::size_t col = t % grid.cols;
    const double x0 = static_cast<double>(col) * die_w * sx;
    const double y0 = static_cast<double>(row) * die_h * sy;
    for (std::size_t b = 0; b < unit.size(); ++b) {
      const Block& src = unit.block(b);
      Block blk = src;
      blk.name = intern_name("c" + std::to_string(t) + "." +
                             std::string(src.name));
      blk.x = x0 + src.x * sx;
      blk.y = y0 + src.y * sy;
      blk.width = src.width * sx;
      blk.height = src.height * sy;
      fp.add(blk);
    }
  }
  return fp;
}

}  // namespace hydra::floorplan
