// HotSpot-compatible .flp text serialisation.
//
// Format (one block per line):
//   <name> <width_m> <height_m> <left_m> <bottom_m>
// '#' starts a comment. This matches the de-facto HotSpot floorplan file
// format so floorplans can be exchanged with existing tooling.
#pragma once

#include <string>
#include <string_view>

#include "floorplan/floorplan.h"

namespace hydra::floorplan {

/// Serialise to .flp text.
std::string to_flp(const Floorplan& fp);

/// Parse .flp text. Throws std::invalid_argument on malformed input.
/// NOTE: parsed block names are owned by an internal string table that
/// lives as long as the process (names are interned); this keeps Block a
/// trivially copyable view type.
Floorplan from_flp(std::string_view text);

}  // namespace hydra::floorplan
