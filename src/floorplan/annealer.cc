#include "floorplan/annealer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "floorplan/block.h"
#include "floorplan/ev7.h"
#include "thermal/model_builder.h"
#include "thermal/solver.h"
#include "util/rng.h"

namespace hydra::floorplan {
namespace {

/// Slicing tree stored as a vector of nodes; node 0 is the root.
struct TreeNode {
  bool is_leaf = false;
  int leaf_index = -1;   ///< into the block-spec vector
  bool vertical = true;  ///< cut direction for internal nodes
  int left = -1;
  int right = -1;
  double area = 0.0;     ///< subtree area (maintained)
};

struct Tree {
  std::vector<TreeNode> nodes;
  std::vector<int> leaf_nodes;      ///< node index of each leaf
  std::vector<int> internal_nodes;  ///< node indices of internal nodes
};

/// Balanced initial tree over blocks [lo, hi).
int build_initial(Tree& tree, const std::vector<CoreBlockSpec>& blocks,
                  int lo, int hi, bool vertical) {
  const int idx = static_cast<int>(tree.nodes.size());
  tree.nodes.emplace_back();
  if (hi - lo == 1) {
    TreeNode& n = tree.nodes[idx];
    n.is_leaf = true;
    n.leaf_index = lo;
    n.area = blocks[lo].area_m2;
    tree.leaf_nodes.push_back(idx);
    return idx;
  }
  const int mid = (lo + hi) / 2;
  const int l = build_initial(tree, blocks, lo, mid, !vertical);
  const int r = build_initial(tree, blocks, mid, hi, !vertical);
  TreeNode& n = tree.nodes[idx];
  n.is_leaf = false;
  n.vertical = vertical;
  n.left = l;
  n.right = r;
  n.area = tree.nodes[l].area + tree.nodes[r].area;
  tree.internal_nodes.push_back(idx);
  return idx;
}

/// Recursively place the subtree into [x, y, w, h].
void place(const Tree& tree, int node, double x, double y, double w,
           double h, const std::vector<CoreBlockSpec>& blocks,
           Floorplan& out) {
  const TreeNode& n = tree.nodes[node];
  if (n.is_leaf) {
    out.add(Block{blocks[n.leaf_index].name, x, y, w, h});
    return;
  }
  const double frac = tree.nodes[n.left].area / n.area;
  if (n.vertical) {
    const double wl = w * frac;
    place(tree, n.left, x, y, wl, h, blocks, out);
    place(tree, n.right, x + wl, y, w - wl, h, blocks, out);
  } else {
    const double hl = h * frac;
    place(tree, n.left, x, y, w, hl, blocks, out);
    place(tree, n.right, x, y + hl, w, h - hl, blocks, out);
  }
}

Floorplan layout_core(const Tree& tree,
                      const std::vector<CoreBlockSpec>& blocks) {
  const double side = std::sqrt(tree.nodes[0].area);
  Floorplan fp;
  place(tree, 0, 0.0, 0.0, side, side, blocks, fp);
  return fp;
}

double worst_aspect(const Floorplan& fp) {
  double worst = 1.0;
  for (const Block& b : fp.blocks()) {
    const double a = std::max(b.width / b.height, b.height / b.width);
    worst = std::max(worst, a);
  }
  return worst;
}

}  // namespace

Floorplan assemble_die(const Floorplan& core, double die_side) {
  const double w = core.die_width();
  const double h = core.die_height();
  if (w > die_side + 1e-12 || h > die_side + 1e-12) {
    throw std::invalid_argument("core does not fit the die");
  }
  const double x0 = (die_side - w) / 2.0;
  const double y0 = die_side - h;
  Floorplan out;
  out.add(Block{block_name(BlockId::kL2Left), 0.0, y0, x0, h});
  out.add(Block{block_name(BlockId::kL2), 0.0, 0.0, die_side, y0});
  out.add(Block{block_name(BlockId::kL2Right), x0 + w, y0,
                die_side - x0 - w, h});
  for (const Block& b : core.blocks()) {
    out.add(Block{b.name, b.x + x0, b.y + y0, b.width, b.height});
  }
  return out;
}

std::vector<CoreBlockSpec> ev7_core_block_specs(
    const std::vector<double>& block_watts) {
  if (block_watts.size() != kNumBlocks) {
    throw std::invalid_argument("need one power entry per BlockId");
  }
  const Floorplan fp = ev7_floorplan();
  std::vector<CoreBlockSpec> out;
  for (std::size_t i = 0; i < kNumBlocks; ++i) {
    const auto id = static_cast<BlockId>(i);
    if (id == BlockId::kL2 || id == BlockId::kL2Left ||
        id == BlockId::kL2Right) {
      continue;  // the L2 ring is placed by assemble_die
    }
    out.push_back({block_name(id), fp.block(i).area(), block_watts[i]});
  }
  return out;
}

AnnealResult anneal_core_floorplan(const std::vector<CoreBlockSpec>& blocks,
                                   const thermal::Package& pkg,
                                   const AnnealerConfig& cfg) {
  if (blocks.empty()) {
    throw std::invalid_argument("annealer needs at least one block");
  }
  for (const CoreBlockSpec& b : blocks) {
    if (b.area_m2 <= 0.0 || b.watts < 0.0) {
      throw std::invalid_argument("block areas must be positive");
    }
  }

  util::Rng rng(cfg.seed);
  Tree tree;
  build_initial(tree, blocks, 0, static_cast<int>(blocks.size()), true);

  // Peak temperature of a candidate core layout, assembled into the die.
  const auto evaluate = [&](const Floorplan& core, double* peak_out) {
    const Floorplan die = assemble_die(core, cfg.die_side);
    thermal::ThermalModel model = thermal::build_thermal_model(die, pkg);
    thermal::Vector watts(die.size(), 0.0);
    // L2 power split by area over the three ring blocks.
    double l2_area = 0.0;
    for (std::size_t i = 0; i < 3; ++i) l2_area += die.block(i).area();
    for (std::size_t i = 0; i < 3; ++i) {
      watts[i] = cfg.l2_total_watts * die.block(i).area() / l2_area;
    }
    for (const CoreBlockSpec& b : blocks) {
      watts[*die.index_of(b.name)] = b.watts;
    }
    const thermal::Vector t = thermal::steady_state(
        model.network, model.expand_power(watts), pkg.ambient);
    double peak = t[0];
    for (std::size_t i = 1; i < die.size(); ++i) peak = std::max(peak, t[i]);
    *peak_out = peak;
    const double aspect = worst_aspect(core);
    const double violation = std::max(0.0, aspect - cfg.aspect_limit);
    return peak + cfg.aspect_penalty_weight * violation * violation;
  };

  AnnealResult result;
  Floorplan current_layout = layout_core(tree, blocks);
  double current_peak = 0.0;
  double current_cost = evaluate(current_layout, &current_peak);
  result.initial_peak_celsius = current_peak;

  Floorplan best_layout = current_layout;
  double best_cost = current_cost;
  double best_peak = current_peak;

  const double cooling =
      cfg.iterations > 1
          ? std::pow(cfg.t_end / cfg.t_start,
                     1.0 / static_cast<double>(cfg.iterations - 1))
          : 1.0;
  double temperature = cfg.t_start;

  for (int iter = 0; iter < cfg.iterations; ++iter, temperature *= cooling) {
    // Propose a move on a copy of the tree.
    Tree candidate = tree;
    const int kind = static_cast<int>(rng.below(3));
    if (kind == 0 && candidate.leaf_nodes.size() >= 2) {
      // Swap two leaves' blocks.
      const std::size_t a = rng.below(candidate.leaf_nodes.size());
      std::size_t b = rng.below(candidate.leaf_nodes.size());
      if (a == b) continue;
      std::swap(candidate.nodes[candidate.leaf_nodes[a]].leaf_index,
                candidate.nodes[candidate.leaf_nodes[b]].leaf_index);
      // Leaf areas travel with the blocks: recompute subtree areas.
      candidate.nodes[candidate.leaf_nodes[a]].area =
          blocks[candidate.nodes[candidate.leaf_nodes[a]].leaf_index].area_m2;
      candidate.nodes[candidate.leaf_nodes[b]].area =
          blocks[candidate.nodes[candidate.leaf_nodes[b]].leaf_index].area_m2;
      // Propagate areas bottom-up (nodes vector is in pre-order; walk in
      // reverse so children are updated before parents).
      for (int i = static_cast<int>(candidate.nodes.size()) - 1; i >= 0;
           --i) {
        TreeNode& n = candidate.nodes[i];
        if (!n.is_leaf) {
          n.area = candidate.nodes[n.left].area +
                   candidate.nodes[n.right].area;
        }
      }
    } else if (kind == 1 && !candidate.internal_nodes.empty()) {
      // Flip a cut direction.
      const std::size_t i = rng.below(candidate.internal_nodes.size());
      TreeNode& n = candidate.nodes[candidate.internal_nodes[i]];
      n.vertical = !n.vertical;
    } else if (!candidate.internal_nodes.empty()) {
      // Swap a node's children (mirrors the subtree).
      const std::size_t i = rng.below(candidate.internal_nodes.size());
      TreeNode& n = candidate.nodes[candidate.internal_nodes[i]];
      std::swap(n.left, n.right);
    } else {
      continue;
    }

    Floorplan layout = layout_core(candidate, blocks);
    double peak = 0.0;
    const double cost = evaluate(layout, &peak);
    ++result.evaluated_moves;

    const double delta = cost - current_cost;
    if (delta <= 0.0 ||
        rng.uniform() < std::exp(-delta / std::max(1e-9, temperature))) {
      tree = std::move(candidate);
      current_layout = std::move(layout);
      current_cost = cost;
      current_peak = peak;
      ++result.accepted_moves;
      if (cost < best_cost) {
        best_cost = cost;
        best_layout = current_layout;
        best_peak = peak;
      }
    }
  }

  result.floorplan = assemble_die(best_layout, cfg.die_side);
  result.peak_celsius = best_peak;
  result.max_aspect = worst_aspect(best_layout);
  return result;
}

}  // namespace hydra::floorplan
