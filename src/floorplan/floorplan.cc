#include "floorplan/floorplan.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hydra::floorplan {
namespace {

/// Length of the overlap between intervals [a0,a1] and [b0,b1].
double interval_overlap(double a0, double a1, double b0, double b1) {
  return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
}

}  // namespace

void Floorplan::add(Block block) {
  if (block.width <= 0.0 || block.height <= 0.0) {
    throw std::invalid_argument("block '" + std::string(block.name) +
                                "' has non-positive dimensions");
  }
  if (index_of(block.name)) {
    throw std::invalid_argument("duplicate block name '" +
                                std::string(block.name) + "'");
  }
  blocks_.push_back(block);
}

std::optional<std::size_t> Floorplan::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].name == name) return i;
  }
  return std::nullopt;
}

double Floorplan::die_width() const {
  double lo = 0.0;
  double hi = 0.0;
  bool first = true;
  for (const Block& b : blocks_) {
    if (first || b.x < lo) lo = first ? b.x : std::min(lo, b.x);
    hi = first ? b.right() : std::max(hi, b.right());
    first = false;
  }
  return blocks_.empty() ? 0.0 : hi - lo;
}

double Floorplan::die_height() const {
  double lo = 0.0;
  double hi = 0.0;
  bool first = true;
  for (const Block& b : blocks_) {
    if (first || b.y < lo) lo = first ? b.y : std::min(lo, b.y);
    hi = first ? b.top() : std::max(hi, b.top());
    first = false;
  }
  return blocks_.empty() ? 0.0 : hi - lo;
}

double Floorplan::total_block_area() const {
  double area = 0.0;
  for (const Block& b : blocks_) area += b.area();
  return area;
}

bool Floorplan::overlap_free() const {
  constexpr double kTol = 1e-12;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    for (std::size_t j = i + 1; j < blocks_.size(); ++j) {
      const Block& a = blocks_[i];
      const Block& b = blocks_[j];
      const double ox = interval_overlap(a.x, a.right(), b.x, b.right());
      const double oy = interval_overlap(a.y, a.top(), b.y, b.top());
      if (ox > kTol && oy > kTol) return false;
    }
  }
  return true;
}

bool Floorplan::covers_die(double tol) const {
  if (blocks_.empty()) return false;
  if (!overlap_free()) return false;
  const double die = die_area();
  return std::abs(total_block_area() - die) <= tol * die;
}

std::vector<Adjacency> Floorplan::adjacencies(double tol) const {
  std::vector<Adjacency> out;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    for (std::size_t j = i + 1; j < blocks_.size(); ++j) {
      const Block& a = blocks_[i];
      const Block& b = blocks_[j];
      // Vertical shared edge: a's right touches b's left or vice versa.
      if (std::abs(a.right() - b.x) <= tol || std::abs(b.right() - a.x) <= tol) {
        const double len = interval_overlap(a.y, a.top(), b.y, b.top());
        if (len > tol) {
          out.push_back({i, j, len, /*vertical_edge=*/true});
          continue;
        }
      }
      // Horizontal shared edge: a's top touches b's bottom or vice versa.
      if (std::abs(a.top() - b.y) <= tol || std::abs(b.top() - a.y) <= tol) {
        const double len = interval_overlap(a.x, a.right(), b.x, b.right());
        if (len > tol) {
          out.push_back({i, j, len, /*vertical_edge=*/false});
        }
      }
    }
  }
  return out;
}

}  // namespace hydra::floorplan
