#include "floorplan/floorplan_io.h"

#include <cctype>
#include <cmath>
#include <deque>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"
#include "util/sync.h"

namespace hydra::floorplan {
namespace {

/// Process-lifetime intern table so Block::name string_views stay valid.
std::string_view intern(std::string s) {
  static util::Mutex mu;
  static std::deque<std::string> table;
  const util::LockGuard lock(mu);
  for (const std::string& existing : table) {
    if (existing == s) return existing;
  }
  table.push_back(std::move(s));
  return table.back();
}

}  // namespace

std::string to_flp(const Floorplan& fp) {
  std::ostringstream out;
  out << "# hydra-dtm floorplan: name width height left bottom (metres)\n";
  for (const Block& b : fp.blocks()) {
    out << b.name << '\t' << util::CsvWriter::format_double(b.width) << '\t'
        << util::CsvWriter::format_double(b.height) << '\t'
        << util::CsvWriter::format_double(b.x) << '\t'
        << util::CsvWriter::format_double(b.y) << '\n';
  }
  return out.str();
}

Floorplan from_flp(std::string_view text) {
  Floorplan fp;
  std::istringstream in{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string name;
    if (!(fields >> name)) continue;  // blank line
    double w = 0.0;
    double h = 0.0;
    double x = 0.0;
    double y = 0.0;
    if (!(fields >> w >> h >> x >> y)) {
      throw std::invalid_argument("flp line " + std::to_string(line_no) +
                                  ": expected <name> <w> <h> <x> <y>");
    }
    std::string extra;
    if (fields >> extra) {
      throw std::invalid_argument("flp line " + std::to_string(line_no) +
                                  ": unexpected trailing field '" + extra +
                                  "'");
    }
    // Defence in depth: some standard libraries parse "nan"/"inf" via
    // operator>>; geometry must be finite regardless.
    if (!std::isfinite(w) || !std::isfinite(h) || !std::isfinite(x) ||
        !std::isfinite(y)) {
      throw std::invalid_argument("flp line " + std::to_string(line_no) +
                                  ": non-finite geometry for block '" + name +
                                  "'");
    }
    try {
      fp.add(Block{intern(std::move(name)), x, y, w, h});
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("flp line " + std::to_string(line_no) +
                                  ": " + e.what());
    }
  }
  return fp;
}

}  // namespace hydra::floorplan
