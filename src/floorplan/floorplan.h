// Floorplan container: block geometry, validation, adjacency.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "floorplan/block.h"

namespace hydra::floorplan {

/// Shared-edge adjacency between two blocks, used to derive lateral
/// thermal resistances.
struct Adjacency {
  std::size_t a = 0;          ///< block index
  std::size_t b = 0;          ///< block index, b > a
  double shared_length = 0;   ///< length of the common edge [m]
  bool vertical_edge = false; ///< true if blocks touch along a vertical edge
};

/// An immutable-after-build set of rectangular blocks tiling a die.
class Floorplan {
 public:
  /// Add a block. Throws std::invalid_argument on non-positive dimensions
  /// or duplicate names.
  void add(Block block);

  std::size_t size() const { return blocks_.size(); }
  const Block& block(std::size_t i) const { return blocks_[i]; }
  const std::vector<Block>& blocks() const { return blocks_; }

  /// Index of the block with the given name, if any.
  std::optional<std::size_t> index_of(std::string_view name) const;

  /// Bounding box of all blocks (the die outline).
  double die_width() const;
  double die_height() const;
  double die_area() const { return die_width() * die_height(); }
  /// Sum of block areas.
  double total_block_area() const;

  /// True when no two blocks overlap (touching edges allowed).
  bool overlap_free() const;
  /// True when block areas tile the bounding box within `tol` relative
  /// error and no overlaps exist.
  bool covers_die(double tol = 1e-9) const;

  /// All pairs of blocks sharing a positive-length edge (within `tol`
  /// alignment tolerance).
  std::vector<Adjacency> adjacencies(double tol = 1e-12) const;

 private:
  std::vector<Block> blocks_;
};

}  // namespace hydra::floorplan
