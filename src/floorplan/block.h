// Architectural blocks of the modelled processor.
//
// The floorplan follows Figure 2 of the paper: an Alpha-21264-style core
// surrounded by L2 cache filling the rest of the die (the 21364's
// multiprocessor logic is replaced by cache, as the paper does for
// uniprocessor studies). Geometry is in metres, origin at the die's
// lower-left corner.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace hydra::floorplan {

/// Identifiers for every architectural block in the modelled floorplan.
/// Order is stable and used to index per-block arrays throughout the
/// power/thermal/activity pipeline.
enum class BlockId : std::size_t {
  kL2Left = 0,
  kL2,
  kL2Right,
  kICache,
  kDCache,
  kBPred,
  kDTB,
  kFPAdd,
  kFPReg,
  kFPMul,
  kFPMap,
  kIntMap,
  kIntQ,
  kIntReg,
  kIntExec,
  kFPQ,
  kLdStQ,
  kITB,
};

inline constexpr std::size_t kNumBlocks = 18;

/// Canonical display name of a block.
constexpr std::string_view block_name(BlockId id) {
  constexpr std::array<std::string_view, kNumBlocks> kNames = {
      "L2_left", "L2",     "L2_right", "Icache", "Dcache", "Bpred",
      "DTB",     "FPAdd",  "FPReg",    "FPMul",  "FPMap",  "IntMap",
      "IntQ",    "IntReg", "IntExec",  "FPQ",    "LdStQ",  "ITB"};
  return kNames[static_cast<std::size_t>(id)];
}

/// Axis-aligned rectangular block. Invariant: width > 0 and height > 0
/// (enforced by Floorplan::add).
struct Block {
  std::string_view name;
  double x = 0.0;       ///< left edge [m]
  double y = 0.0;       ///< bottom edge [m]
  double width = 0.0;   ///< [m]
  double height = 0.0;  ///< [m]

  double area() const { return width * height; }
  double right() const { return x + width; }
  double top() const { return y + height; }
  double center_x() const { return x + width / 2.0; }
  double center_y() const { return y + height / 2.0; }
};

}  // namespace hydra::floorplan
