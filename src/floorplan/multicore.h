// Many-core die floorplans: N replicated core tiles (each the full
// 18-block EV7-like unit — core logic plus its slice of the logically
// shared L2) arranged in a grid that keeps the overall die at the
// original 16 mm x 16 mm outline. Shrinking the tiles instead of growing
// the die keeps the package model (spreader/sink geometry, convection
// resistance) physically consistent at every core count — the many-core
// chip is the same die partitioned into more, smaller cores, which is
// how real products scaled after the 2004 paper.
#pragma once

#include <cstddef>
#include <string_view>

#include "floorplan/floorplan.h"

namespace hydra::floorplan {

/// Rows x columns of the tile grid for `cores` tiles: the factor pair of
/// `cores` with the squarest aspect (rows <= columns). A prime count
/// degenerates to a 1 x N strip, which still tiles the die exactly.
struct TileGrid {
  std::size_t rows = 1;
  std::size_t cols = 1;
};
TileGrid tile_grid(std::size_t cores);

/// Build a `cores`-tile die. Tile t occupies block indices
/// [t * kNumBlocks, (t + 1) * kNumBlocks) in BlockId order, so per-tile
/// power/sensor vectors scatter and gather with a flat offset. Block
/// names are "c<t>." + the single-core name (interned process-wide;
/// the returned string_views stay valid for the process lifetime).
/// cores == 1 returns the classic ev7_floorplan(). Throws
/// std::invalid_argument when cores is 0.
Floorplan multicore_floorplan(std::size_t cores);

/// Index of tile t's block `b` in the die floorplan.
inline std::size_t tile_block_index(std::size_t tile, std::size_t block) {
  return tile * kNumBlocks + block;
}

}  // namespace hydra::floorplan
