#include "sim/batch_sweep.h"

#include <cmath>
#include <thread>

#include "obs/obs.h"
#include "sim/model_cache.h"

namespace hydra::sim {

BatchCoordinator::BatchCoordinator(std::size_t nodes, std::size_t width,
                                   std::shared_ptr<const thermal::LuCache> lu)
    : active_(width), state_(nodes, width), lu_(std::move(lu)) {
  arrivals_.reserve(width);
}

void BatchCoordinator::process_locked() {
  // One panel pass per distinct rounded dt among the arrivals: DVS can
  // shorten one lane's interval mid-run, and mixing operators would mix
  // physics. Panel-lane arithmetic is position-independent, so packing
  // each dt group into the low panel lanes preserves bit-identity.
  // Same dense/sparse dispatch as the serial solver: lanes over a
  // many-core die substitute through the shared LDL^T factor, small
  // models keep the fused panel matvecs — either way the lane result is
  // bit-identical to its serial twin.
  const bool sparse = thermal::use_sparse_step(state_.nodes());
  while (!arrivals_.empty()) {
    const double dt = arrivals_.front()->dt;
    std::size_t k = 0;
    for (Arrival* a : arrivals_) {
      if (a->dt == dt) state_.load_lane(k++, a->rise, a->power);
    }
    if (sparse) {
      state_.step(lu_->sparse(dt));
    } else {
      state_.step(lu_->fused(dt));
    }
    k = 0;
    std::vector<Arrival*> rest;
    rest.reserve(arrivals_.size());
    for (Arrival* a : arrivals_) {
      if (a->dt == dt) {
        state_.store_lane(k++, a->out);
        a->done = true;
      } else {
        rest.push_back(a);
      }
    }
    arrivals_.swap(rest);
  }
}

bool BatchCoordinator::step_lane(std::size_t lane, const double* rise,
                                 const double* power, double dt_rounded,
                                 double* out_rise) {
  Arrival a{lane, rise, power, dt_rounded, out_rise};
  util::LockGuard lk(mu_);
  arrivals_.push_back(&a);
  if (arrivals_.size() == active_) {
    // Last to arrive leads. If the leader step itself fails (operator
    // construction is the only thing that can throw), fail every waiter
    // rather than deadlocking them: each lane falls back to its own
    // guarded solver step.
    try {
      process_locked();
    } catch (...) {
      static const obs::Counter leader_failures =
          obs::metrics().counter("thermal.batched_leader_failures");
      leader_failures.add();
      for (Arrival* p : arrivals_) {
        p->failed = true;
        p->done = true;
      }
      arrivals_.clear();
      a.failed = true;
      a.done = true;
    }
    cv_.notify_all();
  }
  // The predicate reads only this thread's stack-local Arrival, so it is
  // safe under the lambda-body analysis.
  cv_.wait(lk, [&] { return a.done; });
  return !a.failed;
}

void BatchCoordinator::leave() {
  const util::LockGuard lk(mu_);
  --active_;
  if (!arrivals_.empty() && arrivals_.size() == active_) {
    try {
      process_locked();
    } catch (...) {
      static const obs::Counter leader_failures =
          obs::metrics().counter("thermal.batched_leader_failures");
      leader_failures.add();
      for (Arrival* p : arrivals_) {
        p->failed = true;
        p->done = true;
      }
      arrivals_.clear();
    }
    cv_.notify_all();
  }
}

BatchLane::BatchLane(BatchCoordinator* coord, std::size_t lane,
                     std::size_t nodes)
    : coord_(coord),
      lane_(lane),
      rise_(nodes, 0.0),
      out_(nodes, 0.0),
      celsius_(nodes, 0.0) {}

BatchLane::~BatchLane() { detach(); }

void BatchLane::detach() {
  if (attached_) {
    attached_ = false;
    coord_->leave();
  }
}

void BatchLane::step(thermal::TransientSolver& solver,
                     const thermal::Vector& power, util::Seconds dt) {
  if (!attached_) {
    solver.step(power, dt);
    return;
  }
  const double dtr = thermal::round_step_dt(dt.value());
  const thermal::Vector& temps = solver.temperatures();
  const double ambient = solver.ambient().value();
  for (std::size_t i = 0; i < rise_.size(); ++i) {
    rise_[i] = temps[i] - ambient;
  }
  const bool stepped =
      coord_->step_lane(lane_, rise_.data(), power.data(), dtr, out_.data());
  bool ok = stepped;
  if (ok) {
    for (double r : out_) {
      // !(|rise| < bound) also catches NaN — same guard as the serial
      // fused step, applied to the candidate before any state changes.
      if (!(std::abs(r) < thermal::kMaxPlausibleRise)) ok = false;
    }
  }
  if (!ok) {
    // Mirror the serial guard policy: the panel result is suspect for
    // good, so this lane detaches and finishes on its own solver's
    // guarded path (which re-runs this step from the same state).
    static const obs::Counter trips =
        obs::metrics().counter("thermal.batched_guard_trips");
    trips.add();
    detach();
    solver.step(power, dt);
    return;
  }
  static const obs::Counter steps =
      obs::metrics().counter("thermal.batched_steps");
  steps.add();
  for (std::size_t i = 0; i < out_.size(); ++i) {
    celsius_[i] = ambient + out_[i];
  }
  solver.set_temperatures(celsius_);
}

BatchGroup::BatchGroup(std::vector<BatchPointSpec> lanes)
    : lanes_(std::move(lanes)),
      results_(lanes_.size()),
      errors_(lanes_.size()) {}

RunResult BatchGroup::result(std::size_t i) {
  std::call_once(once_, [this] { run_all(); });
  if (errors_[i]) std::rethrow_exception(errors_[i]);
  return results_[i];
}

void BatchGroup::run_all() {
  const std::shared_ptr<const SharedModel> shared =
      ModelCache::global().get(lanes_.front().cfg);
  const std::size_t nodes = shared->model.network.size();
  BatchCoordinator coord(nodes, lanes_.size(), shared->lu_cache);
  std::vector<std::thread> threads;
  threads.reserve(lanes_.size());
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    threads.emplace_back([this, &coord, nodes, i] {
      try {
        const BatchPointSpec& spec = lanes_[i];
        const obs::ScopedSpan span(
            obs::tracer(), "engine", "batched_run",
            spec.profile.name + "/" + policy_kind_name(spec.kind));
        // The lane outlives the System so the delegate stays valid for
        // the whole run; its destructor leaves the coordinator on every
        // exit path, so a throwing lane never strands the barrier.
        BatchLane lane(&coord, i, nodes);
        System system(spec.profile, spec.cfg,
                      make_policy(spec.kind, spec.params, spec.cfg));
        system.set_thermal_step_delegate(&lane);
        results_[i] = system.run();
      } catch (...) {
        errors_[i] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace hydra::sim
