#include "sim/system.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.h"
#include "thermal/solver.h"

namespace hydra::sim {
namespace {

constexpr double kEps = 1e-12;

/// Simulated seconds -> trace microseconds (the sim time domain renders
/// simulated time on Perfetto's microsecond axis).
constexpr double kSimUs = 1e6;

/// True when DTM events should be recorded: tracing is on and a System
/// run opened a sim lane on this thread.
inline bool sim_trace_on(const obs::Tracer& tracer, std::uint32_t lane) {
  return tracer.enabled() && lane != obs::SimLaneScope::kNoLane;
}

double max_block_temp(const thermal::Vector& temps, std::size_t blocks) {
  double m = temps[0];
  for (std::size_t i = 1; i < blocks; ++i) m = std::max(m, temps[i]);
  return m;
}

}  // namespace

System::System(const workload::WorkloadProfile& profile, const SimConfig& cfg,
               std::unique_ptr<core::DtmPolicy> policy)
    : cfg_(cfg),
      shared_(ModelCache::global().get(cfg)),
      fp_(shared_->fp),
      model_(shared_->model),
      vf_curve_(cfg.v_nominal, cfg.f_nominal, cfg.v_threshold, cfg.vf_alpha),
      ladder_(vf_curve_, cfg.dvs_steps, cfg.v_low_fraction),
      power_(fp_, power::EnergyModel()),
      trace_(profile),
      core_(cfg.core, trace_),
      sensors_(floorplan::kNumBlocks, cfg.sensor),
      policy_(std::move(policy)),
      guard_(dynamic_cast<core::GuardedPolicy*>(policy_.get())),
      solver_(model_.network, cfg.package.ambient,
              cfg.fused_thermal ? thermal::Scheme::kFusedBE
                                : thermal::Scheme::kBackwardEuler,
              shared_->lu_cache) {
  if (!cfg_.fault_campaign.empty()) {
    injector_ = std::make_unique<fault::FaultInjector>(
        sensors_, cfg_.fault_campaign, cfg_.time_scale);
  }
  sensor_period_s_ =
      1.0 / (cfg_.sensor.sample_rate.value() * cfg_.time_scale);
  switch_time_s_ = cfg_.dvs_switch_time.value() / cfg_.time_scale;
  gate_quantum_ = cfg_.clock_gate_quantum.value() / cfg_.time_scale;
  freq_hz_ = ladder_.point(0).frequency.value();
  watts_.resize(floorplan::kNumBlocks);
  expanded_.resize(model_.network.size());
  sample_.sensed_celsius.reserve(floorplan::kNumBlocks);
  acc_.block_temp_weighted.assign(floorplan::kNumBlocks, 0.0);
  benchmark_name_ = profile.name;
  probe_auto_instructions_ = 0;
  for (const workload::PhaseSpec& ph : profile.phases) {
    probe_auto_instructions_ += ph.length_instructions;
  }
  if (probe_auto_instructions_ == 0) probe_auto_instructions_ = 300'000;
}

void System::initialize_thermal_state() {
  // Probe a representative slice of the workload for its activity. A
  // warm-up third is discarded (cold compulsory misses would bias the
  // estimate low); the measured window then spans one full phase
  // rotation so the estimate reflects long-run average power.
  std::uint64_t probe = cfg_.activity_probe_instructions;
  if (probe == 0) {
    probe = std::min<std::uint64_t>(probe_auto_instructions_, 2'000'000);
  }
  const std::uint64_t start = core_.committed();
  while (core_.committed() < start + probe / 3) core_.cycle();
  core_.take_interval_activity();
  while (core_.committed() < start + probe / 3 + probe) core_.cycle();
  const arch::ActivityFrame frame = core_.take_interval_activity();

  // Power <-> temperature fixed point (leakage depends on temperature).
  // The shared steady-state factorisation of G replaces a fresh LU per
  // iteration; same matrix, so the result is bit-identical. All scratch
  // is preallocated member state so repeated run() calls do not allocate.
  const util::Celsius ambient = cfg_.package.ambient;
  init_temps_.assign(model_.network.size(), ambient.value() + 30.0);
  const auto& nominal = ladder_.point(0);
  const thermal::LuFactorization& g_lu = shared_->lu_cache->steady();
  for (int iter = 0; iter < 10; ++iter) {
    power_.block_power_into(frame, nominal.voltage, nominal.frequency,
                            init_temps_, watts_);
    model_.expand_power_into(watts_, expanded_);
    thermal::steady_state_into(g_lu, expanded_, ambient, init_temps_);
  }
  solver_.set_temperatures(init_temps_);

  t_ = 0.0;
  next_sensor_t_ = sensor_period_s_;
  interval_cycles_ = 0;
  interval_wall_ = 0.0;
}

void System::apply_dvs_level(std::size_t level) {
  dvs_level_ = level;
  freq_hz_ = ladder_.point(level).frequency.value();
  core_.set_frequency(freq_hz_);

  obs::Tracer& tracer = obs::tracer();
  if (sim_trace_on(tracer, sim_lane_)) {
    const double ts = t_ * kSimUs;
    tracer.instant(sim_lane_, obs::TimeDomain::kSim, "dtm",
                   "dvs_level_applied", ts, "level",
                   static_cast<double>(level), "freq_ghz", freq_hz_ / 1e9);
    tracer.counter(sim_lane_, obs::TimeDomain::kSim, "frequency_ghz", ts,
                   freq_hz_ / 1e9);
  }
}

void System::sensor_event(bool measure) {
  if (policy_) {
    if (injector_) {
      injector_->sample_into(solver_.temperatures(), t_,
                             sample_.sensed_celsius);
    } else {
      sensors_.sample_into(solver_.temperatures(), sample_.sensed_celsius);
    }
    sample_.max_sensed = util::Celsius(*std::max_element(
        sample_.sensed_celsius.begin(), sample_.sensed_celsius.end()));
    sample_.time = util::Seconds(t_);
    const core::DtmCommand cmd = policy_->update(sample_);

    const double prev_gate = gate_fraction_;
    const double prev_issue = issue_gate_fraction_;
    const bool prev_clock_req = clock_gate_requested_;

    gate_fraction_ = cmd.fetch_gate_fraction;
    core_.set_fetch_gate_fraction(gate_fraction_);
    issue_gate_fraction_ = cmd.issue_gate_fraction;
    core_.set_issue_gate_fraction(issue_gate_fraction_);

    clock_gate_requested_ = cmd.clock_gate;
    if (clock_gate_requested_ && !clock_gate_on_) {
      clock_gate_on_ = true;
      quantum_end_t_ = t_ + gate_quantum_;
    } else if (!clock_gate_requested_) {
      clock_gate_on_ = false;
    }

    bool transition_started = false;
    if (!transition_active_ && cmd.dvs_level != dvs_level_) {
      if (cmd.dvs_level >= ladder_.size()) {
        throw std::out_of_range("policy requested DVS level beyond ladder");
      }
      pending_level_ = cmd.dvs_level;
      transition_active_ = true;
      transition_end_t_ = t_ + switch_time_s_;
      transition_started = true;
      if (measure) ++acc_.transitions;
      static const obs::Counter dvs_transitions =
          obs::metrics().counter("dtm.dvs_transitions");
      dvs_transitions.add();
    }

    obs::Tracer& tracer = obs::tracer();
    if (sim_trace_on(tracer, sim_lane_)) {
      const double ts = t_ * kSimUs;
      if (gate_fraction_ != prev_gate) {
        tracer.counter(sim_lane_, obs::TimeDomain::kSim, "fetch_gate_duty",
                       ts, gate_fraction_);
      }
      if (issue_gate_fraction_ != prev_issue) {
        tracer.counter(sim_lane_, obs::TimeDomain::kSim, "issue_gate_duty",
                       ts, issue_gate_fraction_);
      }
      if (clock_gate_requested_ != prev_clock_req) {
        tracer.instant(sim_lane_, obs::TimeDomain::kSim, "dtm",
                       clock_gate_requested_ ? "clock_gate_request"
                                             : "clock_gate_release",
                       ts);
      }
      if (transition_started) {
        tracer.instant(sim_lane_, obs::TimeDomain::kSim, "dtm",
                       "dvs_transition_start", ts, "from_level",
                       static_cast<double>(dvs_level_), "to_level",
                       static_cast<double>(pending_level_));
      }
    }

    // Policy engage/disengage edges: "engaged" means any actuation is in
    // effect (throttling, clock gating, or a non-nominal/changing DVS
    // operating point).
    const bool engaged = gate_fraction_ > 0.0 || issue_gate_fraction_ > 0.0 ||
                         clock_gate_requested_ || transition_active_ ||
                         dvs_level_ != 0;
    if (engaged != policy_engaged_) {
      policy_engaged_ = engaged;
      if (engaged) {
        static const obs::Counter engagements =
            obs::metrics().counter("dtm.policy_engagements");
        engagements.add();
      }
      if (sim_trace_on(tracer, sim_lane_)) {
        tracer.instant(sim_lane_, obs::TimeDomain::kSim, "dtm",
                       engaged ? "policy_engage" : "policy_disengage",
                       t_ * kSimUs, "max_sensed", sample_.max_sensed.value());
      }
    }
  }
  next_sensor_t_ += sensor_period_s_;
}

void System::thermal_and_power_step(bool measure) {
  const arch::ActivityFrame frame = core_.take_interval_activity();
  const auto& op = ladder_.point(dvs_level_);
  power_.block_power_into(frame, op.voltage, op.frequency,
                          solver_.temperatures(), watts_);
  const double dt = interval_wall_;
  model_.expand_power_into(watts_, expanded_);
  if (step_delegate_ != nullptr) {
    step_delegate_->step(solver_, expanded_, util::Seconds(dt));
  } else {
    solver_.step(expanded_, util::Seconds(dt));
  }

  const thermal::Vector& temps = solver_.temperatures();
  const double max_true = max_block_temp(temps, floorplan::kNumBlocks);
  double total_watts = 0.0;
  for (double w : watts_) total_watts += w;

  static const obs::Histogram tmax_hist = obs::metrics().histogram(
      "system.step_tmax_celsius",
      {50.0, 60.0, 70.0, 75.0, 80.0, 81.8, 85.0, 90.0, 100.0});
  tmax_hist.record(max_true);

  obs::Tracer& tracer = obs::tracer();
  if (sim_trace_on(tracer, sim_lane_)) {
    const double ts = t_ * kSimUs;
    tracer.counter(sim_lane_, obs::TimeDomain::kSim, "Tmax_celsius", ts,
                   max_true);
    tracer.counter(sim_lane_, obs::TimeDomain::kSim, "power_watts", ts,
                   total_watts);
  }
  const bool emergency = max_true > cfg_.thresholds.emergency.value();
  if (emergency != in_emergency_) {
    in_emergency_ = emergency;
    if (emergency) {
      static const obs::Counter crossings =
          obs::metrics().counter("dtm.emergency_crossings");
      crossings.add();
    }
    if (sim_trace_on(tracer, sim_lane_)) {
      tracer.instant(sim_lane_, obs::TimeDomain::kSim, "thermal",
                     emergency ? "thermal_emergency_begin"
                               : "thermal_emergency_end",
                     t_ * kSimUs, "max_true", max_true);
    }
  }

  if (measure) {
    if (max_true > cfg_.thresholds.emergency.value()) acc_.violation += dt;
    if (max_true > cfg_.thresholds.trigger.value()) acc_.above_trigger += dt;
    if (injector_ && injector_->any_active(t_)) {
      acc_.fault_window += dt;
      if (max_true > cfg_.thresholds.emergency.value()) {
        acc_.fault_violation += dt;
      }
    }
    acc_.gate_weighted += gate_fraction_ * dt;
    acc_.issue_gate_weighted += issue_gate_fraction_ * dt;
    acc_.energy_j += total_watts * dt;
    acc_.max_true = std::max(acc_.max_true, max_true);
    for (std::size_t i = 0; i < floorplan::kNumBlocks; ++i) {
      acc_.block_temp_weighted[i] += temps[i] * dt;
    }
  }

  if (measure && trace_cb_) {
    StepTrace st;
    st.time_seconds = t_;
    st.max_true_celsius = max_true;
    st.voltage = op.voltage;
    st.frequency = op.frequency;
    st.gate_fraction = gate_fraction_;
    st.clock_gated = clock_gate_on_;
    st.committed = core_.committed();
    st.power_watts = total_watts;
    trace_cb_(st);
  }

  interval_cycles_ = 0;
  interval_wall_ = 0.0;
}

double System::next_event_time() const {
  double next_event = next_sensor_t_;
  if (transition_active_) {
    next_event = std::min(next_event, transition_end_t_);
  }
  if (clock_gate_on_ || clock_gate_requested_) {
    next_event = std::min(next_event, quantum_end_t_);
  }
  return next_event;
}

void System::advance_until(std::uint64_t target_committed, bool measure,
                           bool run_out_interval) {
  // The next scheduled event and the applied clock are loop invariants
  // between event firings, so both are hoisted out of the per-chunk loop:
  // next_event is recomputed only after a handler fires and freq_hz_ is a
  // member updated by apply_dvs_level.
  double next_event = next_event_time();
  while (core_.committed() < target_committed ||
         (run_out_interval && interval_cycles_ > 0)) {
    // Cooperative supervision point: at most one predicted-false branch
    // per chunk when no token is armed, one atomic load when it is.
    if (cancel_ != nullptr && cancel_->stop_requested()) {
      cancel_->throw_if_stopped(benchmark_name_);
    }
    const long long n =
        chunk_cycles(next_event, t_, freq_hz_,
                     cfg_.thermal_interval_cycles - interval_cycles_);

    const bool stalled = transition_active_ && cfg_.dvs_stall;
    if (clock_gate_on_ || stalled) {
      // Idle spans touch no pipeline state, so the whole chunk advances
      // in O(1); the result is bit-identical to the per-cycle loop
      // (fastpath_test asserts it), which stays available behind the
      // bulk_idle_skip knob as the reference path. A gated clock tree
      // burns no base power (clocked=false); a stalled-but-clocked
      // pipeline does.
      if (cfg_.bulk_idle_skip) {
        core_.idle_cycles(static_cast<std::uint64_t>(n), !clock_gate_on_);
      } else {
        for (long long i = 0; i < n; ++i) core_.idle_cycle(!clock_gate_on_);
      }
      // Counted on both paths so RunResults stay comparable bit-for-bit.
      if (measure) acc_.idle_cycles += static_cast<std::uint64_t>(n);
    } else {
      for (long long i = 0; i < n; ++i) core_.cycle();
    }

    const double dt = static_cast<double>(n) / freq_hz_;
    t_ += dt;
    interval_cycles_ += n;
    interval_wall_ += dt;
    if (measure) {
      acc_.wall += dt;
      if (dvs_level_ != 0) acc_.dvs_low += dt;
      if (clock_gate_on_) acc_.clock_gated += dt;
      if (guard_ && guard_->failsafe_engaged()) acc_.failsafe += dt;
    }

    if (interval_cycles_ >= cfg_.thermal_interval_cycles) {
      thermal_and_power_step(measure);
    }
    bool events_changed = false;
    if (transition_active_ && t_ >= transition_end_t_ - kEps) {
      transition_active_ = false;
      apply_dvs_level(pending_level_);
      events_changed = true;
    }
    if ((clock_gate_on_ || clock_gate_requested_) &&
        t_ >= quantum_end_t_ - kEps) {
      // Alternate gated / running quanta while the policy requests gating
      // (Pentium-4-style stop-go at the quantum granularity).
      clock_gate_on_ = !clock_gate_on_ && clock_gate_requested_;
      quantum_end_t_ = t_ + gate_quantum_;
      events_changed = true;
    }
    if (t_ >= next_sensor_t_ - kEps) {
      sensor_event(measure);
      events_changed = true;
    }
    if (events_changed) next_event = next_event_time();
  }
}

void System::warmup() {
  advance_until(core_.committed() + cfg_.warmup_instructions, false);
}

RunResult System::run(const util::CancelToken* cancel) {
  cancel_ = cancel;
  const std::uint64_t guard_trips_before = solver_.fused_guard_trips();
  obs::Tracer& tracer = obs::tracer();
  if (tracer.enabled()) {
    sim_lane_ = tracer.new_lane(
        benchmark_name_ + "/" +
            (policy_ ? std::string(policy_->name()) : "baseline"),
        obs::TimeDomain::kSim);
  }
  // Publish this run's sim lane thread-locally so deep layers (policies,
  // the fault injector) can emit sim-time events without plumbing.
  const obs::SimLaneScope sim_scope(sim_lane_);

  {
    const obs::ScopedSpan span(tracer, "system", "init_thermal",
                               benchmark_name_);
    initialize_thermal_state();
  }
  {
    const obs::ScopedSpan span(tracer, "system", "warmup", benchmark_name_);
    warmup();
    // Warm-up stops at an instruction count, generally mid-interval; run
    // the remainder of that thermal interval (still unmeasured) so the
    // measured window starts on an interval boundary (otherwise the
    // first measured step integrates pre-measurement time and fractions
    // can exceed 1). Running to the boundary rather than flushing a
    // partial-length step keeps the backward-Euler dt set bounded, so
    // repeated run() calls stay allocation-free.
    if (interval_cycles_ > 0) {
      advance_until(core_.committed(), false, /*run_out_interval=*/true);
    }
  }

  acc_.reset();
  acc_.start_committed = core_.committed();
  acc_.start_cycles = core_.cycles();
  // Campaign times are relative to the measured window: arm the injector
  // now that warm-up is done.
  if (injector_) injector_->set_origin(t_);

  {
    const obs::ScopedSpan span(tracer, "system", "measure", benchmark_name_);
    advance_until(acc_.start_committed + cfg_.run_instructions, true);
  }

  RunResult r;
  r.benchmark = benchmark_name_;
  r.policy = policy_ ? std::string(policy_->name()) : "baseline";
  r.wall_seconds = acc_.wall;
  r.instructions = core_.committed() - acc_.start_committed;
  r.cycles = core_.cycles() - acc_.start_cycles;
  r.ipc = r.cycles == 0 ? 0.0
                        : static_cast<double>(r.instructions) /
                              static_cast<double>(r.cycles);
  r.max_true_celsius = acc_.max_true;
  if (acc_.wall > 0.0) {
    r.violation_fraction = acc_.violation / acc_.wall;
    r.above_trigger_fraction = acc_.above_trigger / acc_.wall;
    r.mean_gate_fraction = acc_.gate_weighted / acc_.wall;
    r.mean_issue_gate_fraction = acc_.issue_gate_weighted / acc_.wall;
    r.dvs_low_fraction = acc_.dvs_low / acc_.wall;
    r.clock_gated_fraction = acc_.clock_gated / acc_.wall;
    r.mean_power_watts = acc_.energy_j / acc_.wall;
    std::size_t hottest = 0;
    for (std::size_t i = 1; i < floorplan::kNumBlocks; ++i) {
      if (acc_.block_temp_weighted[i] > acc_.block_temp_weighted[hottest]) {
        hottest = i;
      }
    }
    r.hottest_block = std::string(fp_.block(hottest).name);
    r.hottest_mean_celsius = acc_.block_temp_weighted[hottest] / acc_.wall;
    r.failsafe_fraction = acc_.failsafe / acc_.wall;
    r.fault_window_fraction = acc_.fault_window / acc_.wall;
    r.fault_violation_fraction = acc_.fault_violation / acc_.wall;
  }
  if (r.cycles > 0) {
    r.idle_skip_fraction = static_cast<double>(acc_.idle_cycles) /
                           static_cast<double>(r.cycles);
  }
  r.dvs_transitions = acc_.transitions;
  r.solver_guard_trips = solver_.fused_guard_trips() - guard_trips_before;
  cancel_ = nullptr;
  if (injector_) r.faulted_samples = injector_->counters().faulted_samples;
  if (guard_) {
    r.sensor_rejections = guard_->stats().rejected_readings;
    r.quarantine_entries = guard_->stats().quarantine_entries;
  }
  return r;
}

}  // namespace hydra::sim
