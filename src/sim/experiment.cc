#include "sim/experiment.h"

#include <cstdlib>
#include <stdexcept>

#include "floorplan/ev7.h"
#include "util/stats.h"

namespace hydra::sim {

std::string policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNone:
      return "baseline";
    case PolicyKind::kDvs:
      return "DVS";
    case PolicyKind::kFetchGating:
      return "FG";
    case PolicyKind::kFixedFetchGating:
      return "FG-fixed";
    case PolicyKind::kClockGating:
      return "ClockGate";
    case PolicyKind::kPiHybrid:
      return "PI-Hyb";
    case PolicyKind::kHybrid:
      return "Hyb";
    case PolicyKind::kProactiveHybrid:
      return "Pro-Hyb";
    case PolicyKind::kLocalToggle:
      return "LocalToggle";
    case PolicyKind::kFallback:
      return "Fallback";
  }
  return "?";
}

power::DvsLadder make_ladder(const SimConfig& cfg) {
  const power::VoltageFrequencyCurve curve(cfg.v_nominal, cfg.f_nominal,
                                           cfg.v_threshold, cfg.vf_alpha);
  return power::DvsLadder(curve, cfg.dvs_steps, cfg.v_low_fraction);
}

std::vector<std::vector<std::size_t>> sensor_adjacency() {
  const floorplan::Floorplan fp = floorplan::ev7_floorplan();
  std::vector<std::vector<std::size_t>> neighbors(fp.size());
  for (const floorplan::Adjacency& adj : fp.adjacencies()) {
    neighbors[adj.a].push_back(adj.b);
    neighbors[adj.b].push_back(adj.a);
  }
  return neighbors;
}

std::vector<std::string_view> sensor_names() {
  std::vector<std::string_view> names;
  names.reserve(floorplan::kNumBlocks);
  for (std::size_t i = 0; i < floorplan::kNumBlocks; ++i) {
    names.push_back(
        floorplan::block_name(static_cast<floorplan::BlockId>(i)));
  }
  return names;
}

namespace {

std::unique_ptr<core::DtmPolicy> make_base_policy(PolicyKind kind,
                                                  const PolicyParams& params,
                                                  const SimConfig& cfg) {
  // Integral gains are specified in paper-time (deg C * s); under time
  // acceleration every thermal time constant shrinks by time_scale, so
  // the gains scale up by the same factor to keep the closed-loop
  // dynamics dimensionless-identical (DESIGN.md).
  const double ts = cfg.time_scale;
  switch (kind) {
    case PolicyKind::kNone:
      return nullptr;
    case PolicyKind::kDvs: {
      core::DvsPolicyConfig dvs = params.dvs;
      dvs.ki *= ts;
      return std::make_unique<core::DvsPolicy>(make_ladder(cfg),
                                               cfg.thresholds, dvs);
    }
    case PolicyKind::kFetchGating: {
      core::FetchGatingConfig fg = params.fetch_gating;
      fg.mode = core::FetchGatingConfig::Mode::kIntegral;
      fg.ki *= ts;
      return std::make_unique<core::FetchGatingPolicy>(cfg.thresholds, fg);
    }
    case PolicyKind::kFixedFetchGating: {
      core::FetchGatingConfig fg = params.fetch_gating;
      fg.mode = core::FetchGatingConfig::Mode::kFixed;
      return std::make_unique<core::FetchGatingPolicy>(cfg.thresholds, fg);
    }
    case PolicyKind::kClockGating:
      return std::make_unique<core::ClockGatingPolicy>(cfg.thresholds,
                                                       params.clock_gating);
    case PolicyKind::kPiHybrid: {
      core::HybridConfig hy = params.hybrid;
      hy.ki *= ts;
      return std::make_unique<core::PiHybridPolicy>(make_ladder(cfg),
                                                    cfg.thresholds, hy);
    }
    case PolicyKind::kHybrid:
      return std::make_unique<core::HybridPolicy>(
          make_ladder(cfg), cfg.thresholds, params.hybrid);
    case PolicyKind::kProactiveHybrid: {
      core::ProactiveConfig pro = params.proactive;
      // The horizon is paper-time like every other duration: compress it.
      pro.horizon_seconds /= ts;
      return std::make_unique<core::ProactiveHybridPolicy>(
          make_ladder(cfg), cfg.thresholds, pro);
    }
    case PolicyKind::kLocalToggle: {
      core::LocalToggleConfig lt = params.local_toggle;
      lt.ki *= ts;
      return std::make_unique<core::LocalTogglePolicy>(cfg.thresholds, lt);
    }
    case PolicyKind::kFallback: {
      core::FallbackConfig fb = params.fallback;
      fb.ki *= ts;
      return std::make_unique<core::FallbackPolicy>(make_ladder(cfg),
                                                    cfg.thresholds, fb);
    }
  }
  throw std::invalid_argument("unknown policy kind");
}

}  // namespace

std::unique_ptr<core::DtmPolicy> make_policy(PolicyKind kind,
                                             const PolicyParams& params,
                                             const SimConfig& cfg) {
  std::unique_ptr<core::DtmPolicy> base = make_base_policy(kind, params, cfg);
  if (!params.guarded) return base;
  core::GuardedPolicyConfig guard = params.guard;
  // Like controller gains, the rate limit is specified in paper-time.
  guard.max_rate_celsius_per_s *= cfg.time_scale;
  // Without sensor noise a steady temperature produces bit-identical
  // readings, so the frozen-reading detector must stand down.
  if (!cfg.sensor.enable_noise || cfg.sensor.noise_sigma <= 0.0) {
    guard.frozen_samples = 0;
  }
  return std::make_unique<core::GuardedPolicy>(
      std::move(base), cfg.thresholds, sensor_adjacency(), guard);
}

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

}  // namespace

SimConfig default_sim_config() {
  SimConfig cfg;
  cfg.run_instructions =
      env_u64("HYDRA_RUN_INSTRUCTIONS", cfg.run_instructions);
  cfg.warmup_instructions =
      env_u64("HYDRA_WARMUP_INSTRUCTIONS", cfg.warmup_instructions);
  return cfg;
}

std::vector<double> SuiteResult::slowdowns() const {
  std::vector<double> out;
  out.reserve(per_benchmark.size());
  for (const ExperimentResult& r : per_benchmark) out.push_back(r.slowdown);
  return out;
}

ExperimentRunner::ExperimentRunner(SimConfig base_cfg)
    : base_cfg_(std::move(base_cfg)) {}

const RunResult& ExperimentRunner::baseline(
    const workload::WorkloadProfile& profile) {
  auto it = baseline_cache_.find(profile.name);
  if (it == baseline_cache_.end()) {
    System system(profile, base_cfg_, nullptr);
    it = baseline_cache_.emplace(profile.name, system.run()).first;
  }
  return it->second;
}

ExperimentResult ExperimentRunner::run(
    const workload::WorkloadProfile& profile, PolicyKind kind,
    const PolicyParams& params, const SimConfig& cfg) {
  ExperimentResult result;
  result.baseline = baseline(profile);
  System system(profile, cfg, make_policy(kind, params, cfg));
  result.dtm = system.run();
  result.slowdown = result.baseline.wall_seconds > 0.0
                        ? result.dtm.wall_seconds /
                              result.baseline.wall_seconds
                        : 1.0;
  return result;
}

ExperimentResult ExperimentRunner::run(
    const workload::WorkloadProfile& profile, PolicyKind kind,
    const PolicyParams& params) {
  return run(profile, kind, params, base_cfg_);
}

SuiteResult ExperimentRunner::run_suite(PolicyKind kind,
                                        const PolicyParams& params,
                                        const SimConfig& cfg) {
  SuiteResult suite;
  util::RunningStats stats;
  for (const workload::WorkloadProfile& profile :
       workload::spec2000_hot_profiles()) {
    suite.per_benchmark.push_back(run(profile, kind, params, cfg));
    stats.add(suite.per_benchmark.back().slowdown);
  }
  suite.mean_slowdown = stats.mean();
  const std::vector<double> xs = suite.slowdowns();
  suite.ci99_half_width = util::confidence_half_width_99(xs);
  return suite;
}

SuiteResult ExperimentRunner::run_suite(PolicyKind kind,
                                        const PolicyParams& params) {
  return run_suite(kind, params, base_cfg_);
}

}  // namespace hydra::sim
