#include "sim/experiment.h"

#include <cstdlib>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "floorplan/ev7.h"
#include "obs/obs.h"
#include "sim/batch_sweep.h"
#include "sim/model_cache.h"
#include "sim/multicore.h"
#include "util/hash.h"
#include "util/stats.h"

namespace hydra::sim {

std::string policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNone:
      return "baseline";
    case PolicyKind::kDvs:
      return "DVS";
    case PolicyKind::kFetchGating:
      return "FG";
    case PolicyKind::kFixedFetchGating:
      return "FG-fixed";
    case PolicyKind::kClockGating:
      return "ClockGate";
    case PolicyKind::kPiHybrid:
      return "PI-Hyb";
    case PolicyKind::kHybrid:
      return "Hyb";
    case PolicyKind::kProactiveHybrid:
      return "Pro-Hyb";
    case PolicyKind::kLocalToggle:
      return "LocalToggle";
    case PolicyKind::kFallback:
      return "Fallback";
  }
  return "?";
}

power::DvsLadder make_ladder(const SimConfig& cfg) {
  const power::VoltageFrequencyCurve curve(cfg.v_nominal, cfg.f_nominal,
                                           cfg.v_threshold, cfg.vf_alpha);
  return power::DvsLadder(curve, cfg.dvs_steps, cfg.v_low_fraction);
}

std::vector<std::vector<std::size_t>> sensor_adjacency() {
  const floorplan::Floorplan fp = floorplan::ev7_floorplan();
  std::vector<std::vector<std::size_t>> neighbors(fp.size());
  for (const floorplan::Adjacency& adj : fp.adjacencies()) {
    neighbors[adj.a].push_back(adj.b);
    neighbors[adj.b].push_back(adj.a);
  }
  return neighbors;
}

std::vector<std::string_view> sensor_names() {
  std::vector<std::string_view> names;
  names.reserve(floorplan::kNumBlocks);
  for (std::size_t i = 0; i < floorplan::kNumBlocks; ++i) {
    names.push_back(
        floorplan::block_name(static_cast<floorplan::BlockId>(i)));
  }
  return names;
}

namespace {

std::unique_ptr<core::DtmPolicy> make_base_policy(PolicyKind kind,
                                                  const PolicyParams& params,
                                                  const SimConfig& cfg) {
  // Integral gains are specified in paper-time (deg C * s); under time
  // acceleration every thermal time constant shrinks by time_scale, so
  // the gains scale up by the same factor to keep the closed-loop
  // dynamics dimensionless-identical (DESIGN.md).
  const double ts = cfg.time_scale;
  switch (kind) {
    case PolicyKind::kNone:
      return nullptr;
    case PolicyKind::kDvs: {
      core::DvsPolicyConfig dvs = params.dvs;
      dvs.ki *= ts;
      return std::make_unique<core::DvsPolicy>(make_ladder(cfg),
                                               cfg.thresholds, dvs);
    }
    case PolicyKind::kFetchGating: {
      core::FetchGatingConfig fg = params.fetch_gating;
      fg.mode = core::FetchGatingConfig::Mode::kIntegral;
      fg.ki *= ts;
      return std::make_unique<core::FetchGatingPolicy>(cfg.thresholds, fg);
    }
    case PolicyKind::kFixedFetchGating: {
      core::FetchGatingConfig fg = params.fetch_gating;
      fg.mode = core::FetchGatingConfig::Mode::kFixed;
      return std::make_unique<core::FetchGatingPolicy>(cfg.thresholds, fg);
    }
    case PolicyKind::kClockGating:
      return std::make_unique<core::ClockGatingPolicy>(cfg.thresholds,
                                                       params.clock_gating);
    case PolicyKind::kPiHybrid: {
      core::HybridConfig hy = params.hybrid;
      hy.ki *= ts;
      return std::make_unique<core::PiHybridPolicy>(make_ladder(cfg),
                                                    cfg.thresholds, hy);
    }
    case PolicyKind::kHybrid:
      return std::make_unique<core::HybridPolicy>(
          make_ladder(cfg), cfg.thresholds, params.hybrid);
    case PolicyKind::kProactiveHybrid: {
      core::ProactiveConfig pro = params.proactive;
      // The horizon is paper-time like every other duration: compress it.
      pro.horizon /= ts;
      return std::make_unique<core::ProactiveHybridPolicy>(
          make_ladder(cfg), cfg.thresholds, pro);
    }
    case PolicyKind::kLocalToggle: {
      core::LocalToggleConfig lt = params.local_toggle;
      lt.ki *= ts;
      return std::make_unique<core::LocalTogglePolicy>(cfg.thresholds, lt);
    }
    case PolicyKind::kFallback: {
      core::FallbackConfig fb = params.fallback;
      fb.ki *= ts;
      return std::make_unique<core::FallbackPolicy>(make_ladder(cfg),
                                                    cfg.thresholds, fb);
    }
  }
  throw std::invalid_argument("unknown policy kind");
}

}  // namespace

std::unique_ptr<core::DtmPolicy> make_policy(PolicyKind kind,
                                             const PolicyParams& params,
                                             const SimConfig& cfg) {
  std::unique_ptr<core::DtmPolicy> base = make_base_policy(kind, params, cfg);
  if (!params.guarded) return base;
  core::GuardedPolicyConfig guard = params.guard;
  // Like controller gains, the rate limit is specified in paper-time.
  guard.max_rate *= cfg.time_scale;
  // Without sensor noise a steady temperature produces bit-identical
  // readings, so the frozen-reading detector must stand down.
  if (!cfg.sensor.enable_noise || cfg.sensor.noise_sigma.value() <= 0.0) {
    guard.frozen_samples = 0;
  }
  return std::make_unique<core::GuardedPolicy>(
      std::move(base), cfg.thresholds, sensor_adjacency(), guard);
}

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

}  // namespace

SimConfig default_sim_config() {
  SimConfig cfg;
  cfg.run_instructions =
      env_u64("HYDRA_RUN_INSTRUCTIONS", cfg.run_instructions);
  cfg.warmup_instructions =
      env_u64("HYDRA_WARMUP_INSTRUCTIONS", cfg.warmup_instructions);
  return cfg;
}

// ---------------------------------------------------------------------------
// Content hashing. Every field of every sub-config is fed explicitly
// (HashSink never sees raw struct bytes, which would hash padding). When
// adding a config field, add it here — the determinism test exercises
// key separation, and a missed field shows up as a stale cache hit.

namespace {

void hash_package(util::HashSink& h, const thermal::Package& p) {
  h.f64(p.die_thickness_m)
      .f64(p.k_silicon)
      .f64(p.c_silicon)
      .f64(p.tim_thickness_m)
      .f64(p.k_tim)
      .f64(p.spreader_side_m)
      .f64(p.spreader_thickness_m)
      .f64(p.k_copper)
      .f64(p.c_copper)
      .f64(p.sink_side_m)
      .f64(p.sink_thickness_m)
      .f64(p.k_sink)
      .f64(p.c_sink)
      .f64(p.r_convec)
      .f64(p.ambient);
}

void hash_cache_config(util::HashSink& h, const arch::CacheConfig& c) {
  h.u64(c.size_bytes).u64(c.line_bytes).u64(c.associativity);
}

void hash_core(util::HashSink& h, const arch::CoreConfig& c) {
  h.i64(c.fetch_width)
      .i64(c.rename_width)
      .i64(c.issue_width)
      .i64(c.commit_width)
      .i64(c.rob_entries)
      .i64(c.frontend_entries)
      .i64(c.int_queue_entries)
      .i64(c.fp_queue_entries)
      .i64(c.ls_queue_entries)
      .i64(c.int_alu_units)
      .i64(c.int_mul_units)
      .i64(c.fp_add_units)
      .i64(c.fp_mul_units)
      .i64(c.mem_ports)
      .i64(c.int_alu_latency)
      .i64(c.int_mul_latency)
      .i64(c.fp_add_latency)
      .i64(c.fp_mul_latency)
      .i64(c.l1_hit_latency)
      .i64(c.l2_hit_latency)
      .i64(c.tlb_miss_penalty)
      .i64(c.mispredict_penalty)
      .f64(c.memory_latency_ns);
  hash_cache_config(h, c.icache);
  hash_cache_config(h, c.dcache);
  hash_cache_config(h, c.l2);
  h.u64(static_cast<std::uint64_t>(c.predictor))
      .i64(c.bpred_index_bits)
      .i64(c.bpred_history_bits)
      .i64(c.tournament.local_history_bits)
      .i64(c.tournament.local_table_bits)
      .i64(c.tournament.global_bits)
      .i64(c.mshr_entries)
      .boolean(c.store_forwarding)
      .f64(c.nominal_frequency_hz);
}

void hash_sensor(util::HashSink& h, const sensor::SensorConfig& s) {
  h.f64(s.noise_sigma)
      .f64(s.quantization)
      .f64(s.max_offset)
      .f64(s.sample_rate)
      .u64(s.seed)
      .boolean(s.enable_noise)
      .boolean(s.enable_offset);
}

void hash_campaign(util::HashSink& h, const fault::FaultCampaign& c) {
  h.u64(c.seed()).u64(c.events().size());
  for (const fault::FaultEvent& e : c.events()) {
    h.u64(e.sensor)
        .u64(static_cast<std::uint64_t>(e.kind))
        .f64(e.start_seconds)
        .f64(e.duration_seconds)
        .f64(e.magnitude)
        .f64(e.probability);
  }
}

void hash_multicore(util::HashSink& h, const SimConfig::MulticoreConfig& m) {
  // Deliberately NOT hashed: m.threads. It is an execution-width knob —
  // results are bit-identical at any value (multicore_test asserts it),
  // exactly like the experiment pool's width, so hashing it would both
  // fragment the cache and let the determinism test pass vacuously via
  // cache hits.
  h.u64(m.cores)
      .u64(m.workload_threads)
      .boolean(m.per_core_dvs)
      .boolean(m.migration)
      .f64(m.migration_policy.interval)
      .u64(m.migration_policy.cost_cycles)
      .f64(m.migration_policy.flush_energy)
      .f64(m.migration_policy.margin)
      .f64(m.migration_policy.trigger)
      .f64(m.arbiter.die_budget)
      .f64(m.arbiter.gain)
      .f64(m.arbiter.release)
      .f64(m.arbiter.max_gate_fraction)
      .u64(m.arbiter.dvs_debounce_updates);
}

void hash_config_into(util::HashSink& h, const SimConfig& cfg) {
  h.f64(cfg.v_nominal)
      .f64(cfg.f_nominal)
      .f64(cfg.v_threshold)
      .f64(cfg.vf_alpha)
      .f64(cfg.v_low_fraction)
      .u64(cfg.dvs_steps)
      .f64(cfg.dvs_switch_time)
      .boolean(cfg.dvs_stall)
      .f64(cfg.thresholds.trigger)
      .f64(cfg.thresholds.emergency)
      .f64(cfg.clock_gate_quantum)
      .i64(cfg.thermal_interval_cycles)
      .f64(cfg.time_scale)
      .u64(cfg.warmup_instructions)
      .u64(cfg.run_instructions)
      .u64(cfg.activity_probe_instructions)
      // Fast-path knobs are hashed even though both are result-invariant
      // (bulk_idle_skip is bit-identical; fused_thermal agrees to 1e-9):
      // the memo cache must never serve a result computed under a
      // different numerical path than the caller asked for.
      .boolean(cfg.bulk_idle_skip)
      .boolean(cfg.fused_thermal);
  hash_package(h, cfg.package);
  hash_sensor(h, cfg.sensor);
  hash_campaign(h, cfg.fault_campaign);
  hash_core(h, cfg.core);
  hash_multicore(h, cfg.multicore);
}

void hash_profile(util::HashSink& h,
                  const workload::WorkloadProfile& p) {
  h.str(p.name)
      .u64(p.seed)
      .f64(p.frac_int_alu)
      .f64(p.frac_int_mul)
      .f64(p.frac_fp_add)
      .f64(p.frac_fp_mul)
      .f64(p.frac_load)
      .f64(p.frac_store)
      .f64(p.frac_branch)
      .f64(p.mean_dep_distance)
      .i64(p.max_dep_distance)
      .f64(p.frac_two_src)
      .f64(p.hard_branch_fraction)
      .u64(p.inst_footprint)
      .u64(p.data_hot_footprint)
      .u64(p.data_warm_footprint)
      .f64(p.warm_access_fraction)
      .f64(p.stream_access_fraction)
      .u64(p.phases.size());
  for (const workload::PhaseSpec& ph : p.phases) {
    h.u64(ph.length_instructions).f64(ph.ilp_scale).f64(ph.mem_scale);
  }
}

void hash_hybrid(util::HashSink& h, const core::HybridConfig& c) {
  h.f64(c.crossover_gate_fraction)
      .f64(c.kp)
      .f64(c.ki)
      .f64(c.crossover_margin)
      .f64(c.dvs_threshold_offset)
      .f64(c.hysteresis)
      .u64(c.release_filter_samples)
      .u64(c.escalate_filter_samples);
}

void hash_params(util::HashSink& h, const PolicyParams& p) {
  h.u64(static_cast<std::uint64_t>(p.dvs.mode))
      .f64(p.dvs.kp)
      .f64(p.dvs.ki)
      .u64(p.dvs.raise_filter_samples)
      .f64(p.dvs.hysteresis)
      .u64(static_cast<std::uint64_t>(p.fetch_gating.mode))
      .f64(p.fetch_gating.ki)
      .f64(p.fetch_gating.kp)
      .f64(p.fetch_gating.max_gate_fraction)
      .f64(p.fetch_gating.fixed_gate_fraction)
      .f64(p.clock_gating.hysteresis);
  hash_hybrid(h, p.hybrid);
  hash_hybrid(h, p.proactive.hybrid);
  h.f64(p.proactive.horizon)
      .f64(p.proactive.slope_filter_alpha)
      .f64(p.local_toggle.ki)
      .f64(p.local_toggle.kp)
      .f64(p.local_toggle.max_gate_fraction)
      .f64(p.fallback.ki)
      .f64(p.fallback.kp)
      .f64(p.fallback.max_gate_fraction)
      .f64(p.fallback.emergency_margin)
      .u64(p.fallback.release_filter_samples)
      .f64(p.fallback.hysteresis)
      .boolean(p.guarded);
  const core::GuardedPolicyConfig& g = p.guard;
  h.f64(g.min_plausible)
      .f64(g.max_plausible)
      .f64(g.max_rate)
      .f64(g.noise_margin)
      .u64(g.frozen_samples)
      .u64(g.learn_samples)
      .f64(g.deviation_alpha)
      .f64(g.drift_cap)
      .u64(g.suspect_samples)
      .f64(g.substitution_margin)
      .f64(g.recovery_band)
      .u64(g.recovery_samples)
      .u64(g.backoff_max_factor)
      .f64(g.failsafe_lost_fraction)
      .u64(g.failsafe_release_samples)
      .f64(g.pessimism_bias);
}

}  // namespace

std::uint64_t config_hash(const SimConfig& cfg) {
  util::HashSink h;
  hash_config_into(h, cfg);
  return h.digest();
}

SimConfig baseline_config(const SimConfig& cfg) {
  const SimConfig defaults{};
  SimConfig base = cfg;
  base.dvs_steps = defaults.dvs_steps;
  base.v_low_fraction = defaults.v_low_fraction;
  base.dvs_switch_time = defaults.dvs_switch_time;
  base.dvs_stall = defaults.dvs_stall;
  base.clock_gate_quantum = defaults.clock_gate_quantum;
  // The die shape (cores, thread placement) is part of the experiment
  // point; the die-level DTM mechanisms are not — a baseline is the same
  // die running unmanaged.
  base.multicore.per_core_dvs = defaults.multicore.per_core_dvs;
  base.multicore.migration = defaults.multicore.migration;
  base.multicore.migration_policy = defaults.multicore.migration_policy;
  base.multicore.arbiter = defaults.multicore.arbiter;
  return base;
}

std::uint64_t run_point_key(const workload::WorkloadProfile& profile,
                            PolicyKind kind, const PolicyParams& params,
                            const SimConfig& cfg) {
  util::HashSink h;
  h.str("hydra-run-v1");
  hash_profile(h, profile);
  h.u64(static_cast<std::uint64_t>(kind));
  hash_params(h, params);
  hash_config_into(h, cfg);
  return h.digest();
}

// ---------------------------------------------------------------------------

std::vector<double> SuiteResult::slowdowns() const {
  std::vector<double> out;
  out.reserve(per_benchmark.size());
  for (const ExperimentResult& r : per_benchmark) out.push_back(r.slowdown);
  return out;
}

namespace {

std::size_t default_batch_width() {
  const char* v = std::getenv("HYDRA_BATCH");
  if (v == nullptr || *v == '\0') return 4;
  return static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
}

}  // namespace

ExperimentRunner::ExperimentRunner(SimConfig base_cfg, util::ThreadPool* pool)
    : base_cfg_(std::move(base_cfg)),
      pool_(pool != nullptr ? pool : &util::ThreadPool::global()),
      batch_width_(default_batch_width()) {}

RunCache::Future ExperimentRunner::submit_baseline(
    const workload::WorkloadProfile& profile, const SimConfig& cfg) {
  const SimConfig bcfg = baseline_config(cfg);
  const std::uint64_t key =
      run_point_key(profile, PolicyKind::kNone, PolicyParams{}, bcfg);
  return cache_.submit(
      key, *pool_,
      [profile, bcfg](const util::CancelToken& token) {
        // Per-job profiling span on this worker's wall-clock lane, so the
        // trace shows pool occupancy per thread.
        const obs::ScopedSpan span(obs::tracer(), "engine", "run",
                                   profile.name + "/baseline");
        if (bcfg.multicore.cores > 1) {
          MulticoreSystem system(profile, bcfg, nullptr, "baseline");
          return system.run(&token).aggregate;
        }
        System system(profile, bcfg, nullptr);
        return system.run(&token);
      },
      job_opts_);
}

RunCache::Future ExperimentRunner::submit_run(
    const workload::WorkloadProfile& profile, PolicyKind kind,
    const PolicyParams& params, const SimConfig& cfg) {
  // A plain no-DTM point IS the baseline: route it through the baseline
  // key so the two share one cache entry. (kNone with `guarded` builds a
  // pure supervisor, which is a real policy — it takes the normal path.)
  if (kind == PolicyKind::kNone && !params.guarded) {
    return submit_baseline(profile, cfg);
  }
  const std::uint64_t key = run_point_key(profile, kind, params, cfg);
  return cache_.submit(
      key, *pool_,
      [profile, kind, params, cfg](const util::CancelToken& token) {
        const obs::ScopedSpan span(
            obs::tracer(), "engine", "run",
            profile.name + "/" + policy_kind_name(kind));
        if (cfg.multicore.cores > 1) {
          // Each tile gets its own equivalently configured policy
          // instance (per-tile controller state must not be shared).
          MulticoreSystem system(
              profile, cfg,
              [kind, params, cfg] { return make_policy(kind, params, cfg); },
              policy_kind_name(kind));
          return system.run(&token).aggregate;
        }
        System system(profile, cfg, make_policy(kind, params, cfg));
        return system.run(&token);
      },
      job_opts_);
}

const RunResult& ExperimentRunner::baseline(
    const workload::WorkloadProfile& profile) {
  return baseline(profile, base_cfg_);
}

const RunResult& ExperimentRunner::baseline(
    const workload::WorkloadProfile& profile, const SimConfig& cfg) {
  // The cache never evicts, so the pointee address is stable for the
  // runner's lifetime.
  return *submit_baseline(profile, cfg).get();
}

std::vector<ExperimentResult> ExperimentRunner::run_points(
    const std::vector<PointSpec>& points) {
  // Submission order (and therefore result order) is the input order;
  // completion order is irrelevant because each future is joined by
  // index. Each System run is internally deterministic and the memoized
  // runs are keyed by content, so any pool width yields identical bits.
  //
  // Before submitting, plan the full submission list (dtm then baseline
  // per point) so fresh points can be grouped into lockstep batches
  // (sim/batch_sweep.h). Grouping changes neither keys, nor submission
  // order, nor memoization stats — a batched key gets a compute that
  // runs its BatchGroup lane instead of a solo System, and batched
  // results are bit-identical to serial ones — so the planner is
  // invisible to everything downstream.
  struct Planned {
    std::uint64_t key = 0;
    BatchPointSpec spec{};
  };
  std::vector<Planned> subs;
  subs.reserve(points.size() * 2);
  for (const PointSpec& p : points) {
    Planned dtm;
    if (p.kind == PolicyKind::kNone && !p.params.guarded) {
      // Mirror submit_run's routing: a plain no-DTM point IS the
      // baseline and shares its key/config normalisation.
      dtm.spec = BatchPointSpec{p.profile, PolicyKind::kNone, PolicyParams{},
                                baseline_config(p.cfg)};
    } else {
      dtm.spec = BatchPointSpec{p.profile, p.kind, p.params, p.cfg};
    }
    dtm.key = run_point_key(dtm.spec.profile, dtm.spec.kind, dtm.spec.params,
                            dtm.spec.cfg);
    subs.push_back(dtm);
    Planned base;
    base.spec = BatchPointSpec{p.profile, PolicyKind::kNone, PolicyParams{},
                               baseline_config(p.cfg)};
    base.key = run_point_key(base.spec.profile, base.spec.kind,
                             base.spec.params, base.spec.cfg);
    subs.push_back(base);
  }

  // Group eligible fresh keys: not yet cached or in flight, not a
  // duplicate within this call, fused scheme (the panel kernel IS the
  // fused step — a backward-Euler run has no shared operator to batch),
  // and no supervision (a deadline or retry budget needs the per-job
  // cancel token, which a shared lockstep group cannot honour per
  // lane). Lanes must share a thermal model, i.e. a model_key.
  std::unordered_map<std::uint64_t,
                     std::pair<std::shared_ptr<BatchGroup>, std::size_t>>
      batch_of;
  last_batched_groups_ = 0;
  const bool supervised =
      job_opts_.timeout.value() > 0.0 || job_opts_.max_attempts > 1;
  if (batch_width_ > 1 && !supervised) {
    std::unordered_map<std::uint64_t, std::vector<const Planned*>> open;
    std::unordered_set<std::uint64_t> fresh;
    const auto close_group = [&](std::vector<const Planned*>& members) {
      std::vector<BatchPointSpec> lanes;
      lanes.reserve(members.size());
      for (const Planned* m : members) lanes.push_back(m->spec);
      const auto group = std::make_shared<BatchGroup>(std::move(lanes));
      for (std::size_t k = 0; k < members.size(); ++k) {
        batch_of.emplace(members[k]->key, std::make_pair(group, k));
      }
      ++last_batched_groups_;
      members.clear();
    };
    for (const Planned& s : subs) {
      if (!s.spec.cfg.fused_thermal) continue;
      // Many-core points run through MulticoreSystem, which drives the
      // die solver itself; the lockstep batch lanes are single-core.
      if (s.spec.cfg.multicore.cores > 1) continue;
      if (!fresh.insert(s.key).second) continue;
      if (cache_.contains(s.key)) continue;
      std::vector<const Planned*>& bucket = open[model_key(s.spec.cfg)];
      bucket.push_back(&s);
      if (bucket.size() == batch_width_) close_group(bucket);
    }
    // A leftover single lane gains nothing from the panel path; it
    // takes the normal solo route.
    for (auto& [mk, bucket] : open) {
      if (bucket.size() >= 2) close_group(bucket);
    }
  }

  std::vector<RunCache::Future> dtm_futures;
  std::vector<RunCache::Future> base_futures;
  dtm_futures.reserve(points.size());
  base_futures.reserve(points.size());
  const auto submit_planned = [&](const Planned& s) -> RunCache::Future {
    const auto it = batch_of.find(s.key);
    if (it != batch_of.end()) {
      const std::shared_ptr<BatchGroup> group = it->second.first;
      const std::size_t lane = it->second.second;
      // Sibling lanes share the group: whichever compute the pool runs
      // first executes every lane; the rest join it and fetch their
      // own result (duplicate submissions of the key are cache hits
      // and never reach this compute).
      return cache_.submit(
          s.key, *pool_,
          [group, lane](const util::CancelToken&) {
            return group->result(lane);
          },
          job_opts_);
    }
    if (s.spec.kind == PolicyKind::kNone && !s.spec.params.guarded) {
      return submit_baseline(s.spec.profile, s.spec.cfg);
    }
    return submit_run(s.spec.profile, s.spec.kind, s.spec.params, s.spec.cfg);
  };
  for (std::size_t i = 0; i < points.size(); ++i) {
    dtm_futures.push_back(submit_planned(subs[2 * i]));
    base_futures.push_back(submit_planned(subs[2 * i + 1]));
  }
  std::vector<ExperimentResult> results(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ExperimentResult& r = results[i];
    r.dtm = *dtm_futures[i].get();
    r.baseline = *base_futures[i].get();
    r.slowdown = r.baseline.wall_seconds > 0.0
                     ? r.dtm.wall_seconds / r.baseline.wall_seconds
                     : 1.0;
  }
  return results;
}

ExperimentResult ExperimentRunner::run(
    const workload::WorkloadProfile& profile, PolicyKind kind,
    const PolicyParams& params, const SimConfig& cfg) {
  return run_points({PointSpec{profile, kind, params, cfg}}).front();
}

ExperimentResult ExperimentRunner::run(
    const workload::WorkloadProfile& profile, PolicyKind kind,
    const PolicyParams& params) {
  return run(profile, kind, params, base_cfg_);
}

std::vector<SuiteResult> ExperimentRunner::run_suites(
    const std::vector<SuiteSpec>& specs) {
  const std::vector<workload::WorkloadProfile> profiles =
      workload::spec2000_hot_profiles();
  std::vector<PointSpec> points;
  points.reserve(specs.size() * profiles.size());
  for (const SuiteSpec& s : specs) {
    for (const workload::WorkloadProfile& profile : profiles) {
      points.push_back(PointSpec{profile, s.kind, s.params, s.cfg});
    }
  }
  const std::vector<ExperimentResult> flat = run_points(points);

  std::vector<SuiteResult> suites;
  suites.reserve(specs.size());
  std::size_t next = 0;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    SuiteResult suite;
    util::RunningStats stats;
    for (std::size_t b = 0; b < profiles.size(); ++b) {
      suite.per_benchmark.push_back(flat[next++]);
      stats.add(suite.per_benchmark.back().slowdown);
    }
    suite.mean_slowdown = stats.mean();
    const std::vector<double> xs = suite.slowdowns();
    suite.ci99_half_width = util::confidence_half_width_99(xs);
    suites.push_back(std::move(suite));
  }
  return suites;
}

SuiteResult ExperimentRunner::run_suite(PolicyKind kind,
                                        const PolicyParams& params,
                                        const SimConfig& cfg) {
  return run_suites({SuiteSpec{kind, params, cfg}}).front();
}

SuiteResult ExperimentRunner::run_suite(PolicyKind kind,
                                        const PolicyParams& params) {
  return run_suite(kind, params, base_cfg_);
}

}  // namespace hydra::sim
