// Thread-safe memoization of completed simulation runs, with job
// supervision and an optional crash-safe disk tier.
//
// The experiment engine keys every (profile, policy kind, params,
// SimConfig) point by a content hash (see experiment.h) and computes it
// at most once per process: the first submission enqueues the run on the
// thread pool and publishes a shared future; later submissions — from
// any thread, any bench target — get the same future. Results are held
// as shared_ptr<const RunResult>, so callers that need stable addresses
// (ExperimentRunner::baseline returns references) can rely on entries
// never being evicted or reallocated for the cache's lifetime.
//
// Supervision (the fault-tolerance contract):
//   * A job that throws marks its future Failed; get() rethrows the
//     typed exception to exactly the callers joined on that key, and
//     sibling jobs are untouched (the pool contains the unwind).
//   * A Failed entry does not poison the key: the next submission of
//     the same key is treated as a miss and recomputes. (Previously a
//     throwing job left the broken future cached forever.)
//   * JobOptions adds a per-job deadline — enforced cooperatively via a
//     util::CancelToken handed to the job — and bounded retry with
//     doubling backoff for jobs that throw util::TransientError.
//   * With a PersistentRunCache attached, a miss first consults the
//     disk tier inside the job (so shard I/O parallelises across
//     workers) and publishes every fresh compute back to it.
//
// Jobs deliberately capture shared state rather than the RunCache
// itself: a caller may destroy the cache the moment get() returns while
// a sibling job is still in flight.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <unordered_map>

#include "sim/system.h"
#include "util/cancel.h"
#include "util/sync.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace hydra::sim {

class PersistentRunCache;

class RunCache {
 public:
  using ResultPtr = std::shared_ptr<const RunResult>;
  using Future = std::shared_future<ResultPtr>;

  /// Per-job supervision knobs. The defaults mean "no supervision":
  /// no deadline, a single attempt.
  struct JobOptions {
    /// Wall-clock budget for one attempt; <= 0 disables the deadline.
    /// Enforced cooperatively — System::run polls the token per chunk —
    /// so an expired job unwinds with util::TimeoutError within one
    /// chunk, never by killing a thread.
    util::Seconds timeout{0.0};
    /// Total attempts for jobs that throw util::TransientError. Other
    /// exception types never retry (they are deterministic failures).
    int max_attempts = 1;
    /// Sleep before the first retry; doubles per retry, bounded.
    util::Seconds backoff{0.005};
  };

  struct Stats {
    std::uint64_t hits = 0;    ///< submissions served from the cache
    std::uint64_t misses = 0;  ///< submissions that enqueued a run
    std::uint64_t failures = 0;   ///< jobs whose final attempt threw
    std::uint64_t retries = 0;    ///< transient attempts retried
    std::uint64_t timeouts = 0;   ///< failures that were deadline expiries
    std::uint64_t computes = 0;   ///< attempts that invoked the job body
    std::uint64_t disk_hits = 0;    ///< misses served by the disk tier
    std::uint64_t disk_stores = 0;  ///< fresh results spilled to disk
  };

  /// Future for the run keyed by `key`. On a miss — including a cached
  /// entry whose job Failed — `compute` is enqueued on `pool` under the
  /// supervision in `opts`, and the (shared) future is published before
  /// returning, so concurrent submitters of the same key join one run.
  /// The job's CancelToken reports the per-attempt deadline; long runs
  /// must poll it (System::run does). Exceptions from the final attempt
  /// are rethrown from the future's get().
  Future submit(std::uint64_t key, util::ThreadPool& pool,
                std::function<RunResult(const util::CancelToken&)> compute,
                const JobOptions& opts);

  /// Unsupervised convenience overload (no deadline, one attempt).
  Future submit(std::uint64_t key, util::ThreadPool& pool,
                std::function<RunResult()> compute);

  /// Attach the disk tier consulted/fed by misses. Affects only jobs
  /// enqueued after the call. Pass nullptr to detach.
  void set_store(std::shared_ptr<PersistentRunCache> store);
  std::shared_ptr<PersistentRunCache> store() const;

  Stats stats() const;
  std::size_t size() const;

  /// True when `key` would be served from the cache (done or in
  /// flight — a Failed entry reads as absent, matching submit's miss
  /// semantics). A pure probe: no stats are counted. The experiment
  /// runner uses this to group only genuinely fresh points into
  /// lockstep batches.
  bool contains(std::uint64_t key) const;

 private:
  /// Lifecycle of a cached entry, advanced by the job itself. Shared
  /// with the job via shared_ptr so it outlives the cache if needed.
  enum State : int { kInFlight = 0, kDone = 1, kFailed = 2 };

  struct Entry {
    Future future;
    std::shared_ptr<std::atomic<int>> state;
  };

  /// Counters the supervised job updates from worker threads. Heap-held
  /// and shared with every job for the same lifetime reason as State.
  struct SharedCounters {
    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> timeouts{0};
    std::atomic<std::uint64_t> computes{0};
    std::atomic<std::uint64_t> disk_hits{0};
    std::atomic<std::uint64_t> disk_stores{0};
  };

  mutable util::Mutex mu_;
  std::unordered_map<std::uint64_t, Entry> runs_ HYDRA_GUARDED_BY(mu_);
  Stats stats_ HYDRA_GUARDED_BY(mu_);
  std::shared_ptr<PersistentRunCache> store_ HYDRA_GUARDED_BY(mu_);
  // Not guarded: set once at construction, and the counters it points
  // to are atomics shared with in-flight jobs.
  std::shared_ptr<SharedCounters> counters_ =
      std::make_shared<SharedCounters>();
};

}  // namespace hydra::sim
