// Thread-safe memoization of completed simulation runs.
//
// The experiment engine keys every (profile, policy kind, params,
// SimConfig) point by a content hash (see experiment.h) and computes it
// at most once per process: the first submission enqueues the run on the
// thread pool and publishes a shared future; later submissions — from
// any thread, any bench target — get the same future. Results are held
// as shared_ptr<const RunResult>, so callers that need stable addresses
// (ExperimentRunner::baseline returns references) can rely on entries
// never being evicted or reallocated for the cache's lifetime.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "sim/system.h"
#include "util/thread_pool.h"

namespace hydra::sim {

class RunCache {
 public:
  using ResultPtr = std::shared_ptr<const RunResult>;
  using Future = std::shared_future<ResultPtr>;

  struct Stats {
    std::uint64_t hits = 0;    ///< submissions served from the cache
    std::uint64_t misses = 0;  ///< submissions that enqueued a run
  };

  /// Future for the run keyed by `key`. On a miss `compute` is enqueued
  /// on `pool` and the (shared) future is published before returning, so
  /// concurrent submitters of the same key join one run. Exceptions from
  /// `compute` are rethrown from the future's get().
  Future submit(std::uint64_t key, util::ThreadPool& pool,
                std::function<RunResult()> compute);

  Stats stats() const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Future> runs_;
  Stats stats_;
};

}  // namespace hydra::sim
