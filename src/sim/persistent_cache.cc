#include "sim/persistent_cache.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "obs/obs.h"

namespace hydra::sim {
namespace {

namespace fs = std::filesystem;

// Entry file layout (all integers little-endian):
//   "HYRC"                      4 bytes  magic
//   version                     u32
//   key                         u64      (must match the filename)
//   payload_size                u64
//   payload                     payload_size bytes
//   checksum                    u64      FNV-1a 64 over the payload
// Any structural deviation — short file, magic/key mismatch, impossible
// size, checksum mismatch, undecodable payload — classifies the file as
// corrupt; a version we don't speak classifies it as stale.
constexpr char kMagic[4] = {'H', 'Y', 'R', 'C'};
// v2: RunResult gained the many-core metrics (cores, thread_migrations,
// core_temp_spread_celsius, budget_throttled_fraction). v1 entries are
// dropped as stale on recovery and recomputed.
constexpr std::uint32_t kFormatVersion = 2;
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_str(std::string& out, const std::string& s) {
  put_u64(out, s.size());
  out.append(s);
}

// Bounds-checked little-endian reader; every getter degrades to a
// harmless default once `ok` drops, so decoding never reads out of
// bounds regardless of how mangled the input is.
struct Reader {
  std::string_view data;
  std::size_t pos = 0;
  bool ok = true;

  std::uint64_t u64() {
    if (!ok || data.size() - pos < 8) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos += 8;
    return v;
  }

  std::uint32_t u32() {
    if (!ok || data.size() - pos < 4) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos += 4;
    return v;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return ok ? v : 0.0;
  }

  std::string str() {
    const std::uint64_t len = u64();
    if (!ok || len > data.size() - pos) {
      ok = false;
      return {};
    }
    std::string s(data.substr(pos, static_cast<std::size_t>(len)));
    pos += static_cast<std::size_t>(len);
    return s;
  }
};

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[v & 0xfu];
    v >>= 4;
  }
  return s;
}

bool parse_hex16(std::string_view s, std::uint64_t& out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  out = v;
  return true;
}

enum class FileStatus { kOk, kCorrupt, kStale };

struct ParsedEntry {
  FileStatus status = FileStatus::kCorrupt;
  std::uint64_t checksum = 0;
  std::string payload;
};

ParsedEntry parse_entry_file(const fs::path& p, std::uint64_t expected_key) {
  ParsedEntry out;
  std::ifstream in(p, std::ios::binary);
  if (!in) return out;
  std::string raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return out;
  if (raw.size() < kHeaderBytes + 8) return out;
  if (std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0) return out;
  Reader r{std::string_view(raw), sizeof(kMagic), true};
  const std::uint32_t version = r.u32();
  const std::uint64_t key = r.u64();
  const std::uint64_t payload_size = r.u64();
  if (!r.ok) return out;
  if (version != kFormatVersion) {
    // Structurally a store entry, just from another era of the format.
    out.status = FileStatus::kStale;
    return out;
  }
  if (key != expected_key) return out;
  if (payload_size != raw.size() - kHeaderBytes - 8) return out;
  const std::string_view payload(raw.data() + kHeaderBytes,
                                 static_cast<std::size_t>(payload_size));
  r.pos = kHeaderBytes + static_cast<std::size_t>(payload_size);
  const std::uint64_t checksum = r.u64();
  if (!r.ok || fnv1a64(payload) != checksum) return out;
  out.status = FileStatus::kOk;
  out.checksum = checksum;
  out.payload.assign(payload);
  return out;
}

std::uint64_t entry_key_of(const fs::path& p, bool& ok) {
  std::uint64_t key = 0;
  ok = p.extension() == ".run" && parse_hex16(p.stem().string(), key);
  return key;
}

}  // namespace

std::string serialize_run_result(const RunResult& r) {
  std::string out;
  out.reserve(256);
  put_str(out, r.benchmark);
  put_str(out, r.policy);
  put_f64(out, r.wall_seconds);
  put_u64(out, r.instructions);
  put_u64(out, r.cycles);
  put_f64(out, r.ipc);
  put_f64(out, r.max_true_celsius);
  put_f64(out, r.violation_fraction);
  put_f64(out, r.above_trigger_fraction);
  put_u64(out, static_cast<std::uint64_t>(r.dvs_transitions));
  put_f64(out, r.mean_gate_fraction);
  put_f64(out, r.mean_issue_gate_fraction);
  put_f64(out, r.dvs_low_fraction);
  put_f64(out, r.clock_gated_fraction);
  put_f64(out, r.mean_power_watts);
  put_str(out, r.hottest_block);
  put_f64(out, r.hottest_mean_celsius);
  put_f64(out, r.idle_skip_fraction);
  put_u64(out, r.solver_guard_trips);
  put_u64(out, r.faulted_samples);
  put_u64(out, r.sensor_rejections);
  put_u64(out, r.quarantine_entries);
  put_f64(out, r.failsafe_fraction);
  put_f64(out, r.fault_window_fraction);
  put_f64(out, r.fault_violation_fraction);
  put_u64(out, static_cast<std::uint64_t>(r.cores));
  put_u64(out, r.thread_migrations);
  put_f64(out, r.core_temp_spread_celsius);
  put_f64(out, r.budget_throttled_fraction);
  return out;
}

bool deserialize_run_result(std::string_view payload, RunResult& out) {
  Reader r{payload, 0, true};
  out.benchmark = r.str();
  out.policy = r.str();
  out.wall_seconds = r.f64();
  out.instructions = r.u64();
  out.cycles = r.u64();
  out.ipc = r.f64();
  out.max_true_celsius = r.f64();
  out.violation_fraction = r.f64();
  out.above_trigger_fraction = r.f64();
  out.dvs_transitions = static_cast<std::size_t>(r.u64());
  out.mean_gate_fraction = r.f64();
  out.mean_issue_gate_fraction = r.f64();
  out.dvs_low_fraction = r.f64();
  out.clock_gated_fraction = r.f64();
  out.mean_power_watts = r.f64();
  out.hottest_block = r.str();
  out.hottest_mean_celsius = r.f64();
  out.idle_skip_fraction = r.f64();
  out.solver_guard_trips = r.u64();
  out.faulted_samples = r.u64();
  out.sensor_rejections = r.u64();
  out.quarantine_entries = r.u64();
  out.failsafe_fraction = r.f64();
  out.fault_window_fraction = r.f64();
  out.fault_violation_fraction = r.f64();
  out.cores = static_cast<std::size_t>(r.u64());
  out.thread_migrations = r.u64();
  out.core_temp_spread_celsius = r.f64();
  out.budget_throttled_fraction = r.f64();
  return r.ok && r.pos == payload.size();
}

PersistentRunCache::PersistentRunCache(Options opts)
    : opts_(std::move(opts)) {
  if (opts_.dir.empty()) {
    throw std::runtime_error("persistent cache: empty directory");
  }
  if (opts_.shards == 0) opts_.shards = 1;
  const util::LockGuard lock(mu_);
  recover_locked();
}

std::shared_ptr<PersistentRunCache> PersistentRunCache::from_env() {
  const char* dir = std::getenv("HYDRA_CACHE_DIR");
  if (dir == nullptr || dir[0] == '\0') return nullptr;
  Options opts;
  opts.dir = dir;
  if (const char* cap = std::getenv("HYDRA_CACHE_MAX_BYTES")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(cap, &end, 10);
    if (end != cap && v > 0) opts.max_bytes = v;
  }
  return std::make_shared<PersistentRunCache>(std::move(opts));
}

fs::path PersistentRunCache::shard_dir(std::uint64_t key) const {
  std::ostringstream name;
  name << "shard-";
  const std::uint64_t shard = key % opts_.shards;
  name << (shard < 10 ? "0" : "") << shard;
  return fs::path(opts_.dir) / name.str();
}

fs::path PersistentRunCache::entry_path(std::uint64_t key) const {
  return shard_dir(key) / (hex16(key) + ".run");
}

void PersistentRunCache::recover_locked() {
  static const obs::Counter recoveries =
      obs::metrics().counter("cache.disk_recoveries");
  recoveries.add();
  std::error_code ec;
  fs::create_directories(opts_.dir, ec);
  fs::create_directories(fs::path(opts_.dir) / "quarantine", ec);
  for (std::size_t s = 0; s < opts_.shards; ++s) {
    fs::create_directories(fs::path(opts_.dir) / ("shard-" + std::string(s < 10 ? "0" : "") + std::to_string(s)), ec);
  }
  // Probe writability up front so a bad directory fails loudly at open,
  // not silently per save.
  {
    const fs::path probe = fs::path(opts_.dir) / ".probe.tmp";
    std::ofstream out(probe, std::ios::binary | std::ios::trunc);
    out << "ok";
    out.close();
    if (!out.good()) {
      throw std::runtime_error("persistent cache: directory not writable: " +
                               opts_.dir);
    }
    fs::remove(probe, ec);
  }

  // Census of the shards: delete abandoned temp files, validate every
  // entry, quarantine anything corrupt, drop anything stale. Survivors
  // are LRU-ordered by file modification time (oldest = first evicted).
  struct Found {
    std::uint64_t key;
    IndexEntry entry;
    fs::file_time_type mtime;
  };
  std::vector<Found> found;
  for (std::size_t s = 0; s < opts_.shards; ++s) {
    const fs::path dir = fs::path(opts_.dir) /
                         ("shard-" + std::string(s < 10 ? "0" : "") +
                          std::to_string(s));
    for (const auto& de : fs::directory_iterator(dir, ec)) {
      const fs::path p = de.path();
      if (p.extension() == ".tmp" ||
          p.filename().string().find(".tmp") != std::string::npos) {
        fs::remove(p, ec);
        ++stats_.tmp_removed;
        continue;
      }
      bool name_ok = false;
      const std::uint64_t key = entry_key_of(p, name_ok);
      if (!name_ok) {
        quarantine_locked(key, p);
        continue;
      }
      const ParsedEntry parsed = parse_entry_file(p, key);
      if (parsed.status == FileStatus::kStale) {
        fs::remove(p, ec);
        ++stats_.stale;
        continue;
      }
      if (parsed.status == FileStatus::kCorrupt) {
        quarantine_locked(key, p);
        continue;
      }
      Found f;
      f.key = key;
      f.entry.path = p;
      f.entry.bytes = fs::file_size(p, ec);
      f.entry.checksum = parsed.checksum;
      f.mtime = fs::last_write_time(p, ec);
      found.push_back(std::move(f));
    }
  }
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) {
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.key < b.key;
            });
  index_.clear();
  total_bytes_ = 0;
  for (Found& f : found) {
    f.entry.lru_tick = ++lru_clock_;
    total_bytes_ += f.entry.bytes;
    index_.emplace(f.key, std::move(f.entry));
    ++stats_.recovered;
  }

  // The journal's recovery job: detect lost publishes. Entries are
  // self-validating, so the journal is not what makes a publish durable
  // — but a `P` intent whose key neither survived the census nor has a
  // later deliberate-removal (`E`) record means a crash or disk fault
  // ate a committed result, and that deserves a counter rather than a
  // silent recompute. A torn final line (killed mid-append) simply
  // fails the parse and is skipped. Afterwards the journal is compacted
  // to the surviving index so it cannot grow without bound.
  {
    static const obs::Counter lost =
        obs::metrics().counter("cache.disk_lost_publishes");
    std::map<std::uint64_t, bool> last_intent_is_publish;
    std::ifstream in(fs::path(opts_.dir) / "manifest.log");
    std::string line;
    while (std::getline(in, line)) {
      const std::string_view v(line);
      std::uint64_t key = 0;
      std::uint64_t checksum = 0;
      if (line.size() >= 35 && line[0] == 'P' && line[1] == ' ' &&
          parse_hex16(v.substr(2, 16), key) && line[18] == ' ' &&
          parse_hex16(v.substr(19, 16), checksum)) {
        last_intent_is_publish[key] = true;
      } else if (line.size() >= 18 && line[0] == 'E' && line[1] == ' ' &&
                 parse_hex16(v.substr(2, 16), key)) {
        last_intent_is_publish[key] = false;
      }
    }
    for (const auto& [key, published] : last_intent_is_publish) {
      if (published && index_.find(key) == index_.end()) {
        ++stats_.lost_publishes;
        lost.add();
      }
    }
  }
  compact_manifest_locked();
  enforce_capacity_locked();
}

void PersistentRunCache::quarantine_locked(std::uint64_t key,
                                           const fs::path& p) {
  static const obs::Counter quarantined =
      obs::metrics().counter("cache.disk_quarantined");
  quarantined.add();
  ++stats_.corrupt;
  std::error_code ec;
  const fs::path qdir = fs::path(opts_.dir) / "quarantine";
  fs::create_directories(qdir, ec);
  const fs::path dest =
      qdir / (hex16(key) + "-" + std::to_string(++quarantine_seq_) + ".bad");
  fs::rename(p, dest, ec);
  if (ec) {
    // Cross-device or exotic failure: fall back to copy+remove; if even
    // that fails the file must at least stop being servable.
    fs::copy_file(p, dest, fs::copy_options::overwrite_existing, ec);
    fs::remove(p, ec);
  }
}

void PersistentRunCache::append_manifest_locked(char op, std::uint64_t key,
                                                std::uint64_t checksum) {
  // flush() hands the line to the OS, which survives process death
  // (SIGKILL) — the crash model this store defends against. Media-level
  // power-loss durability would need fsync and is out of scope; the
  // journal only detects losses, the checksummed entries are the truth.
  std::ofstream out(fs::path(opts_.dir) / "manifest.log",
                    std::ios::app | std::ios::binary);
  out << op << ' ' << hex16(key);
  if (op == 'P') out << ' ' << hex16(checksum);
  out << '\n';
  out.flush();
}

void PersistentRunCache::compact_manifest_locked() {
  const fs::path manifest = fs::path(opts_.dir) / "manifest.log";
  const fs::path tmp = fs::path(opts_.dir) / "manifest.log.tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    for (const auto& [key, entry] : index_) {
      out << "P " << hex16(key) << " " << hex16(entry.checksum) << "\n";
    }
    out.flush();
    if (!out.good()) return;  // keep the old manifest rather than lose it
  }
  std::error_code ec;
  fs::rename(tmp, manifest, ec);
}

std::shared_ptr<const RunResult> PersistentRunCache::load(std::uint64_t key) {
  fs::path path;
  {
    const util::LockGuard lock(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    path = it->second.path;
  }

  // The file read — the expensive part — runs outside the lock so shard
  // reads from concurrent pool workers parallelise instead of
  // serialising on the index mutex (and a slow disk cannot stall
  // stats() callers). The entry may be evicted while we read; the
  // verdicts below revalidate against the index before mutating it.
  const ParsedEntry parsed = parse_entry_file(path, key);
  auto result = std::make_shared<RunResult>();
  const bool verified = parsed.status == FileStatus::kOk &&
                        deserialize_run_result(parsed.payload, *result);

  const util::LockGuard lock(mu_);
  const auto it = index_.find(key);
  if (verified) {
    // A concurrent eviction may have dropped the entry mid-read; the
    // bytes we already verified are still a correct answer.
    if (it != index_.end()) it->second.lru_tick = ++lru_clock_;
    ++stats_.hits;
    static const obs::Counter hits = obs::metrics().counter("cache.disk_hits");
    hits.add();
    return result;
  }
  if (it != index_.end()) {
    if (parsed.status == FileStatus::kStale) {
      std::error_code ec;
      fs::remove(it->second.path, ec);
      ++stats_.stale;
    } else {
      // The entry rotted (or was tampered with) after we indexed it.
      quarantine_locked(key, it->second.path);
    }
    append_manifest_locked('E', key);  // deliberate removal, not a loss
    total_bytes_ -= std::min(total_bytes_, it->second.bytes);
    index_.erase(it);
  }
  ++stats_.misses;
  return nullptr;
}

void PersistentRunCache::save(std::uint64_t key, const RunResult& result) {
  {
    const util::LockGuard lock(mu_);
    if (index_.count(key) != 0) return;  // identical by construction (FNV key)
  }

  // Serialization and the temp-file write — the bulk of the work — run
  // outside the lock so concurrent workers spill to their shards in
  // parallel; only the journal append, rename and index update
  // serialise. Temp names come from an atomic sequence, so two racing
  // saves of the same key never collide.
  const std::string payload = serialize_run_result(result);
  const std::uint64_t checksum = fnv1a64(payload);
  std::string blob;
  blob.reserve(kHeaderBytes + payload.size() + 8);
  blob.append(kMagic, sizeof(kMagic));
  put_u32(blob, kFormatVersion);
  put_u64(blob, key);
  put_u64(blob, payload.size());
  blob.append(payload);
  put_u64(blob, checksum);

  const fs::path final_path = entry_path(key);
  const fs::path tmp_path =
      shard_dir(key) /
      (hex16(key) + ".tmp" +
       std::to_string(tmp_seq_.fetch_add(1, std::memory_order_relaxed) + 1));
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out.good()) {
      // Contained: the run stays memory-only; disk pressure or a broken
      // volume must never take down the sweep.
      std::error_code ec;
      fs::remove(tmp_path, ec);
      return;
    }
  }

  const util::LockGuard lock(mu_);
  std::error_code ec;
  if (index_.count(key) != 0) {
    // A racing save published the same (bit-identical) entry first.
    fs::remove(tmp_path, ec);
    return;
  }
  // Intent is on record before the entry becomes visible, so recovery
  // can tell a lost publish from a run that never finished.
  append_manifest_locked('P', key, checksum);
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return;
  }
  IndexEntry entry;
  entry.path = final_path;
  entry.bytes = blob.size();
  entry.checksum = checksum;
  entry.lru_tick = ++lru_clock_;
  total_bytes_ += entry.bytes;
  index_.insert_or_assign(key, std::move(entry));
  ++stats_.stores;
  static const obs::Counter stores =
      obs::metrics().counter("cache.disk_stores");
  stores.add();
  enforce_capacity_locked();
}

void PersistentRunCache::enforce_capacity_locked() {
  while (total_bytes_ > opts_.max_bytes && !index_.empty()) {
    auto victim = index_.begin();
    for (auto it = index_.begin(); it != index_.end(); ++it) {
      if (it->second.lru_tick < victim->second.lru_tick) victim = it;
    }
    std::error_code ec;
    fs::remove(victim->second.path, ec);
    // Journal the removal so the next recovery reads this as a
    // deliberate eviction, not a lost publish.
    append_manifest_locked('E', victim->first);
    total_bytes_ -= std::min(total_bytes_, victim->second.bytes);
    index_.erase(victim);
    ++stats_.evictions;
  }
}

PersistentRunCache::Stats PersistentRunCache::stats() const {
  const util::LockGuard lock(mu_);
  return stats_;
}

std::size_t PersistentRunCache::entries() const {
  const util::LockGuard lock(mu_);
  return index_.size();
}

std::uint64_t PersistentRunCache::total_bytes() const {
  const util::LockGuard lock(mu_);
  return total_bytes_;
}

}  // namespace hydra::sim
