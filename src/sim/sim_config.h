// Configuration of a full co-simulation run (paper Section 3 setup).
#pragma once

#include <cstdint>

#include "arch/core_config.h"
#include "core/budget_arbiter.h"
#include "core/dtm_policy.h"
#include "core/migration_policy.h"
#include "fault/fault_campaign.h"
#include "sensor/sensor.h"
#include "thermal/package.h"
#include "util/units.h"

namespace hydra::sim {

struct SimConfig {
  // --- Operating point / DVS ------------------------------------------
  util::Volts v_nominal{1.3};
  util::Hertz f_nominal{3.0e9};
  util::Volts v_threshold{0.35};  ///< device Vth for the f(V) curve
  double vf_alpha = 1.3;          ///< alpha-power-law exponent
  double v_low_fraction = 0.85;   ///< paper: largest safe low voltage
  std::size_t dvs_steps = 2;      ///< binary DVS by default
  /// Time to change the DVS setting; paper: 10 us.
  util::Seconds dvs_switch_time{10e-6};
  /// true: pipeline stalls during the switch ("DVS-stall");
  /// false: execution continues, new point applies after the switch
  /// ("DVS-ideal").
  bool dvs_stall = true;

  // --- Thermal / DTM -----------------------------------------------------
  core::DtmThresholds thresholds{};
  thermal::Package package{};
  /// Global clock-gating quantum; paper (Pentium 4): 2 us.
  util::Seconds clock_gate_quantum{2e-6};
  /// Power/thermal accounting interval [cycles]; paper: 10,000 (with
  /// time_scale = 1). Scaled down alongside time_scale so the interval
  /// stays well below the sensor sampling period.
  long long thermal_interval_cycles = 5'000;

  // --- Time acceleration --------------------------------------------------
  /// Uniform compression of every thermal/DTM time constant (capacitances,
  /// sensor period, DVS switch time, clock quantum are all divided by
  /// this). 1.0 reproduces the paper's literal timings; the default of 40
  /// preserves all dimensionless dynamics while letting runs of a few
  /// million cycles span several silicon thermal time constants
  /// (DESIGN.md).
  double time_scale = 40.0;

  // --- Sensors -------------------------------------------------------------
  sensor::SensorConfig sensor{};
  /// Scheduled sensor faults (stuck-at, dead, drift, ...). Event times are
  /// paper-time seconds relative to the start of the measured window. The
  /// default empty campaign leaves the sensor path byte-identical to a
  /// build without fault support.
  fault::FaultCampaign fault_campaign{};

  // --- Fast paths ----------------------------------------------------------
  /// Advance clock-gated / DVS-stalled spans in O(1) instead of one
  /// idle_cycle() per cycle. Bit-identical results either way (enforced
  /// by fastpath_test); the knob exists so the reference path stays
  /// exercised and the identity stays checkable.
  bool bulk_idle_skip = true;
  /// Use the fused backward-Euler operator (two contiguous matvecs per
  /// thermal step) instead of LU forward/back substitution. Same scheme,
  /// same dt rounding; agrees with the LU path to <=1e-9 degC over full
  /// runs (enforced by fastpath_test).
  bool fused_thermal = true;

  // --- Many-core die ---------------------------------------------------
  struct MulticoreConfig {
    /// Core tiles on the die (1 = the classic single-core paper setup;
    /// the single-core System path is used and everything below is
    /// ignored). The die outline stays fixed — tiles shrink
    /// (floorplan/multicore.h), and each tile's power is scaled by
    /// 1/cores so die-level power density stays in the paper's regime.
    std::size_t cores = 1;
    /// Worker threads stepping tiles within one run. 0 = the global
    /// pool's width. Results are bit-identical at any value (enforced by
    /// multicore_test): threads only parallelise the embarrassingly
    /// parallel per-tile core stepping between interval barriers.
    std::size_t threads = 0;
    /// Software threads running on the die (each a seeded variant of the
    /// benchmark profile, pinned one per tile in tile order). 0 = one
    /// per core. Fewer threads than cores leaves idle (clock-gated)
    /// tiles — the migration policy's destinations.
    std::size_t workload_threads = 0;
    /// true: each tile's DVS commands actuate its own voltage domain;
    /// false: one global domain — the die runs at the maximum DVS level
    /// any tile requests (the conservative pre-per-core-domain design).
    bool per_core_dvs = true;
    /// Enable the thermal-aware thread-migration policy.
    bool migration = false;
    core::MigrationConfig migration_policy{};
    /// Global die-level power-budget arbiter; arbiter.die_budget <= 0
    /// (the default) disables it.
    core::BudgetArbiterConfig arbiter{};
  };
  MulticoreConfig multicore{};

  // --- Core / run length ----------------------------------------------------
  arch::CoreConfig core{};
  /// Instructions run before measurement begins (after steady-state
  /// thermal initialisation); the policy is active during warm-up.
  std::uint64_t warmup_instructions = 1'600'000;
  /// Instructions measured for slowdown.
  std::uint64_t run_instructions = 3'000'000;
  /// Instructions used to estimate representative activity for the
  /// steady-state thermal initialisation. 0 (default) sizes the probe
  /// automatically to one full phase rotation of the workload (capped at
  /// 2M), so the quasi-static heat-sink temperature reflects the
  /// workload's long-run average power rather than a single phase.
  std::uint64_t activity_probe_instructions = 0;
};

}  // namespace hydra::sim
