#include "sim/model_cache.h"

#include <stdexcept>

#include "floorplan/multicore.h"
#include "obs/obs.h"
#include "util/hash.h"

namespace hydra::sim {

std::uint64_t model_key(const SimConfig& cfg) {
  util::HashSink h;
  const thermal::Package& p = cfg.package;
  h.f64(p.die_thickness_m)
      .f64(p.k_silicon)
      .f64(p.c_silicon)
      .f64(p.tim_thickness_m)
      .f64(p.k_tim)
      .f64(p.spreader_side_m)
      .f64(p.spreader_thickness_m)
      .f64(p.k_copper)
      .f64(p.c_copper)
      .f64(p.sink_side_m)
      .f64(p.sink_thickness_m)
      .f64(p.k_sink)
      .f64(p.c_sink)
      .f64(p.r_convec.value())
      .f64(p.ambient.value())
      .f64(cfg.time_scale)
      .u64(cfg.multicore.cores);
  return h.digest();
}

std::shared_ptr<const SharedModel> ModelCache::get(const SimConfig& cfg) {
  if (cfg.time_scale <= 0.0) {
    throw std::invalid_argument("time_scale must be positive");
  }
  const std::uint64_t key = model_key(cfg);
  static const obs::Counter hit_counter =
      obs::metrics().counter("model_cache.hits");
  static const obs::Counter miss_counter =
      obs::metrics().counter("model_cache.misses");
  const util::LockGuard lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    miss_counter.add();
    const obs::ScopedSpan span(obs::tracer(), "engine", "build_model");
    auto shared = std::make_shared<SharedModel>();
    shared->fp = floorplan::multicore_floorplan(cfg.multicore.cores);
    shared->model = thermal::build_thermal_model(shared->fp, cfg.package);
    shared->model.network.scale_capacitances(cfg.time_scale);
    shared->lu_cache =
        std::make_shared<const thermal::LuCache>(shared->model.network);
    it = cache_.emplace(key, std::move(shared)).first;
  } else {
    hit_counter.add();
  }
  return it->second;
}

std::size_t ModelCache::size() const {
  const util::LockGuard lock(mu_);
  return cache_.size();
}

ModelCache& ModelCache::global() {
  static ModelCache cache;
  return cache;
}

}  // namespace hydra::sim
