// Lockstep batched sweeps: K independent System runs advanced together
// so their thermal steps share one FusedStepOperator pass.
//
// ExperimentRunner groups uncached sweep points that share a model-cache
// entry (same package + time_scale, hence the same LuCache) into a
// BatchGroup of up to `width` lanes. Each lane is a full System run on
// its own thread with a BatchLane installed as its thermal-step
// delegate: at every thermal interval the lane publishes its (rise,
// power, rounded dt) to the shared BatchCoordinator and blocks; when
// every active lane has arrived, the last arrival partitions the lanes
// by rounded dt (DVS can shorten one lane's interval but not its
// neighbours'), runs one BatchedThermalState panel step per dt group,
// and releases everyone. Lanes that finish early deregister, so mixed
// run lengths never deadlock the rendezvous.
//
// Bit-identity: panel-lane arithmetic equals the serial fused-BE
// kernel's operation sequence exactly (thermal/simd.h), the coordinator
// rounds dt with the same round_step_dt and fetches operators from the
// same LuCache, and the guard check mirrors the serial bound — so a
// batched RunResult is bit-identical to its serial twin, independent of
// batch width and of which runs share the group (simd_test asserts
// field-for-field equality). A lane whose candidate step trips the
// guard detaches and finishes on its own solver's guarded path, exactly
// as a serial run would.
#pragma once

#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/experiment.h"
#include "sim/system.h"
#include "thermal/batch.h"
#include "thermal/solver.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace hydra::sim {

/// Rendezvous point where lane threads meet at every thermal step.
class BatchCoordinator {
 public:
  /// `width` lanes over `nodes`-node models sharing `lu`. All lanes are
  /// considered active from construction; they leave() as they finish.
  BatchCoordinator(std::size_t nodes, std::size_t width,
                   std::shared_ptr<const thermal::LuCache> lu);

  /// Blocking: stage this lane's step and wait for the panel result.
  /// On success `out_rise` holds the candidate updated rise; the caller
  /// validates and commits it (or falls back) on its own thread. False
  /// means the leader step failed — the caller must fall back to its
  /// own solver.
  bool step_lane(std::size_t lane, const double* rise, const double* power,
                 double dt_rounded, double* out_rise);

  /// Deregister a lane (finished, detached, or unwinding). The barrier
  /// shrinks; if everyone else is already waiting, they are stepped.
  void leave();

 private:
  struct Arrival {
    std::size_t lane;
    const double* rise;
    const double* power;
    double dt;
    double* out;
    bool done = false;
    bool failed = false;
  };

  /// Leader step, called with mu_ held once arrivals == active lanes:
  /// one panel pass per distinct rounded dt among the arrivals.
  void process_locked() HYDRA_REQUIRES(mu_);

  util::Mutex mu_;
  util::CondVar cv_;
  std::size_t active_ HYDRA_GUARDED_BY(mu_);
  std::vector<Arrival*> arrivals_ HYDRA_GUARDED_BY(mu_);
  thermal::BatchedThermalState state_ HYDRA_GUARDED_BY(mu_);
  std::shared_ptr<const thermal::LuCache> lu_;  ///< immutable after ctor
};

/// Per-lane thermal-step delegate installed on a batched System.
class BatchLane : public ThermalStepDelegate {
 public:
  /// Does not take ownership of `coord`; on destruction the lane leaves
  /// the coordinator if still attached (covers normal completion and
  /// exception unwinds alike).
  BatchLane(BatchCoordinator* coord, std::size_t lane, std::size_t nodes);
  ~BatchLane() override;

  void step(thermal::TransientSolver& solver, const thermal::Vector& power,
            util::Seconds dt) override;

 private:
  void detach();

  BatchCoordinator* coord_;
  std::size_t lane_;
  bool attached_ = true;
  std::vector<double> rise_, out_, celsius_;
};

/// One point of a batch: the same ingredients submit_run hands a System.
struct BatchPointSpec {
  workload::WorkloadProfile profile;
  PolicyKind kind = PolicyKind::kNone;
  PolicyParams params{};
  SimConfig cfg{};
};

/// A group of lanes executed together exactly once. Sibling RunCache
/// jobs share one BatchGroup: whichever compute runs first executes the
/// whole group (std::call_once); the others block on it and then fetch
/// their own lane's result. Per-lane failures stay per-lane — an
/// exception in lane i is rethrown only from result(i).
class BatchGroup {
 public:
  explicit BatchGroup(std::vector<BatchPointSpec> lanes);

  std::size_t width() const { return lanes_.size(); }

  /// Lane `i`'s RunResult, running the group on first call.
  RunResult result(std::size_t i);

 private:
  void run_all();

  std::vector<BatchPointSpec> lanes_;
  std::once_flag once_;
  std::vector<RunResult> results_;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace hydra::sim
