// Co-simulation system: core <-> power <-> thermal <-> sensors <-> DTM.
//
// The loop follows the paper's methodology: the core runs in 10k-cycle
// accounting intervals whose average per-block power drives the RC
// thermal model; sensors are sampled at 10 kHz and feed the DTM policy;
// the policy's commands actuate fetch gating immediately, global clock
// gating in fixed quanta, and DVS through a transition state machine
// with 10 us switching time (stalling the pipeline in the "stall"
// variant). Temperatures are initialised to the workload's steady state
// and a warm-up period runs before statistics are gathered.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "arch/core.h"
#include "core/dtm_policy.h"
#include "core/guarded_policy.h"
#include "fault/fault_injector.h"
#include "floorplan/floorplan.h"
#include "obs/trace.h"
#include "power/power_model.h"
#include "power/voltage_freq.h"
#include "sensor/sensor.h"
#include "sim/model_cache.h"
#include "sim/sim_config.h"
#include "thermal/model_builder.h"
#include "thermal/solver.h"
#include "util/cancel.h"
#include "workload/synthetic_trace.h"

namespace hydra::sim {

/// Outcome of one measured run.
struct RunResult {
  std::string benchmark;
  std::string policy;

  double wall_seconds = 0.0;  ///< measured execution time (simulated)
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  double ipc = 0.0;

  double max_true_celsius = 0.0;        ///< hottest block, whole run
  double violation_fraction = 0.0;      ///< time with T_true > emergency
  double above_trigger_fraction = 0.0;  ///< time with T_true > trigger
  std::size_t dvs_transitions = 0;
  double mean_gate_fraction = 0.0;      ///< time-weighted fetch gating
  double mean_issue_gate_fraction = 0.0; ///< time-weighted issue gating
  double dvs_low_fraction = 0.0;        ///< time at a non-nominal DVS level
  double clock_gated_fraction = 0.0;    ///< time with the clock stopped
  double mean_power_watts = 0.0;
  std::string hottest_block;            ///< block with highest mean temp
  double hottest_mean_celsius = 0.0;
  /// Fraction of measured cycles spent in idle spans (clock-gated quanta
  /// or stalled DVS transitions) — the spans the bulk idle-skip fast path
  /// advances in O(1). Counted identically whether the fast path or the
  /// per-cycle reference loop executed them.
  double idle_skip_fraction = 0.0;
  /// Times the fused-BE numerical guard rejected a step (NaN/Inf or
  /// divergence) during this run and fell back to the reference LU
  /// scheme. Zero on every healthy run.
  std::uint64_t solver_guard_trips = 0;

  // --- Sensor-fault / supervision metrics (zero without a campaign) ---
  std::uint64_t faulted_samples = 0;     ///< sensor-samples corrupted
  std::uint64_t sensor_rejections = 0;   ///< readings substituted by guard
  std::uint64_t quarantine_entries = 0;  ///< healthy->quarantined edges
  double failsafe_fraction = 0.0;        ///< time in fail-safe clock gating
  double fault_window_fraction = 0.0;    ///< time with >=1 active fault
  /// Time with T_true above emergency while a fault was active, as a
  /// fraction of the whole measured window.
  double fault_violation_fraction = 0.0;

  // --- Many-core metrics (defaults = the single-core System's values) ---
  std::size_t cores = 1;                  ///< tiles on the simulated die
  std::uint64_t thread_migrations = 0;    ///< applied thread migrations
  /// Time-weighted mean of (hottest tile Tmax - coolest tile Tmax):
  /// thermal imbalance across the die. Zero on a single-core run.
  double core_temp_spread_celsius = 0.0;
  /// Time with any tile under a non-trivial power-budget arbiter floor.
  double budget_throttled_fraction = 0.0;

  bool thermally_safe() const { return violation_fraction == 0.0; }
};

/// Size of the next advance_until chunk: up to the next scheduled event,
/// never past the thermal-interval boundary, capped at 4096 cycles so
/// event-time comparisons stay responsive. Exposed as a free function so
/// the fastpath property test can fuzz the boundary guarantees directly.
/// The order of operations (clamp, then the two mins) is load-bearing:
/// the measured wall time accumulates as n / freq per chunk, so chunk
/// geometry must not change across code paths or results drift.
inline long long chunk_cycles(double next_event_t, double t, double freq_hz,
                              long long interval_cycles_remaining) {
  long long n =
      static_cast<long long>(std::ceil((next_event_t - t) * freq_hz));
  if (n < 1) n = 1;
  n = std::min(n, interval_cycles_remaining);
  return std::min<long long>(n, 4096);
}

/// Periodic observation hook for examples/diagnostics (one call per
/// thermal interval).
struct StepTrace {
  double time_seconds = 0.0;
  double max_true_celsius = 0.0;
  util::Volts voltage{};
  util::Hertz frequency{};
  double gate_fraction = 0.0;
  bool clock_gated = false;
  std::uint64_t committed = 0;
  double power_watts = 0.0;
};

/// Seam for the lockstep batched-sweep driver (sim/batch_sweep.h): when
/// installed, System hands each thermal-interval solver step to the
/// delegate instead of calling TransientSolver::step directly. The
/// delegate must leave the solver holding the post-step temperatures;
/// everything else about the interval (power computation before, event
/// handling after) is unchanged, so a delegate that reproduces the
/// solver's arithmetic bit for bit yields a bit-identical RunResult.
class ThermalStepDelegate {
 public:
  virtual ~ThermalStepDelegate() = default;
  virtual void step(thermal::TransientSolver& solver,
                    const thermal::Vector& power, util::Seconds dt) = 0;
};

class System {
 public:
  /// `policy` may be null (baseline: no DTM). The system owns the policy.
  System(const workload::WorkloadProfile& profile, const SimConfig& cfg,
         std::unique_ptr<core::DtmPolicy> policy);

  /// Steady-state init + warm-up + measured run. `cancel`, when given,
  /// is polled at chunk granularity: a requested stop (explicit cancel
  /// or expired deadline) unwinds with the matching typed exception
  /// (util::CancelledError / util::TimeoutError), leaving the System in
  /// an unspecified but destructible state. Deterministic runs pass
  /// nullptr and pay a single predicted-false branch per chunk.
  RunResult run(const util::CancelToken* cancel = nullptr);

  /// Test seam: poison the next fused-BE step (see
  /// TransientSolver::inject_fused_fault_for_test). Lets tests assert
  /// the guard event is visible end-to-end in RunResult and --metrics.
  void inject_solver_fault_for_test() {
    solver_.inject_fused_fault_for_test();
  }

  /// Install an observer called once per thermal interval during the
  /// measured run.
  void set_trace_callback(std::function<void(const StepTrace&)> cb) {
    trace_cb_ = std::move(cb);
  }

  /// Route thermal-interval solver steps through `delegate` (nullptr
  /// restores the direct path). Not owned; must outlive run().
  void set_thermal_step_delegate(ThermalStepDelegate* delegate) {
    step_delegate_ = delegate;
  }

  const power::DvsLadder& ladder() const { return ladder_; }
  const floorplan::Floorplan& floorplan() const { return fp_; }

 private:
  void initialize_thermal_state();
  void warmup();
  /// Advance until `target_committed` instructions have committed. With
  /// `run_out_interval`, additionally continue to the next thermal
  /// interval boundary (used after warm-up: stepping the solver with a
  /// partial-interval dt would factorise a fresh LU nearly every run).
  void advance_until(std::uint64_t target_committed, bool measure,
                     bool run_out_interval = false);
  void thermal_and_power_step(bool measure);
  void sensor_event(bool measure);
  void apply_dvs_level(std::size_t level);
  /// Earliest pending scheduled event (sensor tick, DVS-transition end,
  /// clock-gate quantum boundary). Invariant between events, so
  /// advance_until recomputes it only after one fires.
  double next_event_time() const;

  // Configuration-derived state. Floorplan, thermal model and LU
  // factorisations are shared read-only across all Systems with the same
  // (package, time_scale) via the process-wide ModelCache.
  SimConfig cfg_;
  std::shared_ptr<const SharedModel> shared_;
  const floorplan::Floorplan& fp_;
  const thermal::ThermalModel& model_;
  power::VoltageFrequencyCurve vf_curve_;
  power::DvsLadder ladder_;
  power::PowerModel power_;
  workload::SyntheticTrace trace_;
  arch::Core core_;
  sensor::SensorBank sensors_;
  std::unique_ptr<core::DtmPolicy> policy_;
  std::unique_ptr<fault::FaultInjector> injector_;
  /// Non-owning view of policy_ when it is a GuardedPolicy (for stats).
  core::GuardedPolicy* guard_ = nullptr;
  thermal::TransientSolver solver_;

  // Scaled event periods [s].
  double sensor_period_s_ = 0.0;
  double switch_time_s_ = 0.0;
  double gate_quantum_ = 0.0;

  // Dynamic state.
  double t_ = 0.0;             ///< simulation time [s]
  double next_sensor_t_ = 0.0;
  double freq_hz_ = 0.0;          ///< clock at the applied DVS level [Hz]
  std::size_t dvs_level_ = 0;  ///< applied DVS level
  std::size_t pending_level_ = 0;
  bool transition_active_ = false;
  double transition_end_t_ = 0.0;
  bool clock_gate_requested_ = false;
  bool clock_gate_on_ = false;  ///< inside a gated quantum
  double quantum_end_t_ = 0.0;
  double gate_fraction_ = 0.0;
  double issue_gate_fraction_ = 0.0;
  long long interval_cycles_ = 0;
  double interval_wall_ = 0.0;

  // Measurement accumulators.
  struct Accum {
    double wall = 0.0;
    double violation = 0.0;
    double above_trigger = 0.0;
    double gate_weighted = 0.0;
    double issue_gate_weighted = 0.0;
    double dvs_low = 0.0;
    double clock_gated = 0.0;
    double failsafe = 0.0;
    double fault_window = 0.0;
    double fault_violation = 0.0;
    double energy_j = 0.0;
    double max_true = 0.0;
    std::vector<double> block_temp_weighted;
    std::size_t transitions = 0;
    std::uint64_t start_committed = 0;
    std::uint64_t start_cycles = 0;
    std::uint64_t idle_cycles = 0;  ///< cycles advanced as idle spans

    /// Zero in place, keeping block_temp_weighted's storage (run() may
    /// be called repeatedly and must not allocate after the first call).
    void reset() {
      wall = violation = above_trigger = gate_weighted = 0.0;
      issue_gate_weighted = dvs_low = clock_gated = failsafe = 0.0;
      fault_window = fault_violation = energy_j = max_true = 0.0;
      for (double& v : block_temp_weighted) v = 0.0;
      transitions = 0;
      start_committed = 0;
      start_cycles = 0;
      idle_cycles = 0;
    }
  } acc_;

  std::function<void(const StepTrace&)> trace_cb_;
  ThermalStepDelegate* step_delegate_ = nullptr;
  std::string benchmark_name_;
  /// Cooperative stop signal for the current run() (null when absent).
  const util::CancelToken* cancel_ = nullptr;
  std::uint64_t probe_auto_instructions_ = 300'000;

  // Preallocated scratch so the per-step hot path never allocates.
  std::vector<double> watts_;       ///< per-block power
  thermal::Vector expanded_;        ///< per-node power
  core::ThermalSample sample_;      ///< reused sensor-event sample
  thermal::Vector init_temps_;      ///< steady-state fixed-point scratch

  // Observability (all dormant unless tracing/metrics are enabled).
  std::uint32_t sim_lane_ = obs::SimLaneScope::kNoLane;
  bool policy_engaged_ = false;   ///< last reported actuation state
  bool in_emergency_ = false;     ///< last reported T > emergency state
};

}  // namespace hydra::sim
