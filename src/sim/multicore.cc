#include "sim/multicore.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "floorplan/ev7.h"
#include "floorplan/multicore.h"
#include "obs/obs.h"

namespace hydra::sim {
namespace {

constexpr double kEps = 1e-12;
constexpr double kSimUs = 1e6;
constexpr std::size_t kNoThread = static_cast<std::size_t>(-1);

inline bool sim_trace_on(const obs::Tracer& tracer, std::uint32_t lane) {
  return tracer.enabled() && lane != obs::SimLaneScope::kNoLane;
}

}  // namespace

/// All per-tile state. Everything here is tile-local: during the
/// parallel phase a tile is touched by exactly one worker, and the
/// barrier phase runs single-threaded, so no field needs atomics.
struct MulticoreSystem::Tile {
  Tile(const arch::CoreConfig& core_cfg, arch::TraceSource& trace,
       const sensor::SensorConfig& sensor_cfg,
       std::unique_ptr<core::DtmPolicy> pol)
      : core(core_cfg, trace),
        sensors(floorplan::kNumBlocks, sensor_cfg),
        policy(std::move(pol)),
        guard(dynamic_cast<core::GuardedPolicy*>(policy.get())) {
    watts.resize(floorplan::kNumBlocks);
    temps_slice.resize(floorplan::kNumBlocks);
    sample.sensed_celsius.reserve(floorplan::kNumBlocks);
  }

  arch::Core core;
  sensor::SensorBank sensors;
  std::unique_ptr<core::DtmPolicy> policy;
  core::GuardedPolicy* guard = nullptr;

  std::size_t index = 0;
  std::size_t thread = kNoThread;  ///< bound software thread (kNoThread=idle)

  // Tile-local event machinery (mirrors the single-core System's).
  double t = 0.0;
  double next_sensor_t = 0.0;
  double freq_hz = 0.0;
  std::size_t dvs_level = 0;
  std::size_t pending_level = 0;
  bool transition_active = false;
  double transition_end_t = 0.0;
  bool clock_gate_requested = false;
  bool clock_gate_on = false;
  double quantum_end_t = 0.0;
  double gate_fraction = 0.0;
  double issue_gate_fraction = 0.0;
  std::size_t requested_dvs = 0;   ///< last composed level (global-DVS mode)
  std::uint64_t stall_cycles = 0;  ///< pending migration context-switch stall
  double pending_flush_j = 0.0;    ///< migration flush energy, next interval

  // Scratch reused every interval (the tile phase never allocates).
  std::vector<double> watts;        ///< interval-average block power [W]
  std::vector<double> temps_slice;  ///< frozen tile temperatures [deg C]
  core::ThermalSample sample;
  arch::ActivityFrame probe_frame;  ///< steady-state init activity

  // Measurement accumulators. The doubles accumulate in the tile phase;
  // max_true and the migration counters are barrier-phase only.
  double gate_weighted = 0.0;
  double issue_gate_weighted = 0.0;
  double dvs_low = 0.0;
  double clock_gated = 0.0;
  double occupied_wall = 0.0;
  double failsafe_wall = 0.0;
  double max_true = 0.0;
  std::uint64_t idle_cycles = 0;
  std::size_t transitions = 0;
  std::uint64_t migrations_in = 0;
  std::uint64_t migrations_out = 0;
  std::uint64_t start_committed = 0;
  std::uint64_t start_cycles = 0;
  std::uint32_t lane = obs::SimLaneScope::kNoLane;

  void reset_measure() {
    gate_weighted = issue_gate_weighted = dvs_low = clock_gated = 0.0;
    occupied_wall = failsafe_wall = max_true = 0.0;
    idle_cycles = 0;
    transitions = 0;
    migrations_in = migrations_out = 0;
    start_committed = core.committed();
    start_cycles = core.cycles();
  }
};

MulticoreSystem::MulticoreSystem(const workload::WorkloadProfile& profile,
                                 const SimConfig& cfg, PolicyFactory factory,
                                 std::string policy_name)
    : cfg_(cfg),
      shared_(ModelCache::global().get(cfg)),
      model_(shared_->model),
      unit_fp_(floorplan::ev7_floorplan()),
      vf_curve_(cfg.v_nominal, cfg.f_nominal, cfg.v_threshold, cfg.vf_alpha),
      ladder_(vf_curve_, cfg.dvs_steps, cfg.v_low_fraction),
      power_(unit_fp_, power::EnergyModel()),
      solver_(model_.network, cfg.package.ambient,
              cfg.fused_thermal ? thermal::Scheme::kFusedBE
                                : thermal::Scheme::kBackwardEuler,
              shared_->lu_cache),
      migration_([&cfg] {
        // Migration timings are paper-time, compressed like every other
        // period; the engagement threshold is the DTM trigger.
        core::MigrationConfig m = cfg.multicore.migration_policy;
        m.interval = util::Seconds(m.interval.value() / cfg.time_scale);
        m.trigger = cfg.thresholds.trigger;
        return m;
      }()),
      arbiter_(cfg.multicore.arbiter, cfg.multicore.cores, ladder_.size()),
      benchmark_name_(profile.name),
      policy_name_(std::move(policy_name)) {
  const std::size_t cores = cfg_.multicore.cores;
  if (cores == 0) {
    throw std::invalid_argument("multicore.cores must be >= 1");
  }
  std::size_t n_threads = cfg_.multicore.workload_threads;
  if (n_threads == 0) n_threads = cores;
  if (n_threads > cores) {
    throw std::invalid_argument("more workload threads than cores");
  }
  if (!cfg_.fault_campaign.empty() && cores > 1) {
    throw std::invalid_argument(
        "sensor fault campaigns are single-core only");
  }

  // One seeded trace per software thread: same statistical profile,
  // decorrelated streams (different phase alignment per tile is what
  // makes migration/arbitration interesting).
  threads_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workload::WorkloadProfile p = profile;
    p.seed = profile.seed + i;
    threads_.push_back(std::make_unique<workload::SyntheticTrace>(p));
  }

  tiles_.reserve(cores);
  for (std::size_t t = 0; t < cores; ++t) {
    sensor::SensorConfig scfg = cfg_.sensor;
    scfg.seed = cfg_.sensor.seed + t;  // independent per-tile noise
    // Idle tiles get a trace bound too (Core requires one) but never
    // fetch from it: unoccupied tiles only ever advance via idle cycles.
    workload::SyntheticTrace& trace =
        t < n_threads ? *threads_[t] : *threads_[0];
    auto tile = std::make_unique<Tile>(
        cfg_.core, trace, scfg, factory ? factory() : nullptr);
    tile->index = t;
    if (t < n_threads) tile->thread = t;
    tile->freq_hz = ladder_.point(0).frequency.value();
    tiles_.push_back(std::move(tile));
  }
  if (policy_name_.empty()) {
    policy_name_ = tiles_[0]->policy
                       ? std::string(tiles_[0]->policy->name())
                       : "baseline";
  }

  // Worker pool for the per-tile phase. 1 = strictly serial; 0 = the
  // process pool (safe from inside an engine worker: for_each_index's
  // caller participates, so progress never depends on free workers).
  const std::size_t width = cfg_.multicore.threads;
  if (width == 0) {
    pool_ = &util::ThreadPool::global();
  } else if (width > 1) {
    owned_pool_ = std::make_unique<util::ThreadPool>(width);
    pool_ = owned_pool_.get();
  }

  sensor_period_s_ =
      1.0 / (cfg_.sensor.sample_rate.value() * cfg_.time_scale);
  switch_time_s_ = cfg_.dvs_switch_time.value() / cfg_.time_scale;
  gate_quantum_ = cfg_.clock_gate_quantum.value() / cfg_.time_scale;
  interval_dt_ = static_cast<double>(cfg_.thermal_interval_cycles) /
                 cfg_.f_nominal.value();
  power_scale_ = 1.0 / static_cast<double>(cores);

  die_watts_.resize(cores * floorplan::kNumBlocks);
  expanded_.resize(model_.network.size());
  use_sparse_ = thermal::use_sparse_step(model_.network.size());
  acc_.block_temp_weighted.assign(cores * floorplan::kNumBlocks, 0.0);
  tile_states_.resize(cores);
  tile_power_.assign(cores, util::Watts{0.0});
  tile_occupied_.assign(cores, false);

  probe_auto_instructions_ = 0;
  for (const workload::PhaseSpec& ph : profile.phases) {
    probe_auto_instructions_ += ph.length_instructions;
  }
  if (probe_auto_instructions_ == 0) probe_auto_instructions_ = 300'000;
}

MulticoreSystem::~MulticoreSystem() = default;

std::uint64_t MulticoreSystem::total_committed() const {
  std::uint64_t total = 0;
  for (const auto& tile : tiles_) total += tile->core.committed();
  return total;
}

void MulticoreSystem::initialize_thermal_state() {
  // Probe every occupied tile's representative activity (in parallel —
  // probing is tile-local), then solve the die-level power <->
  // temperature fixed point exactly as the single-core System does.
  std::uint64_t probe = cfg_.activity_probe_instructions;
  if (probe == 0) {
    probe = std::min<std::uint64_t>(probe_auto_instructions_, 2'000'000);
  }
  const auto probe_tile = [this, probe](std::size_t i) {
    Tile& tile = *tiles_[i];
    if (tile.thread == kNoThread) {
      tile.probe_frame = arch::ActivityFrame{};
      return;
    }
    const std::uint64_t start = tile.core.committed();
    while (tile.core.committed() < start + probe / 3) tile.core.cycle();
    tile.core.take_interval_activity();
    while (tile.core.committed() < start + probe / 3 + probe) {
      tile.core.cycle();
    }
    tile.probe_frame = tile.core.take_interval_activity();
  };
  // The probe is by far the most expensive part of (re)starting a run —
  // ~probe instructions of detailed core simulation per occupied tile —
  // and its frames are a statistical fingerprint of the bound profiles,
  // not of any evolving state. A warm system reuses the first run's
  // frames; only the fresh-system first run pays.
  if (!probe_cached_) {
    if (pool_ == nullptr) {
      for (std::size_t i = 0; i < tiles_.size(); ++i) probe_tile(i);
    } else {
      pool_->for_each_index(tiles_.size(), probe_tile);
    }
    probe_cached_ = true;
  }

  const util::Celsius ambient = cfg_.package.ambient;
  init_temps_.assign(model_.network.size(), ambient.value() + 30.0);
  const auto& nominal = ladder_.point(0);
  const thermal::LuFactorization* g_lu = nullptr;
  const thermal::SparseCholesky* g_chol = nullptr;
  if (use_sparse_) {
    g_chol = &shared_->lu_cache->steady_sparse();
  } else {
    g_lu = &shared_->lu_cache->steady();
  }
  for (int iter = 0; iter < 10; ++iter) {
    for (std::size_t t = 0; t < tiles_.size(); ++t) {
      Tile& tile = *tiles_[t];
      const std::size_t base = t * floorplan::kNumBlocks;
      for (std::size_t b = 0; b < floorplan::kNumBlocks; ++b) {
        tile.temps_slice[b] = init_temps_[base + b];
      }
      power_.block_power_into(tile.probe_frame, nominal.voltage,
                              nominal.frequency, tile.temps_slice,
                              tile.watts);
      for (std::size_t b = 0; b < floorplan::kNumBlocks; ++b) {
        die_watts_[base + b] = tile.watts[b] * power_scale_;
      }
    }
    model_.expand_power_into(die_watts_, expanded_);
    if (use_sparse_) {
      thermal::steady_state_into(*g_chol, expanded_, ambient, init_temps_,
                                 steady_work_);
    } else {
      thermal::steady_state_into(*g_lu, expanded_, ambient, init_temps_);
    }
  }
  solver_.set_temperatures(init_temps_);

  t_ = 0.0;
  global_dvs_floor_ = 0;
  for (auto& tile : tiles_) {
    tile->t = 0.0;
    tile->next_sensor_t = sensor_period_s_;
  }
}

void MulticoreSystem::apply_tile_dvs(Tile& tile, std::size_t level) {
  tile.dvs_level = level;
  tile.freq_hz = ladder_.point(level).frequency.value();
  tile.core.set_frequency(tile.freq_hz);
}

double MulticoreSystem::tile_next_event(const Tile& tile) const {
  double next_event = tile.next_sensor_t;
  if (tile.transition_active) {
    next_event = std::min(next_event, tile.transition_end_t);
  }
  if (tile.clock_gate_on || tile.clock_gate_requested) {
    next_event = std::min(next_event, tile.quantum_end_t);
  }
  return next_event;
}

void MulticoreSystem::tile_sensor_event(Tile& tile, bool measure) {
  core::DtmCommand cmd{};
  if (tile.policy) {
    tile.sensors.sample_into(tile.temps_slice, tile.sample.sensed_celsius);
    tile.sample.max_sensed = util::Celsius(
        *std::max_element(tile.sample.sensed_celsius.begin(),
                          tile.sample.sensed_celsius.end()));
    tile.sample.time = util::Seconds(tile.t);
    cmd = tile.policy->update(tile.sample);
  }

  // Compose the local command with the die-level floors from the last
  // barrier: the more aggressive actuation wins. In global-DVS mode the
  // die additionally never runs below the maximum level any tile
  // requested as of that barrier.
  double gate = cmd.fetch_gate_fraction;
  std::size_t level = cmd.dvs_level;
  if (arbiter_.enabled()) {
    const core::ArbiterCommand& arb = arbiter_.commands()[tile.index];
    gate = std::max(gate, arb.fetch_gate_floor);
    level = std::max(level, arb.dvs_floor);
  }
  tile.requested_dvs = level;
  if (!cfg_.multicore.per_core_dvs) {
    level = std::max(level, global_dvs_floor_);
  }

  tile.gate_fraction = gate;
  tile.core.set_fetch_gate_fraction(gate);
  tile.issue_gate_fraction = cmd.issue_gate_fraction;
  tile.core.set_issue_gate_fraction(cmd.issue_gate_fraction);

  tile.clock_gate_requested = cmd.clock_gate;
  if (tile.clock_gate_requested && !tile.clock_gate_on) {
    tile.clock_gate_on = true;
    tile.quantum_end_t = tile.t + gate_quantum_;
  } else if (!tile.clock_gate_requested) {
    tile.clock_gate_on = false;
  }

  if (!tile.transition_active && level != tile.dvs_level) {
    if (level >= ladder_.size()) {
      throw std::out_of_range("policy requested DVS level beyond ladder");
    }
    tile.pending_level = level;
    tile.transition_active = true;
    tile.transition_end_t = tile.t + switch_time_s_;
    if (measure) ++tile.transitions;
  }
  tile.next_sensor_t += sensor_period_s_;
}

void MulticoreSystem::step_tile(std::size_t t, double t_end, bool measure) {
  Tile& tile = *tiles_[t];
  // Freeze this tile's temperatures for the interval: the solver only
  // advances at barriers, so this is the same fidelity as the
  // single-core System (which also samples interval-boundary state).
  const thermal::Vector& temps = solver_.temperatures();
  const std::size_t base = t * floorplan::kNumBlocks;
  for (std::size_t b = 0; b < floorplan::kNumBlocks; ++b) {
    tile.temps_slice[b] = temps[base + b];
  }

  while (tile.t < t_end - kEps) {
    const double bound = std::min(tile_next_event(tile), t_end);
    long long n =
        static_cast<long long>(std::ceil((bound - tile.t) * tile.freq_hz));
    if (n < 1) n = 1;
    n = std::min<long long>(n, 4096);

    const bool occupied = tile.thread != kNoThread;
    const bool stalled = tile.transition_active && cfg_.dvs_stall;
    if (tile.stall_cycles > 0) {
      // Migration context switch: both endpoints burn clocked-idle
      // cycles (the pipeline drains / refills; the clock tree runs).
      const long long m = std::min<long long>(
          n, static_cast<long long>(tile.stall_cycles));
      tile.core.idle_cycles(static_cast<std::uint64_t>(m), true);
      tile.stall_cycles -= static_cast<std::uint64_t>(m);
      n = m;
      if (measure) tile.idle_cycles += static_cast<std::uint64_t>(m);
    } else if (tile.clock_gate_on || stalled || !occupied) {
      // An unoccupied tile is clock-gated silicon: no thread, no clock
      // tree — only leakage (which the power model charges from its
      // temperatures regardless of activity).
      const bool clocked = !tile.clock_gate_on && occupied;
      if (cfg_.bulk_idle_skip) {
        tile.core.idle_cycles(static_cast<std::uint64_t>(n), clocked);
      } else {
        for (long long i = 0; i < n; ++i) tile.core.idle_cycle(clocked);
      }
      if (measure) tile.idle_cycles += static_cast<std::uint64_t>(n);
    } else {
      for (long long i = 0; i < n; ++i) tile.core.cycle();
    }

    const double dt = static_cast<double>(n) / tile.freq_hz;
    tile.t += dt;
    if (measure) {
      tile.gate_weighted += tile.gate_fraction * dt;
      tile.issue_gate_weighted += tile.issue_gate_fraction * dt;
      if (tile.dvs_level != 0) tile.dvs_low += dt;
      if (tile.clock_gate_on) tile.clock_gated += dt;
      if (occupied) tile.occupied_wall += dt;
      if (tile.guard && tile.guard->failsafe_engaged()) {
        tile.failsafe_wall += dt;
      }
    }

    if (tile.transition_active && tile.t >= tile.transition_end_t - kEps) {
      tile.transition_active = false;
      apply_tile_dvs(tile, tile.pending_level);
    }
    if ((tile.clock_gate_on || tile.clock_gate_requested) &&
        tile.t >= tile.quantum_end_t - kEps) {
      tile.clock_gate_on = !tile.clock_gate_on && tile.clock_gate_requested;
      tile.quantum_end_t = tile.t + gate_quantum_;
    }
    if (tile.t >= tile.next_sensor_t - kEps) {
      tile_sensor_event(tile, measure);
    }
  }

  // Interval-average power at the tile's current operating point; tile
  // watts scale by 1/cores (the tile is a 1/cores shrink of the unit
  // core). Any migration flush energy is spread across the tile's
  // blocks over this interval.
  const arch::ActivityFrame frame = tile.core.take_interval_activity();
  const auto& op = ladder_.point(tile.dvs_level);
  power_.block_power_into(frame, op.voltage, op.frequency, tile.temps_slice,
                          tile.watts);
  for (double& w : tile.watts) w *= power_scale_;
  if (tile.pending_flush_j > 0.0) {
    const double w_flush =
        tile.pending_flush_j /
        (interval_dt_ * static_cast<double>(floorplan::kNumBlocks));
    for (double& w : tile.watts) w += w_flush;
    tile.pending_flush_j = 0.0;
  }
}

void MulticoreSystem::apply_migration(const core::MigrationDecision& d) {
  Tile& src = *tiles_[d.from];
  Tile& dst = *tiles_[d.to];
  // The source squashes its in-flight work; the destination rebinds the
  // thread's instruction stream. Both pay the context-switch stall; the
  // source additionally pays the state-flush energy. The destination's
  // cold caches/predictor are the natural remainder of the cost.
  src.core.flush_pipeline();
  dst.core.set_trace(*threads_[src.thread]);
  dst.thread = src.thread;
  src.thread = kNoThread;
  const std::uint64_t cost = migration_.config().cost_cycles;
  src.stall_cycles += cost;
  dst.stall_cycles += cost;
  src.pending_flush_j += migration_.config().flush_energy.value();
}

void MulticoreSystem::advance_intervals(std::uint64_t target_committed,
                                        bool measure) {
  const std::size_t cores = tiles_.size();
  obs::Tracer& tracer = obs::tracer();
  while (total_committed() < target_committed) {
    if (cancel_ != nullptr && cancel_->stop_requested()) {
      cancel_->throw_if_stopped(benchmark_name_);
    }
    const double t_end = t_ + interval_dt_;
    // Parallel phase: every tile advances to the barrier independently.
    if (pool_ == nullptr) {
      for (std::size_t i = 0; i < cores; ++i) step_tile(i, t_end, measure);
    } else {
      pool_->for_each_index(
          cores, [this, t_end, measure](std::size_t i) {
            step_tile(i, t_end, measure);
          });
    }

    // Barrier phase (single-threaded, ascending tile order throughout —
    // every floating-point reduction below is order-fixed).
    for (std::size_t t = 0; t < cores; ++t) {
      const Tile& tile = *tiles_[t];
      const std::size_t base = t * floorplan::kNumBlocks;
      for (std::size_t b = 0; b < floorplan::kNumBlocks; ++b) {
        die_watts_[base + b] = tile.watts[b];
      }
    }
    model_.expand_power_into(die_watts_, expanded_);
    solver_.step(expanded_, util::Seconds(interval_dt_));
    t_ = t_end;

    const thermal::Vector& temps = solver_.temperatures();
    double die_max = temps[0];
    double tile_min_max = 0.0;
    for (std::size_t t = 0; t < cores; ++t) {
      Tile& tile = *tiles_[t];
      const std::size_t base = t * floorplan::kNumBlocks;
      double tmax = temps[base];
      for (std::size_t b = 1; b < floorplan::kNumBlocks; ++b) {
        tmax = std::max(tmax, temps[base + b]);
      }
      tile_states_[t].tmax = util::Celsius(tmax);
      tile_states_[t].occupied = tile.thread != kNoThread;
      tile_occupied_[t] = tile_states_[t].occupied;
      die_max = std::max(die_max, tmax);
      tile_min_max = t == 0 ? tmax : std::min(tile_min_max, tmax);
      if (measure) tile.max_true = std::max(tile.max_true, tmax);
      if (sim_trace_on(tracer, tile.lane)) {
        tracer.counter(tile.lane, obs::TimeDomain::kSim, "Tmax_celsius",
                       t_ * kSimUs, tmax);
      }
    }
    // Now that the die temperature moved, fill in the after-temperature
    // of migrations applied at earlier barriers.
    for (; migrations_pending_after_ < migration_events_.size();
         ++migrations_pending_after_) {
      migration_events_[migrations_pending_after_].tmax_after_celsius =
          die_max;
    }

    double total_watts = 0.0;
    for (double w : die_watts_) total_watts += w;

    if (measure) {
      const double dt = interval_dt_;
      acc_.wall += dt;
      if (die_max > cfg_.thresholds.emergency.value()) acc_.violation += dt;
      if (die_max > cfg_.thresholds.trigger.value()) {
        acc_.above_trigger += dt;
      }
      acc_.energy_j += total_watts * dt;
      acc_.max_true = std::max(acc_.max_true, die_max);
      acc_.spread_weighted += (die_max - tile_min_max) * dt;
      for (std::size_t i = 0; i < die_watts_.size(); ++i) {
        acc_.block_temp_weighted[i] += temps[i] * dt;
      }
    }

    // Die-level policies run on the fresh temperatures; their outputs
    // are frozen until the next barrier.
    if (cfg_.multicore.migration) {
      const core::MigrationDecision d =
          migration_.update(tile_states_, util::Seconds(t_));
      if (d.migrate) {
        apply_migration(d);
        if (measure) {
          ++tiles_[d.from]->migrations_out;
          ++tiles_[d.to]->migrations_in;
          MigrationEvent ev;
          ev.time_seconds = t_;
          ev.from = d.from;
          ev.to = d.to;
          ev.tmax_before_celsius = die_max;
          ev.tmax_after_celsius = die_max;  // refined at the next barrier
          migration_events_.push_back(ev);
        }
        static const obs::Counter migration_counter =
            obs::metrics().counter("multicore.migrations");
        migration_counter.add();
        if (tracer.enabled() && die_lane_ != obs::SimLaneScope::kNoLane) {
          tracer.instant(die_lane_, obs::TimeDomain::kSim, "multicore",
                         "thread_migration", t_ * kSimUs, "from",
                         static_cast<double>(d.from), "to",
                         static_cast<double>(d.to));
        }
      }
    }
    if (arbiter_.enabled()) {
      for (std::size_t t = 0; t < cores; ++t) {
        double p = 0.0;
        for (double w : tiles_[t]->watts) p += w;
        tile_power_[t] = util::Watts(p);
      }
      arbiter_.update(tile_power_, tile_occupied_);
      if (measure) {
        bool throttled = false;
        for (const core::ArbiterCommand& c : arbiter_.commands()) {
          if (c.fetch_gate_floor > 0.0 || c.dvs_floor > 0) throttled = true;
        }
        if (throttled) acc_.throttled += interval_dt_;
      }
    }
    if (!cfg_.multicore.per_core_dvs) {
      std::size_t floor = 0;
      for (const auto& tile : tiles_) {
        floor = std::max(floor, tile->requested_dvs);
      }
      global_dvs_floor_ = floor;
    }
  }
}

MulticoreResult MulticoreSystem::run(const util::CancelToken* cancel) {
  cancel_ = cancel;
  const std::uint64_t guard_trips_before = solver_.fused_guard_trips();
  obs::Tracer& tracer = obs::tracer();
  if (tracer.enabled()) {
    die_lane_ = tracer.new_lane(
        benchmark_name_ + "/" + policy_name_ + "/die",
        obs::TimeDomain::kSim);
    for (auto& tile : tiles_) {
      tile->lane = tracer.new_lane(
          benchmark_name_ + "/" + policy_name_ + "/c" +
              std::to_string(tile->index),
          obs::TimeDomain::kSim);
    }
  }
  const obs::SimLaneScope sim_scope(die_lane_);

  {
    const obs::ScopedSpan span(tracer, "system", "init_thermal",
                               benchmark_name_);
    initialize_thermal_state();
  }
  {
    const obs::ScopedSpan span(tracer, "system", "warmup", benchmark_name_);
    advance_intervals(total_committed() + cfg_.warmup_instructions, false);
  }

  acc_.reset();
  migration_events_.clear();
  migrations_pending_after_ = 0;
  migration_.reset();
  arbiter_.reset();
  acc_.start_committed = total_committed();
  std::uint64_t start_cycles = 0;
  for (auto& tile : tiles_) {
    tile->reset_measure();
    start_cycles += tile->start_cycles;
  }
  acc_.start_cycles = start_cycles;

  {
    const obs::ScopedSpan span(tracer, "system", "measure", benchmark_name_);
    advance_intervals(acc_.start_committed + cfg_.run_instructions, true);
  }

  const std::size_t cores = tiles_.size();
  MulticoreResult out;
  RunResult& r = out.aggregate;
  r.benchmark = benchmark_name_;
  r.policy = policy_name_;
  r.cores = cores;
  r.wall_seconds = acc_.wall;
  r.instructions = total_committed() - acc_.start_committed;
  std::uint64_t cycles = 0;
  std::uint64_t idle = 0;
  for (const auto& tile : tiles_) {
    cycles += tile->core.cycles();
    idle += tile->idle_cycles;
  }
  r.cycles = cycles - acc_.start_cycles;
  r.ipc = r.cycles == 0 ? 0.0
                        : static_cast<double>(r.instructions) /
                              static_cast<double>(r.cycles);
  r.max_true_celsius = acc_.max_true;
  const double wall = acc_.wall;
  const double tile_wall = wall * static_cast<double>(cores);
  if (wall > 0.0) {
    r.violation_fraction = acc_.violation / wall;
    r.above_trigger_fraction = acc_.above_trigger / wall;
    r.mean_power_watts = acc_.energy_j / wall;
    r.core_temp_spread_celsius = acc_.spread_weighted / wall;
    r.budget_throttled_fraction = acc_.throttled / wall;
    double gate_w = 0.0, issue_w = 0.0, dvs_w = 0.0, cg_w = 0.0;
    double fs_w = 0.0;
    for (const auto& tile : tiles_) {
      gate_w += tile->gate_weighted;
      issue_w += tile->issue_gate_weighted;
      dvs_w += tile->dvs_low;
      cg_w += tile->clock_gated;
      fs_w += tile->failsafe_wall;
    }
    // Per-tile fractions average over ALL tiles (idle tiles dilute —
    // they really are un-throttled silicon on this die).
    r.mean_gate_fraction = gate_w / tile_wall;
    r.mean_issue_gate_fraction = issue_w / tile_wall;
    r.dvs_low_fraction = dvs_w / tile_wall;
    r.clock_gated_fraction = cg_w / tile_wall;
    r.failsafe_fraction = fs_w / tile_wall;
    std::size_t hottest = 0;
    for (std::size_t i = 1; i < acc_.block_temp_weighted.size(); ++i) {
      if (acc_.block_temp_weighted[i] > acc_.block_temp_weighted[hottest]) {
        hottest = i;
      }
    }
    r.hottest_block = std::string(shared_->fp.block(hottest).name);
    r.hottest_mean_celsius = acc_.block_temp_weighted[hottest] / wall;
  }
  if (r.cycles > 0) {
    r.idle_skip_fraction =
        static_cast<double>(idle) / static_cast<double>(r.cycles);
  }
  std::size_t transitions = 0;
  for (const auto& tile : tiles_) transitions += tile->transitions;
  r.dvs_transitions = transitions;
  r.thread_migrations = migration_events_.size();
  r.solver_guard_trips = solver_.fused_guard_trips() - guard_trips_before;
  for (const auto& tile : tiles_) {
    if (tile->guard) {
      r.sensor_rejections += tile->guard->stats().rejected_readings;
      r.quarantine_entries += tile->guard->stats().quarantine_entries;
    }
  }

  out.per_core.reserve(cores);
  for (const auto& tile : tiles_) {
    CoreRunStats s;
    s.tile = tile->index;
    s.instructions = tile->core.committed() - tile->start_committed;
    s.cycles = tile->core.cycles() - tile->start_cycles;
    s.ipc = s.cycles == 0 ? 0.0
                          : static_cast<double>(s.instructions) /
                                static_cast<double>(s.cycles);
    s.max_true_celsius = tile->max_true;
    if (wall > 0.0) {
      s.mean_gate_fraction = tile->gate_weighted / wall;
      s.dvs_low_fraction = tile->dvs_low / wall;
      s.occupied_fraction = tile->occupied_wall / wall;
    }
    s.dvs_transitions = tile->transitions;
    s.migrations_in = tile->migrations_in;
    s.migrations_out = tile->migrations_out;
    out.per_core.push_back(s);
  }
  out.migrations = migration_events_;
  cancel_ = nullptr;
  return out;
}

}  // namespace hydra::sim
