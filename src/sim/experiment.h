// Experiment harness: policy construction, baseline caching, slowdown
// measurement, and benchmark-suite aggregation — the machinery behind
// every figure and table reproduction (see DESIGN.md experiment index).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/clock_gating_policy.h"
#include "core/dvs_policy.h"
#include "core/fetch_gating_policy.h"
#include "core/guarded_policy.h"
#include "core/hybrid_policy.h"
#include "core/fallback_policy.h"
#include "core/local_toggle_policy.h"
#include "core/proactive_policy.h"
#include "sim/system.h"
#include "workload/spec_profiles.h"

namespace hydra::sim {

enum class PolicyKind {
  kNone,             ///< baseline: no DTM
  kDvs,              ///< stand-alone DVS
  kFetchGating,      ///< integral-controlled fetch gating
  kFixedFetchGating, ///< fixed-duty fetch gating (Figure 3b sweeps)
  kClockGating,      ///< Pentium-4-style global clock gating
  kPiHybrid,         ///< PI-Hyb
  kHybrid,           ///< Hyb (controller-free)
  kProactiveHybrid,  ///< extension: slope-predictive Hyb (paper future work)
  kLocalToggle,      ///< issue-domain toggling (paper Section 2, [17])
  kFallback,         ///< DEETM-style fallback hierarchy (paper Section 2, [8])
};

std::string policy_kind_name(PolicyKind kind);

/// Tunables for make_policy. Defaults reproduce the paper's headline
/// configuration: binary DVS, integral fetch gating capped at 2/3, and
/// hybrid crossover at gating fraction 1/3.
struct PolicyParams {
  core::DvsPolicyConfig dvs{};
  core::FetchGatingConfig fetch_gating{};
  core::ClockGatingConfig clock_gating{};
  core::HybridConfig hybrid{};
  core::ProactiveConfig proactive{};
  core::LocalToggleConfig local_toggle{};
  core::FallbackConfig fallback{};
  /// When set, make_policy wraps the built policy in a GuardedPolicy
  /// (fail-safe sensor-fault supervision); kNone then yields a pure
  /// supervisor instead of nullptr.
  bool guarded = false;
  core::GuardedPolicyConfig guard{};
};

/// Per-sensor neighbour lists derived from the modelled floorplan's
/// shared-edge adjacency (sensor i sits on block i).
std::vector<std::vector<std::size_t>> sensor_adjacency();

/// Sensor (= block) display names in index order, for parsing fault
/// campaigns by block name.
std::vector<std::string_view> sensor_names();

/// Build the DVS ladder implied by a SimConfig.
power::DvsLadder make_ladder(const SimConfig& cfg);

/// Instantiate a policy (nullptr for kNone).
std::unique_ptr<core::DtmPolicy> make_policy(PolicyKind kind,
                                             const PolicyParams& params,
                                             const SimConfig& cfg);

/// Default simulation configuration for experiments. Honours the
/// HYDRA_RUN_INSTRUCTIONS / HYDRA_WARMUP_INSTRUCTIONS environment
/// variables so CI can run abbreviated sweeps.
SimConfig default_sim_config();

/// One DTM run paired with its baseline.
struct ExperimentResult {
  RunResult dtm;
  RunResult baseline;
  /// Execution-time ratio dtm/baseline (>= 1 when DTM slows the run).
  double slowdown = 1.0;
};

/// Mean over the nine-benchmark suite.
struct SuiteResult {
  std::vector<ExperimentResult> per_benchmark;
  double mean_slowdown = 1.0;
  /// Half-width of the 99 % confidence interval on the mean slowdown.
  double ci99_half_width = 0.0;

  std::vector<double> slowdowns() const;
};

/// Runs experiments, caching one baseline per benchmark. The cache is
/// keyed by benchmark name: per-run SimConfig overrides passed to run()
/// must only change DTM-side parameters (DVS ladder, switch behaviour,
/// policy thresholds), which do not affect the DTM-free baseline.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(SimConfig base_cfg);

  const SimConfig& base_config() const { return base_cfg_; }

  /// Baseline (no-DTM) run for a benchmark, cached.
  const RunResult& baseline(const workload::WorkloadProfile& profile);

  /// Run `kind` under `cfg` and pair it with the cached baseline.
  ExperimentResult run(const workload::WorkloadProfile& profile,
                       PolicyKind kind, const PolicyParams& params,
                       const SimConfig& cfg);
  /// Same with the runner's base config.
  ExperimentResult run(const workload::WorkloadProfile& profile,
                       PolicyKind kind, const PolicyParams& params = {});

  /// Run the whole nine-benchmark suite.
  SuiteResult run_suite(PolicyKind kind, const PolicyParams& params,
                        const SimConfig& cfg);
  SuiteResult run_suite(PolicyKind kind, const PolicyParams& params = {});

 private:
  SimConfig base_cfg_;
  std::map<std::string, RunResult> baseline_cache_;
};

}  // namespace hydra::sim
