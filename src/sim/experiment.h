// Experiment harness: policy construction, baseline caching, slowdown
// measurement, and benchmark-suite aggregation — the machinery behind
// every figure and table reproduction (see DESIGN.md experiment index).
//
// The runner is a parallel engine: every (profile, policy, config)
// point — including the shared no-DTM baselines — is an independent job
// on a work-stealing thread pool, memoized in a RunCache keyed by a
// content hash of its full inputs. Results are joined in submission
// order, never completion order, and each System run is internally
// deterministic, so any thread count produces bit-identical output.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/clock_gating_policy.h"
#include "core/dvs_policy.h"
#include "core/fetch_gating_policy.h"
#include "core/guarded_policy.h"
#include "core/hybrid_policy.h"
#include "core/fallback_policy.h"
#include "core/local_toggle_policy.h"
#include "core/proactive_policy.h"
#include "sim/run_cache.h"
#include "sim/system.h"
#include "util/thread_pool.h"
#include "workload/spec_profiles.h"

namespace hydra::sim {

enum class PolicyKind {
  kNone,             ///< baseline: no DTM
  kDvs,              ///< stand-alone DVS
  kFetchGating,      ///< integral-controlled fetch gating
  kFixedFetchGating, ///< fixed-duty fetch gating (Figure 3b sweeps)
  kClockGating,      ///< Pentium-4-style global clock gating
  kPiHybrid,         ///< PI-Hyb
  kHybrid,           ///< Hyb (controller-free)
  kProactiveHybrid,  ///< extension: slope-predictive Hyb (paper future work)
  kLocalToggle,      ///< issue-domain toggling (paper Section 2, [17])
  kFallback,         ///< DEETM-style fallback hierarchy (paper Section 2, [8])
};

std::string policy_kind_name(PolicyKind kind);

/// Tunables for make_policy. Defaults reproduce the paper's headline
/// configuration: binary DVS, integral fetch gating capped at 2/3, and
/// hybrid crossover at gating fraction 1/3.
struct PolicyParams {
  core::DvsPolicyConfig dvs{};
  core::FetchGatingConfig fetch_gating{};
  core::ClockGatingConfig clock_gating{};
  core::HybridConfig hybrid{};
  core::ProactiveConfig proactive{};
  core::LocalToggleConfig local_toggle{};
  core::FallbackConfig fallback{};
  /// When set, make_policy wraps the built policy in a GuardedPolicy
  /// (fail-safe sensor-fault supervision); kNone then yields a pure
  /// supervisor instead of nullptr.
  bool guarded = false;
  core::GuardedPolicyConfig guard{};
};

/// Per-sensor neighbour lists derived from the modelled floorplan's
/// shared-edge adjacency (sensor i sits on block i).
std::vector<std::vector<std::size_t>> sensor_adjacency();

/// Sensor (= block) display names in index order, for parsing fault
/// campaigns by block name.
std::vector<std::string_view> sensor_names();

/// Build the DVS ladder implied by a SimConfig.
power::DvsLadder make_ladder(const SimConfig& cfg);

/// Instantiate a policy (nullptr for kNone).
std::unique_ptr<core::DtmPolicy> make_policy(PolicyKind kind,
                                             const PolicyParams& params,
                                             const SimConfig& cfg);

/// Default simulation configuration for experiments. Honours the
/// HYDRA_RUN_INSTRUCTIONS / HYDRA_WARMUP_INSTRUCTIONS environment
/// variables so CI can run abbreviated sweeps.
SimConfig default_sim_config();

/// Content hash of every field of a SimConfig (including the core,
/// sensor, package and fault-campaign sub-configs).
std::uint64_t config_hash(const SimConfig& cfg);

/// The config a no-DTM baseline effectively runs under: `cfg` with the
/// DTM-only knobs (DVS ladder shape, switch behaviour, clock-gating
/// quantum) reset to defaults, since without a policy they cannot
/// influence the run. Baselines are cached under the hash of this
/// normalised config, so DTM-side sweeps share one baseline per profile
/// while thermal/core/sensor changes get their own.
SimConfig baseline_config(const SimConfig& cfg);

/// Cache key of one run: content hash of (profile, kind, params, cfg).
std::uint64_t run_point_key(const workload::WorkloadProfile& profile,
                            PolicyKind kind, const PolicyParams& params,
                            const SimConfig& cfg);

/// One DTM run paired with its baseline.
struct ExperimentResult {
  RunResult dtm;
  RunResult baseline;
  /// Execution-time ratio dtm/baseline (>= 1 when DTM slows the run).
  double slowdown = 1.0;
};

/// Mean over the nine-benchmark suite.
struct SuiteResult {
  std::vector<ExperimentResult> per_benchmark;
  double mean_slowdown = 1.0;
  /// Half-width of the 99 % confidence interval on the mean slowdown.
  double ci99_half_width = 0.0;

  std::vector<double> slowdowns() const;
};

/// One sweep point for the batched entry points.
struct PointSpec {
  workload::WorkloadProfile profile;
  PolicyKind kind = PolicyKind::kNone;
  PolicyParams params{};
  SimConfig cfg{};
};

/// One full nine-benchmark suite for run_suites().
struct SuiteSpec {
  PolicyKind kind = PolicyKind::kNone;
  PolicyParams params{};
  SimConfig cfg{};
};

/// Runs experiments on a thread pool, memoizing every point (and the
/// per-benchmark baselines) in a RunCache. All entry points are safe to
/// call from one thread while workers execute runs; results and their
/// ordering are independent of the pool width.
class ExperimentRunner {
 public:
  /// `pool` defaults to the process-wide HYDRA_THREADS-sized pool; tests
  /// inject fixed-width pools to compare widths in one process. The pool
  /// must outlive the runner.
  explicit ExperimentRunner(SimConfig base_cfg,
                            util::ThreadPool* pool = nullptr);

  const SimConfig& base_config() const { return base_cfg_; }
  std::size_t threads() const { return pool_->size(); }

  /// Baseline (no-DTM) run for a benchmark under the runner's base
  /// config (or `cfg`), cached by the hash of baseline_config(cfg). The
  /// returned reference stays valid for the runner's lifetime.
  const RunResult& baseline(const workload::WorkloadProfile& profile);
  const RunResult& baseline(const workload::WorkloadProfile& profile,
                            const SimConfig& cfg);

  /// Run `kind` under `cfg` and pair it with the cached baseline.
  ExperimentResult run(const workload::WorkloadProfile& profile,
                       PolicyKind kind, const PolicyParams& params,
                       const SimConfig& cfg);
  /// Same with the runner's base config.
  ExperimentResult run(const workload::WorkloadProfile& profile,
                       PolicyKind kind, const PolicyParams& params = {});

  /// Run a batch of points concurrently. Results are returned in input
  /// order regardless of completion order; duplicate points (and shared
  /// baselines) are computed once.
  std::vector<ExperimentResult> run_points(
      const std::vector<PointSpec>& points);

  /// Run the whole nine-benchmark suite.
  SuiteResult run_suite(PolicyKind kind, const PolicyParams& params,
                        const SimConfig& cfg);
  SuiteResult run_suite(PolicyKind kind, const PolicyParams& params = {});

  /// Run many suites with all points in flight at once — the batched
  /// entry point the sweep benches use.
  std::vector<SuiteResult> run_suites(const std::vector<SuiteSpec>& specs);

  /// Memoization counters (for tests/diagnostics).
  RunCache::Stats cache_stats() const { return cache_.stats(); }

  /// Lockstep batch width for fresh sweep points: run_points groups up
  /// to this many uncached, unsupervised, fused-scheme submissions that
  /// share a thermal model into one BatchGroup (sim/batch_sweep.h) —
  /// the per-run path stays the bit-identity reference twin. Default is
  /// HYDRA_BATCH (4 when unset); <= 1 disables batching. Cache keys and
  /// memoization stats are identical either way.
  std::size_t batch_width() const { return batch_width_; }
  void set_batch_width(std::size_t width) { batch_width_ = width; }

  /// Batch groups formed by the most recent run_points call (for
  /// tests/benches to confirm the batched path actually engaged).
  std::size_t last_batched_groups() const { return last_batched_groups_; }

  /// Supervision applied to every subsequently submitted run: per-job
  /// deadline (cooperative, polled by System::run) and transient-retry
  /// budget. Defaults are "no supervision", which keeps the engine's
  /// default behaviour — and its exact memoization shape — unchanged.
  void set_job_options(const RunCache::JobOptions& opts) {
    job_opts_ = opts;
  }
  const RunCache::JobOptions& job_options() const { return job_opts_; }

  /// Attach a crash-safe disk tier (see PersistentRunCache). Off by
  /// default — persistence is opt-in per tool so benches and tests stay
  /// deterministic under arbitrary HYDRA_CACHE_DIR environments.
  void set_store(std::shared_ptr<PersistentRunCache> store) {
    cache_.set_store(std::move(store));
  }
  std::shared_ptr<PersistentRunCache> store() const {
    return cache_.store();
  }

 private:
  RunCache::Future submit_run(const workload::WorkloadProfile& profile,
                              PolicyKind kind, const PolicyParams& params,
                              const SimConfig& cfg);
  RunCache::Future submit_baseline(const workload::WorkloadProfile& profile,
                                   const SimConfig& cfg);

  SimConfig base_cfg_;
  util::ThreadPool* pool_;
  RunCache cache_;
  RunCache::JobOptions job_opts_{};
  std::size_t batch_width_;
  std::size_t last_batched_groups_ = 0;
};

}  // namespace hydra::sim
