// Many-core co-simulation: K core tiles on one die, one RC network.
//
// Generalises the single-core System to an N-core chip. All tiles share
// one thermal model (the tiled floorplan from floorplan/multicore.h) and
// one die-level solver; each tile carries its own out-of-order core, its
// own 18-sensor bank, and its own DTM policy instance — DTM stays local,
// as in the paper, while three die-level mechanisms compose on top:
// per-core (or barrier-synchronised global) DVS domains, a thermal-aware
// thread-migration policy (core/migration_policy.h), and a global
// power-budget arbiter (core/budget_arbiter.h).
//
// Intra-run parallelism contract (DESIGN.md section 15): the run
// advances in wall-synchronous thermal intervals of
// dt = thermal_interval_cycles / f_nominal master seconds. Within an
// interval every tile is stepped independently — a tile's sub-loop
// touches only tile-local state plus *frozen* shared state (the solver
// temperatures, the arbiter commands and the global DVS floor from the
// last barrier) — so tiles may execute on any number of pool workers.
// At the barrier, all cross-tile work (power gather, the thermal step,
// migration, arbitration) runs on the calling thread in ascending tile
// order. Results are therefore bit-identical at any
// `multicore.threads` / HYDRA_THREADS width (multicore_test asserts it).
//
// Fidelity deviations from the single-core System, all deliberate:
//  * Each tile runs n ~= dt * f_tile cycles per interval, so tiles at
//    different DVS levels advance different cycle counts per barrier —
//    the thermal step sees every tile's true interval-average power.
//  * Measurement and run-length checks quantise to interval boundaries
//    (the single-core System stops within a 4096-cycle chunk).
//  * In global-DVS mode the shared level is the max level any tile
//    requested as of the last barrier (one-interval response lag).
//  * Sensor fault campaigns are not supported (cores > 1 + a non-empty
//    campaign throws): the fault engine is single-die-bank scoped.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/core.h"
#include "core/budget_arbiter.h"
#include "core/dtm_policy.h"
#include "core/guarded_policy.h"
#include "core/migration_policy.h"
#include "obs/trace.h"
#include "power/power_model.h"
#include "power/voltage_freq.h"
#include "sensor/sensor.h"
#include "sim/model_cache.h"
#include "sim/sim_config.h"
#include "sim/system.h"
#include "thermal/solver.h"
#include "util/cancel.h"
#include "util/thread_pool.h"
#include "workload/synthetic_trace.h"

namespace hydra::sim {

/// Per-tile lifetime statistics for one measured run.
struct CoreRunStats {
  std::size_t tile = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  double ipc = 0.0;
  double max_true_celsius = 0.0;      ///< hottest block on this tile
  double mean_gate_fraction = 0.0;    ///< time-weighted fetch gating
  double dvs_low_fraction = 0.0;      ///< time at a non-nominal level
  double occupied_fraction = 0.0;     ///< time a thread was bound here
  std::size_t dvs_transitions = 0;
  std::uint64_t migrations_in = 0;
  std::uint64_t migrations_out = 0;
};

/// One applied thread migration.
struct MigrationEvent {
  double time_seconds = 0.0;
  std::size_t from = 0;
  std::size_t to = 0;
  /// Die Tmax at the decision barrier and at the next interval boundary
  /// (the property test bounds after against before).
  double tmax_before_celsius = 0.0;
  double tmax_after_celsius = 0.0;
};

/// Aggregate + per-core outcome. Only `aggregate` participates in run
/// memoization / persistence; the per-core breakdown is for tools and
/// tests driving MulticoreSystem directly.
struct MulticoreResult {
  RunResult aggregate;
  std::vector<CoreRunStats> per_core;
  std::vector<MigrationEvent> migrations;
};

/// Builds one DTM policy instance per tile (may return nullptr for a
/// no-DTM baseline). Called K times during construction; each call must
/// produce an equivalently configured, independent instance.
using PolicyFactory = std::function<std::unique_ptr<core::DtmPolicy>()>;

class MulticoreSystem {
 public:
  /// `policy_name` labels RunResult::policy ("baseline" when empty and
  /// the factory returns null). Throws std::invalid_argument on
  /// inconsistent multicore config (0 cores, more threads than cores, a
  /// fault campaign with cores > 1).
  MulticoreSystem(const workload::WorkloadProfile& profile,
                  const SimConfig& cfg, PolicyFactory factory,
                  std::string policy_name = "");
  ~MulticoreSystem();

  /// Steady-state init + warm-up + measured run (see System::run for the
  /// cancellation contract; cancellation is polled once per interval).
  MulticoreResult run(const util::CancelToken* cancel = nullptr);

  std::size_t cores() const { return tiles_.size(); }
  const power::DvsLadder& ladder() const { return ladder_; }

 private:
  struct Tile;

  void initialize_thermal_state();
  /// Advance whole thermal intervals until `total_committed() >=
  /// target`. The master clock, solver and all cross-tile policies move
  /// here; per-tile stepping fans out through the worker pool.
  void advance_intervals(std::uint64_t target_committed, bool measure);
  /// Tile-local sub-loop: advance tile `t` to master time `t_end`,
  /// handling its sensor/DVS/clock-gate events, then compute its
  /// interval-average block power into tile scratch. Runs concurrently
  /// across tiles; touches only tile state and frozen shared state.
  void step_tile(std::size_t t, double t_end, bool measure);
  void tile_sensor_event(Tile& tile, bool measure);
  void apply_tile_dvs(Tile& tile, std::size_t level);
  double tile_next_event(const Tile& tile) const;
  std::uint64_t total_committed() const;
  void apply_migration(const core::MigrationDecision& d);

  SimConfig cfg_;
  std::shared_ptr<const SharedModel> shared_;
  const thermal::ThermalModel& model_;
  floorplan::Floorplan unit_fp_;  ///< single-tile ev7 unit (power/leakage)
  power::VoltageFrequencyCurve vf_curve_;
  power::DvsLadder ladder_;
  power::PowerModel power_;
  thermal::TransientSolver solver_;
  core::MigrationPolicy migration_;
  core::BudgetArbiter arbiter_;

  /// One per software thread; a tile binds one via Core::set_trace.
  std::vector<std::unique_ptr<workload::SyntheticTrace>> threads_;
  std::vector<std::unique_ptr<Tile>> tiles_;

  /// nullptr = serial (threads == 1); global() or a private pool else.
  util::ThreadPool* pool_ = nullptr;
  std::unique_ptr<util::ThreadPool> owned_pool_;

  // Scaled event periods [s] (shared by every tile).
  double sensor_period_s_ = 0.0;
  double switch_time_s_ = 0.0;
  double gate_quantum_ = 0.0;
  double interval_dt_ = 0.0;  ///< master wall seconds per thermal interval
  double power_scale_ = 1.0;  ///< 1/cores: tiles shrink with the grid

  // Master dynamic state (single-threaded: the barrier phase only).
  double t_ = 0.0;
  std::size_t global_dvs_floor_ = 0;  ///< global-DVS mode, last barrier

  // Die-level measurement accumulators (barrier phase only).
  struct Accum {
    double wall = 0.0;
    double violation = 0.0;
    double above_trigger = 0.0;
    double energy_j = 0.0;
    double max_true = 0.0;
    double spread_weighted = 0.0;
    double throttled = 0.0;  ///< wall time with an arbiter floor active
    std::vector<double> block_temp_weighted;  ///< per die block
    std::uint64_t start_committed = 0;
    std::uint64_t start_cycles = 0;
    void reset() {
      wall = violation = above_trigger = energy_j = max_true = 0.0;
      spread_weighted = throttled = 0.0;
      for (double& v : block_temp_weighted) v = 0.0;
      start_committed = 0;
      start_cycles = 0;
    }
  } acc_;

  std::vector<MigrationEvent> migration_events_;
  std::size_t migrations_pending_after_ = 0;  ///< first event missing after-T

  std::string benchmark_name_;
  std::string policy_name_;
  std::uint32_t die_lane_ = obs::SimLaneScope::kNoLane;  ///< die trace lane
  const util::CancelToken* cancel_ = nullptr;
  std::uint64_t probe_auto_instructions_ = 300'000;
  /// The activity probe burns ~probe instructions per occupied tile and
  /// its frames depend only on the bound traces' statistical profiles,
  /// so repeated run()s of a warm system reuse the first run's frames
  /// (the dominant cost of re-running a many-core system; a fresh
  /// system's first run is unchanged).
  bool probe_cached_ = false;
  /// Route the steady-state fixed point through the sparse Cholesky of
  /// G when the die is past the HYDRA_SPARSE crossover (resolved once;
  /// matches the solver's own step dispatch).
  bool use_sparse_ = false;

  // Preallocated die-level scratch (the interval loop never allocates).
  std::vector<double> die_watts_;
  thermal::Vector expanded_;
  thermal::Vector init_temps_;
  thermal::Vector steady_work_;  ///< sparse steady-solve scratch
  std::vector<core::TileThermalState> tile_states_;
  std::vector<util::Watts> tile_power_;
  std::vector<bool> tile_occupied_;
};

}  // namespace hydra::sim
