#include "sim/run_cache.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/obs.h"
#include "sim/persistent_cache.h"

namespace hydra::sim {

namespace {

// Retry backoff never sleeps longer than this per attempt, no matter
// how many doublings max_attempts allows.
constexpr double kMaxBackoffSeconds = 0.25;

}  // namespace

RunCache::Future RunCache::submit(
    std::uint64_t key, util::ThreadPool& pool,
    std::function<RunResult(const util::CancelToken&)> compute,
    const JobOptions& opts) {
  Future future;
  {
    const util::LockGuard lock(mu_);
    static const obs::Counter hit_counter =
        obs::metrics().counter("run_cache.hits");
    static const obs::Counter miss_counter =
        obs::metrics().counter("run_cache.misses");
    auto it = runs_.find(key);
    if (it != runs_.end() &&
        it->second.state->load(std::memory_order_acquire) != kFailed) {
      ++stats_.hits;
      hit_counter.add();
      return it->second.future;
    }
    // Either a true miss or a Failed entry: recompute. Replacing a
    // Failed entry is what keeps one bad attempt from poisoning the key
    // for the rest of the process.
    ++stats_.misses;
    miss_counter.add();
    auto promise = std::make_shared<std::promise<ResultPtr>>();
    auto state = std::make_shared<std::atomic<int>>(kInFlight);
    future = promise->get_future().share();
    runs_.insert_or_assign(key, Entry{future, state});
    // The job captures shared state only — never `this`. The submitter
    // may destroy the RunCache as soon as get() returns while sibling
    // jobs are still draining.
    pool.submit([promise = std::move(promise), state = std::move(state),
                 counters = counters_, store = store_, key,
                 compute = std::move(compute), opts]() mutable {
      // Disk tier first: done inside the job so the submit path never
      // blocks on disk, and shard file reads (which the store performs
      // outside its index lock) parallelise across workers.
      if (store) {
        if (ResultPtr from_disk = store->load(key)) {
          counters->disk_hits.fetch_add(1, std::memory_order_relaxed);
          state->store(kDone, std::memory_order_release);
          promise->set_value(std::move(from_disk));
          return;
        }
      }
      // Clamp the caller-supplied initial backoff too: the sleep runs
      // on a pool worker, so even the first retry must respect the cap.
      double backoff_s = std::min(opts.backoff.value(), kMaxBackoffSeconds);
      for (int attempt = 1;; ++attempt) {
        try {
          util::CancelToken token;
          if (opts.timeout.value() > 0.0) {
            token.set_deadline_after(opts.timeout);
          }
          counters->computes.fetch_add(1, std::memory_order_relaxed);
          auto result = std::make_shared<const RunResult>(compute(token));
          // Spill BEFORE unblocking waiters: once get() returns, the
          // caller may treat the result as durable (kill the process,
          // restart warm), so the entry must already be on disk. A
          // disk-tier problem must never fail a run whose compute
          // succeeded, so the spill gets its own containment: save()
          // absorbs ordinary stream errors itself, and anything that
          // still escapes (bad_alloc during serialization,
          // filesystem_error from path construction) just leaves the
          // run memory-only.
          if (store) {
            try {
              store->save(key, *result);
              counters->disk_stores.fetch_add(1, std::memory_order_relaxed);
            } catch (...) {
              static const obs::Counter spill_failures =
                  obs::metrics().counter("run_cache.disk_spill_failures");
              spill_failures.add();
            }
          }
          state->store(kDone, std::memory_order_release);
          promise->set_value(result);
          return;
        } catch (const util::TransientError&) {
          if (attempt < opts.max_attempts) {
            counters->retries.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(
                std::chrono::duration<double>(backoff_s));
            backoff_s = std::min(backoff_s * 2.0, kMaxBackoffSeconds);
            continue;
          }
          counters->failures.fetch_add(1, std::memory_order_relaxed);
          state->store(kFailed, std::memory_order_release);
          promise->set_exception(std::current_exception());
          return;
        } catch (const util::TimeoutError&) {
          static const obs::Counter timeout_counter =
              obs::metrics().counter("run_cache.job_timeouts");
          timeout_counter.add();
          counters->timeouts.fetch_add(1, std::memory_order_relaxed);
          counters->failures.fetch_add(1, std::memory_order_relaxed);
          state->store(kFailed, std::memory_order_release);
          promise->set_exception(std::current_exception());
          return;
        } catch (...) {
          static const obs::Counter failure_counter =
              obs::metrics().counter("run_cache.job_failures");
          failure_counter.add();
          counters->failures.fetch_add(1, std::memory_order_relaxed);
          state->store(kFailed, std::memory_order_release);
          promise->set_exception(std::current_exception());
          return;
        }
      }
    });
  }
  return future;
}

RunCache::Future RunCache::submit(std::uint64_t key, util::ThreadPool& pool,
                                  std::function<RunResult()> compute) {
  return submit(
      key, pool,
      [compute = std::move(compute)](const util::CancelToken&) {
        return compute();
      },
      JobOptions{});
}

void RunCache::set_store(std::shared_ptr<PersistentRunCache> store) {
  const util::LockGuard lock(mu_);
  store_ = std::move(store);
}

std::shared_ptr<PersistentRunCache> RunCache::store() const {
  const util::LockGuard lock(mu_);
  return store_;
}

RunCache::Stats RunCache::stats() const {
  Stats s;
  {
    const util::LockGuard lock(mu_);
    s = stats_;
  }
  s.failures = counters_->failures.load(std::memory_order_relaxed);
  s.retries = counters_->retries.load(std::memory_order_relaxed);
  s.timeouts = counters_->timeouts.load(std::memory_order_relaxed);
  s.computes = counters_->computes.load(std::memory_order_relaxed);
  s.disk_hits = counters_->disk_hits.load(std::memory_order_relaxed);
  s.disk_stores = counters_->disk_stores.load(std::memory_order_relaxed);
  return s;
}

std::size_t RunCache::size() const {
  const util::LockGuard lock(mu_);
  return runs_.size();
}

bool RunCache::contains(std::uint64_t key) const {
  const util::LockGuard lock(mu_);
  const auto it = runs_.find(key);
  return it != runs_.end() &&
         it->second.state->load(std::memory_order_acquire) != kFailed;
}

}  // namespace hydra::sim
