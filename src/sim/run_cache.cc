#include "sim/run_cache.h"

#include <utility>

#include "obs/obs.h"

namespace hydra::sim {

RunCache::Future RunCache::submit(std::uint64_t key, util::ThreadPool& pool,
                                  std::function<RunResult()> compute) {
  Future future;
  {
    const std::scoped_lock lock(mu_);
    static const obs::Counter hit_counter =
        obs::metrics().counter("run_cache.hits");
    static const obs::Counter miss_counter =
        obs::metrics().counter("run_cache.misses");
    auto it = runs_.find(key);
    if (it != runs_.end()) {
      ++stats_.hits;
      hit_counter.add();
      return it->second;
    }
    ++stats_.misses;
    miss_counter.add();
    auto promise = std::make_shared<std::promise<ResultPtr>>();
    future = promise->get_future().share();
    runs_.emplace(key, future);
    // Enqueue outside the map insertion but inside this scope so the
    // promise shared_ptr moves into the job.
    pool.submit([promise = std::move(promise),
                 compute = std::move(compute)]() mutable {
      try {
        promise->set_value(std::make_shared<const RunResult>(compute()));
      } catch (...) {
        promise->set_exception(std::current_exception());
      }
    });
  }
  return future;
}

RunCache::Stats RunCache::stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

std::size_t RunCache::size() const {
  const std::scoped_lock lock(mu_);
  return runs_.size();
}

}  // namespace hydra::sim
