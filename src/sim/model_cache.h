// Shared immutable model state for the parallel experiment engine.
//
// Every System over the same (package, time_scale) pair builds exactly
// the same floorplan, RC network, steady-state LU and backward-Euler
// factorisations. The ModelCache hoists that state out of the per-System
// constructors: the first System for a given key builds it, every later
// one — on any thread — gets a shared_ptr to the same read-only object.
// All shared pieces are immutable after construction (the LuCache
// synchronises its lazy factorisations internally), so concurrent
// Systems never contend beyond the cache-lookup mutex.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "floorplan/floorplan.h"
#include "sim/sim_config.h"
#include "thermal/model_builder.h"
#include "thermal/solver.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace hydra::sim {

/// Immutable per-(package, time_scale) state shared across Systems.
struct SharedModel {
  floorplan::Floorplan fp;
  thermal::ThermalModel model;  ///< capacitances scaled by time_scale
  std::shared_ptr<const thermal::LuCache> lu_cache;
};

/// Hash of the fields SharedModel depends on (Package + time_scale +
/// multicore.cores — the core count selects the tiled floorplan).
std::uint64_t model_key(const SimConfig& cfg);

class ModelCache {
 public:
  /// The shared model for `cfg`, building it on first use. Thread-safe.
  /// Throws std::invalid_argument when time_scale is not positive.
  std::shared_ptr<const SharedModel> get(const SimConfig& cfg);

  /// Number of distinct models built so far (for tests/diagnostics).
  std::size_t size() const;

  /// Process-wide instance used by System.
  static ModelCache& global();

 private:
  mutable util::Mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const SharedModel>>
      cache_ HYDRA_GUARDED_BY(mu_);
};

}  // namespace hydra::sim
