// Crash-safe on-disk spill of the run cache.
//
// The expensive artifact of this codebase is a completed RunResult; the
// in-memory RunCache dedupes it within one process, and this store makes
// it durable across processes — the substrate the hydra_serve north-star
// needs ("content-hash admission into a sharded persistent run cache").
// A killed or crashed sweep restarts warm: every entry it managed to
// commit is served from disk, everything else is recomputed, and nothing
// corrupt is ever trusted.
//
// Durability model (DESIGN.md §13):
//   * Entries live one-file-per-run under `<dir>/shard-NN/<key>.run`,
//     sharded by the low bits of the FNV run key so directory listings
//     stay short at serve scale.
//   * Each file is versioned and checksummed (FNV-1a over the payload);
//     writes go to a temp file in the same shard and are published with
//     an atomic rename, so readers never observe a half-written entry.
//   * A publish journal (`manifest.log`) records every publish intent
//     (`P <key> <checksum>`, appended before the rename) and every
//     deliberate removal (`E <key>`: eviction, stale drop, load-time
//     quarantine). Durability comes from the checksummed entries and
//     the atomic rename, NOT the journal; its recovery job is loss
//     detection — a publish intent with no surviving entry and no
//     removal record means a crash ate a publish, counted in
//     `lost_publishes` / `cache.disk_lost_publishes`. It is compacted
//     on open; a torn final line (killed mid-append) is tolerated.
//   * On open, leftover temp files are deleted and every entry is
//     structurally validated; anything corrupt is quarantined into
//     `<dir>/quarantine/` — never deleted (post-mortem evidence), never
//     served, never fatal. A corrupt entry simply becomes a recompute.
//   * Total size is bounded: past `max_bytes` the least-recently-used
//     entries are evicted, so disk pressure degrades hit rate, not
//     correctness.
//
// Thread-safe. The in-memory index is guarded by one mutex, but entry
// file reads and writes happen OUTSIDE it (with revalidation after
// reacquiring), so shard I/O from concurrent pool workers parallelises;
// only the index lookup/update and the rename serialise.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>

#include "sim/system.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace hydra::sim {

/// Serialize a RunResult to the store's portable binary payload (every
/// double bit-exact; strings length-prefixed). Exposed for tests.
std::string serialize_run_result(const RunResult& r);

/// Inverse of serialize_run_result. Returns false (leaving `out`
/// unspecified) on any structural problem — short buffer, trailing
/// bytes, bad lengths.
bool deserialize_run_result(std::string_view payload, RunResult& out);

class PersistentRunCache {
 public:
  struct Options {
    std::string dir;              ///< store root (created if absent)
    std::size_t shards = 16;      ///< fan-out of the key space on disk
    std::uint64_t max_bytes = 256ull << 20;  ///< LRU capacity bound
  };

  struct Stats {
    // Lifetime counters for this handle.
    std::uint64_t hits = 0;        ///< loads served (checksum verified)
    std::uint64_t misses = 0;      ///< loads with no entry on disk
    std::uint64_t stores = 0;      ///< entries published
    std::uint64_t corrupt = 0;     ///< entries quarantined (open + load)
    std::uint64_t stale = 0;       ///< version-mismatch entries dropped
    std::uint64_t evictions = 0;   ///< entries evicted by the size bound
    // Recovery census from open().
    std::uint64_t recovered = 0;     ///< valid entries found on open
    std::uint64_t tmp_removed = 0;   ///< abandoned temp files deleted
    std::uint64_t lost_publishes = 0;  ///< journal intents with no entry
  };

  /// Open (and if necessary create) the store at `opts.dir`, running
  /// crash recovery: delete temp files, quarantine corrupt entries,
  /// compact the manifest. Throws std::runtime_error when the directory
  /// cannot be created or is not writable.
  explicit PersistentRunCache(Options opts);

  /// The store for the HYDRA_CACHE_DIR environment variable (capacity
  /// from HYDRA_CACHE_MAX_BYTES when set), or nullptr when unset.
  static std::shared_ptr<PersistentRunCache> from_env();

  /// Verified entry for `key`, or nullptr. A corrupt entry is
  /// quarantined and reported as a miss; a version-mismatched entry is
  /// deleted and reported as a miss.
  std::shared_ptr<const RunResult> load(std::uint64_t key);

  /// Durably publish `result` under `key` (temp file written outside
  /// the lock + journal append + atomic rename), then enforce the
  /// capacity bound. I/O errors are contained: a failed save is counted
  /// and the run simply stays memory-only.
  void save(std::uint64_t key, const RunResult& result);

  Stats stats() const;
  std::size_t entries() const;
  std::uint64_t total_bytes() const;
  const std::string& dir() const { return opts_.dir; }

 private:
  struct IndexEntry {
    std::filesystem::path path;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;  ///< payload FNV (kept for compaction)
    std::uint64_t lru_tick = 0;  ///< larger = more recently used
  };

  std::filesystem::path shard_dir(std::uint64_t key) const;
  std::filesystem::path entry_path(std::uint64_t key) const;
  // The `_locked` protocol is now a compiler-checked contract, not a
  // naming convention: these can only be called with mu_ held.
  void quarantine_locked(std::uint64_t key, const std::filesystem::path& p)
      HYDRA_REQUIRES(mu_);
  void enforce_capacity_locked() HYDRA_REQUIRES(mu_);
  /// Append one journal line: op 'P' (publish, with checksum) or
  /// 'E' (deliberate removal: eviction, stale drop, quarantine).
  void append_manifest_locked(char op, std::uint64_t key,
                              std::uint64_t checksum = 0)
      HYDRA_REQUIRES(mu_);
  void compact_manifest_locked() HYDRA_REQUIRES(mu_);
  void recover_locked() HYDRA_REQUIRES(mu_);

  Options opts_;  ///< immutable after construction
  /// Guards the index only — entry file I/O happens outside it (with
  /// revalidation after reacquiring) so shard reads/writes parallelise.
  mutable util::Mutex mu_;
  std::map<std::uint64_t, IndexEntry> index_ HYDRA_GUARDED_BY(mu_);
  std::uint64_t total_bytes_ HYDRA_GUARDED_BY(mu_) = 0;
  std::uint64_t lru_clock_ HYDRA_GUARDED_BY(mu_) = 0;
  std::uint64_t quarantine_seq_ HYDRA_GUARDED_BY(mu_) = 0;
  std::atomic<std::uint64_t> tmp_seq_{0};  ///< unique temp names, lock-free
  Stats stats_ HYDRA_GUARDED_BY(mu_);
};

}  // namespace hydra::sim
