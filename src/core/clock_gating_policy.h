// Global clock gating DTM policy (Pentium-4 style; paper Section 2).
//
// When the trigger is exceeded, the entire processor clock is stopped in
// fixed quanta (2 us on the Pentium 4). The co-simulation System holds
// the clock for one quantum per asserted sample; the policy re-evaluates
// at each sensor sample. Compared with fetch gating this also eliminates
// clock-tree power, but cannot exploit ILP: gated cycles are pure loss.
#pragma once

#include "core/dtm_policy.h"

namespace hydra::core {

struct ClockGatingConfig {
  /// Hysteresis below trigger before releasing the clock.
  util::CelsiusDelta hysteresis{0.2};
};

class ClockGatingPolicy final : public DtmPolicy {
 public:
  ClockGatingPolicy(DtmThresholds thresholds, ClockGatingConfig cfg = {});

  DtmCommand update(const ThermalSample& sample) override;
  std::string_view name() const override { return "ClockGate"; }
  void reset() override { engaged_ = false; }

 private:
  DtmThresholds thresholds_;
  ClockGatingConfig cfg_;
  bool engaged_ = false;
};

}  // namespace hydra::core
