// Fetch-gating DTM policy (paper Section 4.1).
//
// Gating fetch at a duty cycle reduces pipeline activity and hence power
// density; mild gating is hidden by ILP. The duty-cycle choice is a
// feedback-control problem for which the paper uses an integral
// controller (the implementing hardware is a few registers, an adder and
// a multiplier). A fixed-duty mode is also provided: it engages a
// constant gating fraction whenever the trigger is exceeded — used
// stand-alone for the Figure 3b sweep and as the ILP half of the
// controller-free Hyb policy.
#pragma once

#include "control/pi_controller.h"
#include "core/dtm_policy.h"

namespace hydra::core {

struct FetchGatingConfig {
  enum class Mode { kIntegral, kFixed };
  Mode mode = Mode::kIntegral;
  /// Integral gain (gate fraction accumulated per deg C of error per s).
  util::PerCelsiusSecond ki{600.0};
  /// Proportional gain (0 for the paper's pure integral controller).
  util::PerCelsius kp{0.0};
  /// Upper bound on the gating fraction. 0.75 (gate three of every four
  /// cycles — "duty cycle 0.33" in the paper's notation was the analogous
  /// harshest setting) is the level that eliminates all thermal
  /// violations stand-alone in this calibration.
  double max_gate_fraction = 0.75;
  /// Fixed mode: the gating fraction applied while above trigger.
  double fixed_gate_fraction = 0.75;
};

class FetchGatingPolicy final : public DtmPolicy {
 public:
  FetchGatingPolicy(DtmThresholds thresholds, FetchGatingConfig cfg);

  DtmCommand update(const ThermalSample& sample) override;
  std::string_view name() const override {
    return cfg_.mode == FetchGatingConfig::Mode::kIntegral ? "FG" : "FG-fixed";
  }
  void reset() override;

  double current_gate_fraction() const { return gate_; }

 private:
  DtmThresholds thresholds_;
  FetchGatingConfig cfg_;
  control::PiController controller_;
  double gate_ = 0.0;
  util::Seconds last_time_{-1.0};
};

}  // namespace hydra::core
