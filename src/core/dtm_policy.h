// Dynamic thermal management policy interface.
//
// A policy runs at the sensor sampling rate (10 kHz in the paper): it
// receives the latest sensor readings and returns the actuation command —
// a fetch-gating duty fraction, a DVS ladder level, and/or a global
// clock-gate request. The co-simulation System applies the command,
// modelling DVS switching overhead and clock-gating quanta.
#pragma once

#include <string_view>
#include <vector>

#include "util/units.h"

namespace hydra::core {

/// DTM temperature thresholds (paper Section 3): DTM engages at the
/// trigger; the chip must never exceed the emergency threshold.
/// 81.8 / 85 with the paper's sensor error budget (2 deg offset + 1 deg
/// precision -> 82 practical limit, trigger just below it).
struct DtmThresholds {
  util::Celsius trigger{81.8};
  util::Celsius emergency{85.0};
};

/// One sensor sampling instant.
struct ThermalSample {
  std::vector<double> sensed_celsius;  ///< per-block readings [deg C]
  util::Celsius max_sensed{};          ///< max over sensed_celsius
  util::Seconds time{};                ///< simulation time of the sample
};

/// Actuation requested by a policy.
struct DtmCommand {
  double fetch_gate_fraction = 0.0;  ///< gate fetch on this cycle fraction
  double issue_gate_fraction = 0.0;  ///< gate issue ("local toggling")
  std::size_t dvs_level = 0;         ///< DVS ladder index (0 = nominal)
  bool clock_gate = false;           ///< stop the global clock this quantum
};

class DtmPolicy {
 public:
  virtual ~DtmPolicy() = default;

  /// Compute the actuation for the current sample. Called once per
  /// sensor period; `sample.time` is monotone.
  virtual DtmCommand update(const ThermalSample& sample) = 0;

  virtual std::string_view name() const = 0;

  /// Return to the power-on state (used between experiment repetitions).
  virtual void reset() = 0;
};

}  // namespace hydra::core
