// Fail-safe DTM supervision: a decorator that makes any DtmPolicy
// tolerate sensor faults.
//
// Every policy in this library trusts ThermalSample blindly, yet the
// paper's safety argument only covers sensors that are noisy and offset
// (Section 3) — a stuck-at-low or dead sensor on the hottest block
// silently disables thermal protection. GuardedPolicy wraps an inner
// policy with the supervision layer a production thermal stack needs:
//
//  * Per-sensor plausibility filtering: NaN/range rejection, a
//    rate-of-change limit, a frozen-reading detector, and cross-sensor
//    voting — each sensor's deviation from the median of its floorplan
//    neighbours is learned during an initial window and a reading whose
//    deviation leaves that reference band is implausible (this catches
//    stuck-at values inside the plausible range and slow drift).
//  * Quarantine + substitution: an implausible sensor is quarantined and
//    its reading replaced by the neighbour median plus its learned
//    deviation plus a conservative margin, so the inner policy keeps
//    regulating the hidden block from the evidence of its neighbours.
//  * Debounced recovery with exponential backoff: a quarantined sensor
//    must agree with its substitute for a run of samples before it is
//    trusted again, and every relapse doubles that requirement.
//  * Watchdog fail-safe: when too many sensors are quarantined at once
//    (or none are usable at all), the supervisor overrides the inner
//    policy with global clock gating — the strongest actuator — until
//    enough sensors return, with its own debounce and backoff.
//
// Faults below the detection threshold (drift inside the reference band)
// can make a sensor read up to ~drift_cap too low; the supervisor
// re-budgets the paper's sensor-error margin for this by biasing all
// sanitised readings up by `pessimism_bias`. This costs a small
// amount of extra throttling in fault-free runs — the price of
// supervision, reported by bench/ext_fault_campaign.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dtm_policy.h"

namespace hydra::core {

struct GuardedPolicyConfig {
  // --- Plausibility checks ---
  util::Celsius min_plausible{5.0};
  util::Celsius max_plausible{150.0};
  /// Largest believable |dT/dt|. Specified in paper-time like controller
  /// gains; multiply by time_scale under time acceleration.
  util::CelsiusPerSecond max_rate{5.0e3};
  /// Per-sample step allowance on top of the rate limit, covering sensor
  /// noise + quantisation.
  util::CelsiusDelta noise_margin{3.0};
  /// Consecutive bit-identical readings before a sensor counts as frozen;
  /// 0 disables (use 0 when sensor noise is disabled, otherwise a steady
  /// temperature looks frozen).
  std::size_t frozen_samples = 16;
  /// Samples of neighbour-median deviation averaged into the per-sensor
  /// reference before the voting check arms.
  std::size_t learn_samples = 64;
  /// EMA coefficient smoothing the deviation before comparison.
  double deviation_alpha = 0.25;
  /// Quarantine when the smoothed deviation leaves the reference by more
  /// than this. Catches in-range stuck values and drift.
  util::CelsiusDelta drift_cap{1.5};
  /// Consecutive suspect samples before quarantine (NaN / out-of-range
  /// quarantine immediately).
  std::size_t suspect_samples = 2;

  // --- Substitution / recovery ---
  /// Added on top of the neighbour-derived estimate for a quarantined
  /// sensor, erring hot.
  util::CelsiusDelta substitution_margin{1.0};
  /// A quarantined sensor must agree with its estimate within this band
  /// to make recovery progress.
  util::CelsiusDelta recovery_band{2.0};
  /// Consecutive agreeing samples required for release (base value).
  std::size_t recovery_samples = 24;
  /// Each relapse doubles the recovery requirement up to this factor.
  std::size_t backoff_max_factor = 64;

  // --- Watchdog fail-safe ---
  /// Engage fail-safe clock gating when more than this fraction of
  /// sensors is quarantined.
  double failsafe_lost_fraction = 1.0 / 3.0;
  /// Consecutive healthy samples before fail-safe releases (base value;
  /// doubles per re-engagement up to backoff_max_factor).
  std::size_t failsafe_release_samples = 8;

  /// Upward bias applied to every sanitised reading; margin for faults
  /// below the detection threshold (see file comment).
  util::CelsiusDelta pessimism_bias{0.75};
};

/// Counters describing what the supervisor did during a run.
struct GuardStats {
  std::uint64_t samples = 0;             ///< sensor events processed
  std::uint64_t rejected_readings = 0;   ///< sensor-samples substituted
  std::uint64_t quarantine_entries = 0;  ///< healthy->quarantined edges
  std::uint64_t failsafe_samples = 0;    ///< samples spent in fail-safe
  std::uint64_t failsafe_entries = 0;
  std::size_t max_quarantined = 0;       ///< peak simultaneous quarantines
};

class GuardedPolicy final : public DtmPolicy {
 public:
  /// `inner` may be null: the guard then acts as a pure fail-safe
  /// supervisor (no DTM until the watchdog trips). `neighbors[i]` lists
  /// the sensors adjacent to sensor i on the floorplan (see
  /// floorplan::Floorplan::adjacencies); indices must be < neighbors
  /// size. Throws std::invalid_argument on malformed adjacency or config.
  GuardedPolicy(std::unique_ptr<DtmPolicy> inner, DtmThresholds thresholds,
                std::vector<std::vector<std::size_t>> neighbors,
                GuardedPolicyConfig cfg = {});

  DtmCommand update(const ThermalSample& sample) override;
  std::string_view name() const override { return name_; }
  void reset() override;

  bool failsafe_engaged() const { return failsafe_; }
  std::size_t quarantined_count() const;
  bool quarantined(std::size_t i) const { return state_[i].quarantined; }
  const GuardStats& stats() const { return stats_; }
  const DtmPolicy* inner() const { return inner_.get(); }

 private:
  struct SensorState {
    bool quarantined = false;
    std::size_t suspect_count = 0;
    std::size_t frozen_count = 0;
    double last_raw = 0.0;
    bool have_last = false;
    double ref_dev = 0.0;  ///< learned deviation from neighbour median
    std::size_t ref_count = 0;
    bool ref_ready = false;
    double smoothed_dev = 0.0;
    bool smoothed_primed = false;
    std::size_t recovery_count = 0;
    std::size_t backoff = 1;  ///< recovery-requirement multiplier
  };

  /// Median of the raw readings of `i`'s usable neighbours (finite, not
  /// quarantined at the previous sample). With fewer than three usable
  /// neighbours the median is not robust to a single corrupted one, so
  /// it falls back to the median over all other usable sensors; nan when
  /// none exist.
  double neighbor_median(std::size_t i,
                         const std::vector<double>& raw) const;

  std::unique_ptr<DtmPolicy> inner_;
  DtmThresholds thresholds_;
  std::vector<std::vector<std::size_t>> neighbors_;
  GuardedPolicyConfig cfg_;
  std::string name_;

  std::vector<SensorState> state_;
  bool failsafe_ = false;
  std::size_t failsafe_ok_count_ = 0;
  std::size_t failsafe_backoff_ = 1;
  util::Seconds last_time_{-1.0};
  GuardStats stats_;
};

}  // namespace hydra::core
