#include "core/fetch_gating_policy.h"

#include <algorithm>

namespace hydra::core {

FetchGatingPolicy::FetchGatingPolicy(DtmThresholds thresholds,
                                     FetchGatingConfig cfg)
    : thresholds_(thresholds),
      cfg_(cfg),
      controller_(cfg.kp, cfg.ki, 0.0, cfg.max_gate_fraction) {}

void FetchGatingPolicy::reset() {
  controller_.reset();
  gate_ = 0.0;
  last_time_ = -1.0;
}

DtmCommand FetchGatingPolicy::update(const ThermalSample& sample) {
  if (cfg_.mode == FetchGatingConfig::Mode::kFixed) {
    gate_ = sample.max_sensed >= thresholds_.trigger_celsius
                ? cfg_.fixed_gate_fraction
                : 0.0;
  } else {
    const double dt = last_time_ < 0.0
                          ? 1e-4
                          : std::max(1e-9, sample.time_seconds - last_time_);
    const double error = sample.max_sensed - thresholds_.trigger_celsius;
    gate_ = controller_.update(error, dt);
  }
  last_time_ = sample.time_seconds;

  DtmCommand cmd;
  cmd.fetch_gate_fraction = gate_;
  return cmd;
}

}  // namespace hydra::core
