#include "core/fetch_gating_policy.h"

#include <algorithm>

namespace hydra::core {

FetchGatingPolicy::FetchGatingPolicy(DtmThresholds thresholds,
                                     FetchGatingConfig cfg)
    : thresholds_(thresholds),
      cfg_(cfg),
      controller_(cfg.kp, cfg.ki, 0.0, cfg.max_gate_fraction) {}

void FetchGatingPolicy::reset() {
  controller_.reset();
  gate_ = 0.0;
  last_time_ = util::Seconds(-1.0);
}

DtmCommand FetchGatingPolicy::update(const ThermalSample& sample) {
  if (cfg_.mode == FetchGatingConfig::Mode::kFixed) {
    gate_ = sample.max_sensed >= thresholds_.trigger
                ? cfg_.fixed_gate_fraction
                : 0.0;
  } else {
    const util::Seconds dt =
        last_time_.value() < 0.0
            ? util::Seconds(1e-4)
            : std::max(util::Seconds(1e-9), sample.time - last_time_);
    const util::CelsiusDelta error = sample.max_sensed - thresholds_.trigger;
    gate_ = controller_.update(error, dt);
  }
  last_time_ = sample.time;

  DtmCommand cmd;
  cmd.fetch_gate_fraction = gate_;
  return cmd;
}

}  // namespace hydra::core
