#include "core/hybrid_policy.h"

#include <algorithm>

#include "obs/obs.h"

namespace hydra::core {
namespace {

/// Escalation/release edge on the current System's sim lane.
void hybrid_event(const char* name, double time_seconds, double from,
                  double to) {
  obs::Tracer& tracer = obs::tracer();
  const std::uint32_t lane = obs::SimLaneScope::current();
  if (!tracer.enabled() || lane == obs::SimLaneScope::kNoLane) return;
  tracer.instant(lane, obs::TimeDomain::kSim, "policy", name,
                 time_seconds * 1e6, "from", from, "to", to);
}

}  // namespace

PiHybridPolicy::PiHybridPolicy(const power::DvsLadder& ladder,
                               DtmThresholds thresholds, HybridConfig cfg)
    : ladder_(ladder),
      thresholds_(thresholds),
      cfg_(cfg),
      // The controller's output range extends past the crossover so
      // saturation (anti-windup) cannot mask the crossover signal; the
      // applied gate fraction is clamped to the crossover separately.
      pi_(cfg.kp, cfg.ki, 0.0, 1.0),
      release_filter_(cfg.release_filter_samples) {}

void PiHybridPolicy::reset() {
  pi_.reset();
  release_filter_.reset();
  dvs_engaged_ = false;
  last_time_ = util::Seconds(-1.0);
}

DtmCommand PiHybridPolicy::update(const ThermalSample& sample) {
  const util::Seconds dt =
      last_time_.value() < 0.0
          ? util::Seconds(1e-4)
          : std::max(util::Seconds(1e-9), sample.time - last_time_);
  last_time_ = sample.time;
  const util::CelsiusDelta error = sample.max_sensed - thresholds_.trigger;

  DtmCommand cmd;
  if (!dvs_engaged_) {
    const double demand = pi_.update(error, dt);
    const double gate = std::min(demand, cfg_.crossover_gate_fraction);
    // Crossover: the controller demands more gating than ILP can hide,
    // so DVS's cubic power reduction is now the cheaper response.
    if (demand >
        cfg_.crossover_gate_fraction * (1.0 + cfg_.crossover_margin)) {
      dvs_engaged_ = true;
      release_filter_.reset();
      cmd.fetch_gate_fraction = 0.0;
      cmd.dvs_level = ladder_.lowest_level();
      static const obs::Counter escalations =
          obs::metrics().counter("policy.dvs_escalations");
      escalations.add();
      hybrid_event("pi_hybrid_dvs_engage", sample.time.value(), demand,
                   static_cast<double>(cmd.dvs_level));
    } else {
      cmd.fetch_gate_fraction = gate;
    }
  } else {
    const bool cool =
        sample.max_sensed < thresholds_.trigger - cfg_.hysteresis;
    if (release_filter_.update(cool)) {
      // Hand control back to the ILP technique, warm-starting the
      // integrator just below the crossover so regulation resumes
      // smoothly instead of re-triggering DVS on the next sample.
      dvs_engaged_ = false;
      pi_.set_integrator(0.8 * cfg_.crossover_gate_fraction);
      release_filter_.reset();
      cmd.fetch_gate_fraction = pi_.update(error, dt);
      hybrid_event("pi_hybrid_dvs_release", sample.time.value(),
                   sample.max_sensed.value(), cmd.fetch_gate_fraction);
    } else {
      cmd.dvs_level = ladder_.lowest_level();
    }
  }
  return cmd;
}

HybridPolicy::HybridPolicy(const power::DvsLadder& ladder,
                           DtmThresholds thresholds, HybridConfig cfg)
    : ladder_(ladder),
      thresholds_(thresholds),
      cfg_(cfg),
      release_filter_(cfg.release_filter_samples),
      escalate_filter_(cfg.escalate_filter_samples) {}

void HybridPolicy::reset() {
  release_filter_.reset();
  escalate_filter_.reset();
  level_ = 0;
}

DtmCommand HybridPolicy::update(const ThermalSample& sample) {
  const int prev_level = level_;
  const util::Celsius t1 = thresholds_.trigger;
  const util::Celsius t2 = thresholds_.trigger + cfg_.dvs_threshold_offset;

  // Engaging fetch gating is compulsory and immediate; the FG -> DVS
  // escalation is debounced against sensor-noise spikes. While the
  // debounce is pending, at least fetch gating stays engaged (and an
  // already-engaged DVS is not released, since above t2 the release
  // condition below cannot hold anyway).
  int desired;
  if (sample.max_sensed >= t2) {
    desired = escalate_filter_.update(true) ? 2 : std::max(level_, 1);
  } else {
    escalate_filter_.reset();
    desired = sample.max_sensed >= t1 ? 1 : 0;
  }

  if (desired > level_) {
    level_ = desired;
    release_filter_.reset();
  } else if (desired < level_) {
    if (level_ == 2) {
      // Leaving DVS costs a voltage switch, so it passes the debounce
      // filter (and drops to fetch gating first, never straight to
      // unthrottled).
      const bool cool = sample.max_sensed < t2 - cfg_.hysteresis;
      if (release_filter_.update(cool)) {
        level_ = 1;
        release_filter_.reset();
      }
    } else {
      // Fetch gating switches for free: the comparator acts directly.
      level_ = desired;
    }
  } else {
    release_filter_.reset();
  }

  if (level_ != prev_level) {
    if (level_ == 2) {
      static const obs::Counter escalations =
          obs::metrics().counter("policy.dvs_escalations");
      escalations.add();
    }
    hybrid_event("hybrid_level_change", sample.time.value(),
                 static_cast<double>(prev_level),
                 static_cast<double>(level_));
  }

  DtmCommand cmd;
  if (level_ == 1) {
    cmd.fetch_gate_fraction = cfg_.crossover_gate_fraction;
  } else if (level_ == 2) {
    cmd.dvs_level = ladder_.lowest_level();
  }
  return cmd;
}

}  // namespace hydra::core
