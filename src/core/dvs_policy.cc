#include "core/dvs_policy.h"

#include <algorithm>

namespace hydra::core {

DvsPolicy::DvsPolicy(const power::DvsLadder& ladder, DtmThresholds thresholds,
                     DvsPolicyConfig cfg)
    : ladder_(ladder),
      thresholds_(thresholds),
      cfg_(cfg),
      pi_(cfg.kp, cfg.ki, 0.0, 1.0),
      raise_filter_(cfg.raise_filter_samples) {}

void DvsPolicy::reset() {
  pi_.reset();
  raise_filter_.reset();
  level_ = 0;
  last_time_ = util::Seconds(-1.0);
}

std::size_t DvsPolicy::controller_level(const ThermalSample& sample) {
  const util::Seconds dt =
      last_time_.value() < 0.0
          ? util::Seconds(1e-4)
          : std::max(util::Seconds(1e-9), sample.time - last_time_);
  const util::CelsiusDelta error = sample.max_sensed - thresholds_.trigger;
  const double throttle = pi_.update(error, dt);
  const auto& top = ladder_.point(0);
  const auto& bottom = ladder_.point(ladder_.lowest_level());
  const util::Volts v_target =
      top.voltage - throttle * (top.voltage - bottom.voltage);
  return ladder_.level_at_or_below(v_target);
}

DtmCommand DvsPolicy::update(const ThermalSample& sample) {
  std::size_t desired = level_;
  switch (cfg_.mode) {
    case DvsPolicyConfig::Mode::kBinary:
      desired = sample.max_sensed >= thresholds_.trigger
                    ? ladder_.lowest_level()
                    : 0;
      break;
    case DvsPolicyConfig::Mode::kStepped:
    case DvsPolicyConfig::Mode::kContinuous:
      desired = controller_level(sample);
      break;
  }

  if (desired > level_) {
    // Lowering voltage: compulsory, immediate.
    level_ = desired;
    raise_filter_.reset();
  } else if (desired < level_) {
    // Raising voltage: pass the low-pass filter first.
    const bool cool_enough =
        sample.max_sensed < thresholds_.trigger - cfg_.hysteresis;
    if (raise_filter_.update(cool_enough)) {
      level_ = desired;
      raise_filter_.reset();
    }
  } else {
    raise_filter_.reset();
  }
  last_time_ = sample.time;

  DtmCommand cmd;
  cmd.dvs_level = level_;
  return cmd;
}

}  // namespace hydra::core
