#include "core/migration_policy.h"

namespace hydra::core {

MigrationDecision MigrationPolicy::update(
    const std::vector<TileThermalState>& tiles, util::Seconds time) {
  MigrationDecision decision;
  if (time.value() < next_eval_.value()) return decision;
  next_eval_ = time + cfg_.interval;

  // Hottest occupied tile and coolest idle tile, ties to lowest index.
  std::size_t hot = tiles.size();
  std::size_t cool = tiles.size();
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    if (tiles[t].occupied) {
      if (hot == tiles.size() ||
          tiles[t].tmax.value() > tiles[hot].tmax.value()) {
        hot = t;
      }
    } else {
      if (cool == tiles.size() ||
          tiles[t].tmax.value() < tiles[cool].tmax.value()) {
        cool = t;
      }
    }
  }
  if (hot == tiles.size() || cool == tiles.size()) return decision;
  if (tiles[hot].tmax.value() < cfg_.trigger.value()) return decision;
  if ((tiles[hot].tmax - tiles[cool].tmax).value() < cfg_.margin.value()) {
    return decision;
  }
  decision.migrate = true;
  decision.from = hot;
  decision.to = cool;
  return decision;
}

}  // namespace hydra::core
