// Global die-level power-budget arbiter.
//
// A many-core die is power-limited as a whole: the package/VRM cap is a
// die-level number, not a per-core one. The arbiter splits a die budget
// across occupied tiles each thermal interval and emits a per-tile
// *floor* command — a minimum fetch-gate fraction, escalating to a
// minimum DVS level when gating saturates — that composes with each
// core's local thermal policy by taking the maximum of the two demands
// (util::max semantics: the more aggressive actuation wins). Local DTM
// still protects each tile's hotspot; the arbiter protects the die cap.
//
// Allocation is equal-share with deterministic headroom redistribution:
// every occupied tile starts with budget / n_occupied; tiles drawing
// less than their share donate the surplus, which is split equally among
// the tiles over their share (one pass, fixed tile order — bit-identical
// regardless of thread count). Throttle control is integral: each over-
// allowance interval ratchets the tile's gate floor up proportionally to
// the relative overshoot, each under-allowance interval releases it, so
// the loop settles where measured power rides the allowance.
#pragma once

#include <cstddef>
#include <vector>

#include "util/units.h"

namespace hydra::core {

struct BudgetArbiterConfig {
  /// Die-level power cap. <= 0 disables the arbiter entirely.
  util::Watts die_budget{0.0};
  /// Gate-floor increase per unit of relative overshoot per update
  /// (integral gain). Dynamic power tracks duty cycle roughly linearly,
  /// so a gain near 1 would try to correct in one step; lower values
  /// trade response time for stability against interval-to-interval
  /// power noise.
  double gain = 0.35;
  /// Gate-floor decrease per update while under allowance.
  double release = 0.05;
  /// Gating ceiling before escalating to DVS. Matches the local
  /// policies' practical maximum duty cycle.
  double max_gate_fraction = 0.95;
  /// Consecutive saturated-and-over updates before raising the DVS
  /// floor one ladder level (and under-budget updates before lowering
  /// it). Debounces the discrete DVS step against power noise.
  std::size_t dvs_debounce_updates = 3;
};

/// Per-tile floor command; compose with the local policy by max().
struct ArbiterCommand {
  double fetch_gate_floor = 0.0;
  std::size_t dvs_floor = 0;  ///< minimum DVS ladder level
};

class BudgetArbiter {
 public:
  /// `dvs_levels` is the ladder size (dvs_floor stays < dvs_levels).
  BudgetArbiter(BudgetArbiterConfig cfg, std::size_t tiles,
                std::size_t dvs_levels);

  bool enabled() const { return cfg_.die_budget.value() > 0.0; }

  /// Run one arbitration round from the tiles' measured interval-average
  /// powers. Unoccupied tiles get (and need) no command. Deterministic:
  /// depends only on the argument values and prior update history.
  const std::vector<ArbiterCommand>& update(
      const std::vector<util::Watts>& tile_power,
      const std::vector<bool>& occupied);

  const std::vector<ArbiterCommand>& commands() const { return commands_; }

  /// Allowances computed by the last update (watts; 0 for idle tiles).
  /// Exposed for tests: allowances over occupied tiles sum to the die
  /// budget (equal shares plus redistributed headroom).
  const std::vector<util::Watts>& last_allowance() const {
    return allowance_;
  }

  void reset();

 private:
  BudgetArbiterConfig cfg_;
  std::size_t dvs_levels_;
  std::vector<ArbiterCommand> commands_;
  std::vector<util::Watts> allowance_;
  std::vector<std::size_t> over_streak_;
  std::vector<std::size_t> under_streak_;
};

}  // namespace hydra::core
