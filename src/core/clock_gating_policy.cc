#include "core/clock_gating_policy.h"

namespace hydra::core {

ClockGatingPolicy::ClockGatingPolicy(DtmThresholds thresholds,
                                     ClockGatingConfig cfg)
    : thresholds_(thresholds), cfg_(cfg) {}

DtmCommand ClockGatingPolicy::update(const ThermalSample& sample) {
  if (sample.max_sensed >= thresholds_.trigger) {
    engaged_ = true;
  } else if (sample.max_sensed < thresholds_.trigger - cfg_.hysteresis) {
    engaged_ = false;
  }
  DtmCommand cmd;
  cmd.clock_gate = engaged_;
  return cmd;
}

}  // namespace hydra::core
