// Dynamic voltage scaling DTM policy (paper Section 4.1).
//
// Three controller flavours:
//  * kBinary    — two comparators: at/above trigger drop to the low
//                 voltage, below it (debounced) return to nominal. The
//                 paper shows this is as good as any multi-step scheme.
//  * kStepped   — a PI controller picks the highest voltage that
//                 regulates temperature, quantised (conservatively, i.e.
//                 downwards) onto the ladder.
//  * kContinuous— the same PI controller on a dense ladder.
// Lowering the voltage is compulsory and immediate; raising it passes a
// low-pass (consecutive-sample debounce) filter so boundary fluttering
// does not thrash the setting — each change may stall the pipeline.
#pragma once

#include "control/low_pass.h"
#include "control/pi_controller.h"
#include "core/dtm_policy.h"
#include "power/voltage_freq.h"

namespace hydra::core {

struct DvsPolicyConfig {
  enum class Mode { kBinary, kStepped, kContinuous };
  Mode mode = Mode::kBinary;
  /// PI gains for the stepped/continuous modes, mapping temperature
  /// error onto the [0,1] throttle that interpolates Vnom -> Vlow.
  util::PerCelsius kp{0.12};
  util::PerCelsiusSecond ki{800.0};
  /// Consecutive below-trigger samples required before raising voltage.
  std::size_t raise_filter_samples = 3;
  /// Hysteresis below the trigger for raising voltage.
  util::CelsiusDelta hysteresis{0.3};
};

class DvsPolicy final : public DtmPolicy {
 public:
  DvsPolicy(const power::DvsLadder& ladder, DtmThresholds thresholds,
            DvsPolicyConfig cfg);

  DtmCommand update(const ThermalSample& sample) override;
  std::string_view name() const override { return "DVS"; }
  void reset() override;

  std::size_t current_level() const { return level_; }

 private:
  std::size_t controller_level(const ThermalSample& sample);

  power::DvsLadder ladder_;
  DtmThresholds thresholds_;
  DvsPolicyConfig cfg_;
  control::PiController pi_;
  control::ConsecutiveDebounce raise_filter_;
  std::size_t level_ = 0;
  util::Seconds last_time_{-1.0};
};

}  // namespace hydra::core
