// Thermal-aware thread migration across core tiles.
//
// The single-core paper's DTM slows the hot core down; a many-core die
// has a cheaper option first — move the hot thread to a cool idle tile
// and let the vacated silicon cool passively. This policy is the
// die-level decision function: given each tile's current hottest sensed
// temperature and whether a thread occupies it, it periodically nominates
// one (source, destination) pair. The MulticoreSystem applies the
// mechanism and charges the cost: both tiles stall for
// `cost_cycles`, the source's pipeline is flushed (squashed in-flight
// work), `flush_energy` is added to the source tile's next power
// interval, and the destination pays its cold-cache misses naturally.
//
// Decisions are deliberately conservative and deterministic: migrate only
// when the hottest occupied tile is at/above the DTM trigger AND an idle
// tile exists that is at least `margin` cooler; ties break to the lowest
// tile index. One migration per evaluation keeps the thermal response
// observable between moves (and makes the property "post-migration Tmax
// is bounded by pre-migration Tmax" testable interval by interval).
#pragma once

#include <cstddef>
#include <vector>

#include "core/dtm_policy.h"
#include "util/units.h"

namespace hydra::core {

struct MigrationConfig {
  /// Minimum time between migration evaluations. Far coarser than the
  /// sensor period: silicon thermal time constants are milliseconds, so
  /// evaluating faster than the die can respond just thrashes threads.
  util::Seconds interval{0.001};
  /// Context-switch stall charged to BOTH tiles (drain + state transfer).
  std::uint64_t cost_cycles = 10000;
  /// Energy of flushing/transferring architectural state, charged to the
  /// source tile's next thermal interval.
  util::Joules flush_energy{5e-6};
  /// Destination must be at least this much cooler than the source.
  /// Covers sensor noise plus the destination's imminent warm-up, so a
  /// move is only made when it buys real thermal headroom.
  util::CelsiusDelta margin{2.0};
  /// Migration only triggers at/above this source temperature (the DTM
  /// trigger): below it the local policy is not even engaged, so moving
  /// the thread buys nothing.
  util::Celsius trigger{81.8};
};

/// One tile's state as the policy sees it.
struct TileThermalState {
  util::Celsius tmax{};   ///< hottest sensed temperature on the tile
  bool occupied = false;  ///< a thread is currently bound to the tile
};

struct MigrationDecision {
  bool migrate = false;
  std::size_t from = 0;  ///< hottest occupied tile
  std::size_t to = 0;    ///< coolest idle tile
};

class MigrationPolicy {
 public:
  explicit MigrationPolicy(MigrationConfig cfg) : cfg_(cfg) {}

  /// Evaluate at sample time `time` (monotone). Returns at most one
  /// migration; between evaluation intervals always returns no-op.
  MigrationDecision update(const std::vector<TileThermalState>& tiles,
                           util::Seconds time);

  void reset() { next_eval_ = util::Seconds{0.0}; }

  const MigrationConfig& config() const { return cfg_; }

 private:
  MigrationConfig cfg_;
  util::Seconds next_eval_{0.0};
};

}  // namespace hydra::core
