#include "core/proactive_policy.h"

#include <algorithm>

namespace hydra::core {

ProactiveHybridPolicy::ProactiveHybridPolicy(const power::DvsLadder& ladder,
                                             DtmThresholds thresholds,
                                             ProactiveConfig cfg)
    : cfg_(cfg),
      inner_(ladder, thresholds, cfg.hybrid),
      slope_(cfg.slope_filter_alpha) {}

void ProactiveHybridPolicy::reset() {
  inner_.reset();
  slope_.reset();
  last_max_ = 0.0;
  last_time_ = -1.0;
}

DtmCommand ProactiveHybridPolicy::update(const ThermalSample& sample) {
  double predicted = sample.max_sensed;
  if (last_time_ >= 0.0) {
    const double dt = std::max(1e-12, sample.time_seconds - last_time_);
    const double raw_slope = (sample.max_sensed - last_max_) / dt;
    const double smoothed = slope_.update(raw_slope);
    predicted = sample.max_sensed + smoothed * cfg_.horizon_seconds;
  }
  last_max_ = sample.max_sensed;
  last_time_ = sample.time_seconds;

  ThermalSample ahead = sample;
  ahead.max_sensed = predicted;
  return inner_.update(ahead);
}

}  // namespace hydra::core
