#include "core/proactive_policy.h"

#include <algorithm>

namespace hydra::core {

ProactiveHybridPolicy::ProactiveHybridPolicy(const power::DvsLadder& ladder,
                                             DtmThresholds thresholds,
                                             ProactiveConfig cfg)
    : cfg_(cfg),
      inner_(ladder, thresholds, cfg.hybrid),
      slope_(cfg.slope_filter_alpha) {}

void ProactiveHybridPolicy::reset() {
  inner_.reset();
  slope_.reset();
  last_max_ = util::Celsius(0.0);
  last_time_ = util::Seconds(-1.0);
}

DtmCommand ProactiveHybridPolicy::update(const ThermalSample& sample) {
  util::Celsius predicted = sample.max_sensed;
  if (last_time_.value() >= 0.0) {
    const util::Seconds dt =
        std::max(util::Seconds(1e-12), sample.time - last_time_);
    const util::CelsiusPerSecond raw_slope =
        (sample.max_sensed - last_max_) / dt;
    const util::CelsiusPerSecond smoothed(slope_.update(raw_slope.value()));
    predicted = sample.max_sensed + smoothed * cfg_.horizon;
  }
  last_max_ = sample.max_sensed;
  last_time_ = sample.time;

  ThermalSample ahead = sample;
  ahead.max_sensed = predicted;
  return inner_.update(ahead);
}

}  // namespace hydra::core
