#include "core/budget_arbiter.h"

#include <algorithm>
#include <stdexcept>

namespace hydra::core {

BudgetArbiter::BudgetArbiter(BudgetArbiterConfig cfg, std::size_t tiles,
                             std::size_t dvs_levels)
    : cfg_(cfg),
      dvs_levels_(std::max<std::size_t>(dvs_levels, 1)),
      commands_(tiles),
      allowance_(tiles, util::Watts{0.0}),
      over_streak_(tiles, 0),
      under_streak_(tiles, 0) {
  if (cfg_.gain <= 0.0 || cfg_.release <= 0.0) {
    throw std::invalid_argument("arbiter gain/release must be positive");
  }
  if (cfg_.max_gate_fraction <= 0.0 || cfg_.max_gate_fraction > 1.0) {
    throw std::invalid_argument("arbiter max gate fraction in (0, 1]");
  }
}

const std::vector<ArbiterCommand>& BudgetArbiter::update(
    const std::vector<util::Watts>& tile_power,
    const std::vector<bool>& occupied) {
  const std::size_t n = commands_.size();
  if (tile_power.size() != n || occupied.size() != n) {
    throw std::invalid_argument("arbiter input size mismatch");
  }
  if (!enabled()) return commands_;

  std::size_t n_occ = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (occupied[t]) ++n_occ;
  }
  if (n_occ == 0) {
    std::fill(allowance_.begin(), allowance_.end(), util::Watts{0.0});
    return commands_;
  }

  // Pass 1: equal shares; under-share tiles donate their headroom.
  const util::Watts share{cfg_.die_budget.value() /
                          static_cast<double>(n_occ)};
  util::Watts surplus{0.0};
  std::size_t n_over = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (!occupied[t]) {
      allowance_[t] = util::Watts{0.0};
      continue;
    }
    allowance_[t] = share;
    if (tile_power[t].value() > share.value()) {
      ++n_over;
    } else {
      surplus = surplus + (share - tile_power[t]);
    }
  }
  // Pass 2: redistribute the pooled headroom equally among over-share
  // tiles. Fixed tile order, pure function of the inputs — deterministic
  // at any thread-pool width. (Donors keep their full share as
  // allowance: their throttle must never engage while under share.)
  if (n_over > 0 && surplus.value() > 0.0) {
    const util::Watts bonus{surplus.value() / static_cast<double>(n_over)};
    for (std::size_t t = 0; t < n; ++t) {
      if (occupied[t] && tile_power[t].value() > share.value()) {
        allowance_[t] = allowance_[t] + bonus;
      }
    }
  }

  // Pass 3: integral throttle toward each tile's allowance.
  for (std::size_t t = 0; t < n; ++t) {
    ArbiterCommand& cmd = commands_[t];
    if (!occupied[t]) {
      cmd = ArbiterCommand{};
      over_streak_[t] = 0;
      under_streak_[t] = 0;
      continue;
    }
    const double allow = allowance_[t].value();
    const double drawn = tile_power[t].value();
    if (drawn > allow) {
      under_streak_[t] = 0;
      const double overshoot = (drawn - allow) / allow;
      cmd.fetch_gate_floor = std::min(
          cfg_.max_gate_fraction, cmd.fetch_gate_floor + cfg_.gain * overshoot);
      const bool saturated = cmd.fetch_gate_floor >= cfg_.max_gate_fraction;
      over_streak_[t] = saturated ? over_streak_[t] + 1 : 0;
      if (saturated && over_streak_[t] >= cfg_.dvs_debounce_updates &&
          cmd.dvs_floor + 1 < dvs_levels_) {
        ++cmd.dvs_floor;
        over_streak_[t] = 0;
      }
    } else {
      over_streak_[t] = 0;
      ++under_streak_[t];
      cmd.fetch_gate_floor =
          std::max(0.0, cmd.fetch_gate_floor - cfg_.release);
      if (cmd.dvs_floor > 0 && cmd.fetch_gate_floor == 0.0 &&
          under_streak_[t] >= cfg_.dvs_debounce_updates) {
        --cmd.dvs_floor;
        under_streak_[t] = 0;
      }
    }
  }
  return commands_;
}

void BudgetArbiter::reset() {
  std::fill(commands_.begin(), commands_.end(), ArbiterCommand{});
  std::fill(allowance_.begin(), allowance_.end(), util::Watts{0.0});
  std::fill(over_streak_.begin(), over_streak_.end(), 0);
  std::fill(under_streak_.begin(), under_streak_.end(), 0);
}

}  // namespace hydra::core
