#include "core/guarded_policy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/obs.h"

namespace hydra::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Sim-time DTM event on the current System's trace lane (no-op when
/// tracing is off or no run is active on this thread).
void guard_event(const char* name, double time_seconds, double sensor) {
  obs::Tracer& tracer = obs::tracer();
  const std::uint32_t lane = obs::SimLaneScope::current();
  if (!tracer.enabled() || lane == obs::SimLaneScope::kNoLane) return;
  tracer.instant(lane, obs::TimeDomain::kSim, "guard", name,
                 time_seconds * 1e6, "sensor", sensor);
}

double median(std::vector<double>& xs) {
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  if (xs.size() % 2 == 1) return xs[mid];
  const double hi = xs[mid];
  const double lo = *std::max_element(xs.begin(), xs.begin() + mid);
  return 0.5 * (lo + hi);
}

}  // namespace

GuardedPolicy::GuardedPolicy(std::unique_ptr<DtmPolicy> inner,
                             DtmThresholds thresholds,
                             std::vector<std::vector<std::size_t>> neighbors,
                             GuardedPolicyConfig cfg)
    : inner_(std::move(inner)),
      thresholds_(thresholds),
      neighbors_(std::move(neighbors)),
      cfg_(cfg) {
  if (neighbors_.empty()) {
    throw std::invalid_argument("guarded policy needs at least one sensor");
  }
  for (const auto& list : neighbors_) {
    for (const std::size_t j : list) {
      if (j >= neighbors_.size()) {
        throw std::invalid_argument("adjacency index out of range");
      }
    }
  }
  if (cfg_.max_plausible <= cfg_.min_plausible ||
      cfg_.max_rate.value() <= 0.0 || cfg_.drift_cap.value() <= 0.0 ||
      cfg_.deviation_alpha <= 0.0 || cfg_.deviation_alpha > 1.0 ||
      cfg_.failsafe_lost_fraction <= 0.0 || cfg_.recovery_samples == 0 ||
      cfg_.suspect_samples == 0) {
    throw std::invalid_argument("bad guarded policy configuration");
  }
  name_ = "Guarded(";
  name_ += inner_ ? inner_->name() : std::string_view("none");
  name_ += ")";
  state_.resize(neighbors_.size());
}

void GuardedPolicy::reset() {
  state_.assign(state_.size(), SensorState{});
  failsafe_ = false;
  failsafe_ok_count_ = 0;
  failsafe_backoff_ = 1;
  last_time_ = util::Seconds(-1.0);
  stats_ = GuardStats{};
  if (inner_) inner_->reset();
}

std::size_t GuardedPolicy::quarantined_count() const {
  std::size_t n = 0;
  for (const SensorState& s : state_) n += s.quarantined ? 1 : 0;
  return n;
}

double GuardedPolicy::neighbor_median(std::size_t i,
                                      const std::vector<double>& raw) const {
  std::vector<double> vals;
  vals.reserve(neighbors_[i].size());
  for (const std::size_t j : neighbors_[i]) {
    if (!state_[j].quarantined && std::isfinite(raw[j])) {
      vals.push_back(raw[j]);
    }
  }
  // A median over fewer than three values is not robust to a single
  // corrupted neighbour (it would drag healthy sensors into quarantine
  // alongside the faulty one); pool the rest of the die instead.
  if (vals.size() < 3) {
    vals.clear();
    for (std::size_t j = 0; j < state_.size(); ++j) {
      if (j != i && !state_[j].quarantined && std::isfinite(raw[j])) {
        vals.push_back(raw[j]);
      }
    }
  }
  if (vals.empty()) return kNan;
  return median(vals);
}

DtmCommand GuardedPolicy::update(const ThermalSample& sample) {
  const std::size_t n = state_.size();
  if (sample.sensed_celsius.size() < n) {
    throw std::invalid_argument("thermal sample smaller than sensor count");
  }
  const std::vector<double>& raw = sample.sensed_celsius;
  const double dt =
      last_time_.value() >= 0.0 ? (sample.time - last_time_).value() : 0.0;
  last_time_ = sample.time;
  stats_.samples += 1;

  // Pass 1: per-sensor checks against the *previous* sample's quarantine
  // state, so voting is order-independent within a sample.
  std::vector<bool> quarantine_next(n);
  std::vector<double> sanitized(n);
  for (std::size_t i = 0; i < n; ++i) {
    SensorState& st = state_[i];
    const double x = raw[i];
    const bool finite = std::isfinite(x);
    const bool in_range = finite && x >= cfg_.min_plausible.value() &&
                          x <= cfg_.max_plausible.value();

    const double med = neighbor_median(i, raw);
    const double dev = (finite && std::isfinite(med)) ? x - med : kNan;

    if (!st.quarantined) {
      bool suspect = false;
      // Rate-of-change limit (skipped on the first sample).
      if (in_range && st.have_last && dt > 0.0) {
        const double max_step =
            cfg_.max_rate.value() * dt + cfg_.noise_margin.value();
        if (std::abs(x - st.last_raw) > max_step) suspect = true;
      }
      // Frozen-reading detector: with noise and quantisation enabled, a
      // healthy sensor virtually never repeats the exact value this long.
      if (cfg_.frozen_samples > 0 && in_range && st.have_last &&
          x == st.last_raw) {
        st.frozen_count += 1;
        if (st.frozen_count >= cfg_.frozen_samples) suspect = true;
      } else {
        st.frozen_count = 0;
      }
      // Cross-sensor vote: learn the reference deviation, then flag
      // readings whose smoothed deviation leaves the reference band.
      if (std::isfinite(dev)) {
        if (!st.ref_ready) {
          st.ref_dev += dev;
          st.ref_count += 1;
          if (st.ref_count >= cfg_.learn_samples) {
            st.ref_dev /= static_cast<double>(st.ref_count);
            st.ref_ready = true;
          }
        } else {
          if (!st.smoothed_primed) {
            st.smoothed_dev = dev;
            st.smoothed_primed = true;
          } else {
            st.smoothed_dev +=
                cfg_.deviation_alpha * (dev - st.smoothed_dev);
          }
          if (std::abs(st.smoothed_dev - st.ref_dev) >
              cfg_.drift_cap.value()) {
            suspect = true;
          }
        }
      }

      if (!in_range) {
        quarantine_next[i] = true;  // hard fault: no debounce
      } else if (suspect) {
        st.suspect_count += 1;
        quarantine_next[i] = st.suspect_count >= cfg_.suspect_samples;
      } else {
        st.suspect_count = 0;
        quarantine_next[i] = false;
      }
    } else {
      quarantine_next[i] = true;  // release decided below, estimate first
    }

    st.last_raw = x;
    st.have_last = finite;
  }

  // Pass 2: substitution and recovery for quarantined sensors.
  std::size_t quarantined = 0;
  bool no_estimate = false;
  for (std::size_t i = 0; i < n; ++i) {
    SensorState& st = state_[i];
    if (!quarantine_next[i]) {
      sanitized[i] = raw[i];
      continue;
    }
    if (!st.quarantined) {
      st.quarantined = true;
      st.recovery_count = 0;
      stats_.quarantine_entries += 1;
      static const obs::Counter entries =
          obs::metrics().counter("guard.quarantine_entries");
      entries.add();
      guard_event("quarantine_enter", sample.time.value(),
                  static_cast<double>(i));
    }
    const double med = neighbor_median(i, raw);
    if (std::isfinite(med)) {
      const double estimate = med + st.ref_dev;
      sanitized[i] = estimate + cfg_.substitution_margin.value();
      // Recovery: the raw reading must agree with the estimate for a
      // debounced run of samples; each relapse doubled the requirement.
      if (std::isfinite(raw[i]) &&
          std::abs(raw[i] - estimate) <= cfg_.recovery_band.value()) {
        st.recovery_count += 1;
        if (st.recovery_count >= cfg_.recovery_samples * st.backoff) {
          st.quarantined = false;
          st.suspect_count = 0;
          st.frozen_count = 0;
          st.smoothed_primed = false;
          st.backoff = std::min(st.backoff * 2, cfg_.backoff_max_factor);
          sanitized[i] = raw[i];
          guard_event("quarantine_exit", sample.time.value(),
                      static_cast<double>(i));
        }
      } else {
        st.recovery_count = 0;
      }
    } else {
      // Nothing left to vote with: force the inner policy to its maximal
      // response and let the watchdog engage below.
      sanitized[i] = thresholds_.emergency.value() + 1.0;
      no_estimate = true;
    }
    if (st.quarantined) {
      quarantined += 1;
      stats_.rejected_readings += 1;
    }
  }
  stats_.max_quarantined = std::max(stats_.max_quarantined, quarantined);

  // Watchdog: too many lost sensors -> fail-safe global clock gating.
  const bool overwhelmed =
      no_estimate ||
      static_cast<double>(quarantined) >
          cfg_.failsafe_lost_fraction * static_cast<double>(n);
  if (overwhelmed) {
    if (!failsafe_) {
      failsafe_ = true;
      stats_.failsafe_entries += 1;
      static const obs::Counter entries =
          obs::metrics().counter("guard.failsafe_entries");
      entries.add();
      guard_event("failsafe_engage", sample.time.value(),
                  static_cast<double>(quarantined));
    }
    failsafe_ok_count_ = 0;
  } else if (failsafe_) {
    failsafe_ok_count_ += 1;
    if (failsafe_ok_count_ >=
        cfg_.failsafe_release_samples * failsafe_backoff_) {
      failsafe_ = false;
      failsafe_backoff_ =
          std::min(failsafe_backoff_ * 2, cfg_.backoff_max_factor);
      guard_event("failsafe_release", sample.time.value(),
                  static_cast<double>(quarantined));
    }
  }
  if (failsafe_) stats_.failsafe_samples += 1;

  // Feed the inner policy the sanitised view (pessimism bias re-budgets
  // the margin consumed by sub-threshold faults).
  ThermalSample clean;
  clean.sensed_celsius = std::move(sanitized);
  for (double& v : clean.sensed_celsius) v += cfg_.pessimism_bias.value();
  clean.max_sensed = util::Celsius(*std::max_element(
      clean.sensed_celsius.begin(), clean.sensed_celsius.end()));
  clean.time = sample.time;

  DtmCommand cmd;
  if (inner_) cmd = inner_->update(clean);
  if (failsafe_) cmd.clock_gate = true;
  return cmd;
}

}  // namespace hydra::core
