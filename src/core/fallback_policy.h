// DEETM-style fallback hierarchy (Huang et al., Micro-33) — the class of
// techniques the paper explicitly contrasts hybrids against:
//
//   "Fallback techniques use a DTM technique until its ability to
//    control temperature is exhausted and an additional or alternative
//    technique is needed to prevent thermal violations. In contrast, the
//    hybrid technique we propose uses an ILP technique only while doing
//    so is optimal and then switches to DVS. As we show, this crossover
//    point is well before the ILP technique's cooling capability has
//    been exhausted."
//
// Implemented here so the contrast is measurable (bench/abl_fallback):
// fetch gating ramps all the way to its *cooling* limit (the maximum
// gating fraction) and DVS is added only when, at that limit, the
// temperature still approaches the emergency threshold.
#pragma once

#include "control/low_pass.h"
#include "control/pi_controller.h"
#include "core/dtm_policy.h"
#include "power/voltage_freq.h"

namespace hydra::core {

struct FallbackConfig {
  /// Integral gain of the fetch-gating stage.
  util::PerCelsiusSecond ki{600.0};
  util::PerCelsius kp{0.0};
  /// The exhaustion point of the ILP technique: gating beyond this has
  /// no additional cooling ability worth its cost.
  double max_gate_fraction = 0.75;
  /// DVS engages only when gating is saturated AND the sensed
  /// temperature is within this margin of the emergency threshold.
  util::CelsiusDelta emergency_margin{1.0};
  /// Debounced release of the DVS stage.
  std::size_t release_filter_samples = 3;
  util::CelsiusDelta hysteresis{0.3};
};

/// Escalate fetch gating to exhaustion; add DVS only in extremis.
class FallbackPolicy final : public DtmPolicy {
 public:
  FallbackPolicy(const power::DvsLadder& ladder, DtmThresholds thresholds,
                 FallbackConfig cfg);

  DtmCommand update(const ThermalSample& sample) override;
  std::string_view name() const override { return "Fallback"; }
  void reset() override;

  bool dvs_engaged() const { return dvs_engaged_; }

 private:
  power::DvsLadder ladder_;
  DtmThresholds thresholds_;
  FallbackConfig cfg_;
  control::PiController controller_;
  control::ConsecutiveDebounce release_filter_;
  bool dvs_engaged_ = false;
  util::Seconds last_time_{-1.0};
};

}  // namespace hydra::core
