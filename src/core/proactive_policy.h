// Proactive (predictive) hybrid DTM — an implementation of the paper's
// future-work direction ("techniques for predicting thermal stress and
// responding proactively, rather than waiting for actual thermal stress
// and responding reactively, may further reduce the overhead of DTM",
// citing Srinivasan & Adve's predictive DTM).
//
// The policy extends Hyb with a linear temperature predictor: each
// sensor sample updates a low-passed temperature slope, and the policy
// acts on the temperature *extrapolated* `horizon` seconds ahead instead
// of the current reading. Rising temperatures therefore engage fetch
// gating (and, if the rise is steep, DVS) before the trigger is crossed,
// trimming the overshoot that a reactive policy must leave margin for;
// falling temperatures release earlier for the same reason.
#pragma once

#include "control/low_pass.h"
#include "core/hybrid_policy.h"

namespace hydra::core {

struct ProactiveConfig {
  HybridConfig hybrid{};
  /// Prediction horizon (paper-time; scale with time acceleration).
  util::Seconds horizon{300e-6};
  /// Smoothing factor for the slope estimate (per sample).
  double slope_filter_alpha = 0.25;
};

/// Hyb with slope-based temperature prediction.
class ProactiveHybridPolicy final : public DtmPolicy {
 public:
  ProactiveHybridPolicy(const power::DvsLadder& ladder,
                        DtmThresholds thresholds, ProactiveConfig cfg);

  DtmCommand update(const ThermalSample& sample) override;
  std::string_view name() const override { return "Pro-Hyb"; }
  void reset() override;

  /// Last smoothed slope estimate, for diagnostics.
  util::CelsiusPerSecond slope() const {
    return util::CelsiusPerSecond(slope_.value());
  }

 private:
  ProactiveConfig cfg_;
  HybridPolicy inner_;
  control::FirstOrderLowPass slope_;
  util::Celsius last_max_{0.0};
  util::Seconds last_time_{-1.0};
};

}  // namespace hydra::core
