// Hybrid DTM policies — the paper's contribution (Sections 4.2, 5).
//
// The insight: under *mild* thermal stress an ILP technique (fetch
// gating) costs less than DVS because the out-of-order window hides the
// fetch bubbles, while under *severe* stress DVS wins through its
// roughly cubic power reduction. A hybrid uses fetch gating up to the
// crossover point — the gating level beyond which ILP is exhausted and
// slowdown starts rising in proportion to the duty cycle — and then
// switches to (binary) DVS. Unlike fallback schemes (DEETM), the switch
// happens at the *optimality* crossover, well before fetch gating's
// cooling ability is exhausted.
//
// Two implementations:
//  * PiHybridPolicy ("PI-Hyb"): a PI controller sets the gating fraction;
//    when its unclamped demand exceeds the crossover level, DVS engages.
//  * HybridPolicy ("Hyb"): no controller at all — two temperature
//    comparators. Between the trigger and a second threshold the fixed
//    crossover-level gating is applied; above the second threshold DVS
//    engages. The paper shows this sacrifices nothing (and is slightly
//    better under DVS-stall), eliminating feedback-control tuning risk.
#pragma once

#include "control/low_pass.h"
#include "control/pi_controller.h"
#include "core/dtm_policy.h"
#include "power/voltage_freq.h"

namespace hydra::core {

struct HybridConfig {
  /// The ILP/DVS crossover gating fraction. The paper's crossover is a
  /// maximum duty cycle of 3 — skip fetch once every three cycles —
  /// i.e. a gating fraction of 1/3 (for DVS-stall; 1/20 for DVS-ideal).
  double crossover_gate_fraction = 1.0 / 3.0;

  // --- PI-Hyb ---
  util::PerCelsius kp{0.0};
  util::PerCelsiusSecond ki{600.0};
  /// Unclamped-demand margin above the crossover before DVS engages.
  double crossover_margin = 0.15;

  // --- Hyb ---
  /// Second comparator threshold offset above the trigger: at or above
  /// trigger + dvs_threshold_offset, DVS engages. Sized to exceed the
  /// sensor noise amplitude (so the fetch-gating band is real) while
  /// keeping enough margin below the emergency threshold for the DVS
  /// response to land.
  util::CelsiusDelta dvs_threshold_offset{1.1};

  // Common release behaviour: de-escalation is debounced.
  util::CelsiusDelta hysteresis{0.3};
  std::size_t release_filter_samples = 3;
  /// Hyb: consecutive samples at/above the DVS threshold required before
  /// escalating from fetch gating to DVS. Sensor noise is uncorrelated
  /// between samples, so 2 suppresses pure-noise spikes while a real
  /// overshoot (which persists for many samples) escalates within one
  /// sensor period.
  std::size_t escalate_filter_samples = 2;
};

/// Feedback-controlled hybrid ("PI-Hyb").
class PiHybridPolicy final : public DtmPolicy {
 public:
  PiHybridPolicy(const power::DvsLadder& ladder, DtmThresholds thresholds,
                 HybridConfig cfg);

  DtmCommand update(const ThermalSample& sample) override;
  std::string_view name() const override { return "PI-Hyb"; }
  void reset() override;

  bool dvs_engaged() const { return dvs_engaged_; }

 private:
  power::DvsLadder ladder_;
  DtmThresholds thresholds_;
  HybridConfig cfg_;
  control::PiController pi_;
  control::ConsecutiveDebounce release_filter_;
  bool dvs_engaged_ = false;
  util::Seconds last_time_{-1.0};
};

/// Controller-free two-threshold hybrid ("Hyb").
class HybridPolicy final : public DtmPolicy {
 public:
  HybridPolicy(const power::DvsLadder& ladder, DtmThresholds thresholds,
               HybridConfig cfg);

  DtmCommand update(const ThermalSample& sample) override;
  std::string_view name() const override { return "Hyb"; }
  void reset() override;

  /// 0 = off, 1 = fetch gating, 2 = DVS.
  int escalation_level() const { return level_; }

 private:
  power::DvsLadder ladder_;
  DtmThresholds thresholds_;
  HybridConfig cfg_;
  control::ConsecutiveDebounce release_filter_;
  control::ConsecutiveDebounce escalate_filter_;
  int level_ = 0;
};

}  // namespace hydra::core
