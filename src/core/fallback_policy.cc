#include "core/fallback_policy.h"

#include <algorithm>

namespace hydra::core {

FallbackPolicy::FallbackPolicy(const power::DvsLadder& ladder,
                               DtmThresholds thresholds, FallbackConfig cfg)
    : ladder_(ladder),
      thresholds_(thresholds),
      cfg_(cfg),
      controller_(cfg.kp, cfg.ki, 0.0, cfg.max_gate_fraction),
      release_filter_(cfg.release_filter_samples) {}

void FallbackPolicy::reset() {
  controller_.reset();
  release_filter_.reset();
  dvs_engaged_ = false;
  last_time_ = util::Seconds(-1.0);
}

DtmCommand FallbackPolicy::update(const ThermalSample& sample) {
  const util::Seconds dt =
      last_time_.value() < 0.0
          ? util::Seconds(1e-4)
          : std::max(util::Seconds(1e-9), sample.time - last_time_);
  last_time_ = sample.time;
  const util::CelsiusDelta error = sample.max_sensed - thresholds_.trigger;
  const double gate = controller_.update(error, dt);

  DtmCommand cmd;
  cmd.fetch_gate_fraction = gate;

  // Fallback stage: only once fetch gating is saturated (its cooling
  // ability exhausted) and the emergency threshold is in sight.
  const bool saturated = gate >= cfg_.max_gate_fraction - 1e-9;
  const bool in_extremis =
      sample.max_sensed >= thresholds_.emergency - cfg_.emergency_margin;
  if (!dvs_engaged_) {
    if (saturated && in_extremis) {
      dvs_engaged_ = true;
      release_filter_.reset();
    }
  } else {
    const bool cool =
        sample.max_sensed < thresholds_.trigger - cfg_.hysteresis;
    if (release_filter_.update(cool)) {
      dvs_engaged_ = false;
      release_filter_.reset();
    }
  }
  cmd.dvs_level = dvs_engaged_ ? ladder_.lowest_level() : 0;
  return cmd;
}

}  // namespace hydra::core
