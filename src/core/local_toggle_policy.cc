#include "core/local_toggle_policy.h"

#include <algorithm>

namespace hydra::core {

LocalTogglePolicy::LocalTogglePolicy(DtmThresholds thresholds,
                                     LocalToggleConfig cfg)
    : thresholds_(thresholds),
      cfg_(cfg),
      controller_(cfg.kp, cfg.ki, 0.0, cfg.max_gate_fraction) {}

void LocalTogglePolicy::reset() {
  controller_.reset();
  gate_ = 0.0;
  last_time_ = util::Seconds(-1.0);
}

DtmCommand LocalTogglePolicy::update(const ThermalSample& sample) {
  const util::Seconds dt =
      last_time_.value() < 0.0
          ? util::Seconds(1e-4)
          : std::max(util::Seconds(1e-9), sample.time - last_time_);
  const util::CelsiusDelta error = sample.max_sensed - thresholds_.trigger;
  gate_ = controller_.update(error, dt);
  last_time_ = sample.time;

  DtmCommand cmd;
  cmd.issue_gate_fraction = gate_;
  return cmd;
}

}  // namespace hydra::core
