#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "util/csv.h"

namespace hydra::obs {
namespace {

/// Registry identity for thread-local shard caches. An address alone is
/// not enough (a destroyed registry's storage can be reused), so every
/// registry draws a process-unique serial.
std::atomic<std::uint64_t> g_registry_serial{1};

struct TlsShardRef {
  std::uint64_t serial = 0;
  void* shard = nullptr;
};

/// Per-thread map of registry serial -> shard. A plain vector: threads
/// touch one or two registries, so a linear scan beats any map.
thread_local std::vector<TlsShardRef> t_shards;

std::uint32_t find_or_register(std::vector<std::string>& names,
                               std::string_view name, std::size_t capacity,
                               const char* what) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<std::uint32_t>(i);
  }
  if (names.size() >= capacity) {
    throw std::length_error(std::string("obs registry: too many ") + what);
  }
  names.emplace_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

}  // namespace

void Counter::add(std::uint64_t n) const {
  if (reg_ == nullptr || !reg_->enabled()) return;
  reg_->add_counter(id_, n);
}

void Gauge::set(double v) const {
  if (reg_ == nullptr || !reg_->enabled()) return;
  reg_->set_gauge(id_, v);
}

void Histogram::record(double v) const {
  if (reg_ == nullptr || !reg_->enabled()) return;
  reg_->record_histogram(id_, v);
}

Registry::Registry()
    : serial_(g_registry_serial.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

Registry::Shard& Registry::local_shard() {
  for (const TlsShardRef& ref : t_shards) {
    if (ref.serial == serial_) return *static_cast<Shard*>(ref.shard);
  }
  auto owned = std::make_unique<Shard>();
  Shard* shard = owned.get();
  {
    const util::WriterLock lock(mu_);
    shards_.push_back(std::move(owned));
  }
  t_shards.push_back(TlsShardRef{serial_, shard});
  return *shard;
}

void Registry::add_counter(std::uint32_t id, std::uint64_t n) {
  local_shard().counters[id].fetch_add(n, std::memory_order_relaxed);
}

void Registry::set_gauge(std::uint32_t id, double v) {
  gauges_[id].store(v, std::memory_order_relaxed);
  gauge_set_[id].store(true, std::memory_order_relaxed);
}

void Registry::record_histogram(std::uint32_t id, double v) {
  // Bounds are immutable once the handle exists, so this read is safe
  // without the registry mutex.
  const std::size_t n_bounds = hist_bound_count_[id];
  const std::array<double, kMaxBounds>& bounds = hist_bounds_[id];
  std::size_t bucket = n_bounds;  // overflow unless a bound catches it
  for (std::size_t i = 0; i < n_bounds; ++i) {
    if (v <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  Shard& shard = local_shard();
  shard.hist_buckets[id * (kMaxBounds + 1) + bucket].fetch_add(
      1, std::memory_order_relaxed);
  // Owner-thread-only writer, so the CAS loop effectively never retries.
  std::atomic<double>& sum = shard.hist_sums[id];
  double cur = sum.load(std::memory_order_relaxed);
  while (!sum.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed)) {
  }
}

Counter Registry::counter(std::string_view name) {
  const util::WriterLock lock(mu_);
  return Counter(this,
                 find_or_register(counter_names_, name, kMaxCounters,
                                  "counters"));
}

Gauge Registry::gauge(std::string_view name) {
  const util::WriterLock lock(mu_);
  return Gauge(this,
               find_or_register(gauge_names_, name, kMaxGauges, "gauges"));
}

Histogram Registry::histogram(std::string_view name,
                              std::vector<double> bounds) {
  if (bounds.empty() || bounds.size() > kMaxBounds ||
      !std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::invalid_argument(
        "histogram bounds must be non-empty, sorted and at most " +
        std::to_string(kMaxBounds) + " long");
  }
  const util::WriterLock lock(mu_);
  for (std::size_t i = 0; i < hist_names_.size(); ++i) {
    if (hist_names_[i] == name) {
      if (hist_bound_count_[i] != bounds.size() ||
          !std::equal(bounds.begin(), bounds.end(),
                      hist_bounds_[i].begin())) {
        throw std::invalid_argument("histogram '" + std::string(name) +
                                    "' re-registered with different bounds");
      }
      return Histogram(this, static_cast<std::uint32_t>(i));
    }
  }
  if (hist_names_.size() >= kMaxHistograms) {
    throw std::length_error("obs registry: too many histograms");
  }
  const std::size_t id = hist_names_.size();
  hist_names_.emplace_back(name);
  hist_bound_count_[id] = bounds.size();
  std::copy(bounds.begin(), bounds.end(), hist_bounds_[id].begin());
  return Histogram(this, static_cast<std::uint32_t>(id));
}

MetricsSnapshot Registry::scrape() const {
  const util::ReaderLock lock(mu_);
  MetricsSnapshot snap;

  snap.counters.reserve(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters.emplace_back(counter_names_[i], total);
  }

  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    if (gauge_set_[i].load(std::memory_order_relaxed)) {
      snap.gauges.emplace_back(gauge_names_[i],
                               gauges_[i].load(std::memory_order_relaxed));
    }
  }

  for (std::size_t i = 0; i < hist_names_.size(); ++i) {
    HistogramSnapshot h;
    h.name = hist_names_[i];
    const std::size_t n_bounds = hist_bound_count_[i];
    h.bounds.assign(hist_bounds_[i].begin(),
                    hist_bounds_[i].begin() + n_bounds);
    h.buckets.assign(n_bounds + 1, 0);
    for (const auto& shard : shards_) {
      for (std::size_t b = 0; b <= n_bounds; ++b) {
        h.buckets[b] +=
            shard->hist_buckets[i * (kMaxBounds + 1) + b].load(
                std::memory_order_relaxed);
      }
      h.sum += shard->hist_sums[i].load(std::memory_order_relaxed);
    }
    for (const std::uint64_t b : h.buckets) h.count += b;
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void Registry::write_csv(std::ostream& out) const {
  const MetricsSnapshot snap = scrape();
  util::CsvWriter csv(out);
  csv.row({"kind", "name", "field", "value"});
  for (const auto& [name, value] : snap.counters) {
    csv.row({"counter", name, "total", std::to_string(value)});
  }
  for (const auto& [name, value] : snap.gauges) {
    csv.row({"gauge", name, "value", util::CsvWriter::format_double(value)});
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      const std::string field =
          b < h.bounds.size()
              ? "le_" + util::CsvWriter::format_double(h.bounds[b])
              : std::string("le_inf");
      csv.row({"histogram", h.name, field, std::to_string(h.buckets[b])});
    }
    csv.row({"histogram", h.name, "count", std::to_string(h.count)});
    csv.row({"histogram", h.name, "sum",
             util::CsvWriter::format_double(h.sum)});
  }
}

void Registry::reset() {
  const util::WriterLock lock(mu_);
  for (const auto& shard : shards_) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& b : shard->hist_buckets) b.store(0, std::memory_order_relaxed);
    for (auto& s : shard->hist_sums) s.store(0.0, std::memory_order_relaxed);
  }
  for (auto& g : gauges_) g.store(0.0, std::memory_order_relaxed);
  for (auto& s : gauge_set_) s.store(false, std::memory_order_relaxed);
}

}  // namespace hydra::obs
