// Near-zero-overhead metrics: counters, gauges and fixed-bucket
// histograms behind small value handles.
//
// Hot-path contract (the reason this exists instead of a mutex + map):
//  * record calls never allocate and never take a lock — each thread
//    writes its own shard of relaxed atomics, registered once per
//    (thread, registry) the first time that thread records;
//  * when the registry is disabled (the default) every record call is a
//    single relaxed atomic load and a branch, so instrumented hot loops
//    cost ~nothing in ordinary runs and stay allocation-free;
//  * scrape() merges the shards under the registry mutex; it is exact
//    once recording threads have quiesced (futures joined, pool idle)
//    and a consistent under-estimate while they are still running.
//
// Handles are registered by name (find-or-create, cheap but locking) and
// are meant to be cached in function-local statics at the call site:
//
//   static const obs::Counter hits =
//       obs::metrics().counter("run_cache.hits");
//   hits.add();
//
// Capacities are fixed (kMaxCounters etc.) so shards are flat arrays and
// the record path never chases a resizable container; registration past
// capacity throws.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace hydra::obs {

class Registry;

/// Monotone event count. add() is wait-free and allocation-free.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const;

 private:
  friend class Registry;
  Counter(Registry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  Registry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Last-writer-wins instantaneous value (pool width, config knobs, ...).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const;

 private:
  friend class Registry;
  Gauge(Registry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  Registry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Fixed-bucket histogram: bucket upper bounds are set at registration
/// (value v lands in the first bucket with v <= bound, or the implicit
/// overflow bucket). record() is wait-free and allocation-free.
class Histogram {
 public:
  Histogram() = default;
  void record(double v) const;

 private:
  friend class Registry;
  Histogram(Registry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  Registry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Merged view of one histogram (buckets.size() == bounds.size() + 1;
/// the final bucket is the overflow bucket).
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time merge of every metric in a registry.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;  ///< set gauges only
  std::vector<HistogramSnapshot> histograms;
};

class Registry {
 public:
  static constexpr std::size_t kMaxCounters = 256;
  static constexpr std::size_t kMaxGauges = 64;
  static constexpr std::size_t kMaxHistograms = 32;
  /// Finite bucket bounds per histogram (one overflow bucket is added).
  static constexpr std::size_t kMaxBounds = 15;

  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Find-or-register by name. Registration locks and may allocate;
  /// cache the returned handle (it stays valid for the registry's
  /// lifetime). Throws std::length_error past capacity and
  /// std::invalid_argument when a histogram is re-registered with
  /// different bounds or `bounds` is empty/unsorted/too long.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name, std::vector<double> bounds);

  MetricsSnapshot scrape() const;

  /// Flat CSV of the scrape: `kind,name,field,value` rows (counters one
  /// row each; histograms one row per bucket plus count/sum).
  void write_csv(std::ostream& out) const;

  /// Zero every value. Handles stay registered and valid. Only call
  /// while recording threads are quiesced.
  void reset();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::array<std::atomic<std::uint64_t>,
               kMaxHistograms * (kMaxBounds + 1)>
        hist_buckets{};
    std::array<std::atomic<double>, kMaxHistograms> hist_sums{};
  };

  /// This thread's shard, registering it on first use. Never called on
  /// the disabled path.
  Shard& local_shard();

  void add_counter(std::uint32_t id, std::uint64_t n);
  void set_gauge(std::uint32_t id, double v);
  void record_histogram(std::uint32_t id, double v);

  const std::uint64_t serial_;  ///< distinguishes registries in TLS caches

  std::atomic<bool> enabled_{false};

  /// Registration and reset write (WriterLock); scrape reads
  /// (ReaderLock) — scrapes from concurrent observers never serialize
  /// against each other, only against registration.
  mutable util::SharedMutex mu_;
  std::vector<std::string> counter_names_ HYDRA_GUARDED_BY(mu_);
  std::vector<std::string> gauge_names_ HYDRA_GUARDED_BY(mu_);
  std::vector<std::string> hist_names_ HYDRA_GUARDED_BY(mu_);
  // Deliberately unguarded: written exactly once at registration,
  // before the Histogram handle escapes, then read lock-free by
  // record_histogram on the hot path (the handle is the happens-before
  // edge — a thread can only record through a handle it was given).
  std::array<std::array<double, kMaxBounds>, kMaxHistograms> hist_bounds_{};
  std::array<std::size_t, kMaxHistograms> hist_bound_count_{};
  std::vector<std::unique_ptr<Shard>> shards_ HYDRA_GUARDED_BY(mu_);

  std::array<std::atomic<double>, kMaxGauges> gauges_{};
  std::array<std::atomic<bool>, kMaxGauges> gauge_set_{};
};

}  // namespace hydra::obs
