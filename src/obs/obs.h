// Process-wide observability: one metrics registry + one event tracer.
//
// Everything is off by default — a build with obs compiled in but never
// enabled behaves (and allocates) like a build without it; tools flip it
// on for `--trace`/`--metrics` runs. Call sites cache their handles:
//
//   static const obs::Counter hits =
//       obs::metrics().counter("run_cache.hits");
//   hits.add();
//
//   obs::ScopedSpan span(obs::tracer(), "engine", "run", "crafty/Hyb");
#pragma once

#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"

namespace hydra::obs {

class Observability {
 public:
  static Observability& instance();

  Registry& metrics() { return metrics_; }
  Tracer& tracer() { return tracer_; }

  void enable_all() {
    metrics_.set_enabled(true);
    tracer_.set_enabled(true);
  }
  void disable_all() {
    metrics_.set_enabled(false);
    tracer_.set_enabled(false);
  }

 private:
  Observability() = default;
  Registry metrics_;
  Tracer tracer_;
};

inline Registry& metrics() { return Observability::instance().metrics(); }
inline Tracer& tracer() { return Observability::instance().tracer(); }

}  // namespace hydra::obs
