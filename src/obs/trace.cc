#include "obs/trace.h"

#include <algorithm>
#include <cstring>

#include "util/csv.h"
#include "util/json.h"

namespace hydra::obs {
namespace {

std::atomic<std::uint64_t> g_tracer_serial{1};

struct TlsBufferRef {
  std::uint64_t serial = 0;
  void* buffer = nullptr;
};

thread_local std::vector<TlsBufferRef> t_buffers;

struct TlsLane {
  std::uint64_t serial = 0;
  std::uint32_t lane = SimLaneScope::kNoLane;
};

thread_local TlsLane t_thread_lane;

thread_local std::uint32_t t_sim_lane = SimLaneScope::kNoLane;

void copy_label(char (&dst)[TraceEvent::kLabelSize], std::string_view src) {
  const std::size_t n =
      std::min(src.size(), TraceEvent::kLabelSize - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

/// Chrome trace pids: one process for the wall-clock lanes, one process
/// per sim lane (offset by the lane id).
constexpr int kWallPid = 1;
constexpr int kSimPidBase = 1000;

}  // namespace

SimLaneScope::SimLaneScope(std::uint32_t lane) : prev_(t_sim_lane) {
  t_sim_lane = lane;
}

SimLaneScope::~SimLaneScope() { t_sim_lane = prev_; }

std::uint32_t SimLaneScope::current() { return t_sim_lane; }

Tracer::Tracer()
    : serial_(g_tracer_serial.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint32_t Tracer::new_lane(std::string name, TimeDomain domain) {
  const util::LockGuard lock(mu_);
  lanes_.push_back(Lane{std::move(name), domain});
  return static_cast<std::uint32_t>(lanes_.size() - 1);
}

std::uint32_t Tracer::thread_lane() {
  if (t_thread_lane.serial != serial_) {
    std::uint32_t id;
    {
      const util::LockGuard lock(mu_);
      id = static_cast<std::uint32_t>(lanes_.size());
      lanes_.push_back(
          Lane{"thread-" + std::to_string(id), TimeDomain::kWall});
    }
    t_thread_lane = TlsLane{serial_, id};
  }
  return t_thread_lane.lane;
}

void Tracer::set_thread_name(std::string name) {
  const std::uint32_t id = thread_lane();
  const util::LockGuard lock(mu_);
  lanes_[id].name = std::move(name);
}

Tracer::Buffer& Tracer::local_buffer() {
  for (const TlsBufferRef& ref : t_buffers) {
    if (ref.serial == serial_) return *static_cast<Buffer*>(ref.buffer);
  }
  auto owned = std::make_unique<Buffer>();
  Buffer* buffer = owned.get();
  {
    const util::LockGuard lock(mu_);
    buffers_.push_back(std::move(owned));
  }
  t_buffers.push_back(TlsBufferRef{serial_, buffer});
  return *buffer;
}

// Single-writer protocol the analysis cannot express: `buf` is this
// thread's own buffer, and the owner is the only thread that ever grows
// `chunks`, so its unlocked reads of the chunk list cannot race — the
// mutex exists for the quiesced readers (write_*/clear), which do lock.
TraceEvent& Tracer::append_begin(Buffer& buf)
    HYDRA_NO_THREAD_SAFETY_ANALYSIS {
  const std::size_t count = buf.count.load(std::memory_order_relaxed);
  const std::size_t chunk = count / kChunkEvents;
  if (chunk == buf.chunks.size()) {
    auto owned = std::make_unique<Chunk>();
    const util::LockGuard lock(buf.mu);
    buf.chunks.push_back(std::move(owned));
  }
  return buf.chunks[chunk]->events[count % kChunkEvents];
}

void Tracer::append_commit(Buffer& buf) {
  buf.count.store(buf.count.load(std::memory_order_relaxed) + 1,
                  std::memory_order_release);
}

void Tracer::instant(std::uint32_t lane, TimeDomain domain,
                     const char* category, const char* name, double ts_us,
                     const char* arg0_name, double arg0,
                     const char* arg1_name, double arg1) {
  if (!enabled() || lane == SimLaneScope::kNoLane) return;
  Buffer& buf = local_buffer();
  TraceEvent& e = append_begin(buf);
  e = TraceEvent{};
  e.ts_us = ts_us;
  e.category = category;
  e.name = name;
  e.arg0_name = arg0_name;
  e.arg0 = arg0;
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  e.lane = lane;
  e.phase = TraceEvent::Phase::kInstant;
  e.domain = domain;
  append_commit(buf);
}

void Tracer::counter(std::uint32_t lane, TimeDomain domain, const char* name,
                     double ts_us, double value) {
  if (!enabled() || lane == SimLaneScope::kNoLane) return;
  Buffer& buf = local_buffer();
  TraceEvent& e = append_begin(buf);
  e = TraceEvent{};
  e.ts_us = ts_us;
  e.category = "counter";
  e.name = name;
  e.arg0_name = "value";
  e.arg0 = value;
  e.lane = lane;
  e.phase = TraceEvent::Phase::kCounter;
  e.domain = domain;
  append_commit(buf);
}

void Tracer::complete(const char* category, const char* name,
                      std::string_view label, double start_us,
                      double dur_us) {
  if (!enabled()) return;
  const std::uint32_t lane = thread_lane();
  Buffer& buf = local_buffer();
  TraceEvent& e = append_begin(buf);
  e = TraceEvent{};
  e.ts_us = start_us;
  e.dur_us = dur_us;
  e.category = category;
  e.name = name;
  if (!label.empty()) copy_label(e.label, label);
  e.lane = lane;
  e.phase = TraceEvent::Phase::kComplete;
  e.domain = TimeDomain::kWall;
  append_commit(buf);
}

std::size_t Tracer::size() const {
  const util::LockGuard lock(mu_);
  std::size_t total = 0;
  for (const auto& buf : buffers_) {
    total += buf->count.load(std::memory_order_acquire);
  }
  return total;
}

void Tracer::clear() {
  const util::LockGuard lock(mu_);
  for (const auto& buf : buffers_) {
    Buffer& b = *buf;
    const util::LockGuard buf_lock(b.mu);
    b.count.store(0, std::memory_order_release);
    b.chunks.clear();
  }
}

template <typename Fn>
void Tracer::for_each_event(Fn&& fn) const {
  for (const auto& buf : buffers_) {
    Buffer& b = *buf;
    const util::LockGuard buf_lock(b.mu);
    const std::size_t count = b.count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < count; ++i) {
      fn(b.chunks[i / kChunkEvents]->events[i % kChunkEvents]);
    }
  }
}

void Tracer::write_chrome_json(std::ostream& out) const {
  const util::LockGuard lock(mu_);
  util::JsonWriter w(out, 0);
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();

  // Metadata: process names per time domain (one process per sim lane)
  // and thread names per wall lane.
  w.begin_object();
  w.key("name").value("process_name");
  w.key("ph").value("M");
  w.key("pid").value(kWallPid);
  w.key("args").begin_object();
  w.key("name").value("wall clock");
  w.end_object();
  w.end_object();
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    w.begin_object();
    if (lanes_[i].domain == TimeDomain::kSim) {
      w.key("name").value("process_name");
      w.key("ph").value("M");
      w.key("pid").value(kSimPidBase + static_cast<int>(i));
      w.key("args").begin_object();
      w.key("name").value("sim: " + lanes_[i].name);
      w.end_object();
    } else {
      w.key("name").value("thread_name");
      w.key("ph").value("M");
      w.key("pid").value(kWallPid);
      w.key("tid").value(static_cast<int>(i));
      w.key("args").begin_object();
      w.key("name").value(lanes_[i].name);
      w.end_object();
    }
    w.end_object();
  }

  for_each_event([&w](const TraceEvent& e) {
    w.begin_object();
    w.key("name").value(e.label[0] != '\0' ? e.label : e.name);
    w.key("cat").value(e.category);
    w.key("ph").value(std::string(1, static_cast<char>(e.phase)));
    if (e.domain == TimeDomain::kSim) {
      w.key("pid").value(kSimPidBase + static_cast<int>(e.lane));
      w.key("tid").value(0);
    } else {
      w.key("pid").value(kWallPid);
      w.key("tid").value(static_cast<int>(e.lane));
    }
    w.key("ts").value(e.ts_us);
    if (e.phase == TraceEvent::Phase::kComplete) {
      w.key("dur").value(e.dur_us);
    }
    if (e.phase == TraceEvent::Phase::kInstant) w.key("s").value("t");
    if (e.arg0_name != nullptr || e.arg1_name != nullptr) {
      w.key("args").begin_object();
      if (e.arg0_name != nullptr) w.key(e.arg0_name).value(e.arg0);
      if (e.arg1_name != nullptr) w.key(e.arg1_name).value(e.arg1);
      w.end_object();
    }
    w.end_object();
  });

  w.end_array();
  w.end_object();
  out << '\n';
}

void Tracer::write_csv(std::ostream& out) const {
  const util::LockGuard lock(mu_);
  // Snapshot the lane names before the loop: the lambda below is
  // analyzed as its own function, which cannot see the lock held here,
  // so it must not touch mu_-guarded members directly.
  std::vector<std::string> lane_names;
  lane_names.reserve(lanes_.size());
  for (const Lane& lane : lanes_) lane_names.push_back(lane.name);
  util::CsvWriter csv(out);
  csv.row({"domain", "lane", "lane_name", "phase", "category", "name",
           "ts_us", "dur_us", "arg0_name", "arg0", "arg1_name", "arg1"});
  for_each_event([&csv, &lane_names](const TraceEvent& e) {
    csv.row({e.domain == TimeDomain::kSim ? "sim" : "wall",
             std::to_string(e.lane),
             e.lane < lane_names.size() ? lane_names[e.lane] : "",
             std::string(1, static_cast<char>(e.phase)), e.category,
             e.label[0] != '\0' ? e.label : e.name,
             util::CsvWriter::format_double(e.ts_us),
             util::CsvWriter::format_double(e.dur_us),
             e.arg0_name != nullptr ? e.arg0_name : "",
             util::CsvWriter::format_double(e.arg0),
             e.arg1_name != nullptr ? e.arg1_name : "",
             util::CsvWriter::format_double(e.arg1)});
  });
}

}  // namespace hydra::obs
