#include "obs/obs.h"

#include <cstdio>

#include "util/thread_pool.h"

namespace hydra::obs {

Observability& Observability::instance() {
  static Observability obs;
  // Name pool workers' trace lanes. Installed here (after `obs` is
  // constructed, so the hook may safely call instance() from a worker)
  // and only once; workers spawned before the first obs use keep their
  // default "thread-N" lane names.
  static const bool hook_installed = [] {
    util::ThreadPool::set_worker_start_hook(+[](std::size_t index) {
      char name[32];
      std::snprintf(name, sizeof(name), "pool-worker-%zu", index);
      Observability::instance().tracer().set_thread_name(name);
    });
    return true;
  }();
  (void)hook_installed;
  return obs;
}

}  // namespace hydra::obs
