// Structured event tracing: DTM/thermal events and profiling spans,
// exported as Chrome trace-event JSON (chrome://tracing / Perfetto) and
// as a flat CSV.
//
// Two time domains share one trace:
//  * kWall — host wall-clock microseconds since the tracer's epoch.
//    Profiling spans (per-job runs, model builds, run phases) live here,
//    one lane per thread, so the Perfetto view shows pool occupancy.
//  * kSim — simulated seconds (emitted as microseconds). Every System
//    run opens its own sim lane, rendered as its own Perfetto process,
//    so concurrent memoized runs do not interleave on one timeline.
//    DTM events (DVS transitions, policy engage, emergencies,
//    quarantines) and counter tracks (temperature, duty, power) live
//    here.
//
// Recording is designed for the simulator's hot loops: when disabled
// (the default) every record call is one relaxed atomic load and a
// branch, no allocation. When enabled, each thread appends to its own
// chunked buffer — plain stores published by a release on the buffer
// count, a mutex touched only when a chunk fills (every
// kChunkEvents records). Event name/category strings must have static
// lifetime; per-event dynamic text goes into the fixed `label` field.
//
// write_*/clear are meant for quiesced traces (runs joined, pool idle);
// concurrent recorders are not corrupted but may be partially missed.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace hydra::obs {

enum class TimeDomain : std::uint8_t { kWall, kSim };

struct TraceEvent {
  enum class Phase : char {
    kComplete = 'X',  ///< span with duration
    kInstant = 'i',   ///< point event
    kCounter = 'C',   ///< counter-track sample
  };
  static constexpr std::size_t kLabelSize = 40;

  double ts_us = 0.0;
  double dur_us = 0.0;                 ///< kComplete only
  const char* category = "";           ///< static-lifetime string
  const char* name = "";               ///< static-lifetime string
  char label[kLabelSize] = {};         ///< optional dynamic name override
  const char* arg0_name = nullptr;
  double arg0 = 0.0;
  const char* arg1_name = nullptr;
  double arg1 = 0.0;
  std::uint32_t lane = 0;
  Phase phase = Phase::kInstant;
  TimeDomain domain = TimeDomain::kWall;
};

class Tracer {
 public:
  static constexpr std::size_t kChunkEvents = 1024;

  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Host wall-clock microseconds since the tracer's construction.
  double now_us() const;

  /// Open a named lane. kWall lanes render as threads of the wall-clock
  /// process; kSim lanes render as their own process. Locks; not for
  /// hot paths (one call per run / per thread).
  std::uint32_t new_lane(std::string name, TimeDomain domain);

  /// This thread's wall lane, created as "thread-N" on first use.
  std::uint32_t thread_lane();

  /// Rename this thread's wall lane (e.g. "pool-worker-3"). Cheap to
  /// call unconditionally; the name also applies to later traces.
  void set_thread_name(std::string name);

  // --- Recording (wait-free, allocation-free off chunk boundaries) ---
  void instant(std::uint32_t lane, TimeDomain domain, const char* category,
               const char* name, double ts_us,
               const char* arg0_name = nullptr, double arg0 = 0.0,
               const char* arg1_name = nullptr, double arg1 = 0.0);
  /// One sample of the counter track `name` (value plotted over time).
  void counter(std::uint32_t lane, TimeDomain domain, const char* name,
               double ts_us, double value);
  /// A completed wall-clock span on this thread's lane. `label`, when
  /// non-empty, overrides `name` in the viewer (truncated to fit).
  void complete(const char* category, const char* name,
                std::string_view label, double start_us, double dur_us);

  std::size_t size() const;  ///< events recorded since the last clear()
  void clear();

  void write_chrome_json(std::ostream& out) const;
  void write_csv(std::ostream& out) const;

 private:
  struct Chunk {
    std::array<TraceEvent, kChunkEvents> events;
  };
  struct Buffer {
    /// Guards chunk-list growth and readers. The owning thread also
    /// reads `chunks` lock-free in append_begin — the single-writer
    /// protocol documented there.
    mutable util::Mutex mu;
    std::vector<std::unique_ptr<Chunk>> chunks HYDRA_GUARDED_BY(mu);
    std::atomic<std::size_t> count{0};
  };

  Buffer& local_buffer();
  /// Slot for the next event in `buf`. The caller fills it and then
  /// calls append_commit, which publishes it with a release store.
  TraceEvent& append_begin(Buffer& buf);
  void append_commit(Buffer& buf);

  template <typename Fn>
  void for_each_event(Fn&& fn) const HYDRA_REQUIRES(mu_);

  const std::uint64_t serial_;
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;

  mutable util::Mutex mu_;  ///< lanes + buffer list
  struct Lane {
    std::string name;
    TimeDomain domain = TimeDomain::kWall;
  };
  std::vector<Lane> lanes_ HYDRA_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Buffer>> buffers_ HYDRA_GUARDED_BY(mu_);
};

/// Scoped thread-local "current simulated-time lane": a System sets it
/// for the duration of its run so deep layers (policies, the fault
/// injector) can emit sim-time events without a lane threaded through
/// every call. kNoLane (the default) makes those emitters no-ops.
class SimLaneScope {
 public:
  static constexpr std::uint32_t kNoLane = 0xffffffffu;

  explicit SimLaneScope(std::uint32_t lane);
  ~SimLaneScope();

  SimLaneScope(const SimLaneScope&) = delete;
  SimLaneScope& operator=(const SimLaneScope&) = delete;

  static std::uint32_t current();

 private:
  std::uint32_t prev_;
};

}  // namespace hydra::obs
