// RAII profiling hooks: wall-clock spans recorded on the current
// thread's trace lane.
//
// A span costs one enabled-check when tracing is off. When on, it reads
// the clock twice and appends one complete ('X') event on destruction,
// so wrapping a phase or a pool job is safe anywhere outside the
// per-cycle loop.
#pragma once

#include <string_view>

#include "obs/trace.h"

namespace hydra::obs {

class ScopedSpan {
 public:
  /// `category`/`name` need static lifetime; `label` (optional dynamic
  /// text, e.g. "crafty/Hyb") is copied into a fixed buffer. A tracer
  /// disabled at construction makes the span a no-op even if tracing is
  /// enabled before destruction (no half-open spans).
  ScopedSpan(Tracer& tracer, const char* category, const char* name,
             std::string_view label = {})
      : tracer_(tracer.enabled() ? &tracer : nullptr),
        category_(category),
        name_(name) {
    if (tracer_ == nullptr) return;
    const std::size_t n =
        label.size() < sizeof(label_) ? label.size() : sizeof(label_) - 1;
    for (std::size_t i = 0; i < n; ++i) label_[i] = label[i];
    label_[n] = '\0';
    start_us_ = tracer_->now_us();
  }

  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    tracer_->complete(category_, name_, label_, start_us_,
                      tracer_->now_us() - start_us_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* category_;
  const char* name_;
  char label_[TraceEvent::kLabelSize] = {};
  double start_us_ = 0.0;
};

}  // namespace hydra::obs
