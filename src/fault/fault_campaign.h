// Sensor-fault campaign: a deterministic, seedable schedule of per-sensor
// fault events.
//
// The paper's sensor model (Section 3) covers only benign imperfection —
// Gaussian noise and a fixed offset. Real on-chip sensors also fail:
// they stick, die, drift out of calibration, pick up supply noise, or
// return stale values when their digital readout path stalls. A campaign
// describes *when* and *how* each sensor misbehaves so that DTM policies
// can be stress-tested against sensor failure, not just sensor noise.
//
// Campaigns are written in a small line-oriented text format ('#' starts
// a comment):
//
//   <sensor> <kind> <start_s> <duration_s> [magnitude] [probability]
//
//   IntReg  stuck_at  0.0005  inf   40        # reads 40 C forever
//   Dcache  dead      0.001   0.002           # NaN for 2 ms
//   all     burst_noise 0.0   0.001 5.0       # +sigma=5 C on every sensor
//   7       spike     0.0     inf   30 0.01   # +30 C glitch, 1 % of samples
//
// `sensor` is a block name, a numeric index, or `all`. Times are in
// paper-time seconds relative to the start of the *measured* window
// (negative starts cover warm-up). `inf` means "until the end of the
// run". Magnitude is kind-specific: stuck value [C], drift rate [C/s],
// extra noise sigma [C] or spike height [C]; it is ignored for dead and
// stale faults.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hydra::fault {

enum class FaultKind {
  kStuckAt,     ///< reading pinned to a constant value
  kDead,        ///< reading is NaN (sensor absent from the readout chain)
  kStale,       ///< reading frozen at the last pre-fault output
  kDrift,       ///< reading ramps away from truth at a constant rate
  kBurstNoise,  ///< extra Gaussian noise on top of the normal model
  kSpike,       ///< occasional single-sample outliers of fixed height
};

inline constexpr std::size_t kNumFaultKinds = 6;

std::string_view fault_kind_name(FaultKind kind);

/// Parse a kind token ("stuck_at", "dead", ...). Throws
/// std::invalid_argument on an unknown token.
FaultKind parse_fault_kind(std::string_view token);

/// One scheduled fault on one sensor.
struct FaultEvent {
  std::size_t sensor = 0;  ///< sensor (= block) index
  FaultKind kind = FaultKind::kStuckAt;
  /// Start time [s, paper-time] relative to the measured window's start.
  double start_seconds = 0.0;
  /// Duration [s, paper-time]; infinity = until the end of the run.
  double duration_seconds = 0.0;
  /// Kind-specific magnitude: stuck value [C], drift rate [C/s], burst
  /// noise sigma [C], spike height [C]. Unused for dead/stale.
  double magnitude = 0.0;
  /// kSpike only: per-sample probability of a spike.
  double probability = 1.0;

  double end_seconds() const { return start_seconds + duration_seconds; }
  bool active(double t) const {
    return t >= start_seconds && t < end_seconds();
  }
};

/// An immutable schedule of fault events plus the seed for the stochastic
/// fault realisations (burst noise draws, spike timing). Two campaigns
/// with the same events and seed inject bit-identical corruption.
class FaultCampaign {
 public:
  FaultCampaign() = default;
  explicit FaultCampaign(std::vector<FaultEvent> events,
                         std::uint64_t seed = 0xFA017);

  /// Parse the text format described above. `sensor_names` maps name
  /// tokens to indices (typically the floorplan block names). A
  /// `seed = <n>` line overrides the campaign seed. Throws
  /// std::invalid_argument with line context on any malformed input,
  /// including non-finite times/magnitudes where they are not allowed.
  static FaultCampaign from_string(
      std::string_view text,
      const std::vector<std::string_view>& sensor_names);

  /// Load from a file via from_string. Throws std::runtime_error when
  /// the file cannot be read; parse errors carry "<path>:<line>" context.
  static FaultCampaign from_file(
      const std::string& path,
      const std::vector<std::string_view>& sensor_names);

  const std::vector<FaultEvent>& events() const { return events_; }
  std::uint64_t seed() const { return seed_; }
  bool empty() const { return events_.empty(); }

  /// True if any event is active at time `t` [s, paper-time, relative to
  /// the measured window].
  bool any_active(double t) const;

  /// Largest sensor index referenced, or 0 for an empty campaign.
  std::size_t max_sensor() const;

  /// Canonical text serialisation (round-trips through from_string given
  /// the same name table).
  std::string to_string(
      const std::vector<std::string_view>& sensor_names) const;

 private:
  std::vector<FaultEvent> events_;
  std::uint64_t seed_ = 0xFA017;
};

}  // namespace hydra::fault
