#include "fault/fault_injector.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/obs.h"

namespace hydra::fault {

FaultInjector::FaultInjector(sensor::SensorBank& bank, FaultCampaign campaign,
                             double time_scale)
    : bank_(bank),
      campaign_(std::move(campaign)),
      time_scale_(time_scale),
      rng_(campaign_.seed()) {
  if (time_scale <= 0.0) {
    throw std::invalid_argument("fault injector time_scale must be positive");
  }
  if (!campaign_.empty() && campaign_.max_sensor() >= bank.count()) {
    throw std::invalid_argument("fault campaign references sensor " +
                                std::to_string(campaign_.max_sensor()) +
                                " but the bank has " +
                                std::to_string(bank.count()));
  }
  last_output_.assign(bank.count(), 0.0);
}

std::vector<double> FaultInjector::sample(const std::vector<double>& truth,
                                          double t) {
  std::vector<double> out;
  sample_into(truth, t, out);
  return out;
}

void FaultInjector::sample_into(const std::vector<double>& truth, double t,
                                std::vector<double>& out) {
  const std::size_t n = bank_.count();
  if (truth.size() < n) {
    throw std::invalid_argument("truth vector shorter than sensor bank");
  }
  const double ct = armed_ ? to_campaign_time(t)
                           : -std::numeric_limits<double>::infinity();
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // First active event for this sensor wins; overlapping faults on one
    // sensor are not composed (the earliest-starting one is in effect).
    const FaultEvent* active = nullptr;
    for (const FaultEvent& e : campaign_.events()) {
      if (e.sensor == i && e.active(ct)) {
        active = &e;
        break;
      }
    }
    if (active == nullptr) {
      out[i] = bank_.sample_one(i, truth[i]);
    } else {
      counters_.faulted_samples += 1;
      counters_.by_kind[static_cast<std::size_t>(active->kind)] += 1;
      static const obs::Counter faulted =
          obs::metrics().counter("fault.faulted_samples");
      faulted.add();
      switch (active->kind) {
        case FaultKind::kStuckAt:
          out[i] = active->magnitude;
          break;
        case FaultKind::kDead:
          out[i] = std::numeric_limits<double>::quiet_NaN();
          break;
        case FaultKind::kStale:
          // Hold the last emitted reading; if the fault starts on the
          // very first sample there is no history, so emit the healthy
          // reading once and freeze on it.
          out[i] = have_last_ ? last_output_[i]
                              : bank_.sample_one(i, truth[i]);
          break;
        case FaultKind::kDrift: {
          const double elapsed = ct - active->start_seconds;  // paper-time
          out[i] = bank_.sample_one(i, truth[i]) +
                   active->magnitude * elapsed;
          break;
        }
        case FaultKind::kBurstNoise:
          out[i] = bank_.sample_one(i, truth[i]) +
                   rng_.gaussian(0.0, active->magnitude);
          break;
        case FaultKind::kSpike: {
          const double clean = bank_.sample_one(i, truth[i]);
          out[i] = rng_.chance(active->probability)
                       ? clean + active->magnitude
                       : clean;
          break;
        }
      }
    }
  }
  last_output_ = out;
  have_last_ = true;
}

}  // namespace hydra::fault
