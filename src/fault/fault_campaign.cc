#include "fault/fault_campaign.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace hydra::fault {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

[[noreturn]] void parse_fail(int line_no, const std::string& what) {
  throw std::invalid_argument("fault campaign line " +
                              std::to_string(line_no) + ": " + what);
}

/// Parse a double token, accepting "inf" where `allow_inf` is set and
/// rejecting NaN and trailing garbage.
double parse_number(const std::string& token, int line_no,
                    const char* field, bool allow_inf) {
  if (token == "inf" || token == "+inf") {
    if (allow_inf) return kInf;
    parse_fail(line_no, std::string(field) + " may not be infinite");
  }
  double v = 0.0;
  std::size_t consumed = 0;
  try {
    v = std::stod(token, &consumed);
  } catch (const std::exception&) {
    parse_fail(line_no, std::string("cannot parse ") + field + " '" + token +
                            "' as a number");
  }
  if (consumed != token.size()) {
    parse_fail(line_no, std::string("trailing characters in ") + field +
                            " '" + token + "'");
  }
  if (std::isnan(v) || (!allow_inf && std::isinf(v))) {
    parse_fail(line_no,
               std::string(field) + " must be finite, got '" + token + "'");
  }
  return v;
}

std::size_t resolve_sensor(const std::string& token, int line_no,
                           const std::vector<std::string_view>& names) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == token) return i;
  }
  // Fall back to a numeric index.
  try {
    std::size_t consumed = 0;
    const unsigned long idx = std::stoul(token, &consumed);
    if (consumed == token.size() && idx < names.size()) return idx;
  } catch (const std::exception&) {
  }
  parse_fail(line_no, "unknown sensor '" + token + "'");
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStuckAt:
      return "stuck_at";
    case FaultKind::kDead:
      return "dead";
    case FaultKind::kStale:
      return "stale";
    case FaultKind::kDrift:
      return "drift";
    case FaultKind::kBurstNoise:
      return "burst_noise";
    case FaultKind::kSpike:
      return "spike";
  }
  return "?";
}

FaultKind parse_fault_kind(std::string_view token) {
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    if (fault_kind_name(kind) == token) return kind;
  }
  throw std::invalid_argument("unknown fault kind '" + std::string(token) +
                              "'");
}

FaultCampaign::FaultCampaign(std::vector<FaultEvent> events,
                             std::uint64_t seed)
    : events_(std::move(events)), seed_(seed) {
  for (const FaultEvent& e : events_) {
    if (std::isnan(e.start_seconds) || std::isnan(e.duration_seconds) ||
        e.duration_seconds <= 0.0) {
      throw std::invalid_argument("fault event needs a positive duration");
    }
    if (!std::isfinite(e.magnitude)) {
      throw std::invalid_argument("fault magnitude must be finite");
    }
    if (e.probability <= 0.0 || e.probability > 1.0) {
      throw std::invalid_argument("fault probability must be in (0, 1]");
    }
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.start_seconds < b.start_seconds;
                   });
}

FaultCampaign FaultCampaign::from_string(
    std::string_view text, const std::vector<std::string_view>& names) {
  std::vector<FaultEvent> events;
  std::uint64_t seed = FaultCampaign().seed_;
  std::istringstream in{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string first;
    if (!(fields >> first)) continue;  // blank line

    if (first == "seed") {
      std::string eq_or_value;
      if (!(fields >> eq_or_value)) parse_fail(line_no, "seed needs a value");
      if (eq_or_value == "=" && !(fields >> eq_or_value)) {
        parse_fail(line_no, "seed needs a value");
      }
      try {
        seed = std::stoull(eq_or_value);
      } catch (const std::exception&) {
        parse_fail(line_no, "cannot parse seed '" + eq_or_value + "'");
      }
      continue;
    }

    std::string kind_tok;
    std::string start_tok;
    std::string dur_tok;
    if (!(fields >> kind_tok >> start_tok >> dur_tok)) {
      parse_fail(line_no,
                 "expected <sensor> <kind> <start_s> <duration_s> "
                 "[magnitude] [probability]");
    }
    FaultEvent ev;
    ev.kind = [&] {
      try {
        return parse_fault_kind(kind_tok);
      } catch (const std::invalid_argument& e) {
        parse_fail(line_no, e.what());
      }
    }();
    ev.start_seconds = parse_number(start_tok, line_no, "start", false);
    ev.duration_seconds = parse_number(dur_tok, line_no, "duration", true);
    if (ev.duration_seconds <= 0.0) {
      parse_fail(line_no, "duration must be positive");
    }
    std::string mag_tok;
    if (fields >> mag_tok) {
      ev.magnitude = parse_number(mag_tok, line_no, "magnitude", false);
    }
    std::string prob_tok;
    if (fields >> prob_tok) {
      ev.probability = parse_number(prob_tok, line_no, "probability", false);
      if (ev.probability <= 0.0 || ev.probability > 1.0) {
        parse_fail(line_no, "probability must be in (0, 1]");
      }
    }
    std::string extra;
    if (fields >> extra) {
      parse_fail(line_no, "unexpected trailing field '" + extra + "'");
    }

    if (first == "all") {
      for (std::size_t i = 0; i < names.size(); ++i) {
        ev.sensor = i;
        events.push_back(ev);
      }
    } else {
      ev.sensor = resolve_sensor(first, line_no, names);
      events.push_back(ev);
    }
  }
  return FaultCampaign(std::move(events), seed);
}

FaultCampaign FaultCampaign::from_file(
    const std::string& path, const std::vector<std::string_view>& names) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read fault campaign file '" + path +
                             "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return from_string(text.str(), names);
  } catch (const std::invalid_argument& e) {
    // Prefix the file path so "fault campaign line N" becomes locatable.
    throw std::invalid_argument(path + ": " + e.what());
  }
}

bool FaultCampaign::any_active(double t) const {
  for (const FaultEvent& e : events_) {
    if (e.active(t)) return true;
  }
  return false;
}

std::size_t FaultCampaign::max_sensor() const {
  std::size_t m = 0;
  for (const FaultEvent& e : events_) m = std::max(m, e.sensor);
  return m;
}

std::string FaultCampaign::to_string(
    const std::vector<std::string_view>& names) const {
  std::ostringstream out;
  out << "# sensor kind start_s duration_s magnitude probability\n";
  out << "seed " << seed_ << '\n';
  for (const FaultEvent& e : events_) {
    if (e.sensor < names.size()) {
      out << names[e.sensor];
    } else {
      out << e.sensor;
    }
    out << ' ' << fault_kind_name(e.kind) << ' ' << e.start_seconds << ' ';
    if (std::isinf(e.duration_seconds)) {
      out << "inf";
    } else {
      out << e.duration_seconds;
    }
    out << ' ' << e.magnitude << ' ' << e.probability << '\n';
  }
  return out.str();
}

}  // namespace hydra::fault
