// Applies a FaultCampaign to a sensor::SensorBank's readings.
//
// The injector sits between the physical-truth temperatures and the DTM
// policy: healthy sensors sample normally (noise + offset + quantisation),
// faulted sensors produce the campaign's corruption instead. It keeps the
// per-sensor state the fault models need (last output for stale faults)
// and a deterministic RNG stream, seeded from the campaign, for the
// stochastic realisations (burst noise, spike timing) — so a campaign
// replays bit-identically for a fixed seed.
//
// Campaign event times are paper-time seconds relative to an *origin*
// (the start of the measured window); the simulator runs on scaled time,
// so the injector converts via the same time_scale knob as every other
// duration. Until set_origin() is called no fault is active.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fault/fault_campaign.h"
#include "sensor/sensor.h"
#include "util/rng.h"

namespace hydra::fault {

/// Tally of injected corruption, per fault kind.
struct FaultCounters {
  /// Sensor-samples whose reading was altered by the injector.
  std::uint64_t faulted_samples = 0;
  std::array<std::uint64_t, kNumFaultKinds> by_kind{};
};

class FaultInjector {
 public:
  /// `bank` must outlive the injector. `time_scale` is the simulator's
  /// time-compression factor (SimConfig::time_scale). Throws
  /// std::invalid_argument when the campaign references a sensor the
  /// bank does not have or time_scale is not positive.
  FaultInjector(sensor::SensorBank& bank, FaultCampaign campaign,
                double time_scale);

  /// Anchor the campaign's t = 0 to scaled simulation time `t0`.
  void set_origin(double t0) {
    origin_ = t0;
    armed_ = true;
  }

  /// Sample every sensor at scaled simulation time `t`, corrupting the
  /// readings of sensors with an active fault. `truth` follows the same
  /// convention as SensorBank::sample (per-block prefix is read).
  std::vector<double> sample(const std::vector<double>& truth, double t);

  /// sample() into a caller-provided buffer (resized to the bank size);
  /// the allocation-free hot-path variant, bit-identical to sample().
  void sample_into(const std::vector<double>& truth, double t,
                   std::vector<double>& out);

  /// True when at least one fault is active at scaled time `t`.
  bool any_active(double t) const {
    return armed_ && campaign_.any_active(to_campaign_time(t));
  }

  const FaultCampaign& campaign() const { return campaign_; }
  const FaultCounters& counters() const { return counters_; }

 private:
  double to_campaign_time(double t) const {
    return (t - origin_) * time_scale_;
  }

  sensor::SensorBank& bank_;
  FaultCampaign campaign_;
  double time_scale_;
  util::Rng rng_;
  FaultCounters counters_;
  bool armed_ = false;
  double origin_ = 0.0;
  /// Last emitted reading per sensor, for stale faults.
  std::vector<double> last_output_;
  bool have_last_ = false;
};

}  // namespace hydra::fault
