#include "sensor/placement.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hydra::sensor {
namespace {

void validate_trace(const TemperatureTrace& trace) {
  if (trace.empty() || trace[0].empty()) {
    throw std::invalid_argument("temperature trace must be non-empty");
  }
  for (const auto& row : trace) {
    if (row.size() != trace[0].size()) {
      throw std::invalid_argument("ragged temperature trace");
    }
  }
}

}  // namespace

double placement_worst_error(const TemperatureTrace& trace,
                             const std::vector<std::size_t>& subset) {
  validate_trace(trace);
  if (subset.empty()) {
    throw std::invalid_argument("sensor subset must be non-empty");
  }
  const std::size_t blocks = trace[0].size();
  for (std::size_t b : subset) {
    if (b >= blocks) throw std::invalid_argument("block index out of range");
  }
  double worst = 0.0;
  for (const auto& row : trace) {
    const double truth = *std::max_element(row.begin(), row.end());
    double sensed = -std::numeric_limits<double>::infinity();
    for (std::size_t b : subset) sensed = std::max(sensed, row[b]);
    worst = std::max(worst, truth - sensed);
  }
  return worst;
}

PlacementResult greedy_placement(const TemperatureTrace& trace,
                                 std::size_t count) {
  validate_trace(trace);
  const std::size_t blocks = trace[0].size();
  if (count == 0 || count > blocks) {
    throw std::invalid_argument("sensor count out of range");
  }
  PlacementResult result;
  std::vector<bool> chosen(blocks, false);
  for (std::size_t k = 0; k < count; ++k) {
    double best_error = std::numeric_limits<double>::infinity();
    std::size_t best_block = blocks;
    for (std::size_t b = 0; b < blocks; ++b) {
      if (chosen[b]) continue;
      std::vector<std::size_t> candidate = result.blocks;
      candidate.push_back(b);
      const double err = placement_worst_error(trace, candidate);
      if (err < best_error) {
        best_error = err;
        best_block = b;
      }
    }
    chosen[best_block] = true;
    result.blocks.push_back(best_block);
    result.worst_error = best_error;
    if (best_error == 0.0) break;  // already exact
  }
  std::sort(result.blocks.begin(), result.blocks.end());
  return result;
}

PlacementResult exhaustive_placement(const TemperatureTrace& trace,
                                     std::size_t count) {
  validate_trace(trace);
  const std::size_t blocks = trace[0].size();
  if (count == 0 || count > blocks) {
    throw std::invalid_argument("sensor count out of range");
  }
  // Iterate all subsets of the given size via a selection mask.
  std::vector<std::size_t> indices(count);
  for (std::size_t i = 0; i < count; ++i) indices[i] = i;

  PlacementResult best;
  best.worst_error = std::numeric_limits<double>::infinity();
  while (true) {
    const double err = placement_worst_error(trace, indices);
    if (err < best.worst_error) {
      best.worst_error = err;
      best.blocks = indices;
    }
    // Advance the combination.
    std::size_t i = count;
    while (i-- > 0) {
      if (indices[i] != i + blocks - count) {
        ++indices[i];
        for (std::size_t j = i + 1; j < count; ++j) {
          indices[j] = indices[j - 1] + 1;
        }
        break;
      }
      if (i == 0) return best;
    }
  }
}

}  // namespace hydra::sensor
