#include "sensor/sensor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hydra::sensor {

SensorBank::SensorBank(std::size_t count, const SensorConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  if (count == 0) throw std::invalid_argument("sensor bank needs sensors");
  if (cfg.sample_rate.value() <= 0.0 ||
      !std::isfinite(cfg.sample_rate.value())) {
    throw std::invalid_argument(
        "sensor sample_rate must be positive and finite");
  }
  if (cfg.quantization.value() < 0.0 || cfg.noise_sigma.value() < 0.0 ||
      cfg.max_offset.value() < 0.0) {
    throw std::invalid_argument("bad sensor configuration");
  }
  offsets_.resize(count, 0.0);
  if (cfg_.enable_offset) {
    for (double& o : offsets_) o = -rng_.uniform(0.0, cfg_.max_offset.value());
  }
}

std::vector<double> SensorBank::sample(const std::vector<double>& truth) {
  std::vector<double> out;
  sample_into(truth, out);
  return out;
}

void SensorBank::sample_into(const std::vector<double>& truth,
                             std::vector<double>& out) {
  if (truth.size() < offsets_.size()) {
    throw std::invalid_argument("truth vector shorter than sensor bank");
  }
  out.resize(offsets_.size());
  for (std::size_t i = 0; i < offsets_.size(); ++i) {
    out[i] = sample_one(i, truth[i]);
  }
}

double SensorBank::sample_one(std::size_t i, double truth) {
  if (i >= offsets_.size()) {
    throw std::out_of_range("sensor index out of range");
  }
  double v = truth + offsets_[i];
  if (cfg_.enable_noise && cfg_.noise_sigma.value() > 0.0) {
    v += rng_.gaussian(0.0, cfg_.noise_sigma.value());
  }
  if (cfg_.quantization.value() > 0.0) {
    v = std::round(v / cfg_.quantization.value()) * cfg_.quantization.value();
  }
  return v;
}

double SensorBank::sample_max(const std::vector<double>& truth) {
  const std::vector<double> s = sample(truth);
  return *std::max_element(s.begin(), s.end());
}

}  // namespace hydra::sensor
