// Thermal sensor placement optimisation.
//
// Paper Section 3: "Sensor placement is also important: if the critical
// transistors in a sensor are not co-located with potential hotspots,
// the observed temperature may be cooler than the actual hotspots which
// we are attempting to regulate. This requires an additional design
// margin...". Given recorded per-block temperature traces, this module
// selects a sensor subset that minimises exactly that margin: the worst
// (over time) amount by which the hottest *instrumented* block
// under-reads the true chip hotspot.
#pragma once

#include <cstddef>
#include <vector>

namespace hydra::sensor {

/// Per-time-step temperatures: samples[t][b] = block b at step t.
using TemperatureTrace = std::vector<std::vector<double>>;

/// Result of a placement search.
struct PlacementResult {
  std::vector<std::size_t> blocks;  ///< chosen block indices, ascending
  /// max over time of (true hotspot - hottest instrumented block) [deg C]
  /// — the extra design margin this placement requires.
  double worst_error = 0.0;
};

/// Worst-case under-read of `subset` over the trace. Throws
/// std::invalid_argument on an empty trace/subset or ragged rows.
double placement_worst_error(const TemperatureTrace& trace,
                             const std::vector<std::size_t>& subset);

/// Greedy forward selection of `count` sensor locations: each step adds
/// the block that most reduces the worst error. O(count * blocks * T).
PlacementResult greedy_placement(const TemperatureTrace& trace,
                                 std::size_t count);

/// Exhaustive search over all subsets of size `count` (use for small
/// problems; cost is C(blocks, count) * T).
PlacementResult exhaustive_placement(const TemperatureTrace& trace,
                                     std::size_t count);

}  // namespace hydra::sensor
