// On-chip thermal sensor model (paper Section 3).
//
// One sensor sits in the middle of each architectural block. Readings
// carry Gaussian noise (the paper's "effective precision after averaging
// of 1 degree"), a per-sensor fixed offset of up to 2 degrees in the
// dangerous direction (the sensor reads *low*, so DTM must keep sensed
// temperature under the 82 C practical limit to guarantee the true
// temperature stays under the 85 C emergency threshold), and ADC
// quantisation. Sampling runs at 10 kHz.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/units.h"

namespace hydra::sensor {

struct SensorConfig {
  /// Std-dev of per-sample Gaussian noise; 0.4 deg C yields the paper's
  /// +/-1 degree effective precision (99 % of samples within 1 degree).
  util::CelsiusDelta noise_sigma{0.4};
  /// ADC quantisation step.
  util::CelsiusDelta quantization{0.25};
  /// Maximum fixed per-sensor offset magnitude; each sensor draws a
  /// fixed offset uniformly in [-max_offset, 0] (reads low).
  util::CelsiusDelta max_offset{2.0};
  /// Sampling frequency (paper time; the System compresses the derived
  /// period by time_scale).
  util::Hertz sample_rate{10.0e3};
  std::uint64_t seed = 0xC0FFEE;
  bool enable_noise = true;
  bool enable_offset = true;
};

/// A bank of per-block sensors.
class SensorBank {
 public:
  SensorBank(std::size_t count, const SensorConfig& cfg);

  /// Sensor readings for the given true temperatures (first `count`
  /// entries of `truth` are read, so a full thermal-node vector works).
  std::vector<double> sample(const std::vector<double>& truth);

  /// sample() into a caller-provided buffer (resized to count()); the
  /// allocation-free hot-path variant, bit-identical to sample().
  void sample_into(const std::vector<double>& truth,
                   std::vector<double>& out);

  /// Sample a single sensor against its true temperature. Draws from the
  /// bank's shared noise stream, so calling sample_one for i = 0..count-1
  /// in order is bit-identical to one sample() call. This is the entry
  /// point fault injectors use to sample healthy sensors individually
  /// while substituting faulted ones. Throws std::out_of_range on a bad
  /// index.
  double sample_one(std::size_t i, double truth);

  /// Convenience: maximum over sample().
  double sample_max(const std::vector<double>& truth);

  std::size_t count() const { return offsets_.size(); }
  util::CelsiusDelta offset(std::size_t i) const {
    return util::CelsiusDelta(offsets_[i]);
  }
  const SensorConfig& config() const { return cfg_; }

 private:
  SensorConfig cfg_;
  std::vector<double> offsets_;
  util::Rng rng_;
};

}  // namespace hydra::sensor
