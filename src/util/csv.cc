#include "util/csv.h"

#include <charconv>
#include <cstdio>

namespace hydra::util {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::format_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "nan";
  return std::string(buf, ptr);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << escape(cells[i]);
  }
  *out_ << '\n';
}

void CsvWriter::row_numeric(const std::vector<double>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << format_double(cells[i]);
  }
  *out_ << '\n';
}

}  // namespace hydra::util
