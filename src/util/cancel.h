// Cooperative cancellation and the typed job-failure vocabulary.
//
// The experiment engine supervises every memoized run: a job may be
// cancelled from outside (CancelToken::cancel), expire against a
// per-job deadline, or classify its own failure as transient so the
// supervisor retries it with backoff. All of it is cooperative — the
// running simulation polls stop_requested() at thermal-interval
// granularity and unwinds with a typed exception, so a stuck or
// diverging job can never wedge a pool worker forever while siblings
// starve. util sits at the dependency root: no obs here; the layers
// above count these events.
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

#include "util/units.h"

namespace hydra::util {

/// A run was cancelled via CancelToken::cancel().
class CancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A run outlived its per-job deadline.
class TimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A failure the thrower believes is worth retrying (I/O hiccup,
/// resource pressure). The job supervisor retries these with bounded
/// backoff; anything else fails the job on the first throw.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Cooperative stop signal threaded into long-running jobs. cancel() is
/// safe from any thread; the deadline is set once by the owner before
/// the work starts and only read afterwards.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request cancellation (thread-safe, idempotent).
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

  /// Arm a deadline `timeout` from now. Zero or negative disarms. Call
  /// before handing the token to the worker; not thread-safe against a
  /// concurrent stop_requested().
  void set_deadline_after(Seconds timeout) {
    if (timeout.value() <= 0.0) {
      has_deadline_ = false;
      return;
    }
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(timeout.value()));
    has_deadline_ = true;
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  bool expired() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// True when the job should unwind (cancelled or past its deadline).
  bool stop_requested() const { return cancelled() || expired(); }

  /// Throw the matching typed error if a stop is requested. `what`
  /// names the work being abandoned (benchmark/policy) so the failure
  /// that surfaces from a future is self-describing.
  void throw_if_stopped(const std::string& what) const {
    if (cancelled()) throw CancelledError("cancelled: " + what);
    if (expired()) throw TimeoutError("deadline exceeded: " + what);
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace hydra::util
