// Annotated synchronization primitives (DESIGN.md §16).
//
// Thin zero-cost wrappers over the std lock types that carry the Clang
// Thread Safety Analysis capability attributes from
// util/thread_annotations.h. Every mutex-owning type in src/ uses these
// instead of the raw std types (enforced by the `no-raw-mutex`
// hydra-lint rule), so the lock protocol of the whole concurrent
// surface — which mutex guards which fields, which methods require
// which locks — is machine-checked on every clang build rather than
// sampled dynamically by whatever schedule the TSan leg happens to see.
//
// The wrappers add no state and no indirection: each is exactly its
// std counterpart plus attributes, and on compilers without the
// attributes (gcc) they compile to identical code.
//
//   util::Mutex mu;
//   int value HYDRA_GUARDED_BY(mu);
//   {
//     const util::LockGuard lock(mu);
//     ++value;                       // ok: mu held
//   }
//   ++value;                         // compile error under clang
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace hydra::util {

class CondVar;

/// std::mutex as a capability. Prefer util::LockGuard over manual
/// lock()/unlock() pairs; the manual form exists for protocols RAII
/// cannot express.
class HYDRA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HYDRA_ACQUIRE() { mu_.lock(); }
  void unlock() HYDRA_RELEASE() { mu_.unlock(); }
  bool try_lock() HYDRA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::shared_mutex as a capability: one writer or many readers.
class HYDRA_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() HYDRA_ACQUIRE() { mu_.lock(); }
  void unlock() HYDRA_RELEASE() { mu_.unlock(); }
  void lock_shared() HYDRA_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() HYDRA_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock on a util::Mutex (the annotated counterpart of
/// std::scoped_lock / std::lock_guard).
class HYDRA_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) HYDRA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() HYDRA_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

/// Scoped exclusive (writer) lock on a util::SharedMutex.
class HYDRA_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) HYDRA_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() HYDRA_RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock on a util::SharedMutex. The destructor
/// carries the generic release annotation: that is the documented form
/// for scoped capabilities, and it covers the shared acquisition.
class HYDRA_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) HYDRA_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() HYDRA_RELEASE() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to util::Mutex through a live LockGuard.
/// wait() releases and reacquires the guard's mutex internally; because
/// the capability is held again before wait() returns, the analysis
/// (correctly) sees it as held throughout — predicates re-checked after
/// a wakeup run under the lock exactly as the caller expects.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  /// Block until notified. Spurious wakeups happen; prefer the
  /// predicate overload.
  void wait(LockGuard& guard) {
    // Adopt the already-held mutex for the wait, then hand ownership
    // back to the guard: the guard's invariant (held from construction
    // to destruction) is preserved across the internal release window.
    std::unique_lock<std::mutex> lk(guard.mu_.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  /// Block until `pred()` is true, re-checking under the lock after
  /// every wakeup.
  template <typename Pred>
  void wait(LockGuard& guard, Pred pred) {
    while (!pred()) wait(guard);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace hydra::util
