// Deterministic pseudo-random number generation.
//
// All stochastic elements of the simulator (synthetic traces, sensor noise)
// draw from explicitly seeded xoshiro256++ streams so every experiment is
// bit-reproducible. std::mt19937 is avoided because its state is large and
// its distributions are not stable across standard-library implementations;
// here the distribution code is part of the generator and thus portable.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace hydra::util {

/// xoshiro256++ generator (Blackman & Vigna). Deterministic, fast,
/// 256-bit state, suitable for non-cryptographic simulation use.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed via splitmix64 expansion.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
    has_cached_gaussian_ = false;
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method: unbiased.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli draw with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (cached pair).
  double gaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_gaussian_ = v * factor;
    has_cached_gaussian_ = true;
    return u * factor;
  }

  /// Normal with given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Geometric-like draw: number of failures before first success with
  /// probability p per trial; clamped to [0, max].
  int geometric(double p, int max) {
    if (p >= 1.0) return 0;
    if (p <= 0.0) return max;
    const double g = std::log1p(-uniform()) / std::log1p(-p);
    const int k = static_cast<int>(g);
    return k > max ? max : k;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace hydra::util
