// Work-stealing thread pool for the parallel experiment engine.
//
// Every figure/table in the paper is a sweep of independent
// (benchmark x policy x config) simulations; the pool lets the
// ExperimentRunner execute them concurrently while keeping results
// deterministic (determinism comes from keying results by submission
// order, never completion order — see sim/experiment.h).
//
// Design: one deque per worker, each guarded by its own mutex. submit()
// distributes jobs round-robin across the deques; a worker pops from the
// front of its own deque and, when that is empty, steals from the back
// of its siblings'. Idle workers sleep on a shared condition variable.
// Jobs should not throw (wrap work in std::packaged_task — async() below
// does this — so exceptions travel through the future instead); one that
// does anyway is contained by the worker loop rather than taking the
// process down with std::terminate — the escape is counted, reported
// through the failure hook, and the worker keeps serving jobs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace hydra::util {

class ThreadPool {
 public:
  /// Spawn `threads` workers (clamped to >= 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a job. Must not throw; use async() for work that can.
  void submit(std::function<void()> job);

  /// Enqueue `f` and return a future for its result. Exceptions thrown
  /// by `f` are captured and rethrown from the future.
  template <typename F>
  auto async(F f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
    std::future<R> future = task->get_future();
    submit([task] { (*task)(); });
    return future;
  }

  /// Run fn(0) .. fn(n-1) across the pool and return when all have
  /// completed — the intra-run fan-out/barrier the multicore System uses
  /// once per thermal interval. Indices are claimed from a shared atomic
  /// counter; the CALLING thread participates in claiming, so the call
  /// completes even when the pool is width 1, saturated, or when the
  /// caller itself is a pool worker (an experiment job fanning out its
  /// own tiles) — the caller can always drain the remaining indices
  /// itself, so the barrier cannot deadlock. Each index runs exactly
  /// once; which thread runs it is scheduling-dependent, so fn must
  /// confine writes to per-index state for deterministic results. The
  /// first exception thrown by any fn is rethrown here after the
  /// barrier; the remaining indices still run.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

  /// Process-wide pool sized by the HYDRA_THREADS environment variable
  /// (default: hardware_concurrency). Created on first use.
  static ThreadPool& global();

  /// The width HYDRA_THREADS requests (>= 1), without creating the pool.
  static std::size_t configured_width();

  /// Process-wide hook run by each worker thread as it starts, with the
  /// worker's index. Installed by the observability layer to name trace
  /// lanes; util itself stays observability-free. Workers spawned before
  /// the hook is installed never see it, so install it before the first
  /// ThreadPool is created (obs does this on first use).
  static void set_worker_start_hook(void (*hook)(std::size_t));

  /// Process-wide hook invoked when an exception escapes a raw submitted
  /// job (async() jobs never trip it — packaged_task captures theirs).
  /// Installed by the observability layer to count the containment;
  /// `what` is the exception message (or "unknown exception").
  static void set_job_failure_hook(void (*hook)(const char* what));

  /// Number of exceptions contained by worker loops process-wide. A
  /// nonzero value means a raw submit() job threw — supervised paths
  /// (RunCache) route failures through futures and never show up here.
  static std::uint64_t contained_exceptions();

 private:
  // Cache-line aligned so two workers hammering adjacent per-worker
  // queues (or the hot shared counters below) never false-share a line.
  struct alignas(64) Queue {
    Mutex mu;
    std::deque<std::function<void()>> jobs HYDRA_GUARDED_BY(mu);
  };

  bool try_pop(std::size_t self, std::function<void()>& job);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  Mutex sleep_mu_;
  CondVar wake_;
  // Each hot atomic on its own cache line: next_queue_ is written by
  // every submit, pending_ by submitters and all workers — sharing a
  // line would bounce it between cores on every job.
  alignas(64) std::atomic<std::size_t> next_queue_{0};
  alignas(64) std::atomic<std::size_t> pending_{0};
  alignas(64) std::atomic<bool> stop_{false};
};

}  // namespace hydra::util
