// CSV emission for benchmark harness output.
//
// Every bench binary prints the series behind a paper figure both as a
// human-readable table and as machine-readable CSV so downstream plotting
// is a one-liner. Fields containing separators/quotes are quoted per RFC
// 4180.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hydra::util {

class CsvWriter {
 public:
  /// Writes rows to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Emit one row; strings are quoted when needed, doubles use max
  /// round-trip precision.
  void row(const std::vector<std::string>& cells);
  void row_numeric(const std::vector<double>& cells);

  /// Format helpers usable without a writer.
  static std::string escape(const std::string& cell);
  static std::string format_double(double v);

 private:
  std::ostream* out_;
};

}  // namespace hydra::util
