// Physical unit helpers.
//
// The simulator mixes electrical, thermal and timing quantities; keeping
// conversions in one place avoids the classic Celsius/Kelvin and
// cycles/seconds mix-ups. Quantities are plain doubles in SI units (seconds,
// watts, volts, hertz, metres); temperatures are degrees Celsius throughout
// the public API because every threshold in the paper is quoted in Celsius.
#pragma once

namespace hydra::util {

inline constexpr double kKelvinOffset = 273.15;

/// Convert degrees Celsius to Kelvin (needed by leakage physics).
constexpr double celsius_to_kelvin(double c) { return c + kKelvinOffset; }

/// Convert Kelvin to degrees Celsius.
constexpr double kelvin_to_celsius(double k) { return k - kKelvinOffset; }

/// Convenience multipliers for readable literals: `3.0 * kGiga` Hz.
inline constexpr double kGiga = 1e9;
inline constexpr double kMega = 1e6;
inline constexpr double kKilo = 1e3;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;

/// Seconds for `cycles` ticks of a clock running at `hz`.
constexpr double cycles_to_seconds(double cycles, double hz) {
  return cycles / hz;
}

/// Whole cycles (rounded up) covering `seconds` at clock `hz`.
constexpr long long seconds_to_cycles(double seconds, double hz) {
  const double c = seconds * hz;
  const auto floor_c = static_cast<long long>(c);
  return (static_cast<double>(floor_c) < c) ? floor_c + 1 : floor_c;
}

}  // namespace hydra::util
