// Physical unit helpers and dimensional strong types.
//
// The simulator mixes electrical, thermal and timing quantities; a
// Kelvin/Celsius slip or a power-vs-energy mixup used to compile
// silently and surface only as a subtly wrong thermal trace. This header
// makes whole classes of those bugs ill-formed:
//
//  * `Quantity<Dim>` is a zero-overhead strong double tagged with the
//    exponents of four base dimensions (temperature, time, power,
//    voltage). Only dimensionally valid arithmetic compiles:
//    `Watts * Seconds -> Joules`, `CelsiusDelta / Seconds ->
//    CelsiusPerSecond`, `Watts + Seconds` is a compile error. A product
//    or quotient whose dimensions cancel decays to plain `double`.
//  * `Celsius` is an *affine* temperature point: two points subtract to
//    a `CelsiusDelta`, a point plus a delta is a point, and adding two
//    absolute temperatures does not compile (it is physically
//    meaningless).
//
// Internal numeric kernels (the thermal solver, per-block power vectors)
// unwrap to raw `double` at their boundary via `.value()` — bulk state
// stays `std::vector<double>` so the allocation-free hot path is
// untouched. Public APIs and config structs carry the strong types.
//
// Adding a new unit: pick the base-dimension exponents, add a `using`
// alias below (and a literal in `literals` if it reads better at call
// sites), then extend tests/units_test.cc with its arithmetic laws.
// See DESIGN.md section 11.
#pragma once

#include <type_traits>

namespace hydra::util {

// ---------------------------------------------------------------------------
// Dimension algebra. Exponents over the base dimensions used in this
// codebase: thermodynamic temperature (as Celsius-sized degrees), time,
// power and electric potential. Power is a base dimension here (rather
// than mass*length^2/time^3) because watts and joules are what the
// domain reasons in; energy is derived as power * time.

template <int TempE, int TimeE, int PowerE, int VoltE>
struct Dim {
  static constexpr int temp = TempE;
  static constexpr int time = TimeE;
  static constexpr int power = PowerE;
  static constexpr int volt = VoltE;
};

template <typename A, typename B>
using DimProduct = Dim<A::temp + B::temp, A::time + B::time,
                       A::power + B::power, A::volt + B::volt>;

template <typename A, typename B>
using DimQuotient = Dim<A::temp - B::temp, A::time - B::time,
                        A::power - B::power, A::volt - B::volt>;

template <typename D>
inline constexpr bool kIsDimensionless =
    D::temp == 0 && D::time == 0 && D::power == 0 && D::volt == 0;

template <typename D>
class Quantity;

// A fully cancelled dimension decays to double so ratios (e.g.
// `elapsed / total`) flow straight into ordinary arithmetic.
template <typename D>
using QuantityOrDouble =
    std::conditional_t<kIsDimensionless<D>, double, Quantity<D>>;

template <typename D>
constexpr QuantityOrDouble<D> make_quantity(double v) {
  if constexpr (kIsDimensionless<D>) {
    return v;
  } else {
    return Quantity<D>(v);
  }
}

// ---------------------------------------------------------------------------
// Quantity: a double tagged with a dimension. Same-dimension quantities
// add, subtract and compare; multiplication and division combine
// dimensions; scalars rescale without changing the dimension.

template <typename D>
class Quantity {
 public:
  using Dimension = D;

  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : v_(v) {}

  /// The underlying SI-coherent magnitude. This is the sanctioned escape
  /// hatch into raw-double kernels; call it at the boundary, not in the
  /// middle of policy logic.
  constexpr double value() const { return v_; }

  constexpr Quantity operator-() const { return Quantity(-v_); }

  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    v_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    v_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.v_ + b.v_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.v_ - b.v_);
  }
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity(a.v_ * s);
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity(s * a.v_);
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity(a.v_ / s);
  }
  /// scalar / quantity inverts the dimension (e.g. 1.0 / Seconds -> Hertz).
  friend constexpr QuantityOrDouble<DimQuotient<Dim<0, 0, 0, 0>, D>>
  operator/(double s, Quantity a) {
    return make_quantity<DimQuotient<Dim<0, 0, 0, 0>, D>>(s / a.v_);
  }

  friend constexpr bool operator==(Quantity a, Quantity b) {
    return a.v_ == b.v_;
  }
  friend constexpr bool operator!=(Quantity a, Quantity b) {
    return a.v_ != b.v_;
  }
  friend constexpr bool operator<(Quantity a, Quantity b) {
    return a.v_ < b.v_;
  }
  friend constexpr bool operator<=(Quantity a, Quantity b) {
    return a.v_ <= b.v_;
  }
  friend constexpr bool operator>(Quantity a, Quantity b) {
    return a.v_ > b.v_;
  }
  friend constexpr bool operator>=(Quantity a, Quantity b) {
    return a.v_ >= b.v_;
  }

 private:
  double v_ = 0.0;
};

template <typename A, typename B>
constexpr QuantityOrDouble<DimProduct<A, B>> operator*(Quantity<A> a,
                                                       Quantity<B> b) {
  return make_quantity<DimProduct<A, B>>(a.value() * b.value());
}

template <typename A, typename B>
constexpr QuantityOrDouble<DimQuotient<A, B>> operator/(Quantity<A> a,
                                                        Quantity<B> b) {
  return make_quantity<DimQuotient<A, B>>(a.value() / b.value());
}

template <typename D>
constexpr Quantity<D> abs(Quantity<D> q) {
  return q.value() < 0.0 ? -q : q;
}

// ---------------------------------------------------------------------------
// The unit vocabulary of this codebase.

using CelsiusDelta = Quantity<Dim<1, 0, 0, 0>>;  ///< temperature difference
using Seconds = Quantity<Dim<0, 1, 0, 0>>;
using Watts = Quantity<Dim<0, 0, 1, 0>>;
using Volts = Quantity<Dim<0, 0, 0, 1>>;
using Hertz = Quantity<Dim<0, -1, 0, 0>>;
using Joules = Quantity<Dim<0, 1, 1, 0>>;  ///< watt-seconds
using CelsiusPerSecond = Quantity<Dim<1, -1, 0, 0>>;
/// Proportional gain of a controller whose error is a CelsiusDelta and
/// whose output is dimensionless (a duty fraction or throttle).
using PerCelsius = Quantity<Dim<-1, 0, 0, 0>>;
/// Integral gain of the same controller family: output per (deg C * s).
using PerCelsiusSecond = Quantity<Dim<-1, -1, 0, 0>>;
/// Heat capacitance [J/K]; one Celsius-sized degree == one kelvin.
using JoulesPerKelvin = Quantity<Dim<-1, 1, 1, 0>>;
/// Thermal resistance [K/W].
using KelvinPerWatt = Quantity<Dim<1, 0, -1, 0>>;
/// Thermal conductance [W/K].
using WattsPerKelvin = Quantity<Dim<-1, 0, 1, 0>>;

inline constexpr double kKelvinOffset = 273.15;

/// Convert degrees Celsius to Kelvin (needed by leakage physics).
constexpr double celsius_to_kelvin(double c) { return c + kKelvinOffset; }

/// Convert Kelvin to degrees Celsius.
constexpr double kelvin_to_celsius(double k) { return k - kKelvinOffset; }

// ---------------------------------------------------------------------------
// Celsius: an affine absolute-temperature point. Differences are
// CelsiusDelta; absolute temperatures do not add or scale.

class Celsius {
 public:
  constexpr Celsius() = default;
  constexpr explicit Celsius(double deg) : v_(deg) {}

  static constexpr Celsius from_kelvin(double k) {
    return Celsius(kelvin_to_celsius(k));
  }

  /// Magnitude in degrees Celsius (boundary escape hatch, like
  /// Quantity::value()).
  constexpr double value() const { return v_; }
  /// Magnitude in kelvin, for physics that needs absolute temperature.
  constexpr double kelvin() const { return celsius_to_kelvin(v_); }

  constexpr Celsius& operator+=(CelsiusDelta d) {
    v_ += d.value();
    return *this;
  }
  constexpr Celsius& operator-=(CelsiusDelta d) {
    v_ -= d.value();
    return *this;
  }

  friend constexpr CelsiusDelta operator-(Celsius a, Celsius b) {
    return CelsiusDelta(a.v_ - b.v_);
  }
  friend constexpr Celsius operator+(Celsius a, CelsiusDelta d) {
    return Celsius(a.v_ + d.value());
  }
  friend constexpr Celsius operator+(CelsiusDelta d, Celsius a) {
    return Celsius(a.v_ + d.value());
  }
  friend constexpr Celsius operator-(Celsius a, CelsiusDelta d) {
    return Celsius(a.v_ - d.value());
  }

  friend constexpr bool operator==(Celsius a, Celsius b) {
    return a.v_ == b.v_;
  }
  friend constexpr bool operator!=(Celsius a, Celsius b) {
    return a.v_ != b.v_;
  }
  friend constexpr bool operator<(Celsius a, Celsius b) { return a.v_ < b.v_; }
  friend constexpr bool operator<=(Celsius a, Celsius b) {
    return a.v_ <= b.v_;
  }
  friend constexpr bool operator>(Celsius a, Celsius b) { return a.v_ > b.v_; }
  friend constexpr bool operator>=(Celsius a, Celsius b) {
    return a.v_ >= b.v_;
  }

 private:
  double v_ = 0.0;
};

// ---------------------------------------------------------------------------
// Literals: `using namespace hydra::util::literals;` enables
// `81.8_degC`, `0.3_dC`, `2e-6_s`, `3e9_Hz`, `1.3_V`, `95.0_W`, `1.0_J`.

inline namespace literals {

constexpr Celsius operator""_degC(long double v) {
  return Celsius(static_cast<double>(v));
}
constexpr Celsius operator""_degC(unsigned long long v) {
  return Celsius(static_cast<double>(v));
}
constexpr CelsiusDelta operator""_dC(long double v) {
  return CelsiusDelta(static_cast<double>(v));
}
constexpr CelsiusDelta operator""_dC(unsigned long long v) {
  return CelsiusDelta(static_cast<double>(v));
}
constexpr Seconds operator""_s(long double v) {
  return Seconds(static_cast<double>(v));
}
constexpr Seconds operator""_s(unsigned long long v) {
  return Seconds(static_cast<double>(v));
}
constexpr Watts operator""_W(long double v) {
  return Watts(static_cast<double>(v));
}
constexpr Watts operator""_W(unsigned long long v) {
  return Watts(static_cast<double>(v));
}
constexpr Joules operator""_J(long double v) {
  return Joules(static_cast<double>(v));
}
constexpr Joules operator""_J(unsigned long long v) {
  return Joules(static_cast<double>(v));
}
constexpr Hertz operator""_Hz(long double v) {
  return Hertz(static_cast<double>(v));
}
constexpr Hertz operator""_Hz(unsigned long long v) {
  return Hertz(static_cast<double>(v));
}
constexpr Volts operator""_V(long double v) {
  return Volts(static_cast<double>(v));
}
constexpr Volts operator""_V(unsigned long long v) {
  return Volts(static_cast<double>(v));
}

}  // namespace literals

// ---------------------------------------------------------------------------
// Compile-time contracts. The strong types must stay layout-identical to
// double (zero overhead) and the dimension algebra must obey the
// physical laws the rest of the codebase relies on.

static_assert(sizeof(Quantity<Dim<1, 0, 0, 0>>) == sizeof(double));
static_assert(sizeof(Celsius) == sizeof(double));
static_assert(std::is_trivially_copyable_v<CelsiusDelta>);
static_assert(std::is_trivially_copyable_v<Celsius>);

static_assert(std::is_same_v<decltype(Watts(2.0) * Seconds(3.0)), Joules>);
static_assert((Watts(2.0) * Seconds(3.0)).value() == 6.0);
static_assert(std::is_same_v<decltype(Joules(6.0) / Seconds(3.0)), Watts>);
static_assert(
    std::is_same_v<decltype(CelsiusDelta(4.0) / Seconds(2.0)),
                   CelsiusPerSecond>);
static_assert(
    std::is_same_v<decltype(CelsiusPerSecond(5.0) * Seconds(2.0)),
                   CelsiusDelta>);
static_assert(std::is_same_v<decltype(KelvinPerWatt(2.0) * Watts(3.0)),
                             CelsiusDelta>);
static_assert(std::is_same_v<decltype(JoulesPerKelvin(2.0) *
                                      CelsiusDelta(3.0)),
                             Joules>);
// Cancelled dimensions decay to double:
static_assert(std::is_same_v<decltype(Seconds(1.0) / Seconds(2.0)), double>);
static_assert(std::is_same_v<decltype(Hertz(10.0) * Seconds(2.0)), double>);
static_assert(std::is_same_v<decltype(1.0 / Seconds(2.0)), Hertz>);
// Affine temperature:
static_assert(std::is_same_v<decltype(Celsius(85.0) - Celsius(45.0)),
                             CelsiusDelta>);
static_assert(std::is_same_v<decltype(Celsius(45.0) + CelsiusDelta(1.0)),
                             Celsius>);
static_assert(Celsius(0.0).kelvin() == kKelvinOffset);

/// Convenience multipliers for readable literals: `3.0 * kGiga` Hz.
inline constexpr double kGiga = 1e9;
inline constexpr double kMega = 1e6;
inline constexpr double kKilo = 1e3;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;

/// Seconds for `cycles` ticks of a clock running at `hz`.
constexpr double cycles_to_seconds(double cycles, double hz) {
  return cycles / hz;
}

/// Typed variant of cycles_to_seconds.
constexpr Seconds cycles_to_duration(double cycles, Hertz hz) {
  return Seconds(cycles / hz.value());
}

/// Whole cycles (rounded up) covering `seconds` at clock `hz`.
/// A duration that is an exact number of cycles must not round up to
/// one extra: seconds*hz can land an ulp above the true integer when
/// the duration itself is not exactly representable (15,000 cycles at
/// 3 GHz is 5 us, whose nearest double is a hair high), so fractional
/// parts within a relative ulp-scale tolerance count as exact.
constexpr long long seconds_to_cycles(double seconds, double hz) {
  const double c = seconds * hz;
  const auto floor_c = static_cast<long long>(c);
  const double frac = c - static_cast<double>(floor_c);
  return (frac > c * 1e-12) ? floor_c + 1 : floor_c;
}

/// Typed variant of seconds_to_cycles.
constexpr long long duration_to_cycles(Seconds t, Hertz hz) {
  return seconds_to_cycles(t.value(), hz.value());
}

}  // namespace hydra::util
