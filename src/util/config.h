// Minimal key/value configuration store.
//
// Experiments and examples accept `key=value` overrides (from argv or from
// files with one pair per line, '#' comments). Typed getters fail loudly on
// malformed values rather than silently defaulting, per the fail-fast
// philosophy of the rest of the library.
#pragma once

#include <map>
#include <optional>
#include <source_location>
#include <string>
#include <string_view>
#include <vector>

namespace hydra::util {

class Config {
 public:
  Config() = default;

  /// Parse "key=value" pairs, one per line; '#' starts a comment; blank
  /// lines ignored. Throws std::invalid_argument on malformed lines.
  static Config from_string(std::string_view text);

  /// Parse argv-style overrides ("key=value" each). Unrecognised shapes
  /// throw std::invalid_argument.
  static Config from_args(const std::vector<std::string>& args);

  /// Set/overwrite a key.
  void set(std::string key, std::string value);

  bool contains(std::string_view key) const;

  /// Typed getters: return the parsed value, or `fallback` when the key is
  /// absent. Throw std::invalid_argument when present but unparseable.
  std::string get_string(std::string_view key, std::string fallback) const;
  double get_double(std::string_view key, double fallback) const;
  long long get_int(std::string_view key, long long fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;

  /// All keys in sorted order (for diagnostics).
  std::vector<std::string> keys() const;

  /// Fail fast on option typos: throw std::invalid_argument when this
  /// config holds a key outside `allowed`. The message is a one-line
  /// diagnostic carrying the caller's file:line and the offending key
  /// (plus the closest allowed spelling), so tools exit with an
  /// actionable error instead of silently ignoring a misspelt flag.
  void reject_unknown(
      const std::vector<std::string_view>& allowed,
      std::source_location where = std::source_location::current()) const;

  /// Merge `other` into this config; other's values win on conflict.
  void merge(const Config& other);

 private:
  std::optional<std::string> find(std::string_view key) const;

  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace hydra::util
